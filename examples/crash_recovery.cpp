/**
 * @file
 * Crash + recovery demo: cut power mid-run, then roll back incomplete
 * atomic updates from the undo log (Section IV-D of the paper).
 *
 * Shows the full story end to end: the durable NVM image right after
 * the crash is torn (in-flight updates half-persisted); the recovery
 * system call walks the ADR-preserved critical registers and the log
 * records and restores a consistent state.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "sim/logging.hh"
#include "workloads/rbtree_workload.hh"

using namespace atomsim;

int
main()
{
    setVerbose(false);

    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 24;
    params.txnsPerCore = 12;

    SystemConfig cfg;
    cfg.design = DesignKind::AtomOpt;

    RbTreeWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    runner.setUp();

    std::printf("running red-black-tree transactions on ATOM-OPT, "
                "then pulling the plug...\n");
    const Tick crash_tick = runner.runUntilCrash(/*fraction=*/0.5,
                                                 /*crash_seed=*/2026);
    std::printf("power failed at cycle %llu after %llu committed "
                "transactions\n",
                (unsigned long long)crash_tick,
                (unsigned long long)runner.committed());

    // Durable state straight after the crash: in-flight updates may
    // be half-persisted, so the trees can be torn.
    DirectAccessor durable(runner.system().nvmImage());
    std::string before =
        workload.checkConsistency(durable, cfg.numCores);
    std::printf("durable state before recovery: %s\n",
                before.empty() ? "(happened to be consistent)"
                               : before.c_str());

    // The recovery routine: reconstruct log state from the ADR-flushed
    // registers, undo incomplete updates newest-first.
    const RecoveryReport report = runner.system().recover();
    std::printf("recovery: %u incomplete updates rolled back, %u "
                "records applied, %u lines restored\n",
                report.incompleteUpdates, report.recordsApplied,
                report.linesRestored);

    const std::string after =
        workload.checkConsistency(durable, cfg.numCores);
    if (!after.empty()) {
        std::printf("POST-RECOVERY CHECK FAILED: %s\n", after.c_str());
        return 1;
    }
    std::printf("post-recovery check: every tree satisfies the "
                "red-black invariants -- atomic durability holds.\n");
    return 0;
}
