/**
 * @file
 * Quickstart: build the paper's 32-core machine, run a workload under
 * two designs and compare.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/runner.hh"
#include "sim/logging.hh"
#include "workloads/hash_workload.hh"

using namespace atomsim;

int
main()
{
    setVerbose(false);

    // Workload: per-core persistent hash tables, 512-byte entries,
    // each core runs 16 search+insert/delete transactions.
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 48;
    params.txnsPerCore = 16;

    std::printf("atomsim quickstart: hash micro-benchmark on the "
                "Table-I machine\n\n");

    for (DesignKind design :
         {DesignKind::Base, DesignKind::AtomOpt, DesignKind::NonAtomic}) {
        SystemConfig cfg;        // defaults = the paper's Table I
        cfg.design = design;

        HashWorkload workload(params);
        Runner runner(cfg, workload, params.txnsPerCore);
        runner.setUp();
        const RunResult result = runner.run();

        std::printf("%-11s %8.0f txn/s  (%llu txns in %llu cycles, "
                    "SQ-full %llu cycles)\n",
                    designName(design), result.txnPerSec,
                    (unsigned long long)result.txns,
                    (unsigned long long)result.cycles,
                    (unsigned long long)result.sqFullCycles);

        // The workload's invariants must hold on the architectural
        // state after every run.
        DirectAccessor mem(runner.system().archMem());
        const std::string err =
            workload.checkConsistency(mem, cfg.numCores);
        if (!err.empty()) {
            std::printf("consistency check FAILED: %s\n", err.c_str());
            return 1;
        }
    }

    std::printf("\nATOM's hardware log manager recovers most of the "
                "gap between the\nbaseline undo log (BASE) and the "
                "no-logging upper bound (NON-ATOMIC).\n");
    return 0;
}
