/**
 * @file
 * Domain scenario: TPC-C new-order transactions (the paper's Section
 * VI-F case study) with a crash in the middle of the run.
 *
 * Demonstrates that a full OLTP-style workload -- shared B+-tree
 * tables, order/stock/order-line writes spanning many cache lines and
 * several memory controllers per transaction -- commits atomically
 * under ATOM and recovers to a consistent schema after power failure.
 */

#include <cstdio>

#include "harness/runner.hh"
#include "sim/logging.hh"
#include "workloads/tpcc/tpcc_workload.hh"

using namespace atomsim;

int
main()
{
    setVerbose(false);

    // Single terminal for the crash demo: byte-exact durable state
    // requires disjoint writers in the trace-at-dispatch execution
    // model (see DESIGN.md).
    SystemConfig cfg;
    cfg.design = DesignKind::AtomOpt;
    cfg.numCores = 1;
    cfg.l2Tiles = 1;
    cfg.meshRows = 1;
    cfg.ausPerMc = 1;

    tpcc::ScaleParams scale;
    scale.customersPerDistrict = 16;
    scale.items = 256;
    TpccWorkload workload(scale);

    Runner runner(cfg, workload, /*txns_per_core=*/20,
                  Addr(128) * 1024 * 1024);
    runner.setUp();

    std::printf("TPC-C new-order on ATOM-OPT; crashing mid-run...\n");
    runner.runUntilCrash(0.5, /*crash_seed=*/7);
    std::printf("crash after %llu committed new-order transactions\n",
                (unsigned long long)runner.committed());

    const RecoveryReport report = runner.system().recover();
    std::printf("recovery rolled back %u incomplete updates "
                "(%u lines restored)\n",
                report.incompleteUpdates, report.linesRestored);

    DirectAccessor durable(runner.system().nvmImage());
    const std::string err = workload.checkConsistency(durable, 1);
    if (!err.empty()) {
        std::printf("schema check FAILED: %s\n", err.c_str());
        return 1;
    }
    std::printf("schema check passed: every table tree is intact and "
                "the order tables agree\nwith the district sequence "
                "counters -- no partially visible new-order.\n");
    return 0;
}
