/**
 * @file
 * Domain scenario: a persistent key-value store built on the public
 * B+-tree API, comparing how the durability design changes its
 * ingest throughput, and demonstrating the Atomic_Begin/Atomic_End
 * programming model (Figure 2(b) of the paper) from the workload's
 * point of view.
 */

#include <cstdio>
#include <memory>

#include "harness/runner.hh"
#include "sim/logging.hh"
#include "workloads/heap.hh"
#include "workloads/tpcc/bplus_tree.hh"
#include "workloads/workload.hh"

using namespace atomsim;

namespace
{

/**
 * A tiny KV store: one B+-tree per core mapping keys to 256-byte
 * values; each transaction atomically upserts a batch of 4 records
 * (think: a write-ahead-log-free database thanks to ATOM).
 */
class KvStoreWorkload : public Workload
{
  public:
    std::string name() const override { return "kvstore"; }

    void
    init(DirectAccessor &mem, PersistentHeap &heap,
         std::uint32_t num_cores) override
    {
        _heap = &heap;
        _state.clear();
        _state.resize(num_cores);
        for (std::uint32_t c = 0; c < num_cores; ++c) {
            _state[c].tree = std::make_unique<BPlusTree>(
                BPlusTree::create(mem, heap, c), heap, c);
            _state[c].nextKey = (std::uint64_t(c) << 40) + 1;
        }
    }

    void
    runTransaction(CoreId core, Accessor &mem, Random &rng) override
    {
        PerCore &pc = _state[core];
        // Read-check a random existing key first (outside the atomic
        // region: queries need no logging).
        if (pc.nextKey > (std::uint64_t(core) << 40) + 1) {
            const std::uint64_t lo = (std::uint64_t(core) << 40) + 1;
            pc.tree->search(mem, lo + rng.below(pc.nextKey - lo));
        }

        mem.atomicBegin();
        for (int i = 0; i < 4; ++i) {
            const std::uint64_t key = pc.nextKey++;
            const Addr value = _heap->alloc(core, kValueBytes,
                                            kLineBytes);
            std::uint64_t words[kValueBytes / 8];
            for (std::size_t w = 0; w < kValueBytes / 8; ++w)
                words[w] = key ^ (w * 0x9e3779b97f4a7c15ULL);
            mem.storeBytes(value, kValueBytes, words);
            pc.tree->insert(mem, key, value);
        }
        mem.atomicEnd();
    }

    std::string
    checkConsistency(DirectAccessor &mem,
                     std::uint32_t num_cores) override
    {
        for (std::uint32_t c = 0; c < num_cores; ++c) {
            if (!_state[c].tree)
                continue;
            const std::string err = _state[c].tree->checkStructure(mem);
            if (!err.empty())
                return err;
            // Batch atomicity: the number of stored keys must be a
            // multiple of the batch size.
            if (_state[c].tree->count(mem) % 4 != 0)
                return "partial upsert batch visible";
        }
        return "";
    }

  private:
    static constexpr std::uint32_t kValueBytes = 256;

    struct PerCore
    {
        std::unique_ptr<BPlusTree> tree;
        std::uint64_t nextKey = 0;
    };

    PersistentHeap *_heap = nullptr;
    std::vector<PerCore> _state;
};

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("persistent KV store: 4-record atomic upsert batches "
                "on per-core B+-trees\n\n");

    double base_rate = 0.0;
    for (DesignKind design : {DesignKind::Base, DesignKind::Atom,
                              DesignKind::AtomOpt}) {
        SystemConfig cfg;
        cfg.design = design;
        KvStoreWorkload workload;
        Runner runner(cfg, workload, /*txns_per_core=*/16);
        runner.setUp();
        const RunResult result = runner.run();

        if (base_rate == 0.0)
            base_rate = result.txnPerSec;
        std::printf("%-9s %8.0f batches/s  (%.2fx, %llu log writes)\n",
                    designName(design), result.txnPerSec,
                    result.txnPerSec / base_rate,
                    (unsigned long long)result.logWrites);

        DirectAccessor mem(runner.system().archMem());
        const std::string err =
            workload.checkConsistency(mem, cfg.numCores);
        if (!err.empty()) {
            std::printf("consistency FAILED: %s\n", err.c_str());
            return 1;
        }
    }
    std::printf("\nthe store's code contains no logging calls at all: "
                "Atomic_Begin/End is the entire durability API.\n");
    return 0;
}
