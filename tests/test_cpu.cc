/**
 * @file
 * Unit tests for the core model: store queue back-pressure and stats,
 * op execution, atomic-region hooks.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"

namespace atomsim
{
namespace
{

SystemConfig
tinyConfig(DesignKind design, std::uint32_t sq_entries = 32)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.l2Tiles = 2;
    cfg.meshRows = 1;
    cfg.ausPerMc = 2;
    cfg.sqEntries = sq_entries;
    cfg.design = design;
    return cfg;
}

/** Hands out a fixed list of transactions per core. */
class ScriptedSource : public TransactionSource
{
  public:
    std::optional<Transaction>
    next(CoreId core) override
    {
        if (core >= scripts.size() || at[core] >= scripts[core].size())
            return std::nullopt;
        return scripts[core][at[core]++];
    }

    std::vector<std::vector<Transaction>> scripts{2};
    std::vector<std::size_t> at = std::vector<std::size_t>(2, 0);
};

Transaction
makeTxn(Addr base, std::uint32_t n_stores, bool atomic)
{
    Transaction txn;
    if (atomic)
        txn.ops.push_back(MemOp::marker(OpKind::AtomicBegin));
    for (std::uint32_t i = 0; i < n_stores; ++i) {
        const std::uint64_t value = i;
        txn.ops.push_back(MemOp::store(base + i * 8, &value, 8));
        if (atomic) {
            const Addr line = lineAlign(base + i * 8);
            if (txn.modifiedLines.empty() ||
                txn.modifiedLines.back() != line) {
                txn.modifiedLines.push_back(line);
            }
        }
    }
    if (atomic)
        txn.ops.push_back(MemOp::marker(OpKind::AtomicEnd));
    return txn;
}

TEST(CoreTest, ExecutesScriptedTransactions)
{
    System sys(tinyConfig(DesignKind::NonAtomic), Addr(8) * 1024 * 1024);
    ScriptedSource source;
    source.scripts[0].push_back(makeTxn(0x10000, 4, true));
    source.scripts[0].push_back(makeTxn(0x20000, 4, true));

    sys.core(0).setSource(&source);
    sys.core(1).setSource(&source);
    sys.core(0).start();
    sys.core(1).start();
    sys.eventQueue().run();

    EXPECT_TRUE(sys.core(0).done());
    EXPECT_EQ(sys.core(0).committed(), 2u);
    EXPECT_EQ(sys.core(1).committed(), 0u);
    // The flushed data must be durable.
    EXPECT_EQ(sys.nvmImage().load64(0x10000 + 8), 1u);
}

TEST(CoreTest, LoadsBlockStoresDoNot)
{
    System sys(tinyConfig(DesignKind::NonAtomic), Addr(8) * 1024 * 1024);
    ScriptedSource source;
    // Loads to distinct cold lines: each blocks for the full miss.
    Transaction loads;
    for (int i = 0; i < 4; ++i)
        loads.ops.push_back(MemOp::load(0x30000 + Addr(i) * 4096, 8));
    source.scripts[0].push_back(loads);
    source.scripts[1].push_back(makeTxn(0x50000, 4, false));

    sys.core(0).setSource(&source);
    sys.core(1).setSource(&source);
    sys.core(0).start();
    sys.core(1).start();
    sys.eventQueue().run();

    // Core 1 (stores only) finishes long before core 0 (cold loads):
    // stores retire from the SQ in the background.
    const auto &stats = sys.stats();
    EXPECT_EQ(stats.value("core0", "ops"), 4u);
    EXPECT_GT(stats.value("core0", "load_stall_cycles"), 4u * 240u);
}

TEST(CoreTest, SqBackpressureCountsFullCycles)
{
    // A 2-entry SQ and BASE logging (log persist in the store path)
    // guarantees back-pressure.
    System sys(tinyConfig(DesignKind::Base, /*sq=*/2),
               Addr(8) * 1024 * 1024);
    ScriptedSource source;
    // Stores to distinct lines so every store needs a log write.
    Transaction txn;
    txn.ops.push_back(MemOp::marker(OpKind::AtomicBegin));
    for (int i = 0; i < 8; ++i) {
        const std::uint64_t value = i;
        txn.ops.push_back(MemOp::store(0x60000 + Addr(i) * 64, &value, 8));
        txn.modifiedLines.push_back(0x60000 + Addr(i) * 64);
    }
    txn.ops.push_back(MemOp::marker(OpKind::AtomicEnd));
    source.scripts[0].push_back(txn);

    sys.core(0).setSource(&source);
    sys.core(1).setSource(&source);
    sys.core(0).start();
    sys.core(1).start();
    sys.eventQueue().run();

    EXPECT_EQ(sys.core(0).committed(), 1u);
    EXPECT_GT(sys.stats().value("core0", "sq_full_cycles"), 0u);
}

TEST(CoreTest, StoreToLoadForwardingSkipsTheCache)
{
    System sys(tinyConfig(DesignKind::NonAtomic), Addr(8) * 1024 * 1024);
    ScriptedSource source;
    Transaction txn;
    const std::uint64_t value = 7;
    txn.ops.push_back(MemOp::store(0x70000, &value, 8));
    txn.ops.push_back(MemOp::load(0x70000, 8));  // forwarded
    source.scripts[0].push_back(txn);

    sys.core(0).setSource(&source);
    sys.core(1).setSource(&source);
    sys.core(0).start();
    sys.core(1).start();
    sys.eventQueue().run();

    // Only the store touches the L1 (one store, zero loads).
    EXPECT_EQ(sys.stats().value("l1c0", "loads"), 0u);
    EXPECT_EQ(sys.stats().value("l1c0", "stores"), 1u);
}

TEST(CoreTest, AtomicEndWaitsForStoreDrain)
{
    // With ATOM, Atomic_End flushes modified lines; the flushes must
    // observe every store of the region (values in NVM afterwards).
    System sys(tinyConfig(DesignKind::Atom), Addr(8) * 1024 * 1024);
    ScriptedSource source;
    source.scripts[0].push_back(makeTxn(0x80000, 16, true));

    sys.core(0).setSource(&source);
    sys.core(1).setSource(&source);
    sys.core(0).start();
    sys.core(1).start();
    sys.eventQueue().run();

    EXPECT_EQ(sys.core(0).committed(), 1u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(sys.nvmImage().load64(0x80000 + Addr(i) * 8),
                  std::uint64_t(i));
}

TEST(StoreQueueTest, HoldsLineMatchesPendingStores)
{
    System sys(tinyConfig(DesignKind::NonAtomic), Addr(8) * 1024 * 1024);
    StoreQueue &sq = sys.core(0).storeQueue();
    std::vector<std::uint8_t> payload(8, 0xaa);
    bool accepted = false;
    sq.push(0x90008, payload, [&] { accepted = true; });
    EXPECT_TRUE(accepted);
    EXPECT_TRUE(sq.holdsLine(0x90000));   // same line
    EXPECT_TRUE(sq.holdsLine(0x9003f));
    EXPECT_FALSE(sq.holdsLine(0x90040));  // next line
    sys.eventQueue().run();
    EXPECT_TRUE(sq.empty());
}

TEST(StoreQueueTest, WhenEmptyFiresAfterDrain)
{
    System sys(tinyConfig(DesignKind::NonAtomic), Addr(8) * 1024 * 1024);
    StoreQueue &sq = sys.core(0).storeQueue();
    std::vector<std::uint8_t> payload(8, 1);
    sq.push(0xa0000, payload, [] {});
    bool drained = false;
    sq.whenEmpty([&] { drained = true; });
    EXPECT_FALSE(drained);
    sys.eventQueue().run();
    EXPECT_TRUE(drained);
}

TEST(AusPoolTest, StructuralOverflowStallsAndRecovers)
{
    EventQueue eq;
    StatSet stats;
    AusPool pool(eq, /*slots=*/1, /*cores=*/2, stats);

    std::uint32_t slot0 = 99;
    pool.acquire(0, [&](std::uint32_t s) { slot0 = s; });
    EXPECT_EQ(slot0, 0u);

    bool got1 = false;
    pool.acquire(1, [&](std::uint32_t) { got1 = true; });
    EXPECT_FALSE(got1);  // structural overflow: waits

    eq.postIn(100, [&] { pool.release(0); });
    eq.run();
    EXPECT_TRUE(got1);
    EXPECT_EQ(pool.slotOf(1), 0);
    EXPECT_GE(pool.structuralStallCycles(), 100u);
}

} // namespace
} // namespace atomsim
