/**
 * @file
 * Unit tests for the memory substrate: data images, the address map,
 * channels and the memory controller (including the write gate).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/nvm_channel.hh"
#include "mem/phys_mem.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{
namespace
{

TEST(DataImageTest, ZeroInitializedReads)
{
    DataImage img;
    EXPECT_EQ(img.load64(0x1234), 0u);
    EXPECT_EQ(img.pagesAllocated(), 0u);
}

TEST(DataImageTest, ScalarRoundTrip)
{
    DataImage img;
    img.store64(0x100, 0xdeadbeefcafef00dULL);
    img.store32(0x108, 0x12345678u);
    EXPECT_EQ(img.load64(0x100), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(img.load32(0x108), 0x12345678u);
}

TEST(DataImageTest, CrossPageWrite)
{
    DataImage img;
    std::uint8_t buf[256];
    for (int i = 0; i < 256; ++i)
        buf[i] = std::uint8_t(i);
    const Addr addr = kPageBytes - 100;  // straddles a page boundary
    img.write(addr, sizeof(buf), buf);
    std::uint8_t back[256];
    img.read(addr, sizeof(back), back);
    EXPECT_EQ(std::memcmp(buf, back, sizeof(buf)), 0);
    EXPECT_EQ(img.pagesAllocated(), 2u);
}

TEST(DataImageTest, LineRoundTripAligns)
{
    DataImage img;
    Line line;
    for (std::uint32_t i = 0; i < kLineBytes; ++i)
        line[i] = std::uint8_t(i * 3);
    img.writeLine(0x1238, line);  // unaligned address -> line 0x1200
    const Line back = img.readLine(0x1200);
    EXPECT_EQ(back, line);
}

TEST(DataImageTest, CloneIsDeep)
{
    DataImage img;
    img.store64(0x40, 7);
    DataImage copy = img.clone();
    img.store64(0x40, 9);
    EXPECT_EQ(copy.load64(0x40), 7u);
    EXPECT_EQ(img.load64(0x40), 9u);
}

class AddressMapTest : public ::testing::Test
{
  protected:
    SystemConfig cfg;
    AddressMap amap{cfg, Addr(16) * 1024 * 1024};
};

TEST_F(AddressMapTest, PageInterleavingAcrossMcs)
{
    EXPECT_EQ(amap.memCtrl(0), 0u);
    EXPECT_EQ(amap.memCtrl(kPageBytes), 1u);
    EXPECT_EQ(amap.memCtrl(2 * kPageBytes), 2u);
    EXPECT_EQ(amap.memCtrl(3 * kPageBytes), 3u);
    EXPECT_EQ(amap.memCtrl(4 * kPageBytes), 0u);
    // All lines of one page map to the same controller.
    EXPECT_EQ(amap.memCtrl(kPageBytes + 64), 1u);
    EXPECT_EQ(amap.memCtrl(kPageBytes + 4032), 1u);
}

TEST_F(AddressMapTest, BucketIsOnePageOnOwningMc)
{
    for (McId mc = 0; mc < 4; ++mc) {
        for (std::uint32_t b : {0u, 1u, 17u, 255u}) {
            const Addr base = amap.bucketBase(mc, b);
            EXPECT_EQ(amap.memCtrl(base), mc);
            EXPECT_EQ(base % kPageBytes, 0u);
            EXPECT_TRUE(amap.isLogAddr(base));
            EXPECT_TRUE(amap.isLogAddr(base + kPageBytes - 1));
        }
    }
}

TEST_F(AddressMapTest, RecordsTileTheBucket)
{
    const Addr b0 = amap.bucketBase(2, 5);
    for (std::uint32_t r = 0; r < amap.recordsPerBucket(); ++r) {
        EXPECT_EQ(amap.recordBase(2, 5, r), b0 + r * 512);
    }
}

TEST_F(AddressMapTest, AdrRegionPerMcAfterLog)
{
    for (McId mc = 0; mc < 4; ++mc) {
        const Addr adr = amap.adrBase(mc);
        EXPECT_GE(adr, amap.logEnd());
        EXPECT_EQ(amap.memCtrl(adr), mc);
    }
    EXPECT_EQ(amap.reservedEnd(), amap.logEnd() + 4 * kPageBytes);
}

TEST_F(AddressMapTest, DataRegionIsNotLog)
{
    EXPECT_FALSE(amap.isLogAddr(0));
    EXPECT_FALSE(amap.isLogAddr(amap.logBase() - 1));
    EXPECT_FALSE(amap.isLogAddr(amap.logEnd()));
}

TEST(NvmChannelTest, ReadWriteLatencies)
{
    EventQueue eq;
    SystemConfig cfg;
    NvmChannel chan(eq, cfg);
    const Tick t_read = chan.scheduleRead();
    // transfer (25) + read latency (240)
    EXPECT_EQ(t_read, 25u + 240u);
    EXPECT_EQ(chan.freeAt(), 25u);
}

TEST(NvmChannelTest, BackToBackTransfersSerialize)
{
    EventQueue eq;
    SystemConfig cfg;
    NvmChannel chan(eq, cfg);
    const Tick w1 = chan.scheduleWrite();
    const Tick w2 = chan.scheduleWrite();
    EXPECT_EQ(w1, 25u + 360u);
    EXPECT_EQ(w2, 50u + 360u);  // channel occupancy serializes
    EXPECT_EQ(chan.busyCycles(), 50u);
    EXPECT_EQ(chan.writes(), 2u);
}

class MemCtrlTest : public ::testing::Test
{
  protected:
    MemCtrlTest()
        : amap(cfg, Addr(16) * 1024 * 1024),
          mc(0, eq, cfg, nvm, stats)
    {
    }

    SystemConfig cfg;
    EventQueue eq;
    DataImage nvm;
    StatSet stats;
    AddressMap amap;
    MemoryController mc;
};

TEST_F(MemCtrlTest, WriteThenReadReturnsData)
{
    Line data{};
    data[0] = 0xab;
    bool wrote = false;
    mc.writeLine(0x1000, data, WriteKind::DataWb, [&] { wrote = true; });
    eq.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(nvm.readLine(0x1000)[0], 0xab);

    bool read = false;
    mc.readLine(0x1000, ReadKind::Demand, [&](const Line &line) {
        read = true;
        EXPECT_EQ(line[0], 0xab);
    });
    eq.run();
    EXPECT_TRUE(read);
}

TEST_F(MemCtrlTest, ReadForwardsFromPendingWrite)
{
    Line data{};
    data[5] = 0x77;
    mc.writeLine(0x2000, data, WriteKind::DataWb, {});
    // Issue the read immediately: the write is still queued.
    bool read = false;
    mc.readLine(0x2000, ReadKind::Demand, [&](const Line &line) {
        read = true;
        EXPECT_EQ(line[5], 0x77);
    });
    eq.run();
    EXPECT_TRUE(read);
}

TEST_F(MemCtrlTest, WriteCombiningMergesSameLine)
{
    Line a{};
    a[0] = 1;
    Line b{};
    b[0] = 2;
    int acks = 0;
    mc.writeLine(0x3000, a, WriteKind::DataWb, [&] { ++acks; });
    mc.writeLine(0x3000, b, WriteKind::DataWb, [&] { ++acks; });
    eq.run();
    EXPECT_EQ(acks, 2);               // both callbacks fire
    EXPECT_EQ(nvm.readLine(0x3000)[0], 2);  // newest data wins
    EXPECT_EQ(stats.value("mc0", "data_writes"), 2u);
}

TEST_F(MemCtrlTest, WhenLineDurableWaitsForPendingWrite)
{
    Line data{};
    bool durable = false;
    mc.writeLine(0x4000, data, WriteKind::Flush, {});
    mc.whenLineDurable(0x4000, [&] { durable = true; });
    EXPECT_FALSE(durable);
    eq.run();
    EXPECT_TRUE(durable);
}

TEST_F(MemCtrlTest, WhenLineDurableImmediateWhenIdle)
{
    bool durable = false;
    mc.whenLineDurable(0x5000, [&] { durable = true; });
    EXPECT_TRUE(durable);
}

TEST_F(MemCtrlTest, LatencyIncludesDeviceWrite)
{
    Line data{};
    Tick done_at = 0;
    mc.writeLine(0x6000, data, WriteKind::DataWb,
                 [&] { done_at = eq.now(); });
    eq.run();
    // frontend (8) + transfer (25) + device write (360) + match (1)
    EXPECT_GE(done_at, 8u + 25u + 360u);
    EXPECT_LE(done_at, 8u + 25u + 360u + 2u);
}

/** A gate that locks one line until released. */
class TestGate : public WriteGate
{
  public:
    bool
    tryAcquire(Addr line, UnlockCallback on_unlock) override
    {
        if (line == locked) {
            waiters.push_back(std::move(on_unlock));
            return false;
        }
        return true;
    }

    void
    release()
    {
        locked = ~Addr(0);
        for (auto &w : waiters)
            w();
        waiters.clear();
    }

    Addr locked = ~Addr(0);
    std::vector<UnlockCallback> waiters;
};

TEST_F(MemCtrlTest, GateBlocksDataWriteUntilUnlocked)
{
    TestGate gate;
    gate.locked = 0x7000;
    mc.setWriteGate(&gate);

    Line data{};
    data[0] = 9;
    bool wrote = false;
    mc.writeLine(0x7000, data, WriteKind::DataWb, [&] { wrote = true; });
    eq.run();
    EXPECT_FALSE(wrote);  // blocked by the gate
    EXPECT_EQ(stats.value("mc0", "gate_blocks"), 1u);

    gate.release();
    eq.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(nvm.readLine(0x7000)[0], 9);
    mc.setWriteGate(nullptr);
}

TEST_F(MemCtrlTest, GateNeverBlocksLogWrites)
{
    TestGate gate;
    gate.locked = 0x8000;
    mc.setWriteGate(&gate);
    Line data{};
    bool wrote = false;
    mc.writeLine(0x8000, data, WriteKind::LogData, [&] { wrote = true; });
    eq.run();
    EXPECT_TRUE(wrote);  // log traffic bypasses the gate
    mc.setWriteGate(nullptr);
}

TEST_F(MemCtrlTest, PowerFailDropsQueuedWrites)
{
    Line data{};
    data[0] = 0x55;
    bool wrote = false;
    mc.writeLine(0x9000, data, WriteKind::DataWb, [&] { wrote = true; });
    mc.powerFail();
    eq.run();
    EXPECT_FALSE(wrote);
    EXPECT_EQ(nvm.readLine(0x9000)[0], 0);  // never reached NVM
    EXPECT_EQ(mc.pendingWrites(), 0u);
}

TEST_F(MemCtrlTest, TwoChannelSteeringSeparatesLogTraffic)
{
    SystemConfig cfg2;
    cfg2.channelsPerMc = 2;
    MemoryController mc2(1, eq, cfg2, nvm, stats);
    Line data{};
    // Data write then log write: with two channels both can complete
    // at their solo latency (no shared-channel serialization).
    Tick t_data = 0;
    Tick t_log = 0;
    mc2.writeLine(0x10000, data, WriteKind::DataWb,
                  [&] { t_data = eq.now(); });
    mc2.writeLine(0x11000, data, WriteKind::LogData,
                  [&] { t_log = eq.now(); });
    eq.run();
    // If they shared one channel one of them would finish ~25 cycles
    // later than the other; with two they finish within a cycle.
    EXPECT_LE(t_data > t_log ? t_data - t_log : t_log - t_data, 2u);
}

} // namespace
} // namespace atomsim
