/**
 * @file
 * Unit tests for the memory substrate: data images, the address map,
 * channels and the memory controller (including the write gate).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/address_map.hh"
#include "mem/dram_cache.hh"
#include "mem/dram_device.hh"
#include "mem/memory_controller.hh"
#include "mem/nvm_channel.hh"
#include "mem/phys_mem.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{
namespace
{

TEST(DataImageTest, ZeroInitializedReads)
{
    DataImage img;
    EXPECT_EQ(img.load64(0x1234), 0u);
    EXPECT_EQ(img.pagesAllocated(), 0u);
}

TEST(DataImageTest, ScalarRoundTrip)
{
    DataImage img;
    img.store64(0x100, 0xdeadbeefcafef00dULL);
    img.store32(0x108, 0x12345678u);
    EXPECT_EQ(img.load64(0x100), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(img.load32(0x108), 0x12345678u);
}

TEST(DataImageTest, CrossPageWrite)
{
    DataImage img;
    std::uint8_t buf[256];
    for (int i = 0; i < 256; ++i)
        buf[i] = std::uint8_t(i);
    const Addr addr = kPageBytes - 100;  // straddles a page boundary
    img.write(addr, sizeof(buf), buf);
    std::uint8_t back[256];
    img.read(addr, sizeof(back), back);
    EXPECT_EQ(std::memcmp(buf, back, sizeof(buf)), 0);
    EXPECT_EQ(img.pagesAllocated(), 2u);
}

TEST(DataImageTest, LineRoundTripAligns)
{
    DataImage img;
    Line line;
    for (std::uint32_t i = 0; i < kLineBytes; ++i)
        line[i] = std::uint8_t(i * 3);
    img.writeLine(0x1238, line);  // unaligned address -> line 0x1200
    const Line back = img.readLine(0x1200);
    EXPECT_EQ(back, line);
}

TEST(DataImageTest, CloneIsDeep)
{
    DataImage img;
    img.store64(0x40, 7);
    DataImage copy = img.clone();
    img.store64(0x40, 9);
    EXPECT_EQ(copy.load64(0x40), 7u);
    EXPECT_EQ(img.load64(0x40), 9u);
}

class AddressMapTest : public ::testing::Test
{
  protected:
    SystemConfig cfg;
    AddressMap amap{cfg, Addr(16) * 1024 * 1024};
};

TEST_F(AddressMapTest, PageInterleavingAcrossMcs)
{
    EXPECT_EQ(amap.memCtrl(0), 0u);
    EXPECT_EQ(amap.memCtrl(kPageBytes), 1u);
    EXPECT_EQ(amap.memCtrl(2 * kPageBytes), 2u);
    EXPECT_EQ(amap.memCtrl(3 * kPageBytes), 3u);
    EXPECT_EQ(amap.memCtrl(4 * kPageBytes), 0u);
    // All lines of one page map to the same controller.
    EXPECT_EQ(amap.memCtrl(kPageBytes + 64), 1u);
    EXPECT_EQ(amap.memCtrl(kPageBytes + 4032), 1u);
}

TEST_F(AddressMapTest, BucketIsOnePageOnOwningMc)
{
    for (McId mc = 0; mc < 4; ++mc) {
        for (std::uint32_t b : {0u, 1u, 17u, 255u}) {
            const Addr base = amap.bucketBase(mc, b);
            EXPECT_EQ(amap.memCtrl(base), mc);
            EXPECT_EQ(base % kPageBytes, 0u);
            EXPECT_TRUE(amap.isLogAddr(base));
            EXPECT_TRUE(amap.isLogAddr(base + kPageBytes - 1));
        }
    }
}

TEST_F(AddressMapTest, RecordsTileTheBucket)
{
    const Addr b0 = amap.bucketBase(2, 5);
    for (std::uint32_t r = 0; r < amap.recordsPerBucket(); ++r) {
        EXPECT_EQ(amap.recordBase(2, 5, r), b0 + r * 512);
    }
}

TEST_F(AddressMapTest, AdrRegionPerMcAfterLog)
{
    for (McId mc = 0; mc < 4; ++mc) {
        const Addr adr = amap.adrBase(mc);
        EXPECT_GE(adr, amap.logEnd());
        EXPECT_EQ(amap.memCtrl(adr), mc);
    }
    EXPECT_EQ(amap.reservedEnd(), amap.logEnd() + 4 * kPageBytes);
}

TEST_F(AddressMapTest, DataRegionIsNotLog)
{
    EXPECT_FALSE(amap.isLogAddr(0));
    EXPECT_FALSE(amap.isLogAddr(amap.logBase() - 1));
    EXPECT_FALSE(amap.isLogAddr(amap.logEnd()));
}

TEST(NvmChannelTest, ReadWriteLatencies)
{
    EventQueue eq;
    SystemConfig cfg;
    NvmChannel chan(eq, cfg);
    const Tick t_read = chan.scheduleRead();
    // transfer (25) + read latency (240)
    EXPECT_EQ(t_read, 25u + 240u);
    EXPECT_EQ(chan.freeAt(), 25u);
}

TEST(NvmChannelTest, BackToBackTransfersSerialize)
{
    EventQueue eq;
    SystemConfig cfg;
    NvmChannel chan(eq, cfg);
    const Tick w1 = chan.scheduleWrite();
    const Tick w2 = chan.scheduleWrite();
    EXPECT_EQ(w1, 25u + 360u);
    EXPECT_EQ(w2, 50u + 360u);  // channel occupancy serializes
    EXPECT_EQ(chan.busyCycles(), 50u);
    EXPECT_EQ(chan.writes(), 2u);
}

class MemCtrlTest : public ::testing::Test
{
  protected:
    MemCtrlTest()
        : amap(cfg, Addr(16) * 1024 * 1024),
          mc(0, eq, cfg, nvm, stats)
    {
    }

    SystemConfig cfg;
    EventQueue eq;
    DataImage nvm;
    StatSet stats;
    AddressMap amap;
    MemoryController mc;
};

TEST_F(MemCtrlTest, WriteThenReadReturnsData)
{
    Line data{};
    data[0] = 0xab;
    bool wrote = false;
    mc.writeLine(0x1000, data, WriteKind::DataWb, [&] { wrote = true; });
    eq.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(nvm.readLine(0x1000)[0], 0xab);

    bool read = false;
    mc.readLine(0x1000, ReadKind::Demand, [&](const Line &line) {
        read = true;
        EXPECT_EQ(line[0], 0xab);
    });
    eq.run();
    EXPECT_TRUE(read);
}

TEST_F(MemCtrlTest, ReadForwardsFromPendingWrite)
{
    Line data{};
    data[5] = 0x77;
    mc.writeLine(0x2000, data, WriteKind::DataWb, {});
    // Issue the read immediately: the write is still queued.
    bool read = false;
    mc.readLine(0x2000, ReadKind::Demand, [&](const Line &line) {
        read = true;
        EXPECT_EQ(line[5], 0x77);
    });
    eq.run();
    EXPECT_TRUE(read);
}

TEST_F(MemCtrlTest, WriteCombiningMergesSameLine)
{
    Line a{};
    a[0] = 1;
    Line b{};
    b[0] = 2;
    int acks = 0;
    mc.writeLine(0x3000, a, WriteKind::DataWb, [&] { ++acks; });
    mc.writeLine(0x3000, b, WriteKind::DataWb, [&] { ++acks; });
    eq.run();
    EXPECT_EQ(acks, 2);               // both callbacks fire
    EXPECT_EQ(nvm.readLine(0x3000)[0], 2);  // newest data wins
    EXPECT_EQ(stats.value("mc0", "data_writes"), 2u);
}

TEST_F(MemCtrlTest, ReadForwardsNewestDataAfterWriteCombining)
{
    // Regression: combining a second write into a queued request must
    // also refresh the read-forwarding snapshot -- a read accepted
    // after the combine has to observe the combined bytes, not the
    // first write's.
    Line a{};
    a[0] = 1;
    Line b{};
    b[0] = 2;
    mc.writeLine(0x3100, a, WriteKind::DataWb, {});
    mc.writeLine(0x3100, b, WriteKind::DataWb, {});
    bool read = false;
    mc.readLine(0x3100, ReadKind::Demand, [&](const Line &line) {
        read = true;
        EXPECT_EQ(line[0], 2);
    });
    eq.run();
    EXPECT_TRUE(read);
}

TEST_F(MemCtrlTest, WhenLineDurableWaitsForPendingWrite)
{
    Line data{};
    bool durable = false;
    mc.writeLine(0x4000, data, WriteKind::Flush, {});
    mc.whenLineDurable(0x4000, [&] { durable = true; });
    EXPECT_FALSE(durable);
    eq.run();
    EXPECT_TRUE(durable);
}

TEST_F(MemCtrlTest, WhenLineDurableImmediateWhenIdle)
{
    bool durable = false;
    mc.whenLineDurable(0x5000, [&] { durable = true; });
    EXPECT_TRUE(durable);
}

TEST_F(MemCtrlTest, LatencyIncludesDeviceWrite)
{
    Line data{};
    Tick done_at = 0;
    mc.writeLine(0x6000, data, WriteKind::DataWb,
                 [&] { done_at = eq.now(); });
    eq.run();
    // frontend (8) + transfer (25) + device write (360) + match (1)
    EXPECT_GE(done_at, 8u + 25u + 360u);
    EXPECT_LE(done_at, 8u + 25u + 360u + 2u);
}

/** A gate that locks one line until released. */
class TestGate : public WriteGate
{
  public:
    bool
    tryAcquire(Addr line, UnlockCallback on_unlock) override
    {
        if (line == locked) {
            waiters.push_back(std::move(on_unlock));
            return false;
        }
        return true;
    }

    void
    release()
    {
        locked = ~Addr(0);
        for (auto &w : waiters)
            w();
        waiters.clear();
    }

    Addr locked = ~Addr(0);
    std::vector<UnlockCallback> waiters;
};

TEST_F(MemCtrlTest, GateBlocksDataWriteUntilUnlocked)
{
    TestGate gate;
    gate.locked = 0x7000;
    mc.setWriteGate(&gate);

    Line data{};
    data[0] = 9;
    bool wrote = false;
    mc.writeLine(0x7000, data, WriteKind::DataWb, [&] { wrote = true; });
    eq.run();
    EXPECT_FALSE(wrote);  // blocked by the gate
    EXPECT_EQ(stats.value("mc0", "gate_blocks"), 1u);

    gate.release();
    eq.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(nvm.readLine(0x7000)[0], 9);
    mc.setWriteGate(nullptr);
}

TEST_F(MemCtrlTest, GateNeverBlocksLogWrites)
{
    TestGate gate;
    gate.locked = 0x8000;
    mc.setWriteGate(&gate);
    Line data{};
    bool wrote = false;
    mc.writeLine(0x8000, data, WriteKind::LogData, [&] { wrote = true; });
    eq.run();
    EXPECT_TRUE(wrote);  // log traffic bypasses the gate
    mc.setWriteGate(nullptr);
}

TEST_F(MemCtrlTest, PowerFailDropsQueuedWrites)
{
    Line data{};
    data[0] = 0x55;
    bool wrote = false;
    mc.writeLine(0x9000, data, WriteKind::DataWb, [&] { wrote = true; });
    mc.powerFail();
    eq.run();
    EXPECT_FALSE(wrote);
    EXPECT_EQ(nvm.readLine(0x9000)[0], 0);  // never reached NVM
    EXPECT_EQ(mc.pendingWrites(), 0u);
}

TEST_F(MemCtrlTest, TwoChannelSteeringSeparatesLogTraffic)
{
    SystemConfig cfg2;
    cfg2.channelsPerMc = 2;
    MemoryController mc2(1, eq, cfg2, nvm, stats);
    Line data{};
    // Data write then log write: with two channels both can complete
    // at their solo latency (no shared-channel serialization).
    Tick t_data = 0;
    Tick t_log = 0;
    mc2.writeLine(0x10000, data, WriteKind::DataWb,
                  [&] { t_data = eq.now(); });
    mc2.writeLine(0x11000, data, WriteKind::LogData,
                  [&] { t_log = eq.now(); });
    eq.run();
    // If they shared one channel one of them would finish ~25 cycles
    // later than the other; with two they finish within a cycle.
    EXPECT_LE(t_data > t_log ? t_data - t_log : t_log - t_data, 2u);
}

// --- Hybrid memory: DRAM device timing -------------------------------

class DramDeviceTest : public ::testing::Test
{
  protected:
    DramDeviceTest()
        : rowHits(stats.counter("mc0", "row_hits")),
          rowMisses(stats.counter("mc0", "row_misses")),
          dev(eq, cfg, rowHits, rowMisses)
    {
    }

    Tick
    accessDone(Addr addr, bool write, Tick ready = 0)
    {
        Tick done = 0;
        dev.access(addr, write, ready,
                   [&done, this] { done = eq.now(); });
        eq.run();
        return done;
    }

    SystemConfig cfg;
    EventQueue eq;
    StatSet stats;
    Counter &rowHits;
    Counter &rowMisses;
    DramDevice dev;
};

TEST_F(DramDeviceTest, RowHitIsFasterThanRowMiss)
{
    // Cold access: transfer (10 cycles at 12.8 GB/s) + row miss (36).
    const Tick first = accessDone(0x10000, false);
    EXPECT_EQ(first, cfg.dramTransferCycles() + cfg.dramRowMissLatency);
    EXPECT_EQ(rowMisses.value(), 1u);

    // Same row again: row hit, only the hit latency after the bank
    // frees.
    const Tick second = accessDone(0x10040, false);
    EXPECT_EQ(second - first,
              cfg.dramTransferCycles() + cfg.dramRowHitLatency);
    EXPECT_EQ(rowHits.value(), 1u);

    // Different row, same bank: row miss again.
    const Addr other_row =
        0x10000 + Addr(cfg.dramRowBytes) * cfg.dramBanksPerMc;
    accessDone(other_row, false);
    EXPECT_EQ(rowMisses.value(), 2u);
}

TEST_F(DramDeviceTest, BanksPipelineIndependently)
{
    // Two accesses to different banks issued together overlap their
    // row latencies; only the shared data bus serializes them.
    Tick done_a = 0;
    Tick done_b = 0;
    dev.access(0x0, false, 0, [&] { done_a = eq.now(); });
    dev.access(Addr(cfg.dramRowBytes), false, 0,
               [&] { done_b = eq.now(); });
    eq.run();
    const Tick xfer = cfg.dramTransferCycles();
    EXPECT_EQ(done_a, xfer + cfg.dramRowMissLatency);
    EXPECT_EQ(done_b, 2 * xfer + cfg.dramRowMissLatency);
}

TEST_F(DramDeviceTest, FrFcfsPrefersTheOpenRow)
{
    // Open row 0 of bank 0, then queue a row-miss request ahead of a
    // row-hit request: the picker reorders, completing the hit first.
    accessDone(0x0, false);
    const Addr miss_addr =
        Addr(cfg.dramRowBytes) * cfg.dramBanksPerMc;  // bank 0, row N
    std::vector<int> order;
    dev.access(miss_addr, false, 0, [&] { order.push_back(1); });
    dev.access(0x40, false, 0, [&] { order.push_back(2); });
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2);  // the open-row request jumped the queue
    EXPECT_EQ(order[1], 1);
}

TEST_F(DramDeviceTest, RequestPoolIsReused)
{
    for (int i = 0; i < 100; ++i)
        accessDone(Addr(i % 4) * kLineBytes, i % 2 == 0);
    EXPECT_LE(dev.poolAllocated(), 2u);
    EXPECT_EQ(dev.poolFree(), dev.poolAllocated());
}

// --- Hybrid memory: the controller's DRAM tier -----------------------

class HybridMcTest : public ::testing::Test
{
  protected:
    HybridMcTest()
    {
        cfg.hybridMode = HybridMode::MemoryMode;
        cfg.dramCacheMBPerMc = 1;
        mc = std::make_unique<MemoryController>(0, eq, cfg, nvm,
                                                stats);
    }

    Tick
    readDone(Addr addr, Line *out = nullptr)
    {
        const Tick start = eq.now();
        Tick done = 0;
        mc->readLine(addr, ReadKind::Demand, [&, out](const Line &l) {
            done = eq.now();
            if (out)
                *out = l;
        });
        eq.run();
        return done - start;
    }

    SystemConfig cfg;
    EventQueue eq;
    DataImage nvm;
    StatSet stats;
    std::unique_ptr<MemoryController> mc;
};

TEST_F(HybridMcTest, ReadMissFillsThenHitsAtDramLatency)
{
    Line data{};
    data[3] = 0x5a;
    nvm.writeLine(0x40000, data);

    Line back{};
    const Tick miss = readDone(0x40000, &back);
    EXPECT_EQ(back[3], 0x5a);
    EXPECT_EQ(stats.value("mc0", "dram_misses"), 1u);
    EXPECT_EQ(stats.value("mc0", "dram_hits"), 0u);

    const Tick hit = readDone(0x40000, &back);
    EXPECT_EQ(back[3], 0x5a);
    EXPECT_EQ(stats.value("mc0", "dram_hits"), 1u);
    EXPECT_LT(hit, miss);
    EXPECT_LT(hit, cfg.nvmReadLatency);
}

TEST_F(HybridMcTest, AbsorbedWritebackIsFastButNotDurable)
{
    Line data{};
    data[0] = 0x77;
    Tick acked = 0;
    mc->writeLine(0x50000, data, WriteKind::DataWb,
                  [&] { acked = eq.now(); });
    eq.run();
    // Acked at DRAM latency, well under the NVM device write.
    EXPECT_GT(acked, 0u);
    EXPECT_LT(acked, cfg.nvmWriteLatency);
    EXPECT_EQ(stats.value("mc0", "dram_wr_absorbed"), 1u);

    // The bytes are visible to reads...
    Line back{};
    readDone(0x50000, &back);
    EXPECT_EQ(back[0], 0x77);
    // ...but never reached NVM: the line is one power failure away
    // from vanishing.
    EXPECT_EQ(nvm.readLine(0x50000)[0], 0);
    EXPECT_EQ(mc->dramCache()->dirtyLines(), 1u);
}

TEST_F(HybridMcTest, FillPrefersWriteAcceptedDuringNvmReadWindow)
{
    // A read miss is in flight when a write-through write of the same
    // line is accepted (log/REDO traffic is not FIFO-ordered against
    // home-tile reads, so this race is reachable). writeThrough() was
    // a no-op -- the line was absent -- so the demand fill must
    // install the in-flight write's bytes, not the read's issue-time
    // snapshot; otherwise later reads hit a permanently stale clean
    // line.
    Line oldv{};
    oldv[0] = 1;
    nvm.writeLine(0xa0000, oldv);

    Tick read_done = 0;
    mc->readLine(0xa0000, ReadKind::Demand,
                 [&](const Line &) { read_done = eq.now(); });
    eq.run(100);  // read issued to the device, completion pending
    ASSERT_EQ(read_done, 0u);

    Line newv{};
    newv[0] = 2;
    mc->writeLine(0xa0000, newv, WriteKind::Flush, {});
    eq.run();
    ASSERT_GT(read_done, 0u);

    // The cached copy must carry the newer bytes.
    Line back{};
    readDone(0xa0000, &back);
    EXPECT_EQ(stats.value("mc0", "dram_hits"), 1u);
    EXPECT_EQ(back[0], 2);
    EXPECT_EQ(nvm.readLine(0xa0000)[0], 2);
}

TEST_F(HybridMcTest, PowerFailDropsDirtyDramLines)
{
    Line data{};
    data[0] = 0x42;
    mc->writeLine(0x60000, data, WriteKind::DataWb, {});
    eq.run();
    ASSERT_EQ(mc->dramCache()->dirtyLines(), 1u);

    mc->powerFail();
    EXPECT_EQ(mc->dramCache()->dirtyLines(), 0u);
    EXPECT_FALSE(mc->dramCache()->contains(0x60000));
    // Only NVM-resident bytes survive: the absorbed write is gone.
    EXPECT_EQ(nvm.readLine(0x60000)[0], 0);
}

TEST_F(HybridMcTest, FlushWritesThroughToNvm)
{
    Line data{};
    data[7] = 0x99;
    bool durable = false;
    mc->writeLine(0x70000, data, WriteKind::Flush,
                  [&] { durable = true; });
    eq.run();
    EXPECT_TRUE(durable);
    EXPECT_EQ(nvm.readLine(0x70000)[7], 0x99);
}

TEST_F(HybridMcTest, LogWritesAreNeverAbsorbed)
{
    Line data{};
    data[1] = 0x13;
    mc->writeLine(0x80000, data, WriteKind::LogData, {});
    mc->writeLine(0x80040, data, WriteKind::LogHeader, {});
    eq.run();
    EXPECT_EQ(nvm.readLine(0x80000)[1], 0x13);
    EXPECT_EQ(nvm.readLine(0x80040)[1], 0x13);
    EXPECT_EQ(stats.value("mc0", "dram_wr_absorbed"), 0u);
}

TEST_F(HybridMcTest, WhenLineDurableCleansesDirtyDramLine)
{
    // A committed line whose only current copy is a dirty absorbed
    // writeback: whenLineDurable must push it to NVM before acking,
    // or "durable" would be a lie.
    Line data{};
    data[0] = 0xcd;
    mc->writeLine(0x90000, data, WriteKind::DataWb, {});
    eq.run();
    ASSERT_EQ(nvm.readLine(0x90000)[0], 0);

    bool durable = false;
    mc->whenLineDurable(0x90000, [&] { durable = true; });
    EXPECT_FALSE(durable);
    eq.run();
    EXPECT_TRUE(durable);
    EXPECT_EQ(nvm.readLine(0x90000)[0], 0xcd);
    EXPECT_EQ(stats.value("mc0", "dram_cleanses"), 1u);
    EXPECT_EQ(mc->dramCache()->dirtyLines(), 0u);
}

TEST_F(HybridMcTest, DirtyVictimWritesBackToNvm)
{
    // Direct-mapped 1 MB cache: two lines one cache-stride apart
    // conflict; the second absorb displaces the first, whose dirty
    // data must reach NVM through the ordinary write queue.
    SystemConfig cfg1 = cfg;
    cfg1.dramCacheAssoc = 1;
    MemoryController mc1(1, eq, cfg1, nvm, stats);
    const Addr stride =
        Addr(cfg1.dramCacheMBPerMc) * 1024 * 1024;

    Line a{};
    a[0] = 0xaa;
    Line b{};
    b[0] = 0xbb;
    mc1.writeLine(0x1000, a, WriteKind::DataWb, {});
    eq.run();
    mc1.writeLine(0x1000 + stride, b, WriteKind::DataWb, {});
    eq.run();

    EXPECT_EQ(stats.value("mc1", "wb_evictions"), 1u);
    EXPECT_EQ(nvm.readLine(0x1000)[0], 0xaa);      // evicted victim
    EXPECT_EQ(nvm.readLine(0x1000 + stride)[0], 0);  // still absorbed
    EXPECT_EQ(mc1.dramCache()->dirtyLines(), 1u);
}

TEST_F(HybridMcTest, AppDirectWindowBypassesTheCache)
{
    mc->setUncacheableWindow(0x100000, 0x200000);

    // Inside the window: straight to NVM, no DRAM involvement.
    Line data{};
    data[0] = 0x11;
    mc->writeLine(0x100000, data, WriteKind::DataWb, {});
    eq.run();
    EXPECT_EQ(nvm.readLine(0x100000)[0], 0x11);
    EXPECT_FALSE(mc->dramCache()->contains(0x100000));
    readDone(0x100000);
    EXPECT_EQ(stats.value("mc0", "dram_hits"), 0u);
    EXPECT_EQ(stats.value("mc0", "dram_misses"), 0u);

    // Outside the window: cached as usual.
    mc->writeLine(0x300000, data, WriteKind::DataWb, {});
    eq.run();
    EXPECT_TRUE(mc->dramCache()->contains(0x300000));
    EXPECT_EQ(nvm.readLine(0x300000)[0], 0);
}

TEST_F(HybridMcTest, GateBlocksDramVictimWriteback)
{
    // Invariant 2 end to end: a dirty DRAM victim's writeback is a
    // data write reaching NVM, so it must consult the ATOM write gate
    // like any other.
    SystemConfig cfg1 = cfg;
    cfg1.dramCacheAssoc = 1;
    MemoryController mc1(2, eq, cfg1, nvm, stats);
    const Addr stride = Addr(cfg1.dramCacheMBPerMc) * 1024 * 1024;

    TestGate gate;
    gate.locked = 0x2000;
    mc1.setWriteGate(&gate);

    Line a{};
    a[0] = 0xa1;
    mc1.writeLine(0x2000, a, WriteKind::DataWb, {});
    eq.run();
    mc1.writeLine(0x2000 + stride, a, WriteKind::DataWb, {});
    eq.run();
    EXPECT_EQ(nvm.readLine(0x2000)[0], 0);  // victim blocked

    gate.release();
    eq.run();
    EXPECT_EQ(nvm.readLine(0x2000)[0], 0xa1);
    mc1.setWriteGate(nullptr);
}

TEST(HybridAddressMapTest, AppDirectWindowFollowsThePolicy)
{
    SystemConfig cfg;
    cfg.hybridMode = HybridMode::AppDirect;
    {
        AddressMap amap(cfg, Addr(16) * 1024 * 1024);
        // Log placement "direct": log + ADR bypass, data cached.
        EXPECT_EQ(amap.appDirectBase(), amap.logBase());
        EXPECT_EQ(amap.appDirectEnd(), amap.reservedEnd());
        EXPECT_FALSE(inAddrWindow(0x1000, amap.appDirectBase(),
                                  amap.appDirectEnd()));
        EXPECT_TRUE(inAddrWindow(amap.logBase(), amap.appDirectBase(),
                                 amap.appDirectEnd()));
        EXPECT_TRUE(inAddrWindow(amap.adrBase(0), amap.appDirectBase(),
                                 amap.appDirectEnd()));
    }
    cfg.appDirectRegion = AppDirectRegion::DataRegion;
    {
        AddressMap amap(cfg, Addr(16) * 1024 * 1024);
        EXPECT_EQ(amap.appDirectBase(), 0u);
        EXPECT_EQ(amap.appDirectEnd(), amap.logBase());
        EXPECT_TRUE(inAddrWindow(0x1000, amap.appDirectBase(),
                                 amap.appDirectEnd()));
        EXPECT_FALSE(inAddrWindow(amap.logBase(), amap.appDirectBase(),
                                  amap.appDirectEnd()));
    }
    cfg.hybridMode = HybridMode::NvmOnly;
    {
        // No tier at all: the window is the canonical empty [0, 0).
        AddressMap amap(cfg, Addr(16) * 1024 * 1024);
        EXPECT_EQ(amap.appDirectBase(), 0u);
        EXPECT_EQ(amap.appDirectEnd(), 0u);
        EXPECT_FALSE(inAddrWindow(0x1000, amap.appDirectBase(),
                                  amap.appDirectEnd()));
    }
}

} // namespace
} // namespace atomsim
