/**
 * @file
 * Golden-trace regression tests.
 *
 * Runs two fixed workloads -- a quickstart-sized hash micro-benchmark
 * and a tpcc-sized OLTP run -- with a tracer attached to the mesh, and
 * hashes every packet delivery as a (tick, node, message-kind) triple
 * (golden_support.hh owns the hash and the workload configs; the
 * checked-in values live in the generated tests/goldens.inc). The hash
 * pins the simulation down tick-for-tick: any kernel, NoC or protocol
 * refactor that perturbs event timing or ordering -- even two
 * same-tick deliveries swapping places -- changes it.
 *
 * If a change *intentionally* alters timing (a new latency model, a
 * protocol change), regenerate instead of hand-editing: run this
 * binary with `--dump-goldens`, which rewrites tests/goldens.inc, and
 * commit the regenerated file together with the timing change -- with
 * a commit message explaining why the timing moved.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "golden_support.hh"

namespace atomsim
{
namespace
{

using golden::GoldenRun;
using golden::runGoldenQuickstart;
using golden::runGoldenTpcc;

TEST(GoldenTraceTest, QuickstartSizedRunIsTickForTickStable)
{
    const GoldenRun r = runGoldenQuickstart(0);
    EXPECT_EQ(r.txns, 8u * 6u);
    EXPECT_EQ(r.deliveries, golden::kGoldenQuickstartDeliveries)
        << "actual deliveries: " << r.deliveries
        << " (rerun with --dump-goldens for intentional changes)";
    EXPECT_EQ(r.hash, golden::kGoldenQuickstartHash)
        << "actual hash: 0x" << std::hex << r.hash
        << " (rerun with --dump-goldens for intentional changes)";
}

TEST(GoldenTraceTest, TpccSizedRunIsTickForTickStable)
{
    const GoldenRun r = runGoldenTpcc(0);
    EXPECT_EQ(r.txns, 4u * 4u);
    EXPECT_EQ(r.deliveries, golden::kGoldenTpccDeliveries)
        << "actual deliveries: " << r.deliveries
        << " (rerun with --dump-goldens for intentional changes)";
    EXPECT_EQ(r.hash, golden::kGoldenTpccHash)
        << "actual hash: 0x" << std::hex << r.hash
        << " (rerun with --dump-goldens for intentional changes)";
}

// Determinism of the trace itself (same config + seed -> same stream),
// independent of the checked-in goldens: a fresh System must reproduce
// the exact delivery sequence.
TEST(GoldenTraceTest, BackToBackRunsProduceIdenticalTraces)
{
    const GoldenRun a = runGoldenQuickstart(0);
    const GoldenRun b = runGoldenQuickstart(0);
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_EQ(a.deliveries, b.deliveries);
}

// The regeneration machinery itself: running `--dump-goldens` with no
// timing change must reproduce the checked-in tests/goldens.inc
// byte-identically -- constants, comments, formatting, everything.
// This guards the regeneration path (shared renderer, workload
// configs, hash definition) against silent drift: if this test fails
// while the hash tests above pass, the *dump machinery* changed, not
// the simulation.
TEST(GoldenTraceTest, DumpGoldensIsIdempotent)
{
    std::ifstream in(ATOMSIM_GOLDENS_PATH, std::ios::binary);
    ASSERT_TRUE(in.good()) << "cannot read " << ATOMSIM_GOLDENS_PATH;
    std::ostringstream checked_in;
    checked_in << in.rdbuf();
    EXPECT_EQ(golden::renderGoldens(), checked_in.str());
}

} // namespace
} // namespace atomsim
