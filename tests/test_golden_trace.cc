/**
 * @file
 * Golden-trace regression tests.
 *
 * Runs two fixed workloads -- a quickstart-sized hash micro-benchmark
 * and a tpcc-sized OLTP run -- with a tracer attached to the mesh, and
 * hashes every packet delivery as a (tick, node, message-kind) triple.
 * The FNV-1a hash of the full sequence must match the checked-in golden
 * value, which pins the simulation down tick-for-tick: any kernel, NoC
 * or protocol refactor that perturbs event timing or ordering -- even
 * two same-tick deliveries swapping places -- changes the hash.
 *
 * If a change *intentionally* alters timing (a new latency model, a
 * protocol change), regenerate the goldens: run this test, take the
 * "actual" values from the failure message, and update the constants
 * below in the same commit that changes the timing -- with a commit
 * message explaining why the timing moved.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "net/mesh.hh"
#include "workloads/hash_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace atomsim
{
namespace
{

/** FNV-1a over the (tick, node, kind) delivery stream. */
class TraceHasher : public Mesh::Tracer
{
  public:
    void
    onDeliver(Tick tick, std::uint32_t node, MsgType type) override
    {
        mix(tick);
        mix(node);
        mix(std::uint64_t(type));
        ++_deliveries;
    }

    std::uint64_t hash() const { return _hash; }
    std::uint64_t deliveries() const { return _deliveries; }

  private:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _hash ^= (v >> (8 * i)) & 0xff;
            _hash *= 1099511628211ull;
        }
    }

    std::uint64_t _hash = 14695981039346656037ull;
    std::uint64_t _deliveries = 0;
};

struct TraceResult
{
    std::uint64_t hash;
    std::uint64_t deliveries;
    std::uint64_t txns;
};

/** Quickstart-sized: the hash micro-benchmark on a scaled-down
 * Table-I machine under ATOM-OPT. */
TraceResult
runQuickstartSized()
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    cfg.design = DesignKind::AtomOpt;

    MicroParams params;
    params.entryBytes = 256;
    params.initialItems = 24;
    params.txnsPerCore = 6;

    HashWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    TraceHasher tracer;
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const RunResult result = runner.run();
    return TraceResult{tracer.hash(), tracer.deliveries(), result.txns};
}

/** tpcc-sized: TPC-C new-order on a small multi-core config under
 * ATOM (posted logging, no source logging). */
TraceResult
runTpccSized()
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = DesignKind::Atom;

    tpcc::ScaleParams scale;
    scale.customersPerDistrict = 8;
    scale.items = 128;
    TpccWorkload workload(scale);

    Runner runner(cfg, workload, /*txns_per_core=*/4,
                  Addr(128) * 1024 * 1024);
    TraceHasher tracer;
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const RunResult result = runner.run();
    return TraceResult{tracer.hash(), tracer.deliveries(), result.txns};
}

// Golden values. Regenerate ONLY for intentional timing changes (see
// the file header).
constexpr std::uint64_t kGoldenQuickstartHash = 0x86c88f25733ed5aeull;
constexpr std::uint64_t kGoldenQuickstartDeliveries = 1736ull;
constexpr std::uint64_t kGoldenTpccHash = 0x76155a7121491490ull;
constexpr std::uint64_t kGoldenTpccDeliveries = 9316ull;

TEST(GoldenTraceTest, QuickstartSizedRunIsTickForTickStable)
{
    const TraceResult r = runQuickstartSized();
    EXPECT_EQ(r.txns, 8u * 6u);
    EXPECT_EQ(r.deliveries, kGoldenQuickstartDeliveries)
        << "actual deliveries: " << r.deliveries;
    EXPECT_EQ(r.hash, kGoldenQuickstartHash)
        << "actual hash: 0x" << std::hex << r.hash;
}

TEST(GoldenTraceTest, TpccSizedRunIsTickForTickStable)
{
    const TraceResult r = runTpccSized();
    EXPECT_EQ(r.txns, 4u * 4u);
    EXPECT_EQ(r.deliveries, kGoldenTpccDeliveries)
        << "actual deliveries: " << r.deliveries;
    EXPECT_EQ(r.hash, kGoldenTpccHash)
        << "actual hash: 0x" << std::hex << r.hash;
}

// Determinism of the trace itself (same config + seed -> same stream),
// independent of the checked-in goldens: a fresh System must reproduce
// the exact delivery sequence.
TEST(GoldenTraceTest, BackToBackRunsProduceIdenticalTraces)
{
    const TraceResult a = runQuickstartSized();
    const TraceResult b = runQuickstartSized();
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_EQ(a.deliveries, b.deliveries);
}

} // namespace
} // namespace atomsim
