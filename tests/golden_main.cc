/**
 * @file
 * Custom gtest main for the golden-bearing test binaries: running with
 * `--dump-goldens` regenerates tests/goldens.inc instead of testing
 * (see golden_support.hh).
 */

#include <gtest/gtest.h>

#include "golden_support.hh"

int
main(int argc, char **argv)
{
    if (atomsim::golden::maybeDumpGoldens(argc, argv))
        return 0;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
