/**
 * @file
 * Shared golden-trace machinery for test_golden_trace.cc and
 * test_sharded.cc -- the single source of truth for how delivery
 * streams are hashed, which workloads the goldens pin, and how the
 * checked-in constants regenerate.
 *
 * The golden constants live in tests/goldens.inc (generated -- never
 * hand-edit). When a PR intentionally changes simulated timing (a new
 * latency model, a protocol change), run either test binary with
 * `--dump-goldens`: it recomputes every constant -- the sequential
 * quickstart/tpcc hashes and the windowed (sharded) hashes -- and
 * rewrites goldens.inc in place. Commit the regenerated file together
 * with the timing change and explain the move in the commit message.
 */

#ifndef ATOMSIM_TESTS_GOLDEN_SUPPORT_HH
#define ATOMSIM_TESTS_GOLDEN_SUPPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/mesh.hh"
#include "sim/types.hh"

namespace atomsim
{
namespace golden
{

// The checked-in golden constants (generated file).
#include "goldens.inc"

/** One (tick, node, kind) delivery record. */
struct StreamRec
{
    Tick tick;
    std::uint32_t node;
    MsgType type;

    bool
    operator==(const StreamRec &o) const
    {
        return tick == o.tick && node == o.node && type == o.type;
    }
};

/**
 * FNV-1a over the (tick, node, kind) delivery stream -- THE hash every
 * golden constant is computed with. Optionally records the full stream
 * for element-wise comparison.
 */
class TraceHasher : public Mesh::Tracer
{
  public:
    explicit TraceHasher(bool record_stream = false)
        : _record(record_stream)
    {
    }

    void
    onDeliver(Tick tick, std::uint32_t node, MsgType type) override
    {
        mix(tick);
        mix(node);
        mix(std::uint64_t(type));
        ++_deliveries;
        if (_record)
            _stream.push_back(StreamRec{tick, node, type});
    }

    std::uint64_t hash() const { return _hash; }
    std::uint64_t deliveries() const { return _deliveries; }
    std::vector<StreamRec> &stream() { return _stream; }

  private:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            _hash ^= (v >> (8 * i)) & 0xff;
            _hash *= 1099511628211ull;
        }
    }

    std::uint64_t _hash = 14695981039346656037ull;
    std::uint64_t _deliveries = 0;
    bool _record;
    std::vector<StreamRec> _stream;
};

/** Everything a golden run produces. */
struct GoldenRun
{
    std::uint64_t hash = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t txns = 0;
    Tick cycles = 0;
    std::vector<StreamRec> stream;  //!< filled when record_stream
    std::vector<std::pair<std::string, std::uint64_t>> stats;
};

/**
 * The quickstart-sized golden workload: the hash micro-benchmark on a
 * scaled-down Table-I machine (8 cores, ATOM-OPT). @p shards = 0 runs
 * the sequential kernel; >= 1 the windowed (sharded) kernel.
 */
GoldenRun runGoldenQuickstart(std::uint32_t shards,
                              bool record_stream = false);

/** The tpcc-sized golden workload: TPC-C new-order, 4 cores, ATOM. */
GoldenRun runGoldenTpcc(std::uint32_t shards,
                        bool record_stream = false);

/**
 * Recompute every golden constant (sequential + windowed runs) and
 * render the full goldens.inc file contents. This is the single
 * formatter `--dump-goldens` writes through, so the idempotence test
 * can assert that regenerating with no timing change reproduces the
 * checked-in file byte-identically.
 */
std::string renderGoldens();

/**
 * `--dump-goldens` entry point, shared by both test binaries' mains:
 * if argv contains the flag, recompute every golden constant, rewrite
 * tests/goldens.inc, print the new values, and return true (the
 * caller exits without running gtest).
 */
bool maybeDumpGoldens(int argc, char **argv);

} // namespace golden
} // namespace atomsim

#endif // ATOMSIM_TESTS_GOLDEN_SUPPORT_HH
