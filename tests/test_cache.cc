/**
 * @file
 * Unit tests for the cache substrate: array/LRU, MSHRs, and the
 * L1/L2 coherence protocol exercised through a small System.
 */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"
#include "cache/mshr.hh"
#include "harness/system.hh"

namespace atomsim
{
namespace
{

TEST(CacheArrayTest, InstallAndFind)
{
    CacheArray arr(4 * 1024, 4);  // 16 sets
    CacheLineState *victim = arr.victim(0x1000);
    ASSERT_NE(victim, nullptr);
    EXPECT_FALSE(victim->valid);
    arr.install(victim, 0x1000);
    EXPECT_EQ(arr.find(0x1000), victim);
    EXPECT_EQ(arr.find(0x1020), victim);  // same line
    EXPECT_EQ(arr.find(0x2000), nullptr);
}

TEST(CacheArrayTest, LruVictimSelection)
{
    CacheArray arr(4 * 1024, 4);
    // Fill one set: lines that alias to set 0 (stride = sets*64).
    const Addr stride = Addr(arr.numSets()) * kLineBytes;
    for (int i = 0; i < 4; ++i)
        arr.install(arr.victim(i * stride), i * stride);
    // Touch line 0 so line 1 becomes LRU.
    arr.touch(0);
    CacheLineState *victim = arr.victim(4 * stride);
    ASSERT_TRUE(victim->valid);
    EXPECT_EQ(victim->tag, stride);  // line 1 was least recently used
}

TEST(CacheArrayTest, InvalidFramePreferredOverLru)
{
    CacheArray arr(4 * 1024, 4);
    const Addr stride = Addr(arr.numSets()) * kLineBytes;
    for (int i = 0; i < 3; ++i)
        arr.install(arr.victim(i * stride), i * stride);
    CacheLineState *victim = arr.victim(7 * stride);
    EXPECT_FALSE(victim->valid);
}

TEST(CacheArrayTest, InvalidateAllClearsState)
{
    CacheArray arr(4 * 1024, 4);
    arr.install(arr.victim(0x40), 0x40);
    arr.invalidateAll();
    EXPECT_EQ(arr.find(0x40), nullptr);
}

TEST(MshrTest, TracksOutstandingMisses)
{
    MshrTable mshrs(2);
    EXPECT_FALSE(mshrs.has(0x100));
    mshrs.allocate(0x100);
    EXPECT_TRUE(mshrs.has(0x100));
    EXPECT_TRUE(mshrs.has(0x13f));  // same line
    EXPECT_FALSE(mshrs.full());
    mshrs.allocate(0x200);
    EXPECT_TRUE(mshrs.full());
}

namespace
{

/** Run a completed miss's waiter chain to the end. */
void
runChain(MshrTable &mshrs, Addr line)
{
    for (MshrTable::Waiter *w = mshrs.complete(line); w;)
        w = mshrs.runAndPop(w);
}

} // namespace

TEST(MshrTest, WaitersRunOnComplete)
{
    MshrTable mshrs(2);
    mshrs.allocate(0x100);
    int ran = 0;
    mshrs.addWaiter(0x100, [&] { ++ran; });
    mshrs.addWaiter(0x100, [&] { ++ran; });
    runChain(mshrs, 0x100);
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(mshrs.has(0x100));
}

TEST(MshrTest, OverflowAdmittedWhenEntryFrees)
{
    MshrTable mshrs(1);
    mshrs.allocate(0x100);
    int overflow_ran = 0;
    mshrs.queueForFree([&] { ++overflow_ran; });
    EXPECT_EQ(mshrs.overflowDepth(), 1u);
    runChain(mshrs, 0x100);
    EXPECT_EQ(overflow_ran, 1);
    EXPECT_EQ(mshrs.overflowDepth(), 0u);
}

TEST(MshrTest, CoalescedWaitersFireInOrder)
{
    MshrTable mshrs(4);
    mshrs.allocate(0x100);
    std::vector<int> order;
    for (int i = 0; i < 6; ++i)
        mshrs.addWaiter(0x100, [&order, i] { order.push_back(i); });
    runChain(mshrs, 0x100);
    ASSERT_EQ(order.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(order[i], i);  // strict FIFO
}

// The continuation is a fixed-capacity inline callable: captures that
// outgrow it fail to compile, so the miss path can never fall back to
// heap allocation. Pin the budget here.
static_assert(MshrTable::kContinuationBytes == 72,
              "MSHR continuation capacity changed: re-audit miss-path "
              "captures and the waiter-node budget");
static_assert(sizeof(MshrTable::Continuation) <=
                  MshrTable::kContinuationBytes + 2 * sizeof(void *),
              "MSHR continuation carries unexpected overhead");

TEST(MshrTest, ContinuationPoolReusedWithoutAllocation)
{
    MshrTable mshrs(4);

    // Warm up: establish the pool high-water mark.
    for (int round = 0; round < 4; ++round) {
        mshrs.allocate(0x100);
        for (int i = 0; i < 8; ++i)
            mshrs.addWaiter(0x100, [] {});
        runChain(mshrs, 0x100);
    }
    const std::size_t high_water = mshrs.waiterPoolAllocated();
    EXPECT_GE(high_water, 8u);
    EXPECT_EQ(mshrs.waiterPoolFree(), high_water);

    // Churn: repeated allocate/wait/complete cycles (including
    // overflow admissions) must reuse pooled nodes, never grow.
    for (int round = 0; round < 1000; ++round) {
        const Addr line = 0x1000 + Addr(round % 4) * 0x40;
        mshrs.allocate(line);
        for (int i = 0; i < 8; ++i)
            mshrs.addWaiter(line, [] {});
        runChain(mshrs, line);
    }
    EXPECT_EQ(mshrs.waiterPoolAllocated(), high_water);
    EXPECT_EQ(mshrs.waiterPoolFree(), high_water);
}

TEST(MshrTest, EntriesReusedAcrossDistinctLines)
{
    MshrTable mshrs(2);
    for (int round = 0; round < 64; ++round) {
        const Addr a = 0x4000 + Addr(round) * 0x80;
        const Addr b = a + 0x40;
        mshrs.allocate(a);
        mshrs.allocate(b);
        EXPECT_TRUE(mshrs.full());
        int ran = 0;
        mshrs.addWaiter(a, [&] { ++ran; });
        mshrs.addWaiter(b, [&] { ++ran; });
        runChain(mshrs, a);
        runChain(mshrs, b);
        EXPECT_EQ(ran, 2);
        EXPECT_EQ(mshrs.active(), 0u);
    }
    // Two entries' worth of single waiters: the pool never outgrows
    // the concurrent peak.
    EXPECT_LE(mshrs.waiterPoolAllocated(), 2u);
}

TEST(MshrTest, WaiterMayReallocateSameLineReentrantly)
{
    // A waiter that immediately re-misses the same line (the L1 retry
    // pattern) must see a fresh entry, not the completing one.
    MshrTable mshrs(2);
    mshrs.allocate(0x100);
    bool reallocated = false;
    mshrs.addWaiter(0x100, [&] {
        EXPECT_FALSE(mshrs.has(0x100));
        mshrs.allocate(0x100);
        mshrs.addWaiter(0x100, [&] { reallocated = true; });
    });
    runChain(mshrs, 0x100);
    EXPECT_TRUE(mshrs.has(0x100));
    runChain(mshrs, 0x100);
    EXPECT_TRUE(reallocated);
}

/** Protocol tests: drive L1s directly inside a small system. */
class ProtocolTest : public ::testing::Test
{
  protected:
    static SystemConfig
    config()
    {
        SystemConfig cfg;
        cfg.numCores = 4;
        cfg.l2Tiles = 4;
        cfg.meshRows = 2;
        cfg.ausPerMc = 4;
        cfg.design = DesignKind::NonAtomic;
        return cfg;
    }

    ProtocolTest() : sys(config(), Addr(16) * 1024 * 1024) {}

    void
    drain()
    {
        sys.eventQueue().run();
    }

    System sys;
    static constexpr Addr kAddr = 0x10040;
};

TEST_F(ProtocolTest, LoadMissFillsExclusive)
{
    bool done = false;
    sys.l1(0).load(kAddr, [&] { done = true; });
    drain();
    ASSERT_TRUE(done);
    const CacheLineState *line = sys.l1(0).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Exclusive);
    EXPECT_FALSE(line->dirty);
}

TEST_F(ProtocolTest, StoreMissFillsModifiedWithData)
{
    const std::uint64_t value = 0x1122334455667788ULL;
    bool done = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { done = true; });
    drain();
    ASSERT_TRUE(done);
    const CacheLineState *line = sys.l1(0).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Modified);
    EXPECT_TRUE(line->dirty);
    std::uint64_t back;
    std::memcpy(&back, line->data.data() + (kAddr % kLineBytes), 8);
    EXPECT_EQ(back, value);
}

TEST_F(ProtocolTest, SecondReaderDowngradesOwnerToShared)
{
    const std::uint64_t value = 42;
    bool s0 = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { s0 = true; });
    drain();
    ASSERT_TRUE(s0);

    bool l1done = false;
    sys.l1(1).load(kAddr, [&] { l1done = true; });
    drain();
    ASSERT_TRUE(l1done);

    const CacheLineState *owner = sys.l1(0).array().find(kAddr);
    const CacheLineState *reader = sys.l1(1).array().find(kAddr);
    ASSERT_NE(owner, nullptr);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(owner->state, CoherenceState::Shared);
    EXPECT_EQ(reader->state, CoherenceState::Shared);
    // Reader sees the writer's data through the 3-hop forward.
    std::uint64_t back;
    std::memcpy(&back, reader->data.data() + (kAddr % kLineBytes), 8);
    EXPECT_EQ(back, 42u);
}

TEST_F(ProtocolTest, WriterInvalidatesSharers)
{
    bool a = false;
    bool b = false;
    sys.l1(0).load(kAddr, [&] { a = true; });
    drain();
    sys.l1(1).load(kAddr, [&] { b = true; });
    drain();
    ASSERT_TRUE(a && b);

    const std::uint64_t value = 7;
    bool wrote = false;
    sys.l1(2).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    drain();
    ASSERT_TRUE(wrote);

    EXPECT_EQ(sys.l1(0).array().find(kAddr), nullptr);
    EXPECT_EQ(sys.l1(1).array().find(kAddr), nullptr);
    const CacheLineState *writer = sys.l1(2).array().find(kAddr);
    ASSERT_NE(writer, nullptr);
    EXPECT_EQ(writer->state, CoherenceState::Modified);
}

TEST_F(ProtocolTest, OwnershipMigratesBetweenWriters)
{
    const std::uint64_t v1 = 1;
    const std::uint64_t v2 = 2;
    bool w1 = false;
    bool w2 = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&v1), 8,
                    [&] { w1 = true; });
    drain();
    sys.l1(1).store(kAddr + 8, reinterpret_cast<const std::uint8_t *>(&v2),
                    8, [&] { w2 = true; });
    drain();
    ASSERT_TRUE(w1 && w2);

    EXPECT_EQ(sys.l1(0).array().find(kAddr), nullptr);
    const CacheLineState *line = sys.l1(1).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Modified);
    // The second writer's line must contain both stores.
    std::uint64_t back1;
    std::uint64_t back2;
    std::memcpy(&back1, line->data.data() + (kAddr % kLineBytes), 8);
    std::memcpy(&back2, line->data.data() + (kAddr % kLineBytes) + 8, 8);
    EXPECT_EQ(back1, 1u);
    EXPECT_EQ(back2, 2u);
}

TEST_F(ProtocolTest, UpgradeFromSharedToModified)
{
    bool a = false;
    sys.l1(0).load(kAddr, [&] { a = true; });
    drain();
    sys.l1(1).load(kAddr, [&] { a = true; });
    drain();
    // Core 0 is Shared now; store triggers an upgrade.
    const std::uint64_t value = 9;
    bool wrote = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    drain();
    ASSERT_TRUE(wrote);
    const CacheLineState *line = sys.l1(0).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Modified);
    EXPECT_EQ(sys.l1(1).array().find(kAddr), nullptr);
}

TEST_F(ProtocolTest, FlushMakesLineDurableAndClean)
{
    const std::uint64_t value = 0xfeedfaceULL;
    bool wrote = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    drain();
    ASSERT_TRUE(wrote);
    EXPECT_EQ(sys.nvmImage().load64(kAddr), 0u);  // still volatile

    bool flushed = false;
    sys.l1(0).flush(kAddr, [&] { flushed = true; });
    drain();
    ASSERT_TRUE(flushed);
    EXPECT_EQ(sys.nvmImage().load64(kAddr), value);

    const CacheLineState *line = sys.l1(0).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_FALSE(line->dirty);   // clean after writeback
    EXPECT_TRUE(line->valid);    // clwb keeps the line cached
}

TEST_F(ProtocolTest, FlushOfCleanLineStillAcks)
{
    bool loaded = false;
    sys.l1(0).load(kAddr, [&] { loaded = true; });
    drain();
    bool flushed = false;
    sys.l1(0).flush(kAddr, [&] { flushed = true; });
    drain();
    EXPECT_TRUE(flushed);
}

TEST_F(ProtocolTest, EvictionWritesBackThroughL2)
{
    // Fill one L1 set beyond capacity with dirty lines; the victim's
    // data must survive in the L2 and be readable by another core.
    const std::uint32_t sets =
        config().l1SizeBytes / (config().l1Assoc * kLineBytes);
    const Addr stride = Addr(sets) * kLineBytes;
    const Addr base = 0x40000;

    for (std::uint32_t i = 0; i <= config().l1Assoc; ++i) {
        const std::uint64_t value = 100 + i;
        bool done = false;
        sys.l1(0).store(base + i * stride,
                        reinterpret_cast<const std::uint8_t *>(&value), 8,
                        [&] { done = true; });
        drain();
        ASSERT_TRUE(done);
    }
    // The first line was evicted from the L1.
    EXPECT_EQ(sys.l1(0).array().find(base), nullptr);

    bool read = false;
    sys.l1(1).load(base, [&] { read = true; });
    drain();
    ASSERT_TRUE(read);
    const CacheLineState *line = sys.l1(1).array().find(base);
    ASSERT_NE(line, nullptr);
    std::uint64_t back;
    std::memcpy(&back, line->data.data(), 8);
    EXPECT_EQ(back, 100u);
}

TEST_F(ProtocolTest, PowerFailReclaimsInFlightStoreState)
{
    // Leave a store mid-miss (its continuation lives in an MSHR
    // waiter pointing at a pooled PendingStore slot), then pull the
    // plug: the slot must return to the pool, not strand.
    const std::uint64_t value = 1;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [] {});
    sys.eventQueue().run(sys.eventQueue().now() + 5);
    EXPECT_EQ(sys.l1(0).outstandingMisses(), 1u);
    EXPECT_EQ(sys.l1(0).storePoolAllocated(), 1u);
    EXPECT_EQ(sys.l1(0).storePoolFree(), 0u);

    sys.powerFail();
    EXPECT_EQ(sys.l1(0).outstandingMisses(), 0u);
    EXPECT_EQ(sys.l1(0).storePoolFree(), sys.l1(0).storePoolAllocated());
}

TEST_F(ProtocolTest, MshrMergesConcurrentAccessesToOneLine)
{
    int done = 0;
    sys.l1(0).load(kAddr, [&] { ++done; });
    sys.l1(0).load(kAddr + 8, [&] { ++done; });
    sys.l1(0).load(kAddr + 16, [&] { ++done; });
    drain();
    EXPECT_EQ(done, 3);
    // A single L2 miss despite three accesses.
    EXPECT_EQ(sys.stats().sum("l2t", "misses"), 1u);
}

} // namespace
} // namespace atomsim
