/**
 * @file
 * Unit tests for the cache substrate: array/LRU, MSHRs, and the
 * L1/L2 coherence protocol exercised through a small System.
 */

#include <gtest/gtest.h>

#include <utility>

#include "cache/cache_array.hh"
#include "cache/directory.hh"
#include "cache/mshr.hh"
#include "harness/system.hh"
#include "net/mesh.hh"

namespace atomsim
{
namespace
{

TEST(CacheArrayTest, InstallAndFind)
{
    CacheArray arr(4 * 1024, 4);  // 16 sets
    CacheLineState *victim = arr.victim(0x1000);
    ASSERT_NE(victim, nullptr);
    EXPECT_FALSE(victim->valid);
    arr.install(victim, 0x1000);
    EXPECT_EQ(arr.find(0x1000), victim);
    EXPECT_EQ(arr.find(0x1020), victim);  // same line
    EXPECT_EQ(arr.find(0x2000), nullptr);
}

TEST(CacheArrayTest, LruVictimSelection)
{
    CacheArray arr(4 * 1024, 4);
    // Fill one set: lines that alias to set 0 (stride = sets*64).
    const Addr stride = Addr(arr.numSets()) * kLineBytes;
    for (int i = 0; i < 4; ++i)
        arr.install(arr.victim(i * stride), i * stride);
    // Touch line 0 so line 1 becomes LRU.
    arr.touch(0);
    CacheLineState *victim = arr.victim(4 * stride);
    ASSERT_TRUE(victim->valid);
    EXPECT_EQ(victim->tag, stride);  // line 1 was least recently used
}

TEST(CacheArrayTest, InvalidFramePreferredOverLru)
{
    CacheArray arr(4 * 1024, 4);
    const Addr stride = Addr(arr.numSets()) * kLineBytes;
    for (int i = 0; i < 3; ++i)
        arr.install(arr.victim(i * stride), i * stride);
    CacheLineState *victim = arr.victim(7 * stride);
    EXPECT_FALSE(victim->valid);
}

TEST(CacheArrayTest, InvalidateAllClearsState)
{
    CacheArray arr(4 * 1024, 4);
    arr.install(arr.victim(0x40), 0x40);
    arr.invalidateAll();
    EXPECT_EQ(arr.find(0x40), nullptr);
}

TEST(MshrTest, TracksOutstandingMisses)
{
    MshrTable mshrs(2);
    EXPECT_FALSE(mshrs.has(0x100));
    mshrs.allocate(0x100);
    EXPECT_TRUE(mshrs.has(0x100));
    EXPECT_TRUE(mshrs.has(0x13f));  // same line
    EXPECT_FALSE(mshrs.full());
    mshrs.allocate(0x200);
    EXPECT_TRUE(mshrs.full());
}

namespace
{

/** Run a completed miss's waiter chain to the end. */
void
runChain(MshrTable &mshrs, Addr line)
{
    for (MshrTable::Waiter *w = mshrs.complete(line); w;)
        w = mshrs.runAndPop(w);
}

} // namespace

TEST(MshrTest, WaitersRunOnComplete)
{
    MshrTable mshrs(2);
    mshrs.allocate(0x100);
    int ran = 0;
    mshrs.addWaiter(0x100, [&] { ++ran; });
    mshrs.addWaiter(0x100, [&] { ++ran; });
    runChain(mshrs, 0x100);
    EXPECT_EQ(ran, 2);
    EXPECT_FALSE(mshrs.has(0x100));
}

TEST(MshrTest, OverflowAdmittedWhenEntryFrees)
{
    MshrTable mshrs(1);
    mshrs.allocate(0x100);
    int overflow_ran = 0;
    mshrs.queueForFree([&] { ++overflow_ran; });
    EXPECT_EQ(mshrs.overflowDepth(), 1u);
    runChain(mshrs, 0x100);
    EXPECT_EQ(overflow_ran, 1);
    EXPECT_EQ(mshrs.overflowDepth(), 0u);
}

TEST(MshrTest, CoalescedWaitersFireInOrder)
{
    MshrTable mshrs(4);
    mshrs.allocate(0x100);
    std::vector<int> order;
    for (int i = 0; i < 6; ++i)
        mshrs.addWaiter(0x100, [&order, i] { order.push_back(i); });
    runChain(mshrs, 0x100);
    ASSERT_EQ(order.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(order[i], i);  // strict FIFO
}

// The continuation is a fixed-capacity inline callable: captures that
// outgrow it fail to compile, so the miss path can never fall back to
// heap allocation. Pin the budget here.
static_assert(MshrTable::kContinuationBytes == 72,
              "MSHR continuation capacity changed: re-audit miss-path "
              "captures and the waiter-node budget");
static_assert(sizeof(MshrTable::Continuation) <=
                  MshrTable::kContinuationBytes + 2 * sizeof(void *),
              "MSHR continuation carries unexpected overhead");

TEST(MshrTest, ContinuationPoolReusedWithoutAllocation)
{
    MshrTable mshrs(4);

    // Warm up: establish the pool high-water mark.
    for (int round = 0; round < 4; ++round) {
        mshrs.allocate(0x100);
        for (int i = 0; i < 8; ++i)
            mshrs.addWaiter(0x100, [] {});
        runChain(mshrs, 0x100);
    }
    const std::size_t high_water = mshrs.waiterPoolAllocated();
    EXPECT_GE(high_water, 8u);
    EXPECT_EQ(mshrs.waiterPoolFree(), high_water);

    // Churn: repeated allocate/wait/complete cycles (including
    // overflow admissions) must reuse pooled nodes, never grow.
    for (int round = 0; round < 1000; ++round) {
        const Addr line = 0x1000 + Addr(round % 4) * 0x40;
        mshrs.allocate(line);
        for (int i = 0; i < 8; ++i)
            mshrs.addWaiter(line, [] {});
        runChain(mshrs, line);
    }
    EXPECT_EQ(mshrs.waiterPoolAllocated(), high_water);
    EXPECT_EQ(mshrs.waiterPoolFree(), high_water);
}

TEST(MshrTest, EntriesReusedAcrossDistinctLines)
{
    MshrTable mshrs(2);
    for (int round = 0; round < 64; ++round) {
        const Addr a = 0x4000 + Addr(round) * 0x80;
        const Addr b = a + 0x40;
        mshrs.allocate(a);
        mshrs.allocate(b);
        EXPECT_TRUE(mshrs.full());
        int ran = 0;
        mshrs.addWaiter(a, [&] { ++ran; });
        mshrs.addWaiter(b, [&] { ++ran; });
        runChain(mshrs, a);
        runChain(mshrs, b);
        EXPECT_EQ(ran, 2);
        EXPECT_EQ(mshrs.active(), 0u);
    }
    // Two entries' worth of single waiters: the pool never outgrows
    // the concurrent peak.
    EXPECT_LE(mshrs.waiterPoolAllocated(), 2u);
}

TEST(MshrTest, WaiterMayReallocateSameLineReentrantly)
{
    // A waiter that immediately re-misses the same line (the L1 retry
    // pattern) must see a fresh entry, not the completing one.
    MshrTable mshrs(2);
    mshrs.allocate(0x100);
    bool reallocated = false;
    mshrs.addWaiter(0x100, [&] {
        EXPECT_FALSE(mshrs.has(0x100));
        mshrs.allocate(0x100);
        mshrs.addWaiter(0x100, [&] { reallocated = true; });
    });
    runChain(mshrs, 0x100);
    EXPECT_TRUE(mshrs.has(0x100));
    runChain(mshrs, 0x100);
    EXPECT_TRUE(reallocated);
}

/** Protocol tests: drive L1s directly inside a small system. */
class ProtocolTest : public ::testing::Test
{
  protected:
    static SystemConfig
    config()
    {
        SystemConfig cfg;
        cfg.numCores = 4;
        cfg.l2Tiles = 4;
        cfg.meshRows = 2;
        cfg.ausPerMc = 4;
        cfg.design = DesignKind::NonAtomic;
        return cfg;
    }

    ProtocolTest() : sys(config(), Addr(16) * 1024 * 1024) {}

    void
    drain()
    {
        sys.eventQueue().run();
    }

    System sys;
    static constexpr Addr kAddr = 0x10040;
};

TEST_F(ProtocolTest, LoadMissFillsExclusive)
{
    bool done = false;
    sys.l1(0).load(kAddr, [&] { done = true; });
    drain();
    ASSERT_TRUE(done);
    const CacheLineState *line = sys.l1(0).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Exclusive);
    EXPECT_FALSE(line->dirty);
}

TEST_F(ProtocolTest, StoreMissFillsModifiedWithData)
{
    const std::uint64_t value = 0x1122334455667788ULL;
    bool done = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { done = true; });
    drain();
    ASSERT_TRUE(done);
    const CacheLineState *line = sys.l1(0).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Modified);
    EXPECT_TRUE(line->dirty);
    std::uint64_t back;
    std::memcpy(&back, line->data.data() + (kAddr % kLineBytes), 8);
    EXPECT_EQ(back, value);
}

TEST_F(ProtocolTest, SecondReaderDowngradesOwnerToShared)
{
    const std::uint64_t value = 42;
    bool s0 = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { s0 = true; });
    drain();
    ASSERT_TRUE(s0);

    bool l1done = false;
    sys.l1(1).load(kAddr, [&] { l1done = true; });
    drain();
    ASSERT_TRUE(l1done);

    const CacheLineState *owner = sys.l1(0).array().find(kAddr);
    const CacheLineState *reader = sys.l1(1).array().find(kAddr);
    ASSERT_NE(owner, nullptr);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(owner->state, CoherenceState::Shared);
    EXPECT_EQ(reader->state, CoherenceState::Shared);
    // Reader sees the writer's data through the 3-hop forward.
    std::uint64_t back;
    std::memcpy(&back, reader->data.data() + (kAddr % kLineBytes), 8);
    EXPECT_EQ(back, 42u);
}

TEST_F(ProtocolTest, WriterInvalidatesSharers)
{
    bool a = false;
    bool b = false;
    sys.l1(0).load(kAddr, [&] { a = true; });
    drain();
    sys.l1(1).load(kAddr, [&] { b = true; });
    drain();
    ASSERT_TRUE(a && b);

    const std::uint64_t value = 7;
    bool wrote = false;
    sys.l1(2).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    drain();
    ASSERT_TRUE(wrote);

    EXPECT_EQ(sys.l1(0).array().find(kAddr), nullptr);
    EXPECT_EQ(sys.l1(1).array().find(kAddr), nullptr);
    const CacheLineState *writer = sys.l1(2).array().find(kAddr);
    ASSERT_NE(writer, nullptr);
    EXPECT_EQ(writer->state, CoherenceState::Modified);
}

TEST_F(ProtocolTest, OwnershipMigratesBetweenWriters)
{
    const std::uint64_t v1 = 1;
    const std::uint64_t v2 = 2;
    bool w1 = false;
    bool w2 = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&v1), 8,
                    [&] { w1 = true; });
    drain();
    sys.l1(1).store(kAddr + 8, reinterpret_cast<const std::uint8_t *>(&v2),
                    8, [&] { w2 = true; });
    drain();
    ASSERT_TRUE(w1 && w2);

    EXPECT_EQ(sys.l1(0).array().find(kAddr), nullptr);
    const CacheLineState *line = sys.l1(1).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Modified);
    // The second writer's line must contain both stores.
    std::uint64_t back1;
    std::uint64_t back2;
    std::memcpy(&back1, line->data.data() + (kAddr % kLineBytes), 8);
    std::memcpy(&back2, line->data.data() + (kAddr % kLineBytes) + 8, 8);
    EXPECT_EQ(back1, 1u);
    EXPECT_EQ(back2, 2u);
}

TEST_F(ProtocolTest, UpgradeFromSharedToModified)
{
    bool a = false;
    sys.l1(0).load(kAddr, [&] { a = true; });
    drain();
    sys.l1(1).load(kAddr, [&] { a = true; });
    drain();
    // Core 0 is Shared now; store triggers an upgrade.
    const std::uint64_t value = 9;
    bool wrote = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    drain();
    ASSERT_TRUE(wrote);
    const CacheLineState *line = sys.l1(0).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Modified);
    EXPECT_EQ(sys.l1(1).array().find(kAddr), nullptr);
}

TEST_F(ProtocolTest, FlushMakesLineDurableAndClean)
{
    const std::uint64_t value = 0xfeedfaceULL;
    bool wrote = false;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    drain();
    ASSERT_TRUE(wrote);
    EXPECT_EQ(sys.nvmImage().load64(kAddr), 0u);  // still volatile

    bool flushed = false;
    sys.l1(0).flush(kAddr, [&] { flushed = true; });
    drain();
    ASSERT_TRUE(flushed);
    EXPECT_EQ(sys.nvmImage().load64(kAddr), value);

    const CacheLineState *line = sys.l1(0).array().find(kAddr);
    ASSERT_NE(line, nullptr);
    EXPECT_FALSE(line->dirty);   // clean after writeback
    EXPECT_TRUE(line->valid);    // clwb keeps the line cached
}

TEST_F(ProtocolTest, FlushOfCleanLineStillAcks)
{
    bool loaded = false;
    sys.l1(0).load(kAddr, [&] { loaded = true; });
    drain();
    bool flushed = false;
    sys.l1(0).flush(kAddr, [&] { flushed = true; });
    drain();
    EXPECT_TRUE(flushed);
}

TEST_F(ProtocolTest, EvictionWritesBackThroughL2)
{
    // Fill one L1 set beyond capacity with dirty lines; the victim's
    // data must survive in the L2 and be readable by another core.
    const std::uint32_t sets =
        config().l1SizeBytes / (config().l1Assoc * kLineBytes);
    const Addr stride = Addr(sets) * kLineBytes;
    const Addr base = 0x40000;

    for (std::uint32_t i = 0; i <= config().l1Assoc; ++i) {
        const std::uint64_t value = 100 + i;
        bool done = false;
        sys.l1(0).store(base + i * stride,
                        reinterpret_cast<const std::uint8_t *>(&value), 8,
                        [&] { done = true; });
        drain();
        ASSERT_TRUE(done);
    }
    // The first line was evicted from the L1.
    EXPECT_EQ(sys.l1(0).array().find(base), nullptr);

    bool read = false;
    sys.l1(1).load(base, [&] { read = true; });
    drain();
    ASSERT_TRUE(read);
    const CacheLineState *line = sys.l1(1).array().find(base);
    ASSERT_NE(line, nullptr);
    std::uint64_t back;
    std::memcpy(&back, line->data.data(), 8);
    EXPECT_EQ(back, 100u);
}

TEST_F(ProtocolTest, PowerFailReclaimsInFlightStoreState)
{
    // Leave a store mid-miss (its continuation lives in an MSHR
    // waiter pointing at a pooled PendingStore slot), then pull the
    // plug: the slot must return to the pool, not strand.
    const std::uint64_t value = 1;
    sys.l1(0).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [] {});
    sys.eventQueue().run(sys.eventQueue().now() + 5);
    EXPECT_EQ(sys.l1(0).outstandingMisses(), 1u);
    EXPECT_EQ(sys.l1(0).storePoolAllocated(), 1u);
    EXPECT_EQ(sys.l1(0).storePoolFree(), 0u);

    sys.powerFail();
    EXPECT_EQ(sys.l1(0).outstandingMisses(), 0u);
    EXPECT_EQ(sys.l1(0).storePoolFree(), sys.l1(0).storePoolAllocated());
}

TEST_F(ProtocolTest, MshrMergesConcurrentAccessesToOneLine)
{
    int done = 0;
    sys.l1(0).load(kAddr, [&] { ++done; });
    sys.l1(0).load(kAddr + 8, [&] { ++done; });
    sys.l1(0).load(kAddr + 16, [&] { ++done; });
    drain();
    EXPECT_EQ(done, 3);
    // A single L2 miss despite three accesses.
    EXPECT_EQ(sys.stats().sum("l2t", "misses"), 1u);
}

/** Counts mesh deliveries per message kind. */
class KindCounter : public Mesh::Tracer
{
  public:
    void
    onDeliver(Tick, std::uint32_t, MsgType type) override
    {
        ++counts[std::size_t(type)];
    }

    std::uint64_t
    of(MsgType t) const
    {
        return counts[std::size_t(t)];
    }

    std::array<std::uint64_t, 64> counts{};
};

TEST_F(ProtocolTest, ReadMissRacesInFlightInvalidateAtDirectory)
{
    // Split-phase recall/ack vs. demand-miss race: a GetX's
    // invalidation round is in flight (the line busy at its home
    // tile, Inv packets en route to the sharers) when an L1 read miss
    // for the same line reaches the directory. The GetS must queue
    // behind the busy bit, then resolve through a forward to the new
    // owner -- never observe the half-invalidated sharer set.

    // Two sharers.
    bool a = false;
    bool b = false;
    sys.l1(0).load(kAddr, [&] { a = true; });
    drain();
    sys.l1(1).load(kAddr, [&] { b = true; });
    drain();
    ASSERT_TRUE(a && b);

    // Count protocol messages of the race itself only (the setup's
    // second load already forwarded once through the first reader).
    KindCounter kinds;
    sys.mesh().setTracer(&kinds);

    // Writer starts a GetX; single-step until the invalidate has
    // reached core 0 (its copy is gone) but the write has not yet
    // completed -- the invalidation/grant leg is still in flight.
    const std::uint64_t value = 7;
    bool wrote = false;
    sys.l1(2).store(kAddr, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    EventQueue &eq = sys.eventQueue();
    while (sys.l1(0).array().find(kAddr) != nullptr && !wrote)
        eq.run(eq.now() + 1);
    ASSERT_FALSE(wrote)
        << "store completed before the invalidate landed; race window "
           "missed";
    ASSERT_GE(kinds.of(MsgType::Inv), 1u);

    // Reader misses the same line while the GetX transaction is still
    // in flight: the GetS reaches the directory behind the live
    // invalidation round and must serialize after it.
    bool read_done = false;
    sys.l1(0).load(kAddr, [&] { read_done = true; });
    drain();
    ASSERT_TRUE(wrote);
    ASSERT_TRUE(read_done);

    // Final state: the reader and the writer both end Shared (the
    // read forwarded through the new owner and downgraded it), and the
    // line carries the written value everywhere.
    const CacheLineState *writer = sys.l1(2).array().find(kAddr);
    const CacheLineState *reader = sys.l1(0).array().find(kAddr);
    ASSERT_NE(writer, nullptr);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(writer->state, CoherenceState::Shared);
    EXPECT_EQ(reader->state, CoherenceState::Shared);
    std::uint64_t back;
    std::memcpy(&back, reader->data.data() + (kAddr % kLineBytes), 8);
    EXPECT_EQ(back, value);
    // The second sharer stayed invalidated.
    EXPECT_EQ(sys.l1(1).array().find(kAddr), nullptr);

    // Mesh accounting: the GetX invalidated both sharers (2 Inv +
    // 2 InvAck), and the racing GetS resolved as a forward through
    // the new owner (FwdGetS + FwdAckS, the home then granting the
    // reader).
    EXPECT_EQ(kinds.of(MsgType::Inv), 2u);
    EXPECT_EQ(kinds.of(MsgType::InvAck), 2u);
    EXPECT_EQ(kinds.of(MsgType::FwdGetS), 1u);
    EXPECT_EQ(kinds.of(MsgType::FwdAckS), 1u);
    sys.mesh().setTracer(nullptr);
}

TEST(SplitPhaseEvictionRaceTest, QueuedDemandMissWaitsOutEvictionRound)
{
    // Regression: a demand miss that queues on the victim line's busy
    // bit *during* a split-phase eviction round must re-run against
    // the re-tagged frame (a clean miss + refetch) once the round
    // completes -- not be granted the stale still-valid copy the L2
    // is dropping (which left the directory tracking an owner for a
    // line no longer resident: a later PutM then tripped the
    // inclusion panic).
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = DesignKind::NonAtomic;
    cfg.l2TileBytes = 4096;  // direct-mapped 64-set tiles: any
    cfg.l2Assoc = 1;         // same-set fill evicts the occupant
    System sys(cfg, Addr(16) * 1024 * 1024);
    EventQueue &eq = sys.eventQueue();

    const Addr lineB = 0x40000;
    // Same home tile and same set as B: stride = tiles * sets lines.
    const Addr lineA =
        lineB + Addr(cfg.l2Tiles) * 64 * kLineBytes;

    // Core 0 owns B dirty.
    const std::uint64_t value = 0xabcdef0123ULL;
    bool wrote = false;
    sys.l1(0).store(lineB,
                    reinterpret_cast<const std::uint8_t *>(&value), 8,
                    [&] { wrote = true; });
    eq.run();
    ASSERT_TRUE(wrote);

    // Core 1 fills A, evicting B at the home tile: a split-phase
    // recall round on B (Recall to core 0 in flight, B busy).
    bool filled = false;
    sys.l1(1).load(lineA, [&] { filled = true; });
    bool round_live = false;
    for (int i = 0; i < 100000 && !round_live; ++i) {
        eq.run(eq.now() + 1);
        for (std::uint32_t t = 0; t < cfg.l2Tiles; ++t) {
            L2Tile &tile = sys.l2Tile(t);
            if (tile.roundPoolAllocated() > tile.roundPoolFree())
                round_live = true;
        }
    }
    ASSERT_TRUE(round_live) << "eviction round never went in flight";

    // Core 2's read miss for B reaches the directory mid-round and
    // queues on the busy bit.
    bool read = false;
    sys.l1(2).load(lineB, [&] { read = true; });
    eq.run();
    ASSERT_TRUE(filled);
    ASSERT_TRUE(read);

    // The reader refetched B cleanly: it holds core 0's data, and
    // inclusion holds (B resident at its home tile again).
    const CacheLineState *line = sys.l1(2).array().find(lineB);
    ASSERT_NE(line, nullptr);
    std::uint64_t back;
    std::memcpy(&back, line->data.data(), 8);
    EXPECT_EQ(back, value);
    const std::uint32_t home = sys.addressMap().homeTile(lineB);
    EXPECT_NE(sys.l2Tile(home).array().find(lineB), nullptr);

    // And the line stays fully coherent: core 2 can take ownership
    // and write back without tripping the home's inclusion check.
    const std::uint64_t value2 = 0x5555aaaaULL;
    bool wrote2 = false;
    sys.l1(2).store(lineB,
                    reinterpret_cast<const std::uint8_t *>(&value2), 8,
                    [&] { wrote2 = true; });
    eq.run();
    ASSERT_TRUE(wrote2);
    bool flushed = false;
    sys.l1(2).flush(lineB, [&] { flushed = true; });
    eq.run();
    ASSERT_TRUE(flushed);
    EXPECT_EQ(sys.nvmImage().load64(lineB), value2);
}

TEST(WbHitFastPathTest, LoadMissServedFromOwnWritebackBuffer)
{
    // SystemConfig::l1WbHit: a load miss whose line sits in the L1's
    // own writeback buffer (PutM in flight) completes locally -- no
    // GetS, no array install -- and once the buffer drains the next
    // access refetches through home as usual. The race under test:
    // the load lands in the window between the eviction and the
    // home's WbAck.
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = DesignKind::NonAtomic;
    cfg.l1WbHit = true;
    System sys(cfg, Addr(16) * 1024 * 1024);
    EventQueue &eq = sys.eventQueue();

    // Dirty a line, then evict it by filling its L1 set.
    const std::uint32_t sets =
        cfg.l1SizeBytes / (cfg.l1Assoc * kLineBytes);
    const Addr stride = Addr(sets) * kLineBytes;
    const Addr base = 0x40000;
    const std::uint64_t value = 0x1234cafeULL;
    bool wrote = false;
    sys.l1(0).store(base, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    eq.run();
    ASSERT_TRUE(wrote);

    for (std::uint32_t i = 1; i <= cfg.l1Assoc; ++i) {
        bool done = false;
        sys.l1(0).load(base + i * stride, [&] { done = true; });
        // Single-step so we can catch the PutM window mid-flight.
        while (!done)
            eq.run(eq.now() + 1);
        if (sys.l1(0).outstandingWritebacks() > 0)
            break;
    }
    ASSERT_GT(sys.l1(0).outstandingWritebacks(), 0u)
        << "eviction produced no in-flight writeback";
    ASSERT_EQ(sys.l1(0).array().find(base), nullptr);

    // Load the evicted line while its PutM is still in flight: the
    // WB-buffer snoop hit must complete it with zero mesh traffic.
    KindCounter kinds;
    sys.mesh().setTracer(&kinds);
    bool loaded = false;
    sys.l1(0).load(base, [&] { loaded = true; });
    for (Cycles c = 0; c <= cfg.l1Latency && !loaded; ++c)
        eq.run(eq.now() + 1);
    EXPECT_TRUE(loaded) << "WB hit did not complete at L1 latency";
    EXPECT_EQ(kinds.of(MsgType::GetS), 0u);
    EXPECT_EQ(sys.stats().value("l1c0", "wb_hits"), 1u);
    // Timing shortcut only: the line was not revived in the array.
    EXPECT_EQ(sys.l1(0).array().find(base), nullptr);

    // Drain the WbAck; the buffer frees and the fast path disarms.
    eq.run();
    EXPECT_EQ(sys.l1(0).outstandingWritebacks(), 0u);
    bool reloaded = false;
    sys.l1(0).load(base, [&] { reloaded = true; });
    eq.run();
    ASSERT_TRUE(reloaded);
    EXPECT_EQ(kinds.of(MsgType::GetS), 1u);  // normal refetch now
    EXPECT_EQ(sys.stats().value("l1c0", "wb_hits"), 1u);
    sys.mesh().setTracer(nullptr);

    // Coherence aftermath: another core takes the line and sees the
    // written value -- the fast path left no stale state behind.
    bool other = false;
    sys.l1(1).load(base, [&] { other = true; });
    eq.run();
    ASSERT_TRUE(other);
    const CacheLineState *line = sys.l1(1).array().find(base);
    ASSERT_NE(line, nullptr);
    std::uint64_t back;
    std::memcpy(&back, line->data.data(), 8);
    EXPECT_EQ(back, value);
}

TEST(WbHitFastPathTest, DisabledByDefaultTakesTheFullMissPath)
{
    // Same setup with the knob off (the default): the load mid-window
    // must go through home (GetS), keeping the goldens' behavior.
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = DesignKind::NonAtomic;
    System sys(cfg, Addr(16) * 1024 * 1024);
    EventQueue &eq = sys.eventQueue();

    const std::uint32_t sets =
        cfg.l1SizeBytes / (cfg.l1Assoc * kLineBytes);
    const Addr stride = Addr(sets) * kLineBytes;
    const Addr base = 0x40000;
    const std::uint64_t value = 1;
    bool wrote = false;
    sys.l1(0).store(base, reinterpret_cast<const std::uint8_t *>(&value),
                    8, [&] { wrote = true; });
    eq.run();
    ASSERT_TRUE(wrote);
    for (std::uint32_t i = 1; i <= cfg.l1Assoc; ++i) {
        bool done = false;
        sys.l1(0).load(base + i * stride, [&] { done = true; });
        while (!done)
            eq.run(eq.now() + 1);
        if (sys.l1(0).outstandingWritebacks() > 0)
            break;
    }
    ASSERT_GT(sys.l1(0).outstandingWritebacks(), 0u);

    KindCounter kinds;
    sys.mesh().setTracer(&kinds);
    bool loaded = false;
    sys.l1(0).load(base, [&] { loaded = true; });
    eq.run();
    ASSERT_TRUE(loaded);
    EXPECT_EQ(kinds.of(MsgType::GetS), 1u);
    EXPECT_EQ(sys.stats().value("l1c0", "wb_hits"), 0u);
    sys.mesh().setTracer(nullptr);
}

TEST(DirectoryStatTest, CtrlBlockOccupancyGrowsAndIsCappedAt64K)
{
    StatSet stats;
    Counter &live = stats.counter("dir0", "ctrl_blocks_live");
    Directory dir;
    dir.attachStats(&live);

    auto touch = [&dir](Addr line) {
        dir.acquire(line, [&dir, line] { dir.release(line); });
    };

    // The high-water mark tracks live (busy + cached-idle) control
    // blocks as distinct lines are touched...
    for (Addr i = 0; i < 1000; ++i)
        touch(i * kLineBytes);
    EXPECT_EQ(live.value(), 1000u);
    EXPECT_EQ(dir.liveCtl(), 1000u);

    // ...and saturates at the idle-cache cap: one transient busy block
    // above kMaxIdleCtl, after which released cold blocks are erased
    // instead of cached.
    const Addr total = Directory::kMaxIdleCtl + 4096;
    for (Addr i = 1000; i < total; ++i)
        touch(i * kLineBytes);
    EXPECT_EQ(live.value(), std::uint64_t(Directory::kMaxIdleCtl) + 1);
    EXPECT_EQ(dir.liveCtl(), Directory::kMaxIdleCtl);
}

// Regression for the 256-/1024-tile presets: the idle control-block
// cap must scale with the core count. A 256-tile serving footprint
// holds more distinct hot lines than the historical fixed 64K cap;
// under that cap the cache thrashes -- every cold release erases a
// block and every re-acquire re-inserts it -- which is exactly what
// the ctrl_evictions counter observes. Reverting idleCapFor() to the
// fixed cap makes the zero-evictions half of this test fail.
TEST(DirectoryStatTest, IdleCapScalesWithCoreCountAt256TileShape)
{
    // The Table-I shapes keep their historical cap exactly...
    EXPECT_EQ(Directory::idleCapFor(32), Directory::kMaxIdleCtl);
    EXPECT_EQ(Directory::idleCapFor(8), Directory::kMaxIdleCtl);
    // ...and the large presets scale linearly past it.
    EXPECT_EQ(Directory::idleCapFor(256),
              256u * Directory::kIdleCtlPerCore);
    EXPECT_GT(Directory::idleCapFor(256), Directory::kMaxIdleCtl);
    EXPECT_EQ(Directory::idleCapFor(1024),
              1024u * Directory::kIdleCtlPerCore);

    // A 256-tile-shape footprint: 2x the old cap in distinct lines.
    const Addr lines = 2 * Directory::kMaxIdleCtl;

    StatSet stats;
    Directory scaled;
    scaled.attachStats(&stats.counter("scaled", "ctrl_blocks_live"),
                       &stats.counter("scaled", "ctrl_evictions"));
    scaled.setIdleCap(Directory::idleCapFor(256));
    for (Addr i = 0; i < lines; ++i)
        scaled.acquire(i * kLineBytes,
                       [&scaled, i] { scaled.release(i * kLineBytes); });
    EXPECT_EQ(stats.value("scaled", "ctrl_evictions"), 0u);
    EXPECT_EQ(scaled.liveCtl(), lines);

    // The same footprint under the old fixed cap thrashes: every
    // release past the cap is an eviction.
    Directory fixed;
    fixed.attachStats(&stats.counter("fixed", "ctrl_blocks_live"),
                      &stats.counter("fixed", "ctrl_evictions"));
    for (Addr i = 0; i < lines; ++i)
        fixed.acquire(i * kLineBytes,
                      [&fixed, i] { fixed.release(i * kLineBytes); });
    EXPECT_EQ(stats.value("fixed", "ctrl_evictions"),
              std::uint64_t(lines) - Directory::kMaxIdleCtl);
    EXPECT_EQ(fixed.liveCtl(), Directory::kMaxIdleCtl);
}

// The System actually wires the scaled cap into every tile's
// directory (and registers the eviction counter).
TEST(DirectoryStatTest, MeshPresetWiresScaledIdleCap)
{
    System sys(SystemConfig::makeMeshPreset(256),
               Addr(64) * 1024 * 1024);
    EXPECT_EQ(sys.l2Tile(0).directory().idleCap(),
              Directory::idleCapFor(256));
    EXPECT_EQ(sys.l2Tile(255).directory().idleCap(),
              Directory::idleCapFor(256));
    bool has_eviction_stat = false;
    for (const auto &s : std::as_const(sys).stats().dump())
        if (s.first == "dir0.ctrl_evictions")
            has_eviction_stat = true;
    EXPECT_TRUE(has_eviction_stat);
}

} // namespace
} // namespace atomsim
