/**
 * @file
 * Crash + recovery property tests: the end-to-end validation of
 * Invariants 1 and 2 (Section II-C) and the recovery routine
 * (Section IV-D).
 *
 * Each test runs a workload partway, cuts power at a jittered point
 * (mid log write / mid flush / mid truncation), discards all volatile
 * state, runs the system-call recovery routine against the durable NVM
 * image alone, and then checks the workload's structural invariants on
 * that image. Any Invariant-2 violation (data reaching NVM before its
 * undo entry) shows up as a torn structure the rollback cannot fix.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/crash_cell.hh"
#include "harness/runner.hh"
#include "workloads/btree_workload.hh"
#include "workloads/hash_workload.hh"
#include "workloads/queue_workload.hh"
#include "workloads/rbtree_workload.hh"
#include "workloads/sdg_workload.hh"
#include "workloads/sps_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace atomsim
{
namespace
{

SystemConfig
crashConfig(DesignKind design)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = design;
    return cfg;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const MicroParams &params)
{
    if (name == "hash")
        return std::make_unique<HashWorkload>(params);
    if (name == "queue")
        return std::make_unique<QueueWorkload>(params);
    if (name == "rbtree")
        return std::make_unique<RbTreeWorkload>(params);
    if (name == "btree")
        return std::make_unique<BTreeWorkload>(params);
    if (name == "sdg")
        return std::make_unique<SdgWorkload>(params);
    if (name == "sps")
        return std::make_unique<SpsWorkload>(params);
    return nullptr;
}

struct CrashCase
{
    const char *workload;
    DesignKind design;
    double fraction;    //!< fraction of work completed before crash
    std::uint64_t seed; //!< crash-point jitter seed
};

class CrashRecoveryTest : public ::testing::TestWithParam<CrashCase>
{
};

TEST_P(CrashRecoveryTest, RecoversToConsistentState)
{
    const CrashCase c = GetParam();
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 12;
    params.txnsPerCore = 10;
    params.seed = c.seed;

    auto workload = makeWorkload(c.workload, params);
    ASSERT_NE(workload, nullptr);

    SystemConfig cfg = crashConfig(c.design);
    cfg.seed = c.seed;
    Runner runner(cfg, *workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.runUntilCrash(c.fraction, c.seed);

    // Recovery operates on durable state only.
    const RecoveryReport report = runner.system().recover();
    EXPECT_TRUE(report.criticalStateFound);

    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload->checkConsistency(durable,
                                         cfg.numCores), "")
        << "design=" << designName(c.design)
        << " fraction=" << c.fraction << " seed=" << c.seed
        << " rolledBack=" << report.incompleteUpdates;
}

std::string
crashName(const ::testing::TestParamInfo<CrashCase> &info)
{
    std::string name = info.param.workload;
    name += "_";
    std::string design = designName(info.param.design);
    for (char &ch : design) {
        if (ch == '-')
            ch = '_';
    }
    name += design;
    name += "_f" + std::to_string(int(info.param.fraction * 100));
    name += "_s" + std::to_string(info.param.seed);
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    UndoDesigns, CrashRecoveryTest,
    ::testing::Values(
        // Every workload under ATOM-OPT at a mid-run crash.
        CrashCase{"hash", DesignKind::AtomOpt, 0.5, 1},
        CrashCase{"queue", DesignKind::AtomOpt, 0.5, 1},
        CrashCase{"rbtree", DesignKind::AtomOpt, 0.5, 1},
        CrashCase{"btree", DesignKind::AtomOpt, 0.5, 1},
        CrashCase{"sdg", DesignKind::AtomOpt, 0.5, 1},
        CrashCase{"sps", DesignKind::AtomOpt, 0.5, 1},
        // Crash-point sweep on the rebalancing-heavy tree.
        CrashCase{"rbtree", DesignKind::AtomOpt, 0.1, 2},
        CrashCase{"rbtree", DesignKind::AtomOpt, 0.3, 3},
        CrashCase{"rbtree", DesignKind::AtomOpt, 0.7, 4},
        CrashCase{"rbtree", DesignKind::AtomOpt, 0.9, 5},
        CrashCase{"rbtree", DesignKind::Atom, 0.5, 6},
        CrashCase{"rbtree", DesignKind::Atom, 0.25, 7},
        CrashCase{"rbtree", DesignKind::Base, 0.5, 8},
        // Seed sweep on hash under posted logging.
        CrashCase{"hash", DesignKind::Atom, 0.4, 11},
        CrashCase{"hash", DesignKind::Atom, 0.4, 12},
        CrashCase{"hash", DesignKind::Atom, 0.4, 13},
        CrashCase{"hash", DesignKind::Base, 0.6, 14},
        CrashCase{"queue", DesignKind::Atom, 0.6, 15},
        CrashCase{"btree", DesignKind::Atom, 0.6, 16},
        CrashCase{"sps", DesignKind::Base, 0.5, 17}),
    crashName);

// --- campaign regressions --------------------------------------------------
//
// Cells found failing by the crash-fuzzing sweep (bench/crash_campaign.cc)
// and pinned here after the fix, in the exact form regressionBody()
// emits, so future failing cells paste in unchanged.

// The torn-payload write-order inversion: two gate-parked writes to
// the same locked line were replayed newest-first, letting a stale
// writeback drain to the device after the commit flush whose
// truncation had already discarded the line's undo record. Seeds
// 60-66 all reproduced under this cell shape (tiny assoc-starved L2);
// 62/63/64 are pinned. Fixed by committing same-line writes to the
// durable image in acceptance order (mem/memory_controller.cc).
//
// Note on sharpness: these three fraction-based cells were the
// original bug report. After the duplicate-undo suppression fix
// (atom/logm.cc) shifted log timing, runUntilCrash's fractional
// crash points no longer land inside the (narrow) vulnerable window,
// so with the acceptance-order fix reverted these cells pass again.
// They are kept as end-to-end consistency checks of the reported
// config; the *_shrunk pinned-tick cells below are the sharp guards
// -- each still fails if the acceptance-order fix is reverted.
TEST(CampaignRegressionTest, hash_atom_s62)
{
    const auto cell =
        CrashCell::parse("hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

TEST(CampaignRegressionTest, hash_atom_s63)
{
    const auto cell =
        CrashCell::parse("hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s63");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

TEST(CampaignRegressionTest, hash_atom_s64)
{
    const auto cell =
        CrashCell::parse("hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s64");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

// The auto-shrunk minimum of the s62 cell above: every axis smaller
// than the hand-found reproducer (1 KB L2, 64-byte entries, one
// transaction per core) with the crash tick pinned by bisection.
// Shrunk by bench/crash_campaign.cc from a failing sweep cell.
// Fault was:
//   torn payload: core=2 bucket=37 node=0x81a00 key=0x200000010
//   word=5 addr=0x81a68 expected=0xe20c93c1f4a7c155 found=0x0
TEST(CampaignRegressionTest, hash_atom_s62_shrunk)
{
    const auto cell = CrashCell::parse(
        "hash:atom:f50:c4:l1x2:e64:i16:t1:h0:s62:k3643");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

// Seeds 63/64 at the shrunk shape, crash ticks found by scanning the
// pre-fix build under post-dedup timing (same torn-payload fault
// signature as s62). These keep all three reported seeds guarded by
// a pinned-tick cell that demonstrably fails without the fix.
TEST(CampaignRegressionTest, hash_atom_s63_shrunk)
{
    const auto cell = CrashCell::parse(
        "hash:atom:f50:c4:l1x2:e64:i16:t1:h0:s63:k3518");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

TEST(CampaignRegressionTest, hash_atom_s64_shrunk)
{
    const auto cell = CrashCell::parse(
        "hash:atom:f50:c4:l1x2:e64:i16:t1:h0:s64:k3518");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

// The second bug the first full campaign surfaced: a log-exhaustion
// livelock (28 sdg:base cells, every seed at the 4 KB-entry shape).
// Four cores thrashing an assoc-2 L2 set re-logged their stores on
// every recall-induced retry; each re-log force-sealed a one-entry
// record, and since buckets are only reclaimed at commit -- which the
// stalled stores gated -- the log region drained and the OS overflow
// interrupt spun forever. Fixed by duplicate-undo suppression in
// LogM (atom/logm.cc): a re-log of an already-logged line acks
// against the existing entry. Without the fix this cell never
// terminates, so the guard here is completion itself.
TEST(CampaignRegressionTest, sdg_base_s61)
{
    const auto cell =
        CrashCell::parse("sdg:base:f25:c4:l8x2:e512:i32:t10:h0:s61");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

// The third campaign find (15 sdg:redo cells after the grid widened
// to the REDO design): the write-combining buffer recorded only the
// stored line's *address* and re-read its data from the cache
// hierarchy at drain time. During a split-phase L2-eviction recall
// round the only fresh copy of a line rides the round's mesh packets
// -- the L1 has surrendered it, the L2 frame is not merged until the
// round completes -- so the drain logged a stale image; replayed
// last, it finalized stale data (sdg's counter line lost an edge
// increment). Fixed by capturing the coherent pre-store image at
// onStore time and assembling the entry store by store: the buffer
// owns its data and the drain never re-reads the caches
// (designs/redo_engine.cc, cache/l1_cache.cc).
//
// Shrunk by bench/crash_campaign.cc from a failing sweep cell. Fault was:
//   global edge count disagrees with the lists: core=2 count=4 lists=5
TEST(CampaignRegressionTest, sdg_redo_s60)
{
    const auto cell = CrashCell::parse(
        "sdg:redo:f50:c4:l1x2:e904:i3:t2:h0:s60:k32153");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

// Shrunk by bench/crash_campaign.cc from a failing sweep cell. Fault was:
//   global edge count disagrees with the lists: core=3 count=5 lists=6
TEST(CampaignRegressionTest, sdg_redo_s63)
{
    const auto cell = CrashCell::parse(
        "sdg:redo:f50:c4:l2x2:e992:i4:t3:h0:s63:k55090");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

// The same stale-drain bug through the hybrid-memory shapes (the
// recall-round race is upstream of the controllers, so every memory
// organization reproduced it): memoryMode and appDirect/data-direct
// shrunk cells.
TEST(CampaignRegressionTest, sdg_redo_s64_h1)
{
    const auto cell = CrashCell::parse(
        "sdg:redo:f50:c4:l4x2:e504:i32:t5:h1:s64:k51616");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

TEST(CampaignRegressionTest, sdg_redo_s64_h3)
{
    const auto cell = CrashCell::parse(
        "sdg:redo:f50:c4:l8x2:e512:i32:t5:h3:s64:k52441");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_EQ(out.fault, "");
}

TEST(CrashRecoveryTest, RecoveryIsIdempotent)
{
    MicroParams params;
    params.initialItems = 12;
    params.txnsPerCore = 8;
    RbTreeWorkload workload(params);

    Runner runner(crashConfig(DesignKind::AtomOpt), workload,
                  params.txnsPerCore, Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.runUntilCrash(0.5, 21);
    runner.system().recover();
    const DataImage first = runner.system().nvmImage().clone();

    // Running recovery again must be a no-op on the image.
    runner.system().recover();
    DirectAccessor a(runner.system().nvmImage());
    for (Addr probe = kPageBytes; probe < Addr(4) * 1024 * 1024;
         probe += 4096 + 64) {
        EXPECT_EQ(first.load64(probe),
                  runner.system().nvmImage().load64(probe));
    }
}

TEST(CrashRecoveryTest, CleanShutdownNeedsNoRollback)
{
    MicroParams params;
    params.initialItems = 8;
    params.txnsPerCore = 5;
    HashWorkload workload(params);

    Runner runner(crashConfig(DesignKind::AtomOpt), workload,
                  params.txnsPerCore, Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.run(Tick(500) * 1000 * 1000);
    runner.system().powerFail();  // crash after everything committed

    const RecoveryReport report = runner.system().recover();
    EXPECT_EQ(report.incompleteUpdates, 0u);
    EXPECT_EQ(report.linesRestored, 0u);

    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, 4), "");
}

TEST(CrashRecoveryTest, CommittedTransactionsSurviveRollback)
{
    // After recovery, the durable image must reflect a clean boundary:
    // committed transactions' data present, in-flight ones rolled
    // back. The sps permutation check proves no half-swap survives;
    // additionally the recovered image must differ from the initial
    // one (committed swaps really persisted).
    MicroParams params;
    params.initialItems = 16;
    params.txnsPerCore = 10;
    params.entryBytes = 512;
    SpsWorkload workload(params);

    Runner runner(crashConfig(DesignKind::Atom), workload,
                  params.txnsPerCore, Addr(64) * 1024 * 1024);
    runner.setUp();
    const DataImage initial = runner.system().nvmImage().clone();
    runner.runUntilCrash(0.6, 33);
    const std::uint64_t committed = runner.committed();
    ASSERT_GT(committed, 0u);

    runner.system().recover();
    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, 4), "");

    // Some committed swap must be visible in durable state.
    bool changed = false;
    for (Addr probe = kPageBytes;
         probe < kPageBytes + Addr(16) * 512 && !changed; probe += 8) {
        if (initial.load64(probe) !=
            runner.system().nvmImage().load64(probe)) {
            changed = true;
        }
    }
    EXPECT_TRUE(changed);
}

TEST(CrashRecoveryTest, RedoDesignRecoversViaReapply)
{
    MicroParams params;
    params.initialItems = 12;
    params.txnsPerCore = 6;
    HashWorkload workload(params);

    SystemConfig cfg = crashConfig(DesignKind::Redo);
    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.runUntilCrash(0.5, 41);

    const RecoveryReport report = runner.system().recoverRedo();
    (void)report;
    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, 4), "");
}

TEST(CrashRecoveryTest, TpccRecoversUnderAtomOpt)
{
    tpcc::ScaleParams scale;
    scale.customersPerDistrict = 8;
    scale.items = 64;
    TpccWorkload workload(scale);

    // Single-threaded TPC-C for the crash test: the trace-at-dispatch
    // execution model guarantees byte-exact caches only for disjoint
    // writers (see DESIGN.md), and recovery checking needs byte-exact
    // durable state.
    SystemConfig cfg = crashConfig(DesignKind::AtomOpt);
    cfg.numCores = 1;
    cfg.l2Tiles = 1;
    cfg.meshRows = 1;
    cfg.ausPerMc = 1;
    Runner runner(cfg, workload, 12, Addr(128) * 1024 * 1024);
    runner.setUp();
    runner.runUntilCrash(0.5, 55);
    runner.system().recover();

    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, 1), "");
}

// --- Split-phase coherence vs. power failure ---------------------------
//
// Since the L1<->L2 legs became mesh transactions, a crash can land
// while a PutM writeback, a recall round, or a parked fill is in
// flight. The pooled transaction state (L1 writeback-buffer entries,
// L2 Round records, L2 PendingFills, MSHR waiters) must all return to
// their pools -- the ASan job keeps this honest end to end.

TEST(SplitPhaseCrashTest, PowerFailReclaimsInFlightCoherenceState)
{
    // Tiny L1s and L2 slices so ordinary stores overflow both and
    // trigger split-phase evictions (writebacks, recall rounds,
    // parked fills).
    SystemConfig cfg = crashConfig(DesignKind::AtomOpt);
    cfg.l1SizeBytes = 2 * 1024;
    cfg.l1Assoc = 2;
    cfg.l2TileBytes = 8 * 1024;
    cfg.l2Assoc = 2;

    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 64;
    params.txnsPerCore = 12;
    HashWorkload workload(params);

    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();

    // Single-step and cut power the moment a writeback or recall
    // round is actually in flight, so the crash genuinely interrupts
    // a split-phase transaction. (advanceTo leaves now() at the last
    // executed event, so step an external cursor.)
    System &sys = runner.system();
    bool caught_in_flight = false;
    for (Tick cursor = 1; cursor < 200000 && !caught_in_flight;
         ++cursor) {
        runner.advanceTo(cursor);
        for (CoreId c = 0; c < sys.numCores(); ++c) {
            if (sys.l1(c).outstandingWritebacks() > 0)
                caught_in_flight = true;
        }
        for (std::uint32_t t = 0; t < cfg.l2Tiles; ++t) {
            const L2Tile &tile = sys.l2Tile(t);
            if (tile.roundPoolAllocated() > tile.roundPoolFree() ||
                tile.fillPoolAllocated() > tile.fillPoolFree()) {
                caught_in_flight = true;
            }
        }
    }
    ASSERT_TRUE(caught_in_flight)
        << "workload never produced an in-flight writeback/recall";

    sys.powerFail();

    for (CoreId c = 0; c < sys.numCores(); ++c) {
        const L1Cache &l1 = sys.l1(c);
        EXPECT_EQ(l1.outstandingWritebacks(), 0u) << "core " << c;
        EXPECT_EQ(l1.wbPoolFree(), l1.wbPoolAllocated()) << "core " << c;
        EXPECT_EQ(l1.storePoolFree(), l1.storePoolAllocated())
            << "core " << c;
        EXPECT_EQ(l1.outstandingMisses(), 0u) << "core " << c;
        EXPECT_EQ(l1.mshrs().waiterPoolFree(),
                  l1.mshrs().waiterPoolAllocated())
            << "core " << c;
    }
    for (std::uint32_t t = 0; t < cfg.l2Tiles; ++t) {
        L2Tile &tile = sys.l2Tile(t);
        EXPECT_EQ(tile.roundPoolFree(), tile.roundPoolAllocated())
            << "tile " << t;
        EXPECT_EQ(tile.fillPoolFree(), tile.fillPoolAllocated())
            << "tile " << t;
    }

    // The machine must still recover to a consistent image.
    const RecoveryReport report = sys.recover();
    EXPECT_TRUE(report.criticalStateFound);
    DirectAccessor durable(sys.nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, cfg.numCores), "");
}

namespace
{

/** FNV-1a over a span of the durable image. */
std::uint64_t
imageHash(const DataImage &img, Addr base, Addr bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (Addr a = base; a < base + bytes; a += kLineBytes) {
        const Line line = img.readLine(a);
        for (std::uint8_t b : line) {
            h ^= b;
            h *= 1099511628211ull;
        }
    }
    return h;
}

struct CrashOutcome
{
    RecoveryReport report;
    std::uint64_t image_hash;
    Tick crash_tick;
};

CrashOutcome
crashAndRecoverOnce()
{
    SystemConfig cfg = crashConfig(DesignKind::Atom);
    cfg.l2TileBytes = 8 * 1024;  // force split-phase evictions
    cfg.l2Assoc = 2;

    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 32;
    params.txnsPerCore = 10;
    params.seed = 9;
    HashWorkload workload(params);

    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    const Tick crash_tick = runner.runUntilCrash(0.5, 9);
    CrashOutcome out;
    out.crash_tick = crash_tick;
    out.report = runner.system().recover();
    out.image_hash = imageHash(runner.system().nvmImage(), kPageBytes,
                               Addr(2) * 1024 * 1024);
    return out;
}

} // namespace

TEST(SplitPhaseCrashTest, RecoveryOutputIsDeterministic)
{
    // Two identical crash runs -- each interrupting split-phase
    // coherence traffic -- must produce byte-identical recovered
    // images and identical recovery reports.
    const CrashOutcome a = crashAndRecoverOnce();
    const CrashOutcome b = crashAndRecoverOnce();
    EXPECT_EQ(a.crash_tick, b.crash_tick);
    EXPECT_EQ(a.report.incompleteUpdates, b.report.incompleteUpdates);
    EXPECT_EQ(a.report.recordsApplied, b.report.recordsApplied);
    EXPECT_EQ(a.report.linesRestored, b.report.linesRestored);
    EXPECT_EQ(a.image_hash, b.image_hash);
}

// --- Hybrid DRAM/NVM memory vs. power failure --------------------------
//
// With a DRAM tier in front of the NVM channel (memoryMode /
// appDirect), powerFail drops every DRAM-cached dirty line -- absorbed
// L2 writebacks that never reached NVM -- while commit-time Flush
// writes and all log traffic persist write-through. Recovery therefore
// still sees every byte Invariants 1 and 2 require, and the rollback
// must produce a consistent image even though a slice of pre-crash
// write traffic vanished with the DRAM.

namespace
{

SystemConfig
hybridCrashConfig(DesignKind design, HybridMode mode,
                  AppDirectRegion region = AppDirectRegion::LogRegion)
{
    SystemConfig cfg = crashConfig(design);
    cfg.hybridMode = mode;
    cfg.appDirectRegion = region;
    cfg.dramCacheMBPerMc = 1;
    // Small L2 slices so ordinary stores spill writebacks into the
    // DRAM tier -- the crash must genuinely interrupt absorbed dirty
    // lines, not an idle cache.
    cfg.l2TileBytes = 8 * 1024;
    cfg.l2Assoc = 2;
    return cfg;
}

void
runHybridCrash(const SystemConfig &cfg, std::uint64_t seed)
{
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 32;
    params.txnsPerCore = 10;
    params.seed = seed;
    HashWorkload workload(params);

    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.runUntilCrash(0.5, seed);

    const RecoveryReport report = runner.system().recover();
    EXPECT_TRUE(report.criticalStateFound);
    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, cfg.numCores), "")
        << "hybridMode=" << hybridModeName(cfg.hybridMode)
        << " seed=" << seed;
}

} // namespace

TEST(HybridCrashTest, MemoryModeRecoversToConsistentState)
{
    runHybridCrash(
        hybridCrashConfig(DesignKind::AtomOpt, HybridMode::MemoryMode),
        61);
    runHybridCrash(
        hybridCrashConfig(DesignKind::Atom, HybridMode::MemoryMode),
        62);
}

TEST(HybridCrashTest, AppDirectRecoversToConsistentState)
{
    runHybridCrash(
        hybridCrashConfig(DesignKind::AtomOpt, HybridMode::AppDirect),
        63);
    // Data-direct: the data path is byte-for-byte the flat-NVM path,
    // so this case runs at the default (Table-I) L2 size -- the
    // small-L2 shape exposes a *pre-existing* flat-NVM crash
    // inconsistency (torn payload under ATOM with mid-transaction L2
    // evictions; reproduced at the seed commit, recorded in
    // ROADMAP.md) that is independent of the hybrid tier.
    SystemConfig data_direct =
        hybridCrashConfig(DesignKind::Atom, HybridMode::AppDirect,
                          AppDirectRegion::DataRegion);
    data_direct.l2TileBytes = 1024 * 1024;
    data_direct.l2Assoc = 16;
    runHybridCrash(data_direct, 64);
}

TEST(HybridCrashTest, DirtyDramLinesAreLostAndNvmBytesSurvive)
{
    // Single-step until a controller holds genuinely dirty DRAM lines
    // (absorbed writebacks), then cut power: every one of those lines
    // must *not* have its DRAM value in the NVM image (the volatile
    // copy was newer and died), the caches must come up empty, and
    // recovery must still roll the image to a consistent state.
    SystemConfig cfg =
        hybridCrashConfig(DesignKind::AtomOpt, HybridMode::MemoryMode);

    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 64;
    params.txnsPerCore = 12;
    HashWorkload workload(params);

    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();

    System &sys = runner.system();
    std::size_t dirty = 0;
    for (Tick cursor = 1; cursor < 400000 && dirty == 0; cursor += 50) {
        runner.advanceTo(cursor);
        for (McId m = 0; m < cfg.numMemCtrls; ++m)
            dirty += sys.memCtrl(m).dramCache()->dirtyLines();
    }
    ASSERT_GT(dirty, 0u)
        << "workload never absorbed a dirty writeback into DRAM";

    // Snapshot the dirty lines' addresses + volatile data.
    struct DirtyLine
    {
        Addr addr;
        Line data;
    };
    std::vector<DirtyLine> lines;
    for (McId m = 0; m < cfg.numMemCtrls; ++m) {
        DramCache *cache = sys.memCtrl(m).dramCache();
        // Walk the image-visible address space lazily: ask the cache
        // about every line the workload could have touched (the data
        // region is small here).
        for (Addr a = 0; a < Addr(4) * 1024 * 1024; a += kLineBytes) {
            if (sys.addressMap().memCtrl(a) == m && cache->isDirty(a))
                lines.push_back({a, *cache->peek(a)});
        }
    }
    ASSERT_FALSE(lines.empty());

    sys.powerFail();

    std::size_t lost = 0;
    for (const DirtyLine &dl : lines) {
        for (McId m = 0; m < cfg.numMemCtrls; ++m)
            EXPECT_FALSE(sys.memCtrl(m).dramCache()->contains(dl.addr));
        if (sys.nvmImage().readLine(dl.addr) != dl.data)
            ++lost;
    }
    // The volatile values must be gone from the image. (A dirty line
    // can coincidentally match NVM when a writeback re-wrote the same
    // bytes, so require losses rather than all-lines-lost.)
    EXPECT_GT(lost, 0u);

    const RecoveryReport report = sys.recover();
    EXPECT_TRUE(report.criticalStateFound);
    DirectAccessor durable(sys.nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, cfg.numCores), "");
}

// --- Injected-fault recovery -------------------------------------------
//
// The fault model (sim/fault.hh): power failure tears in-flight
// device writes at a seeded word boundary (cfg.tornWrites), and a
// second failure can interrupt recovery itself, tearing *recovery's*
// writes (Runner::crashDuringRecovery). Both are pure functions of
// the fault seed and shard-invariant keys, so every outcome below is
// replayable.

namespace
{

struct TornOutcome
{
    Tick crash_tick = 0;
    RecoveryReport report;
    std::uint64_t image_hash = 0;
    std::string fault;
};

/** Crash under torn device writes at @p tick (0 = fraction 0.5 with
 * @p seed jitter), recover fully, hash + consistency-check the image. */
TornOutcome
tornCrashAndRecover(DesignKind design, std::uint64_t seed,
                    Tick tick = 0)
{
    SystemConfig cfg = crashConfig(design);
    cfg.tornWrites = true;
    cfg.faultSeed = seed;
    cfg.seed = seed;
    cfg.l2TileBytes = 8 * 1024;  // split-phase evictions keep the
    cfg.l2Assoc = 2;             // write queues busy at the crash
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 32;
    params.txnsPerCore = 10;
    params.seed = seed;
    HashWorkload workload(params);

    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    TornOutcome out;
    out.crash_tick = tick ? runner.crashAt(tick)
                          : runner.runUntilCrash(0.5, seed);
    out.report = design == DesignKind::Redo
                     ? runner.system().recoverRedo()
                     : runner.system().recover();
    out.image_hash = imageHash(runner.system().nvmImage(), kPageBytes,
                               Addr(2) * 1024 * 1024);
    DirectAccessor durable(runner.system().nvmImage());
    out.fault = workload.checkConsistency(durable, 4);
    return out;
}

} // namespace

TEST(TornWriteCrashTest, TornRecoveryIsDeterministicAndConsistent)
{
    // Identical runs under torn writes must recover byte-identical
    // images (the tear boundaries are seeded, not sampled), and the
    // recovered image must satisfy the workload invariants: a tear
    // can only land on lines whose undo records recovery rewrites in
    // full, or on lines no committed transaction claims.
    const TornOutcome a = tornCrashAndRecover(DesignKind::AtomOpt, 9);
    const TornOutcome b = tornCrashAndRecover(DesignKind::AtomOpt, 9);
    EXPECT_EQ(a.crash_tick, b.crash_tick);
    EXPECT_EQ(a.image_hash, b.image_hash);
    EXPECT_EQ(a.report.tornRecords, b.report.tornRecords);
    EXPECT_EQ(a.fault, "");
    EXPECT_EQ(b.fault, "");

    // A different fault seed tears at different boundaries but must
    // recover just as consistently.
    const TornOutcome c = tornCrashAndRecover(DesignKind::AtomOpt, 10);
    EXPECT_EQ(c.fault, "");
}

TEST(TornWriteCrashTest, TornLogTailIsDetectedAndSkipped)
{
    // Sweep pinned crash ticks through the mid-run log-write window:
    // some crash must catch a log-record header in the device write
    // queue, whose torn prefix then fails the header checksum during
    // the recovery scan (report.tornRecords). Every such recovery must
    // still produce a consistent image -- a torn header only ever
    // costs the record's rollback, never correctness of the scan.
    const TornOutcome probe =
        tornCrashAndRecover(DesignKind::AtomOpt, 9);
    std::uint32_t torn_total = 0;
    for (int i = -8; i <= 8; ++i) {
        const Tick tick = probe.crash_tick + Tick(i * 977);
        const TornOutcome out =
            tornCrashAndRecover(DesignKind::AtomOpt, 9, tick);
        EXPECT_EQ(out.fault, "") << "crash tick " << tick;
        torn_total += out.report.tornRecords;
    }
    EXPECT_GT(torn_total, 0u)
        << "no crash in the sweep tore a log header: widen the sweep";
}

namespace
{

/** Reference image of @p design crashing at seed 9 and recovering in
 * one uninterrupted pass vs. the same crash recovered with a second
 * failure at @p fraction of the applications (torn recovery writes)
 * and a restart. */
void
expectDoubleFailureMatchesSinglePass(DesignKind design, double fraction)
{
    const TornOutcome reference = tornCrashAndRecover(design, 9);
    ASSERT_EQ(reference.fault, "");

    SystemConfig cfg = crashConfig(design);
    cfg.tornWrites = true;
    cfg.faultSeed = 9;
    cfg.seed = 9;
    cfg.l2TileBytes = 8 * 1024;
    cfg.l2Assoc = 2;
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 32;
    params.txnsPerCore = 10;
    params.seed = 9;
    HashWorkload workload(params);

    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    const Tick tick = runner.runUntilCrash(0.5, 9);
    ASSERT_EQ(tick, reference.crash_tick);

    // Crash recovery partway through (tearing its in-flight record's
    // writes), restart it, and require the final image byte-identical
    // to the single-pass reference: recovery is restartable because
    // it only reads the log/ADR regions and rewrites every affected
    // data line in full on the second pass.
    const RecoveryReport report = runner.crashDuringRecovery(fraction);
    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(imageHash(runner.system().nvmImage(), kPageBytes,
                        Addr(2) * 1024 * 1024),
              reference.image_hash);
    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, 4), "");
}

} // namespace

TEST(DoubleFailureTest, UndoRecoveryRestartsToTheSinglePassImage)
{
    expectDoubleFailureMatchesSinglePass(DesignKind::AtomOpt, 0.5);
}

TEST(DoubleFailureTest, RedoRecoveryRestartsToTheSinglePassImage)
{
    expectDoubleFailureMatchesSinglePass(DesignKind::Redo, 0.5);
}

} // namespace
} // namespace atomsim
