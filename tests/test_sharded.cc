/**
 * @file
 * Sharded-simulation tests: determinism across shard counts, the
 * per-tile domain layout, the window barrier, and the domain
 * mailboxes.
 *
 * The contract under test (see README, "Parallel simulation"): for a
 * fixed configuration and seed, a sharded run's (tick, node, kind)
 * delivery stream, final stats and committed-transaction count are
 * byte-identical for *every* shard count and every thread
 * interleaving -- now with the cache complex fully partitioned: every
 * core+L1 tile and every L2 slice is its own simulation domain. The
 * golden workloads of golden_support.hh are re-run here at 1, 2, 4
 * and 8 shards and compared element-wise.
 *
 * The windowed kernel's stream is additionally pinned by hash against
 * the generated tests/goldens.inc; regenerate with `--dump-goldens`
 * only for intentional timing changes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "golden_support.hh"
#include "harness/runner.hh"
#include "net/mesh.hh"
#include "sim/shard.hh"
#include "workloads/hash_workload.hh"
#include "workloads/kv_workload.hh"

namespace atomsim
{
namespace
{

using golden::GoldenRun;
using golden::runGoldenQuickstart;
using golden::runGoldenTpcc;

void
expectIdentical(const GoldenRun &a, const GoldenRun &b,
                const char *what)
{
    EXPECT_EQ(a.txns, b.txns) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.hash, b.hash) << what;
    ASSERT_EQ(a.stream.size(), b.stream.size()) << what;
    for (std::size_t i = 0; i < a.stream.size(); ++i) {
        ASSERT_TRUE(a.stream[i] == b.stream[i])
            << what << ": delivery " << i << " diverges (tick "
            << a.stream[i].tick << " vs " << b.stream[i].tick << ")";
    }
    EXPECT_EQ(a.stats, b.stats) << what;
}

TEST(ShardedDeterminismTest, QuickstartSizedByteIdenticalAcrossShards)
{
    const GoldenRun one = runGoldenQuickstart(1, true);
    const GoldenRun two = runGoldenQuickstart(2, true);
    const GoldenRun four = runGoldenQuickstart(4, true);
    const GoldenRun eight = runGoldenQuickstart(8, true);
    EXPECT_EQ(one.txns, 8u * 6u);
    expectIdentical(one, two, "1 vs 2 shards");
    expectIdentical(one, four, "1 vs 4 shards");
    expectIdentical(one, eight, "1 vs 8 shards");
    EXPECT_EQ(one.hash, golden::kWindowedQuickstartHash)
        << "actual hash: 0x" << std::hex << one.hash
        << " (rerun with --dump-goldens for intentional changes)";
}

TEST(ShardedDeterminismTest, TpccSizedByteIdenticalAcrossShards)
{
    const GoldenRun one = runGoldenTpcc(1, true);
    const GoldenRun two = runGoldenTpcc(2, true);
    const GoldenRun four = runGoldenTpcc(4, true);
    const GoldenRun eight = runGoldenTpcc(8, true);
    EXPECT_EQ(one.txns, 4u * 4u);
    expectIdentical(one, two, "1 vs 2 shards");
    expectIdentical(one, four, "1 vs 4 shards");
    expectIdentical(one, eight, "1 vs 8 shards");
    EXPECT_EQ(one.hash, golden::kWindowedTpccHash)
        << "actual hash: 0x" << std::hex << one.hash
        << " (rerun with --dump-goldens for intentional changes)";
}

// Thread-schedule independence: the same threaded shard count twice.
TEST(ShardedDeterminismTest, BackToBackThreadedRunsAreIdentical)
{
    const GoldenRun a = runGoldenQuickstart(2, true);
    const GoldenRun b = runGoldenQuickstart(2, true);
    expectIdentical(a, b, "threaded run-to-run");
}

// The sharded run must agree with the sequential kernel on everything
// order-insensitive: work done and committed txns. (Delivery counts
// may differ slightly: transaction dispatch and AUS/LogM boundary ops
// quantize to window barriers, shifting a handful of evictions.)
TEST(ShardedDeterminismTest, ShardedMatchesSequentialWork)
{
    const GoldenRun seq = runGoldenQuickstart(0, true);
    const GoldenRun sharded = runGoldenQuickstart(2, true);
    EXPECT_EQ(seq.txns, sharded.txns);
    // Transaction-boundary control ops quantize to window barriers, so
    // end-to-end cycles may shift by a few windows -- but not by more
    // than a couple percent on these runs.
    const double drift =
        double(sharded.cycles) - double(seq.cycles);
    EXPECT_LT(drift / double(seq.cycles), 0.02);
    EXPECT_GE(drift, 0.0);
}

// --- Hybrid memory under sharding ------------------------------------
//
// The DRAM tier (cache + device) lives entirely inside its owning
// MC's simulation domain, so the determinism contract must extend to
// it unchanged: with memoryMode / appDirect enabled, the delivery
// stream, stats and committed transactions are byte-identical for
// every shard count. A small L2 forces writebacks + re-reads through
// the controllers so the DRAM tier actually processes traffic.

golden::GoldenRun
runHybridQuickstart(HybridMode mode, AppDirectRegion region,
                    std::uint32_t shards)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    cfg.design = DesignKind::AtomOpt;
    cfg.numShards = shards;
    cfg.hybridMode = mode;
    cfg.appDirectRegion = region;
    cfg.dramCacheMBPerMc = 1;
    cfg.l2TileBytes = 64 * 1024;
    cfg.l2Assoc = 4;

    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 48;
    params.txnsPerCore = 6;

    HashWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    golden::TraceHasher tracer(true);
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const RunResult result = runner.run();
    golden::GoldenRun r;
    r.hash = tracer.hash();
    r.deliveries = tracer.deliveries();
    r.txns = result.txns;
    r.cycles = result.cycles;
    r.stream = std::move(tracer.stream());
    r.stats = std::as_const(runner.system()).stats().dump();
    return r;
}

TEST(ShardedHybridTest, MemoryModeByteIdenticalAcrossShards)
{
    const golden::GoldenRun one = runHybridQuickstart(
        HybridMode::MemoryMode, AppDirectRegion::LogRegion, 1);
    const golden::GoldenRun two = runHybridQuickstart(
        HybridMode::MemoryMode, AppDirectRegion::LogRegion, 2);
    const golden::GoldenRun four = runHybridQuickstart(
        HybridMode::MemoryMode, AppDirectRegion::LogRegion, 4);
    const golden::GoldenRun eight = runHybridQuickstart(
        HybridMode::MemoryMode, AppDirectRegion::LogRegion, 8);
    expectIdentical(one, two, "memoryMode 1 vs 2 shards");
    expectIdentical(one, four, "memoryMode 1 vs 4 shards");
    expectIdentical(one, eight, "memoryMode 1 vs 8 shards");

    // The tier must have seen real traffic or the test is vacuous.
    std::uint64_t hits = 0;
    for (const auto &s : one.stats) {
        if (s.first.find("dram_hits") != std::string::npos)
            hits += s.second;
    }
    EXPECT_GT(hits, 0u);
}

TEST(ShardedHybridTest, AppDirectByteIdenticalAcrossShards)
{
    const golden::GoldenRun one = runHybridQuickstart(
        HybridMode::AppDirect, AppDirectRegion::LogRegion, 1);
    const golden::GoldenRun four = runHybridQuickstart(
        HybridMode::AppDirect, AppDirectRegion::LogRegion, 4);
    expectIdentical(one, four, "appDirect/log 1 vs 4 shards");

    const golden::GoldenRun data_one = runHybridQuickstart(
        HybridMode::AppDirect, AppDirectRegion::DataRegion, 1);
    const golden::GoldenRun data_four = runHybridQuickstart(
        HybridMode::AppDirect, AppDirectRegion::DataRegion, 4);
    expectIdentical(data_one, data_four,
                    "appDirect/data 1 vs 4 shards");
}

// Flash tier on: the destage pipeline, SQ/CQ polling and page
// forwarding all run inside the owning MC's simulation domain, so a
// tier-on run must stay byte-identical at every shard count.
// Balanced policy: eventual's staging window is cross-domain state
// and is pinned to the sequential kernel by config validation.

golden::GoldenRun
runFlashTierQuickstart(std::uint32_t shards)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    cfg.design = DesignKind::AtomOpt;
    cfg.numShards = shards;
    cfg.ssdTier = true;
    cfg.durabilityPolicy = DurabilityPolicy::Balanced;
    // Aggressive destage thresholds + short flash latencies so the
    // small golden run forwards and promotes real pages.
    cfg.ssdColdPageWatermark = 0;
    cfg.ssdFlashPagesPerMc = 256;
    cfg.ssdMaxDestageBacklog = 4;
    cfg.ssdReadLatency = 2000;
    cfg.ssdProgramLatency = 5000;

    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 48;
    params.txnsPerCore = 6;

    HashWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    golden::TraceHasher tracer(true);
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const RunResult result = runner.run();
    golden::GoldenRun r;
    r.hash = tracer.hash();
    r.deliveries = tracer.deliveries();
    r.txns = result.txns;
    r.cycles = result.cycles;
    r.stream = std::move(tracer.stream());
    r.stats = std::as_const(runner.system()).stats().dump();
    return r;
}

TEST(ShardedFlashTierTest, TierOnByteIdenticalAcrossShards)
{
    const golden::GoldenRun one = runFlashTierQuickstart(1);
    const golden::GoldenRun two = runFlashTierQuickstart(2);
    const golden::GoldenRun four = runFlashTierQuickstart(4);
    const golden::GoldenRun eight = runFlashTierQuickstart(8);
    expectIdentical(one, two, "flash tier 1 vs 2 shards");
    expectIdentical(one, four, "flash tier 1 vs 4 shards");
    expectIdentical(one, eight, "flash tier 1 vs 8 shards");

    // The tier must have destaged real pages or the pin is vacuous.
    std::uint64_t destaged = 0;
    for (const auto &s : one.stats) {
        if (s.first.find("destage_pages") != std::string::npos)
            destaged += s.second;
    }
    EXPECT_GT(destaged, 0u);
}

// --- 1024-tile serving preset under sharding -------------------------
//
// The scaled presets must uphold the same determinism contract as the
// Table-I machine: at 1024 tiles (2064 simulation domains) the zipfian
// multi-tenant KV workload runs to completion, the sharded delivery
// stream is byte-identical across shard counts, and the sequential
// kernel agrees on all order-insensitive outcomes (committed
// transactions, per-tenant commit counts). This doubles as the
// regression test for the structures that used to be super-linear in
// tiles: the dense O(domains^2) lookahead matrix would take minutes
// (and ~34 GB) to build here, and a >= 64-core sharer mask exercises
// the SharerSet wide path on every invalidation round.

golden::GoldenRun
runServing1024(std::uint32_t shards)
{
    SystemConfig cfg = SystemConfig::makeMeshPreset(1024);
    cfg.numTenants = 4;
    cfg.numShards = shards;

    KvParams params;
    params.numTenants = cfg.numTenants;
    params.theta = 0.99;
    params.keysPerTenant = 256;
    params.insertsPerCore = 2;
    params.txnsPerCore = 1;

    KvWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    golden::TraceHasher tracer(true);
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const RunResult result = runner.run();
    golden::GoldenRun r;
    r.hash = tracer.hash();
    r.deliveries = tracer.deliveries();
    r.txns = result.txns;
    r.cycles = result.cycles;
    r.stream = std::move(tracer.stream());
    r.stats = std::as_const(runner.system()).stats().dump();
    return r;
}

TEST(ServingPresetTest, Mesh1024ByteIdenticalAcrossShards)
{
    const golden::GoldenRun seq = runServing1024(0);
    const golden::GoldenRun one = runServing1024(1);
    const golden::GoldenRun four = runServing1024(4);

    // The windowed kernel's stream is shard-count invariant.
    expectIdentical(one, four, "1024-tile serving, 1 vs 4 shards");

    // The sequential kernel agrees on every order-insensitive outcome
    // (its stream differs only by control-op window quantization).
    EXPECT_GT(seq.txns, 0u);
    EXPECT_EQ(seq.txns, four.txns);
    // Per-tenant commits and AUS acquisitions are one-per-transaction,
    // so they match exactly. (log_writes does not: a line evicted
    // mid-region re-logs on the next write, and eviction patterns
    // legitimately shift with control-op window quantization.)
    for (const auto &s : seq.stats) {
        if (s.first.rfind("tenant", 0) == 0 &&
            (s.first.find(".commits") != std::string::npos ||
             s.first.find(".aus_acquires") != std::string::npos)) {
            std::uint64_t sharded = 0;
            for (const auto &t : four.stats)
                if (t.first == s.first)
                    sharded = t.second;
            EXPECT_EQ(s.second, sharded) << s.first;
        }
    }
    // Multi-tenant accounting actually ran: all four tenants
    // committed work.
    std::uint32_t tenants_seen = 0;
    for (const auto &s : seq.stats) {
        if (s.first.rfind("tenant", 0) == 0 &&
            s.first.find(".commits") != std::string::npos &&
            s.second > 0)
            ++tenants_seen;
    }
    EXPECT_EQ(tenants_seen, 4u);
}

TEST(ShardLayoutTest, PerTileDomainToWorkerMapping)
{
    // 8 cores, 8 L2 slices, 4 MCs: 20 domains. 3 workers: core 0's
    // tile on the leader, the rest dealt round-robin over workers
    // 1..2.
    ShardLayout l = ShardLayout::make(3, 8, 8, 4);
    EXPECT_EQ(l.workers, 3u);
    EXPECT_EQ(l.domains(), 20u);
    EXPECT_EQ(l.coreDomain(0), 0u);
    EXPECT_EQ(l.coreDomain(7), 7u);
    EXPECT_EQ(l.tileDomain(0), 8u);
    EXPECT_EQ(l.tileDomain(7), 15u);
    EXPECT_EQ(l.mcDomain(0), 16u);
    EXPECT_EQ(l.mcDomain(3), 19u);
    EXPECT_EQ(l.workerOfDomain(0), 0u);
    EXPECT_EQ(l.workerOfDomain(1), 1u);
    EXPECT_EQ(l.workerOfDomain(2), 2u);
    EXPECT_EQ(l.workerOfDomain(3), 1u);
    EXPECT_EQ(l.workerOfDomain(l.mcDomain(3)), 1u + (19u - 1u) % 2u);

    // Requests beyond the domain count clamp.
    EXPECT_EQ(ShardLayout::make(64, 8, 8, 4).workers, 20u);

    // Single worker drives everything.
    ShardLayout one = ShardLayout::make(1, 8, 8, 4);
    for (std::uint32_t d = 0; d < one.domains(); ++d)
        EXPECT_EQ(one.workerOfDomain(d), 0u);
}

TEST(ShardLayoutTest, LocalityPlacementGroupsAdjacentNodes)
{
    // 8 cores, 8 slices, 4 MCs on a 2x4 mesh (8 nodes), 4 workers.
    ShardLayout l = ShardLayout::make(4, 8, 8, 4,
                                      ShardPlacement::Locality, 2, 4);
    EXPECT_EQ(l.numNodes(), 8u);
    // Cores and slices stripe over the nodes; MCs sit on the corners.
    EXPECT_EQ(l.nodeOfDomain(l.coreDomain(5)), 5u);
    EXPECT_EQ(l.nodeOfDomain(l.tileDomain(5)), 5u);
    EXPECT_EQ(l.nodeOfDomain(l.mcDomain(0)), 0u);
    EXPECT_EQ(l.nodeOfDomain(l.mcDomain(1)), 3u);
    EXPECT_EQ(l.nodeOfDomain(l.mcDomain(2)), 4u);
    EXPECT_EQ(l.nodeOfDomain(l.mcDomain(3)), 7u);
    // Contiguous node ranges per worker: node n -> worker n*W/N, so
    // every domain on one node (core, L2 slice, MC) shares a worker.
    for (std::uint32_t d = 0; d < l.domains(); ++d) {
        EXPECT_EQ(l.workerOfDomain(d),
                  l.nodeOfDomain(d) * l.workers / l.numNodes())
            << "domain " << d;
    }
    EXPECT_EQ(l.workerOfDomain(l.coreDomain(6)),
              l.workerOfDomain(l.tileDomain(6)));
    // The leader invariant holds: node 0 lands on worker 0.
    EXPECT_EQ(l.workerOfDomain(0), 0u);

    // Without mesh geometry, locality placement degrades to
    // round-robin rather than collapsing onto one worker.
    ShardLayout flat = ShardLayout::make(4, 8, 8, 4,
                                         ShardPlacement::Locality);
    EXPECT_EQ(flat.numNodes(), 0u);
    EXPECT_EQ(flat.workerOfDomain(5), 1u + (5u - 1u) % 3u);
}

// Worker placement must never change simulated behavior: the
// adversarial round-robin deal and the locality deal produce the
// byte-identical delivery stream, stats and cycle count as the
// single-worker baseline (which is itself pinned against the golden).
golden::GoldenRun
runPlacedQuickstart(std::uint32_t shards, ShardPlacement placement)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    cfg.design = DesignKind::AtomOpt;
    cfg.numShards = shards;
    cfg.shardPlacement = placement;

    MicroParams params;
    params.entryBytes = 256;
    params.initialItems = 24;
    params.txnsPerCore = 6;

    HashWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    golden::TraceHasher tracer(true);
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const RunResult result = runner.run();
    golden::GoldenRun r;
    r.hash = tracer.hash();
    r.deliveries = tracer.deliveries();
    r.txns = result.txns;
    r.cycles = result.cycles;
    r.stream = std::move(tracer.stream());
    r.stats = std::as_const(runner.system()).stats().dump();
    return r;
}

TEST(ShardedDeterminismTest, PlacementPoliciesAreByteIdentical)
{
    const GoldenRun base = runGoldenQuickstart(1, true);
    const GoldenRun rr2 =
        runPlacedQuickstart(2, ShardPlacement::RoundRobin);
    const GoldenRun rr4 =
        runPlacedQuickstart(4, ShardPlacement::RoundRobin);
    const GoldenRun loc4 =
        runPlacedQuickstart(4, ShardPlacement::Locality);
    expectIdentical(base, rr2, "round-robin 2 shards vs baseline");
    expectIdentical(base, rr4, "round-robin 4 shards vs baseline");
    expectIdentical(base, loc4, "locality 4 shards vs baseline");
    EXPECT_EQ(base.hash, golden::kWindowedQuickstartHash);
}

TEST(FlatTilingTest, ReconstructsGreedyWindows)
{
    FlatTiling t;
    t.configure(2, kTickNever);
    EXPECT_FALSE(t.anchored());
    t.consume(5); // anchors window [5, 7)
    EXPECT_TRUE(t.anchored());
    EXPECT_EQ(t.end(), Tick(7));
    t.consume(6); // inside the window: no re-anchor
    EXPECT_EQ(t.end(), Tick(7));
    t.consume(7); // at the end: next window [7, 9)
    EXPECT_EQ(t.end(), Tick(9));
    t.consume(20); // gap: greedy re-anchor at the next executed tick
    EXPECT_EQ(t.end(), Tick(22));

    t.setLimit(30);
    t.consume(29);
    EXPECT_EQ(t.end(), Tick(31)); // min(29 + 2, limit + 1)
    t.consume(30);                // still inside the clamped window
    EXPECT_EQ(t.end(), Tick(31));

    // advanceTo() boundary: the sequential loop re-anchors its first
    // window at the new call's earliest pending tick.
    t.reset();
    EXPECT_FALSE(t.anchored());
    t.setLimit(kTickNever);
    t.consume(3);
    EXPECT_EQ(t.end(), Tick(5));
}

TEST(WindowBarrierTest, SpinBudgetShrinksWhenOversubscribed)
{
    const unsigned hw = std::thread::hardware_concurrency();
    // More runnable barrier threads than cores: spinning only delays
    // the thread that owns the work, so the budget collapses.
    EXPECT_EQ(WindowBarrier::pickSpinBudget(hw + 1), 64u);
    if (hw > 0) {
        EXPECT_EQ(WindowBarrier::pickSpinBudget(hw), 4096u);
    }
    // The constructed budget counts the leader as a participant.
    WindowBarrier oversub(hw + 4);
    EXPECT_EQ(oversub.spinBudget(), 64u);
}

TEST(DomainMailboxTest, PreservesFifoOrder)
{
    DomainMailbox<int> box;
    for (int i = 0; i < 1000; ++i)
        box.push(i);
    ASSERT_EQ(box.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(box.items()[i], i);
    box.clear();
    EXPECT_TRUE(box.empty());
}

// The real cross-thread contract: a producer worker fills its mailbox
// inside windows; the leader drains between that worker's barrier
// arrival and the release. FIFO order and item integrity must hold
// under actual threading.
TEST(DomainMailboxTest, CrossThreadHandoffThroughBarrierKeepsFifo)
{
    constexpr int kWindows = 200;
    constexpr int kPerWindow = 7;

    WindowBarrier barrier(1);
    DomainMailbox<int> box;
    std::atomic<bool> stop{false};

    std::thread producer([&] {
        int next = 0;
        for (;;) {
            barrier.workerArrive();
            if (stop.load(std::memory_order_acquire))
                return;
            for (int i = 0; i < kPerWindow; ++i)
                box.push(next++);
        }
    });

    std::vector<int> drained;
    for (int w = 0; w < kWindows; ++w) {
        barrier.leaderWait();
        for (int v : box.items())
            drained.push_back(v);
        box.clear();
        barrier.leaderRelease();
    }
    barrier.leaderWait();
    for (int v : box.items())
        drained.push_back(v);
    box.clear();
    stop.store(true, std::memory_order_release);
    barrier.leaderRelease();
    producer.join();

    ASSERT_EQ(drained.size(), std::size_t(kWindows) * kPerWindow);
    for (int i = 0; i < int(drained.size()); ++i)
        EXPECT_EQ(drained[i], i);
}

TEST(WindowBarrierTest, LeaderSeesAllWorkerWritesEachPhase)
{
    constexpr int kPhases = 500;
    constexpr int kWorkers = 3;

    WindowBarrier barrier(kWorkers);
    std::atomic<bool> stop{false};
    // Plain (non-atomic) per-worker counters: the barrier's
    // acquire/release pairs are the only synchronization, which is
    // exactly what the sharded data path relies on (TSan checks this).
    std::vector<std::uint64_t> counts(kWorkers, 0);

    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            for (;;) {
                barrier.workerArrive();
                if (stop.load(std::memory_order_acquire))
                    return;
                ++counts[w];
            }
        });
    }

    for (int p = 1; p <= kPhases; ++p) {
        barrier.leaderWait();
        if (p > 1) {
            for (int w = 0; w < kWorkers; ++w)
                ASSERT_EQ(counts[w], std::uint64_t(p - 1));
        }
        barrier.leaderRelease();
    }
    barrier.leaderWait();
    stop.store(true, std::memory_order_release);
    barrier.leaderRelease();
    for (auto &t : workers)
        t.join();
}

} // namespace
} // namespace atomsim
