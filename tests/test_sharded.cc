/**
 * @file
 * Sharded-simulation tests: determinism across shard counts, the
 * window barrier, and the domain mailboxes.
 *
 * The contract under test (see README, "Parallel simulation"): for a
 * fixed configuration and seed, a sharded run's (tick, node, kind)
 * delivery stream, final stats and committed-transaction count are
 * byte-identical for *every* shard count and every thread
 * interleaving. The golden workloads of tests/test_golden_trace.cc are
 * re-run here at 1, 2 and 4 shards and compared element-wise.
 *
 * The windowed kernel's stream is additionally pinned by hash, like
 * the sequential goldens: regenerate the constants only for
 * intentional timing changes, taking the "actual" values from the
 * failure message.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "harness/runner.hh"
#include "net/mesh.hh"
#include "sim/shard.hh"
#include "workloads/hash_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace atomsim
{
namespace
{

/** Records the full delivery stream (and its FNV-1a hash). */
class StreamTracer : public Mesh::Tracer
{
  public:
    struct Rec
    {
        Tick tick;
        std::uint32_t node;
        MsgType type;

        bool
        operator==(const Rec &o) const
        {
            return tick == o.tick && node == o.node && type == o.type;
        }
    };

    void
    onDeliver(Tick tick, std::uint32_t node, MsgType type) override
    {
        stream.push_back(Rec{tick, node, type});
        mix(tick);
        mix(node);
        mix(std::uint64_t(type));
    }

    std::vector<Rec> stream;
    std::uint64_t hash = 14695981039346656037ull;

  private:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 1099511628211ull;
        }
    }
};

struct ShardedResult
{
    std::vector<StreamTracer::Rec> stream;
    std::uint64_t hash;
    std::vector<std::pair<std::string, std::uint64_t>> stats;
    std::uint64_t txns;
    Tick cycles;
};

/** The quickstart-sized golden workload at @p shards shards. */
ShardedResult
runQuickstartSized(std::uint32_t shards)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    cfg.design = DesignKind::AtomOpt;
    cfg.numShards = shards;

    MicroParams params;
    params.entryBytes = 256;
    params.initialItems = 24;
    params.txnsPerCore = 6;

    HashWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    StreamTracer tracer;
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const RunResult result = runner.run();
    return ShardedResult{std::move(tracer.stream), tracer.hash,
                         std::as_const(runner.system()).stats().dump(),
                         result.txns, result.cycles};
}

/** The tpcc-sized golden workload at @p shards shards. */
ShardedResult
runTpccSized(std::uint32_t shards)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = DesignKind::Atom;
    cfg.numShards = shards;

    tpcc::ScaleParams scale;
    scale.customersPerDistrict = 8;
    scale.items = 128;
    TpccWorkload workload(scale);

    Runner runner(cfg, workload, /*txns_per_core=*/4,
                  Addr(128) * 1024 * 1024);
    StreamTracer tracer;
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const RunResult result = runner.run();
    return ShardedResult{std::move(tracer.stream), tracer.hash,
                         std::as_const(runner.system()).stats().dump(),
                         result.txns, result.cycles};
}

void
expectIdentical(const ShardedResult &a, const ShardedResult &b,
                const char *what)
{
    EXPECT_EQ(a.txns, b.txns) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.hash, b.hash) << what;
    ASSERT_EQ(a.stream.size(), b.stream.size()) << what;
    for (std::size_t i = 0; i < a.stream.size(); ++i) {
        ASSERT_TRUE(a.stream[i] == b.stream[i])
            << what << ": delivery " << i << " diverges (tick "
            << a.stream[i].tick << " vs " << b.stream[i].tick << ")";
    }
    EXPECT_EQ(a.stats, b.stats) << what;
}

// Windowed-kernel goldens. These pin the *sharded* semantics the same
// way test_golden_trace.cc pins the sequential kernel; every shard
// count must reproduce them.
constexpr std::uint64_t kWindowedQuickstartHash = 0xdfae2ae65f9923c3ull;
constexpr std::uint64_t kWindowedTpccHash = 0xd6009b4dbf9220e7ull;

TEST(ShardedDeterminismTest, QuickstartSizedByteIdenticalAcrossShards)
{
    const ShardedResult one = runQuickstartSized(1);
    const ShardedResult two = runQuickstartSized(2);
    const ShardedResult four = runQuickstartSized(4);
    EXPECT_EQ(one.txns, 8u * 6u);
    expectIdentical(one, two, "1 vs 2 shards");
    expectIdentical(one, four, "1 vs 4 shards");
    EXPECT_EQ(one.hash, kWindowedQuickstartHash)
        << "actual hash: 0x" << std::hex << one.hash;
}

TEST(ShardedDeterminismTest, TpccSizedByteIdenticalAcrossShards)
{
    const ShardedResult one = runTpccSized(1);
    const ShardedResult two = runTpccSized(2);
    const ShardedResult four = runTpccSized(4);
    EXPECT_EQ(one.txns, 4u * 4u);
    expectIdentical(one, two, "1 vs 2 shards");
    expectIdentical(one, four, "1 vs 4 shards");
    EXPECT_EQ(one.hash, kWindowedTpccHash)
        << "actual hash: 0x" << std::hex << one.hash;
}

// Thread-schedule independence: the same threaded shard count twice.
TEST(ShardedDeterminismTest, BackToBackThreadedRunsAreIdentical)
{
    const ShardedResult a = runQuickstartSized(2);
    const ShardedResult b = runQuickstartSized(2);
    expectIdentical(a, b, "threaded run-to-run");
}

// The sharded run must agree with the sequential kernel on everything
// order-insensitive: work done, protocol traffic, committed txns.
TEST(ShardedDeterminismTest, ShardedMatchesSequentialWork)
{
    const ShardedResult seq = runQuickstartSized(0);
    const ShardedResult sharded = runQuickstartSized(2);
    EXPECT_EQ(seq.txns, sharded.txns);
    EXPECT_EQ(seq.stream.size(), sharded.stream.size());
    // Transaction-boundary control ops quantize to window barriers, so
    // end-to-end cycles may shift by a few windows -- but not by more
    // than a fraction of a percent on these runs.
    const double drift =
        double(sharded.cycles) - double(seq.cycles);
    EXPECT_LT(drift / double(seq.cycles), 0.01);
    EXPECT_GE(drift, 0.0);
}

TEST(ShardLayoutTest, DomainToWorkerMapping)
{
    // 4 MCs, 3 workers: cache complex on the leader, MCs round-robin
    // over workers 1..2.
    ShardLayout l = ShardLayout::make(3, 4);
    EXPECT_EQ(l.workers, 3u);
    EXPECT_EQ(l.domains(), 5u);
    EXPECT_EQ(l.workerOfDomain(0), 0u);
    EXPECT_EQ(l.workerOfDomain(l.mcDomain(0)), 1u);
    EXPECT_EQ(l.workerOfDomain(l.mcDomain(1)), 2u);
    EXPECT_EQ(l.workerOfDomain(l.mcDomain(2)), 1u);
    EXPECT_EQ(l.workerOfDomain(l.mcDomain(3)), 2u);

    // Requests beyond 1 + numMcs clamp.
    EXPECT_EQ(ShardLayout::make(64, 4).workers, 5u);

    // Single worker drives everything.
    ShardLayout one = ShardLayout::make(1, 4);
    for (std::uint32_t d = 0; d < one.domains(); ++d)
        EXPECT_EQ(one.workerOfDomain(d), 0u);
}

TEST(DomainMailboxTest, PreservesFifoOrder)
{
    DomainMailbox<int> box;
    for (int i = 0; i < 1000; ++i)
        box.push(i);
    ASSERT_EQ(box.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(box.items()[i], i);
    box.clear();
    EXPECT_TRUE(box.empty());
}

// The real cross-thread contract: a producer worker fills its mailbox
// inside windows; the leader drains between that worker's barrier
// arrival and the release. FIFO order and item integrity must hold
// under actual threading.
TEST(DomainMailboxTest, CrossThreadHandoffThroughBarrierKeepsFifo)
{
    constexpr int kWindows = 200;
    constexpr int kPerWindow = 7;

    WindowBarrier barrier(1);
    DomainMailbox<int> box;
    std::atomic<bool> stop{false};

    std::thread producer([&] {
        int next = 0;
        for (;;) {
            barrier.workerArrive();
            if (stop.load(std::memory_order_acquire))
                return;
            for (int i = 0; i < kPerWindow; ++i)
                box.push(next++);
        }
    });

    std::vector<int> drained;
    for (int w = 0; w < kWindows; ++w) {
        barrier.leaderWait();
        for (int v : box.items())
            drained.push_back(v);
        box.clear();
        barrier.leaderRelease();
    }
    barrier.leaderWait();
    for (int v : box.items())
        drained.push_back(v);
    box.clear();
    stop.store(true, std::memory_order_release);
    barrier.leaderRelease();
    producer.join();

    ASSERT_EQ(drained.size(), std::size_t(kWindows) * kPerWindow);
    for (int i = 0; i < int(drained.size()); ++i)
        EXPECT_EQ(drained[i], i);
}

TEST(WindowBarrierTest, LeaderSeesAllWorkerWritesEachPhase)
{
    constexpr int kPhases = 500;
    constexpr int kWorkers = 3;

    WindowBarrier barrier(kWorkers);
    std::atomic<bool> stop{false};
    // Plain (non-atomic) per-worker counters: the barrier's
    // acquire/release pairs are the only synchronization, which is
    // exactly what the sharded data path relies on (TSan checks this).
    std::vector<std::uint64_t> counts(kWorkers, 0);

    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            for (;;) {
                barrier.workerArrive();
                if (stop.load(std::memory_order_acquire))
                    return;
                ++counts[w];
            }
        });
    }

    for (int p = 1; p <= kPhases; ++p) {
        barrier.leaderWait();
        if (p > 1) {
            for (int w = 0; w < kWorkers; ++w)
                ASSERT_EQ(counts[w], std::uint64_t(p - 1));
        }
        barrier.leaderRelease();
    }
    barrier.leaderWait();
    stop.store(true, std::memory_order_release);
    barrier.leaderRelease();
    for (auto &t : workers)
        t.join();
}

} // namespace
} // namespace atomsim
