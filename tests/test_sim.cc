/**
 * @file
 * Unit tests for the simulation kernel: event queue, stats, RNG,
 * configuration.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace atomsim
{
namespace
{

TEST(EventQueueTest, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.post(30, [&] { order.push_back(3); });
    eq.post(10, [&] { order.push_back(1); });
    eq.post(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

// Regression for the old priority_queue kernel: events posted at one
// tick must pop in posting order (FIFO within a tick), however many
// there are.
TEST(EventQueueTest, FifoWithinATick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        eq.post(5, [&order, i] { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueueTest, SchedulingFromInsideEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.post(1, [&] {
        ++fired;
        eq.postIn(4, [&] {
            ++fired;
            EXPECT_EQ(eq.now(), 5u);
        });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, SameTickSchedulingRunsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> order;
    eq.post(7, [&] {
        order.push_back(1);
        eq.postIn(0, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.post(10, [&] { ++fired; });
    eq.post(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.post(t, [&] { ++count; });
    eq.runUntil([&] { return count >= 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueueTest, RunUntilRespectsLimitAndAlreadyTruePredicate)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.post(t, [&] { ++count; });

    // Predicate already true: nothing executes.
    EXPECT_EQ(eq.runUntil([] { return true; }), 0u);
    EXPECT_EQ(count, 0);

    // Limit cuts the run short even though the predicate never fires.
    EXPECT_EQ(eq.runUntil([] { return false; }, 3), 3u);
    EXPECT_EQ(count, 3);
    EXPECT_EQ(eq.pending(), 7u);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, ExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.post(Tick(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

// --- intrusive-event API ------------------------------------------------

TEST(EventQueueTest, MemberEventSchedulesAndReschedules)
{
    EventQueue eq;
    int fired = 0;
    TickEvent ev([&] { ++fired; }, "test.tick");

    EXPECT_FALSE(ev.scheduled());
    eq.schedule(ev, 10);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 10u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(ev.scheduled());

    // The same object is reusable immediately.
    eq.scheduleIn(ev, 5);
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(EventQueueTest, DescheduleRemovesFromWheelAndSpill)
{
    EventQueue eq;
    int fired = 0;
    TickEvent near([&] { ++fired; }, "near");
    TickEvent far([&] { ++fired; }, "far");

    eq.schedule(near, 10);  // wheel
    eq.schedule(far, Tick(EventQueue::kWheelBuckets) + 100);  // spill
    EXPECT_EQ(eq.pending(), 2u);

    eq.deschedule(near);
    eq.deschedule(far);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 0);

    // reschedule() works whether or not the event is queued.
    eq.reschedule(near, 3);
    eq.reschedule(near, 7);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueueTest, SelfReschedulingMemberEvent)
{
    EventQueue eq;
    int ticks = 0;
    TickEvent *self = nullptr;
    TickEvent ev(
        [&] {
            if (++ticks < 10)
                eq.scheduleIn(*self, 100);
        },
        "test.selftick");
    self = &ev;
    eq.schedule(ev, 100);
    eq.run();
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(eq.now(), 1000u);
}

// --- calendar-queue internals ------------------------------------------

// Events beyond the wheel horizon spill to the far-future heap and must
// still run in (tick, insertion-order) order when the horizon reaches
// them.
TEST(EventQueueTest, FarFutureEventsCrossTheHorizon)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick far = Tick(EventQueue::kWheelBuckets) * 3 + 17;
    eq.post(far, [&] { order.push_back(1); });
    eq.post(far, [&] { order.push_back(2); });
    eq.post(far + 1, [&] { order.push_back(3); });
    eq.post(1, [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), far + 1);
}

// FIFO within one tick must hold even when the earlier event sat in the
// spill heap (scheduled while the tick was out of the horizon) and the
// later one went straight into the wheel (scheduled after now()
// advanced). The migration path must keep the seq order.
TEST(EventQueueTest, FifoAcrossWheelAndSpill)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick target = Tick(EventQueue::kWheelBuckets) + 500;

    // Out of horizon at schedule time -> spill heap.
    eq.post(target, [&] { order.push_back(1); });
    // Advance now() so `target` is inside the horizon, then schedule
    // the second event for the same tick -> wheel bucket.
    eq.post(1000, [&] {
        eq.post(target, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Regression: run(limit) jumps now() to the limit; spill events the
// jump brought inside the horizon must migrate into the wheel, or a
// later schedule into the same window executes ahead of them (and the
// stale spill event fires a whole wheel-wrap late).
TEST(EventQueueTest, RunLimitJumpKeepsSpillOrdering)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick a_tick = Tick(EventQueue::kWheelBuckets) * 2 + 1808;
    eq.post(a_tick, [&] {
        order.push_back(1);
        EXPECT_EQ(eq.now(), a_tick);
    });

    // Jump now() to within a horizon of A without executing anything.
    eq.run(a_tick - 1000);
    EXPECT_EQ(eq.now(), a_tick - 1000);

    // B lands in the wheel; A (scheduled first) must still run first.
    eq.post(a_tick + 500, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.now(), a_tick + 500);
}

// The wheel/spill insert counters drive the spill-ratio tuning stat
// printed by bench/kernel_events.cc.
TEST(EventQueueTest, SpillRatioStatCountsInserts)
{
    EventQueue eq;
    EXPECT_EQ(eq.spillRatio(), 0.0);

    TickEvent near1([] {}, "near1");
    TickEvent near2([] {}, "near2");
    TickEvent far1([] {}, "far1");
    eq.schedule(near1, 10);
    eq.schedule(near2, EventQueue::kWheelBuckets - 1);
    eq.schedule(far1, Tick(EventQueue::kWheelBuckets) + 10);

    EXPECT_EQ(eq.wheelInserts(), 2u);
    EXPECT_EQ(eq.spillInserts(), 1u);
    EXPECT_DOUBLE_EQ(eq.spillRatio(), 1.0 / 3.0);

    // Migration from the spill heap into the wheel is not a fresh
    // insert; the ratio reflects schedule-time placement only.
    eq.run();
    EXPECT_EQ(eq.wheelInserts(), 2u);
    EXPECT_EQ(eq.spillInserts(), 1u);
}

// scheduleAt() places an event into a previously-drawn FIFO slot: it
// must run *before* same-tick events whose seqs were drawn later, even
// though it was scheduled after them (the mesh drain-event pattern).
TEST(EventQueueTest, ScheduleAtReplaysStampedFifoSlot)
{
    EventQueue eq;
    std::vector<int> order;

    const std::uint64_t early_slot = eq.allocSeq();
    eq.post(50, [&] { order.push_back(1); });
    eq.post(50, [&] { order.push_back(2); });

    TickEvent stamped([&] { order.push_back(0); }, "stamped");
    eq.scheduleAt(stamped, 50, early_slot);

    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// --- determinism --------------------------------------------------------

namespace
{

/** A deterministic pseudo-random scheduling storm; returns the
 * execution order of event ids. */
std::vector<std::uint32_t>
schedulingStorm(std::uint64_t seed)
{
    EventQueue eq;
    std::vector<std::uint32_t> order;
    std::uint64_t rng = seed;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    std::uint32_t id = 0;
    std::function<void(std::uint32_t)> fire = [&](std::uint32_t my_id) {
        order.push_back(my_id);
        // Each event spawns 0..2 children at 0..~5000 ticks ahead,
        // exercising same-tick FIFO, the wheel and the spill heap.
        const std::uint32_t kids = next() % 3;
        for (std::uint32_t k = 0; k < kids && id < 2000; ++k) {
            const Cycles delay = next() % 5000;
            const std::uint32_t kid_id = id++;
            eq.postIn(delay, [&fire, kid_id] { fire(kid_id); });
        }
    };
    for (int i = 0; i < 16; ++i) {
        const std::uint32_t root = id++;
        eq.post(next() % 64, [&fire, root] { fire(root); });
    }
    eq.run();
    return order;
}

} // namespace

TEST(EventQueueTest, DeterministicForSeed)
{
    const auto a = schedulingStorm(12345);
    const auto b = schedulingStorm(12345);
    EXPECT_GT(a.size(), 100u);
    EXPECT_EQ(a, b);

    const auto c = schedulingStorm(999);
    EXPECT_NE(a, c);  // different seed, different storm
}

// --- event pool ---------------------------------------------------------

// Under steady-state churn the pool must stop growing: the number of
// FuncEvents ever allocated stays at the in-flight high-water mark.
TEST(EventQueueTest, PoolReuseUnderChurn)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 50; ++i)
            eq.postIn(Cycles(1 + i), [&] { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 5000u);
    // 50 in flight at peak; allow slack but forbid per-event growth.
    EXPECT_LE(eq.poolAllocated(), 64u);
    EXPECT_EQ(eq.poolFree(), eq.poolAllocated());
}

TEST(EventQueueTest, PoolReleasesBeforeCallbackRuns)
{
    EventQueue eq;
    int fired = 0;
    // The callback posts again; the pool node freed by the firing event
    // must be reusable right away, so two chained posts need one node.
    eq.post(1, [&] {
        ++fired;
        eq.postIn(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.poolAllocated(), 1u);
}

TEST(StatSetTest, CountersAccumulateAndReset)
{
    StatSet stats;
    Counter &c = stats.counter("core0", "ops");
    c.inc();
    c.inc(9);
    EXPECT_EQ(stats.value("core0", "ops"), 10u);
    stats.resetAll();
    EXPECT_EQ(stats.value("core0", "ops"), 0u);
}

TEST(StatSetTest, SumAcrossGroups)
{
    StatSet stats;
    stats.counter("core0", "txn").inc(3);
    stats.counter("core1", "txn").inc(4);
    stats.counter("mc0", "txn").inc(100);
    EXPECT_EQ(stats.sum("core", "txn"), 7u);
    EXPECT_EQ(stats.sum("", "txn"), 107u);
}

TEST(StatSetTest, MissingCounterReadsZero)
{
    StatSet stats;
    EXPECT_EQ(stats.value("nope", "none"), 0u);
}

TEST(StatSetTest, DumpSorted)
{
    StatSet stats;
    stats.counter("b", "y").inc(2);
    stats.counter("a", "x").inc(1);
    const auto dump = stats.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a.x");
    EXPECT_EQ(dump[1].first, "b.y");
}

TEST(RandomTest, DeterministicForSeed)
{
    Random a(123);
    Random b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiffer)
{
    Random a(1);
    Random b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(RandomTest, BelowStaysInRange)
{
    Random rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(RandomTest, RangeInclusive)
{
    Random rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, UnitInHalfOpenInterval)
{
    Random rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(ConfigTest, DefaultsMatchTableOne)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.numCores, 32u);
    EXPECT_EQ(cfg.sqEntries, 32u);
    EXPECT_EQ(cfg.l1SizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1Assoc, 4u);
    EXPECT_EQ(cfg.l1Latency, 3u);
    EXPECT_EQ(cfg.l2Tiles, 32u);
    EXPECT_EQ(cfg.l2TileBytes, 1024u * 1024);
    EXPECT_EQ(cfg.l2Assoc, 16u);
    EXPECT_EQ(cfg.l2Latency, 30u);
    EXPECT_EQ(cfg.numMemCtrls, 4u);
    EXPECT_EQ(cfg.nvmReadLatency, 240u);
    EXPECT_EQ(cfg.nvmWriteLatency, 360u);
    EXPECT_EQ(cfg.meshRows, 4u);
    EXPECT_EQ(cfg.mshrs, 32u);
    EXPECT_EQ(cfg.robSize, 192u);
    cfg.validate();  // must not die
}

TEST(ConfigTest, LineTransferMatchesBandwidth)
{
    SystemConfig cfg;
    // 5.3 GB/s at 2 GHz = 2.65 B/cycle -> 64 B needs ceil(24.15) = 25.
    EXPECT_EQ(cfg.lineTransferCycles(), 25u);
}

TEST(ConfigTest, MeshColsDerived)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.meshCols(), 8u);  // 32 tiles / 4 rows
}

TEST(ConfigTest, DesignNamesRoundTrip)
{
    for (auto kind :
         {DesignKind::Base, DesignKind::Atom, DesignKind::AtomOpt,
          DesignKind::NonAtomic, DesignKind::Redo}) {
        EXPECT_EQ(designFromName(designName(kind)), kind);
    }
}

TEST(ConfigDeathTest, RejectsNonPowerOfTwoMcs)
{
    SystemConfig cfg;
    cfg.numMemCtrls = 3;
    EXPECT_DEATH({ cfg.validate(); }, "power of two");
}

TEST(ConfigDeathTest, RejectsOversizedRecord)
{
    SystemConfig cfg;
    cfg.recordEntries = 8;
    EXPECT_DEATH({ cfg.validate(); }, "recordEntries");
}

TEST(ConfigDeathTest, RejectsShardedRedo)
{
    SystemConfig cfg;
    cfg.numShards = 2;
    cfg.design = DesignKind::Redo;
    EXPECT_DEATH({ cfg.validate(); }, "REDO");
}

TEST(ConfigDeathTest, RejectsWindowBeyondLookahead)
{
    SystemConfig cfg;
    cfg.numShards = 2;
    cfg.windowTicks = cfg.hopLatency + 1;
    EXPECT_DEATH({ cfg.validate(); }, "lookahead");
}

// --- spill-heap deschedule (indexed heap) ------------------------------

// Descheduling from the middle of the spill heap (the powerFail
// pattern: member events parked thousands of ticks out) must keep the
// heap consistent: remaining events still run in (tick, seq) order and
// the descheduled event is rescheduleable.
TEST(EventQueueTest, DescheduleFromSpillHeapMiddle)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick base = Tick(EventQueue::kWheelBuckets) + 1000;

    std::vector<std::unique_ptr<TickEvent>> evs;
    for (int i = 0; i < 32; ++i) {
        evs.push_back(std::make_unique<TickEvent>(
            [&order, i] { order.push_back(i); }, "spill"));
        // Interleaved ticks so heap order != insertion order.
        eq.schedule(*evs.back(), base + Tick((i * 7) % 32));
    }
    // Remove every third event, from the middle of the heap.
    for (int i = 0; i < 32; i += 3)
        eq.deschedule(*evs[std::size_t(i)]);
    // One of them comes back at a different (earlier spill) tick.
    eq.schedule(*evs[3], base + 200);

    eq.run();

    std::vector<int> expect;
    for (int t = 0; t < 32; ++t) {
        // order of execution follows tick = base + (i*7)%32
        for (int i = 0; i < 32; ++i) {
            if (i % 3 == 0)
                continue;
            if ((i * 7) % 32 == t)
                expect.push_back(i);
        }
    }
    expect.push_back(3);  // rescheduled to base + 200
    EXPECT_EQ(order, expect);
}

// A descheduled-from-spill event must not leave stale heap state
// behind: destroying it afterwards (the Event dtor path) and churning
// the heap further must stay consistent.
TEST(EventQueueTest, SpillHeapSurvivesDescheduleAndDestroy)
{
    EventQueue eq;
    int fired = 0;
    const Tick base = Tick(EventQueue::kWheelBuckets) + 50;
    {
        TickEvent doomed([&] { ++fired; }, "doomed");
        eq.schedule(doomed, base + 7);
        TickEvent other([&] { ++fired; }, "other");
        eq.schedule(other, base + 9);
        eq.deschedule(doomed);
        eq.deschedule(other);
    }  // both destroyed while unscheduled
    TickEvent keeper([&] { ++fired; }, "keeper");
    eq.schedule(keeper, base + 3);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), base + 3);
}

// --- configurable wheel width ------------------------------------------

// A narrow wheel pushes more schedules through the spill heap; the
// execution order must not change, only the spill ratio.
TEST(EventQueueTest, NarrowWheelKeepsOrderRaisesSpillRatio)
{
    EventQueue wide(4096);
    EventQueue narrow(64);
    EXPECT_EQ(wide.wheelWidth(), 4096u);
    EXPECT_EQ(narrow.wheelWidth(), 64u);

    std::vector<int> wide_order, narrow_order;
    for (auto *p : {&wide, &narrow}) {
        auto &order = p == &wide ? wide_order : narrow_order;
        for (int i = 0; i < 200; ++i)
            p->post(Tick((i * 37) % 500), [&order, i] {
                order.push_back(i);
            });
        p->run();
    }
    EXPECT_EQ(wide_order, narrow_order);
    EXPECT_EQ(wide.spillRatio(), 0.0);
    EXPECT_GT(narrow.spillRatio(), 0.5);
}

TEST(EventQueueDeathTest, RejectsNonPowerOfTwoWheel)
{
    EXPECT_DEATH({ EventQueue eq(100); }, "power of two");
}

} // namespace
} // namespace atomsim
