/**
 * @file
 * Unit tests for the simulation kernel: event queue, stats, RNG,
 * configuration.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace atomsim
{
namespace
{

TEST(EventQueueTest, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, FifoWithinATick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueueTest, SchedulingFromInsideEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] {
            ++fired;
            EXPECT_EQ(eq.now(), 5u);
        });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, SameTickSchedulingRunsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(7, [&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&] { ++count; });
    eq.runUntil([&] { return count >= 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, ExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(Tick(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(StatSetTest, CountersAccumulateAndReset)
{
    StatSet stats;
    Counter &c = stats.counter("core0", "ops");
    c.inc();
    c.inc(9);
    EXPECT_EQ(stats.value("core0", "ops"), 10u);
    stats.resetAll();
    EXPECT_EQ(stats.value("core0", "ops"), 0u);
}

TEST(StatSetTest, SumAcrossGroups)
{
    StatSet stats;
    stats.counter("core0", "txn").inc(3);
    stats.counter("core1", "txn").inc(4);
    stats.counter("mc0", "txn").inc(100);
    EXPECT_EQ(stats.sum("core", "txn"), 7u);
    EXPECT_EQ(stats.sum("", "txn"), 107u);
}

TEST(StatSetTest, MissingCounterReadsZero)
{
    StatSet stats;
    EXPECT_EQ(stats.value("nope", "none"), 0u);
}

TEST(StatSetTest, DumpSorted)
{
    StatSet stats;
    stats.counter("b", "y").inc(2);
    stats.counter("a", "x").inc(1);
    const auto dump = stats.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a.x");
    EXPECT_EQ(dump[1].first, "b.y");
}

TEST(RandomTest, DeterministicForSeed)
{
    Random a(123);
    Random b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RandomTest, DifferentSeedsDiffer)
{
    Random a(1);
    Random b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(RandomTest, BelowStaysInRange)
{
    Random rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(RandomTest, RangeInclusive)
{
    Random rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo = saw_lo || v == 5;
        saw_hi = saw_hi || v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, UnitInHalfOpenInterval)
{
    Random rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(ConfigTest, DefaultsMatchTableOne)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.numCores, 32u);
    EXPECT_EQ(cfg.sqEntries, 32u);
    EXPECT_EQ(cfg.l1SizeBytes, 32u * 1024);
    EXPECT_EQ(cfg.l1Assoc, 4u);
    EXPECT_EQ(cfg.l1Latency, 3u);
    EXPECT_EQ(cfg.l2Tiles, 32u);
    EXPECT_EQ(cfg.l2TileBytes, 1024u * 1024);
    EXPECT_EQ(cfg.l2Assoc, 16u);
    EXPECT_EQ(cfg.l2Latency, 30u);
    EXPECT_EQ(cfg.numMemCtrls, 4u);
    EXPECT_EQ(cfg.nvmReadLatency, 240u);
    EXPECT_EQ(cfg.nvmWriteLatency, 360u);
    EXPECT_EQ(cfg.meshRows, 4u);
    EXPECT_EQ(cfg.mshrs, 32u);
    EXPECT_EQ(cfg.robSize, 192u);
    cfg.validate();  // must not die
}

TEST(ConfigTest, LineTransferMatchesBandwidth)
{
    SystemConfig cfg;
    // 5.3 GB/s at 2 GHz = 2.65 B/cycle -> 64 B needs ceil(24.15) = 25.
    EXPECT_EQ(cfg.lineTransferCycles(), 25u);
}

TEST(ConfigTest, MeshColsDerived)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.meshCols(), 8u);  // 32 tiles / 4 rows
}

TEST(ConfigTest, DesignNamesRoundTrip)
{
    for (auto kind :
         {DesignKind::Base, DesignKind::Atom, DesignKind::AtomOpt,
          DesignKind::NonAtomic, DesignKind::Redo}) {
        EXPECT_EQ(designFromName(designName(kind)), kind);
    }
}

TEST(ConfigDeathTest, RejectsNonPowerOfTwoMcs)
{
    SystemConfig cfg;
    cfg.numMemCtrls = 3;
    EXPECT_DEATH({ cfg.validate(); }, "power of two");
}

TEST(ConfigDeathTest, RejectsOversizedRecord)
{
    SystemConfig cfg;
    cfg.recordEntries = 8;
    EXPECT_DEATH({ cfg.validate(); }, "recordEntries");
}

} // namespace
} // namespace atomsim
