#include "golden_support.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "harness/runner.hh"
#include "workloads/hash_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace atomsim
{
namespace golden
{

namespace
{

GoldenRun
collect(Runner &runner, TraceHasher &tracer)
{
    runner.setUp();
    const RunResult result = runner.run();
    GoldenRun r;
    r.hash = tracer.hash();
    r.deliveries = tracer.deliveries();
    r.txns = result.txns;
    r.cycles = result.cycles;
    r.stream = std::move(tracer.stream());
    r.stats = std::as_const(runner.system()).stats().dump();
    return r;
}

} // namespace

GoldenRun
runGoldenQuickstart(std::uint32_t shards, bool record_stream)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    cfg.design = DesignKind::AtomOpt;
    cfg.numShards = shards;

    MicroParams params;
    params.entryBytes = 256;
    params.initialItems = 24;
    params.txnsPerCore = 6;

    HashWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    TraceHasher tracer(record_stream);
    runner.system().mesh().setTracer(&tracer);
    return collect(runner, tracer);
}

GoldenRun
runGoldenTpcc(std::uint32_t shards, bool record_stream)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = DesignKind::Atom;
    cfg.numShards = shards;

    tpcc::ScaleParams scale;
    scale.customersPerDistrict = 8;
    scale.items = 128;
    TpccWorkload workload(scale);

    Runner runner(cfg, workload, /*txns_per_core=*/4,
                  Addr(128) * 1024 * 1024);
    TraceHasher tracer(record_stream);
    runner.system().mesh().setTracer(&tracer);
    return collect(runner, tracer);
}

std::string
renderGoldens()
{
    const GoldenRun seq_quick = runGoldenQuickstart(0);
    const GoldenRun seq_tpcc = runGoldenTpcc(0);
    // The windowed kernel's stream is byte-identical for every shard
    // count (tests/test_sharded.cc proves it); shard count 1 is the
    // canonical generator.
    const GoldenRun win_quick = runGoldenQuickstart(1);
    const GoldenRun win_tpcc = runGoldenTpcc(1);

    char buf[2048];
    const int len = std::snprintf(
        buf, sizeof(buf),
        "// Golden delivery-stream constants. GENERATED -- never\n"
        "// hand-edit: run `test_golden_trace --dump-goldens` (or\n"
        "// `test_sharded --dump-goldens`) and commit the rewritten\n"
        "// file together with the intentional timing change that\n"
        "// moved it.\n"
        "// clang-format off\n"
        "constexpr std::uint64_t kGoldenQuickstartHash = "
        "0x%016llxull;\n"
        "constexpr std::uint64_t kGoldenQuickstartDeliveries = "
        "%lluull;\n"
        "constexpr std::uint64_t kGoldenTpccHash = 0x%016llxull;\n"
        "constexpr std::uint64_t kGoldenTpccDeliveries = %lluull;\n"
        "constexpr std::uint64_t kWindowedQuickstartHash = "
        "0x%016llxull;\n"
        "constexpr std::uint64_t kWindowedTpccHash = "
        "0x%016llxull;\n"
        "// clang-format on\n",
        (unsigned long long)seq_quick.hash,
        (unsigned long long)seq_quick.deliveries,
        (unsigned long long)seq_tpcc.hash,
        (unsigned long long)seq_tpcc.deliveries,
        (unsigned long long)win_quick.hash,
        (unsigned long long)win_tpcc.hash);
    if (len < 0 || std::size_t(len) >= sizeof(buf)) {
        // A truncated render would silently regenerate a truncated
        // goldens.inc (and the idempotence test would then bless it).
        std::fprintf(stderr,
                     "renderGoldens: buffer too small (%d bytes "
                     "needed)\n", len);
        std::abort();
    }
    return std::string(buf, std::size_t(len));
}

bool
maybeDumpGoldens(int argc, char **argv)
{
    bool dump = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dump-goldens") == 0)
            dump = true;
    }
    if (!dump)
        return false;

    std::printf("regenerating goldens (sequential + windowed runs)"
                "...\n");
    const std::string contents = renderGoldens();

    const char *path = ATOMSIM_GOLDENS_PATH;
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return true;
    }
    std::fputs(contents.c_str(), f);
    std::fclose(f);

    std::printf("wrote %s:\n%s", path, contents.c_str());
    return true;
}

} // namespace golden
} // namespace atomsim
