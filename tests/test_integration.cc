/**
 * @file
 * End-to-end integration tests: every design runs every micro-workload
 * on a small machine and the architectural state stays consistent.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.hh"
#include "workloads/btree_workload.hh"
#include "workloads/hash_workload.hh"
#include "workloads/queue_workload.hh"
#include "workloads/rbtree_workload.hh"
#include "workloads/sdg_workload.hh"
#include "workloads/sps_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace atomsim
{
namespace
{

SystemConfig
smallConfig(DesignKind design)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.bucketsPerMc = 256;
    cfg.design = design;
    return cfg;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const MicroParams &params)
{
    if (name == "hash")
        return std::make_unique<HashWorkload>(params);
    if (name == "queue")
        return std::make_unique<QueueWorkload>(params);
    if (name == "rbtree")
        return std::make_unique<RbTreeWorkload>(params);
    if (name == "btree")
        return std::make_unique<BTreeWorkload>(params);
    if (name == "sdg")
        return std::make_unique<SdgWorkload>(params);
    if (name == "sps")
        return std::make_unique<SpsWorkload>(params);
    return nullptr;
}

struct Combo
{
    const char *workload;
    DesignKind design;
};

class DesignWorkloadTest : public ::testing::TestWithParam<Combo>
{
};

TEST_P(DesignWorkloadTest, RunsToCompletionAndStaysConsistent)
{
    const Combo combo = GetParam();
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 16;
    params.txnsPerCore = 8;

    auto workload = makeWorkload(combo.workload, params);
    ASSERT_NE(workload, nullptr);

    Runner runner(smallConfig(combo.design), *workload,
                  params.txnsPerCore, Addr(64) * 1024 * 1024);
    runner.setUp();
    const RunResult result = runner.run(Tick(500) * 1000 * 1000);

    EXPECT_EQ(result.txns, 4u * params.txnsPerCore);
    EXPECT_GT(result.cycles, 0u);

    // The architectural image must hold a consistent structure after
    // all transactions complete.
    DirectAccessor direct(runner.system().archMem());
    EXPECT_EQ(workload->checkConsistency(direct, 4), "");
}

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    std::string name = info.param.workload;
    name += "_";
    std::string design = designName(info.param.design);
    for (char &c : design) {
        if (c == '-')
            c = '_';
    }
    return name + design;
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignWorkloadTest,
    ::testing::Values(
        Combo{"hash", DesignKind::Base},
        Combo{"hash", DesignKind::Atom},
        Combo{"hash", DesignKind::AtomOpt},
        Combo{"hash", DesignKind::NonAtomic},
        Combo{"hash", DesignKind::Redo},
        Combo{"queue", DesignKind::Base},
        Combo{"queue", DesignKind::Atom},
        Combo{"queue", DesignKind::AtomOpt},
        Combo{"queue", DesignKind::NonAtomic},
        Combo{"queue", DesignKind::Redo},
        Combo{"rbtree", DesignKind::Atom},
        Combo{"rbtree", DesignKind::AtomOpt},
        Combo{"rbtree", DesignKind::Redo},
        Combo{"btree", DesignKind::Atom},
        Combo{"btree", DesignKind::AtomOpt},
        Combo{"btree", DesignKind::Redo},
        Combo{"sdg", DesignKind::Atom},
        Combo{"sdg", DesignKind::AtomOpt},
        Combo{"sps", DesignKind::Atom},
        Combo{"sps", DesignKind::NonAtomic}),
    comboName);

TEST(IntegrationTest, TpccRunsOnAtomOpt)
{
    tpcc::ScaleParams scale;
    scale.customersPerDistrict = 16;
    scale.items = 128;
    TpccWorkload workload(scale);

    Runner runner(smallConfig(DesignKind::AtomOpt), workload, 6,
                  Addr(128) * 1024 * 1024);
    runner.setUp();
    const RunResult result = runner.run(Tick(500) * 1000 * 1000);
    EXPECT_EQ(result.txns, 4u * 6u);

    DirectAccessor direct(runner.system().archMem());
    EXPECT_EQ(workload.checkConsistency(direct, 4), "");
}

TEST(IntegrationTest, DurableStateMatchesArchitecturalAfterQuiesce)
{
    // After a full run every committed transaction's data has been
    // flushed; for undo designs the NVM image of workload data must
    // match the architectural image.
    MicroParams params;
    params.initialItems = 8;
    params.txnsPerCore = 6;
    HashWorkload workload(params);

    Runner runner(smallConfig(DesignKind::AtomOpt), workload,
                  params.txnsPerCore, Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.run(Tick(500) * 1000 * 1000);

    // Check consistency on the *durable* image directly: everything
    // committed must be durable after the last commit completed.
    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, 4), "");
}

} // namespace
} // namespace atomsim
