/**
 * @file
 * Unit tests for the on-chip mesh network.
 */

#include <gtest/gtest.h>

#include "net/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{
namespace
{

class MeshTest : public ::testing::Test
{
  protected:
    MeshTest() : mesh(eq, cfg, stats) {}

    EventQueue eq;
    SystemConfig cfg;  // 4x8 mesh
    StatSet stats;
    Mesh mesh{eq, cfg, stats};
};

TEST_F(MeshTest, Geometry)
{
    EXPECT_EQ(mesh.numNodes(), 32u);
    // XY distance: node 0 = (0,0), node 31 = (3,7).
    EXPECT_EQ(mesh.hops(0, 31), 10u);
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 7), 7u);
    EXPECT_EQ(mesh.hops(0, 24), 3u);
}

TEST_F(MeshTest, McNodesOnCorners)
{
    EXPECT_EQ(mesh.mcNode(0), 0u);    // (0,0)
    EXPECT_EQ(mesh.mcNode(1), 7u);    // (0,7)
    EXPECT_EQ(mesh.mcNode(2), 24u);   // (3,0)
    EXPECT_EQ(mesh.mcNode(3), 31u);   // (3,7)
}

TEST_F(MeshTest, DeliveryLatencyScalesWithHops)
{
    Tick t_near = 0;
    Tick t_far = 0;
    mesh.send(0, 1, MsgType::Ctrl, [&] { t_near = eq.now(); });
    eq.run();
    EventQueue eq2;
    Mesh mesh2(eq2, cfg, stats);
    mesh2.send(0, 31, MsgType::Ctrl, [&] { t_far = eq2.now(); });
    eq2.run();
    EXPECT_GT(t_far, t_near);
    // 1 source hop + 10 link hops at hopLatency=2 -> 22 cycles.
    EXPECT_EQ(t_far, 22u);
    EXPECT_EQ(t_near, 4u);
}

TEST_F(MeshTest, SameNodeStillPaysRouterTraversal)
{
    Tick t = 0;
    mesh.send(5, 5, MsgType::Ctrl, [&] { t = eq.now(); });
    eq.run();
    EXPECT_EQ(t, cfg.hopLatency);
}

TEST_F(MeshTest, DataMessagesPaySerialization)
{
    Tick t_ctrl = 0;
    Tick t_data = 0;
    mesh.send(0, 1, MsgType::Ctrl, [&] { t_ctrl = eq.now(); });
    eq.run();
    EventQueue eq2;
    Mesh mesh2(eq2, cfg, stats);
    mesh2.send(0, 1, MsgType::Data, [&] { t_data = eq2.now(); });
    eq2.run();
    // Data = 5 flits: 4 extra cycles behind the head flit.
    EXPECT_EQ(t_data, t_ctrl + 4);
}

TEST_F(MeshTest, ContentionQueuesOnSharedLink)
{
    std::vector<Tick> arrivals;
    for (int i = 0; i < 4; ++i) {
        mesh.send(0, 1, MsgType::Data,
                  [&] { arrivals.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(arrivals.size(), 4u);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        // Each 5-flit packet occupies the link; arrivals serialize.
        EXPECT_GE(arrivals[i], arrivals[i - 1] + 4);
    }
}

TEST_F(MeshTest, DisjointPathsDoNotInterfere)
{
    Tick t_a = 0;
    Tick t_b = 0;
    mesh.send(0, 1, MsgType::Data, [&] { t_a = eq.now(); });
    mesh.send(8, 9, MsgType::Data, [&] { t_b = eq.now(); });
    eq.run();
    EXPECT_EQ(t_a, t_b);  // different links: identical timing
}

TEST_F(MeshTest, MessageAndFlitStats)
{
    mesh.send(0, 2, MsgType::Data, [] {});
    eq.run();
    EXPECT_EQ(stats.value("mesh", "messages"), 1u);
    // 5 flits over (2 links + 1 source hop) = 15 flit-hops.
    EXPECT_EQ(stats.value("mesh", "flit_hops"), 15u);
}

TEST_F(MeshTest, FlitCountsPerMessageType)
{
    EXPECT_EQ(msgFlits(MsgType::Ctrl), 1u);
    EXPECT_EQ(msgFlits(MsgType::GetS), 1u);
    EXPECT_EQ(msgFlits(MsgType::Data), 5u);
    EXPECT_EQ(msgFlits(MsgType::LogWrite), 6u);
    EXPECT_EQ(msgFlits(MsgType::LogAck), 1u);
}

} // namespace
} // namespace atomsim
