/**
 * @file
 * Unit tests for the on-chip mesh network.
 */

#include <gtest/gtest.h>

#include "net/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{
namespace
{

class MeshTest : public ::testing::Test
{
  protected:
    MeshTest() : mesh(eq, cfg, stats) {}

    EventQueue eq;
    SystemConfig cfg;  // 4x8 mesh
    StatSet stats;
    Mesh mesh{eq, cfg, stats};
};

TEST_F(MeshTest, Geometry)
{
    EXPECT_EQ(mesh.numNodes(), 32u);
    // XY distance: node 0 = (0,0), node 31 = (3,7).
    EXPECT_EQ(mesh.hops(0, 31), 10u);
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 7), 7u);
    EXPECT_EQ(mesh.hops(0, 24), 3u);
}

TEST_F(MeshTest, McNodesOnCorners)
{
    EXPECT_EQ(mesh.mcNode(0), 0u);    // (0,0)
    EXPECT_EQ(mesh.mcNode(1), 7u);    // (0,7)
    EXPECT_EQ(mesh.mcNode(2), 24u);   // (3,0)
    EXPECT_EQ(mesh.mcNode(3), 31u);   // (3,7)
}

TEST_F(MeshTest, DeliveryLatencyScalesWithHops)
{
    Tick t_near = 0;
    Tick t_far = 0;
    mesh.send(0, 1, MsgType::Ctrl, [&] { t_near = eq.now(); });
    eq.run();
    EventQueue eq2;
    Mesh mesh2(eq2, cfg, stats);
    mesh2.send(0, 31, MsgType::Ctrl, [&] { t_far = eq2.now(); });
    eq2.run();
    EXPECT_GT(t_far, t_near);
    // 1 source hop + 10 link hops at hopLatency=2 -> 22 cycles.
    EXPECT_EQ(t_far, 22u);
    EXPECT_EQ(t_near, 4u);
}

TEST_F(MeshTest, SameNodeStillPaysRouterTraversal)
{
    Tick t = 0;
    mesh.send(5, 5, MsgType::Ctrl, [&] { t = eq.now(); });
    eq.run();
    EXPECT_EQ(t, cfg.hopLatency);
}

TEST_F(MeshTest, DataMessagesPaySerialization)
{
    Tick t_ctrl = 0;
    Tick t_data = 0;
    mesh.send(0, 1, MsgType::Ctrl, [&] { t_ctrl = eq.now(); });
    eq.run();
    EventQueue eq2;
    Mesh mesh2(eq2, cfg, stats);
    mesh2.send(0, 1, MsgType::Data, [&] { t_data = eq2.now(); });
    eq2.run();
    // Data = 5 flits: 4 extra cycles behind the head flit.
    EXPECT_EQ(t_data, t_ctrl + 4);
}

TEST_F(MeshTest, ContentionQueuesOnSharedLink)
{
    std::vector<Tick> arrivals;
    for (int i = 0; i < 4; ++i) {
        mesh.send(0, 1, MsgType::Data,
                  [&] { arrivals.push_back(eq.now()); });
    }
    eq.run();
    ASSERT_EQ(arrivals.size(), 4u);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        // Each 5-flit packet occupies the link; arrivals serialize.
        EXPECT_GE(arrivals[i], arrivals[i - 1] + 4);
    }
}

TEST_F(MeshTest, DisjointPathsDoNotInterfere)
{
    Tick t_a = 0;
    Tick t_b = 0;
    mesh.send(0, 1, MsgType::Data, [&] { t_a = eq.now(); });
    mesh.send(8, 9, MsgType::Data, [&] { t_b = eq.now(); });
    eq.run();
    EXPECT_EQ(t_a, t_b);  // different links: identical timing
}

TEST_F(MeshTest, MessageAndFlitStats)
{
    mesh.send(0, 2, MsgType::Data, [] {});
    eq.run();
    EXPECT_EQ(stats.value("mesh", "messages"), 1u);
    // 5 flits over (2 links + 1 source hop) = 15 flit-hops.
    EXPECT_EQ(stats.value("mesh", "flit_hops"), 15u);
}

TEST_F(MeshTest, FlitCountsPerMessageType)
{
    EXPECT_EQ(msgFlits(MsgType::Ctrl), 1u);
    EXPECT_EQ(msgFlits(MsgType::GetS), 1u);
    EXPECT_EQ(msgFlits(MsgType::Data), 5u);
    EXPECT_EQ(msgFlits(MsgType::LogWrite), 6u);
    EXPECT_EQ(msgFlits(MsgType::LogAck), 1u);
}

TEST_F(MeshTest, MultiHopLatencyExact)
{
    // 0 -> 3: source hop + 3 east links at hopLatency=2.
    Tick t3 = 0;
    mesh.send(0, 3, MsgType::Ctrl, [&] { t3 = eq.now(); });
    eq.run();
    EXPECT_EQ(t3, 8u);

    // 0 -> 9 = (1,1): one east link, one south link, plus source hop.
    EventQueue eq2;
    Mesh mesh2(eq2, cfg, stats);
    Tick t9 = 0;
    mesh2.send(0, 9, MsgType::Ctrl, [&] { t9 = eq2.now(); });
    eq2.run();
    EXPECT_EQ(mesh2.hops(0, 9), 2u);
    EXPECT_EQ(t9, 6u);
}

TEST_F(MeshTest, PerLinkFifoOrdering)
{
    // Two messages sharing the final link (1 -> 2) deliver in send
    // order even though the second is a short control message.
    std::vector<int> order;
    mesh.send(0, 2, MsgType::Data, [&] { order.push_back(0); });
    mesh.send(0, 2, MsgType::Ctrl, [&] { order.push_back(1); });
    mesh.send(0, 2, MsgType::Data, [&] { order.push_back(2); });
    EXPECT_EQ(mesh.linkBetween(1, 2).queueDepth(), 3u);
    eq.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
}

TEST_F(MeshTest, EjectionPortSerializesSameNodeMessages)
{
    // Same-node messages traverse no link but serialize on the node's
    // ejection port, so a 1-flit control message sent after a 5-flit
    // data message arrives *after* it. Point-to-point FIFO regardless
    // of message size is a protocol invariant: the split-phase
    // coherence paths rely on a PutM never being overtaken by a later
    // request on the same src->dst pair.
    std::vector<int> order;
    Tick t_data = 0;
    Tick t_ctrl = 0;
    mesh.send(5, 5, MsgType::Data, [&] {
        order.push_back(0);
        t_data = eq.now();
    });
    mesh.send(5, 5, MsgType::Ctrl, [&] {
        order.push_back(1);
        t_ctrl = eq.now();
    });
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    // Data: hop latency + 5 flits; Ctrl: queued behind it.
    EXPECT_EQ(t_data, 2u + 5u - 1u);
    EXPECT_GT(t_ctrl, t_data);
}

TEST_F(MeshTest, TypedCompletionCarriesPayload)
{
    struct Recorder final : public MeshSink
    {
        void
        meshDeliver(Packet &pkt) override
        {
            type = pkt.type;
            core = pkt.core;
            addr = pkt.addr;
            arg = pkt.arg;
            flag = pkt.flag;
            byte0 = pkt.data[0];
            ++deliveries;
        }

        MsgType type = MsgType::Ctrl;
        CoreId core = 0;
        Addr addr = 0;
        std::uint32_t arg = 0;
        bool flag = false;
        std::uint8_t byte0 = 0;
        int deliveries = 0;
    };

    Recorder sink;
    Packet &p = mesh.make(MsgType::GetX);
    p.receiver = &sink;
    p.core = 3;
    p.addr = 0x12340;
    p.arg = 7;
    p.flag = true;
    p.data[0] = 0xab;
    mesh.send(0, 9, p);
    eq.run();
    EXPECT_EQ(sink.deliveries, 1);
    EXPECT_EQ(sink.type, MsgType::GetX);
    EXPECT_EQ(sink.core, 3u);
    EXPECT_EQ(sink.addr, 0x12340u);
    EXPECT_EQ(sink.arg, 7u);
    EXPECT_TRUE(sink.flag);
    EXPECT_EQ(sink.byte0, 0xab);
}

TEST_F(MeshTest, PacketPoolReusedAcrossMessages)
{
    for (int round = 0; round < 50; ++round) {
        mesh.send(0, 2, MsgType::Data, [] {});
        mesh.send(3, 1, MsgType::Ctrl, [] {});
        eq.run();
    }
    // Two messages in flight at peak; the pool never grows past it.
    EXPECT_LE(mesh.packetPoolAllocated(), 2u);
    EXPECT_EQ(mesh.packetPoolFree(), mesh.packetPoolAllocated());
}

TEST_F(MeshTest, BoundedDepthBackpressureStallsAndRecovers)
{
    // A same-node burst is enqueued at send time faster than the
    // ejection port delivers, so a bounded queue must park the excess
    // in the stall list and re-admit it as slots free -- without
    // losing or reordering anything. (Since the ejection port
    // serializes arrivals, re-admission preserves the original
    // pacing; the depth bound limits *occupancy*, which is what the
    // stall counter observes.)
    SystemConfig bounded = cfg;
    bounded.linkQueueDepth = 2;
    EventQueue beq;
    StatSet bstats;
    Mesh bmesh(beq, bounded, bstats);

    std::vector<Tick> arrivals;
    for (int i = 0; i < 6; ++i)
        bmesh.send(5, 5, MsgType::Ctrl,
                   [&] { arrivals.push_back(beq.now()); });

    // Only the bounded depth is queued; the rest stalled.
    EXPECT_EQ(bmesh.ejectionOf(5).queueDepth(), 2u);
    EXPECT_EQ(bmesh.ejectionOf(5).stalledDepth(), 4u);
    EXPECT_EQ(bstats.value("mesh", "link_stalls"), 4u);

    beq.run();
    // Every message still delivers, in strict FIFO order, and the
    // stall list fully drained.
    ASSERT_EQ(arrivals.size(), 6u);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GT(arrivals[i], arrivals[i - 1]);
    EXPECT_EQ(bmesh.ejectionOf(5).stalledDepth(), 0u);

    // An unconstrained mesh delivers the same burst with identical
    // pacing (port-serialized) and no stalls.
    std::vector<Tick> free_arrivals;
    EventQueue feq;
    StatSet fstats;
    Mesh fmesh(feq, cfg, fstats);
    for (int i = 0; i < 6; ++i)
        fmesh.send(5, 5, MsgType::Ctrl,
                   [&] { free_arrivals.push_back(feq.now()); });
    feq.run();
    ASSERT_EQ(free_arrivals.size(), 6u);
    EXPECT_EQ(arrivals.back(), free_arrivals.back());
    EXPECT_EQ(fstats.value("mesh", "link_stalls"), 0u);
}

} // namespace
} // namespace atomsim
