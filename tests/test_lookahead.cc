/**
 * @file
 * Lookahead-matrix tests: the distance-based conservative windows of
 * the sharded scheduler (harness/runner.cc, ShardEngine) are only
 * sound if every matrix entry truly lower-bounds the send-to-delivery
 * latency of every packet the corresponding domain pair can exchange.
 *
 * The oracle is the mesh itself: a route probe observes every routed
 * packet of a full quickstart run and checks
 *
 *     arrival - sendTick >= domainLookahead(srcDomain, dstDomain)
 *
 * for all of them. The matrix must also be *tight* somewhere (it is a
 * minimum, not just any bound -- an inflated matrix would grant
 * windows the mesh then violates), must agree with the pure
 * mesh-distance oracle hopLatency x (1 + hops) for node-faithful
 * pairs, and must cover the proxy-send case: an MC-domain callback
 * can emit a packet stamped with a *tile's* node as source
 * (cache/l2_cache.cc sendFlushAck), so MC rows toward cores take the
 * min over all tile nodes.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "harness/runner.hh"
#include "net/mesh.hh"
#include "sim/shard.hh"
#include "workloads/hash_workload.hh"

namespace atomsim
{
namespace
{

TEST(LookaheadMatrixTest, LowerBoundsEveryObservedLatency)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    cfg.design = DesignKind::AtomOpt;
    cfg.numShards = 1; // single worker: the probe may observe safely

    MicroParams params;
    params.entryBytes = 256;
    params.initialItems = 24;
    params.txnsPerCore = 6;

    HashWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    Mesh &mesh = runner.system().mesh();
    const ShardLayout &layout = runner.system().shardLayout();

    // The layout's node map must agree with the mesh's: the scheduler
    // grants windows against the matrix the mesh enforces, and both
    // derive it from this mapping.
    ASSERT_EQ(layout.domains(), runner.system().numDomains());
    for (std::uint32_t d = 0; d < layout.domains(); ++d)
        EXPECT_EQ(layout.nodeOfDomain(d), mesh.domainNode(d))
            << "domain " << d;

    // Matrix vs the mesh-distance oracle. Every entry is at least one
    // hop and at most the node-pair minimum latency; non-MC sources
    // are node-faithful, so their rows equal the oracle exactly.
    const std::uint32_t doms = layout.domains();
    const Tick hop = Tick(cfg.hopLatency);
    for (std::uint32_t s = 0; s < doms; ++s) {
        for (std::uint32_t d = 0; d < doms; ++d) {
            const Tick la = mesh.domainLookahead(s, d);
            const Tick oracle = mesh.minLatency(mesh.domainNode(s),
                                                mesh.domainNode(d));
            EXPECT_GE(la, hop) << s << " -> " << d;
            EXPECT_LE(la, oracle) << s << " -> " << d;
            if (s < layout.numCores + layout.numTiles) {
                EXPECT_EQ(la, oracle) << s << " -> " << d;
            }
        }
    }

    std::uint64_t observed = 0;
    std::uint64_t tight = 0;
    std::uint64_t violations = 0;
    mesh.shardSetRouteProbe([&](std::uint32_t s, std::uint32_t d,
                                Tick send, Tick arrival) {
        ++observed;
        const Tick la = mesh.domainLookahead(s, d);
        if (arrival < send + la) {
            ++violations;
            ADD_FAILURE() << "packet " << s << " -> " << d
                          << " sent at " << send << " arrived at "
                          << arrival << ", below lookahead " << la;
        }
        if (arrival == send + la)
            ++tight;
    });
    runner.setUp();
    runner.run();
    mesh.shardSetRouteProbe(nullptr);

    EXPECT_EQ(violations, 0u);
    EXPECT_GT(observed, 1000u) << "probe saw too little traffic to "
                                  "mean anything";
    // The matrix is a *minimum*: some packet must achieve it exactly
    // (uncongested single-flit sends do).
    EXPECT_GT(tight, 0u);
}

// Degenerate geometry: a 1x1 mesh collapses every domain onto node 0,
// so the whole matrix is the single-hop floor and the run still
// completes under the sharded scheduler.
TEST(LookaheadMatrixTest, SingleNodeMeshUsesHopFloor)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.l2Tiles = 1;
    cfg.numMemCtrls = 1;
    cfg.meshRows = 1;
    cfg.ausPerMc = 1;
    cfg.design = DesignKind::Atom;
    cfg.numShards = 1;

    MicroParams params;
    params.entryBytes = 256;
    params.initialItems = 8;
    params.txnsPerCore = 2;

    HashWorkload workload(params);
    Runner runner(cfg, workload, params.txnsPerCore);
    Mesh &mesh = runner.system().mesh();
    const ShardLayout &layout = runner.system().shardLayout();

    ASSERT_EQ(layout.numNodes(), 1u);
    const std::uint32_t doms = layout.domains();
    for (std::uint32_t s = 0; s < doms; ++s) {
        for (std::uint32_t d = 0; d < doms; ++d) {
            EXPECT_EQ(mesh.domainLookahead(s, d), Tick(cfg.hopLatency))
                << s << " -> " << d;
        }
    }

    runner.setUp();
    const RunResult result = runner.run();
    EXPECT_EQ(result.txns, 2u);
}

} // namespace
} // namespace atomsim
