/**
 * @file
 * Unit tests for the ATOM log manager: record format, bucket bit
 * vectors, LogM behaviors (LEC, locking, BASE vs posted acks,
 * truncation, overflow, source logging).
 */

#include <gtest/gtest.h>

#include "atom/bucket_table.hh"
#include "atom/log_record.hh"
#include "harness/system.hh"

namespace atomsim
{
namespace
{

TEST(LogRecordTest, HeaderRoundTrip)
{
    LogRecordHeader hdr;
    hdr.ausId = 17;
    hdr.count = 5;
    hdr.seq = 0xabcdef01u;
    for (std::uint32_t i = 0; i < 5; ++i)
        hdr.addrs[i] = 0x1000 + i * 64;

    const Line line = hdr.toLine();
    auto back = LogRecordHeader::fromLine(line);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->ausId, 17);
    EXPECT_EQ(back->count, 5);
    EXPECT_EQ(back->seq, 0xabcdef01u);
    for (std::uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(back->addrs[i], 0x1000u + i * 64);
}

TEST(LogRecordTest, RejectsGarbage)
{
    Line zeros{};
    EXPECT_FALSE(LogRecordHeader::fromLine(zeros).has_value());

    LogRecordHeader hdr;
    hdr.count = 0;  // invalid entry count
    Line line = hdr.toLine();
    EXPECT_FALSE(LogRecordHeader::fromLine(line).has_value());
    line = hdr.toLine();
    line[2] = 9;  // count > 7
    EXPECT_FALSE(LogRecordHeader::fromLine(line).has_value());
}

TEST(BucketBitVectorTest, SetTestClear)
{
    BucketBitVector vec(256);
    EXPECT_FALSE(vec.test(70));
    vec.set(70);
    vec.set(0);
    vec.set(255);
    EXPECT_TRUE(vec.test(70));
    EXPECT_EQ(vec.popcount(), 3u);
    EXPECT_EQ(vec.firstSet(), 0u);
    vec.clearBit(0);
    EXPECT_EQ(vec.firstSet(), 70u);
    vec.clearAll();
    EXPECT_EQ(vec.popcount(), 0u);
    EXPECT_FALSE(vec.firstSet().has_value());
}

TEST(BucketBitVectorTest, ForEachSetAscending)
{
    BucketBitVector vec(128);
    vec.set(3);
    vec.set(64);
    vec.set(127);
    std::vector<std::uint32_t> seen;
    vec.forEachSet([&](std::uint32_t b) { seen.push_back(b); });
    EXPECT_EQ(seen, (std::vector<std::uint32_t>{3, 64, 127}));
}

TEST(BucketTableTest, AllocateTruncateFreeList)
{
    BucketTable table(4, 16, 0);
    auto b0 = table.allocate(0);
    auto b1 = table.allocate(1);
    ASSERT_TRUE(b0 && b1);
    EXPECT_NE(*b0, *b1);
    EXPECT_FALSE(table.isFree(*b0));
    EXPECT_FALSE(table.isFree(*b1));

    EXPECT_EQ(table.truncate(0), 1u);
    EXPECT_TRUE(table.isFree(*b0));
    EXPECT_FALSE(table.isFree(*b1));
}

TEST(BucketTableTest, SharedPoolOverflowsOnlyWhenExhausted)
{
    BucketTable table(2, 4, 0);
    // AUS 0 hogs three buckets; AUS 1 still gets the fourth.
    ASSERT_TRUE(table.allocate(0));
    ASSERT_TRUE(table.allocate(0));
    ASSERT_TRUE(table.allocate(0));
    ASSERT_TRUE(table.allocate(1));
    EXPECT_FALSE(table.allocate(1).has_value());  // overflow
    table.truncate(0);
    EXPECT_TRUE(table.allocate(1).has_value());
}

TEST(BucketTableTest, MappedLimitRespectsOsGrant)
{
    BucketTable table(1, 8, 2);  // only 2 buckets mapped initially
    ASSERT_TRUE(table.allocate(0));
    ASSERT_TRUE(table.allocate(0));
    EXPECT_FALSE(table.allocate(0).has_value());
    table.extendMapped(2);
    EXPECT_TRUE(table.allocate(0).has_value());
    EXPECT_EQ(table.mappedBuckets(), 4u);
}

/** LogM tests through a small single-core ATOM system. */
class LogMTest : public ::testing::Test
{
  protected:
    static SystemConfig
    config(DesignKind design, bool lec = true)
    {
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.l2Tiles = 2;
        cfg.meshRows = 1;
        cfg.ausPerMc = 2;
        cfg.design = design;
        cfg.enableLec = lec;
        return cfg;
    }

    static Line
    pattern(std::uint8_t seed)
    {
        Line line;
        for (std::uint32_t i = 0; i < kLineBytes; ++i)
            line[i] = std::uint8_t(seed + i);
        return line;
    }
};

TEST_F(LogMTest, PostedEntryLocksUntilHeaderPersists)
{
    System sys(config(DesignKind::Atom), Addr(16) * 1024 * 1024);
    auto &eq = sys.eventQueue();
    LogM *logm = sys.logm(0);
    ASSERT_NE(logm, nullptr);

    sys.ausPool()->acquire(0, [&](std::uint32_t slot) {
        logm->beginUpdate(slot);
        bool acked = false;
        logm->postLogEntry(slot, 0x2000, pattern(1), true,
                           [&] { acked = true; });
        eq.run(eq.now() + 5);
        EXPECT_TRUE(acked);  // posted ack: immediate (match latency)
        EXPECT_TRUE(logm->lineLocked(0x2000));
    });
    eq.run();
    // LEC: one entry does not fill the record; the line stays locked
    // until something forces the header out. Force via the gate.
    EXPECT_TRUE(logm->lineLocked(0x2000));

    bool unlocked = false;
    EXPECT_FALSE(logm->tryAcquire(0x2000, [&] { unlocked = true; }));
    eq.run();
    EXPECT_TRUE(unlocked);          // forced seal persisted the header
    EXPECT_FALSE(logm->lineLocked(0x2000));
}

TEST_F(LogMTest, BaseAckWaitsForPersistence)
{
    System sys(config(DesignKind::Base), Addr(16) * 1024 * 1024);
    auto &eq = sys.eventQueue();
    LogM *logm = sys.logm(0);

    sys.ausPool()->acquire(0, [&](std::uint32_t slot) {
        logm->beginUpdate(slot);
        Tick acked_at = 0;
        logm->postLogEntry(slot, 0x2000, pattern(2), false,
                           [&] { acked_at = eq.now(); });
        eq.run();
        // BASE: ack after data + header device writes (2 x 360 min).
        EXPECT_GT(acked_at, 2u * 360u);
        // Once acked, the entry is durable: no lock remains.
        EXPECT_FALSE(logm->lineLocked(0x2000));
    });
    eq.run();
}

TEST_F(LogMTest, LecFillsSevenEntryRecords)
{
    System sys(config(DesignKind::Atom), Addr(16) * 1024 * 1024);
    auto &eq = sys.eventQueue();
    LogM *logm = sys.logm(0);

    sys.ausPool()->acquire(0, [&](std::uint32_t slot) {
        logm->beginUpdate(slot);
        for (int i = 0; i < 7; ++i) {
            logm->postLogEntry(slot, 0x2000 + Addr(i) * 64,
                               pattern(std::uint8_t(i)), true, {});
        }
    });
    eq.run();
    // 7 entries = exactly one record; 8 NVM writes (7 data + 1 hdr).
    EXPECT_EQ(sys.stats().value("logm0", "records"), 1u);
    EXPECT_EQ(sys.stats().value("logm0", "entries"), 7u);
    EXPECT_EQ(sys.stats().value("mc0", "log_writes"), 8u);
    // Record full -> header persisted -> all lines unlocked.
    for (int i = 0; i < 7; ++i)
        EXPECT_FALSE(logm->lineLocked(0x2000 + Addr(i) * 64));
}

TEST_F(LogMTest, LecOffCostsTwoWritesPerEntry)
{
    System sys(config(DesignKind::Atom, /*lec=*/false),
               Addr(16) * 1024 * 1024);
    auto &eq = sys.eventQueue();
    LogM *logm = sys.logm(0);

    sys.ausPool()->acquire(0, [&](std::uint32_t slot) {
        logm->beginUpdate(slot);
        for (int i = 0; i < 7; ++i) {
            logm->postLogEntry(slot, 0x2000 + Addr(i) * 64,
                               pattern(std::uint8_t(i)), true, {});
        }
    });
    eq.run();
    EXPECT_EQ(sys.stats().value("logm0", "records"), 7u);
    EXPECT_EQ(sys.stats().value("mc0", "log_writes"), 14u);
}

TEST_F(LogMTest, TruncateFreesBucketsAndUnlocks)
{
    System sys(config(DesignKind::Atom), Addr(16) * 1024 * 1024);
    auto &eq = sys.eventQueue();
    LogM *logm = sys.logm(0);

    std::uint32_t slot_used = 0;
    sys.ausPool()->acquire(0, [&](std::uint32_t slot) {
        slot_used = slot;
        logm->beginUpdate(slot);
        for (int i = 0; i < 3; ++i) {
            logm->postLogEntry(slot, 0x2000 + Addr(i) * 64,
                               pattern(std::uint8_t(i)), true, {});
        }
    });
    eq.run();
    EXPECT_EQ(logm->buckets().vectorOf(slot_used).popcount(), 1u);

    bool truncated = false;
    logm->truncate(slot_used, [&] { truncated = true; });
    eq.run();
    EXPECT_TRUE(truncated);
    EXPECT_EQ(logm->buckets().vectorOf(slot_used).popcount(), 0u);
    EXPECT_EQ(sys.stats().value("logm0", "truncations"), 1u);
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(logm->lineLocked(0x2000 + Addr(i) * 64));
    EXPECT_FALSE(logm->aus(slot_used).active);
}

TEST_F(LogMTest, LogOverflowInterruptsOsAndProceeds)
{
    SystemConfig cfg = config(DesignKind::Atom);
    cfg.osInitialBucketsPerMc = 1;  // force overflow on bucket #2
    System sys(cfg, Addr(16) * 1024 * 1024);
    auto &eq = sys.eventQueue();
    LogM *logm = sys.logm(0);

    sys.ausPool()->acquire(0, [&](std::uint32_t slot) {
        logm->beginUpdate(slot);
        // A bucket holds 8 records = 56 entries with LEC; push past it.
        for (int i = 0; i < 60; ++i) {
            logm->postLogEntry(slot, 0x2000 + Addr(i) * 64,
                               pattern(std::uint8_t(i)), true, {});
        }
    });
    eq.run();
    EXPECT_GE(sys.stats().value("os", "log_overflow_interrupts"), 1u);
    EXPECT_EQ(sys.stats().value("logm0", "entries"), 60u);
}

TEST_F(LogMTest, SourceLogFillRequiresActiveUpdate)
{
    System sys(config(DesignKind::AtomOpt), Addr(16) * 1024 * 1024);
    LogM *logm = sys.logm(0);
    // Core 0 has no active atomic update: no source logging.
    EXPECT_FALSE(logm->sourceLogFill(0, 0x2000, Line{}));

    sys.ausPool()->acquire(0, [&](std::uint32_t slot) {
        logm->beginUpdate(slot);
        EXPECT_TRUE(logm->sourceLogFill(0, 0x2000, Line{}));
    });
    sys.eventQueue().run();
    EXPECT_EQ(sys.stats().value("logm0", "source_logged"), 1u);
}

TEST_F(LogMTest, CriticalStateSmall)
{
    System sys(config(DesignKind::Atom), Addr(16) * 1024 * 1024);
    // The ADR-flushable state must stay tiny (the paper argues 128 B;
    // ours adds recovery-exact registers but must fit one page).
    EXPECT_LE(sys.logm(0)->criticalStateBytes(), kPageBytes);
}

} // namespace
} // namespace atomsim
