/**
 * @file
 * Crash-campaign cell machinery: ID round-trips, single-cell runs,
 * pinned-tick replay, and the shrinker driven by a synthetic failure
 * predicate with a known minimal cell.
 */

#include <gtest/gtest.h>

#include "harness/crash_cell.hh"

namespace atomsim
{
namespace
{

TEST(CrashCellTest, IdRoundTrips)
{
    CrashCell cell;
    cell.workload = "rbtree";
    cell.design = DesignKind::AtomOpt;
    cell.fraction = 0.25;
    cell.cores = 8;
    cell.l2TileKb = 16;
    cell.l2Assoc = 4;
    cell.hybrid = true;
    cell.entryBytes = 4096;
    cell.initialItems = 4;
    cell.txnsPerCore = 6;
    cell.seed = 12345;

    EXPECT_EQ(cell.id(),
              "rbtree:atomopt:f25:c8:l16x4:e4096:i4:t6:h1:s12345");
    const auto parsed = CrashCell::parse(cell.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->id(), cell.id());
    EXPECT_EQ(parsed->workload, "rbtree");
    EXPECT_EQ(parsed->design, DesignKind::AtomOpt);
    EXPECT_DOUBLE_EQ(parsed->fraction, 0.25);
    EXPECT_EQ(parsed->cores, 8u);
    EXPECT_EQ(parsed->l2TileKb, 16u);
    EXPECT_EQ(parsed->l2Assoc, 4u);
    EXPECT_TRUE(parsed->hybrid);
    EXPECT_EQ(parsed->entryBytes, 4096u);
    EXPECT_EQ(parsed->initialItems, 4u);
    EXPECT_EQ(parsed->txnsPerCore, 6u);
    EXPECT_EQ(parsed->seed, 12345u);

    // Pinned crash tick survives the round trip too.
    cell.crashTick = 34357;
    EXPECT_EQ(cell.id(),
              "rbtree:atomopt:f25:c8:l16x4:e4096:i4:t6:h1:s12345:k34357");
    const auto pinned = CrashCell::parse(cell.id());
    ASSERT_TRUE(pinned.has_value());
    EXPECT_EQ(pinned->crashTick, Tick(34357));
    EXPECT_EQ(pinned->id(), cell.id());
}

TEST(CrashCellTest, ParseRejectsMalformedIds)
{
    EXPECT_FALSE(CrashCell::parse("").has_value());
    EXPECT_FALSE(CrashCell::parse("hash").has_value());
    // Unknown workload / design.
    EXPECT_FALSE(
        CrashCell::parse("nope:atom:f50:c4:l8x2:e512:i32:t10:h0:s62")
            .has_value());
    EXPECT_FALSE(
        CrashCell::parse("hash:ATOM:f50:c4:l8x2:e512:i32:t10:h0:s62")
            .has_value());
    // Out-of-range / malformed fields.
    EXPECT_FALSE(
        CrashCell::parse("hash:atom:f150:c4:l8x2:e512:i32:t10:h0:s62")
            .has_value());
    EXPECT_FALSE(
        CrashCell::parse("hash:atom:f50:c0:l8x2:e512:i32:t10:h0:s62")
            .has_value());
    EXPECT_FALSE(
        CrashCell::parse("hash:atom:f50:c4:l8z2:e512:i32:t10:h0:s62")
            .has_value());
    EXPECT_FALSE(
        CrashCell::parse("hash:atom:f50:c4:l8x2:e513:i32:t10:h0:s62")
            .has_value());
    EXPECT_FALSE(
        CrashCell::parse("hash:atom:f50:c4:l8x2:e512:i32:t10:h4:s62")
            .has_value());
    // Trailing garbage.
    EXPECT_FALSE(
        CrashCell::parse("hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:x1")
            .has_value());
    EXPECT_FALSE(
        CrashCell::parse(
            "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:k1:k2")
            .has_value());
}

TEST(CrashCellTest, FaultAxesRoundTrip)
{
    CrashCell cell;
    cell.workload = "hash";
    cell.design = DesignKind::Atom;
    cell.tornWords = 1;
    cell.mediaRate = 200;
    cell.recoverPct = 50;

    // Fault tokens append in canonical w < m < r order, before :k.
    EXPECT_EQ(cell.id(),
              "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:w1:m200:r50");
    auto parsed = CrashCell::parse(cell.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tornWords, 1u);
    EXPECT_EQ(parsed->mediaRate, 200u);
    EXPECT_EQ(parsed->recoverPct, 50u);
    EXPECT_EQ(parsed->id(), cell.id());

    // Each axis round-trips alone, and alongside a pinned tick.
    cell.tornWords = 0;
    cell.mediaRate = 0;
    cell.crashTick = 1234;
    EXPECT_EQ(cell.id(),
              "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:r50:k1234");
    parsed = CrashCell::parse(cell.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tornWords, 0u);
    EXPECT_EQ(parsed->mediaRate, 0u);
    EXPECT_EQ(parsed->recoverPct, 50u);
    EXPECT_EQ(parsed->crashTick, Tick(1234));
    EXPECT_EQ(parsed->id(), cell.id());

    // All-defaults cells keep the pre-fault-model canonical form:
    // no w/m/r tokens at all.
    CrashCell plain;
    EXPECT_EQ(plain.id(), "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62");
    parsed = CrashCell::parse(plain.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->id(), plain.id());

    // The extended h axis (appDirect placements) round-trips.
    for (std::uint32_t h : {2u, 3u}) {
        CrashCell hy;
        hy.hybrid = h;
        const auto back = CrashCell::parse(hy.id());
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->hybrid, h);
        EXPECT_EQ(back->id(), hy.id());
    }
}

TEST(CrashCellTest, MemoryShapeAxesRoundTrip)
{
    // a/n tokens sit between :s and the fault axes, omitted at the
    // campaign default of 4.
    CrashCell cell;
    cell.ausPerMc = 8;
    cell.numMemCtrls = 2;
    EXPECT_EQ(cell.id(), "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:a8:n2");
    auto parsed = CrashCell::parse(cell.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->ausPerMc, 8u);
    EXPECT_EQ(parsed->numMemCtrls, 2u);
    EXPECT_EQ(parsed->id(), cell.id());
    EXPECT_EQ(parsed->config().ausPerMc, 8u);
    EXPECT_EQ(parsed->config().numMemCtrls, 2u);

    // Each axis alone, and stacked with fault axes + a pinned tick.
    cell.numMemCtrls = 4;
    EXPECT_EQ(cell.id(), "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:a8");
    parsed = CrashCell::parse(cell.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->ausPerMc, 8u);
    EXPECT_EQ(parsed->numMemCtrls, 4u);
    EXPECT_EQ(parsed->id(), cell.id());

    cell.ausPerMc = 4;
    cell.numMemCtrls = 8;
    cell.tornWords = 1;
    cell.crashTick = 777;
    EXPECT_EQ(cell.id(),
              "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:n8:w1:k777");
    parsed = CrashCell::parse(cell.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->numMemCtrls, 8u);
    EXPECT_EQ(parsed->tornWords, 1u);
    EXPECT_EQ(parsed->crashTick, Tick(777));
    EXPECT_EQ(parsed->id(), cell.id());

    // Default-shape cells keep the historical canonical form.
    CrashCell plain;
    EXPECT_EQ(plain.id(), "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62");
    EXPECT_EQ(plain.config().ausPerMc, 4u);
    EXPECT_EQ(plain.config().numMemCtrls, 4u);
}

TEST(CrashCellTest, ParseRejectsMalformedMemoryShapeAxes)
{
    const std::string base = "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62";
    // Default-valued tokens never round-trip (id() omits them), and
    // zero is invalid outright.
    EXPECT_FALSE(CrashCell::parse(base + ":a0").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":a4").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":n0").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":n4").has_value());
    // Controller counts must be a power of two (address interleave).
    EXPECT_FALSE(CrashCell::parse(base + ":n3").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":n6").has_value());
    // Non-canonical order and duplicates.
    EXPECT_FALSE(CrashCell::parse(base + ":n2:a8").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":w1:a8").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":a8:a8").has_value());
    // Valid combinations still pass.
    EXPECT_TRUE(CrashCell::parse(base + ":a1").has_value());
    EXPECT_TRUE(CrashCell::parse(base + ":n2").has_value());
    EXPECT_TRUE(CrashCell::parse(base + ":a2:n8:m200:r50").has_value());
}

// The TPC-C macro workload is a campaign citizen: its cells run end
// to end and recover consistently, off-default memory shapes
// included.
TEST(CrashCellTest, TpccCellRunsEndToEnd)
{
    CrashCell cell;
    cell.workload = "tpcc";
    cell.design = DesignKind::Atom;
    cell.cores = 2;
    cell.initialItems = 16;  // -> 4 customers/district, 64 items
    cell.txnsPerCore = 3;
    cell.ausPerMc = 2;
    cell.numMemCtrls = 2;
    EXPECT_EQ(cell.id(),
              "tpcc:atom:f50:c2:l8x2:e512:i16:t3:h0:s62:a2:n2");
    ASSERT_TRUE(CrashCell::parse(cell.id()).has_value());
    ASSERT_NE(cell.makeWorkload(), nullptr);

    const CellOutcome out = runCrashCell(cell);
    EXPECT_TRUE(out.consistent) << out.fault;
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_GT(out.crashTick, Tick(0));
}

// Pinned from the campaign: a 4 KB L2 eviction storm reorders the
// cores' pre-region loads enough that commit order diverges from
// fetch order. TPC-C's store payloads are computed functionally at
// fetch, so a crash that rolls back a fetched-earlier, committed-later
// transaction used to leave durable B+-tree nodes built on the
// rolled-back update ("separators not strictly increasing"). The
// whole-transaction RegionSerializer ticket (acquired before fetch,
// released at completion) keeps the two orders identical; this cell
// tears again if the ticket shrinks back to the Atomic_Begin..End
// window.
TEST(CrashCellTest, TpccEvictionStormCommitOrderMatchesFetchOrder)
{
    const auto cell =
        CrashCell::parse("tpcc:atom:f25:c4:l4x2:e512:i48:t12:h0:s63");
    ASSERT_TRUE(cell.has_value());
    const CellOutcome out = runCrashCell(*cell);
    EXPECT_TRUE(out.consistent) << out.fault;
    EXPECT_TRUE(out.report.criticalStateFound);
}

TEST(CrashCellTest, ParseRejectsMalformedFaultAxes)
{
    const std::string base = "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62";
    // Zero-valued fault tokens never round-trip (id() omits them).
    EXPECT_FALSE(CrashCell::parse(base + ":w0").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":m0").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":r0").has_value());
    // Out of range.
    EXPECT_FALSE(CrashCell::parse(base + ":w2").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":m65537").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":r101").has_value());
    // Non-canonical order and duplicates.
    EXPECT_FALSE(CrashCell::parse(base + ":m200:w1").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":r50:w1").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":w1:w1").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":k10:w1").has_value());
    // REDO has no torn-write detector in its frame stream; torn
    // cells are undo-design-only.
    EXPECT_FALSE(
        CrashCell::parse("hash:redo:f50:c4:l8x2:e512:i32:t10:h0:s62:w1")
            .has_value());
    // ... but the other fault axes are fine for REDO.
    EXPECT_TRUE(
        CrashCell::parse(
            "hash:redo:f50:c4:l8x2:e512:i32:t10:h0:s62:m200:r50")
            .has_value());
}

TEST(CrashCellTest, FlashTierAxesRoundTrip)
{
    // d/x tokens sit after the fault axes, before :k, omitted at the
    // tier-off default so historical IDs stay canonical.
    CrashCell cell;
    cell.durability = 2;
    EXPECT_EQ(cell.id(), "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:d2");
    auto parsed = CrashCell::parse(cell.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->durability, 2u);
    EXPECT_EQ(parsed->destageCrash, 0u);
    EXPECT_EQ(parsed->id(), cell.id());

    // The mid-destage crash axis rides with a policy, and both sort
    // before a pinned tick.
    cell.durability = 3;
    cell.destageCrash = 1;
    cell.crashTick = 777;
    EXPECT_EQ(cell.id(),
              "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62:d3:x1:k777");
    parsed = CrashCell::parse(cell.id());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->durability, 3u);
    EXPECT_EQ(parsed->destageCrash, 1u);
    EXPECT_EQ(parsed->crashTick, Tick(777));
    EXPECT_EQ(parsed->id(), cell.id());

    // A d cell's config enables the tier with the campaign's short
    // flash latencies and maps each policy value.
    for (std::uint32_t d : {1u, 2u, 3u}) {
        CrashCell dc;
        dc.durability = d;
        const SystemConfig cfg = dc.config();
        EXPECT_TRUE(cfg.ssdTier);
        EXPECT_EQ(cfg.durabilityPolicy,
                  d == 1   ? DurabilityPolicy::Strict
                  : d == 2 ? DurabilityPolicy::Balanced
                           : DurabilityPolicy::Eventual);
    }
    EXPECT_FALSE(CrashCell{}.config().ssdTier);
}

TEST(CrashCellTest, ParseRejectsMalformedFlashTierAxes)
{
    const std::string base = "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62";
    // Zero-valued tokens never round-trip; policies stop at eventual.
    EXPECT_FALSE(CrashCell::parse(base + ":d0").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":d4").has_value());
    // The destage-crash axis needs the tier on, and is boolean.
    EXPECT_FALSE(CrashCell::parse(base + ":x1").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":d2:x2").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":d2:x0").has_value());
    // Non-canonical order and duplicates.
    EXPECT_FALSE(CrashCell::parse(base + ":x1:d2").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":d2:d2").has_value());
    EXPECT_FALSE(CrashCell::parse(base + ":k10:d2").has_value());
    // The destage triggers are LogM truncation hooks, so the x axis is
    // undo-design-only; a plain d cell is fine for REDO.
    EXPECT_FALSE(
        CrashCell::parse(
            "hash:redo:f50:c4:l8x2:e512:i32:t10:h0:s62:d2:x1")
            .has_value());
    EXPECT_TRUE(
        CrashCell::parse("hash:redo:f50:c4:l8x2:e512:i32:t10:h0:s62:d2")
            .has_value());
}

TEST(CrashCellTest, DestageCrashCellRunsEndToEnd)
{
    CrashCell cell;
    cell.workload = "hash";
    cell.design = DesignKind::Atom;
    cell.cores = 2;
    cell.initialItems = 8;
    cell.txnsPerCore = 4;
    cell.seed = 7;
    cell.durability = 2;
    cell.destageCrash = 1;

    const CellOutcome out = runCrashCell(cell);
    EXPECT_TRUE(out.consistent) << out.fault;
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_GT(out.crashTick, Tick(0));
}

TEST(CrashCellTest, RunsOneCellEndToEnd)
{
    CrashCell cell;
    cell.workload = "queue";
    cell.design = DesignKind::Atom;
    cell.fraction = 0.5;
    cell.cores = 2;
    cell.initialItems = 8;
    cell.txnsPerCore = 4;
    cell.seed = 9;

    const CellOutcome out = runCrashCell(cell);
    EXPECT_TRUE(out.consistent) << out.fault;
    EXPECT_TRUE(out.report.criticalStateFound);
    EXPECT_GT(out.crashTick, Tick(0));
}

TEST(CrashCellTest, PinnedTickReplaysTheFractionalRun)
{
    CrashCell cell;
    cell.workload = "hash";
    cell.design = DesignKind::Atom;
    cell.cores = 2;
    cell.initialItems = 8;
    cell.txnsPerCore = 4;
    cell.seed = 5;

    const CellOutcome byFraction = runCrashCell(cell);
    cell.crashTick = byFraction.crashTick;
    const CellOutcome byTick = runCrashCell(cell);

    EXPECT_EQ(byTick.crashTick, byFraction.crashTick);
    EXPECT_EQ(byTick.consistent, byFraction.consistent);
    EXPECT_EQ(byTick.report.incompleteUpdates,
              byFraction.report.incompleteUpdates);
    EXPECT_EQ(byTick.report.linesRestored,
              byFraction.report.linesRestored);
}

// The shrinker is parameterized over the failure predicate, so a
// synthetic bug with a known minimal cell pins its behavior exactly:
// "fails whenever the crash tick is >= 1000, at least 2 cores and at
// least 2 transactions per core" has the unique greedy minimum
// {tick=1000, cores=2, txns=2, everything else floored}.
TEST(CrashCellShrinkTest, FindsTheKnownMinimalCell)
{
    const CellPredicate fails = [](const CrashCell &cell) {
        const Tick tick = cell.crashTick == 0 ? 50000 : cell.crashTick;
        return tick >= 1000 && cell.cores >= 2 && cell.txnsPerCore >= 2;
    };

    CrashCell failing;
    failing.cores = 8;
    failing.l2TileKb = 16;
    failing.initialItems = 32;
    failing.txnsPerCore = 12;
    failing.entryBytes = 512;
    ASSERT_TRUE(fails(failing));

    std::string log;
    const CrashCell minimal = shrinkCell(failing, 50000, fails, &log);

    EXPECT_EQ(minimal.crashTick, Tick(1000)) << log;
    EXPECT_EQ(minimal.cores, 2u) << log;
    EXPECT_EQ(minimal.txnsPerCore, 2u) << log;
    // Axes the predicate ignores shrink to their floors.
    EXPECT_EQ(minimal.l2TileKb, 1u) << log;
    EXPECT_EQ(minimal.initialItems, 1u) << log;
    EXPECT_EQ(minimal.entryBytes, 64u) << log;
    // Whatever comes out must itself reproduce.
    EXPECT_TRUE(fails(minimal)) << log;
}

// A predicate that couples axes (only an exact shape fails) must
// never tempt the shrinker into a non-reproducing "minimum": every
// accepted candidate satisfies the predicate by construction.
TEST(CrashCellShrinkTest, NeverReturnsANonReproducingCell)
{
    const CellPredicate fails = [](const CrashCell &cell) {
        const Tick tick = cell.crashTick == 0 ? 7777 : cell.crashTick;
        // Shrinking cores below 4 makes the bug vanish.
        return tick >= 500 && cell.cores == 4;
    };

    CrashCell failing;  // defaults: cores=4, txns=10, items=32
    ASSERT_TRUE(fails(failing));

    const CrashCell minimal = shrinkCell(failing, 7777, fails, nullptr);
    EXPECT_TRUE(fails(minimal));
    EXPECT_EQ(minimal.cores, 4u);
    EXPECT_EQ(minimal.crashTick, Tick(500));
}

// regressionBody output must parse back to the same cell (the
// round-trip a maintainer does when pasting a campaign report).
TEST(CrashCellTest, RegressionBodyEmbedsAReplayableId)
{
    CrashCell cell;
    cell.workload = "sps";
    cell.design = DesignKind::Base;
    cell.crashTick = 4242;
    const std::string body = regressionBody(cell, "torn payload: ...");

    EXPECT_NE(body.find("TEST(CampaignRegressionTest, sps_base_s62)"),
              std::string::npos);
    EXPECT_NE(body.find(cell.id()), std::string::npos);
    EXPECT_NE(body.find("torn payload"), std::string::npos);

    const std::size_t quote = body.find("parse(\"");
    ASSERT_NE(quote, std::string::npos);
    const std::size_t start = quote + 7;
    const std::size_t end = body.find('"', start);
    ASSERT_NE(end, std::string::npos);
    const auto parsed = CrashCell::parse(body.substr(start, end - start));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->id(), cell.id());
}

} // namespace
} // namespace atomsim
