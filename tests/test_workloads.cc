/**
 * @file
 * Functional tests for the workload data structures: correctness of
 * each persistent structure against reference behavior, recorder
 * mechanics, heap behavior, and the B+-tree property sweep.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workloads/btree_workload.hh"
#include "workloads/hash_workload.hh"
#include "workloads/heap.hh"
#include "workloads/kv_workload.hh"
#include "workloads/queue_workload.hh"
#include "workloads/rbtree_workload.hh"
#include "workloads/sdg_workload.hh"
#include "workloads/sps_workload.hh"
#include "workloads/tpcc/bplus_tree.hh"
#include "workloads/tpcc/tpcc_workload.hh"
#include "workloads/workload.hh"

namespace atomsim
{
namespace
{

TEST(RecorderTest, SplitsAccessesAtLineAndWordBoundaries)
{
    DataImage img;
    Transaction txn;
    RecordingAccessor rec(img, txn);

    std::uint8_t buf[32] = {};
    rec.storeBytes(kLineBytes - 8, sizeof(buf), buf);  // crosses a line
    // 32 bytes in <=8-byte chunks: 4 ops, none crossing a line.
    ASSERT_EQ(txn.ops.size(), 4u);
    for (const auto &op : txn.ops) {
        EXPECT_EQ(op.kind, OpKind::Store);
        EXPECT_LE(op.size, 8u);
        EXPECT_EQ(lineAlign(op.addr), lineAlign(op.addr + op.size - 1));
    }
}

TEST(RecorderTest, TracksModifiedLinesOnlyInsideAtomic)
{
    DataImage img;
    Transaction txn;
    RecordingAccessor rec(img, txn);

    rec.store64(0x100, 1);  // outside: not tracked
    rec.atomicBegin();
    rec.store64(0x200, 2);
    rec.store64(0x208, 3);   // same line: tracked once
    rec.store64(0x1000, 4);
    rec.atomicEnd();
    rec.store64(0x300, 5);  // outside again

    EXPECT_EQ(txn.modifiedLines,
              (std::vector<Addr>{0x200, 0x1000}));
    EXPECT_EQ(img.load64(0x208), 3u);  // functional effect applied
}

TEST(RecorderTest, LoadsReturnFunctionalValues)
{
    DataImage img;
    img.store64(0x500, 77);
    Transaction txn;
    RecordingAccessor rec(img, txn);
    EXPECT_EQ(rec.load64(0x500), 77u);
    ASSERT_EQ(txn.ops.size(), 1u);
    EXPECT_EQ(txn.ops[0].kind, OpKind::Load);
}

TEST(HeapTest, AlignmentAndDisjointArenas)
{
    PersistentHeap heap(kPageBytes, Addr(64) * 1024 * 1024, 2);
    const Addr a = heap.alloc(0, 100);          // >= line: line-aligned
    const Addr b = heap.alloc(0, 8);
    const Addr c = heap.alloc(1, 100);
    EXPECT_EQ(a % kLineBytes, 0u);
    EXPECT_NE(a, c);
    EXPECT_NE(a, b);
    // Arenas are chunked: different cores live in different chunks.
    EXPECT_NE(a >> 18, c >> 18);
}

TEST(HeapTest, FreeListReusesBlocks)
{
    PersistentHeap heap(kPageBytes, Addr(64) * 1024 * 1024, 1);
    const Addr a = heap.alloc(0, 256);
    heap.free(0, a, 256);
    const Addr b = heap.alloc(0, 256);
    EXPECT_EQ(a, b);
}

/** Every workload must pass its own consistency check after a purely
 * functional run, and report inconsistency when state is corrupted. */
class WorkloadFunctionalTest
    : public ::testing::TestWithParam<const char *>
{
  protected:
    static std::unique_ptr<Workload>
    make(const std::string &name, const MicroParams &params)
    {
        if (name == "hash")
            return std::make_unique<HashWorkload>(params);
        if (name == "queue")
            return std::make_unique<QueueWorkload>(params);
        if (name == "rbtree")
            return std::make_unique<RbTreeWorkload>(params);
        if (name == "btree")
            return std::make_unique<BTreeWorkload>(params);
        if (name == "sdg")
            return std::make_unique<SdgWorkload>(params);
        if (name == "sps")
            return std::make_unique<SpsWorkload>(params);
        return nullptr;
    }
};

TEST_P(WorkloadFunctionalTest, ManyTransactionsStayConsistent)
{
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 32;
    auto workload = make(GetParam(), params);
    ASSERT_NE(workload, nullptr);

    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(256) * 1024 * 1024, 2);
    workload->init(mem, heap, 2);
    EXPECT_EQ(workload->checkConsistency(mem, 2), "");

    Random rng(7);
    for (int i = 0; i < 200; ++i) {
        Transaction txn;
        RecordingAccessor rec(img, txn);
        workload->runTransaction(CoreId(i % 2), rec, rng);
        EXPECT_FALSE(txn.ops.empty());
    }
    EXPECT_EQ(workload->checkConsistency(mem, 2), "");
}

TEST_P(WorkloadFunctionalTest, LargeEntriesWork)
{
    MicroParams params = MicroParams::large();
    params.initialItems = 8;
    auto workload = make(GetParam(), params);
    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(256) * 1024 * 1024, 1);
    workload->init(mem, heap, 1);

    Random rng(11);
    for (int i = 0; i < 30; ++i) {
        Transaction txn;
        RecordingAccessor rec(img, txn);
        workload->runTransaction(0, rec, rng);
    }
    EXPECT_EQ(workload->checkConsistency(mem, 1), "");
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadFunctionalTest,
                         ::testing::Values("hash", "queue", "rbtree",
                                           "btree", "sdg", "sps"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(ConsistencyCheckerTest, HashDetectsTornPayload)
{
    MicroParams params;
    params.initialItems = 4;
    HashWorkload workload(params);
    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(64) * 1024 * 1024, 1);
    workload.init(mem, heap, 1);
    EXPECT_EQ(workload.checkConsistency(mem, 1), "");

    // Corrupt one payload word somewhere in the heap: the checker must
    // notice. Find a node by scanning the first bucket with a head.
    bool corrupted = false;
    for (Addr probe = kPageBytes; probe < heap.highWater() && !corrupted;
         probe += 8) {
        const std::uint64_t v = img.load64(probe);
        // Payload words look like key*GOLDEN + i; flip one arbitrary
        // non-zero word inside the payload area.
        if (v != 0 && probe % kLineBytes == 8) {
            img.store64(probe, v ^ 0xdead);
            corrupted = true;
        }
    }
    ASSERT_TRUE(corrupted);
    EXPECT_NE(workload.checkConsistency(mem, 1), "");
}

TEST(ConsistencyCheckerTest, SpsDetectsHalfSwap)
{
    MicroParams params;
    params.initialItems = 8;
    SpsWorkload workload(params);
    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(64) * 1024 * 1024, 1);
    workload.init(mem, heap, 1);

    // Duplicate entry 0 over entry 1: a classic torn swap.
    std::vector<std::uint8_t> entry(params.entryBytes);
    const Addr base = kPageBytes;  // first allocation = the array
    img.read(base, entry.size(), entry.data());
    img.write(base + params.entryBytes, entry.size(), entry.data());
    EXPECT_NE(workload.checkConsistency(mem, 1), "");
}

TEST(BPlusTreeTest, RandomOpsMatchStdMap)
{
    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(256) * 1024 * 1024, 1);
    BPlusTree tree(BPlusTree::create(mem, heap, 0), heap, 0);

    std::map<std::uint64_t, std::uint64_t> ref;
    Random rng(1234);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = rng.below(600);
        const int op = int(rng.below(3));
        if (op == 0) {
            const std::uint64_t val = rng.next();
            tree.insert(mem, key, val);
            ref[key] = val;
        } else if (op == 1) {
            EXPECT_EQ(tree.remove(mem, key), ref.erase(key) > 0);
        } else {
            const auto got = tree.search(mem, key);
            const auto it = ref.find(key);
            if (it == ref.end()) {
                EXPECT_FALSE(got.has_value());
            } else {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, it->second);
            }
        }
        if (i % 500 == 0) {
            ASSERT_EQ(tree.checkStructure(mem), "");
        }
    }
    EXPECT_EQ(tree.checkStructure(mem), "");
    EXPECT_EQ(tree.count(mem), ref.size());
}

TEST(BPlusTreeTest, SequentialInsertSplitsDeeply)
{
    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(256) * 1024 * 1024, 1);
    BPlusTree tree(BPlusTree::create(mem, heap, 0), heap, 0);
    for (std::uint64_t k = 1; k <= 5000; ++k)
        tree.insert(mem, k, k * 10);
    EXPECT_EQ(tree.checkStructure(mem), "");
    EXPECT_EQ(tree.count(mem), 5000u);
    for (std::uint64_t k : {1ull, 2500ull, 5000ull})
        EXPECT_EQ(tree.search(mem, k), k * 10);
    EXPECT_FALSE(tree.search(mem, 5001).has_value());
}

TEST(BPlusTreeTest, OverwriteKeepsSingleKey)
{
    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(64) * 1024 * 1024, 1);
    BPlusTree tree(BPlusTree::create(mem, heap, 0), heap, 0);
    tree.insert(mem, 5, 1);
    tree.insert(mem, 5, 2);
    EXPECT_EQ(tree.count(mem), 1u);
    EXPECT_EQ(tree.search(mem, 5), 2u);
}

TEST(TpccTest, NewOrderMaintainsInvariants)
{
    tpcc::ScaleParams scale;
    scale.customersPerDistrict = 8;
    scale.items = 64;
    TpccWorkload workload(scale);

    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(512) * 1024 * 1024, 8);
    workload.init(mem, heap, 8);
    EXPECT_EQ(workload.checkConsistency(mem, 8), "");

    Random rng(9);
    for (int i = 0; i < 100; ++i) {
        Transaction txn;
        RecordingAccessor rec(img, txn);
        workload.runTransaction(CoreId(i % 8), rec, rng);
        // Every new-order writes the district counter, the order
        // tables and 5-15 stock rows + order lines.
        EXPECT_GE(txn.modifiedLines.size(), 8u);
    }
    EXPECT_EQ(workload.checkConsistency(mem, 8), "");
}

TEST(TpccTest, KeysAreInjective)
{
    std::set<std::uint64_t> keys;
    for (std::uint32_t w = 1; w <= 2; ++w) {
        for (std::uint32_t d = 1; d <= 10; ++d) {
            for (std::uint32_t o = 1; o <= 50; ++o) {
                EXPECT_TRUE(
                    keys.insert(tpcc::orderKey(w, d, o)).second);
                for (std::uint32_t l = 0; l < 15; ++l) {
                    EXPECT_TRUE(
                        keys.insert(tpcc::orderLineKey(w, d, o, l))
                            .second);
                }
            }
        }
    }
}

TEST(ZipfianTest, ThetaZeroIsUniform)
{
    const std::uint64_t n = 64;
    const int draws = 64000;
    ZipfianGenerator gen(n, 0.0);
    Random rng(17);
    std::vector<int> hist(n, 0);
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t r = gen.next(rng);
        ASSERT_LT(r, n);
        ++hist[r];
    }
    // Every rank lands near draws/n = 1000 (loose 3x band; a zipfian
    // at theta 0.99 would put >5000 on rank 0).
    for (std::uint64_t r = 0; r < n; ++r) {
        EXPECT_GT(hist[r], 500) << "rank " << r;
        EXPECT_LT(hist[r], 2000) << "rank " << r;
    }
}

TEST(ZipfianTest, SkewConcentratesOnHotRanks)
{
    const std::uint64_t n = 1024;
    const int draws = 100000;
    ZipfianGenerator gen(n, 0.99);
    Random rng(23);
    std::vector<int> hist(n, 0);
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t r = gen.next(rng);
        ASSERT_LT(r, n);
        ++hist[r];
    }
    // Rank 0 alone draws ~1/zeta(1024) ~ 13% of the mass; uniform
    // would give under 0.1%.
    EXPECT_GT(hist[0], draws / 20);
    // The hottest 10% of ranks take the clear majority of draws.
    int hot = 0;
    for (std::uint64_t r = 0; r < n / 10; ++r)
        hot += hist[r];
    EXPECT_GT(hot, draws * 6 / 10);
    // Monotone in aggregate: the first quarter outdraws the last.
    int head = 0, tail = 0;
    for (std::uint64_t r = 0; r < n / 4; ++r)
        head += hist[r];
    for (std::uint64_t r = 3 * n / 4; r < n; ++r)
        tail += hist[r];
    EXPECT_GT(head, 4 * tail);
}

TEST(KvWorkloadTest, FunctionalRunStaysConsistentAndTagsClasses)
{
    KvParams params;
    params.keysPerTenant = 64;
    params.valueBytes = 64;
    params.numTenants = 2;
    KvWorkload workload(params);

    const std::uint32_t cores = 4;
    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(256) * 1024 * 1024, cores);
    workload.init(mem, heap, cores);
    EXPECT_EQ(workload.checkConsistency(mem, cores), "");

    Random rng(7);
    bool saw_class[KvWorkload::kNumClasses] = {false, false, false};
    for (int i = 0; i < 400; ++i) {
        Transaction txn;
        RecordingAccessor rec(img, txn);
        const CoreId core = CoreId(i % cores);
        workload.runTransaction(core, rec, rng);
        ASSERT_LT(txn.txnClass, KvWorkload::kNumClasses);
        saw_class[txn.txnClass] = true;
        // Tenant tag matches the block-of-cores ownership (cores 0-1
        // are tenant 0, cores 2-3 tenant 1).
        EXPECT_EQ(txn.tenant, core / 2);
        // Reads are log-free; updates and inserts are atomic regions.
        bool has_region = false;
        for (const auto &op : txn.ops)
            has_region |= op.kind == OpKind::AtomicBegin;
        EXPECT_EQ(has_region,
                  txn.txnClass != KvWorkload::kClassRead);
    }
    // 400 draws at the default 50/40/10 mix: seeing all three classes
    // is a certainty unless the mix wiring broke.
    EXPECT_TRUE(saw_class[KvWorkload::kClassRead]);
    EXPECT_TRUE(saw_class[KvWorkload::kClassUpdate]);
    EXPECT_TRUE(saw_class[KvWorkload::kClassInsert]);
    EXPECT_EQ(workload.checkConsistency(mem, cores), "");
}

TEST(KvWorkloadTest, CheckerDetectsTornUpdate)
{
    KvParams params;
    params.keysPerTenant = 32;
    params.valueBytes = 64;
    KvWorkload workload(params);

    const std::uint32_t cores = 2;
    DataImage img;
    DirectAccessor mem(img);
    PersistentHeap heap(kPageBytes, Addr(128) * 1024 * 1024, cores);
    workload.init(mem, heap, cores);

    Random rng(5);
    for (int i = 0; i < 50; ++i) {
        Transaction txn;
        RecordingAccessor rec(img, txn);
        workload.runTransaction(CoreId(i % cores), rec, rng);
    }
    ASSERT_EQ(workload.checkConsistency(mem, cores), "");

    // Tear a slot: bump the version without rewriting the value
    // pattern, exactly what a non-atomic crash mid-update leaves.
    // Locate the slot table by its keyTag signature (key s stores
    // s + 1 at slot offset 0; slots are 64B header + 64B value here).
    const Addr slot_bytes = kLineBytes + params.valueBytes;
    bool torn = false;
    for (Addr a = 0; a < Addr(16) * 1024 * 1024 && !torn; a += 8) {
        if (mem.load64(a) == 1 && mem.load64(a + slot_bytes) == 2 &&
            mem.load64(a + 2 * slot_bytes) == 3) {
            mem.store64(a + 8, mem.load64(a + 8) + 1);
            torn = true;
        }
    }
    ASSERT_TRUE(torn);
    EXPECT_NE(workload.checkConsistency(mem, cores), "");
}

} // namespace
} // namespace atomsim
