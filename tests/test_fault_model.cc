/**
 * @file
 * Unit tests of the fault-model primitives: word-granular torn
 * writes on the durable image, the seeded tear-point hash, the
 * log-record header checksum as a tear detector, and the media-error
 * read model of the NVM channel.
 *
 * These pin the *mechanisms*; the end-to-end guarantees (a crash
 * under injected faults still recovers to a consistent image) live in
 * tests/test_recovery.cc and the crash campaign.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "atom/log_record.hh"
#include "mem/nvm_channel.hh"
#include "mem/phys_mem.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"

namespace atomsim
{
namespace
{

Line
patternLine(std::uint8_t base)
{
    Line l;
    for (std::size_t i = 0; i < l.size(); ++i)
        l[i] = std::uint8_t(base + i);
    return l;
}

// --- DataImage::writeLineWords ------------------------------------------

TEST(TornWriteTest, PrefixCommitsAndTailSurvives)
{
    DataImage img;
    const Addr addr = 0x4000;
    const Line old_line = patternLine(0x10);
    const Line new_line = patternLine(0x80);
    img.writeLine(addr, old_line);

    img.writeLineWords(addr, new_line, 3);
    const Line torn = img.readLine(addr);
    EXPECT_EQ(0, std::memcmp(torn.data(), new_line.data(), 3 * 8));
    EXPECT_EQ(0, std::memcmp(torn.data() + 3 * 8, old_line.data() + 3 * 8,
                             kLineBytes - 3 * 8));
}

TEST(TornWriteTest, ZeroWordsIsANoOp)
{
    DataImage img;
    const Addr addr = 0x4000;
    const Line old_line = patternLine(0x10);
    img.writeLine(addr, old_line);
    img.writeLineWords(addr, patternLine(0x80), 0);
    EXPECT_EQ(img.readLine(addr), old_line);
}

TEST(TornWriteTest, EightWordsEqualsFullWriteAndCountClamps)
{
    DataImage img;
    const Addr addr = 0x4000;
    const Line new_line = patternLine(0x80);
    img.writeLine(addr, patternLine(0x10));
    img.writeLineWords(addr, new_line, 8);
    EXPECT_EQ(img.readLine(addr), new_line);

    // An out-of-range count clamps to a full line, never overruns.
    img.writeLine(addr, patternLine(0x10));
    img.writeLineWords(addr, new_line, 99);
    EXPECT_EQ(img.readLine(addr), new_line);
}

// --- tornWordCount --------------------------------------------------------

TEST(TornWriteTest, TearPointIsDeterministicAndInRange)
{
    // Same keys -> same boundary; the boundary stays in [0, 8]; and
    // the hash actually exercises the whole range (all nine outcomes
    // appear over a modest key sweep), so tears are genuine rather
    // than one degenerate split.
    std::vector<bool> hit(9, false);
    for (std::uint64_t op = 0; op < 512; ++op) {
        const std::uint32_t w = tornWordCount(7, 3, 0x1000 + op * 64, op);
        EXPECT_EQ(w, tornWordCount(7, 3, 0x1000 + op * 64, op));
        ASSERT_LE(w, 8u);
        hit[w] = true;
    }
    for (std::uint32_t w = 0; w <= 8; ++w)
        EXPECT_TRUE(hit[w]) << "word count " << w << " never produced";

    // Distinct seeds decorrelate the pattern.
    std::uint32_t differing = 0;
    for (std::uint64_t op = 0; op < 64; ++op) {
        if (tornWordCount(7, 3, 0x1000, op) !=
            tornWordCount(8, 3, 0x1000, op)) {
            ++differing;
        }
    }
    EXPECT_GT(differing, 0u);
}

// --- log-record header checksum as tear detector ---------------------------

TEST(TornWriteTest, HeaderChecksumFlagsEveryPartialTear)
{
    // Two generations of the same header bucket: an old fully-written
    // record and a new one torn over it at every word boundary. Word
    // 0 carries magic+count, word 1 the checksum -- without the
    // checksum any tear committing word 0 would parse as a valid
    // header with garbage addresses.
    LogRecordHeader old_hdr;
    old_hdr.ausId = 1;
    old_hdr.count = 7;
    old_hdr.seq = 41;
    for (std::uint32_t e = 0; e < 7; ++e)
        old_hdr.addrs[e] = (Addr(0xbeef00) + e) << 6;

    LogRecordHeader new_hdr;
    new_hdr.ausId = 2;
    new_hdr.count = 7;
    new_hdr.seq = 97;
    for (std::uint32_t e = 0; e < 7; ++e)
        new_hdr.addrs[e] = (Addr(1) << 41) + (Addr(e) << 6);

    DataImage img;
    const Addr base = 0x10000;
    for (std::uint32_t words = 0; words <= 8; ++words) {
        img.writeLine(base, old_hdr.toLine());
        img.writeLineWords(base, new_hdr.toLine(), words);
        const auto parsed = LogRecordHeader::parse(img.readLine(base));
        if (words == 0) {
            // Nothing committed: the old record is intact and valid.
            ASSERT_TRUE(parsed.hdr.has_value());
            EXPECT_FALSE(parsed.torn);
            EXPECT_EQ(parsed.hdr->seq, old_hdr.seq);
        } else if (words == 8) {
            // Fully committed: the new record is valid.
            ASSERT_TRUE(parsed.hdr.has_value());
            EXPECT_FALSE(parsed.torn);
            EXPECT_EQ(parsed.hdr->seq, new_hdr.seq);
            for (std::uint32_t e = 0; e < 7; ++e)
                EXPECT_EQ(parsed.hdr->addrs[e], new_hdr.addrs[e]);
        } else {
            // A genuine tear: the magic byte is present but the line
            // mixes generations, and the checksum must reject it.
            EXPECT_FALSE(parsed.hdr.has_value()) << "words=" << words;
            EXPECT_TRUE(parsed.torn) << "words=" << words;
        }
    }
}

// --- NvmChannel media-error model ------------------------------------------

TEST(MediaErrorTest, ZeroRateMatchesPlainReadTiming)
{
    SystemConfig cfg;
    EventQueue eq_a, eq_b;
    NvmChannel plain(eq_a, cfg);
    NvmChannel faulty(eq_b, cfg, 5);
    for (int i = 0; i < 16; ++i) {
        const Tick want = plain.scheduleRead();
        const NvmChannel::ReadGrant got =
            faulty.scheduleReadFaulty(0x2000 + Addr(i) * 64);
        EXPECT_EQ(got.ready, want);
        EXPECT_EQ(got.retries, 0u);
        EXPECT_FALSE(got.hardFail);
    }
    EXPECT_EQ(plain.freeAt(), faulty.freeAt());
}

TEST(MediaErrorTest, GrantSequenceIsDeterministic)
{
    SystemConfig cfg;
    cfg.mediaErrorPer64k = 8192;  // 1/8 of attempts fail
    EventQueue eq_a, eq_b;
    NvmChannel a(eq_a, cfg, 3);
    NvmChannel b(eq_b, cfg, 3);
    std::uint64_t retries = 0;
    for (int i = 0; i < 256; ++i) {
        const Addr addr = 0x8000 + Addr(i) * 64;
        const auto ga = a.scheduleReadFaulty(addr);
        const auto gb = b.scheduleReadFaulty(addr);
        EXPECT_EQ(ga.ready, gb.ready);
        EXPECT_EQ(ga.retries, gb.retries);
        EXPECT_EQ(ga.hardFail, gb.hardFail);
        retries += ga.retries;
    }
    // At a 1/8 rate the sweep must actually inject errors.
    EXPECT_GT(retries, 0u);
}

TEST(MediaErrorTest, RetriesPayBackoffOnTheChannel)
{
    SystemConfig cfg;
    cfg.mediaErrorPer64k = 8192;
    cfg.mediaRetryLimit = 4;
    EventQueue eq_plain;
    NvmChannel plain(eq_plain, cfg);
    const Tick base = plain.scheduleRead();  // retry-free reference

    std::uint32_t retried = 0;
    for (int i = 0; i < 256; ++i) {
        // A fresh channel per probe: the first grant's timing is then
        // a pure function of the retry count.
        EventQueue eq;
        NvmChannel chan(eq, cfg, 11);
        const auto g = chan.scheduleReadFaulty(0x9000 + Addr(i) * 64);
        if (g.retries == 0) {
            EXPECT_EQ(g.ready, base);
        } else {
            // Each retry re-occupies the channel and adds the backoff
            // on top of the device latency, so the grant lands later.
            EXPECT_GT(g.ready, base);
            ++retried;
        }
    }
    EXPECT_GT(retried, 0u);
}

TEST(MediaErrorTest, CertainErrorRateExhaustsBoundedRetries)
{
    SystemConfig cfg;
    cfg.mediaErrorPer64k = 65536;  // every attempt fails
    cfg.mediaRetryLimit = 3;
    EventQueue eq;
    NvmChannel chan(eq, cfg, 1);
    const auto g = chan.scheduleReadFaulty(0xa000);
    EXPECT_TRUE(g.hardFail);
    EXPECT_EQ(g.retries, cfg.mediaRetryLimit);
}

} // namespace
} // namespace atomsim
