/**
 * @file
 * Flash-tier tests: the forwarding-map codec, the SSD queue pairs and
 * channel/die timing model, the destage pipeline against a real
 * memory controller, and end-to-end crash/recovery under the three
 * durability policies.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "harness/runner.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/phys_mem.hh"
#include "mem/ssd_device.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workloads/hash_workload.hh"

namespace atomsim
{
namespace
{

// ---------------------------------------------------------------------
// Forwarding-map codec
// ---------------------------------------------------------------------

TEST(FwdmapCodecTest, RoundTrip)
{
    std::uint64_t w0, w1;
    fwdmap::encode(Addr(0x7f3000), 42, w0, w1);
    const auto m = fwdmap::decode(w0, w1);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->first, Addr(0x7f3000));
    EXPECT_EQ(m->second, 42u);
}

TEST(FwdmapCodecTest, UnsetAndClearedEntriesAreInvalid)
{
    EXPECT_FALSE(fwdmap::decode(0, 0).has_value());
}

TEST(FwdmapCodecTest, TornCombinationsAreInvalid)
{
    // NVM tears at 8-byte granularity: any mix of one persisted word
    // and one stale word must parse as invalid (= NVM authoritative).
    std::uint64_t w0, w1;
    fwdmap::encode(Addr(0x20000), 7, w0, w1);
    EXPECT_FALSE(fwdmap::decode(w0, 0).has_value());
    EXPECT_FALSE(fwdmap::decode(0, w1).has_value());

    std::uint64_t x0, x1;
    fwdmap::encode(Addr(0x31000), 9, x0, x1);
    EXPECT_FALSE(fwdmap::decode(w0, x1).has_value());
    EXPECT_FALSE(fwdmap::decode(x0, w1).has_value());

    // Corruption inside either word fails the checksum.
    EXPECT_FALSE(fwdmap::decode(w0 ^ 0x1000, w1).has_value());
    EXPECT_FALSE(fwdmap::decode(w0, w1 ^ (1ull << 40)).has_value());
}

TEST(FwdmapCodecTest, ChecksumNeverZero)
{
    for (std::uint64_t w0 : {0ull, 1ull, 0x5000ull, ~0ull}) {
        for (std::uint32_t fp : {0u, 1u, 255u, ~0u})
            EXPECT_NE(fwdmap::checksum(w0, fp), 0u);
    }
}

TEST(FwdmapRehydrateTest, RestoresAndClearsIdempotently)
{
    SystemConfig cfg;
    cfg.ssdTier = true;
    cfg.ssdFlashPagesPerMc = 64;
    AddressMap amap(cfg, Addr(16) * 1024 * 1024);
    DataImage nvm;
    DataImage flash;

    for (Addr off = 0; off < kPageBytes; off += 8)
        flash.store64(Addr(3) * kPageBytes + off, 0x1111 * (off + 1));
    const Addr page = 0x4000;
    std::uint64_t w0, w1;
    fwdmap::encode(page, 3, w0, w1);
    const Addr entry = amap.ssdMapPage(0, 0);
    nvm.store64(entry, w0);
    nvm.store64(entry + 8, w1);

    EXPECT_EQ(fwdmap::rehydrate(nvm, amap, 0, flash), 1u);
    for (Addr off = 0; off < kPageBytes; off += 8) {
        EXPECT_EQ(nvm.load64(page + off),
                  flash.load64(Addr(3) * kPageBytes + off));
    }
    // The entry clears as it restores, so a crash during recovery and
    // a second full pass are both harmless no-ops.
    EXPECT_EQ(nvm.load64(entry), 0u);
    EXPECT_EQ(nvm.load64(entry + 8), 0u);
    EXPECT_EQ(fwdmap::rehydrate(nvm, amap, 0, flash), 0u);
}

// ---------------------------------------------------------------------
// SsdDevice: queue pairs + channel/die timing
// ---------------------------------------------------------------------

SystemConfig
deviceCfg()
{
    SystemConfig cfg;
    cfg.ssdTier = true;
    cfg.ssdChannels = 2;
    cfg.ssdDiesPerChannel = 2;
    cfg.ssdQueueDepth = 4;
    cfg.ssdFlashPagesPerMc = 64;
    return cfg;
}

class SsdDeviceTest : public ::testing::Test
{
  protected:
    SsdDeviceTest() : cfg(deviceCfg()), ssd(0, eq, cfg, stats) {}

    SsdDevice::Cmd *
    makeWrite(std::uint32_t flash_page, std::uint8_t fill)
    {
        SsdDevice::Cmd *cmd = ssd.acquireCmd();
        cmd->isWrite = true;
        cmd->flashPage = flash_page;
        cmd->data.fill(fill);
        return cmd;
    }

    SystemConfig cfg;
    EventQueue eq;
    StatSet stats;
    SsdDevice ssd;
};

TEST_F(SsdDeviceTest, NothingRunsBeforeDoorbell)
{
    bool done = false;
    SsdDevice::Cmd *cmd = makeWrite(0, 0xAA);
    cmd->done = [&done](SsdDevice::Cmd &) { done = true; };
    ASSERT_TRUE(ssd.submit(0, cmd));
    eq.run();
    EXPECT_FALSE(done);
    EXPECT_EQ(ssd.sqDepth(0), 1u);

    ssd.ringDoorbell(0);
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(ssd.outstanding(0), 0u);
    EXPECT_EQ(ssd.flash().load64(0), 0xAAAAAAAAAAAAAAAAull);
}

TEST_F(SsdDeviceTest, SubmitBoundsAtQueueDepthWithoutOwnership)
{
    // Even flash pages steer to channel 0 (qpOf = page % channels).
    std::vector<SsdDevice::Cmd *> cmds;
    for (std::uint32_t i = 0; i < cfg.ssdQueueDepth; ++i) {
        SsdDevice::Cmd *cmd = makeWrite(2 * i, std::uint8_t(i));
        ASSERT_EQ(ssd.qpOf(cmd->flashPage), 0u);
        ASSERT_TRUE(ssd.submit(0, cmd));
        cmds.push_back(cmd);
    }
    // The pair is full: the submit fails and the caller keeps the node.
    SsdDevice::Cmd *extra = makeWrite(8, 0xFF);
    EXPECT_FALSE(ssd.submit(0, extra));
    EXPECT_EQ(stats.value("ssd0", "sq_stalls"), 1u);
    ssd.releaseCmd(extra);

    ssd.ringDoorbell(0);
    eq.run();
    EXPECT_EQ(ssd.outstanding(0), 0u);
    EXPECT_EQ(ssd.programs(), std::uint64_t(cfg.ssdQueueDepth));
    // Zero leaks: every node acquired is back on the free list.
    EXPECT_EQ(ssd.poolAllocated(), ssd.poolFree());
}

TEST_F(SsdDeviceTest, CompletionsAreFifoPerQueuePair)
{
    // Same channel, same die (pages 0, 4, 8, 12 with 2 channels and
    // 2 dies): the commands fully serialize, so completions must come
    // back in submission order.
    std::vector<std::uint32_t> order;
    for (std::uint32_t i = 0; i < 4; ++i) {
        SsdDevice::Cmd *cmd = makeWrite(4 * i, std::uint8_t(i));
        cmd->done = [&order, i](SsdDevice::Cmd &) { order.push_back(i); };
        ASSERT_TRUE(ssd.submit(0, cmd));
    }
    ssd.ringDoorbell(0);
    eq.run();
    ASSERT_EQ(order.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_F(SsdDeviceTest, SameDieProgramsSerializeOnTprog)
{
    // Pages 0 and 4 land on (channel 0, die 0): the second program
    // waits out the first's tPROG. Pages 0 and 2 land on different
    // dies of channel 0: they overlap everywhere but the bus transfer.
    auto run_pair = [this](std::uint32_t fp_a,
                           std::uint32_t fp_b) -> Tick {
        Tick t_a = 0, t_b = 0;
        SsdDevice::Cmd *a = makeWrite(fp_a, 0x11);
        a->done = [this, &t_a](SsdDevice::Cmd &) { t_a = eq.now(); };
        SsdDevice::Cmd *b = makeWrite(fp_b, 0x22);
        b->done = [this, &t_b](SsdDevice::Cmd &) { t_b = eq.now(); };
        EXPECT_TRUE(ssd.submit(0, a));
        EXPECT_TRUE(ssd.submit(0, b));
        ssd.ringDoorbell(0);
        eq.run();
        EXPECT_GT(t_b, t_a);
        return t_b - t_a;
    };
    const Tick same_die = run_pair(0, 4);
    EXPECT_GE(same_die + Tick(cfg.ssdPollInterval),
              Tick(cfg.ssdProgramLatency));
    const Tick cross_die = run_pair(8, 10);
    EXPECT_LT(cross_die, Tick(cfg.ssdProgramLatency));
}

TEST_F(SsdDeviceTest, ReadSensesThenTransfersAndReturnsData)
{
    SsdDevice::Cmd *w = makeWrite(9, 0xAB);
    ASSERT_TRUE(ssd.submit(ssd.qpOf(9), w));
    ssd.ringDoorbell(ssd.qpOf(9));
    eq.run();

    const Tick start = eq.now();
    Tick t_read = 0;
    std::uint8_t byte = 0;
    SsdDevice::Cmd *r = ssd.acquireCmd();
    r->flashPage = 9;
    r->done = [this, &t_read, &byte](SsdDevice::Cmd &c) {
        t_read = eq.now();
        byte = c.data[17];
    };
    ASSERT_TRUE(ssd.submit(ssd.qpOf(9), r));
    ssd.ringDoorbell(ssd.qpOf(9));
    eq.run();
    EXPECT_EQ(byte, 0xAB);
    EXPECT_GE(t_read - start, Tick(cfg.ssdReadLatency));
    EXPECT_EQ(ssd.reads(), 1u);
}

TEST_F(SsdDeviceTest, PowerFailDropsRingsAndKeepsFlash)
{
    SsdDevice::Cmd *w = makeWrite(5, 0xAB);
    ASSERT_TRUE(ssd.submit(ssd.qpOf(5), w));
    ssd.ringDoorbell(ssd.qpOf(5));
    eq.run();
    ASSERT_EQ(ssd.flash().load64(Addr(5) * kPageBytes),
              0xABABABABABABABABull);

    // A submitted-but-unreaped command dies with the rings; its
    // callback must never fire and its node must come home.
    bool done = false;
    SsdDevice::Cmd *lost = makeWrite(7, 0xCD);
    lost->done = [&done](SsdDevice::Cmd &) { done = true; };
    ASSERT_TRUE(ssd.submit(ssd.qpOf(7), lost));
    ssd.ringDoorbell(ssd.qpOf(7));
    ssd.powerFail();
    eq.run();
    EXPECT_FALSE(done);
    EXPECT_EQ(ssd.totalOutstanding(), 0u);
    EXPECT_EQ(ssd.poolAllocated(), ssd.poolFree());
    // Flash is the non-volatile medium: page 5 survives, page 7 was
    // never programmed.
    EXPECT_EQ(ssd.flash().load64(Addr(5) * kPageBytes),
              0xABABABABABABABABull);
    EXPECT_EQ(ssd.flash().load64(Addr(7) * kPageBytes), 0u);
}

// ---------------------------------------------------------------------
// DestageEngine pipeline against a real controller
// ---------------------------------------------------------------------

SystemConfig
pipelineCfg()
{
    SystemConfig cfg;
    cfg.ssdTier = true;
    cfg.ssdChannels = 2;
    cfg.ssdDiesPerChannel = 2;
    cfg.ssdQueueDepth = 8;
    cfg.ssdFlashPagesPerMc = 64;
    cfg.ssdColdPageWatermark = 2;
    cfg.ssdMaxDestageBacklog = 4;
    return cfg;
}

class DestagePipelineTest : public ::testing::Test
{
  protected:
    DestagePipelineTest()
        : cfg(pipelineCfg()),
          amap(cfg, Addr(16) * 1024 * 1024),
          mc(0, eq, cfg, nvm, stats),
          ssd(0, eq, cfg, stats),
          eng(0, eq, cfg, amap, mc, ssd, nvm, stats)
    {
        mc.setDestageEngine(&eng);
    }

    ~DestagePipelineTest() override { mc.setDestageEngine(nullptr); }

    void
    fillPage(Addr page, std::uint64_t seed)
    {
        for (Addr off = 0; off < kPageBytes; off += 8)
            nvm.store64(page + off, seed ^ (off * 0x9E37ull));
    }

    /** Destage @p page and run the pipeline to Forwarded. */
    void
    forward(Addr page, bool is_log = false)
    {
        ASSERT_TRUE(eng.requestDestage(page, is_log));
        ASSERT_EQ(eng.pageState(page), DestageEngine::PageState::Programming);
        eq.run();
        ASSERT_EQ(eng.pageState(page), DestageEngine::PageState::Forwarded);
    }

    SystemConfig cfg;
    EventQueue eq;
    DataImage nvm;
    StatSet stats;
    AddressMap amap;
    MemoryController mc;
    SsdDevice ssd;
    DestageEngine eng;
};

TEST_F(DestagePipelineTest, DestageForwardsScrubsAndMapsDurably)
{
    const Addr page = 0x10000;
    fillPage(page, 0x5eed);
    const std::uint64_t first_word = nvm.load64(page);
    forward(page);

    EXPECT_EQ(eng.forwardedPages(), 1u);
    EXPECT_EQ(eng.pagesDestaged(), 1u);
    EXPECT_EQ(stats.value("mc0", "destage_pages"), 1u);

    // NVM surrendered the page: poison, not the old bytes.
    EXPECT_EQ(nvm.load64(page), 0x5A5A5A5A5A5A5A5Aull);
    // The first destage takes slot 0 and flash page 0 (deterministic
    // smallest-first pop): flash holds the snapshot, and the durable
    // NVM entry decodes back to exactly this mapping.
    EXPECT_EQ(ssd.flash().load64(0), first_word);
    const Addr entry = amap.ssdMapPage(0, 0);
    const auto m = fwdmap::decode(nvm.load64(entry), nvm.load64(entry + 8));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->first, page);
    EXPECT_EQ(m->second, 0u);
}

TEST_F(DestagePipelineTest, ReadOfForwardedPagePromotesAndReplays)
{
    const Addr page = 0x10000;
    fillPage(page, 0x5eed);
    const Line original = nvm.readLine(page + 2 * kLineBytes);
    forward(page);

    bool read = false;
    mc.readLine(page + 2 * kLineBytes, ReadKind::Demand,
                [&](const Line &line) {
                    read = true;
                    EXPECT_EQ(line, original);
                });
    // The access parked and the promotion is already in flight.
    EXPECT_FALSE(read);
    EXPECT_EQ(eng.pageState(page), DestageEngine::PageState::Promoting);
    eq.run();
    EXPECT_TRUE(read);
    EXPECT_FALSE(eng.pageState(page).has_value());
    EXPECT_EQ(eng.promotions(), 1u);
    EXPECT_EQ(ssd.reads(), 1u);
    // NVM is whole again and the durable entry is cleared.
    EXPECT_EQ(nvm.load64(page), 0x5eedull ^ 0ull);
    const Addr entry = amap.ssdMapPage(0, 0);
    EXPECT_FALSE(
        fwdmap::decode(nvm.load64(entry), nvm.load64(entry + 8))
            .has_value());
}

TEST_F(DestagePipelineTest, WriteOfForwardedPagePromotesAndApplies)
{
    const Addr page = 0x10000;
    fillPage(page, 0x5eed);
    forward(page);

    Line data{};
    data[0] = 0x77;
    bool wrote = false;
    mc.writeLine(page, data, WriteKind::DataWb, [&] { wrote = true; });
    EXPECT_FALSE(wrote);
    eq.run();
    EXPECT_TRUE(wrote);
    EXPECT_FALSE(eng.pageState(page).has_value());
    // The written line carries the new data; the rest of the page came
    // back from flash.
    EXPECT_EQ(nvm.readLine(page)[0], 0x77);
    EXPECT_EQ(nvm.load64(page + kLineBytes),
              0x5eedull ^ (kLineBytes * 0x9E37ull));
}

TEST_F(DestagePipelineTest, WriteDuringProgrammingCancelsTheDestage)
{
    const Addr page = 0x10000;
    fillPage(page, 0x5eed);
    ASSERT_TRUE(eng.requestDestage(page, false));
    ASSERT_EQ(eng.pageState(page), DestageEngine::PageState::Programming);

    // The snapshot is in flight; this write makes it stale. It must
    // pass straight through (NVM never stopped being authoritative).
    Line data{};
    data[0] = 0x77;
    bool wrote = false;
    mc.writeLine(page, data, WriteKind::DataWb, [&] { wrote = true; });
    eq.run();
    EXPECT_TRUE(wrote);
    EXPECT_FALSE(eng.pageState(page).has_value());
    EXPECT_EQ(eng.forwardedPages(), 0u);
    EXPECT_EQ(stats.value("mc0", "destage_cancelled"), 1u);
    EXPECT_EQ(nvm.readLine(page)[0], 0x77);
    // The slot and flash page were reclaimed: a retry starts cleanly.
    EXPECT_TRUE(eng.requestDestage(page, false));
    eq.run();
    EXPECT_EQ(eng.forwardedPages(), 1u);
}

TEST_F(DestagePipelineTest, TruncateDropRestoresForwardedLogPage)
{
    const Addr bucket = amap.bucketBase(0, 0);
    fillPage(bucket, 0x10c);
    const std::uint64_t first_word = nvm.load64(bucket);
    forward(bucket, true);
    EXPECT_EQ(stats.value("mc0", "destage_log_pages"), 1u);

    bool fired = false;
    eng.onTruncate({}, {bucket}, [&] { fired = true; });
    EXPECT_TRUE(fired);  // strict: truncation never waits on destage
    eq.run();
    EXPECT_FALSE(eng.pageState(bucket).has_value());
    // The freed bucket reads exactly as if the destage never happened.
    EXPECT_EQ(nvm.load64(bucket), first_word);
    const Addr entry = amap.ssdMapPage(0, 0);
    EXPECT_FALSE(
        fwdmap::decode(nvm.load64(entry), nvm.load64(entry + 8))
            .has_value());
}

TEST_F(DestagePipelineTest, CrashLeavesDurableMapRehydratable)
{
    const Addr page = 0x10000;
    fillPage(page, 0x5eed);
    DataImage reference = nvm.clone();
    forward(page);

    // Power failure: the engine and device lose all volatile state.
    eng.powerFail();
    ssd.powerFail();
    EXPECT_FALSE(eng.pageState(page).has_value());

    // What the crash left behind -- poisoned NVM page, durable entry,
    // flash snapshot -- rehydrates back to the pre-destage bytes.
    EXPECT_EQ(fwdmap::rehydrate(nvm, amap, 0, ssd.flash()), 1u);
    for (Addr off = 0; off < kPageBytes; off += 8)
        EXPECT_EQ(nvm.load64(page + off), reference.load64(page + off));
    EXPECT_EQ(fwdmap::rehydrate(nvm, amap, 0, ssd.flash()), 0u);
}

TEST(DestageBacklogTest, BalancedTruncationWaitsForBacklogBound)
{
    SystemConfig cfg = pipelineCfg();
    cfg.durabilityPolicy = DurabilityPolicy::Balanced;
    cfg.ssdMaxDestageBacklog = 0;
    EventQueue eq;
    DataImage nvm;
    StatSet stats;
    AddressMap amap(cfg, Addr(16) * 1024 * 1024);
    MemoryController mc(0, eq, cfg, nvm, stats);
    SsdDevice ssd(0, eq, cfg, stats);
    DestageEngine eng(0, eq, cfg, amap, mc, ssd, nvm, stats);
    mc.setDestageEngine(&eng);

    // A cold log segment is in flight when the truncation completes:
    // with a zero backlog bound the completion parks until the destage
    // reaches its durable map entry.
    eng.onLogSegmentCold(amap.bucketBase(0, 1));
    ASSERT_EQ(eng.destagesInFlight(), 1u);
    bool fired = false;
    eng.onTruncate({}, {}, [&] { fired = true; });
    EXPECT_FALSE(fired);
    EXPECT_EQ(stats.value("mc0", "destage_trunc_waits"), 1u);
    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eng.backlog(), 0u);
    mc.setDestageEngine(nullptr);
}

// ---------------------------------------------------------------------
// End-to-end: destage + crash + recovery under the three policies
// ---------------------------------------------------------------------

SystemConfig
ssdCrashConfig(DesignKind design, DurabilityPolicy policy)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = design;
    cfg.ssdTier = true;
    cfg.durabilityPolicy = policy;
    // Destage aggressively: every page a truncated update touched is
    // cold immediately, so even a small working set exercises the
    // whole pipeline (including promotion churn on re-access). Short
    // flash latencies let destages complete within these small runs.
    cfg.ssdColdPageWatermark = 0;
    cfg.ssdFlashPagesPerMc = 256;
    cfg.ssdMaxDestageBacklog = 4;
    cfg.ssdReadLatency = 2000;
    cfg.ssdProgramLatency = 5000;
    return cfg;
}

MicroParams
ssdParams(std::uint64_t seed)
{
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = 32;
    params.txnsPerCore = 12;
    params.seed = seed;
    return params;
}

std::uint64_t
imageHash(const DataImage &img, Addr base, Addr bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (Addr a = base; a < base + bytes; a += kLineBytes) {
        const Line line = img.readLine(a);
        for (std::uint8_t b : line) {
            h ^= b;
            h *= 1099511628211ull;
        }
    }
    return h;
}

TEST(SsdEndToEndTest, CleanRunDestagesAndStrictLosesNothing)
{
    const MicroParams params = ssdParams(9);
    HashWorkload workload(params);
    SystemConfig cfg =
        ssdCrashConfig(DesignKind::Atom, DurabilityPolicy::Strict);
    cfg.seed = 9;
    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.run();

    // The last truncations queued destages whose flash programs are
    // still in flight when the final core finishes: let them drain
    // before taking stock.
    EventQueue &eq = runner.system().eventQueue();
    eq.run(eq.now() + 1000 * 1000);

    std::uint64_t destaged = 0;
    for (McId m = 0; m < cfg.numMemCtrls; ++m)
        destaged += runner.system().destage(m)->pagesDestaged();
    EXPECT_GT(destaged, 0u);

    runner.system().powerFail();
    const RecoveryReport report = runner.system().recover();
    EXPECT_TRUE(report.criticalStateFound);
    // Strict: every acked commit survived the crash.
    EXPECT_EQ(report.incompleteUpdates, 0u);
    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, cfg.numCores), "");
}

class SsdPolicyCrashTest
    : public ::testing::TestWithParam<DurabilityPolicy>
{
};

TEST_P(SsdPolicyCrashTest, MidDestageCrashRecoversConsistently)
{
    const DurabilityPolicy policy = GetParam();
    const MicroParams params = ssdParams(5);
    HashWorkload workload(params);
    SystemConfig cfg = ssdCrashConfig(DesignKind::Atom, policy);
    cfg.seed = 5;
    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.runUntilDestageCrash(5);

    const RecoveryReport report = runner.system().recover();
    EXPECT_TRUE(report.criticalStateFound);
    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, cfg.numCores), "")
        << "policy=" << durabilityPolicyName(policy)
        << " rolledBack=" << report.incompleteUpdates
        << " rehydrated=" << report.pagesRehydrated;
    if (policy == DurabilityPolicy::Eventual) {
        // The volatile staging window never exceeded its bound, so the
        // recovery-point loss is bounded by construction.
        EXPECT_LE(runner.system().designContext().stagedPeak(),
                  cfg.ssdStagingWindow);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SsdPolicyCrashTest,
    ::testing::Values(DurabilityPolicy::Strict,
                      DurabilityPolicy::Balanced,
                      DurabilityPolicy::Eventual),
    [](const ::testing::TestParamInfo<DurabilityPolicy> &info) {
        return std::string(durabilityPolicyName(info.param));
    });

TEST(SsdEventualPolicyTest, StagedLossIsBoundedByWindow)
{
    const MicroParams params = ssdParams(13);
    HashWorkload workload(params);
    SystemConfig cfg =
        ssdCrashConfig(DesignKind::Atom, DurabilityPolicy::Eventual);
    cfg.seed = 13;
    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.run();

    // Early acks actually happened, and the window bound held.
    EXPECT_GT(runner.system().stats().value("design", "staged_acks"), 0u);
    EXPECT_LE(runner.system().designContext().stagedPeak(),
              cfg.ssdStagingWindow);

    // Crash right at completion: the commits still in the staging
    // window are the only acked work recovery may roll back.
    runner.system().powerFail();
    const RecoveryReport report = runner.system().recover();
    EXPECT_TRUE(report.criticalStateFound);
    EXPECT_LE(report.incompleteUpdates, cfg.ssdStagingWindow);
    DirectAccessor durable(runner.system().nvmImage());
    EXPECT_EQ(workload.checkConsistency(durable, cfg.numCores), "");
}

struct DestageCrashOutcome
{
    Tick crashTick = 0;
    std::uint64_t imageHashValue = 0;
    std::uint32_t rehydrated = 0;
    std::uint32_t incomplete = 0;
};

DestageCrashOutcome
destageCrashOnce(DurabilityPolicy policy, std::uint64_t seed)
{
    const MicroParams params = ssdParams(seed);
    HashWorkload workload(params);
    SystemConfig cfg = ssdCrashConfig(DesignKind::Atom, policy);
    cfg.seed = seed;
    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    DestageCrashOutcome out;
    out.crashTick = runner.runUntilDestageCrash(seed);
    const RecoveryReport report = runner.system().recover();
    out.rehydrated = report.pagesRehydrated;
    out.incomplete = report.incompleteUpdates;
    out.imageHashValue = imageHash(runner.system().nvmImage(),
                                   kPageBytes, Addr(2) * 1024 * 1024);
    return out;
}

TEST(SsdDeterminismTest, DestageCrashRecoveryIsDeterministic)
{
    // Two identical mid-destage crash runs must produce byte-identical
    // recovered images and identical recovery reports.
    const DestageCrashOutcome a =
        destageCrashOnce(DurabilityPolicy::Balanced, 11);
    const DestageCrashOutcome b =
        destageCrashOnce(DurabilityPolicy::Balanced, 11);
    EXPECT_EQ(a.crashTick, b.crashTick);
    EXPECT_EQ(a.imageHashValue, b.imageHashValue);
    EXPECT_EQ(a.rehydrated, b.rehydrated);
    EXPECT_EQ(a.incomplete, b.incomplete);
}

TEST(SsdIdempotenceTest, SecondRecoveryPassIsANoOp)
{
    // Crash mid-destage, recover, then run the whole routine again as
    // if recovery itself had crashed after completing: rehydration
    // finds no valid entries (they cleared on the first pass) and the
    // data image does not move.
    const MicroParams params = ssdParams(7);
    HashWorkload workload(params);
    SystemConfig cfg =
        ssdCrashConfig(DesignKind::Atom, DurabilityPolicy::Balanced);
    cfg.seed = 7;
    Runner runner(cfg, workload, params.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.runUntilDestageCrash(7);

    const RecoveryReport first = runner.system().recover();
    EXPECT_TRUE(first.criticalStateFound);
    const std::uint64_t h1 = imageHash(runner.system().nvmImage(),
                                       kPageBytes, Addr(2) * 1024 * 1024);
    const RecoveryReport second = runner.system().recover();
    EXPECT_EQ(second.pagesRehydrated, 0u);
    EXPECT_EQ(imageHash(runner.system().nvmImage(), kPageBytes,
                        Addr(2) * 1024 * 1024),
              h1);
}

} // namespace
} // namespace atomsim
