/**
 * @file
 * Hybrid DRAM/NVM sweep (plain chrono; always builds, like
 * bench/parallel_scaling.cc). Exercises the memory subsystem behind
 * the controllers across its design points and gates the properties
 * the hybrid tier promises:
 *
 *  1. latency: a DRAM-cache read hit must complete in fewer cycles
 *     than a flat-NVM read (gated, directed bare-controller probe);
 *  2. allocation: the DRAM hit path (read hits + absorbed writeback
 *     hits) performs zero steady-state heap allocations, proven with
 *     an operator-new counter as in the other benches (gated);
 *  3. capacity: the DRAM-cache hit rate on TPC-C is monotone
 *     non-decreasing in dramCacheMBPerMc (gated);
 *  4. placement: throughput / hit-rate / log-traffic rows across
 *     {nvmOnly, memoryMode, appDirect(log-direct),
 *     appDirect(data-direct)} on TPC-C and the hash microbenchmark
 *     (reported);
 *  5. --smoke: memoryMode + appDirect at 1 and 4 shards must produce
 *     byte-identical delivery streams (gated; run by CI next to
 *     parallel_scaling).
 *
 * `--stats-json <path>` exports every row machine-readably
 * (harness/report.hh JsonWriter) instead of ad-hoc stdout scraping.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "designs/design.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "mem/memory_controller.hh"
#include "net/mesh.hh"
#include "workloads/hash_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace
{
std::atomic<std::uint64_t> g_allocCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace atomsim;

JsonWriter g_json;
bool g_jsonOpen = false;

void
jsonRowBegin(const char *section)
{
    if (!g_jsonOpen)
        return;
    g_json.beginObject();
    g_json.kv("section", section);
}

void
jsonRowEnd()
{
    if (g_jsonOpen)
        g_json.endObject();
}

/** One hybrid design point. */
struct Mode
{
    const char *name;
    HybridMode mode;
    AppDirectRegion region;
};

constexpr Mode kModes[] = {
    {"nvmOnly", HybridMode::NvmOnly, AppDirectRegion::LogRegion},
    {"memoryMode", HybridMode::MemoryMode, AppDirectRegion::LogRegion},
    {"appDirect/log-direct", HybridMode::AppDirect,
     AppDirectRegion::LogRegion},
    {"appDirect/data-direct", HybridMode::AppDirect,
     AppDirectRegion::DataRegion},
};

// --- Section 1: directed latency probe on a bare controller ---------

bool
latencySection()
{
    std::printf("\n-- DRAM-hit vs NVM read latency (bare controller) "
                "--\n");

    auto read_latency = [](HybridMode mode, bool second_read) {
        SystemConfig cfg;
        cfg.hybridMode = mode;
        cfg.dramCacheMBPerMc = 1;
        EventQueue eq;
        DataImage nvm;
        StatSet stats;
        MemoryController mc(0, eq, cfg, nvm, stats);
        const Addr addr = 0x40000;
        if (second_read) {
            mc.readLine(addr, ReadKind::Demand, [](const Line &) {});
            eq.run();
        }
        const Tick start = eq.now();
        Tick done = 0;
        mc.readLine(addr, ReadKind::Demand,
                    [&](const Line &) { done = eq.now(); });
        eq.run();
        return done - start;
    };

    const Tick nvm_lat = read_latency(HybridMode::NvmOnly, false);
    const Tick miss_lat = read_latency(HybridMode::MemoryMode, false);
    const Tick hit_lat = read_latency(HybridMode::MemoryMode, true);

    std::printf("nvm read: %llu cycles, dram miss: %llu, dram hit: "
                "%llu\n",
                (unsigned long long)nvm_lat,
                (unsigned long long)miss_lat,
                (unsigned long long)hit_lat);
    jsonRowBegin("latency");
    if (g_jsonOpen) {
        g_json.kv("nvm_read_cycles", std::uint64_t(nvm_lat));
        g_json.kv("dram_miss_cycles", std::uint64_t(miss_lat));
        g_json.kv("dram_hit_cycles", std::uint64_t(hit_lat));
    }
    jsonRowEnd();

    const bool ok = hit_lat < nvm_lat;
    std::printf("DRAM-hit < NVM-read gate: %s\n", ok ? "OK" : "FAIL");
    return ok;
}

// --- Section 2: zero steady-state allocations on the hit path -------

bool
allocSection()
{
    std::printf("\n-- steady-state allocations on the DRAM hit path "
                "--\n");
    SystemConfig cfg;
    cfg.hybridMode = HybridMode::MemoryMode;
    cfg.dramCacheMBPerMc = 1;
    EventQueue eq;
    DataImage nvm;
    StatSet stats;
    MemoryController mc(0, eq, cfg, nvm, stats);

    constexpr int kLines = 16;
    Line data{};
    auto batch = [&](int rounds) {
        for (int r = 0; r < rounds; ++r) {
            for (int i = 0; i < kLines; ++i) {
                const Addr addr = 0x40000 + Addr(i) * kLineBytes;
                data[0] = std::uint8_t(r + i);
                mc.writeLine(addr, data, WriteKind::DataWb, {});
                mc.readLine(addr, ReadKind::Demand,
                            [](const Line &) {});
            }
            eq.run();
        }
    };

    // Warm up: demand-fill the lines and let every pool (requests,
    // DRAM ops, device queue, event one-shots) reach its high-water
    // mark.
    batch(64);

    const std::uint64_t before = g_allocCount.load();
    batch(1000);
    const std::uint64_t allocs = g_allocCount.load() - before;

    std::printf("allocs across %u DRAM-hit reads + absorbed writes: "
                "%llu\n",
                1000u * kLines * 2, (unsigned long long)allocs);
    jsonRowBegin("alloc");
    if (g_jsonOpen) {
        g_json.kv("hit_path_allocs", allocs);
        // Raw controller counters of the probe run (dram_hits,
        // row_hits, ...) for downstream tooling.
        g_json.statsObject("mc_stats", stats);
    }
    jsonRowEnd();
    const bool ok = allocs == 0;
    std::printf("zero-allocation gate: %s\n", ok ? "OK" : "FAIL");
    return ok;
}

// --- Workload runs ---------------------------------------------------

struct SweepRun
{
    RunResult result;
    double hitRate = 0;
    double wallMs = 0;
    std::uint64_t streamHash = 0;
};

enum class Load
{
    Hash,
    Tpcc,
    TpccBig,  //!< capacity-pressure scale for the hit-rate curve
};

SweepRun
runOne(Load load, const Mode &mode, std::uint32_t dram_mb,
       std::uint32_t shards, std::uint32_t txns_per_core)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    cfg.hybridMode = mode.mode;
    cfg.appDirectRegion = mode.region;
    cfg.dramCacheMBPerMc = dram_mb;
    cfg.numShards = shards;
    // Small L2 slices so the working set streams through them: the
    // resulting evictions + re-fetches are exactly the traffic a DRAM
    // tier exists to absorb (with the Table-I 32 MB L2, these scaled
    // runs would never re-read a line from the controllers and every
    // mode would measure identical).
    cfg.l2TileBytes = 64 * 1024;
    cfg.l2Assoc = 4;

    std::unique_ptr<Workload> workload;
    Addr data_bytes = Addr(128) * 1024 * 1024;
    switch (load) {
      case Load::Hash: {
        cfg.design = DesignKind::AtomOpt;
        MicroParams params;
        params.entryBytes = 512;
        params.initialItems = 512;
        params.txnsPerCore = txns_per_core;
        workload = std::make_unique<HashWorkload>(params);
        break;
      }
      case Load::Tpcc:
      case Load::TpccBig: {
        cfg.numCores = 4;
        cfg.l2Tiles = 4;
        cfg.ausPerMc = 4;
        cfg.design = DesignKind::Atom;
        tpcc::ScaleParams scale;
        if (load == Load::TpccBig) {
            // Enough rows that the controllers' re-read set outgrows
            // the smallest swept DRAM capacity: the hit-rate curve
            // must actually bend, not just hold a tie.
            scale.customersPerDistrict = 256;
            scale.items = 16384;
        } else {
            scale.customersPerDistrict = 64;
            scale.items = 2048;
        }
        workload = std::make_unique<TpccWorkload>(scale);
        break;
      }
    }

    Runner runner(cfg, *workload, txns_per_core, data_bytes);
    bench::StreamHashTracer tracer;
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();
    const auto t0 = std::chrono::steady_clock::now();
    SweepRun r;
    r.result = runner.run();
    const auto t1 = std::chrono::steady_clock::now();
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    r.streamHash = tracer.hash;
    const std::uint64_t probes = r.result.dramHits +
                                 r.result.dramMisses;
    r.hitRate = probes ? double(r.result.dramHits) / double(probes)
                       : 0.0;
    return r;
}

// --- Section 3: hit rate vs capacity on TPC-C (gated monotone) ------

bool
capacitySection()
{
    std::printf("\n-- TPC-C hit rate vs DRAM capacity (memoryMode) "
                "--\n");
    ReportTable table({"dram MB/MC", "dram hits", "dram misses",
                       "hit rate", "wb evictions", "txn/s"});
    bool ok = true;
    double prev_rate = -1.0;
    const Mode &mm = kModes[1];
    for (std::uint32_t mb : {1u, 2u, 4u, 8u}) {
        const SweepRun r = runOne(Load::TpccBig, mm, mb, 0, 96);
        table.addRow({std::to_string(mb),
                      std::to_string(r.result.dramHits),
                      std::to_string(r.result.dramMisses),
                      ReportTable::num(100.0 * r.hitRate, 2) + "%",
                      std::to_string(r.result.dramWbEvictions),
                      ReportTable::num(r.result.txnPerSec, 0)});
        jsonRowBegin("capacity");
        if (g_jsonOpen) {
            g_json.kv("workload", "tpcc");
            g_json.kv("dram_mb_per_mc", mb);
            g_json.kv("dram_hits", r.result.dramHits);
            g_json.kv("dram_misses", r.result.dramMisses);
            g_json.kv("hit_rate", r.hitRate);
            g_json.kv("wb_evictions", r.result.dramWbEvictions);
            g_json.kv("txn_per_sec", r.result.txnPerSec);
        }
        jsonRowEnd();
        if (r.hitRate + 1e-9 < prev_rate) {
            std::printf("!! hit rate decreased at %u MB\n", mb);
            ok = false;
        }
        prev_rate = r.hitRate;
    }
    table.print();
    std::printf("monotone hit-rate-vs-capacity gate: %s\n",
                ok ? "OK" : "FAIL");
    return ok;
}

// --- Section 4: placement / mode sweep (reported) --------------------

void
placementSection(Load load, const char *load_name,
                 std::uint32_t txns_per_core)
{
    std::printf("\n-- %s across hybrid modes --\n", load_name);
    ReportTable table({"mode", "log placement", "txn/s", "hit rate",
                       "nvm data wr", "nvm log wr", "wb evictions"});
    for (const Mode &mode : kModes) {
        const SweepRun r = runOne(load, mode, 8, 0, txns_per_core);
        SystemConfig label_cfg;
        label_cfg.hybridMode = mode.mode;
        label_cfg.appDirectRegion = mode.region;
        table.addRow({mode.name, logPlacementName(label_cfg),
                      ReportTable::num(r.result.txnPerSec, 0),
                      ReportTable::num(100.0 * r.hitRate, 2) + "%",
                      std::to_string(r.result.memDataWrites),
                      std::to_string(r.result.memLogWrites),
                      std::to_string(r.result.dramWbEvictions)});
        jsonRowBegin("placement");
        if (g_jsonOpen) {
            g_json.kv("workload", load_name);
            g_json.kv("mode", mode.name);
            g_json.kv("log_placement", logPlacementName(label_cfg));
            g_json.kv("txn_per_sec", r.result.txnPerSec);
            g_json.kv("hit_rate", r.hitRate);
            g_json.kv("dram_hits", r.result.dramHits);
            g_json.kv("dram_misses", r.result.dramMisses);
            g_json.kv("row_hits", r.result.dramRowHits);
            g_json.kv("wb_evictions", r.result.dramWbEvictions);
            g_json.kv("nvm_data_writes", r.result.memDataWrites);
            g_json.kv("nvm_log_writes", r.result.memLogWrites);
        }
        jsonRowEnd();
    }
    table.print();
}

// --- Section 5: sharded byte-identity with the hybrid tier on -------

bool
shardIdentitySection()
{
    std::printf("\n-- sharded byte-identity with hybrid modes "
                "(--smoke) --\n");
    bool ok = true;
    for (std::size_t m = 1; m < std::size(kModes); ++m) {
        const Mode &mode = kModes[m];
        const SweepRun one = runOne(Load::Hash, mode, 4, 1, 4);
        const SweepRun four = runOne(Load::Hash, mode, 4, 4, 4);
        const bool same = one.streamHash == four.streamHash &&
                          one.result.txns == four.result.txns &&
                          one.result.dramHits == four.result.dramHits;
        // A smoke run that never hit DRAM would vacuously "pass";
        // require the tier to actually see traffic wherever the data
        // region is cached. (appDirect/data-direct caches only the
        // log region, which ATOM never *reads* in forward execution
        // -- zero hits is the expected behavior there, and the row
        // documents it.)
        const bool caches_data =
            !(mode.mode == HybridMode::AppDirect &&
              mode.region == AppDirectRegion::DataRegion);
        const bool exercised = !caches_data ||
                               one.result.dramHits > 0;
        std::printf("%-22s 1-shard %016llx vs 4-shard %016llx: %s "
                    "(%llu dram hits)\n",
                    mode.name, (unsigned long long)one.streamHash,
                    (unsigned long long)four.streamHash,
                    same ? "identical" : "DIVERGED",
                    (unsigned long long)one.result.dramHits);
        if (!exercised)
            std::printf("!! %s: no DRAM hits -- smoke config no "
                        "longer exercises the tier\n", mode.name);
        jsonRowBegin("shard_identity");
        if (g_jsonOpen) {
            g_json.kv("mode", mode.name);
            g_json.kv("identical", same);
            g_json.kv("dram_hits", one.result.dramHits);
        }
        jsonRowEnd();
        ok &= same && exercised;
    }
    std::printf("hybrid shard-identity gate: %s\n", ok ? "OK" : "FAIL");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    const std::string json_path = statsJsonPathFromArgs(argc, argv);
    g_jsonOpen = !json_path.empty();
    if (g_jsonOpen) {
        g_json.beginObject();
        g_json.kv("bench", "hybrid_sweep");
        g_json.kv("smoke", smoke);
        g_json.key("rows");
        g_json.beginArray();
    }

    std::printf("hybrid_sweep: DRAM/NVM memory subsystem design "
                "points%s\n", smoke ? " (smoke)" : "");

    bool ok = true;
    ok &= latencySection();
    ok &= allocSection();
    if (smoke) {
        ok &= shardIdentitySection();
    } else {
        ok &= capacitySection();
        placementSection(Load::Tpcc, "tpcc (4c ATOM)", 16);
        placementSection(Load::Hash, "hash micro (8c ATOM-OPT)", 8);
        ok &= shardIdentitySection();
    }

    if (g_jsonOpen) {
        g_json.endArray();
        g_json.kv("ok", ok);
        g_json.endObject();
        if (!g_json.writeFile(json_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            ok = false;
        } else {
            std::printf("\nwrote %s\n", json_path.c_str());
        }
    }
    return ok ? 0 : 1;
}
