/**
 * @file
 * Ablation (Section IV-C): log entry collation.
 *
 * Without LEC, every log entry costs 2 NVM write requests (data line +
 * per-entry metadata line); with LEC, 7 entries share one header: 8
 * writes per 7 entries, a 57% reduction in log write requests. This
 * bench measures the NVM log-write count and throughput with LEC on
 * and off on the ATOM (posted) design.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"

using namespace atomsim;
using namespace atomsim::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const MicroParams params = microParams(false);

    std::printf("\n=== Ablation: log entry collation (ATOM design) "
                "===\n");
    ReportTable table({"bench", "log writes (LEC)", "log writes (no LEC)",
                       "reduction", "speedup from LEC"});
    for (const char *name : {"hash", "queue", "rbtree", "btree"}) {
        SystemConfig on;
        on.enableLec = true;
        SystemConfig off;
        off.enableLec = false;
        const RunResult with_lec =
            runCell(name, DesignKind::Atom, params, on);
        const RunResult without =
            runCell(name, DesignKind::Atom, params, off);
        const double reduction =
            without.memLogWrites
                ? 100.0 * (1.0 - double(with_lec.memLogWrites) /
                                     double(without.memLogWrites))
                : 0.0;
        table.addRow({name, std::to_string(with_lec.memLogWrites),
                      std::to_string(without.memLogWrites),
                      ReportTable::num(reduction, 1) + "%",
                      ReportTable::num(with_lec.txnPerSec /
                                       without.txnPerSec)});
    }
    table.print();
    std::printf("paper:  LEC turns 2 writes/entry into 8 writes/7 "
                "entries = 42.9%% fewer writes at full records (57%% "
                "fewer vs 2/entry)\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
