/**
 * @file
 * Figure 5: transaction throughput of ATOM / ATOM-OPT / NON-ATOMIC
 * normalized to BASE, for the six micro-benchmarks, small (a) and
 * large (b) dataset sizes.
 *
 * Paper reference points (gmean over the benchmarks):
 *   small: ATOM +23%, ATOM-OPT +27%, NON-ATOMIC +38%
 *   large: ATOM +24%, ATOM-OPT +33%, NON-ATOMIC +41%
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>

#include "bench_common.hh"

using namespace atomsim;
using namespace atomsim::bench;

namespace
{

void
runFigure(bool large)
{
    const MicroParams params = microParams(large);
    const DesignKind designs[] = {DesignKind::Base, DesignKind::Atom,
                                  DesignKind::AtomOpt,
                                  DesignKind::NonAtomic};

    std::printf("\n=== Figure 5(%s): normalized txn throughput, %s "
                "datasets (%u-byte entries) ===\n",
                large ? "b" : "a", large ? "large" : "small",
                params.entryBytes);

    ReportTable table({"bench", "BASE", "ATOM", "ATOM-OPT",
                       "NON-ATOMIC", "BASE txn/s"});
    std::map<DesignKind, std::vector<double>> norm;

    for (const char *name : kMicroNames) {
        std::map<DesignKind, RunResult> res;
        for (DesignKind d : designs)
            res[d] = runCell(name, d, params);
        const double base = res[DesignKind::Base].txnPerSec;
        std::vector<std::string> row{name};
        for (DesignKind d : designs) {
            const double n = res[d].txnPerSec / base;
            row.push_back(ReportTable::num(n));
            norm[d].push_back(n);
        }
        row.push_back(ReportTable::num(base, 0));
        table.addRow(std::move(row));
    }
    std::vector<std::string> grow{"gmean"};
    for (DesignKind d : designs)
        grow.push_back(ReportTable::num(geomean(norm[d])));
    grow.push_back("");
    table.addRow(std::move(grow));
    table.print();

    if (large) {
        std::printf("paper:  gmean ATOM=1.24 ATOM-OPT=1.33 "
                    "NON-ATOMIC=1.41 (vs BASE)\n");
    } else {
        std::printf("paper:  gmean ATOM=1.23 ATOM-OPT=1.27 "
                    "NON-ATOMIC=1.38 (vs BASE)\n");
    }
}

/** google-benchmark entry: one full design run per iteration. */
void
BM_Throughput(benchmark::State &state, const char *workload,
              DesignKind design, bool large)
{
    for (auto _ : state) {
        const RunResult r = runCell(workload, design, microParams(large));
        state.counters["txn_per_s"] = r.txnPerSec;
        state.counters["sq_full_cycles"] = double(r.sqFullCycles);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    bool only_small = false;
    bool only_large = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--size=small"))
            only_small = true;
        if (!std::strcmp(argv[i], "--size=large"))
            only_large = true;
    }

    if (!only_large)
        runFigure(false);
    if (!only_small)
        runFigure(true);

    for (const char *name : {"rbtree", "hash"}) {
        for (DesignKind d : {DesignKind::Base, DesignKind::AtomOpt}) {
            const std::string bname = std::string("fig5/") + name + "/" +
                                      designName(d);
            benchmark::RegisterBenchmark(
                bname.c_str(),
                [name, d](benchmark::State &st) {
                    BM_Throughput(st, name, d, false);
                })
                ->Unit(benchmark::kMillisecond)
                ->Iterations(1);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
