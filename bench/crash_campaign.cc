/**
 * @file
 * Deterministic crash-fuzzing campaign (the recovery bug hunter).
 *
 * Sweeps a grid of (seed x design x crash-fraction x config-shape)
 * cells; every cell runs a micro workload to a crash point, cuts
 * power, recovers from the durable image alone, and checks the
 * workload's structural invariants on that image. Everything is
 * seeded, so every failure is replayable by ID.
 *
 * Each cell runs in a forked child (`--cell <id>` re-invokes this
 * binary on exactly one cell): a wedged or crashing simulation kills
 * only the child, and on a single-CPU container the parent can still
 * overlap children that block on I/O. Failing cells are auto-shrunk
 * (bisect the crash tick, then greedily halve cores / L2 capacity /
 * run length) and emitted as ready-to-paste gtest regression bodies
 * for tests/test_recovery.cc.
 *
 * Modes:
 *   crash_campaign                      full sweep (respects filters)
 *   crash_campaign --cell <id>          run one cell; exit 0 pass,
 *                                       1 inconsistent, 2 error
 *   crash_campaign --list               print cell IDs and exit
 * Options:
 *   --slice k/N    only cells with index % N == k (CI rotation)
 *   --jobs J       children to keep in flight (default 4)
 *   --seeds a,b,c  override the seed list
 *   --limit N      stop enumerating after N cells (smoke runs)
 *   --no-shrink    report failures without shrinking them
 *   --out DIR      write one report file per failing cell into DIR
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/crash_cell.hh"

using namespace atomsim;

namespace
{

/** One machine shape of the sweep: knobs that stress different
 * eviction / pressure regimes (tiny assoc-starved L2s force
 * writebacks of lines with live undo records; core count scales
 * WriteGate contention; the hybrid tier reorders the NVM stream).
 * hybrid is the cell h-axis: 0 flat NVM, 1 memoryMode, 2 appDirect
 * log-direct, 3 appDirect data-direct. */
struct Shape
{
    std::uint32_t cores, l2Kb, l2Assoc, entryBytes, items, txns;
    std::uint32_t hybrid;
};

const Shape kShapes[] = {
    {4, 8, 2, 512, 32, 10, 0},   // the torn-payload bug's shape
    {4, 16, 4, 512, 24, 10, 0},  // roomier L2, higher assoc
    {2, 8, 2, 512, 32, 12, 0},   // small machine, longer run
    {8, 8, 2, 512, 16, 8, 0},    // wide machine, shared pressure
    {4, 8, 2, 4096, 4, 6, 0},    // huge entries: multi-line tears
    {4, 8, 2, 512, 32, 10, 1},   // hybrid tier in front of NVM
    {8, 16, 2, 512, 24, 8, 0},   // wide + low assoc
    {2, 4, 2, 512, 48, 12, 0},   // tiny L2: eviction storm
    {4, 8, 2, 512, 32, 10, 2},   // appDirect: log region direct-to-NVM
    {4, 8, 2, 512, 32, 10, 3},   // appDirect: data direct, log cached
};

const DesignKind kDesigns[] = {DesignKind::Base, DesignKind::Atom,
                               DesignKind::AtomOpt, DesignKind::NonAtomic,
                               DesignKind::Redo};
const char *kWorkloads[] = {"hash", "queue", "btree",
                            "rbtree", "sdg", "sps"};
const double kFractions[] = {0.25, 0.5, 0.75};
const std::uint64_t kDefaultSeeds[] = {60, 61, 62, 63, 64};

/** One fault-model setting of the sweep (the w/m/r cell axes). The
 * fault sub-grid runs on a focused shape subset (kFaultShapes) at one
 * crash fraction so the widened sweep stays tractable on one CPU. */
struct FaultMode
{
    std::uint32_t torn, media, rpct;
};

const FaultMode kFaultModes[] = {
    {1, 0, 0},    // torn in-flight writes at power failure
    {0, 200, 0},  // media read errors, 200/65536 ~ 0.3% per read
    {0, 0, 50},   // crash recovery at 50% of its applications
    {1, 0, 50},   // double failure: second crash tears recovery
};

/** Indices into kShapes the fault sub-grid runs on: the historical
 * bug shape, the multi-line-tear shape and the hybrid-tier shape. */
const std::size_t kFaultShapes[] = {0, 4, 5};

/** One memory-system shape of the sweep (the a/n cell axes): AUS
 * pools per controller and controller counts off the campaign default
 * of 4x4. A single AUS per MC maximizes undo-slot reuse across the
 * crash; 8 MCs on a small mesh stack controllers on shared corner
 * nodes and stripe the log across more devices. */
struct MemShape
{
    std::uint32_t aus, mcs;
};

const MemShape kMemShapes[] = {
    {1, 4},  // one AUS per MC: maximal slot churn
    {2, 4},
    {8, 4},  // deep pools: crash cuts through more live slots
    {4, 1},  // one controller carries the whole log
    {4, 2},
    {4, 8},  // wide interleave, corner nodes shared
};

/** Workloads the memory-shape sub-grid runs (focused: the structures
 * most sensitive to undo-slot pressure, plus the macro workload). */
const char *kMemShapeWorkloads[] = {"hash", "queue", "tpcc"};

std::vector<CrashCell>
enumerateCells(const std::vector<std::uint64_t> &seeds)
{
    std::vector<CrashCell> cells;
    const auto push = [&cells](const Shape &sh, DesignKind design,
                               const char *wl, double fraction,
                               std::uint64_t seed, const FaultMode &fm,
                               std::uint32_t aus = 4,
                               std::uint32_t mcs = 4) {
        CrashCell cell;
        cell.workload = wl;
        cell.design = design;
        cell.fraction = fraction;
        cell.cores = sh.cores;
        cell.l2TileKb = sh.l2Kb;
        cell.l2Assoc = sh.l2Assoc;
        cell.hybrid = sh.hybrid;
        cell.entryBytes = sh.entryBytes;
        cell.initialItems = sh.items;
        cell.txnsPerCore = sh.txns;
        cell.seed = seed;
        cell.tornWords = fm.torn;
        cell.mediaRate = fm.media;
        cell.recoverPct = fm.rpct;
        cell.ausPerMc = aus;
        cell.numMemCtrls = mcs;
        cells.push_back(cell);
    };

    // Base grid: every shape x design x workload x fraction x seed,
    // fault model off.
    for (const Shape &sh : kShapes) {
        for (DesignKind design : kDesigns) {
            for (const char *wl : kWorkloads) {
                for (double fraction : kFractions) {
                    for (std::uint64_t seed : seeds)
                        push(sh, design, wl, fraction, seed,
                             FaultMode{0, 0, 0});
                }
            }
        }
    }

    // Fault sub-grid: each fault mode on the focused shapes, every
    // design and workload, at the middle crash fraction. Torn-write
    // modes skip REDO (its frame stream has no torn-write detector;
    // CrashCell::parse rejects the combination).
    for (const FaultMode &fm : kFaultModes) {
        for (std::size_t si : kFaultShapes) {
            for (DesignKind design : kDesigns) {
                if (fm.torn != 0 && design == DesignKind::Redo)
                    continue;
                for (const char *wl : kWorkloads) {
                    for (std::uint64_t seed : seeds)
                        push(kShapes[si], design, wl, 0.5, seed, fm);
                }
            }
        }
    }

    // TPC-C sub-grid: the macro workload (B+-tree database, multi-row
    // new-order regions) on every design at the historical bug shape
    // and the eviction-storm shape. Its database init is heavier than
    // the micro workloads', so the grid stays focused.
    for (std::size_t si : {std::size_t(0), std::size_t(7)}) {
        for (DesignKind design : kDesigns) {
            for (double fraction : kFractions) {
                for (std::uint64_t seed : seeds)
                    push(kShapes[si], design, "tpcc", fraction, seed,
                         FaultMode{0, 0, 0});
            }
        }
    }

    // Memory-shape sub-grid: each a/n axis point on the historical
    // bug shape, every design, focused workloads, middle fraction.
    for (const MemShape &ms : kMemShapes) {
        for (DesignKind design : kDesigns) {
            for (const char *wl : kMemShapeWorkloads) {
                for (std::uint64_t seed : seeds)
                    push(kShapes[0], design, wl, 0.5, seed,
                         FaultMode{0, 0, 0}, ms.aus, ms.mcs);
            }
        }
    }

    // Flash-tier sub-grid: every durability policy (d axis), with the
    // ordinary jittered crash and with the crash hunted onto an
    // in-flight destage (x axis). Undo designs only -- the destage
    // triggers are LogM truncation hooks -- on the historical bug
    // shape with the fault-sensitive micro workloads.
    for (std::uint32_t d : {1u, 2u, 3u}) {
        for (std::uint32_t x : {0u, 1u}) {
            for (DesignKind design :
                 {DesignKind::Base, DesignKind::Atom,
                  DesignKind::AtomOpt}) {
                for (const char *wl : {"hash", "queue"}) {
                    for (std::uint64_t seed : seeds) {
                        push(kShapes[0], design, wl, 0.5, seed,
                             FaultMode{0, 0, 0});
                        cells.back().durability = d;
                        cells.back().destageCrash = x;
                    }
                }
            }
        }
    }
    return cells;
}

// --- child mode ------------------------------------------------------------

/** Run one cell in this process. Prints a small line protocol the
 * parent parses (tick/fault), exit code is the verdict. */
int
childMain(const std::string &id)
{
    const auto cell = CrashCell::parse(id);
    if (!cell) {
        std::fprintf(stderr, "malformed cell ID: %s\n", id.c_str());
        return 2;
    }
    const CellOutcome out = runCrashCell(*cell);
    std::printf("tick %llu\n", (unsigned long long)out.crashTick);
    std::printf("rolledback %u applied %u restored %u\n",
                out.report.incompleteUpdates, out.report.recordsApplied,
                out.report.linesRestored);
    std::printf("faults torn %u retries %llu media %u\n",
                out.report.tornRecords,
                (unsigned long long)out.mediaRetries, out.hardMediaFaults);
    if (out.consistent) {
        std::printf("outcome pass\n");
        return 0;
    }
    std::printf("fault %s\n", out.fault.c_str());
    std::printf("outcome fail\n");
    return 1;
}

// --- parent-side child runner ----------------------------------------------

struct ChildResult
{
    int code = 2;  //!< 0 pass, 1 fail, 2 error/signal
    Tick tick = 0;
    std::string fault;
};

struct Child
{
    pid_t pid = -1;
    int fd = -1;
    std::size_t index = 0;
    std::string output;
    std::chrono::steady_clock::time_point start;
};

/** Per-cell wall-clock watchdog: cells slower than this are flagged
 * in the sweep output (a livelock that still finishes shows up as a
 * flagged slow cell, not a 300 s alarm kill). */
constexpr long kSlowCellMs = 30000;

pid_t
spawnChild(const char *exe, const CrashCell &cell, int *out_fd)
{
    int fds[2];
    if (pipe(fds) != 0)
        return -1;
    const std::string id = cell.id();
    const pid_t pid = fork();
    if (pid == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        alarm(300);  // a wedged cell dies instead of stalling the sweep
        execl(exe, exe, "--cell", id.c_str(), (char *)nullptr);
        _exit(2);
    }
    close(fds[1]);
    if (pid < 0) {
        close(fds[0]);
        return -1;
    }
    *out_fd = fds[0];
    return pid;
}

void
drainChild(Child &ch)
{
    char buf[4096];
    ssize_t n;
    while ((n = read(ch.fd, buf, sizeof(buf))) > 0)
        ch.output.append(buf, std::size_t(n));
    close(ch.fd);
    ch.fd = -1;
}

ChildResult
parseChild(const std::string &output, int status)
{
    ChildResult r;
    r.code = WIFEXITED(status) ? WEXITSTATUS(status) : 2;
    std::size_t pos = 0;
    while (pos < output.size()) {
        std::size_t eol = output.find('\n', pos);
        if (eol == std::string::npos)
            eol = output.size();
        const std::string line = output.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("tick ", 0) == 0)
            r.tick = std::strtoull(line.c_str() + 5, nullptr, 10);
        else if (line.rfind("fault ", 0) == 0)
            r.fault = line.substr(6);
    }
    return r;
}

/** Run one cell to completion in a child and wait for it. */
ChildResult
runCellChild(const char *exe, const CrashCell &cell)
{
    Child ch;
    ch.pid = spawnChild(exe, cell, &ch.fd);
    if (ch.pid < 0)
        return ChildResult{};
    drainChild(ch);
    int status = 0;
    waitpid(ch.pid, &status, 0);
    return parseChild(ch.output, status);
}

// --- report ----------------------------------------------------------------

std::string
sanitize(const std::string &id)
{
    std::string s = id;
    for (char &c : s) {
        if (c == ':')
            c = '_';
    }
    return s;
}

struct Failure
{
    CrashCell cell;
    ChildResult result;
    CrashCell shrunk;
    std::string shrinkLog;
    std::string regression;
};

void
writeReport(const std::string &dir, const Failure &f)
{
    const std::string path = dir + "/" + sanitize(f.shrunk.id()) + ".txt";
    std::ofstream out(path);
    out << "original cell: " << f.cell.id() << "\n"
        << "crash tick:    " << f.result.tick << "\n"
        << "fault:         " << f.result.fault << "\n"
        << "shrunk cell:   " << f.shrunk.id() << "\n\n"
        << "replay: crash_campaign --cell '" << f.shrunk.id() << "'\n\n"
        << "shrink log:\n" << f.shrinkLog << "\n"
        << "regression test body (tests/test_recovery.cc):\n\n"
        << f.regression;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--cell ID | --list] [--slice k/N] "
                 "[--jobs J] [--seeds a,b,..] [--limit N] "
                 "[--no-shrink] [--out DIR]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cellId, outDir;
    bool list = false, shrink = true;
    unsigned jobs = 4;
    std::size_t sliceK = 0, sliceN = 1, limit = 0;
    std::vector<std::uint64_t> seeds(std::begin(kDefaultSeeds),
                                     std::end(kDefaultSeeds));

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--cell" && next) {
            cellId = argv[++i];
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--slice" && next) {
            if (std::sscanf(argv[++i], "%zu/%zu", &sliceK, &sliceN) != 2 ||
                sliceN == 0 || sliceK >= sliceN) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--jobs" && next) {
            jobs = std::max(1u, unsigned(std::atoi(argv[++i])));
        } else if (arg == "--limit" && next) {
            limit = std::size_t(std::atoll(argv[++i]));
        } else if (arg == "--seeds" && next) {
            seeds.clear();
            for (const char *p = argv[++i]; *p;) {
                char *end = nullptr;
                seeds.push_back(std::strtoull(p, &end, 10));
                p = *end == ',' ? end + 1 : end;
            }
            if (seeds.empty()) {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--no-shrink") {
            shrink = false;
        } else if (arg == "--out" && next) {
            outDir = argv[++i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (!cellId.empty())
        return childMain(cellId);

    std::vector<CrashCell> all = enumerateCells(seeds);
    std::vector<std::size_t> picked;
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (i % sliceN == sliceK)
            picked.push_back(i);
    }
    if (limit != 0 && picked.size() > limit)
        picked.resize(limit);

    if (list) {
        for (std::size_t i : picked)
            std::printf("%s\n", all[i].id().c_str());
        return 0;
    }

    std::printf("crash campaign: %zu cells (of %zu; slice %zu/%zu, "
                "%u jobs)\n",
                picked.size(), all.size(), sliceK, sliceN, jobs);

    // Fan the cells out over up to `jobs` children. Results are
    // deterministic per cell regardless of completion order.
    std::map<pid_t, Child> running;
    std::vector<Failure> failures;
    /** (elapsed ms, cell index) of every cell over kSlowCellMs. */
    std::vector<std::pair<long, std::size_t>> slowCells;
    std::size_t done = 0, errors = 0, nextCell = 0;
    const char *exe = argv[0];

    while (nextCell < picked.size() || !running.empty()) {
        while (nextCell < picked.size() && running.size() < jobs) {
            Child ch;
            ch.index = picked[nextCell++];
            ch.start = std::chrono::steady_clock::now();
            ch.pid = spawnChild(exe, all[ch.index], &ch.fd);
            if (ch.pid < 0) {
                std::fprintf(stderr, "spawn failed for %s\n",
                             all[ch.index].id().c_str());
                ++errors;
                continue;
            }
            running.emplace(ch.pid, std::move(ch));
        }
        if (running.empty())
            break;
        int status = 0;
        const pid_t pid = waitpid(-1, &status, 0);
        const auto it = running.find(pid);
        if (it == running.end())
            continue;
        Child ch = std::move(it->second);
        running.erase(it);
        drainChild(ch);
        const ChildResult res = parseChild(ch.output, status);
        const long ms = long(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - ch.start)
                .count());
        if (ms >= kSlowCellMs) {
            slowCells.emplace_back(ms, ch.index);
            std::printf("SLOW %s (%ld ms)\n", all[ch.index].id().c_str(),
                        ms);
        }
        ++done;
        if (res.code == 1) {
            std::printf("FAIL %s\n  tick=%llu fault=%s\n",
                        all[ch.index].id().c_str(),
                        (unsigned long long)res.tick, res.fault.c_str());
            failures.push_back(
                Failure{all[ch.index], res, all[ch.index], "", ""});
        } else if (res.code != 0) {
            std::printf("ERROR %s (child status %d)\n",
                        all[ch.index].id().c_str(), res.code);
            ++errors;
        }
        if (done % 100 == 0) {
            std::printf("  ... %zu/%zu done, %zu failures\n", done,
                        picked.size(), failures.size());
            std::fflush(stdout);
        }
    }

    std::printf("sweep done: %zu cells, %zu failures, %zu errors, "
                "%zu slow (>%ld ms)\n",
                done, failures.size(), errors, slowCells.size(),
                kSlowCellMs);
    if (!slowCells.empty()) {
        std::sort(slowCells.rbegin(), slowCells.rend());
        const std::size_t top = std::min<std::size_t>(slowCells.size(), 5);
        std::printf("slowest cells:\n");
        for (std::size_t i = 0; i < top; ++i) {
            std::printf("  %8ld ms  %s\n", slowCells[i].first,
                        all[slowCells[i].second].id().c_str());
        }
    }

    // Shrink each failure to a minimal reproducer. The predicate is
    // the child verdict itself, so every accepted shrink is a replay-
    // verified reproducer.
    for (Failure &f : failures) {
        if (shrink) {
            const CellPredicate fails = [&](const CrashCell &cand) {
                return runCellChild(exe, cand).code == 1;
            };
            f.shrunk =
                shrinkCell(f.cell, f.result.tick, fails, &f.shrinkLog);
        }
        const ChildResult final = runCellChild(exe, f.shrunk);
        f.regression = regressionBody(
            f.shrunk, final.fault.empty() ? f.result.fault : final.fault);
        std::printf("\n=== failing cell %s\n", f.cell.id().c_str());
        if (shrink) {
            std::printf("shrunk to %s\n%s", f.shrunk.id().c_str(),
                        f.shrinkLog.c_str());
        }
        std::printf("replay: %s --cell '%s'\n%s", exe,
                    f.shrunk.id().c_str(), f.regression.c_str());
        if (!outDir.empty())
            writeReport(outDir, f);
    }
    return failures.empty() ? 0 : 1;
}
