/**
 * @file
 * DES-kernel microbenchmark: pooled intrusive events + calendar queue
 * (the current kernel) versus the seed's std::function-per-event
 * std::priority_queue kernel, kept here verbatim as the baseline.
 *
 * The workload mirrors the simulator's steady state: a population of
 * actors, each rescheduling itself with a deterministic mix of short
 * delays (cache/network latencies), mid delays (NVM completions) and
 * occasional far-future delays (the 5000-cycle OS interrupt), plus a
 * one-shot "continuation" posted per firing (the miss-fill / delivery
 * pattern). Events/sec is reported for three kernels:
 *
 *   legacy    std::function closures through std::priority_queue
 *   pooled    one-shot post() path (pooled FuncEvents, calendar queue)
 *   intrusive member TickEvents (zero allocation, calendar queue)
 *
 * Exit status is non-zero when --min-speedup N is given and the
 * intrusive kernel fails to beat the legacy kernel by that factor.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace
{

using atomsim::Cycles;
using atomsim::EventQueue;
using atomsim::Tick;
using atomsim::TickEvent;

// --- the seed kernel, verbatim ---------------------------------------

class LegacyQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return _now; }

    void
    schedule(Tick when, Callback cb)
    {
        _heap.push(Entry{when, _seq++, std::move(cb)});
    }

    void
    scheduleIn(Cycles delay, Callback cb)
    {
        schedule(_now + delay, std::move(cb));
    }

    bool empty() const { return _heap.empty(); }

    bool
    step()
    {
        if (_heap.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(_heap.top()));
        _heap.pop();
        _now = e.when;
        e.cb();
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _seq = 0;
};

// --- deterministic workload shape -------------------------------------

/** Delay of actor @p a's @p n-th firing: mostly short, sometimes the
 * 5000-cycle far-future path. Identical across kernels. */
inline Cycles
actorDelay(std::uint32_t a, std::uint64_t n)
{
    const std::uint64_t x = (a * 2654435761u) ^ (n * 0x9e3779b97f4a7c15ull);
    if ((x & 0xff) == 0)
        return 5000;  // ~0.4%: OS-interrupt-like spill
    return 1 + (x % 400);  // 1..400: core/cache/NVM latencies
}

constexpr std::uint32_t kActors = 256;

double
runLegacy(std::uint64_t budget, std::uint64_t &fired_out)
{
    LegacyQueue q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> n(kActors, 0);

    std::function<void(std::uint32_t)> fire = [&](std::uint32_t a) {
        ++fired;
        q.scheduleIn(1, [&fired] { ++fired; });  // one-shot continuation
        if (fired < budget)
            q.scheduleIn(actorDelay(a, n[a]++), [&fire, a] { fire(a); });
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t a = 0; a < kActors; ++a)
        q.scheduleIn(actorDelay(a, n[a]++), [&fire, a] { fire(a); });
    while (q.step()) {
    }
    const auto t1 = std::chrono::steady_clock::now();
    fired_out = fired;
    return std::chrono::duration<double>(t1 - t0).count();
}

double
runPooled(std::uint64_t budget, std::uint64_t &fired_out)
{
    EventQueue q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> n(kActors, 0);

    std::function<void(std::uint32_t)> fire = [&](std::uint32_t a) {
        ++fired;
        q.postIn(1, [&fired] { ++fired; });
        if (fired < budget)
            q.postIn(actorDelay(a, n[a]++), [&fire, a] { fire(a); });
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t a = 0; a < kActors; ++a)
        q.postIn(actorDelay(a, n[a]++), [&fire, a] { fire(a); });
    q.run();
    const auto t1 = std::chrono::steady_clock::now();
    fired_out = fired;
    return std::chrono::duration<double>(t1 - t0).count();
}

double
runIntrusive(std::uint64_t budget, std::uint64_t &fired_out)
{
    EventQueue q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> n(kActors, 0);

    std::vector<std::unique_ptr<TickEvent>> actors;
    std::vector<std::unique_ptr<TickEvent>> continuations;
    actors.reserve(kActors);
    continuations.reserve(kActors);
    for (std::uint32_t a = 0; a < kActors; ++a) {
        continuations.push_back(std::make_unique<TickEvent>(
            [&fired] { ++fired; }, "bench.cont"));
        actors.push_back(std::make_unique<TickEvent>(
            [&, a] {
                ++fired;
                TickEvent &cont = *continuations[a];
                if (!cont.scheduled())
                    q.scheduleIn(cont, 1);
                if (fired < budget)
                    q.scheduleIn(*actors[a], actorDelay(a, n[a]++));
            },
            "bench.actor"));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t a = 0; a < kActors; ++a)
        q.scheduleIn(*actors[a], actorDelay(a, n[a]++));
    q.run();
    const auto t1 = std::chrono::steady_clock::now();
    fired_out = fired;
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t budget = 5'000'000;
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--events") && i + 1 < argc)
            budget = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
            min_speedup = std::strtod(argv[++i], nullptr);
    }

    std::printf("DES kernel microbenchmark: %llu scheduled events, "
                "%u actors\n\n",
                (unsigned long long)budget, kActors);

    // Warm-up pass so all three kernels run against a hot allocator.
    std::uint64_t fired = 0;
    runLegacy(budget / 10, fired);
    runPooled(budget / 10, fired);
    runIntrusive(budget / 10, fired);

    std::uint64_t fired_legacy = 0, fired_pooled = 0, fired_intr = 0;
    const double t_legacy = runLegacy(budget, fired_legacy);
    const double t_pooled = runPooled(budget, fired_pooled);
    const double t_intr = runIntrusive(budget, fired_intr);

    if (fired_legacy != fired_pooled || fired_legacy != fired_intr) {
        std::fprintf(stderr,
                     "event-count mismatch: legacy=%llu pooled=%llu "
                     "intrusive=%llu\n",
                     (unsigned long long)fired_legacy,
                     (unsigned long long)fired_pooled,
                     (unsigned long long)fired_intr);
        return 2;
    }

    const double eps_legacy = double(fired_legacy) / t_legacy;
    const double eps_pooled = double(fired_pooled) / t_pooled;
    const double eps_intr = double(fired_intr) / t_intr;

    std::printf("  %-38s %8.1f M events/s\n",
                "legacy (std::function + prio-queue)", eps_legacy / 1e6);
    std::printf("  %-38s %8.1f M events/s   (%.2fx)\n",
                "pooled one-shots (calendar queue)", eps_pooled / 1e6,
                eps_pooled / eps_legacy);
    std::printf("  %-38s %8.1f M events/s   (%.2fx)\n",
                "intrusive TickEvents (calendar queue)", eps_intr / 1e6,
                eps_intr / eps_legacy);

    if (min_speedup > 0.0 && eps_intr < min_speedup * eps_legacy) {
        std::fprintf(stderr,
                     "\nFAIL: intrusive kernel %.2fx < required %.2fx\n",
                     eps_intr / eps_legacy, min_speedup);
        return 1;
    }
    return 0;
}
