/**
 * @file
 * Hot-path microbenchmarks: the DES kernel, the mesh delivery path and
 * the L1/L2 miss path.
 *
 * Kernel section: pooled intrusive events + calendar queue (the
 * current kernel) versus the seed's std::function-per-event
 * std::priority_queue kernel, kept here verbatim as the baseline.
 * The workload mirrors the simulator's steady state: a population of
 * actors, each rescheduling itself with a deterministic mix of short
 * delays (cache/network latencies), mid delays (NVM completions) and
 * occasional far-future delays (the 5000-cycle OS interrupt), plus a
 * one-shot "continuation" posted per firing (the miss-fill / delivery
 * pattern). Events/sec is reported for three kernels:
 *
 *   legacy    std::function closures through std::priority_queue
 *   pooled    one-shot post() path (pooled FuncEvents, calendar queue)
 *   intrusive member TickEvents (zero allocation, calendar queue)
 *
 * Mesh section: typed intrusive packets through per-link delivery
 * queues versus a closure-per-message baseline (the pre-refactor mesh,
 * reconstructed here: identical routing/reservation math, delivery via
 * a heap-captured std::function). The binary overrides operator
 * new/delete to count allocations, proving the packet path performs
 * ZERO steady-state heap allocations, and reports messages/sec for
 * both.
 *
 * Miss-path section: a real (small) System driven through L1
 * load/store miss churn -- ownership ping-pong between two cores, so
 * every access walks MSHR allocate/waiter/fill, the directory, and
 * 3-hop forwards. Steady-state allocations must be zero; misses/sec is
 * reported, along with the calendar wheel's spill ratio.
 *
 * Exit status is non-zero when --min-speedup N is given and the
 * intrusive kernel fails to beat the legacy kernel by that factor, or
 * when --min-mesh-speedup N is given and the packet mesh fails to beat
 * the closure mesh by that factor, or when a zero-allocation check
 * fails.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <vector>

#include "harness/system.hh"
#include "net/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

// --- allocation accounting (whole binary) ------------------------------

namespace
{
std::uint64_t g_allocCount = 0;
}

void *
operator new(std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using atomsim::Cycles;
using atomsim::EventQueue;
using atomsim::Tick;
using atomsim::TickEvent;

// --- the seed kernel, verbatim ---------------------------------------

class LegacyQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return _now; }

    void
    schedule(Tick when, Callback cb)
    {
        _heap.push(Entry{when, _seq++, std::move(cb)});
    }

    void
    scheduleIn(Cycles delay, Callback cb)
    {
        schedule(_now + delay, std::move(cb));
    }

    bool empty() const { return _heap.empty(); }

    bool
    step()
    {
        if (_heap.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(_heap.top()));
        _heap.pop();
        _now = e.when;
        e.cb();
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _seq = 0;
};

// --- deterministic workload shape -------------------------------------

/** Delay of actor @p a's @p n-th firing: mostly short, sometimes the
 * 5000-cycle far-future path. Identical across kernels. */
inline Cycles
actorDelay(std::uint32_t a, std::uint64_t n)
{
    const std::uint64_t x = (a * 2654435761u) ^ (n * 0x9e3779b97f4a7c15ull);
    if ((x & 0xff) == 0)
        return 5000;  // ~0.4%: OS-interrupt-like spill
    return 1 + (x % 400);  // 1..400: core/cache/NVM latencies
}

constexpr std::uint32_t kActors = 256;

double
runLegacy(std::uint64_t budget, std::uint64_t &fired_out)
{
    LegacyQueue q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> n(kActors, 0);

    std::function<void(std::uint32_t)> fire = [&](std::uint32_t a) {
        ++fired;
        q.scheduleIn(1, [&fired] { ++fired; });  // one-shot continuation
        if (fired < budget)
            q.scheduleIn(actorDelay(a, n[a]++), [&fire, a] { fire(a); });
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t a = 0; a < kActors; ++a)
        q.scheduleIn(actorDelay(a, n[a]++), [&fire, a] { fire(a); });
    while (q.step()) {
    }
    const auto t1 = std::chrono::steady_clock::now();
    fired_out = fired;
    return std::chrono::duration<double>(t1 - t0).count();
}

double g_pooledSpillRatio = 0.0;
std::uint64_t g_pooledSpills = 0;

double
runPooled(std::uint64_t budget, std::uint64_t &fired_out)
{
    EventQueue q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> n(kActors, 0);

    std::function<void(std::uint32_t)> fire = [&](std::uint32_t a) {
        ++fired;
        q.postIn(1, [&fired] { ++fired; });
        if (fired < budget)
            q.postIn(actorDelay(a, n[a]++), [&fire, a] { fire(a); });
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t a = 0; a < kActors; ++a)
        q.postIn(actorDelay(a, n[a]++), [&fire, a] { fire(a); });
    q.run();
    const auto t1 = std::chrono::steady_clock::now();
    fired_out = fired;
    g_pooledSpillRatio = q.spillRatio();
    g_pooledSpills = q.spillInserts();
    return std::chrono::duration<double>(t1 - t0).count();
}

double
runIntrusive(std::uint64_t budget, std::uint64_t &fired_out)
{
    EventQueue q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> n(kActors, 0);

    std::vector<std::unique_ptr<TickEvent>> actors;
    std::vector<std::unique_ptr<TickEvent>> continuations;
    actors.reserve(kActors);
    continuations.reserve(kActors);
    for (std::uint32_t a = 0; a < kActors; ++a) {
        continuations.push_back(std::make_unique<TickEvent>(
            [&fired] { ++fired; }, "bench.cont"));
        actors.push_back(std::make_unique<TickEvent>(
            [&, a] {
                ++fired;
                TickEvent &cont = *continuations[a];
                if (!cont.scheduled())
                    q.scheduleIn(cont, 1);
                if (fired < budget)
                    q.scheduleIn(*actors[a], actorDelay(a, n[a]++));
            },
            "bench.actor"));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t a = 0; a < kActors; ++a)
        q.scheduleIn(*actors[a], actorDelay(a, n[a]++));
    q.run();
    const auto t1 = std::chrono::steady_clock::now();
    fired_out = fired;
    return std::chrono::duration<double>(t1 - t0).count();
}

// --- mesh delivery: typed packets vs. per-message closures -------------

/**
 * The pre-refactor mesh, reconstructed as a baseline: same XY routing
 * and link-reservation math, but each message's delivery is a
 * std::function closure scheduled through the event queue. The capture
 * holds a 64-byte line (as the old protocol's respond closures did), so
 * every message heap-allocates its closure.
 */
class ClosureMesh
{
  public:
    ClosureMesh(EventQueue &eq, const atomsim::SystemConfig &cfg)
        : _eq(eq),
          _rows(cfg.meshRows),
          _cols(cfg.meshCols()),
          _hopLatency(cfg.hopLatency)
    {
        _links.resize(std::size_t(_rows) * _cols * 4);
    }

    void
    send(std::uint32_t src, std::uint32_t dst, atomsim::MsgType type,
         std::function<void()> deliver)
    {
        const std::uint32_t flits = atomsim::msgFlits(type);
        atomsim::MeshCoord cur = coordOf(src);
        const atomsim::MeshCoord target = coordOf(dst);
        Tick head = _eq.now() + _hopLatency;
        while (!(cur == target)) {
            atomsim::MeshCoord next = cur;
            if (cur.col != target.col)
                next.col += (target.col > cur.col) ? 1 : -1;
            else
                next.row += (target.row > cur.row) ? 1 : -1;
            Link &link = _links[linkIndex(nodeOf(cur), nodeOf(next))];
            const Tick start = std::max(head, link.busyUntil);
            head = start + _hopLatency;
            link.busyUntil = head + flits - 1;
            link.flits += flits;
            cur = next;
        }
        _eq.post(head + flits - 1, [fn = std::move(deliver)]() mutable {
            fn();
        });
    }

  private:
    // The pre-refactor per-link state and index math, verbatim.
    struct Link
    {
        Tick busyUntil = 0;
        std::uint64_t flits = 0;
    };

    atomsim::MeshCoord
    coordOf(std::uint32_t node) const
    {
        return atomsim::MeshCoord{node / _cols, node % _cols};
    }

    std::uint32_t
    nodeOf(atomsim::MeshCoord c) const
    {
        return c.row * _cols + c.col;
    }

    std::size_t
    linkIndex(std::uint32_t from, std::uint32_t to) const
    {
        const atomsim::MeshCoord a = coordOf(from);
        const atomsim::MeshCoord b = coordOf(to);
        std::uint32_t dir;
        if (b.row == a.row)
            dir = (b.col == a.col + 1) ? 0 : 1;
        else
            dir = (b.row == a.row + 1) ? 2 : 3;
        return std::size_t(from) * 4 + dir;
    }

    EventQueue &_eq;
    std::uint32_t _rows, _cols;
    Cycles _hopLatency;
    std::vector<Link> _links;
};

constexpr std::uint32_t kMeshPairs = 8;

double
runClosureMesh(std::uint64_t budget, std::uint64_t &delivered_out,
               std::uint64_t &steady_allocs)
{
    EventQueue eq;
    atomsim::SystemConfig cfg;  // 4x8 mesh
    ClosureMesh mesh(eq, cfg);

    std::uint64_t delivered = 0;
    std::uint64_t remaining = budget;
    const std::uint64_t warmup = budget / 10;

    // Ping-pong across the die: each bounce re-sends with a captured
    // 64-byte payload, modeling the old respond-closure pattern.
    std::function<void(std::uint32_t, std::uint32_t)> bounce =
        [&](std::uint32_t self, std::uint32_t peer) {
            if (remaining == 0)
                return;
            --remaining;
            atomsim::Line payload{};
            payload[0] = std::uint8_t(remaining);
            mesh.send(self, peer, atomsim::MsgType::Data,
                      [&, payload, self, peer]() mutable {
                          (void)payload;
                          ++delivered;
                          bounce(peer, self);
                      });
        };

    std::uint64_t allocs_at_steady = 0;
    bool counting = false;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < kMeshPairs; ++i)
        bounce(i, 31 - i);
    while (eq.step()) {
        if (!counting && delivered >= warmup) {
            counting = true;
            allocs_at_steady = g_allocCount;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    delivered_out = delivered;
    steady_allocs = counting ? g_allocCount - allocs_at_steady : 0;
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Typed-packet bounce endpoint (one per mesh node in use). */
struct BounceSink final : public atomsim::MeshSink
{
    void
    meshDeliver(atomsim::Packet &pkt) override
    {
        ++*delivered;
        if (*remaining == 0)
            return;
        --*remaining;
        atomsim::Packet &p = mesh->make(atomsim::MsgType::Data);
        p.receiver = peer;
        p.data = pkt.data;  // carry the line back
        mesh->send(self, peerNode, p);
    }

    atomsim::Mesh *mesh = nullptr;
    BounceSink *peer = nullptr;
    std::uint32_t self = 0;
    std::uint32_t peerNode = 0;
    std::uint64_t *delivered = nullptr;
    std::uint64_t *remaining = nullptr;
};

double
runPacketMesh(std::uint64_t budget, std::uint64_t &delivered_out,
              std::uint64_t &steady_allocs)
{
    EventQueue eq;
    atomsim::SystemConfig cfg;  // 4x8 mesh
    atomsim::StatSet stats;
    atomsim::Mesh mesh(eq, cfg, stats);

    std::uint64_t delivered = 0;
    std::uint64_t remaining = budget;
    const std::uint64_t warmup = budget / 10;

    std::vector<BounceSink> sinks(kMeshPairs * 2);
    for (std::uint32_t i = 0; i < kMeshPairs; ++i) {
        BounceSink &a = sinks[2 * i];
        BounceSink &b = sinks[2 * i + 1];
        a.mesh = b.mesh = &mesh;
        a.self = b.peerNode = i;
        b.self = a.peerNode = 31 - i;
        a.peer = &b;
        b.peer = &a;
        a.delivered = b.delivered = &delivered;
        a.remaining = b.remaining = &remaining;
    }

    std::uint64_t allocs_at_steady = 0;
    bool counting = false;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t i = 0; i < kMeshPairs; ++i) {
        --remaining;
        atomsim::Packet &p = mesh.make(atomsim::MsgType::Data);
        p.receiver = &sinks[2 * i + 1];
        mesh.send(sinks[2 * i].self, sinks[2 * i].peerNode, p);
    }
    while (eq.step()) {
        if (!counting && delivered >= warmup) {
            counting = true;
            allocs_at_steady = g_allocCount;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    delivered_out = delivered;
    steady_allocs = counting ? g_allocCount - allocs_at_steady : 0;
    return std::chrono::duration<double>(t1 - t0).count();
}

// --- L1/L2 miss path ---------------------------------------------------

/**
 * Drive a real System's L1s through miss churn: two cores ping-pong
 * ownership of a line set, so every store is a GetX/Upgrade with a
 * 3-hop forward and every load is a FwdGetS -- all through the MSHRs,
 * the directory and the mesh. Returns ops/sec; @p steady_allocs gets
 * the heap allocations observed after warmup (must be zero).
 */
double
runMissPath(std::uint64_t rounds, std::uint64_t &ops_out,
            std::uint64_t &steady_allocs, double &spill_ratio)
{
    atomsim::SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = atomsim::DesignKind::NonAtomic;
    atomsim::System sys(cfg, atomsim::Addr(16) * 1024 * 1024);
    EventQueue &eq = sys.eventQueue();

    constexpr std::uint32_t kLines = 32;
    const atomsim::Addr base = 0x40000;
    std::uint64_t ops = 0;
    const std::uint64_t value = 0xfeedULL;
    const auto *bytes = reinterpret_cast<const std::uint8_t *>(&value);

    auto churn = [&](std::uint64_t n) {
        for (std::uint64_t r = 0; r < n; ++r) {
            const atomsim::CoreId writer = r % 2;
            const atomsim::CoreId reader = 1 - writer;
            for (std::uint32_t i = 0; i < kLines; ++i) {
                const atomsim::Addr addr =
                    base + atomsim::Addr(i) * atomsim::kLineBytes;
                bool done = false;
                sys.l1(writer).store(addr, bytes, 8, [&] { done = true; });
                eq.run();
                bool read = false;
                sys.l1(reader).load(addr, [&] { read = true; });
                eq.run();
                ops += 2;
                if (!done || !read)
                    std::abort();
            }
        }
    };

    churn(4);  // warmup: fills, pools, directory control blocks
    const std::uint64_t allocs_before = g_allocCount;
    const std::uint64_t ops_before = ops;
    const auto t0 = std::chrono::steady_clock::now();
    churn(rounds);
    const auto t1 = std::chrono::steady_clock::now();
    steady_allocs = g_allocCount - allocs_before;
    ops_out = ops - ops_before;
    spill_ratio = eq.spillRatio();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t budget = 5'000'000;
    double min_speedup = 0.0;
    double min_mesh_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--events") && i + 1 < argc)
            budget = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
            min_speedup = std::strtod(argv[++i], nullptr);
        else if (!std::strcmp(argv[i], "--min-mesh-speedup") &&
                 i + 1 < argc)
            min_mesh_speedup = std::strtod(argv[++i], nullptr);
    }

    std::printf("DES kernel microbenchmark: %llu scheduled events, "
                "%u actors\n\n",
                (unsigned long long)budget, kActors);

    // Warm-up pass so all three kernels run against a hot allocator.
    std::uint64_t fired = 0;
    runLegacy(budget / 10, fired);
    runPooled(budget / 10, fired);
    runIntrusive(budget / 10, fired);

    std::uint64_t fired_legacy = 0, fired_pooled = 0, fired_intr = 0;
    const double t_legacy = runLegacy(budget, fired_legacy);
    const double t_pooled = runPooled(budget, fired_pooled);
    const double t_intr = runIntrusive(budget, fired_intr);

    if (fired_legacy != fired_pooled || fired_legacy != fired_intr) {
        std::fprintf(stderr,
                     "event-count mismatch: legacy=%llu pooled=%llu "
                     "intrusive=%llu\n",
                     (unsigned long long)fired_legacy,
                     (unsigned long long)fired_pooled,
                     (unsigned long long)fired_intr);
        return 2;
    }

    const double eps_legacy = double(fired_legacy) / t_legacy;
    const double eps_pooled = double(fired_pooled) / t_pooled;
    const double eps_intr = double(fired_intr) / t_intr;

    std::printf("  %-38s %8.1f M events/s\n",
                "legacy (std::function + prio-queue)", eps_legacy / 1e6);
    std::printf("  %-38s %8.1f M events/s   (%.2fx)\n",
                "pooled one-shots (calendar queue)", eps_pooled / 1e6,
                eps_pooled / eps_legacy);
    std::printf("  %-38s %8.1f M events/s   (%.2fx)\n",
                "intrusive TickEvents (calendar queue)", eps_intr / 1e6,
                eps_intr / eps_legacy);
    std::printf("  calendar wheel spill ratio: %.6f (%llu of the "
                "schedules crossed the %u-tick horizon)\n",
                g_pooledSpillRatio, (unsigned long long)g_pooledSpills,
                EventQueue::kWheelBuckets);

    if (min_speedup > 0.0 && eps_intr < min_speedup * eps_legacy) {
        std::fprintf(stderr,
                     "\nFAIL: intrusive kernel %.2fx < required %.2fx\n",
                     eps_intr / eps_legacy, min_speedup);
        return 1;
    }

    // --- mesh delivery path -------------------------------------------

    const std::uint64_t mesh_budget = budget / 5;
    std::printf("\nmesh delivery: %llu messages, %u ping-pong pairs "
                "on the 4x8 mesh\n\n",
                (unsigned long long)mesh_budget, kMeshPairs * 2);

    std::uint64_t d_closure = 0, d_packet = 0;
    std::uint64_t a_closure = 0, a_packet = 0;
    // Warm-up pass for both against a hot allocator / warm pools.
    runClosureMesh(mesh_budget / 10, d_closure, a_closure);
    runPacketMesh(mesh_budget / 10, d_packet, a_packet);

    const double t_closure =
        runClosureMesh(mesh_budget, d_closure, a_closure);
    const double t_packet =
        runPacketMesh(mesh_budget, d_packet, a_packet);
    const double mps_closure = double(d_closure) / t_closure;
    const double mps_packet = double(d_packet) / t_packet;

    std::printf("  %-38s %8.2f M msgs/s   (%llu steady-state allocs)\n",
                "closure mesh (std::function/post)", mps_closure / 1e6,
                (unsigned long long)a_closure);
    std::printf("  %-38s %8.2f M msgs/s   (%.2fx, %llu steady-state "
                "allocs)\n",
                "intrusive packet mesh (typed sinks)", mps_packet / 1e6,
                mps_packet / mps_closure, (unsigned long long)a_packet);

    if (a_packet != 0) {
        std::fprintf(stderr, "\nFAIL: packet mesh allocated %llu times "
                             "in steady state (expected 0)\n",
                     (unsigned long long)a_packet);
        return 1;
    }
    if (min_mesh_speedup > 0.0 &&
        mps_packet < min_mesh_speedup * mps_closure) {
        std::fprintf(stderr,
                     "\nFAIL: packet mesh %.2fx < required %.2fx\n",
                     mps_packet / mps_closure, min_mesh_speedup);
        return 1;
    }

    // --- L1/L2 miss path ----------------------------------------------

    std::uint64_t miss_ops = 0, miss_allocs = 0;
    double spill_ratio = 0.0;
    const std::uint64_t miss_rounds = 200;
    const double t_miss =
        runMissPath(miss_rounds, miss_ops, miss_allocs, spill_ratio);

    std::printf("\nmiss path: ownership ping-pong through MSHRs + "
                "directory + 3-hop forwards\n\n");
    std::printf("  %-38s %8.2f M ops/s    (%llu steady-state allocs)\n",
                "L1 miss churn (4-core system)",
                double(miss_ops) / t_miss / 1e6,
                (unsigned long long)miss_allocs);
    std::printf("  calendar wheel spill ratio: %.6f "
                "(%s far-future schedules)\n",
                spill_ratio,
                spill_ratio == 0.0 ? "no" : "some");

    if (miss_allocs != 0) {
        std::fprintf(stderr, "\nFAIL: miss path allocated %llu times in "
                             "steady state (expected 0)\n",
                     (unsigned long long)miss_allocs);
        return 1;
    }
    return 0;
}
