/**
 * @file
 * Figure 6: store-queue-full cycles of ATOM-OPT and NON-ATOMIC
 * normalized to BASE, small datasets (the paper omits sdg here).
 *
 * Paper reference points: ATOM-OPT cuts SQ-full cycles by 21% on
 * average (queue -43%, rbtree -35%, sps -1%) and sits only ~10% above
 * NON-ATOMIC.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.hh"

using namespace atomsim;
using namespace atomsim::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const MicroParams params = microParams(false);
    const char *benches[] = {"btree", "hash", "queue", "rbtree", "sps"};
    const DesignKind designs[] = {DesignKind::Base, DesignKind::AtomOpt,
                                  DesignKind::NonAtomic};

    std::printf("\n=== Figure 6: SQ-full cycles normalized to BASE "
                "(small datasets) ===\n");
    ReportTable table({"bench", "BASE", "ATOM-OPT", "NON-ATOMIC",
                       "BASE cycles"});
    std::map<DesignKind, std::vector<double>> norm;

    for (const char *name : benches) {
        std::map<DesignKind, RunResult> res;
        for (DesignKind d : designs)
            res[d] = runCell(name, d, params);
        const double base = double(res[DesignKind::Base].sqFullCycles);
        std::vector<std::string> row{name};
        for (DesignKind d : designs) {
            const double n =
                base > 0 ? double(res[d].sqFullCycles) / base : 0.0;
            row.push_back(ReportTable::num(n));
            norm[d].push_back(n > 0 ? n : 1e-3);
        }
        row.push_back(ReportTable::num(base, 0));
        table.addRow(std::move(row));
    }
    std::vector<std::string> grow{"gmean"};
    for (DesignKind d : designs)
        grow.push_back(ReportTable::num(geomean(norm[d])));
    grow.push_back("");
    table.addRow(std::move(grow));
    table.print();
    std::printf("paper:  ATOM-OPT ~0.79 of BASE on average; "
                "queue 0.57, rbtree 0.65, sps 0.99\n");

    benchmark::RegisterBenchmark(
        "fig6/rbtree/sq_full", [&](benchmark::State &st) {
            for (auto _ : st) {
                const RunResult r =
                    runCell("rbtree", DesignKind::AtomOpt, params);
                st.counters["sq_full_cycles"] = double(r.sqFullCycles);
            }
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
