/**
 * @file
 * Table IV: TPC-C new-order throughput normalized to BASE, 32
 * terminals, wait times removed.
 *
 * Paper reference points: ATOM 1.58x, ATOM-OPT 1.60x, REDO 1.47x over
 * BASE; ~0.02% of log operations source-logged; ATOM-OPT cuts SQ-full
 * cycles by 42%.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.hh"

using namespace atomsim;
using namespace atomsim::bench;

namespace
{

RunResult
runTpcc(DesignKind design)
{
    SystemConfig cfg;
    cfg.design = design;
    // Simulation-scale run: 8 terminals (vs the paper's 32) and
    // reduced table cardinalities keep each design's simulation in
    // the minutes range; the design comparison is unaffected (all
    // designs share the workload). Documented in EXPERIMENTS.md.
    cfg.numCores = 8;
    cfg.l2Tiles = 8;
    cfg.meshRows = 2;
    cfg.ausPerMc = 8;
    // TPC-C new-order writes ~10x more lines per update than the
    // micro-benchmarks, and BASE burns a whole record per entry: the
    // OS log reservation must scale with demand (Section IV-E).
    cfg.bucketsPerMc = 2048;
    tpcc::ScaleParams scale;  // SF=1: 1 warehouse, 10 districts
    scale.customersPerDistrict = 32;
    scale.items = 256;
    TpccWorkload workload(scale);
    Runner runner(cfg, workload, /*txns_per_core=*/5);
    runner.setUp();
    return runner.run(Tick(400000) * 1000 * 1000);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    std::printf("\n=== Table IV: TPC-C new-order throughput "
                "normalized to BASE ===\n");
    const DesignKind designs[] = {DesignKind::Base, DesignKind::Atom,
                                  DesignKind::AtomOpt, DesignKind::Redo};
    std::map<DesignKind, RunResult> res;
    for (DesignKind d : designs) {
        res[d] = runTpcc(d);
        std::printf("  ran %s: %.0f txn/s\n", designName(d),
                    res[d].txnPerSec);
        std::fflush(stdout);
    }

    const double base = res[DesignKind::Base].txnPerSec;
    ReportTable table({"design", "normalized", "txn/s", "sq_full vs BASE",
                       "% source logged"});
    for (DesignKind d : designs) {
        const RunResult &r = res[d];
        const double sq_rel =
            res[DesignKind::Base].sqFullCycles
                ? double(r.sqFullCycles) /
                      double(res[DesignKind::Base].sqFullCycles)
                : 0.0;
        const double src_pct =
            r.logEntries
                ? 100.0 * double(r.sourceLogged) / double(r.logEntries)
                : 0.0;
        table.addRow({designName(d),
                      ReportTable::num(r.txnPerSec / base),
                      ReportTable::num(r.txnPerSec, 0),
                      ReportTable::num(sq_rel),
                      ReportTable::num(src_pct, 3)});
    }
    table.print();
    std::printf("paper:  ATOM 1.58, ATOM-OPT 1.60, REDO 1.47 (vs "
                "BASE); ATOM-OPT SQ-full 0.58 of BASE; 0.02%% source "
                "logged\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
