/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Each bench binary regenerates one table or figure of the paper:
 * it runs the relevant configurations, prints the paper-style rows
 * (normalized the same way the paper normalizes), and registers
 * google-benchmark entries that report the measured throughput.
 */

#ifndef ATOMSIM_BENCH_BENCH_COMMON_HH
#define ATOMSIM_BENCH_BENCH_COMMON_HH

#include <memory>
#include <string>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "net/mesh.hh"
#include "sim/logging.hh"
#include "workloads/btree_workload.hh"
#include "workloads/hash_workload.hh"
#include "workloads/queue_workload.hh"
#include "workloads/rbtree_workload.hh"
#include "workloads/sdg_workload.hh"
#include "workloads/sps_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace atomsim
{
namespace bench
{

/**
 * FNV-1a hash of the (tick, node, kind) mesh delivery stream -- the
 * byte-identity fingerprint the always-built benches
 * (parallel_scaling, hybrid_sweep) compare across shard counts. One
 * definition here so the two benches' hashes stay comparable; the
 * golden tests use the same mixing in golden::TraceHasher.
 */
class StreamHashTracer : public Mesh::Tracer
{
  public:
    void
    onDeliver(Tick tick, std::uint32_t node, MsgType type) override
    {
        mix(tick);
        mix(node);
        mix(std::uint64_t(type));
    }

    std::uint64_t hash = 14695981039346656037ull;

  private:
    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 1099511628211ull;
        }
    }
};

/** The six micro-benchmarks in the paper's figure order. */
inline const char *kMicroNames[] = {"btree", "hash",   "queue",
                                    "rbtree", "sdg",   "sps"};

/** Construct a micro-benchmark by name. */
inline std::unique_ptr<Workload>
makeMicro(const std::string &name, const MicroParams &params)
{
    // sps uses a working set larger than the caches (random swaps over
    // a big array); the paper's flat sps bars imply a miss-dominated
    // array, not an L1-resident one.
    MicroParams p = params;
    if (name == "sps")
        p.initialItems = params.entryBytes >= 4096 ? 512 : 2048;
    if (name == "hash")
        return std::make_unique<HashWorkload>(p);
    if (name == "queue")
        return std::make_unique<QueueWorkload>(p);
    if (name == "rbtree")
        return std::make_unique<RbTreeWorkload>(p);
    if (name == "btree")
        return std::make_unique<BTreeWorkload>(p);
    if (name == "sdg")
        return std::make_unique<SdgWorkload>(p);
    if (name == "sps")
        return std::make_unique<SpsWorkload>(p);
    return nullptr;
}

/** Paper dataset-size presets. */
inline MicroParams
microParams(bool large)
{
    MicroParams p;
    if (large) {
        p.entryBytes = 4096;
        p.initialItems = 24;
        p.txnsPerCore = 10;
    } else {
        p.entryBytes = 512;
        p.initialItems = 48;
        p.txnsPerCore = 20;
    }
    return p;
}

/** Run one (workload, design) cell on the full Table I machine. */
inline RunResult
runCell(const std::string &workload_name, DesignKind design,
        const MicroParams &params, SystemConfig base_cfg = SystemConfig{})
{
    SystemConfig cfg = base_cfg;
    cfg.design = design;
    auto workload = makeMicro(workload_name, params);
    Runner runner(cfg, *workload, params.txnsPerCore);
    runner.setUp();
    return runner.run(Tick(200000) * 1000 * 1000);
}

} // namespace bench
} // namespace atomsim

#endif // ATOMSIM_BENCH_BENCH_COMMON_HH
