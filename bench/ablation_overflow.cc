/**
 * @file
 * Ablation (Section IV-E): structural and log overflow.
 *
 * Structural overflow: fewer AUS than cores makes Atomic_Begin stall
 * until a slot frees (no deadlock, bounded throughput loss).
 * Log overflow: a small initial OS log reservation triggers overflow
 * interrupts that map more pages; forward progress is preserved at an
 * interrupt-latency cost.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"

using namespace atomsim;
using namespace atomsim::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    MicroParams params = microParams(false);
    params.txnsPerCore = 12;

    std::printf("\n=== Ablation: structural overflow (AUS count) ===\n");
    {
        ReportTable table({"AUS slots", "txn/s", "normalized",
                           "stall cycles"});
        double ref = 0.0;
        for (std::uint32_t aus : {32u, 16u, 8u, 4u}) {
            SystemConfig cfg;
            cfg.ausPerMc = aus;
            auto workload = makeMicro("hash", params);
            Runner runner(cfg, *workload, params.txnsPerCore);
            runner.setUp();
            const RunResult r = runner.run(Tick(200000) * 1000 * 1000);
            const std::uint64_t stalls =
                runner.system().ausPool()->structuralStallCycles();
            if (ref == 0.0)
                ref = r.txnPerSec;
            table.addRow({std::to_string(aus),
                          ReportTable::num(r.txnPerSec, 0),
                          ReportTable::num(r.txnPerSec / ref),
                          std::to_string(stalls)});
        }
        table.print();
        std::printf("expectation: throughput degrades gracefully as "
                    "updates serialize on AUS slots; no deadlock\n");
    }

    std::printf("\n=== Ablation: log overflow (initial OS buckets) "
                "===\n");
    {
        ReportTable table({"initial buckets/MC", "txn/s", "normalized",
                           "OS interrupts"});
        double ref = 0.0;
        for (std::uint32_t initial : {0u, 16u, 4u, 2u}) {
            SystemConfig cfg;
            cfg.osInitialBucketsPerMc = initial;
            auto workload = makeMicro("queue", params);
            Runner runner(cfg, *workload, params.txnsPerCore);
            runner.setUp();
            const RunResult r = runner.run(Tick(200000) * 1000 * 1000);
            const std::uint64_t interrupts =
                runner.system().logSpace().overflowInterrupts();
            if (ref == 0.0)
                ref = r.txnPerSec;
            table.addRow({initial == 0 ? "all (256)"
                                       : std::to_string(initial),
                          ReportTable::num(r.txnPerSec, 0),
                          ReportTable::num(r.txnPerSec / ref),
                          std::to_string(interrupts)});
        }
        table.print();
        std::printf("expectation: overflow interrupts appear as the "
                    "reservation shrinks; all runs complete\n");
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
