/**
 * @file
 * Multi-tenant serving sweep (plain chrono; always builds).
 *
 * Runs the zipfian KV serving workload (src/workloads/kv_workload)
 * across the skew x tenants x mesh-size grid and reports per-tenant
 * throughput and p50/p95/p99 transaction latency per class
 * (read/update/insert). The large-mesh rows use the 256- and
 * 1024-tile presets (SystemConfig::makeMeshPreset).
 *
 * `--smoke` runs the CI subset: the 256-tile preset with 2 tenants and
 * skew on, plus the 1024-tile scaling gates -- System construction at
 * the 1024-tile preset must finish inside a generous wall budget with
 * O(1) amortized allocations per registered stat counter, and stat
 * dump/aggregation over the full 1024-tile counter population must
 * stay in bounds. These gates pin the fixes for the structures that
 * were O(cores^2)-ish at 1024 tiles (ordered-map stat registration,
 * the dense lookahead matrix); the binary exits non-zero if any gate
 * fails.
 *
 * `--stats-json <path>` exports one row per run with a per-tenant
 * array: {"tenant": N, "commits": ..., "aus_acquires": ...,
 * "log_writes": ..., "read"/"update"/"insert":
 * {"count", "p50", "p95", "p99"}}.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "workloads/kv_workload.hh"

namespace
{
// Relaxed atomic: sharded worker threads allocate too.
std::atomic<std::uint64_t> g_allocCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace atomsim;

JsonWriter g_json;
bool g_jsonOpen = false;

struct SweepPoint
{
    std::uint32_t tiles;     //!< 32 (Table I), 256 or 1024 (presets)
    std::uint32_t tenants;   //!< 0 = single-tenant
    double theta;            //!< zipfian skew (0 = uniform)
    std::uint32_t txnsPerCore;
};

SystemConfig
configFor(const SweepPoint &p)
{
    SystemConfig cfg = p.tiles == 32 ? SystemConfig{}
                                     : SystemConfig::makeMeshPreset(p.tiles);
    cfg.numTenants = p.tenants;
    return cfg;
}

KvParams
paramsFor(const SweepPoint &p)
{
    KvParams kv;
    kv.numTenants = p.tenants;
    kv.theta = p.theta;
    kv.txnsPerCore = p.txnsPerCore;
    // Keep the per-tenant key population meaningful even when many
    // tenants split the machine.
    kv.keysPerTenant = 1024;
    kv.insertsPerCore = 8;
    return kv;
}

/** One sweep run; prints the row and appends the JSON record. */
void
runPoint(const SweepPoint &p)
{
    const SystemConfig cfg = configFor(p);
    KvWorkload workload(paramsFor(p));

    Runner runner(cfg, workload, p.txnsPerCore);
    runner.setUp();
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = runner.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const StatSet &stats = std::as_const(runner.system()).stats();
    std::printf("%5u tiles  %2u tenants  theta %.2f  %8llu txns  "
                "%10llu cycles  %8.1f ms wall\n",
                p.tiles, cfg.tenantSlots(), p.theta,
                (unsigned long long)r.txns, (unsigned long long)r.cycles,
                wall_ms);
    for (std::uint32_t t = 0; t < cfg.tenantSlots(); ++t) {
        const std::string g = "tenant" + std::to_string(t);
        std::printf(
            "    tenant %u: %llu commits  read p50/p95/p99 = "
            "%llu/%llu/%llu  update = %llu/%llu/%llu\n",
            t, (unsigned long long)stats.value(g, "commits"),
            (unsigned long long)runner.latency(t, 0).percentile(0.50),
            (unsigned long long)runner.latency(t, 0).percentile(0.95),
            (unsigned long long)runner.latency(t, 0).percentile(0.99),
            (unsigned long long)runner.latency(t, 1).percentile(0.50),
            (unsigned long long)runner.latency(t, 1).percentile(0.95),
            (unsigned long long)runner.latency(t, 1).percentile(0.99));
    }

    if (!g_jsonOpen)
        return;
    g_json.beginObject();
    g_json.kv("tiles", p.tiles);
    g_json.kv("tenants", cfg.tenantSlots());
    g_json.kv("theta", p.theta);
    g_json.kv("txns_per_core", p.txnsPerCore);
    g_json.kv("txns", r.txns);
    g_json.kv("cycles", std::uint64_t(r.cycles));
    g_json.kv("txn_per_sec", r.txnPerSec);
    g_json.kv("wall_ms", wall_ms);
    g_json.key("per_tenant");
    g_json.beginArray();
    for (std::uint32_t t = 0; t < cfg.tenantSlots(); ++t) {
        const std::string g = "tenant" + std::to_string(t);
        g_json.beginObject();
        g_json.kv("tenant", t);
        g_json.kv("commits", stats.value(g, "commits"));
        g_json.kv("aus_acquires", stats.value(g, "aus_acquires"));
        g_json.kv("log_writes", stats.value(g, "log_writes"));
        for (std::uint16_t cls = 0; cls < KvWorkload::kNumClasses; ++cls)
            writeLatencyObject(g_json, KvWorkload::className(cls),
                               runner.latency(t, cls));
        g_json.endObject();
    }
    g_json.endArray();
    g_json.endObject();
}

/**
 * 1024-tile scaling gates: construction wall time, amortized
 * allocations per registered counter, and stat dump/aggregation time
 * over the full counter population. Budgets are deliberately generous
 * (CI machines vary); the pre-fix super-linear structures blew them by
 * orders of magnitude.
 */
bool
scalingGates()
{
    std::printf("\n-- 1024-tile scaling gates --\n");
    bool ok = true;

    const SystemConfig cfg = SystemConfig::makeMeshPreset(1024);
    const std::uint64_t a0 = g_allocCount.load();
    const auto t0 = std::chrono::steady_clock::now();
    System sys(cfg, Addr(512) * 1024 * 1024);
    const auto t1 = std::chrono::steady_clock::now();
    const double build_s = std::chrono::duration<double>(t1 - t0).count();
    const std::uint64_t build_allocs = g_allocCount.load() - a0;

    const auto dump = std::as_const(sys).stats().dump();
    const std::uint64_t counters = dump.size();
    const auto t2 = std::chrono::steady_clock::now();
    const double dump_s = std::chrono::duration<double>(t2 - t1).count();

    // Aggregation over the full population (what RunResult::collect
    // does a dozen times per run).
    const std::uint64_t live =
        std::as_const(sys).stats().sum("dir", "ctrl_blocks_live");
    (void)live;
    const auto t3 = std::chrono::steady_clock::now();
    const double sum_s = std::chrono::duration<double>(t3 - t2).count();

    std::printf("construction: %.2f s, %llu allocs, %llu counters "
                "(%.1f allocs/counter)\n",
                build_s, (unsigned long long)build_allocs,
                (unsigned long long)counters,
                double(build_allocs) / double(counters));
    std::printf("stat dump: %.3f s; prefix aggregation: %.3f s\n",
                dump_s, sum_s);

    if (build_s > 30.0) {
        std::printf("!! 1024-tile construction took %.1f s (> 30 s "
                    "budget)\n", build_s);
        ok = false;
    }
    // The machine itself allocates per component; registration must
    // not add more than a constant number of allocations per counter
    // on top (the ordered map's rebalancing node churn plus per-node
    // key copies pushed this way up at this population).
    if (counters > 0 && build_allocs / counters > 512) {
        std::printf("!! %.0f allocations per registered counter\n",
                    double(build_allocs) / double(counters));
        ok = false;
    }
    if (dump_s > 5.0 || sum_s > 5.0) {
        std::printf("!! stat dump/aggregation over %llu counters too "
                    "slow (%.2f s / %.2f s)\n",
                    (unsigned long long)counters, dump_s, sum_s);
        ok = false;
    }
    std::printf("scaling gates: %s\n", ok ? "OK" : "FAIL");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    std::printf("serving_sweep: zipfian multi-tenant KV serving%s\n",
                smoke ? " (smoke subset)" : "");

    const std::string json_path = statsJsonPathFromArgs(argc, argv);
    g_jsonOpen = !json_path.empty();
    if (g_jsonOpen) {
        g_json.beginObject();
        g_json.kv("bench", "serving_sweep");
        g_json.kv("smoke", smoke);
        g_json.key("rows");
        g_json.beginArray();
    }

    if (smoke) {
        // CI subset: the 256-tile preset, 2 tenants, YCSB skew.
        runPoint({256, 2, 0.99, 2});
    } else {
        // Skew x tenants on the Table-I machine (cheap rows first).
        for (double theta : {0.0, 0.99})
            for (std::uint32_t tenants : {0u, 4u})
                runPoint({32, tenants, theta, 8});
        // Large-mesh presets: skewed multi-tenant serving.
        runPoint({256, 2, 0.99, 2});
        runPoint({256, 8, 0.99, 2});
        runPoint({1024, 8, 0.99, 1});
    }

    if (g_jsonOpen)
        g_json.endArray();

    const bool gates_ok = scalingGates();

    if (g_jsonOpen) {
        g_json.kv("scaling_gates_ok", gates_ok);
        g_json.endObject();
        if (!g_json.writeFile(json_path)) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", json_path.c_str());
    }
    return gates_ok ? 0 : 1;
}
