/**
 * @file
 * Figure 8: rbtree (small) transaction throughput of ATOM-OPT vs REDO
 * while NVM latency sweeps 1x..40x DRAM latency.
 *
 * Paper reference points: at DRAM-like latency REDO wins (its many log
 * writes absorb quickly and it never flushes data at commit); as
 * latency grows REDO degrades super-linearly under its bandwidth
 * demand while ATOM-OPT degrades roughly linearly, crossing over by
 * 5-10x.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"

using namespace atomsim;
using namespace atomsim::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const MicroParams params = microParams(false);

    // DRAM-equivalent latencies: the paper's NVM default (360/240) is
    // 10x DRAM write latency, so 1x = 36/24 core cycles.
    const struct
    {
        const char *label;
        Cycles write;
        Cycles read;
    } points[] = {
        {"1x", 36, 24},   {"5x", 180, 120}, {"10x", 360, 240},
        {"20x", 720, 480}, {"40x", 1440, 960},
    };

    std::printf("\n=== Figure 8: rbtree throughput vs NVM latency "
                "(txn/s) ===\n");
    ReportTable table({"latency", "ATOM-OPT", "REDO", "REDO/ATOM-OPT"});
    for (const auto &pt : points) {
        SystemConfig cfg;
        cfg.nvmWriteLatency = pt.write;
        cfg.nvmReadLatency = pt.read;
        const RunResult opt =
            runCell("rbtree", DesignKind::AtomOpt, params, cfg);
        const RunResult redo =
            runCell("rbtree", DesignKind::Redo, params, cfg);
        table.addRow({pt.label, ReportTable::num(opt.txnPerSec, 0),
                      ReportTable::num(redo.txnPerSec, 0),
                      ReportTable::num(redo.txnPerSec / opt.txnPerSec)});
    }
    table.print();
    std::printf("paper:  REDO above ATOM-OPT at 1x, crossing below as "
                "latency grows; ATOM-OPT degrades ~linearly\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
