/**
 * @file
 * Figure 7: REDO vs ATOM-OPT transaction throughput, normalized to
 * ATOM-OPT, in the single-channel and two-channel (-2C, dedicated log
 * channel) memory configurations; small datasets (the paper omits sdg).
 *
 * Paper reference points: REDO reaches ~22% of ATOM-OPT's throughput
 * with one channel and ~30% with two (log reads stop interfering with
 * demand reads); REDO generates ~19x more log entries.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_common.hh"

using namespace atomsim;
using namespace atomsim::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const MicroParams params = microParams(false);
    const char *benches[] = {"btree", "hash", "queue", "rbtree", "sps"};

    struct Variant
    {
        const char *label;
        DesignKind design;
        std::uint32_t channels;
    };
    const Variant variants[] = {
        {"ATOM-OPT", DesignKind::AtomOpt, 1},
        {"ATOM-OPT-2C", DesignKind::AtomOpt, 2},
        {"REDO", DesignKind::Redo, 1},
        {"REDO-2C", DesignKind::Redo, 2},
    };

    std::printf("\n=== Figure 7: throughput normalized to ATOM-OPT "
                "(small datasets) ===\n");
    ReportTable table({"bench", "ATOM-OPT", "ATOM-OPT-2C", "REDO",
                       "REDO-2C", "redo/atom entries"});
    std::map<const char *, std::vector<double>> norm;

    for (const char *name : benches) {
        std::map<const char *, RunResult> res;
        for (const Variant &v : variants) {
            SystemConfig cfg;
            cfg.channelsPerMc = v.channels;
            res[v.label] = runCell(name, v.design, params, cfg);
        }
        const double ref = res["ATOM-OPT"].txnPerSec;
        std::vector<std::string> row{name};
        for (const Variant &v : variants) {
            const double n = res[v.label].txnPerSec / ref;
            row.push_back(ReportTable::num(n));
            norm[v.label].push_back(n);
        }
        const double ratio =
            res["ATOM-OPT"].logEntries
                ? double(res["REDO"].logEntries) /
                      double(res["ATOM-OPT"].logEntries)
                : 0.0;
        row.push_back(ReportTable::num(ratio, 1) + "x");
        table.addRow(std::move(row));
    }
    std::vector<std::string> grow{"gmean"};
    for (const Variant &v : variants)
        grow.push_back(ReportTable::num(geomean(norm[v.label])));
    grow.push_back("");
    table.addRow(std::move(grow));
    table.print();
    std::printf("paper:  REDO ~0.22 of ATOM-OPT (1 channel), ~0.30 "
                "with a dedicated log channel; ~19x log entries\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
