/**
 * @file
 * Flash-tier destage sweep (plain chrono; always builds).
 *
 * Runs the hash microbenchmark with the SSD tier enabled across the
 * durability-policy axis (off / strict / balanced / eventual) and
 * reports destage bandwidth, promotion churn and truncation-wait
 * counts per policy, so the cost of each durability point is visible
 * side by side with the tier-off baseline.
 *
 * `--smoke` runs the CI subset: one workload size across all four
 * policies, plus the component gates -- the SQ/CQ hot path must make
 * zero steady-state heap allocations once the command pool and rings
 * are warm (the rings are fixed-capacity and the nodes pooled, so any
 * allocation is a regression), a flash read must cost more than an
 * NVM read (the tier is only coherent if forwarding is the slow
 * path), and the eventual policy's volatile staging window must stay
 * within its configured bound. The binary exits non-zero if any gate
 * fails.
 *
 * `--stats-json <path>` exports one row per run:
 * {"policy": ..., "txns": ..., "cycles": ..., "destage_pages": ...,
 *  "pages_per_mcycle": ..., ...} plus the gate verdicts.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "mem/ssd_device.hh"
#include "workloads/hash_workload.hh"

namespace
{
// Relaxed atomic: sharded worker threads allocate too.
std::atomic<std::uint64_t> g_allocCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace atomsim;

JsonWriter g_json;
bool g_jsonOpen = false;

struct SweepPoint
{
    /** 0 = tier off, else DurabilityPolicy. */
    std::uint32_t durability;
    std::uint32_t initialItems;
    std::uint32_t txnsPerCore;
    std::uint64_t seed;
};

DurabilityPolicy
policyOf(std::uint32_t durability)
{
    return durability == 1   ? DurabilityPolicy::Strict
           : durability == 2 ? DurabilityPolicy::Balanced
                             : DurabilityPolicy::Eventual;
}

const char *
policyLabel(const SweepPoint &p)
{
    return p.durability == 0 ? "off"
                             : durabilityPolicyName(policyOf(p.durability));
}

SystemConfig
configFor(const SweepPoint &p)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.l2Tiles = 4;
    cfg.meshRows = 2;
    cfg.ausPerMc = 4;
    cfg.design = DesignKind::Atom;
    cfg.seed = p.seed;
    if (p.durability != 0) {
        cfg.ssdTier = true;
        cfg.durabilityPolicy = policyOf(p.durability);
        // Destage aggressively (cold immediately at truncation) with
        // short flash latencies, so these small runs drive the whole
        // pipeline including promotion churn on re-access.
        cfg.ssdColdPageWatermark = 0;
        cfg.ssdFlashPagesPerMc = 256;
        cfg.ssdMaxDestageBacklog = 4;
        cfg.ssdReadLatency = 2000;
        cfg.ssdProgramLatency = 5000;
    }
    return cfg;
}

/** One sweep run; prints the row and appends the JSON record. */
void
runPoint(const SweepPoint &p)
{
    const SystemConfig cfg = configFor(p);
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = p.initialItems;
    params.txnsPerCore = p.txnsPerCore;
    params.seed = p.seed;
    HashWorkload workload(params);

    Runner runner(cfg, workload, p.txnsPerCore, Addr(64) * 1024 * 1024);
    runner.setUp();
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = runner.run();
    // The last truncations queue destages whose flash programs are
    // still in flight when the final core finishes: drain them so the
    // destage counters describe the whole run.
    EventQueue &eq = runner.system().eventQueue();
    eq.run(eq.now() + 1000 * 1000);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    const StatSet &stats = std::as_const(runner.system()).stats();
    const std::uint64_t pages = stats.sum("mc", "destage_pages");
    const std::uint64_t log_pages = stats.sum("mc", "destage_log_pages");
    const std::uint64_t promotions =
        stats.sum("mc", "destage_promotions");
    const std::uint64_t trunc_waits =
        stats.sum("mc", "destage_trunc_waits");
    const double pages_per_mcycle =
        r.cycles > 0 ? double(pages) * 1e6 / double(r.cycles) : 0.0;

    std::printf("%-8s  i%-3u t%-3u  %6llu txns  %9llu cycles  "
                "%5llu pages (%5.1f /Mcyc)  %4llu log  %4llu promo  "
                "%4llu waits  %6.1f ms\n",
                policyLabel(p), p.initialItems, p.txnsPerCore,
                (unsigned long long)r.txns, (unsigned long long)r.cycles,
                (unsigned long long)pages, pages_per_mcycle,
                (unsigned long long)log_pages,
                (unsigned long long)promotions,
                (unsigned long long)trunc_waits, wall_ms);

    if (!g_jsonOpen)
        return;
    g_json.beginObject();
    g_json.kv("policy", policyLabel(p));
    g_json.kv("initial_items", p.initialItems);
    g_json.kv("txns_per_core", p.txnsPerCore);
    g_json.kv("seed", p.seed);
    g_json.kv("txns", r.txns);
    g_json.kv("cycles", std::uint64_t(r.cycles));
    g_json.kv("wall_ms", wall_ms);
    g_json.kv("destage_pages", pages);
    g_json.kv("destage_log_pages", log_pages);
    g_json.kv("destage_promotions", promotions);
    g_json.kv("destage_cancelled", stats.sum("mc", "destage_cancelled"));
    g_json.kv("destage_trunc_waits", trunc_waits);
    g_json.kv("destage_stalls", stats.sum("mc", "destage_stalls"));
    g_json.kv("ssd_reads", stats.sum("ssd", "reads"));
    g_json.kv("ssd_programs", stats.sum("ssd", "programs"));
    g_json.kv("staged_acks", stats.sum("design", "staged_acks"));
    g_json.kv("pages_per_mcycle", pages_per_mcycle);
    g_json.endObject();
}

/**
 * SQ/CQ hot-path allocation gate: once the command pool and the event
 * wheel are warm, a submit/doorbell/reap cycle must not touch the
 * heap. The rings are fixed-capacity arrays and the command nodes
 * pooled intrusive objects, so a single steady-state allocation means
 * someone reintroduced a per-command container or a heap-backed
 * callback.
 */
bool
hotPathAllocGate()
{
    SystemConfig cfg;
    cfg.ssdTier = true;
    cfg.ssdChannels = 2;
    cfg.ssdDiesPerChannel = 2;
    cfg.ssdQueueDepth = 8;
    cfg.ssdFlashPagesPerMc = 64;
    cfg.ssdReadLatency = 2000;
    cfg.ssdProgramLatency = 5000;

    EventQueue eq;
    StatSet stats;
    SsdDevice ssd(0, eq, cfg, stats);

    std::uint32_t completions = 0;
    auto batch = [&](std::uint8_t fill) {
        // Fill both queue pairs: writes then reads of the same pages.
        for (std::uint32_t qp = 0; qp < cfg.ssdChannels; ++qp) {
            for (std::uint32_t i = 0; i < cfg.ssdQueueDepth / 2; ++i) {
                SsdDevice::Cmd *w = ssd.acquireCmd();
                w->isWrite = true;
                w->flashPage = qp + cfg.ssdChannels * i;
                w->data.fill(fill);
                w->done = [&completions](SsdDevice::Cmd &) {
                    ++completions;
                };
                if (!ssd.submit(qp, w))
                    ssd.releaseCmd(w);
                SsdDevice::Cmd *r = ssd.acquireCmd();
                r->isWrite = false;
                r->flashPage = qp + cfg.ssdChannels * i;
                r->done = [&completions](SsdDevice::Cmd &) {
                    ++completions;
                };
                if (!ssd.submit(qp, r))
                    ssd.releaseCmd(r);
            }
            ssd.ringDoorbell(qp);
        }
        eq.run();
    };

    // Warm-up: grows the pool to steady state and touches every event
    // wheel bucket the poll loop will ever use.
    batch(0x11);
    batch(0x22);

    const std::uint64_t a0 = g_allocCount.load();
    const std::uint32_t before = completions;
    for (std::uint32_t round = 0; round < 8; ++round)
        batch(std::uint8_t(0x30 + round));
    const std::uint64_t steady_allocs = g_allocCount.load() - a0;

    std::printf("hot path: %u completions, %llu steady-state allocs\n",
                completions - before,
                (unsigned long long)steady_allocs);
    if (completions == before) {
        std::printf("!! hot-path gate ran no commands\n");
        return false;
    }
    if (steady_allocs != 0) {
        std::printf("!! SQ/CQ hot path allocated %llu times in steady "
                    "state (expected 0)\n",
                    (unsigned long long)steady_allocs);
        return false;
    }
    return true;
}

/**
 * Latency-ordering gate: a flash read (sense + bus transfer) must
 * cost more than an NVM read at the default timing parameters --
 * forwarding a destaged page through the SSD read path only models a
 * tiering cost if the tier it forwards to is actually slower.
 */
bool
latencyOrderGate()
{
    SystemConfig cfg;
    cfg.ssdTier = true;

    EventQueue eq;
    StatSet stats;
    SsdDevice ssd(0, eq, cfg, stats);

    SsdDevice::Cmd *w = ssd.acquireCmd();
    w->isWrite = true;
    w->flashPage = 3;
    w->data.fill(0x5C);
    if (!ssd.submit(ssd.qpOf(3), w))
        return false;
    ssd.ringDoorbell(ssd.qpOf(3));
    eq.run();

    const Tick start = eq.now();
    Tick done_at = 0;
    SsdDevice::Cmd *r = ssd.acquireCmd();
    r->isWrite = false;
    r->flashPage = 3;
    r->done = [&eq, &done_at](SsdDevice::Cmd &) { done_at = eq.now(); };
    if (!ssd.submit(ssd.qpOf(3), r))
        return false;
    ssd.ringDoorbell(ssd.qpOf(3));
    eq.run();

    const Tick flash_read = done_at - start;
    std::printf("flash read: %llu cycles; NVM read: %llu cycles\n",
                (unsigned long long)flash_read,
                (unsigned long long)cfg.nvmReadLatency);
    if (done_at == 0 || flash_read <= Tick(cfg.nvmReadLatency)) {
        std::printf("!! flash read (%llu) not slower than NVM read "
                    "(%llu)\n",
                    (unsigned long long)flash_read,
                    (unsigned long long)cfg.nvmReadLatency);
        return false;
    }
    return true;
}

/**
 * Staging-window gate: under the eventual policy some commits ack
 * from the volatile staging window, and its occupancy never exceeds
 * the configured bound (that bound is the policy's whole loss
 * guarantee -- see README, "Flash tier & durability policies").
 */
bool
stagingWindowGate()
{
    const SweepPoint p{3, 32, 12, 7};
    const SystemConfig cfg = configFor(p);
    MicroParams params;
    params.entryBytes = 512;
    params.initialItems = p.initialItems;
    params.txnsPerCore = p.txnsPerCore;
    params.seed = p.seed;
    HashWorkload workload(params);

    Runner runner(cfg, workload, p.txnsPerCore, Addr(64) * 1024 * 1024);
    runner.setUp();
    runner.run();

    const std::uint64_t acks = std::as_const(runner.system())
                                   .stats()
                                   .sum("design", "staged_acks");
    const std::uint32_t peak =
        runner.system().designContext().stagedPeak();
    std::printf("staging window: %llu staged acks, peak %u / bound "
                "%u\n",
                (unsigned long long)acks, peak, cfg.ssdStagingWindow);
    if (acks == 0) {
        std::printf("!! eventual policy staged no commits\n");
        return false;
    }
    if (peak > cfg.ssdStagingWindow) {
        std::printf("!! staging occupancy %u exceeded the %u bound\n",
                    peak, cfg.ssdStagingWindow);
        return false;
    }
    return true;
}

bool
componentGates()
{
    std::printf("\n-- flash-tier component gates --\n");
    bool ok = true;
    ok = hotPathAllocGate() && ok;
    ok = latencyOrderGate() && ok;
    ok = stagingWindowGate() && ok;
    std::printf("component gates: %s\n", ok ? "OK" : "FAIL");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    std::printf("ssd_sweep: destage bandwidth vs durability policy%s\n",
                smoke ? " (smoke subset)" : "");

    const std::string json_path = statsJsonPathFromArgs(argc, argv);
    g_jsonOpen = !json_path.empty();
    if (g_jsonOpen) {
        g_json.beginObject();
        g_json.kv("bench", "ssd_sweep");
        g_json.kv("smoke", smoke);
        g_json.key("rows");
        g_json.beginArray();
    }

    // Tier-off baseline first, then every policy at the same size.
    for (std::uint32_t d : {0u, 1u, 2u, 3u})
        runPoint({d, 32, 12, 9});
    if (!smoke) {
        // Larger working set: more cold pages per truncation, so the
        // destage path runs at a sustained backlog.
        for (std::uint32_t d : {1u, 2u, 3u})
            runPoint({d, 64, 48, 9});
    }

    if (g_jsonOpen)
        g_json.endArray();

    const bool gates_ok = componentGates();

    if (g_jsonOpen) {
        g_json.kv("component_gates_ok", gates_ok);
        g_json.endObject();
        if (!g_json.writeFile(json_path)) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", json_path.c_str());
    }
    return gates_ok ? 0 : 1;
}
