/**
 * @file
 * Sharded-kernel scaling microbenchmark (plain chrono; no
 * google-benchmark dependency, always builds).
 *
 * Four sections:
 *
 *  1. events/s vs shard count (now up to 8 workers) on the
 *     quickstart-sized, tpcc-sized and full Table-I TPC-C golden
 *     workloads, with the delivery-stream hash checked for
 *     byte-identity across every sharded count. Since the split-phase
 *     coherence rework the cache complex is fully partitioned: every
 *     core+L1 tile and every L2 slice is its own domain (68 domains
 *     for TPC-C@32-core), so shard counts beyond 1 + numMemCtrls
 *     finally buy parallelism. Windows are distance-based per-pair
 *     lookahead (hopLatency x mesh hops) rather than the old flat 2
 *     ticks: measured mean window widths are 5.79 / 10.76 / 4.98
 *     ticks on quickstart-sized / tpcc-sized / TPC-C@32-core.
 *     Mesh routing between barriers defers sends into a canonical
 *     batch and dispatches quadrant-owned link segments to the
 *     workers; the serial-merge fraction (leader-routed share of
 *     sends) drops from the flat baseline of 1.0 to 0.991 / 0.950 /
 *     0.913 on the same three loads -- the residual is structural,
 *     because most traffic pins a destination's inbound bound within
 *     one window and must flush before the batch reaches dispatch
 *     depth; the parallel share grows with core count.
 *     Wall-clock speedup still requires real cores; on a single-CPU
 *     host the sharded rows measure pure windowing + barrier + assist
 *     dispatch overhead, which is reported honestly (the >= 1.5x
 *     speedup gate auto-skips when hardware_concurrency < shards).
 *     For the record, on a single-CPU dev container TPC-C@32-core
 *     measured ~4.4M events/s sequential vs ~22K / 23K / 22K / 20K
 *     at 1 / 2 / 4 / 8 shards (~0.005x), i.e. 8-shards-on-1-CPU is
 *     pure oversubscription overhead dominated by barrier spins --
 *     WindowBarrier::pickSpinBudget() already clamps the spin budget
 *     to 64 iterations when workers oversubscribe the host, and the
 *     streams stay byte-identical throughout.
 *
 *  2. the calendar-wheel spill ratio for TPC-C at the full Table-I
 *     core count across wheel widths (SystemConfig::wheelBuckets),
 *     recording the ratio behind the chosen 4096-bucket default.
 *
 *  3. an operator-new steady-state check: growing the run length must
 *     not grow the sharded kernel's allocation count over the
 *     sequential kernel's -- every mailbox, pool and merge buffer
 *     reaches its high-water mark and is then reused forever. The
 *     binary exits non-zero if sharding allocates per-event.
 *
 *  4. a sharded-construction budget at the 1024-tile preset: building
 *     the full 4-shard System (ShardLayout + chamfer lookahead) must
 *     finish inside a generous wall budget. The pre-fix dense
 *     domains x domains window matrix blew it by orders of magnitude.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "bench_common.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "net/mesh.hh"
#include "workloads/hash_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace
{
// Relaxed atomic: worker threads allocate too (their counts must be
// included, not torn).
std::atomic<std::uint64_t> g_allocCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace atomsim;

/** `--stats-json` export: one row per (load, shard count) run. */
JsonWriter g_json;
bool g_jsonOpen = false;

struct BenchRun
{
    std::uint64_t events = 0;
    std::uint64_t txns = 0;
    Tick cycles = 0;
    double wallMs = 0;
    std::uint64_t hash = 0;
    std::uint64_t allocs = 0;
    std::uint64_t spills = 0;
    double spillRatio = 0;
    ShardRunStats shard; //!< zeros on sequential runs
};

enum class Load
{
    Quickstart,  //!< 8-core hash micro under ATOM-OPT
    Tpcc,        //!< 4-core TPC-C under ATOM
    TpccFull,    //!< full Table-I machine (32 cores) TPC-C, ATOM-OPT
};

BenchRun
runOne(Load load, std::uint32_t shards, std::uint32_t txns_per_core,
       std::uint32_t wheel = 4096)
{
    SystemConfig cfg;
    cfg.numShards = shards;
    cfg.wheelBuckets = wheel;

    std::unique_ptr<Workload> workload;
    Addr data_bytes = Addr(512) * 1024 * 1024;
    switch (load) {
      case Load::Quickstart: {
        cfg.numCores = 8;
        cfg.l2Tiles = 8;
        cfg.meshRows = 2;
        cfg.ausPerMc = 8;
        cfg.design = DesignKind::AtomOpt;
        MicroParams params;
        params.entryBytes = 256;
        params.initialItems = 24;
        params.txnsPerCore = txns_per_core;
        workload = std::make_unique<HashWorkload>(params);
        break;
      }
      case Load::Tpcc: {
        cfg.numCores = 4;
        cfg.l2Tiles = 4;
        cfg.meshRows = 2;
        cfg.ausPerMc = 4;
        cfg.design = DesignKind::Atom;
        tpcc::ScaleParams scale;
        scale.customersPerDistrict = 8;
        scale.items = 128;
        workload = std::make_unique<TpccWorkload>(scale);
        data_bytes = Addr(128) * 1024 * 1024;
        break;
      }
      case Load::TpccFull: {
        // The paper's Table-I machine: 32 cores, 32 tiles, 4 mesh
        // rows, 32 AUS -- the config whose latency mix the wheel
        // width is tuned against.
        tpcc::ScaleParams scale;
        scale.customersPerDistrict = 16;
        scale.items = 512;
        workload = std::make_unique<TpccWorkload>(scale);
        break;
      }
    }

    Runner runner(cfg, *workload, txns_per_core, data_bytes);
    bench::StreamHashTracer tracer;
    runner.system().mesh().setTracer(&tracer);
    runner.setUp();

    const std::uint64_t a0 = g_allocCount.load();
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult result = runner.run();
    const auto t1 = std::chrono::steady_clock::now();

    BenchRun r;
    r.txns = result.txns;
    r.cycles = result.cycles;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.hash = tracer.hash;
    r.allocs = g_allocCount.load() - a0;
    System &sys = runner.system();
    double spill = 0, wheel_ins = 0;
    for (std::uint32_t d = 0; d < sys.numDomains(); ++d) {
        const EventQueue &q = sys.domain(d).queue();
        r.events += q.executed();
        spill += double(q.spillInserts());
        wheel_ins += double(q.wheelInserts());
        r.spills += q.spillInserts();
    }
    r.spillRatio = (spill + wheel_ins) > 0 ? spill / (spill + wheel_ins)
                                           : 0.0;
    r.shard = runner.shardStats();
    return r;
}

const char *
loadName(Load load)
{
    switch (load) {
      case Load::Quickstart: return "quickstart-sized (8c ATOM-OPT)";
      case Load::Tpcc:       return "tpcc-sized (4c ATOM)";
      case Load::TpccFull:   return "tpcc full (32c ATOM-OPT)";
    }
    return "?";
}

/** Section 1: events/s vs shard count; byte-identity across counts. */
bool
scalingSection(Load load, std::uint32_t txns_per_core)
{
    std::printf("\n-- %s, %u txns/core --\n", loadName(load),
                txns_per_core);
    std::printf("%-10s %12s %10s %12s %8s  %s\n", "shards", "events",
                "wall ms", "events/s", "vs seq", "trace hash");

    bool ok = true;
    double seq_rate = 0;
    std::uint64_t sharded_hash = 0;
    for (std::uint32_t shards : {0u, 1u, 2u, 4u, 8u}) {
        const BenchRun r = runOne(load, shards, txns_per_core);
        const double rate = r.events / (r.wallMs / 1e3);
        if (shards == 0)
            seq_rate = rate;
        if (shards == 1)
            sharded_hash = r.hash;
        if (shards > 1 && r.hash != sharded_hash) {
            std::printf("!! shard-count divergence at %u shards\n",
                        shards);
            ok = false;
        }
        std::printf("%-10s %12llu %10.1f %12.0f %7.2fx  %016llx\n",
                    shards == 0 ? "seq" : std::to_string(shards).c_str(),
                    (unsigned long long)r.events, r.wallMs, rate,
                    rate / seq_rate, (unsigned long long)r.hash);
        if (shards > 0) {
            std::printf("           window mean %.2f / max %llu ticks, "
                        "%llu barriers, serial-merge %.1f%%, "
                        "same-worker sends %.1f%%\n",
                        r.shard.meanWindowTicks(),
                        (unsigned long long)r.shard.maxWindowTicks,
                        (unsigned long long)r.shard.barriers,
                        100.0 * r.shard.serialMergeFraction(),
                        100.0 * r.shard.sameWorkerFraction());
        }

        // Smoke gates on the full Table-I machine at 4 shards: the
        // distance lookahead must actually widen windows past the old
        // flat 2-tick floor, and region-parallel routing must take
        // real traffic off the leader (the flat-window kernel merged
        // 100% serially).
        if (load == Load::TpccFull && shards == 4) {
            if (r.shard.meanWindowTicks() <= 2.0) {
                std::printf("!! mean window %.2f ticks <= flat 2-tick "
                            "floor\n", r.shard.meanWindowTicks());
                ok = false;
            }
            if (r.shard.serialMergeFraction() >= 1.0) {
                std::printf("!! serial-merge fraction did not drop "
                            "below the flat-window baseline (1.0)\n");
                ok = false;
            }
            // Wall-clock gate: >= 1.5x over sequential, asserted only
            // where the hardware can express it.
            const unsigned hw = std::thread::hardware_concurrency();
            if (hw >= shards) {
                if (rate < 1.5 * seq_rate) {
                    std::printf("!! 4-shard speedup %.2fx < 1.5x on a "
                                "%u-thread host\n", rate / seq_rate, hw);
                    ok = false;
                }
            } else {
                std::printf("   (speedup gate skipped: %u hardware "
                            "threads < %u shards)\n", hw, shards);
            }
        }
        if (g_jsonOpen) {
            g_json.beginObject();
            g_json.kv("section", "scaling");
            g_json.kv("load", loadName(load));
            g_json.kv("txns_per_core", txns_per_core);
            g_json.kv("shards", shards);
            g_json.kv("events", r.events);
            g_json.kv("txns", r.txns);
            g_json.kv("cycles", std::uint64_t(r.cycles));
            g_json.kv("wall_ms", r.wallMs);
            g_json.kv("events_per_sec", rate);
            g_json.kv("spill_ratio", r.spillRatio);
            if (shards > 0) {
                g_json.kv("mean_window_ticks",
                          r.shard.meanWindowTicks());
                g_json.kv("max_window_ticks",
                          std::uint64_t(r.shard.maxWindowTicks));
                g_json.kv("barriers", r.shard.barriers);
                g_json.kv("serial_merge_fraction",
                          r.shard.serialMergeFraction());
                g_json.kv("same_worker_send_fraction",
                          r.shard.sameWorkerFraction());
            }
            char hash[24];
            std::snprintf(hash, sizeof(hash), "%016llx",
                          (unsigned long long)r.hash);
            g_json.kv("trace_hash", hash);
            g_json.endObject();
        }
    }
    return ok;
}

/** Section 2: wheel width vs spill ratio for full-size TPC-C. */
void
wheelSection()
{
    std::printf("\n-- calendar-wheel width vs spill ratio, %s --\n",
                loadName(Load::TpccFull));
    std::printf("%-8s %12s %12s %14s\n", "wheel", "events", "spills",
                "spill ratio");
    for (std::uint32_t wheel : {256u, 1024u, 4096u, 16384u}) {
        const BenchRun r = runOne(Load::TpccFull, 0, 2, wheel);
        std::printf("%-8u %12llu %12llu %13.4f%%%s\n", wheel,
                    (unsigned long long)r.events,
                    (unsigned long long)r.spills, 100.0 * r.spillRatio,
                    wheel == 4096 ? "   <- default" : "");
    }
}

/**
 * Section 4: sharded construction at the 1024-tile preset. The old
 * ShardLayout/lookahead path materialized a dense domains x domains
 * window matrix (O(domains^2) fill over ~2k domains plus a per-pair
 * mesh-distance walk); since the chamfer rework construction is
 * O(domains + nodes) and must finish far inside a generous wall
 * budget. Reverting to the dense fill blows the budget by orders of
 * magnitude, so this doubles as the construction-time regression
 * gate from the scaling issue.
 */
bool
shardedConstructionSection()
{
    std::printf("\n-- sharded construction at the 1024-tile preset --\n");
    SystemConfig cfg = SystemConfig::makeMeshPreset(1024);
    cfg.numShards = 4;

    const auto t0 = std::chrono::steady_clock::now();
    System sys(cfg, Addr(512) * 1024 * 1024);
    const auto t1 = std::chrono::steady_clock::now();
    const double build_s = std::chrono::duration<double>(t1 - t0).count();

    std::printf("1024-tile 4-shard System: %u domains, built in "
                "%.2f s\n", sys.numDomains(), build_s);

    bool ok = true;
    if (build_s > 30.0) {
        std::printf("!! sharded 1024-tile construction took %.1f s "
                    "(> 30 s budget; dense lookahead regression?)\n",
                    build_s);
        ok = false;
    }
    if (g_jsonOpen) {
        g_json.beginObject();
        g_json.kv("section", "sharded_construction");
        g_json.kv("tiles", 1024u);
        g_json.kv("shards", cfg.numShards);
        g_json.kv("domains", sys.numDomains());
        g_json.kv("build_s", build_s);
        g_json.endObject();
    }
    return ok;
}

/** Section 3: sharding must not allocate per event. */
bool
allocSection()
{
    std::printf("\n-- steady-state allocations (operator-new counter) "
                "--\n");
    // Allocations grow with run length in both kernels (functional
    // transaction dispatch allocates); the *sharded overhead* -- the
    // difference at equal run length -- must not: mailboxes, packet
    // pools and merge buffers stop growing at their high-water marks.
    const std::uint32_t kShort = 4, kLong = 12;
    const std::uint64_t seq_short =
        runOne(Load::Quickstart, 0, kShort).allocs;
    const std::uint64_t seq_long =
        runOne(Load::Quickstart, 0, kLong).allocs;
    const std::uint64_t sh_short =
        runOne(Load::Quickstart, 2, kShort).allocs;
    const std::uint64_t sh_long =
        runOne(Load::Quickstart, 2, kLong).allocs;

    const std::int64_t overhead_short =
        std::int64_t(sh_short) - std::int64_t(seq_short);
    const std::int64_t overhead_long =
        std::int64_t(sh_long) - std::int64_t(seq_long);
    const std::int64_t growth = overhead_long - overhead_short;

    std::printf("allocs: seq %llu -> %llu, sharded %llu -> %llu "
                "(%u -> %u txns/core)\n",
                (unsigned long long)seq_short,
                (unsigned long long)seq_long,
                (unsigned long long)sh_short,
                (unsigned long long)sh_long, kShort, kLong);
    std::printf("sharding overhead: %lld (short run) vs %lld (long "
                "run); growth %lld\n",
                (long long)overhead_short, (long long)overhead_long,
                (long long)growth);

    // Tolerance covers hash-map rehash points shifting between the two
    // run lengths; per-event allocation would show up as thousands.
    const bool ok = growth < 128;
    std::printf("steady-state sharding allocations: %s\n",
                ok ? "OK (high-water only)" : "FAIL (grows with run)");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("parallel_scaling: conservative-window sharded kernel\n");
    std::printf("hardware threads: %u (speedup requires > 1; a "
                "single-CPU host measures pure overhead)\n",
                std::thread::hardware_concurrency());

    const std::string json_path = statsJsonPathFromArgs(argc, argv);
    g_jsonOpen = !json_path.empty();
    if (g_jsonOpen) {
        g_json.beginObject();
        g_json.kv("bench", "parallel_scaling");
        g_json.key("rows");
        g_json.beginArray();
    }

    bool ok = true;
    ok &= scalingSection(Load::Quickstart, 6);
    ok &= scalingSection(Load::Tpcc, 4);
    ok &= scalingSection(Load::TpccFull, 2);
    wheelSection();
    ok &= allocSection();
    ok &= shardedConstructionSection();

    if (g_jsonOpen) {
        g_json.endArray();
        g_json.kv("ok", ok);
        g_json.endObject();
        if (!g_json.writeFile(json_path)) {
            std::fprintf(stderr, "cannot write %s\n",
                         json_path.c_str());
            ok = false;
        } else {
            std::printf("wrote %s\n", json_path.c_str());
        }
    }
    return ok ? 0 : 1;
}
