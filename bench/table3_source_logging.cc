/**
 * @file
 * Table III: percentage of source-logged cache lines under ATOM-OPT,
 * small and large datasets.
 *
 * Source logging triggers when a read-exclusive fill reaches the
 * memory controller during an atomic update (a full-hierarchy store
 * miss); the paper reports small fractions (0.01%..0.7%) that grow
 * with the dataset size.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"

using namespace atomsim;
using namespace atomsim::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);

    std::printf("\n=== Table III: %% of source-logged lines "
                "(ATOM-OPT) ===\n");
    ReportTable table({"bench", "small %", "large %", "small entries",
                       "large entries"});

    for (const char *name : kMicroNames) {
        double pct[2];
        std::uint64_t entries[2];
        for (int large = 0; large < 2; ++large) {
            const RunResult r = runCell(name, DesignKind::AtomOpt,
                                        microParams(large != 0));
            entries[large] = r.logEntries;
            pct[large] = r.logEntries
                             ? 100.0 * double(r.sourceLogged) /
                                   double(r.logEntries)
                             : 0.0;
        }
        table.addRow({name, ReportTable::num(pct[0]),
                      ReportTable::num(pct[1]),
                      std::to_string(entries[0]),
                      std::to_string(entries[1])});
    }
    table.print();
    std::printf("paper (small): btree 0.12, hash 0.12, queue 0.07, "
                "rbtree 0.01, sdg 0.04, sps 0.01\n");
    std::printf("paper (large): btree 0.4, hash 0.4, queue 0.7, "
                "rbtree 0.4, sdg 0.07, sps 0.01\n");
    std::printf("expectation: the large-dataset fraction exceeds the "
                "small one (more store misses reach memory)\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
