#include "sim/config.hh"

#include <cmath>

#include "sim/logging.hh"

namespace atomsim
{

const char *
designName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Base:
        return "BASE";
      case DesignKind::Atom:
        return "ATOM";
      case DesignKind::AtomOpt:
        return "ATOM-OPT";
      case DesignKind::NonAtomic:
        return "NON-ATOMIC";
      case DesignKind::Redo:
        return "REDO";
    }
    return "?";
}

DesignKind
designFromName(const std::string &name)
{
    if (name == "BASE")
        return DesignKind::Base;
    if (name == "ATOM")
        return DesignKind::Atom;
    if (name == "ATOM-OPT" || name == "ATOM_OPT")
        return DesignKind::AtomOpt;
    if (name == "NON-ATOMIC" || name == "NON_ATOMIC")
        return DesignKind::NonAtomic;
    if (name == "REDO")
        return DesignKind::Redo;
    fatal("unknown design name '%s'", name.c_str());
}

const char *
hybridModeName(HybridMode mode)
{
    switch (mode) {
      case HybridMode::NvmOnly:
        return "nvmOnly";
      case HybridMode::MemoryMode:
        return "memoryMode";
      case HybridMode::AppDirect:
        return "appDirect";
    }
    return "?";
}

HybridMode
hybridModeFromName(const std::string &name)
{
    if (name == "nvmOnly")
        return HybridMode::NvmOnly;
    if (name == "memoryMode")
        return HybridMode::MemoryMode;
    if (name == "appDirect")
        return HybridMode::AppDirect;
    fatal("unknown hybrid mode '%s'", name.c_str());
}

const char *
durabilityPolicyName(DurabilityPolicy policy)
{
    switch (policy) {
      case DurabilityPolicy::Strict:
        return "strict";
      case DurabilityPolicy::Balanced:
        return "balanced";
      case DurabilityPolicy::Eventual:
        return "eventual";
    }
    return "?";
}

DurabilityPolicy
durabilityPolicyFromName(const std::string &name)
{
    if (name == "strict")
        return DurabilityPolicy::Strict;
    if (name == "balanced")
        return DurabilityPolicy::Balanced;
    if (name == "eventual")
        return DurabilityPolicy::Eventual;
    fatal("unknown durability policy '%s'", name.c_str());
}

const char *
shardPlacementName(ShardPlacement placement)
{
    switch (placement) {
      case ShardPlacement::RoundRobin:
        return "roundRobin";
      case ShardPlacement::Locality:
        return "locality";
    }
    return "?";
}

ShardPlacement
shardPlacementFromName(const std::string &name)
{
    if (name == "roundRobin" || name == "round-robin")
        return ShardPlacement::RoundRobin;
    if (name == "locality")
        return ShardPlacement::Locality;
    fatal("unknown shard placement '%s'", name.c_str());
}

Cycles
SystemConfig::lineTransferCycles() const
{
    const double bytes_per_cycle = channelBandwidthBytesPerSec / clockHz;
    return static_cast<Cycles>(
        std::ceil(double(kLineBytes) / bytes_per_cycle));
}

Cycles
SystemConfig::dramTransferCycles() const
{
    const double bytes_per_cycle = dramBandwidthBytesPerSec / clockHz;
    return static_cast<Cycles>(
        std::ceil(double(kLineBytes) / bytes_per_cycle));
}

Cycles
SystemConfig::ssdPageTransferCycles() const
{
    // 4096 = kPageBytes (mem/phys_mem.hh); sim/ sits below mem/ in
    // the include layering, so the constant is repeated here.
    const double bytes_per_cycle =
        ssdChannelBandwidthBytesPerSec / clockHz;
    return static_cast<Cycles>(std::ceil(4096.0 / bytes_per_cycle));
}

std::uint32_t
SystemConfig::meshCols() const
{
    return (numCores + meshRows - 1) / meshRows;
}

void
SystemConfig::validate() const
{
    fatal_if(numCores == 0, "numCores must be > 0");
    fatal_if(sqEntries == 0, "sqEntries must be > 0");
    fatal_if(l1SizeBytes % (l1Assoc * kLineBytes) != 0,
             "L1 size must be a multiple of assoc * line size");
    fatal_if(l2TileBytes % (l2Assoc * kLineBytes) != 0,
             "L2 tile size must be a multiple of assoc * line size");
    fatal_if(numMemCtrls == 0, "need at least one memory controller");
    fatal_if((numMemCtrls & (numMemCtrls - 1)) != 0,
             "numMemCtrls must be a power of two (address interleaving)");
    fatal_if(l2Tiles == 0, "need at least one L2 tile");
    fatal_if(channelsPerMc == 0 || channelsPerMc > 2,
             "channelsPerMc must be 1 or 2");
    fatal_if(recordEntries == 0 || recordEntries > 7,
             "recordEntries must be in [1,7] (512-byte record)");
    fatal_if(bucketsPerMc == 0, "bucketsPerMc must be > 0");
    fatal_if(ausPerMc == 0, "ausPerMc must be > 0");
    fatal_if(meshRows == 0, "meshRows must be > 0");
    fatal_if(mediaErrorPer64k > 65536,
             "mediaErrorPer64k is a rate out of 65536");
    fatal_if(mediaRetryLimit > 64,
             "mediaRetryLimit > 64 is a livelock, not a retry policy");
    fatal_if(wheelBuckets < 64 ||
                 (wheelBuckets & (wheelBuckets - 1)) != 0,
             "wheelBuckets must be a power of two >= 64");
    if (hybrid()) {
        fatal_if(dramCacheMBPerMc == 0,
                 "hybrid memory needs dramCacheMBPerMc > 0");
        fatal_if(dramCacheAssoc == 0,
                 "dramCacheAssoc must be > 0");
        fatal_if(Addr(dramCacheMBPerMc) * 1024 * 1024 %
                         (Addr(dramCacheAssoc) * kLineBytes) !=
                     0,
                 "DRAM cache size must be a multiple of assoc * line "
                 "size");
        fatal_if(dramBanksPerMc == 0, "dramBanksPerMc must be > 0");
        fatal_if(dramRowBytes < kLineBytes ||
                     (dramRowBytes & (dramRowBytes - 1)) != 0,
                 "dramRowBytes must be a power of two >= the line "
                 "size");
    }
    fatal_if(!ssdTier && durabilityPolicy != DurabilityPolicy::Strict,
             "relaxed durability policies need the flash tier "
             "(ssdTier = true); without a destage pipeline there is "
             "nothing to relax");
    if (ssdTier) {
        fatal_if(ssdChannels == 0 || ssdDiesPerChannel == 0,
                 "ssdTier needs ssdChannels > 0 and ssdDiesPerChannel "
                 "> 0");
        fatal_if(ssdQueueDepth < 2,
                 "ssdQueueDepth must be >= 2 (SQ/CQ ring capacity)");
        fatal_if(ssdPollInterval == 0,
                 "ssdPollInterval must be > 0 (poll-mode reaping)");
        fatal_if(ssdFlashPagesPerMc == 0,
                 "ssdFlashPagesPerMc must be > 0");
        fatal_if(durabilityPolicy == DurabilityPolicy::Eventual &&
                     ssdStagingWindow == 0,
                 "eventual durability needs ssdStagingWindow > 0");
    }
    if (numShards > 0) {
        fatal_if(durabilityPolicy == DurabilityPolicy::Eventual,
                 "the eventual-durability staging window is "
                 "cross-domain state; it requires the sequential "
                 "kernel (numShards = 0)");
        fatal_if(serializeAtomicRegions,
                 "serializeAtomicRegions is cross-domain state; it "
                 "requires the sequential kernel (numShards = 0)");
        fatal_if(numMemCtrls > 32,
                 "sharded simulation supports at most 32 memory "
                 "controllers (DataImage stripe count)");
        fatal_if(design == DesignKind::Redo,
                 "sharded simulation does not support the REDO design "
                 "(the combine buffers and backend apply queues are "
                 "cross-domain state; the victim cache is already "
                 "sharded per home tile); run REDO with numShards = 0");
        fatal_if(linkQueueDepth != 0,
                 "sharded simulation requires unbounded link queues "
                 "(linkQueueDepth = 0): bounded-depth backpressure "
                 "re-stamps packets at drain time, which is not "
                 "shard-invariant");
        fatal_if(hopLatency == 0,
                 "sharded simulation requires hopLatency > 0 (the "
                 "lookahead, and so the window width, would be zero)");
        fatal_if(windowTicks > hopLatency,
                 "windowTicks (%llu) exceeds the minimum cross-domain "
                 "lookahead (hopLatency = %llu): the canonical window "
                 "tiling must keep every send's delivery beyond its own "
                 "window, or the tiling stops being reconstructible "
                 "from executed ticks and control-plane anchoring "
                 "diverges across shard counts",
                 (unsigned long long)windowTicks,
                 (unsigned long long)hopLatency);
    }
}

SystemConfig
SystemConfig::makeMeshPreset(std::uint32_t tiles)
{
    SystemConfig cfg;
    switch (tiles) {
      case 256:
        cfg.numCores = 256;
        cfg.l2Tiles = 256;
        cfg.meshRows = 16;
        cfg.numMemCtrls = 8;
        cfg.l2TileBytes = 256 * 1024;
        break;
      case 1024:
        cfg.numCores = 1024;
        cfg.l2Tiles = 1024;
        cfg.meshRows = 32;
        cfg.numMemCtrls = 16;
        // Keep the host footprint bounded at 1024 tiles: smaller L2
        // slices (the line-state map dominates resident memory) and a
        // narrow calendar wheel per domain (2064 domains x buckets).
        cfg.l2TileBytes = 64 * 1024;
        cfg.wheelBuckets = 256;
        break;
      default:
        fatal("makeMeshPreset: unsupported tile count %u "
              "(supported: 256, 1024)", tiles);
    }
    return cfg;
}

} // namespace atomsim
