/**
 * @file
 * Intrusive free-list pool for hot-path nodes.
 *
 * Every allocation-free subsystem (mesh packets, MSHR waiters,
 * directory waiters, pending stores/flushes, invalidation joins) pools
 * its nodes the same way: grow to the in-flight high-water mark once,
 * then recycle forever. This template is that idiom in one place, so
 * the no-allocation property is auditable centrally.
 *
 * T must expose a `T *next` member, used as the free-list link while
 * the node is idle (subsystems may reuse it for their own chains while
 * the node is live). Scrubbing node state (destroying callbacks,
 * clearing payloads) stays the caller's job before release().
 */

#ifndef ATOMSIM_SIM_POOL_HH
#define ATOMSIM_SIM_POOL_HH

#include <cstddef>
#include <memory>
#include <vector>

namespace atomsim
{

template <typename T>
class FreeListPool
{
  public:
    /** A node with indeterminate (recycled) payload; next == nullptr. */
    T *
    acquire()
    {
        if (_free) {
            T *node = _free;
            _free = node->next;
            node->next = nullptr;
            --_freeCount;
            return node;
        }
        _nodes.push_back(std::make_unique<T>());
        return _nodes.back().get();
    }

    /** Return a node to the free list (caller has scrubbed it). */
    void
    release(T *node)
    {
        node->next = _free;
        _free = node;
        ++_freeCount;
    }

    /** Nodes ever allocated (high-water mark). */
    std::size_t allocated() const { return _nodes.size(); }

    /** Nodes currently idle on the free list. */
    std::size_t idle() const { return _freeCount; }

  private:
    std::vector<std::unique_ptr<T>> _nodes;
    T *_free = nullptr;
    std::size_t _freeCount = 0;
};

} // namespace atomsim

#endif // ATOMSIM_SIM_POOL_HH
