/**
 * @file
 * Discrete-event simulation kernel.
 *
 * atomsim is driven by a single global-per-System event queue. Components
 * schedule callbacks at absolute ticks; the queue executes them in
 * (tick, insertion-order) order, which gives deterministic simulation for
 * a fixed configuration and seed.
 */

#ifndef ATOMSIM_SIM_EVENT_QUEUE_HH
#define ATOMSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace atomsim
{

/**
 * A single-owner discrete event queue.
 *
 * Events are arbitrary std::function callbacks. Scheduling is allowed
 * from inside event execution (the common case). Events may be scheduled
 * at the current tick; they run after all previously-scheduled events of
 * that tick.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at absolute tick @p when.
     *
     * @pre when >= now()
     */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback @p delay ticks from now. */
    void scheduleIn(Cycles delay, Callback cb) {
        schedule(_now + delay, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const { return _heap.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return _heap.size(); }

    /**
     * Execute a single event (the earliest). Advances now() to the
     * event's tick.
     *
     * @retval true an event was executed
     * @retval false the queue was empty
     */
    bool step();

    /**
     * Run until the queue drains or @p limit ticks is reached.
     *
     * @param limit absolute tick bound (events after it stay queued)
     * @return number of events executed
     */
    std::uint64_t run(Tick limit = kTickNever);

    /**
     * Run until @p pred returns true (checked after every event), the
     * queue drains, or @p limit is hit.
     */
    std::uint64_t runUntil(const std::function<bool()> &pred,
                           Tick limit = kTickNever);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return _executed; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;  //!< tie-breaker: FIFO within a tick
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    Tick _now = 0;
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;
};

} // namespace atomsim

#endif // ATOMSIM_SIM_EVENT_QUEUE_HH
