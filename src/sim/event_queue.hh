/**
 * @file
 * Discrete-event simulation kernel.
 *
 * atomsim is driven by one event queue per *shard* (a single global
 * queue in sequential runs; see sim/shard.hh for the sharded mode).
 * Components schedule work at absolute ticks; the queue executes it in
 * (tick, insertion-order) order, which gives deterministic simulation
 * for a fixed configuration and seed.
 *
 * Event model
 * -----------
 * The kernel is built around gem5-style *intrusive* events: an Event is
 * an object whose queue linkage (tick, sequence number, bucket link)
 * lives inside the object itself, so scheduling one performs no
 * allocation. Components own their recurring events as members --
 * conventionally named `_tickEvent` / `_drainEvent` etc. and declared as
 * EventFunctionWrapper (alias TickEvent) -- and (re)schedule the same
 * object over and over:
 *
 *     class Core {
 *         ...
 *         TickEvent _opDoneEvent{[this] { opDone(_opDoneIdx); }};
 *     };
 *     _eq.scheduleIn(_opDoneEvent, op.cycles);
 *
 * For one-shot continuations whose capture state is inherently dynamic
 * (cache-miss fills, mesh deliveries, NVM completions) the queue offers
 * post()/postIn(): the callback is moved into a FuncEvent drawn from an
 * internal free-list pool, so the steady-state hot loop performs zero
 * queue-node allocations on this path too (the pool grows to the
 * high-water mark of in-flight one-shots and is then reused forever).
 *
 * Calendar queue
 * --------------
 * Pending events live in a two-level calendar queue:
 *
 *  - a *timing wheel* of wheelWidth() one-tick buckets covering the
 *    near horizon [now(), now() + wheelWidth()). The width is a
 *    construction-time knob (SystemConfig::wheelBuckets; default
 *    kWheelBuckets = 4096) -- tune it against spillRatio() for
 *    workloads whose latency mix overflows the horizon. Each bucket is
 *    an intrusive singly-linked FIFO list; because every schedule()
 *    call appends at the tail with a monotonically increasing global
 *    sequence number, a bucket is always sorted by insertion order. A
 *    bitmap (one bit per bucket) makes "find the next non-empty
 *    bucket" a handful of word scans + ctz;
 *
 *  - a *spill heap* for far-future events (when >= now() + width),
 *    ordered by (tick, seq). The heap is *indexed* (each spilled event
 *    carries its heap slot), so deschedule() on the spill is an
 *    O(log n) sift instead of the old O(n) erase + re-heapify --
 *    powerFail-heavy runs deschedule member events that routinely sit
 *    in the spill. Whenever now() advances, events whose tick has come
 *    inside the horizon migrate from the heap into their wheel bucket.
 *    Migration pops the heap in (tick, seq) order and the wheel window
 *    invariant guarantees a migrating event can never land in a bucket
 *    that already holds same-tick events, so FIFO order within a tick
 *    is preserved across the two levels.
 *
 * Schedule/execute are therefore O(1) for the near horizon (the common
 * case: latencies in this machine are 1..~400 cycles) and O(log n) only
 * for far-future spills (e.g. the 5000-cycle OS overflow interrupt).
 */

#ifndef ATOMSIM_SIM_EVENT_QUEUE_HH
#define ATOMSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace atomsim
{

class EventQueue;
class FuncEvent;

/**
 * Base class of every schedulable event.
 *
 * The queue linkage is intrusive: _when/_seq/_next live in the event, so
 * scheduling allocates nothing. An Event may be scheduled on at most one
 * queue at a time; scheduling an already-scheduled event is a bug (use
 * reschedule()). Destroying a scheduled event deschedules it first.
 */
class Event
{
  public:
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    /** True while the event sits on a queue. */
    bool scheduled() const { return (_flags & kScheduled) != 0; }

    /** Tick the event is scheduled at (valid while scheduled()). */
    Tick when() const { return _when; }

  protected:
    Event() = default;
    virtual ~Event();

  private:
    friend class EventQueue;

    static constexpr std::uint16_t kScheduled = 0x1;
    static constexpr std::uint16_t kPooled = 0x2;
    static constexpr std::uint16_t kInSpill = 0x4;

    Event *_next = nullptr;        //!< bucket / free-list link
    EventQueue *_queue = nullptr;  //!< queue we are scheduled on
    Tick _when = 0;
    std::uint64_t _seq = 0;        //!< FIFO tie-breaker within a tick
    std::uint32_t _spillIdx = 0;   //!< heap slot while kInSpill
    std::uint16_t _flags = 0;
};

/**
 * An Event that runs a callback bound once at construction time.
 *
 * This is the building block for component-owned recurring events: the
 * std::function is allocated once when the component is built and the
 * same object is rescheduled forever after.
 */
class EventFunctionWrapper : public Event
{
  public:
    explicit EventFunctionWrapper(std::function<void()> fn,
                                  const char *name = "anon")
        : _fn(std::move(fn)), _name(name)
    {
    }

    void process() override { _fn(); }

    const char *name() const { return _name; }

  private:
    std::function<void()> _fn;
    const char *_name;
};

/** Conventional name for a component's recurring member event. */
using TickEvent = EventFunctionWrapper;

/**
 * A single-owner discrete event queue (see the file comment for the
 * event model and calendar-queue design).
 *
 * Scheduling is allowed from inside event execution (the common case).
 * Events may be scheduled at the current tick; they run after all
 * previously-scheduled events of that tick.
 */
class EventQueue
{
  public:
    /**
     * Continuation type carried by pooled one-shot events. A fixed
     * inline capacity (no heap fallback, enforced at compile time)
     * keeps the post()/postIn() path allocation-free in steady state;
     * the capacity covers the largest hot-path capture in the tree
     * (the NVM read completion: a 104-byte read callback plus the
     * 64-byte line it delivers).
     */
    static constexpr std::size_t kCallbackBytes = 192;
    using Callback = InplaceCallback<kCallbackBytes>;

    /** Default near-horizon width, in ticks (power of two). */
    static constexpr std::uint32_t kWheelBuckets = 4096;

    /**
     * @param wheel_buckets near-horizon width in one-tick buckets;
     *                      must be a power of two >= 64
     */
    explicit EventQueue(std::uint32_t wheel_buckets = kWheelBuckets);
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Configured near-horizon width, in ticks. */
    std::uint32_t wheelWidth() const { return _wheelBuckets; }

    // --- intrusive API (component-owned events) -----------------------

    /**
     * Schedule @p ev at absolute tick @p when.
     *
     * @pre when >= now()
     * @pre !ev.scheduled()
     */
    void schedule(Event &ev, Tick when);

    /** Schedule @p ev @p delay ticks from now. */
    void scheduleIn(Event &ev, Cycles delay) { schedule(ev, _now + delay); }

    /** Remove @p ev from the queue (no-op if not scheduled here). */
    void deschedule(Event &ev);

    /** Move @p ev to @p when, whether or not it is scheduled. */
    void
    reschedule(Event &ev, Tick when)
    {
        deschedule(ev);
        schedule(ev, when);
    }

    // --- order-preserving replay (expert API) -------------------------

    /**
     * Draw a sequence number from the queue's FIFO tie-break counter
     * without scheduling anything. Pair with scheduleAt(): a component
     * that batches work behind one member event (e.g. a mesh link's
     * delivery queue) stamps each item at *submission* time and later
     * schedules its event into the stamped slot, so the item executes
     * in exactly the order a per-item event scheduled at submission
     * time would have -- deterministic replay across refactors.
     */
    std::uint64_t allocSeq() { return _seq++; }

    /**
     * Schedule @p ev at tick @p when occupying the previously-drawn
     * FIFO slot @p seq (see allocSeq()). Unlike schedule(), the event
     * is inserted *sorted* into its bucket, so a stale seq lands in
     * front of later-scheduled same-tick events.
     *
     * @pre when >= now(); seq was returned by allocSeq()
     */
    void scheduleAt(Event &ev, Tick when, std::uint64_t seq);

    // --- pooled one-shot API (dynamic continuations) ------------------

    /**
     * Run @p cb at absolute tick @p when. The callback is carried by a
     * FuncEvent drawn from the internal free-list pool; the event
     * object returns to the pool as it fires, so steady state allocates
     * no queue nodes.
     */
    void post(Tick when, Callback cb);

    /** Run @p cb @p delay ticks from now. */
    void postIn(Cycles delay, Callback cb) { post(_now + delay, std::move(cb)); }

    // --- execution ----------------------------------------------------

    /** True when no events remain. */
    bool empty() const { return _pending == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return _pending; }

    /** Tick of the earliest pending event; kTickNever when empty.
     * (The sharded executor uses this to pick the next window.) */
    Tick
    nextTick() const
    {
        return _pending == 0 ? kTickNever : nextEventTick();
    }

    /**
     * Execute a single event (the earliest). Advances now() to the
     * event's tick.
     *
     * @retval true an event was executed
     * @retval false the queue was empty
     */
    bool step();

    /**
     * Run until the queue drains or @p limit ticks is reached.
     *
     * @param limit absolute tick bound (events after it stay queued)
     * @return number of events executed
     */
    std::uint64_t run(Tick limit = kTickNever);

    /**
     * Run until @p pred returns true (checked before every event), the
     * queue drains, or @p limit is hit.
     */
    std::uint64_t runUntil(const std::function<bool()> &pred,
                           Tick limit = kTickNever);

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return _executed; }

    /**
     * Record every *distinct* executed tick into @p log (nullptr
     * disables). The sharded scheduler uses the per-domain tick logs
     * to replay the sequential windowed tiling exactly (see
     * sim/shard.hh FlatTiling): the leader drains the log between
     * window barriers, so the vector is single-writer per phase. The
     * log survives across run() calls; the consumer compacts it.
     */
    void
    setTickLog(std::vector<Tick> *log)
    {
        _tickLog = log;
        _tickLast = kTickNever;
    }

    // --- pool introspection (tests / diagnostics) ---------------------

    /** FuncEvents ever allocated (pool high-water mark). */
    std::size_t poolAllocated() const { return _funcPool.size(); }

    /** FuncEvents currently idle on the free list. */
    std::size_t poolFree() const { return _poolFreeCount; }

    // --- calendar-wheel tuning stats ----------------------------------

    /** Schedules that landed in the near-horizon wheel. */
    std::uint64_t wheelInserts() const { return _wheelInserts; }

    /** Schedules that overflowed to the far-future spill heap. */
    std::uint64_t spillInserts() const { return _spillInserts; }

    /**
     * Fraction of schedules that missed the wheel horizon. A high
     * ratio means the wheel width is too narrow (or bucket granularity
     * too fine) for the workload's latency mix; widen it through
     * SystemConfig::wheelBuckets.
     */
    double
    spillRatio() const
    {
        const std::uint64_t total = _wheelInserts + _spillInserts;
        return total ? double(_spillInserts) / double(total) : 0.0;
    }

  private:
    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    /** True when @p a fires strictly before @p b ((tick, seq) order). */
    static bool
    spillBefore(const Event *a, const Event *b)
    {
        if (a->_when != b->_when)
            return a->_when < b->_when;
        return a->_seq < b->_seq;
    }

    /** Append to the wheel bucket of ev->_when (must be in-horizon). */
    void wheelInsert(Event *ev);

    /** Insert sorted by seq into the bucket of ev->_when (scheduleAt /
     * spill migration, where seqs may be stale). */
    void wheelInsertSorted(Event *ev);

    /** Common bookkeeping for schedule()/scheduleAt(). */
    void enqueue(Event &ev, Tick when, bool sorted);

    /** Tick of the earliest pending event (wheel beats spill). */
    Tick nextEventTick() const;

    /** Earliest non-empty wheel bucket's tick (requires _wheelCount). */
    Tick nextWheelTick() const;

    // --- indexed spill heap (O(log n) removal) ------------------------

    void spillPush(Event *ev);
    Event *spillPopMin();
    void spillRemove(Event *ev);
    void spillSiftUp(std::size_t i);
    void spillSiftDown(std::size_t i);

    /** Pull spill-heap events that entered the horizon into the wheel. */
    void migrate();

    /** Pop and run the earliest event, known to be at tick @p t. */
    void executeNext(Tick t);

    FuncEvent *acquirePooled();
    void releasePooled(FuncEvent *ev);

    const std::uint32_t _wheelBuckets;
    const std::uint32_t _wheelMask;
    const std::uint32_t _bitmapWords;

    std::vector<Bucket> _wheel;
    std::vector<std::uint64_t> _occupied;
    std::vector<Event *> _spill;  //!< indexed min-heap of far events

    Tick _now = 0;
    std::vector<Tick> *_tickLog = nullptr;
    Tick _tickLast = kTickNever;  //!< last logged tick (sentinel: none)
    std::uint64_t _seq = 0;
    std::uint64_t _executed = 0;
    std::uint64_t _wheelInserts = 0;
    std::uint64_t _spillInserts = 0;
    std::size_t _pending = 0;
    std::size_t _wheelCount = 0;

    std::vector<std::unique_ptr<FuncEvent>> _funcPool;
    Event *_freeList = nullptr;
    std::size_t _poolFreeCount = 0;
};

} // namespace atomsim

#endif // ATOMSIM_SIM_EVENT_QUEUE_HH
