#include "sim/stats.hh"

#include <algorithm>

namespace atomsim
{

Counter &
StatSet::counter(const std::string &group, const std::string &name)
{
    return _counters[group + "." + name];
}

std::uint64_t
StatSet::value(const std::string &group, const std::string &name) const
{
    auto it = _counters.find(group + "." + name);
    return it == _counters.end() ? 0 : it->second.value();
}

std::uint64_t
StatSet::sum(const std::string &group_prefix, const std::string &name) const
{
    std::uint64_t total = 0;
    const std::string suffix = "." + name;
    for (const auto &[full, ctr] : _counters) {
        if (full.size() < suffix.size())
            continue;
        if (full.compare(full.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        if (full.compare(0, group_prefix.size(), group_prefix) != 0)
            continue;
        total += ctr.value();
    }
    return total;
}

void
StatSet::resetAll()
{
    for (auto &[full, ctr] : _counters)
        ctr.reset();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatSet::dump() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(_counters.size());
    for (const auto &[full, ctr] : _counters)
        out.emplace_back(full, ctr.value());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace atomsim
