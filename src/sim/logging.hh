/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic()  -- internal simulator invariant violated (never the user's
 *             fault); aborts.
 * fatal()  -- the simulation cannot continue because of a configuration
 *             or usage error; exits cleanly with an error.
 * warn()   -- something is off but simulation can proceed.
 * inform() -- status messages.
 */

#ifndef ATOMSIM_SIM_LOGGING_HH
#define ATOMSIM_SIM_LOGGING_HH

#include <cstdarg>

namespace atomsim
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches quiet it down). */
void setVerbose(bool verbose);
bool verbose();

} // namespace atomsim

#define panic(...) ::atomsim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::atomsim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::atomsim::warnImpl(__VA_ARGS__)
#define inform(...) ::atomsim::informImpl(__VA_ARGS__)

#define panic_if(cond, ...) \
    do { \
        if (cond) \
            panic(__VA_ARGS__); \
    } while (0)

#define fatal_if(cond, ...) \
    do { \
        if (cond) \
            fatal(__VA_ARGS__); \
    } while (0)

#endif // ATOMSIM_SIM_LOGGING_HH
