/**
 * @file
 * Sharded simulation: domains, mailboxes, window barrier.
 *
 * Sharded runs split the System into *simulation domains* that only
 * interact through the mesh (plus a thin, barrier-synchronized control
 * plane for transaction-boundary operations and workload dispatch):
 *
 *  - domain c (0 <= c < numCores): tile c -- core c, its store queue
 *    and its private L1;
 *  - domain numCores+t: L2 slice t with its directory bank;
 *  - domain numCores+numTiles+m: memory controller m with its NVM
 *    channels, mesh port, LogM and OS log-space slice.
 *
 * This granularity exists because every L1<->L2 protocol leg is a
 * split-phase mesh transaction (see cache/l2_cache.hh): with no
 * synchronous shortcuts left, the whole cache complex partitions and
 * events/s can scale with cores.
 *
 * Every domain owns its own calendar-queue EventQueue *even when
 * several domains share a worker thread*: the queue is the domain
 * identity, so per-domain event order, FIFO sequence numbers and mesh
 * send counters are independent of how many workers the run uses.
 * That is what makes an N-shard run byte-identical to a 1-shard run
 * (see README, "Parallel simulation").
 *
 * Execution is conservative-window parallel simulation: workers
 * free-run their domains' queues inside a lookahead window bounded by
 * the minimum mesh send-to-delivery latency (hopLatency), then meet at
 * a window barrier where the leader (worker 0)
 *
 *  1. canonically merges the domains' send mailboxes (sorted by
 *     (send tick, domain, per-domain FIFO index)), routes and reserves
 *     each packet against the shared link state, and posts its
 *     delivery into the receiving domain's queue at the stamped tick;
 *  2. executes queued control operations (AUS acquisition, log-manager
 *     arm/truncate) in canonical (tick, core) order;
 *  3. routes freed packets back to their origin pools and merges the
 *     per-domain trace buffers into the installed tracer;
 *  4. picks the next window [t, t + W) with t = the minimum pending
 *     tick across all queues (idle regions are skipped wholesale).
 *
 * All cross-domain containers (DomainMailbox) are single-writer and
 * are only read by the leader between a worker's barrier arrival and
 * the release, so the barrier's acquire/release pair is the only
 * synchronization the data path needs.
 */

#ifndef ATOMSIM_SIM_SHARD_HH
#define ATOMSIM_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace atomsim
{

/**
 * A single-producer mailbox handed to the (single) consumer at window
 * barriers.
 *
 * The producing domain appends during its window; the leader drains
 * between that worker's barrier arrival and the release. Appends
 * preserve FIFO order, and the storage is reused forever (capacity
 * grows to the high-water mark once), keeping the steady state
 * allocation-free.
 */
template <typename T>
class DomainMailbox
{
  public:
    void push(T v) { _items.push_back(std::move(v)); }

    bool empty() const { return _items.empty(); }
    std::size_t size() const { return _items.size(); }

    /** Consumer side: the queued items, in push order. */
    std::vector<T> &items() { return _items; }

    /** Consumer side: forget the items, keep the capacity. */
    void clear() { _items.clear(); }

  private:
    std::vector<T> _items;
};

/**
 * One simulation domain: an event queue plus the domain-scoped
 * counters and mailboxes the sharded executor needs. The domain that
 * is currently executing on this thread is published through a
 * thread-local (current()), so shared front ends (the mesh, LogI) can
 * attribute work to the right domain without threading a handle
 * through every call.
 */
class SimDomain
{
  public:
    /** A deferred control operation, leader-executed at a barrier. */
    struct ControlOp
    {
        Tick tick;            //!< submission tick (canonical key, major)
        std::uint32_t actor;  //!< core id (canonical key)
        std::uint32_t sub;    //!< disambiguator (mc id / op kind)
        std::uint32_t domain; //!< submitting domain (canonical key)
        std::uint32_t idx;    //!< per-domain submission index
        InplaceCallback<64> fn;
    };

    SimDomain(std::uint32_t id, std::uint32_t wheel_buckets)
        : _id(id), _queue(wheel_buckets)
    {
    }

    std::uint32_t id() const { return _id; }
    EventQueue &queue() { return _queue; }
    const EventQueue &queue() const { return _queue; }

    /**
     * Queue @p fn for the leader's next barrier pass. Canonical
     * execution order across domains is (tick, actor, sub, domain,
     * idx) -- all shard-count-invariant.
     */
    void
    submitControl(std::uint32_t actor, std::uint32_t sub,
                  InplaceCallback<64> fn)
    {
        _ctrl.push(ControlOp{_queue.now(), actor, sub, _id, _ctrlIdx++,
                             std::move(fn)});
    }

    DomainMailbox<ControlOp> &controlOut() { return _ctrl; }

    /** Next per-domain mesh-send FIFO index (canonical key, minor). */
    std::uint32_t nextSendIdx() { return _sendIdx++; }

    /** The domain executing on this thread (nullptr outside one). */
    static SimDomain *current() { return tls(); }

    /** RAII scope marking this thread as executing @p d. */
    class Scope
    {
      public:
        explicit Scope(SimDomain *d) : _prev(tls()) { tls() = d; }
        ~Scope() { tls() = _prev; }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        SimDomain *_prev;
    };

  private:
    /** Function-local thread_local (a cross-TU thread_local data
     * member trips GCC's TLS wrapper under UBSan). */
    static SimDomain *&
    tls()
    {
        static thread_local SimDomain *cur = nullptr;
        return cur;
    }

    std::uint32_t _id;
    EventQueue _queue;
    DomainMailbox<ControlOp> _ctrl;
    std::uint32_t _ctrlIdx = 0;
    std::uint32_t _sendIdx = 0;
};

/**
 * Control-op `sub` key registry: disambiguates ops submitted by the
 * same (tick, actor). Per-MC completions use their raw mc id, which
 * stays well below these. Keep every named key here -- a collision
 * silently corrupts the canonical control-op ordering.
 */
namespace ctrlsub
{
constexpr std::uint32_t kBegin = 250;     //!< AUS acquire + LogM arm
constexpr std::uint32_t kTruncate = 251;  //!< commit-time truncate
constexpr std::uint32_t kFetchTxn = 252;  //!< workload txn dispatch
} // namespace ctrlsub

/**
 * Sense-reversing spin barrier with a distinguished leader.
 *
 * Workers arrive and spin until the leader releases the next window;
 * the leader waits for all workers, performs the barrier work (merge,
 * control ops, window selection) with exclusive access to every
 * domain, then releases. The arrive/release pair carries the
 * acquire/release ordering that publishes each side's writes to the
 * other.
 */
class WindowBarrier
{
  public:
    /** @param workers number of non-leader workers */
    explicit WindowBarrier(std::uint32_t workers) : _workers(workers) {}

    /** Worker: arrive and block until the leader releases. */
    void
    workerArrive()
    {
        const std::uint32_t phase = _phase.load(std::memory_order_acquire);
        _arrived.fetch_add(1, std::memory_order_acq_rel);
        spinWhile([&] {
            return _phase.load(std::memory_order_acquire) == phase;
        });
    }

    /** Leader: block until every worker has arrived. */
    void
    leaderWait()
    {
        spinWhile([&] {
            return _arrived.load(std::memory_order_acquire) != _workers;
        });
        _arrived.store(0, std::memory_order_relaxed);
    }

    /** Leader: open the next window (pairs with workerArrive). */
    void leaderRelease() { _phase.fetch_add(1, std::memory_order_acq_rel); }

  private:
    template <typename Pred>
    void
    spinWhile(Pred pred)
    {
        std::uint32_t spins = 0;
        while (pred()) {
            if (++spins < _spinBudget) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            } else {
                // Oversubscribed (or a long leader phase): hand the
                // core over instead of burning it.
                std::this_thread::yield();
            }
        }
    }

    /** Pause-loop iterations before falling back to yield(). On a
     * machine with fewer cores than workers, spinning only delays the
     * thread that owns the work. */
    static std::uint32_t
    pickSpinBudget()
    {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 1 ? 4096 : 1;
    }

    const std::uint32_t _workers;
    const std::uint32_t _spinBudget = pickSpinBudget();
    /** The two phases live on separate cache lines: workers hammer
     * _phase while the leader works, and _arrived is the leader's. */
    alignas(64) std::atomic<std::uint32_t> _arrived{0};
    alignas(64) std::atomic<std::uint32_t> _phase{0};
};

/**
 * Static domain/worker layout of a sharded run.
 *
 * Domains are per-tile: one per core+L1 pair, one per L2 slice, one
 * per memory controller. Worker 0 (the leader) always drives domain 0
 * (core 0's tile); the remaining domains are dealt round-robin over
 * the other workers -- or all onto worker 0 for a single-worker run,
 * which executes the identical windowed semantics on one thread (the
 * determinism baseline).
 */
struct ShardLayout
{
    std::uint32_t workers = 0;   //!< 0 = sequential (no sharding)
    std::uint32_t numCores = 0;
    std::uint32_t numTiles = 0;  //!< L2 slices
    std::uint32_t numMcs = 0;

    static ShardLayout
    make(std::uint32_t requested_shards, std::uint32_t num_cores,
         std::uint32_t num_tiles, std::uint32_t num_mcs)
    {
        ShardLayout l;
        l.numCores = num_cores;
        l.numTiles = num_tiles;
        l.numMcs = num_mcs;
        const std::uint32_t doms = l.domains();
        l.workers = requested_shards > doms ? doms : requested_shards;
        return l;
    }

    bool sharded() const { return workers > 0; }

    /** Total simulation domains (core+L1 tiles, L2 slices, MCs). */
    std::uint32_t
    domains() const
    {
        return numCores + numTiles + numMcs;
    }

    /** Domain id of core @p c (with its store queue and L1). */
    std::uint32_t coreDomain(std::uint32_t c) const { return c; }

    /** Domain id of L2 slice @p t. */
    std::uint32_t
    tileDomain(std::uint32_t t) const
    {
        return numCores + t;
    }

    /** Domain id of memory controller @p m. */
    std::uint32_t
    mcDomain(std::uint32_t m) const
    {
        return numCores + numTiles + m;
    }

    /** Worker that drives domain @p d. */
    std::uint32_t
    workerOfDomain(std::uint32_t d) const
    {
        if (d == 0 || workers <= 1)
            return 0;
        return 1 + (d - 1) % (workers - 1);
    }
};

/**
 * Leader barrier phase: gather every domain's queued control ops,
 * execute them in canonical (tick, actor, sub, domain, idx) order, and
 * repeat for ops submitted *during* execution (e.g. a quiesced LogM
 * truncate completing inline) until none remain. @p scratch is reused
 * across barriers so the steady state allocates nothing.
 */
void drainControlOps(const std::vector<SimDomain *> &domains,
                     std::vector<SimDomain::ControlOp> &scratch);

} // namespace atomsim

#endif // ATOMSIM_SIM_SHARD_HH
