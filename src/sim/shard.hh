/**
 * @file
 * Sharded simulation: domains, mailboxes, window barrier, layout.
 *
 * Sharded runs split the System into *simulation domains* that only
 * interact through the mesh (plus a thin, barrier-synchronized control
 * plane for transaction-boundary operations and workload dispatch):
 *
 *  - domain c (0 <= c < numCores): tile c -- core c, its store queue
 *    and its private L1;
 *  - domain numCores+t: L2 slice t with its directory bank;
 *  - domain numCores+numTiles+m: memory controller m with its NVM
 *    channels, mesh port, LogM and OS log-space slice.
 *
 * Every domain owns its own calendar-queue EventQueue *even when
 * several domains share a worker thread*: the queue is the domain
 * identity, so per-domain event order, FIFO sequence numbers and mesh
 * send counters are independent of how many workers the run uses.
 * That is what makes an N-shard run byte-identical to a 1-shard run
 * (see README, "Parallel simulation").
 *
 * Execution is conservative-window parallel simulation with
 * *distance-based lookahead*. A packet from domain s to domain d takes
 * at least hopLatency x (1 + meshDistance(node(s), node(d))) ticks
 * from send to delivery, so the window a domain may free-run is not a
 * flat 2-tick floor but a per-domain earliest-inbound bound computed
 * from the mesh lookahead matrix (net/mesh.hh) and CMB-style null
 * progress: quiescent domains advertise the earliest tick they could
 * possibly send (their next event, or never), so idle tiles don't hold
 * their neighbors hostage. The leader (worker 0) runs a fixpoint over
 * those bounds at every window barrier and grants each domain an
 * individual window end (harness/runner.cc, ShardEngine).
 *
 * Determinism is anchored by replaying the sequential windowed
 * schedule exactly where it matters:
 *
 *  - mesh sends are routed against the shared link-reservation state
 *    in the canonical (send tick, domain, FIFO index) order, with
 *    control-plane sends interleaved exactly where the sequential
 *    2-tick tiling would place them (FlatTiling below reconstructs
 *    that tiling from the executed-tick logs);
 *  - control operations (AUS acquisition, LogM arm/truncate, txn
 *    fetch) execute at the same reconstructed window boundary, with
 *    every control-plane domain paused at the same tick, in canonical
 *    (tick, actor, sub, domain, idx) order;
 *  - route/reserve itself is region-parallel: the mesh partitions
 *    links and ejection ports into mesh quadrants, XY-routed packets
 *    whose path stays inside one quadrant are routed by assisting
 *    workers in parallel (disjoint link state, disjoint destination
 *    domains), and only seam-crossing packets are merged serially by
 *    the leader.
 *
 * Worker placement is configurable (sim/config.hh ShardPlacement):
 * locality placement co-schedules domains of adjacent mesh tiles on
 * the same worker so most sends stay worker-local; round-robin is the
 * adversarial interleaving used by the TSan CI job. Placement, worker
 * count and thread schedule never change simulated behavior -- the
 * byte-identity goldens pin that.
 *
 * All cross-domain containers (DomainMailbox) are single-writer and
 * are only read by the leader between a worker's barrier arrival and
 * the release, so the barrier's acquire/release pair is the only
 * synchronization the data path needs.
 */

#ifndef ATOMSIM_SIM_SHARD_HH
#define ATOMSIM_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/callback.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace atomsim
{

/**
 * A single-producer mailbox handed to the (single) consumer at window
 * barriers.
 *
 * The producing domain appends during its window; the leader drains
 * between that worker's barrier arrival and the release. Appends
 * preserve FIFO order, and the storage is reused forever (capacity
 * grows to the high-water mark once), keeping the steady state
 * allocation-free.
 */
template <typename T>
class DomainMailbox
{
  public:
    void push(T v) { _items.push_back(std::move(v)); }

    bool empty() const { return _items.empty(); }
    std::size_t size() const { return _items.size(); }

    /** Consumer side: the queued items, in push order. */
    std::vector<T> &items() { return _items; }

    /** Consumer side: forget the items, keep the capacity. */
    void clear() { _items.clear(); }

  private:
    std::vector<T> _items;
};

/**
 * One simulation domain: an event queue plus the domain-scoped
 * counters and mailboxes the sharded executor needs. The domain that
 * is currently executing on this thread is published through a
 * thread-local (current()), so shared front ends (the mesh, LogI) can
 * attribute work to the right domain without threading a handle
 * through every call.
 */
class SimDomain
{
  public:
    /** A deferred control operation, leader-executed at a barrier. */
    struct ControlOp
    {
        Tick tick;            //!< submission tick (canonical key, major)
        std::uint32_t actor;  //!< core id (canonical key)
        std::uint32_t sub;    //!< disambiguator (mc id / op kind)
        std::uint32_t domain; //!< submitting domain (canonical key)
        std::uint32_t idx;    //!< per-domain submission index
        InplaceCallback<64> fn;
    };

    SimDomain(std::uint32_t id, std::uint32_t wheel_buckets)
        : _id(id), _queue(wheel_buckets)
    {
    }

    std::uint32_t id() const { return _id; }
    EventQueue &queue() { return _queue; }
    const EventQueue &queue() const { return _queue; }

    /**
     * Queue @p fn for the leader's next barrier pass. Canonical
     * execution order across domains is (tick, actor, sub, domain,
     * idx) -- all shard-count-invariant.
     */
    void
    submitControl(std::uint32_t actor, std::uint32_t sub,
                  InplaceCallback<64> fn)
    {
        _ctrl.push(ControlOp{_queue.now(), actor, sub, _id, _ctrlIdx++,
                             std::move(fn)});
    }

    DomainMailbox<ControlOp> &controlOut() { return _ctrl; }

    /** Next per-domain mesh-send FIFO index (canonical key, minor). */
    std::uint32_t nextSendIdx() { return _sendIdx++; }

    /** The domain executing on this thread (nullptr outside one). */
    static SimDomain *current() { return tls(); }

    /** RAII scope marking this thread as executing @p d. */
    class Scope
    {
      public:
        explicit Scope(SimDomain *d) : _prev(tls()) { tls() = d; }
        ~Scope() { tls() = _prev; }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        SimDomain *_prev;
    };

  private:
    /** Function-local thread_local (a cross-TU thread_local data
     * member trips GCC's TLS wrapper under UBSan). */
    static SimDomain *&
    tls()
    {
        static thread_local SimDomain *cur = nullptr;
        return cur;
    }

    std::uint32_t _id;
    EventQueue _queue;
    DomainMailbox<ControlOp> _ctrl;
    std::uint32_t _ctrlIdx = 0;
    std::uint32_t _sendIdx = 0;
};

/** Canonical cross-domain control-op order: (tick, actor, sub,
 * domain, idx). Shared by the flat drain and the sharded engine so
 * the two schedules can never disagree. */
inline bool
controlOpBefore(const SimDomain::ControlOp &a, const SimDomain::ControlOp &b)
{
    if (a.tick != b.tick)
        return a.tick < b.tick;
    if (a.actor != b.actor)
        return a.actor < b.actor;
    if (a.sub != b.sub)
        return a.sub < b.sub;
    if (a.domain != b.domain)
        return a.domain < b.domain;
    return a.idx < b.idx;
}

/**
 * Control-op `sub` key registry: disambiguates ops submitted by the
 * same (tick, actor). Per-MC completions use their raw mc id, which
 * stays well below these. Keep every named key here -- a collision
 * silently corrupts the canonical control-op ordering.
 */
namespace ctrlsub
{
constexpr std::uint32_t kBegin = 250;     //!< AUS acquire + LogM arm
constexpr std::uint32_t kTruncate = 251;  //!< commit-time truncate
constexpr std::uint32_t kFetchTxn = 252;  //!< workload txn dispatch
} // namespace ctrlsub

/**
 * Reconstruction of the sequential windowed tiling from the stream of
 * *executed* ticks.
 *
 * The sequential scheduler tiles simulated time greedily: a window
 * starts at the globally earliest pending tick P and ends at
 * min(P + W, limit + 1); the next window starts at the earliest
 * pending tick at or past that end. Because the earliest pending tick
 * always executes, the tiling is a pure function of the executed-tick
 * stream -- which the sharded engine records per domain
 * (EventQueue::setTickLog) and feeds here in global sorted order.
 *
 * The engine uses the reconstructed window end as the canonical
 * barrier tick for control-plane operations: ops execute exactly when
 * the sequential run would have executed them, which is what keeps
 * AUS stall stamps and log-manager interleavings byte-identical.
 *
 * consume() must see ticks in nondecreasing order. reset() re-anchors
 * the tiling (used at advanceTo() boundaries: the sequential loop
 * re-anchors its first window at the earliest pending tick of the new
 * call).
 */
class FlatTiling
{
  public:
    /** @param window the sequential window width W (>= 1) */
    void
    configure(Tick window, Tick limit)
    {
        _window = window;
        _limit = limit;
    }

    void setLimit(Tick limit) { _limit = limit; }

    /** Forget the anchor; the next consumed tick starts a window. */
    void reset() { _anchored = false; }

    /** Feed the next executed tick (globally sorted). */
    void
    consume(Tick t)
    {
        if (_anchored && t < end())
            return;
        _p = t;
        _anchored = true;
    }

    bool anchored() const { return _anchored; }

    /** End of the window covering the last consumed tick. */
    Tick
    end() const
    {
        Tick e = _p + _window;
        if (_limit != kTickNever && e > _limit + 1)
            e = _limit + 1;
        return e;
    }

  private:
    Tick _window = 1;
    Tick _limit = kTickNever;
    Tick _p = 0;
    bool _anchored = false;
};

/**
 * Sense-reversing spin barrier with a distinguished leader.
 *
 * Workers arrive and spin until the leader releases the next window;
 * the leader waits for all workers, performs the barrier work (merge,
 * control ops, window selection) with exclusive access to every
 * domain, then releases. The arrive/release pair carries the
 * acquire/release ordering that publishes each side's writes to the
 * other.
 */
class WindowBarrier
{
  public:
    /** @param workers number of non-leader workers */
    explicit WindowBarrier(std::uint32_t workers)
        : _workers(workers), _spinBudget(pickSpinBudget(workers + 1))
    {
    }

    /** Worker: arrive and block until the leader releases. */
    void
    workerArrive()
    {
        const std::uint32_t phase = _phase.load(std::memory_order_acquire);
        _arrived.fetch_add(1, std::memory_order_acq_rel);
        spinWhile([&] {
            return _phase.load(std::memory_order_acquire) == phase;
        });
    }

    /** Leader: block until every worker has arrived. */
    void
    leaderWait()
    {
        spinWhile([&] {
            return _arrived.load(std::memory_order_acquire) != _workers;
        });
        _arrived.store(0, std::memory_order_relaxed);
    }

    /** Leader: open the next window (pairs with workerArrive). */
    void leaderRelease() { _phase.fetch_add(1, std::memory_order_acq_rel); }

    /** Pause-loop iterations before falling back to yield(), for
     * @p threads runnable barrier participants. Exposed for tests. */
    static std::uint32_t
    pickSpinBudget(std::uint32_t threads)
    {
        const unsigned hw = std::thread::hardware_concurrency();
        // Oversubscribed (more runnable threads than cores, or unknown
        // topology): spinning only delays the thread that owns the
        // work, so hand the core over almost immediately. The CI case
        // -- 8 shards on 1-2 cores -- lives here.
        if (hw == 0 || threads > hw)
            return 64;
        return 4096;
    }

    std::uint32_t spinBudget() const { return _spinBudget; }

  private:
    template <typename Pred>
    void
    spinWhile(Pred pred)
    {
        std::uint32_t spins = 0;
        while (pred()) {
            if (++spins < _spinBudget) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            } else {
                std::this_thread::yield();
            }
        }
    }

    const std::uint32_t _workers;
    const std::uint32_t _spinBudget;
    /** The two phases live on separate cache lines: workers hammer
     * _phase while the leader works, and _arrived is the leader's. */
    alignas(64) std::atomic<std::uint32_t> _arrived{0};
    alignas(64) std::atomic<std::uint32_t> _phase{0};
};

/**
 * Static domain/worker layout of a sharded run.
 *
 * Domains are per-tile: one per core+L1 pair, one per L2 slice, one
 * per memory controller. Worker 0 (the leader) always drives domain 0
 * (core 0's tile). The remaining domains are assigned by placement
 * policy: round-robin deals them over the other workers (the
 * adversarial interleaving), locality placement groups domains of
 * adjacent mesh nodes onto the same worker so most mesh traffic stays
 * worker-local. A single-worker run executes the identical windowed
 * semantics on one thread (the determinism baseline); placement never
 * changes simulated behavior, only which thread runs which domain.
 */
struct ShardLayout
{
    std::uint32_t workers = 0;   //!< 0 = sequential (no sharding)
    std::uint32_t numCores = 0;
    std::uint32_t numTiles = 0;  //!< L2 slices
    std::uint32_t numMcs = 0;
    std::uint32_t meshRows = 0;  //!< 0 = no mesh geometry known
    std::uint32_t meshCols = 0;
    ShardPlacement placement = ShardPlacement::RoundRobin;

    static ShardLayout
    make(std::uint32_t requested_shards, std::uint32_t num_cores,
         std::uint32_t num_tiles, std::uint32_t num_mcs,
         ShardPlacement placement = ShardPlacement::RoundRobin,
         std::uint32_t mesh_rows = 0, std::uint32_t mesh_cols = 0)
    {
        ShardLayout l;
        l.numCores = num_cores;
        l.numTiles = num_tiles;
        l.numMcs = num_mcs;
        l.meshRows = mesh_rows;
        l.meshCols = mesh_cols;
        l.placement = placement;
        const std::uint32_t doms = l.domains();
        l.workers = requested_shards > doms ? doms : requested_shards;
        return l;
    }

    bool sharded() const { return workers > 0; }

    /** Total simulation domains (core+L1 tiles, L2 slices, MCs). */
    std::uint32_t
    domains() const
    {
        return numCores + numTiles + numMcs;
    }

    /** Domain id of core @p c (with its store queue and L1). */
    std::uint32_t coreDomain(std::uint32_t c) const { return c; }

    /** Domain id of L2 slice @p t. */
    std::uint32_t
    tileDomain(std::uint32_t t) const
    {
        return numCores + t;
    }

    /** Domain id of memory controller @p m. */
    std::uint32_t
    mcDomain(std::uint32_t m) const
    {
        return numCores + numTiles + m;
    }

    std::uint32_t numNodes() const { return meshRows * meshCols; }

    /**
     * Mesh node hosting domain @p d. Mirrors the component placement
     * in net/mesh.cc (coreNode/tileNode/mcNode) -- cores and L2 slices
     * stripe over the nodes, MCs sit on the corners.
     */
    std::uint32_t
    nodeOfDomain(std::uint32_t d) const
    {
        const std::uint32_t nn = numNodes();
        if (nn == 0)
            return 0;
        if (d < numCores)
            return d % nn;
        if (d < numCores + numTiles)
            return (d - numCores) % nn;
        const std::uint32_t m = d - numCores - numTiles;
        const std::uint32_t r = meshRows - 1;
        const std::uint32_t c = meshCols - 1;
        switch (m % 4) {
          case 0: return 0;
          case 1: return c;
          case 2: return r * meshCols;
          default: return r * meshCols + c;
        }
    }

    /** Worker that drives domain @p d. */
    std::uint32_t
    workerOfDomain(std::uint32_t d) const
    {
        if (d == 0 || workers <= 1)
            return 0;
        if (placement == ShardPlacement::Locality && numNodes() > 0) {
            // Contiguous node ranges per worker: adjacent tiles (and
            // the core/L2/MC domains that live on them) co-schedule,
            // so most mesh sends stay on one worker. Node 0 lands on
            // worker 0, keeping the leader = domain 0 invariant.
            return nodeOfDomain(d) * workers / numNodes();
        }
        return 1 + (d - 1) % (workers - 1);
    }
};

/**
 * Leader barrier phase: gather every domain's queued control ops,
 * execute them in canonical controlOpBefore() order, and repeat for
 * ops submitted *during* execution (e.g. a quiesced LogM truncate
 * completing inline) until none remain. @p scratch is reused across
 * barriers so the steady state allocates nothing.
 */
void drainControlOps(const std::vector<SimDomain *> &domains,
                     std::vector<SimDomain::ControlOp> &scratch);

} // namespace atomsim

#endif // ATOMSIM_SIM_SHARD_HH
