/**
 * @file
 * System configuration: Table I of the paper, plus design knobs.
 *
 * Defaults reproduce the paper's evaluated machine: 32 OoO cores at
 * 2 GHz, 32-entry store queue, 32 KB 4-way L1, 32 x 1 MB 16-way L2
 * tiles, 4 memory controllers, NVM write/read latency of 360/240 core
 * cycles (10x DRAM write latency), 2D mesh with 4 rows and 16-byte
 * flits, 5.3 GB/s peak bandwidth per memory channel.
 */

#ifndef ATOMSIM_SIM_CONFIG_HH
#define ATOMSIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace atomsim
{

/**
 * Which atomic-durability design the system runs.
 *
 * These correspond one-to-one with the designs compared in Section V of
 * the paper.
 */
enum class DesignKind
{
    /** Hardware undo log; log persist in the store critical path. */
    Base,
    /** ATOM with the posted-log optimization (Section III-C). */
    Atom,
    /** ATOM with posted + source logging (Section III-D). */
    AtomOpt,
    /** No logging at all; upper bound. Data still flushed at commit. */
    NonAtomic,
    /** Redo-log design of Doshi et al. (HPCA 2016), hardware-assisted. */
    Redo,
};

/** Human-readable design name as used in the paper's figures. */
const char *designName(DesignKind kind);

/** Parse a design name ("BASE", "ATOM", "ATOM-OPT", ...). */
DesignKind designFromName(const std::string &name);

/** Full machine + design configuration. */
struct SystemConfig
{
    // --- Cores (Table I) -------------------------------------------------
    std::uint32_t numCores = 32;
    /** Core clock in Hz; used only to convert cycles to seconds. */
    double clockHz = 2.0e9;
    std::uint32_t robSize = 192;
    std::uint32_t sqEntries = 32;
    /**
     * Stores the SQ may retire concurrently (entries dequeue in
     * order). Models the LogI MSHRs that let log writes of several
     * stores overlap (Section IV-B) instead of serializing each
     * log persist at the SQ head.
     */
    std::uint32_t sqDrainWidth = 2;
    /**
     * Average non-memory work between two memory micro-ops, in cycles.
     * Stands in for the OoO core's compute (instruction fetch/decode,
     * address generation, the program's non-memory instructions);
     * calibrated so the BASE-vs-NON-ATOMIC gap lands in the paper's
     * reported range. See DESIGN.md substitutions.
     */
    Cycles computeGap = 80;

    // --- L1 (Table I) ----------------------------------------------------
    std::uint32_t l1SizeBytes = 32 * 1024;
    std::uint32_t l1Assoc = 4;
    Cycles l1Latency = 3;
    std::uint32_t mshrs = 32;

    // --- L2 (Table I) ----------------------------------------------------
    std::uint32_t l2Tiles = 32;
    std::uint32_t l2TileBytes = 1024 * 1024;
    std::uint32_t l2Assoc = 16;
    Cycles l2Latency = 30;

    // --- Memory (Table I) ------------------------------------------------
    std::uint32_t numMemCtrls = 4;
    /** Channels per memory controller (1 default; 2 for the -2C runs). */
    std::uint32_t channelsPerMc = 1;
    Cycles nvmReadLatency = 240;
    Cycles nvmWriteLatency = 360;
    /**
     * Peak bandwidth per channel in bytes/second (5.3 GB/s). Converted
     * to a per-64B-transfer channel occupancy internally.
     */
    double channelBandwidthBytesPerSec = 5.3e9;
    /** Latency of the record-header address match in the MC (1 cycle). */
    Cycles mcAddrMatchLatency = 1;
    /** MC scheduling / queueing overhead per request. */
    Cycles mcFrontendLatency = 8;
    /** Read queue entries per controller. */
    std::uint32_t mcReadQueue = 64;
    /** Write queue entries per controller. */
    std::uint32_t mcWriteQueue = 64;

    // --- Network (Table I) -----------------------------------------------
    std::uint32_t meshRows = 4;
    std::uint32_t flitBytes = 16;
    /** Per-hop router + link traversal latency. */
    Cycles hopLatency = 2;
    /**
     * Bound on a link's delivery-queue depth (0 = unbounded). When a
     * link's queue is full, new packets stall and re-enter as it
     * drains (mesh.link_stalls / link_stall_cycles observe this).
     */
    std::uint32_t linkQueueDepth = 0;

    // --- ATOM log manager (Section IV) -------------------------------
    /** Log records are 8 lines: 7 data entries + 1 header. */
    std::uint32_t recordEntries = 7;
    /** Records per log bucket. */
    std::uint32_t recordsPerBucket = 8;
    /** Buckets per memory controller (bucket bit vector width). */
    std::uint32_t bucketsPerMc = 256;
    /** Concurrent atomic updates supported in hardware (AUS count). */
    std::uint32_t ausPerMc = 32;
    /** Enable log-entry collation (ablation knob; paper default on). */
    bool enableLec = true;
    /**
     * Buckets the OS initially hands to each controller's free list
     * (0 = all of bucketsPerMc). Smaller values exercise log overflow:
     * the OS is interrupted to map more log pages (Section IV-E).
     */
    std::uint32_t osInitialBucketsPerMc = 0;
    /** OS interrupt + page-mapping cost on log overflow. */
    Cycles osOverflowLatency = 5000;

    // --- Simulation kernel -------------------------------------------
    /**
     * Event-queue shards the simulation runs on.
     *
     *  - 0 (default): classic single-queue sequential simulation.
     *  - N >= 1: sharded mode -- the cache complex (cores, L1s, L2
     *    tiles) forms one shard and the memory-controller domains
     *    (MC + LogM + NVM channels) are distributed over the rest,
     *    each shard free-running on its own calendar queue inside a
     *    conservative lookahead window and exchanging mesh packets
     *    through mailboxes at window barriers. Clamped to
     *    1 + numMemCtrls. Sharded runs are deterministic and
     *    byte-identical across shard counts (see README, "Parallel
     *    simulation"); numShards = 1 runs the identical windowed
     *    semantics on one worker thread.
     *
     * Requires linkQueueDepth == 0 and design != Redo.
     */
    std::uint32_t numShards = 0;
    /**
     * Conservative window width in ticks for sharded runs. Must not
     * exceed the cross-shard lookahead (hopLatency: the minimum time
     * between a mesh send and its earliest possible delivery). 0 picks
     * hopLatency automatically.
     */
    Cycles windowTicks = 0;
    /**
     * Calendar-wheel width of every event queue, in one-tick buckets
     * (power of two >= 64). Tune against EventQueue::spillRatio() --
     * bench/parallel_scaling.cc reports the ratio for TPC-C at full
     * core count.
     */
    std::uint32_t wheelBuckets = 4096;

    // --- Design under test -------------------------------------------
    DesignKind design = DesignKind::AtomOpt;

    /**
     * REDO: entries the write-combining buffer holds before draining.
     */
    std::uint32_t redoCombineEntries = 8;

    /** Workload RNG seed. */
    std::uint64_t seed = 42;

    // --- Derived -----------------------------------------------------
    /** Channel occupancy of one 64-byte transfer, in core cycles. */
    Cycles lineTransferCycles() const;
    /** Mesh columns = total tiles / rows (cores co-located with tiles). */
    std::uint32_t meshCols() const;

    /** Abort with a message if the configuration is inconsistent. */
    void validate() const;
};

} // namespace atomsim

#endif // ATOMSIM_SIM_CONFIG_HH
