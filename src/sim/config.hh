/**
 * @file
 * System configuration: Table I of the paper, plus design knobs.
 *
 * Defaults reproduce the paper's evaluated machine: 32 OoO cores at
 * 2 GHz, 32-entry store queue, 32 KB 4-way L1, 32 x 1 MB 16-way L2
 * tiles, 4 memory controllers, NVM write/read latency of 360/240 core
 * cycles (10x DRAM write latency), 2D mesh with 4 rows and 16-byte
 * flits, 5.3 GB/s peak bandwidth per memory channel.
 */

#ifndef ATOMSIM_SIM_CONFIG_HH
#define ATOMSIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace atomsim
{

/**
 * Which atomic-durability design the system runs.
 *
 * These correspond one-to-one with the designs compared in Section V of
 * the paper.
 */
enum class DesignKind
{
    /** Hardware undo log; log persist in the store critical path. */
    Base,
    /** ATOM with the posted-log optimization (Section III-C). */
    Atom,
    /** ATOM with posted + source logging (Section III-D). */
    AtomOpt,
    /** No logging at all; upper bound. Data still flushed at commit. */
    NonAtomic,
    /** Redo-log design of Doshi et al. (HPCA 2016), hardware-assisted. */
    Redo,
};

/** Human-readable design name as used in the paper's figures. */
const char *designName(DesignKind kind);

/** Parse a design name ("BASE", "ATOM", "ATOM-OPT", ...). */
DesignKind designFromName(const std::string &name);

/**
 * Memory-system organization behind the controllers.
 *
 * The paper evaluates a flat NVM main memory; real NVM deployments
 * (Peng et al., arXiv:2002.06499; Liu et al., arXiv:1705.03598) put a
 * DRAM tier in front of it, either transparently or as an explicitly
 * partitioned region.
 */
enum class HybridMode : std::uint8_t
{
    /** Flat NVM (the paper's machine). No DRAM is modeled at all;
     * every timing-model byte behaves exactly as before this knob
     * existed. */
    NvmOnly,
    /** Memory mode: every address is backed by a per-MC set-
     * associative DRAM cache in front of the NVM channel (demand
     * fill on read miss, dirty-victim writeback to NVM). The DRAM
     * tier is volatile: powerFail drops dirty cached lines, and only
     * NVM-resident bytes survive into the recovery image. */
    MemoryMode,
    /** App-direct: as MemoryMode, but an address window (chosen by
     * SystemConfig::appDirectRegion) bypasses the DRAM cache and
     * talks straight to NVM. */
    AppDirect,
};

/** Human-readable hybrid-mode name ("nvmOnly", "memoryMode", ...). */
const char *hybridModeName(HybridMode mode);

/** Parse a hybrid-mode name. */
HybridMode hybridModeFromName(const std::string &name);

/**
 * What a transaction's commit acknowledgment promises once the flash
 * tier (SystemConfig::ssdTier) turns log truncation into a real
 * destage pipeline. Strict is the paper's machine; the other two trade
 * recovery-point guarantees for commit latency.
 */
enum class DurabilityPolicy : std::uint8_t
{
    /** Durable at NVM write: the commit ack waits for the full
     * flush + truncate pipeline, exactly as without the flash tier.
     * A crash after the ack loses nothing. */
    Strict,
    /** Ack at NVM durability, but truncation completion additionally
     * waits until the un-destaged cold-page backlog has drained below
     * ssdMaxDestageBacklog, bounding the NVM-resident log footprint.
     * Crash-loss guarantee identical to Strict. */
    Balanced,
    /** Ack from a volatile staging window of ssdStagingWindow commits:
     * the core continues as soon as its log is sealed, while the
     * flush + truncate pipeline completes in the background. A power
     * failure loses at most the staged (acked-but-untruncated)
     * commits, each of which rolls back wholly at recovery. Sequential
     * kernel only (the window is cross-domain state). */
    Eventual,
};

/** Human-readable policy name ("strict", "balanced", "eventual"). */
const char *durabilityPolicyName(DurabilityPolicy policy);

/** Parse a durability-policy name. */
DurabilityPolicy durabilityPolicyFromName(const std::string &name);

/**
 * Domain-to-worker placement policy for sharded runs.
 *
 * Placement never changes simulated behavior (the byte-identity
 * goldens pin that); it only decides which worker thread drives which
 * simulation domains, which moves the same-worker send fraction and
 * hence the parallel speedup.
 */
enum class ShardPlacement : std::uint8_t
{
    /** Deal domains round-robin over the non-leader workers. Worst
     * case for locality; the TSan CI job uses it adversarially. */
    RoundRobin,
    /** Group domains of adjacent mesh nodes onto the same worker, so
     * most mesh sends stay worker-local (the default). */
    Locality,
};

/** Human-readable placement name ("roundRobin", "locality"). */
const char *shardPlacementName(ShardPlacement placement);

/** Parse a placement name. */
ShardPlacement shardPlacementFromName(const std::string &name);

/**
 * Which region bypasses the DRAM cache in HybridMode::AppDirect: the
 * log placement policy. LogRegion steers ATOM's log (and the ADR
 * pages) direct-to-NVM while data pages are DRAM-cached — the natural
 * fit for undo logging, whose log writes are durability-critical and
 * whose data writebacks are not. DataRegion is the inverse design
 * point: data pages direct, the log region behind the DRAM cache
 * (log *writes* still persist write-through; only log reads — the
 * REDO backend's replay traffic — gain DRAM locality).
 */
enum class AppDirectRegion : std::uint8_t
{
    LogRegion,
    DataRegion,
};

/** Full machine + design configuration. */
struct SystemConfig
{
    // --- Cores (Table I) -------------------------------------------------
    std::uint32_t numCores = 32;
    /** Core clock in Hz; used only to convert cycles to seconds. */
    double clockHz = 2.0e9;
    std::uint32_t robSize = 192;
    std::uint32_t sqEntries = 32;
    /**
     * Stores the SQ may retire concurrently (entries dequeue in
     * order). Models the LogI MSHRs that let log writes of several
     * stores overlap (Section IV-B) instead of serializing each
     * log persist at the SQ head.
     */
    std::uint32_t sqDrainWidth = 2;
    /**
     * Average non-memory work between two memory micro-ops, in cycles.
     * Stands in for the OoO core's compute (instruction fetch/decode,
     * address generation, the program's non-memory instructions);
     * calibrated so the BASE-vs-NON-ATOMIC gap lands in the paper's
     * reported range. See DESIGN.md substitutions.
     */
    Cycles computeGap = 80;

    // --- L1 (Table I) ----------------------------------------------------
    std::uint32_t l1SizeBytes = 32 * 1024;
    std::uint32_t l1Assoc = 4;
    Cycles l1Latency = 3;
    std::uint32_t mshrs = 32;
    /**
     * L1 writeback-buffer snoop-hit fast path: a *load* miss whose
     * line sits in the L1's own writeback buffer (PutM in flight to
     * home) completes locally from the buffered copy instead of a
     * full round trip through the home tile. Default off to keep the
     * goldens; store misses always refetch through home — reviving a
     * line whose PutM is already in the mesh would need a
     * writeback-cancel handshake the protocol does not have (the home
     * would stop tracking us as owner once the PutM lands, making a
     * locally-revived Modified copy invisible to the directory).
     */
    bool l1WbHit = false;

    // --- L2 (Table I) ----------------------------------------------------
    std::uint32_t l2Tiles = 32;
    std::uint32_t l2TileBytes = 1024 * 1024;
    std::uint32_t l2Assoc = 16;
    Cycles l2Latency = 30;

    // --- Memory (Table I) ------------------------------------------------
    std::uint32_t numMemCtrls = 4;
    /** Channels per memory controller (1 default; 2 for the -2C runs). */
    std::uint32_t channelsPerMc = 1;
    Cycles nvmReadLatency = 240;
    Cycles nvmWriteLatency = 360;
    /**
     * Peak bandwidth per channel in bytes/second (5.3 GB/s). Converted
     * to a per-64B-transfer channel occupancy internally.
     */
    double channelBandwidthBytesPerSec = 5.3e9;
    /** Latency of the record-header address match in the MC (1 cycle). */
    Cycles mcAddrMatchLatency = 1;
    /** MC scheduling / queueing overhead per request. */
    Cycles mcFrontendLatency = 8;
    /** Read queue entries per controller. */
    std::uint32_t mcReadQueue = 64;
    /** Write queue entries per controller. */
    std::uint32_t mcWriteQueue = 64;

    // --- Hybrid DRAM/NVM memory (src/mem/dram_{device,cache}) --------
    /**
     * Memory organization behind the controllers. The default,
     * NvmOnly, models the paper's flat NVM machine and leaves every
     * golden byte-identical; MemoryMode/AppDirect put a per-MC DRAM
     * cache in front of the NVM channel.
     */
    HybridMode hybridMode = HybridMode::NvmOnly;
    /** Which region bypasses the cache in AppDirect mode (the log
     * placement policy; see designs/design.hh::logPlacementName). */
    AppDirectRegion appDirectRegion = AppDirectRegion::LogRegion;
    /** DRAM-cache capacity per memory controller, in MB. */
    std::uint32_t dramCacheMBPerMc = 16;
    /** DRAM-cache associativity. */
    std::uint32_t dramCacheAssoc = 8;
    /** DRAM banks per controller (row buffers / busy reservations). */
    std::uint32_t dramBanksPerMc = 8;
    /** DRAM row-buffer size in bytes (power of two >= line size). */
    std::uint32_t dramRowBytes = 2048;
    /** Device latency when the access hits the open row. */
    Cycles dramRowHitLatency = 18;
    /** Device latency on a row-buffer miss (precharge + activate). */
    Cycles dramRowMissLatency = 36;
    /**
     * Peak DRAM bandwidth per controller in bytes/second (12.8 GB/s,
     * one DDR channel); converted to a per-64B-transfer occupancy.
     */
    double dramBandwidthBytesPerSec = 12.8e9;

    // --- Flash/SSD third tier (src/mem/ssd_device) -------------------
    /**
     * Model a flash tier behind the NVM (off by default; every golden
     * stays byte-identical). Each controller owns an NVMe-style SSD
     * slice — per-channel submission/completion queue pairs polled
     * from the MC's simulation domain — plus a destage engine that
     * migrates cold log segments and cold data pages to flash at log
     * truncation, leaving a durable NVM-resident forwarding map so
     * reads of destaged pages stall through the SSD read path.
     */
    bool ssdTier = false;
    /** Commit-ack durability contract when the tier is on (strict
     * required when off). See DurabilityPolicy. */
    DurabilityPolicy durabilityPolicy = DurabilityPolicy::Strict;
    /** Flash channels per controller (one SQ/CQ pair each). */
    std::uint32_t ssdChannels = 4;
    /** Independent dies per channel (tR/tPROG occupancy units). */
    std::uint32_t ssdDiesPerChannel = 2;
    /** Submission/completion ring capacity per queue pair; also the
     * per-pair outstanding-command bound, so the CQ can never
     * overflow. */
    std::uint32_t ssdQueueDepth = 32;
    /** Poll cadence of the MC-domain doorbell/reap loop, in cycles. */
    Cycles ssdPollInterval = 200;
    /** Die read (tR) latency in core cycles (~8 us at 2 GHz). */
    Cycles ssdReadLatency = 16000;
    /** Die program (tPROG) latency in core cycles (~20 us at 2 GHz). */
    Cycles ssdProgramLatency = 40000;
    /** Channel bus bandwidth in bytes/second (1.2 GB/s ONFI-ish);
     * converted to a per-4KB-page transfer occupancy. */
    double ssdChannelBandwidthBytesPerSec = 1.2e9;
    /** Flash pages addressable per controller slice (also sizes the
     * NVM-resident forwarding map: 16 bytes per flash page). */
    std::uint32_t ssdFlashPagesPerMc = 4096;
    /** Cold data pages the engine keeps NVM-resident before destaging
     * the excess (truncation order, oldest first). */
    std::uint32_t ssdColdPageWatermark = 256;
    /** Balanced/eventual: truncation completion parks until the
     * un-destaged backlog (pending + in-flight destages) is at most
     * this many pages. */
    std::uint32_t ssdMaxDestageBacklog = 16;
    /** Eventual: commits acknowledged early from the volatile staging
     * window; at most this many acked commits are lost on powerFail. */
    std::uint32_t ssdStagingWindow = 8;

    // --- Network (Table I) -----------------------------------------------
    std::uint32_t meshRows = 4;
    std::uint32_t flitBytes = 16;
    /** Per-hop router + link traversal latency. */
    Cycles hopLatency = 2;
    /**
     * Bound on a link's delivery-queue depth (0 = unbounded). When a
     * link's queue is full, new packets stall and re-enter as it
     * drains (mesh.link_stalls / link_stall_cycles observe this).
     */
    std::uint32_t linkQueueDepth = 0;

    // --- ATOM log manager (Section IV) -------------------------------
    /** Log records are 8 lines: 7 data entries + 1 header. */
    std::uint32_t recordEntries = 7;
    /** Records per log bucket. */
    std::uint32_t recordsPerBucket = 8;
    /** Buckets per memory controller (bucket bit vector width). */
    std::uint32_t bucketsPerMc = 256;
    /** Concurrent atomic updates supported in hardware (AUS count). */
    std::uint32_t ausPerMc = 32;
    /** Enable log-entry collation (ablation knob; paper default on). */
    bool enableLec = true;
    /**
     * Buckets the OS initially hands to each controller's free list
     * (0 = all of bucketsPerMc). Smaller values exercise log overflow:
     * the OS is interrupted to map more log pages (Section IV-E).
     */
    std::uint32_t osInitialBucketsPerMc = 0;
    /** OS interrupt + page-mapping cost on log overflow. */
    Cycles osOverflowLatency = 5000;

    // --- Simulation kernel -------------------------------------------
    /**
     * Worker threads the simulation runs on.
     *
     *  - 0 (default): classic single-queue sequential simulation.
     *  - N >= 1: sharded mode -- the system splits into per-tile
     *    simulation domains (one per core+L1, one per L2 slice, one
     *    per memory controller), each free-running on its own calendar
     *    queue inside a per-domain distance-based lookahead window and
     *    exchanging mesh packets through mailboxes at window barriers.
     *    Domains are dealt over the workers by shardPlacement; the
     *    worker count is clamped to the domain count. Sharded runs are
     *    deterministic and byte-identical across shard counts and
     *    placements (see README, "Parallel simulation"); numShards = 1
     *    runs the identical windowed semantics on one worker thread.
     *
     * Requires linkQueueDepth == 0 and design != Redo.
     */
    std::uint32_t numShards = 0;
    /**
     * Width in ticks of the *canonical* window tiling that anchors
     * control-plane operations in sharded runs (sim/shard.hh,
     * FlatTiling). Must not exceed hopLatency -- the tiling must stay
     * reconstructible from executed ticks alone, which needs every
     * send's delivery to land beyond its own window. 0 picks
     * hopLatency automatically. This does NOT bound how far domains
     * free-run: data-path windows widen to the per-domain
     * distance-based lookahead bound.
     */
    Cycles windowTicks = 0;
    /**
     * Domain-to-worker placement policy for sharded runs. Locality
     * placement keeps adjacent mesh tiles on the same worker (fewer
     * cross-worker sends); round-robin is the adversarial
     * interleaving. Simulated behavior is identical under both.
     */
    ShardPlacement shardPlacement = ShardPlacement::Locality;
    /**
     * Calendar-wheel width of every event queue, in one-tick buckets
     * (power of two >= 64). Tune against EventQueue::spillRatio() --
     * bench/parallel_scaling.cc reports the ratio for TPC-C at full
     * core count.
     */
    std::uint32_t wheelBuckets = 4096;
    /**
     * Serialize transactions across cores through a global ticket
     * (cpu/core.hh, RegionSerializer): a core holds the ticket from
     * transaction fetch through completion, so no two cores ever run
     * concurrently. This emulates the lock-based isolation ATOM
     * requires from software, and is needed for crash consistency
     * whenever a workload's regions mutate structures SHARED between
     * cores (TPC-C): rolling back one core's incomplete region must
     * never restore pre-images over another core's committed writes,
     * and -- because store payloads are computed functionally at
     * fetch -- commit order must match fetch order, or a crash can
     * roll back an update that a later-fetched committed transaction
     * structurally built upon. Off (the default) keeps concurrent
     * timing and every pinned golden unchanged; the per-core micro
     * workloads never share written lines, so they do not need it.
     * Sequential kernel only (the ticket is cross-domain state).
     */
    bool serializeAtomicRegions = false;

    // --- Fault model (src/sim/fault.hh; defaults all off) ------------
    /**
     * Torn writes: at power failure, each write in flight at the NVM
     * device commits a seeded word-aligned *prefix* (0..8 of its
     * 8-byte words) instead of committing or vanishing atomically --
     * real NVM guarantees only 8-byte write atomicity. Off (the
     * default) keeps the gentle atomic model and every golden
     * byte-identical. The tear boundary of each write is a pure
     * function of (faultSeed, controller, address, acceptance
     * sequence), so it is identical across reruns and shard counts.
     */
    bool tornWrites = false;
    /**
     * Media errors: expected failed NVM read attempts per 65536
     * (0 = off, 65536 = every attempt fails). A failed attempt is
     * retried after mediaRetryBackoff extra device cycles, up to
     * mediaRetryLimit retries; exhausting the retries surfaces a
     * structured MediaFaultRecord on the controller (the data is
     * still delivered -- the model reports the uncorrectable error
     * instead of silently corrupting the line).
     */
    std::uint32_t mediaErrorPer64k = 0;
    /** Bounded retries after a failed read attempt. */
    std::uint32_t mediaRetryLimit = 3;
    /** Extra device backoff per media-error retry, in cycles. */
    Cycles mediaRetryBackoff = 100;
    /**
     * Seed of the fault-injection streams (torn-write boundaries,
     * media errors, recovery-crash tears). Deliberately separate from
     * the workload seed so the same workload can be swept across
     * fault patterns.
     */
    std::uint64_t faultSeed = 1;

    // --- Design under test -------------------------------------------
    DesignKind design = DesignKind::AtomOpt;

    /**
     * REDO: entries the write-combining buffer holds before draining.
     */
    std::uint32_t redoCombineEntries = 8;

    /** Workload RNG seed. */
    std::uint64_t seed = 42;

    // --- Multi-tenant serving (src/workloads/kv_workload) ------------
    /**
     * Number of tenants sharing the machine (0 = single-tenant, the
     * default; every historical config). Tenants partition the cores
     * into contiguous balanced blocks (tenantOf) and, for workloads
     * that support it, run independent instances over disjoint address
     * ranges. When nonzero, per-tenant counters ("tenantN.commits",
     * "tenantN.aus_acquires", "tenantN.log_writes") join the StatSet
     * and the Runner records per-tenant/per-class latency histograms.
     */
    std::uint32_t numTenants = 0;

    /** Tenant owning @p core (0 when single-tenant). Contiguous
     * balanced blocks: core c -> c * T / numCores. */
    std::uint32_t
    tenantOf(std::uint32_t core) const
    {
        if (numTenants == 0)
            return 0;
        return std::uint32_t(std::uint64_t(core) * numTenants / numCores);
    }

    /** Tenant count as an array bound (1 when single-tenant). */
    std::uint32_t
    tenantSlots() const
    {
        return numTenants ? numTenants : 1;
    }

    // --- Derived -----------------------------------------------------
    /** Channel occupancy of one 64-byte transfer, in core cycles. */
    Cycles lineTransferCycles() const;
    /** DRAM occupancy of one 64-byte transfer, in core cycles. */
    Cycles dramTransferCycles() const;
    /** Flash channel occupancy of one 4 KB page transfer, in cycles. */
    Cycles ssdPageTransferCycles() const;
    /** True when a DRAM tier is configured (hybridMode != NvmOnly). */
    bool hybrid() const { return hybridMode != HybridMode::NvmOnly; }
    /** Mesh columns = total tiles / rows (cores co-located with tiles). */
    std::uint32_t meshCols() const;

    /** Abort with a message if the configuration is inconsistent. */
    void validate() const;

    /**
     * Large-mesh preset: a scaled machine with @p tiles cores and L2
     * tiles on a square mesh. Supported sizes: 256 (16x16 mesh, 8 MCs)
     * and 1024 (32x32 mesh, 16 MCs). Per-tile L2 capacity shrinks with
     * scale and the calendar wheel narrows at 1024 tiles so the host
     * footprint stays bounded; everything else keeps the Table I
     * defaults.
     */
    static SystemConfig makeMeshPreset(std::uint32_t tiles);
};

} // namespace atomsim

#endif // ATOMSIM_SIM_CONFIG_HH
