#include "sim/random.hh"

namespace atomsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

void
Random::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &w : _s)
        w = splitmix64(sm);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
    const std::uint64_t t = _s[1] << 17;
    _s[2] ^= _s[0];
    _s[3] ^= _s[1];
    _s[1] ^= _s[2];
    _s[0] ^= _s[3];
    _s[2] ^= t;
    _s[3] = rotl(_s[3], 45);
    return result;
}

std::uint64_t
Random::below(std::uint64_t bound)
{
    // Debiased modulo via rejection sampling.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Random::unit()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

} // namespace atomsim
