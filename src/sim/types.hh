/**
 * @file
 * Fundamental scalar types used throughout atomsim.
 *
 * All timing in atomsim is expressed in core clock cycles ("ticks") of
 * the simulated 2 GHz processor. Addresses are byte addresses in the
 * simulated physical address space.
 */

#ifndef ATOMSIM_SIM_TYPES_HH
#define ATOMSIM_SIM_TYPES_HH

#include <cstdint>

namespace atomsim
{

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** A duration, in core clock cycles. */
using Cycles = std::uint64_t;

/** Physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of a core / hardware thread (0..numCores-1). */
using CoreId = std::uint32_t;

/** Identifier of a memory controller (0..numMemCtrls-1). */
using McId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kTickNever = ~Tick(0);

/** Cache line size used everywhere in the system (bytes). */
constexpr std::uint32_t kLineBytes = 64;

/** Shift amount converting a byte address to a line address. */
constexpr std::uint32_t kLineShift = 6;

/** Align an address down to its cache-line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~Addr(kLineBytes - 1);
}

/** Line number (address / 64) of a byte address. */
constexpr Addr
lineNumber(Addr a)
{
    return a >> kLineShift;
}

/**
 * Half-open address-window membership, with [0, 0) as the canonical
 * empty window. The single definition behind the hybrid memory
 * system's app-direct bypass: AddressMap derives the window and the
 * MemoryController tests addresses against it -- both through this
 * predicate, so the empty-window sentinel can never diverge.
 */
constexpr bool
inAddrWindow(Addr a, Addr base, Addr end)
{
    return a >= base && a < end;
}

} // namespace atomsim

#endif // ATOMSIM_SIM_TYPES_HH
