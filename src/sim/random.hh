/**
 * @file
 * Deterministic pseudo-random source for workloads.
 *
 * A small xoshiro256** generator: fast, seedable, reproducible across
 * platforms (unlike std::default_random_engine) so experiment outputs
 * are stable.
 */

#ifndef ATOMSIM_SIM_RANDOM_HH
#define ATOMSIM_SIM_RANDOM_HH

#include <cstdint>

namespace atomsim
{

/** xoshiro256** PRNG with splitmix64 seeding. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 1) { reseed(seed); }

    /** Reset the stream from a 64-bit seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double unit();

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return unit() < p; }

  private:
    std::uint64_t _s[4];
};

} // namespace atomsim

#endif // ATOMSIM_SIM_RANDOM_HH
