/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every claim-bearing number in the paper's evaluation maps to a named
 * counter here so the bench harnesses can print paper-style rows
 * directly. Stats are grouped per component (e.g. "core3", "mc0") and
 * collected into a StatSet owned by the System.
 */

#ifndef ATOMSIM_SIM_STATS_HH
#define ATOMSIM_SIM_STATS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace atomsim
{

/**
 * A single scalar counter.
 *
 * Increments are relaxed atomic RMWs: in sharded runs a handful of
 * counters are shared across shard threads (the OS overflow-interrupt
 * counter, the LogI front end's log_writes) and the rest are only ever
 * read across threads at window barriers. Relaxed ordering is enough --
 * counters are sums, never synchronization -- and keeps the sequential
 * hot path at a plain uncontended lock-add.
 */
class Counter
{
  public:
    Counter() = default;

    void
    inc(std::uint64_t by = 1)
    {
        _value.fetch_add(by, std::memory_order_relaxed);
    }

    void set(std::uint64_t v) { _value.store(v, std::memory_order_relaxed); }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

    void reset() { set(0); }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/**
 * A registry of named counters.
 *
 * Names are "group.stat" (e.g. "core0.sq_full_cycles"). Components hold
 * Counter pointers for hot-path increments; lookup by name is only used
 * for reporting and tests.
 */
class StatSet
{
  public:
    /** Get (creating if needed) the counter @p group . @p name. */
    Counter &counter(const std::string &group, const std::string &name);

    /** Lookup a counter value; 0 if never created. */
    std::uint64_t value(const std::string &group,
                        const std::string &name) const;

    /** Sum of @p name across all groups matching @p group_prefix. */
    std::uint64_t sum(const std::string &group_prefix,
                      const std::string &name) const;

    /** Reset every counter to zero. */
    void resetAll();

    /** All (fullname, value) pairs, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> dump() const;

  private:
    /** Hashed, not ordered: registration is O(1) per counter where the
     * ordered map's O(log n) string-compare inserts went super-linear
     * at 1024-tile stat populations. Node-based, so Counter references
     * handed to components survive rehashing; dump() sorts. */
    std::unordered_map<std::string, Counter> _counters;
};

} // namespace atomsim

#endif // ATOMSIM_SIM_STATS_HH
