#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace atomsim
{

namespace
{
bool verboseFlag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::fprintf(stderr, "warn: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    std::fprintf(stderr, "info: ");
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
}

} // namespace atomsim
