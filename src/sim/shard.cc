#include "sim/shard.hh"

#include <algorithm>

namespace atomsim
{

void
drainControlOps(const std::vector<SimDomain *> &domains,
                std::vector<SimDomain::ControlOp> &scratch)
{
    for (;;) {
        scratch.clear();
        for (SimDomain *d : domains) {
            auto &out = d->controlOut();
            for (auto &op : out.items())
                scratch.push_back(std::move(op));
            out.clear();
        }
        if (scratch.empty())
            return;
        std::sort(scratch.begin(), scratch.end(),
                  [](const SimDomain::ControlOp &a,
                     const SimDomain::ControlOp &b) {
                      if (a.tick != b.tick)
                          return a.tick < b.tick;
                      if (a.actor != b.actor)
                          return a.actor < b.actor;
                      if (a.sub != b.sub)
                          return a.sub < b.sub;
                      if (a.domain != b.domain)
                          return a.domain < b.domain;
                      return a.idx < b.idx;
                  });
        for (auto &op : scratch)
            op.fn();
    }
}

} // namespace atomsim
