#include "sim/shard.hh"

#include <algorithm>

namespace atomsim
{

void
drainControlOps(const std::vector<SimDomain *> &domains,
                std::vector<SimDomain::ControlOp> &scratch)
{
    for (;;) {
        scratch.clear();
        for (SimDomain *d : domains) {
            auto &out = d->controlOut();
            for (auto &op : out.items())
                scratch.push_back(std::move(op));
            out.clear();
        }
        if (scratch.empty())
            return;
        std::sort(scratch.begin(), scratch.end(), controlOpBefore);
        for (auto &op : scratch)
            op.fn();
    }
}

} // namespace atomsim
