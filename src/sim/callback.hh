/**
 * @file
 * Fixed-capacity, non-allocating callable (the continuation type used
 * on the simulator's hot paths).
 *
 * std::function heap-allocates whenever a capture outgrows its small
 * buffer (16 bytes on common stdlibs), which put one malloc/free pair
 * on every mesh delivery and every cache-miss continuation.
 * InplaceFunction stores the callable inline in a buffer of N bytes and
 * *statically rejects* anything larger, so a path built from these
 * types provably performs no continuation allocations. It is move-only
 * (captures routinely hold other move-only continuations).
 *
 * Each subsystem declares an alias sized for its largest capture
 * (e.g. MshrTable::Continuation, EventQueue::Callback, MeshCallback);
 * growing a capture past the alias capacity is a compile error, which
 * keeps the no-allocation property honest as the code evolves.
 */

#ifndef ATOMSIM_SIM_CALLBACK_HH
#define ATOMSIM_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace atomsim
{

template <typename Sig, std::size_t N> class InplaceFunction;

template <typename R, typename... Args, std::size_t N>
class InplaceFunction<R(Args...), N>
{
  public:
    /** Inline storage capacity, in bytes. */
    static constexpr std::size_t kCapacity = N;

    InplaceFunction() = default;
    InplaceFunction(std::nullptr_t) {}

    /** Store any callable of size <= N (compile error otherwise). */
    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InplaceFunction>>>
    InplaceFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= N,
                      "capture too large for this InplaceFunction: "
                      "shrink the capture or grow the alias capacity");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned capture");
        new (_buf) Fn(std::forward<F>(f));
        _ops = opsFor<Fn>();
    }

    InplaceFunction(InplaceFunction &&other) noexcept { moveFrom(other); }

    InplaceFunction &
    operator=(InplaceFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    InplaceFunction(const InplaceFunction &) = delete;
    InplaceFunction &operator=(const InplaceFunction &) = delete;

    ~InplaceFunction() { reset(); }

    explicit operator bool() const { return _ops != nullptr; }

    R
    operator()(Args... args)
    {
        return _ops->invoke(_buf, std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *dst, void *src);  //!< move + destroy src
        void (*destroy)(void *);
    };

    template <typename Fn>
    static const Ops *
    opsFor()
    {
        static const Ops ops = {
            [](void *p, Args &&...args) -> R {
                return (*static_cast<Fn *>(p))(
                    std::forward<Args>(args)...);
            },
            [](void *dst, void *src) {
                new (dst) Fn(std::move(*static_cast<Fn *>(src)));
                static_cast<Fn *>(src)->~Fn();
            },
            [](void *p) { static_cast<Fn *>(p)->~Fn(); },
        };
        return &ops;
    }

    void
    reset()
    {
        if (_ops) {
            _ops->destroy(_buf);
            _ops = nullptr;
        }
    }

    void
    moveFrom(InplaceFunction &other)
    {
        _ops = other._ops;
        if (_ops) {
            _ops->relocate(_buf, other._buf);
            other._ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char _buf[N];
    const Ops *_ops = nullptr;
};

/** Shorthand for the common nullary continuation. */
template <std::size_t N>
using InplaceCallback = InplaceFunction<void(), N>;

} // namespace atomsim

#endif // ATOMSIM_SIM_CALLBACK_HH
