#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace atomsim
{

/**
 * Pooled one-shot event carrying a post()ed callback. The queue runs
 * pooled events inline (moving the callback out and releasing the node
 * *before* invoking it, so the callback may itself post), hence
 * process() only exists to satisfy the Event interface.
 */
class FuncEvent final : public Event
{
  public:
    FuncEvent() = default;

    void process() override { _fn(); }

  private:
    friend class EventQueue;

    EventQueue::Callback _fn;
};

Event::~Event()
{
    if (scheduled() && _queue)
        _queue->deschedule(*this);
}

EventQueue::EventQueue() : _wheel(kWheelBuckets) {}

EventQueue::~EventQueue()
{
    // Orphan everything still queued so events that outlive the queue
    // (and the pooled events destroyed next) don't deschedule against
    // freed state.
    for (auto &b : _wheel) {
        for (Event *e = b.head; e != nullptr;) {
            Event *next = e->_next;
            e->_flags &= ~Event::kScheduled;
            e->_queue = nullptr;
            e->_next = nullptr;
            e = next;
        }
        b.head = b.tail = nullptr;
    }
    for (Event *e : _spill) {
        e->_flags &= ~Event::kScheduled;
        e->_queue = nullptr;
    }
}

void
EventQueue::wheelInsert(Event *ev)
{
    const std::uint32_t bi = std::uint32_t(ev->_when) & kWheelMask;
    Bucket &b = _wheel[bi];
    if (b.tail)
        b.tail->_next = ev;
    else
        b.head = ev;
    b.tail = ev;
    _occupied[bi >> 6] |= std::uint64_t(1) << (bi & 63);
    ++_wheelCount;
}

void
EventQueue::wheelInsertSorted(Event *ev)
{
    const std::uint32_t bi = std::uint32_t(ev->_when) & kWheelMask;
    Bucket &b = _wheel[bi];
    if (!b.tail || b.tail->_seq <= ev->_seq) {
        // Common case: the stamped seq is still the newest in the
        // bucket (plain schedule() appends are always monotone).
        wheelInsert(ev);
        return;
    }
    Event *prev = nullptr;
    Event *cur = b.head;
    while (cur && cur->_seq <= ev->_seq) {
        prev = cur;
        cur = cur->_next;
    }
    ev->_next = cur;
    if (prev)
        prev->_next = ev;
    else
        b.head = ev;
    if (!cur)
        b.tail = ev;
    _occupied[bi >> 6] |= std::uint64_t(1) << (bi & 63);
    ++_wheelCount;
}

void
EventQueue::enqueue(Event &ev, Tick when, bool sorted)
{
    panic_if(when < _now, "scheduling into the past: when=%llu now=%llu",
             (unsigned long long)when, (unsigned long long)_now);
    panic_if(ev.scheduled(), "scheduling an already-scheduled event");
    ev._when = when;
    ev._queue = this;
    ev._next = nullptr;
    ev._flags |= Event::kScheduled;
    ++_pending;
    if (when - _now < kWheelBuckets) {
        ++_wheelInserts;
        if (sorted)
            wheelInsertSorted(&ev);
        else
            wheelInsert(&ev);
    } else {
        ++_spillInserts;
        _spill.push_back(&ev);
        std::push_heap(_spill.begin(), _spill.end(), SpillLater{});
    }
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    ev._seq = _seq++;
    enqueue(ev, when, /*sorted=*/false);
}

void
EventQueue::scheduleAt(Event &ev, Tick when, std::uint64_t seq)
{
    ev._seq = seq;
    enqueue(ev, when, /*sorted=*/true);
}

void
EventQueue::deschedule(Event &ev)
{
    if (!ev.scheduled() || ev._queue != this)
        return;
    if (ev._when - _now < kWheelBuckets) {
        const std::uint32_t bi = std::uint32_t(ev._when) & kWheelMask;
        Bucket &b = _wheel[bi];
        Event *prev = nullptr;
        Event *cur = b.head;
        while (cur && cur != &ev) {
            prev = cur;
            cur = cur->_next;
        }
        panic_if(!cur, "descheduling an event missing from its bucket");
        if (prev)
            prev->_next = ev._next;
        else
            b.head = ev._next;
        if (b.tail == &ev)
            b.tail = prev;
        if (!b.head)
            _occupied[bi >> 6] &= ~(std::uint64_t(1) << (bi & 63));
        --_wheelCount;
    } else {
        auto it = std::find(_spill.begin(), _spill.end(), &ev);
        panic_if(it == _spill.end(),
                 "descheduling an event missing from the spill heap");
        _spill.erase(it);
        std::make_heap(_spill.begin(), _spill.end(), SpillLater{});
    }
    ev._next = nullptr;
    ev._flags &= ~Event::kScheduled;
    ev._queue = nullptr;
    --_pending;
}

FuncEvent *
EventQueue::acquirePooled()
{
    if (_freeList) {
        auto *fe = static_cast<FuncEvent *>(_freeList);
        _freeList = fe->_next;
        fe->_next = nullptr;
        --_poolFreeCount;
        return fe;
    }
    _funcPool.push_back(std::make_unique<FuncEvent>());
    FuncEvent *fe = _funcPool.back().get();
    fe->_flags |= Event::kPooled;
    return fe;
}

void
EventQueue::releasePooled(FuncEvent *ev)
{
    ev->_next = _freeList;
    _freeList = ev;
    ++_poolFreeCount;
}

void
EventQueue::post(Tick when, Callback cb)
{
    FuncEvent *fe = acquirePooled();
    fe->_fn = std::move(cb);
    schedule(*fe, when);
}

Tick
EventQueue::nextWheelTick() const
{
    const std::uint32_t s = std::uint32_t(_now) & kWheelMask;
    const std::uint32_t sw = s >> 6;
    const std::uint32_t sb = s & 63;

    // Bits at or after the cursor in the cursor's word.
    std::uint64_t word = _occupied[sw] & (~std::uint64_t(0) << sb);
    if (word) {
        const std::uint32_t bit =
            sw * 64 + std::uint32_t(__builtin_ctzll(word));
        return _now + ((bit - s) & kWheelMask);
    }
    // Remaining words, wrapping; the cursor word's low bits come last.
    for (std::uint32_t i = 1; i <= kBitmapWords; ++i) {
        const std::uint32_t wi = (sw + i) & (kBitmapWords - 1);
        word = _occupied[wi];
        if (i == kBitmapWords)
            word &= (std::uint64_t(1) << sb) - 1;
        if (word) {
            const std::uint32_t bit =
                wi * 64 + std::uint32_t(__builtin_ctzll(word));
            return _now + ((bit - s) & kWheelMask);
        }
    }
    panic("nextWheelTick: occupancy bitmap empty but wheelCount=%llu",
          (unsigned long long)_wheelCount);
}

Tick
EventQueue::nextEventTick() const
{
    // The wheel window invariant makes every wheel event earlier than
    // every spill event, so the wheel wins whenever it is non-empty.
    if (_wheelCount != 0)
        return nextWheelTick();
    return _spill.front()->_when;
}

void
EventQueue::migrate()
{
    const Tick horizon = _now + kWheelBuckets;
    while (!_spill.empty() && _spill.front()->_when < horizon) {
        std::pop_heap(_spill.begin(), _spill.end(), SpillLater{});
        Event *ev = _spill.back();
        _spill.pop_back();
        // Sorted: a bucket may hold scheduleAt() events whose stamped
        // seqs straddle the migrating event's.
        wheelInsertSorted(ev);
    }
}

void
EventQueue::executeNext(Tick t)
{
    if (t != _now) {
        _now = t;
        migrate();
    }
    const std::uint32_t bi = std::uint32_t(t) & kWheelMask;
    Bucket &b = _wheel[bi];
    Event *ev = b.head;
    b.head = ev->_next;
    if (!b.head) {
        b.tail = nullptr;
        _occupied[bi >> 6] &= ~(std::uint64_t(1) << (bi & 63));
    }
    --_wheelCount;
    --_pending;
    ev->_next = nullptr;
    ev->_queue = nullptr;
    ev->_flags &= std::uint16_t(~Event::kScheduled);
    ++_executed;
    if (ev->_flags & Event::kPooled) {
        // Release the node before running the callback so the callback
        // may immediately reuse it via post().
        auto *fe = static_cast<FuncEvent *>(ev);
        Callback fn = std::move(fe->_fn);
        fe->_fn = nullptr;
        releasePooled(fe);
        fn();
    } else {
        ev->process();
    }
}

bool
EventQueue::step()
{
    if (_pending == 0)
        return false;
    executeNext(nextEventTick());
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (_pending != 0) {
        const Tick t = nextEventTick();
        if (t > limit)
            break;
        executeNext(t);
        ++n;
    }
    if (_now < limit && limit != kTickNever) {
        // Jumping now() slides the wheel window: spill events that the
        // jump brought inside the horizon must migrate before any new
        // schedule() can land in the exposed region, or the window
        // invariant (wheel events always earliest) breaks.
        _now = limit;
        migrate();
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(const std::function<bool()> &pred, Tick limit)
{
    std::uint64_t n = 0;
    while (!pred() && _pending != 0) {
        const Tick t = nextEventTick();
        if (t > limit)
            break;
        executeNext(t);
        ++n;
    }
    return n;
}

} // namespace atomsim
