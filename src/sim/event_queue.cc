#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace atomsim
{

/**
 * Pooled one-shot event carrying a post()ed callback. The queue runs
 * pooled events inline (moving the callback out and releasing the node
 * *before* invoking it, so the callback may itself post), hence
 * process() only exists to satisfy the Event interface.
 */
class FuncEvent final : public Event
{
  public:
    FuncEvent() = default;

    void process() override { _fn(); }

  private:
    friend class EventQueue;

    EventQueue::Callback _fn;
};

Event::~Event()
{
    if (scheduled() && _queue)
        _queue->deschedule(*this);
}

EventQueue::EventQueue(std::uint32_t wheel_buckets)
    : _wheelBuckets(wheel_buckets),
      _wheelMask(wheel_buckets - 1),
      _bitmapWords(wheel_buckets / 64),
      _wheel(wheel_buckets),
      _occupied(wheel_buckets / 64, 0)
{
    panic_if(wheel_buckets < 64 ||
                 (wheel_buckets & (wheel_buckets - 1)) != 0,
             "wheel width must be a power of two >= 64 (got %u)",
             wheel_buckets);
}

EventQueue::~EventQueue()
{
    // Orphan everything still queued so events that outlive the queue
    // (and the pooled events destroyed next) don't deschedule against
    // freed state.
    for (auto &b : _wheel) {
        for (Event *e = b.head; e != nullptr;) {
            Event *next = e->_next;
            e->_flags &= ~Event::kScheduled;
            e->_queue = nullptr;
            e->_next = nullptr;
            e = next;
        }
        b.head = b.tail = nullptr;
    }
    for (Event *e : _spill) {
        e->_flags &= std::uint16_t(~(Event::kScheduled | Event::kInSpill));
        e->_queue = nullptr;
    }
}

void
EventQueue::wheelInsert(Event *ev)
{
    const std::uint32_t bi = std::uint32_t(ev->_when) & _wheelMask;
    Bucket &b = _wheel[bi];
    if (b.tail)
        b.tail->_next = ev;
    else
        b.head = ev;
    b.tail = ev;
    _occupied[bi >> 6] |= std::uint64_t(1) << (bi & 63);
    ++_wheelCount;
}

void
EventQueue::wheelInsertSorted(Event *ev)
{
    const std::uint32_t bi = std::uint32_t(ev->_when) & _wheelMask;
    Bucket &b = _wheel[bi];
    if (!b.tail || b.tail->_seq <= ev->_seq) {
        // Common case: the stamped seq is still the newest in the
        // bucket (plain schedule() appends are always monotone).
        wheelInsert(ev);
        return;
    }
    Event *prev = nullptr;
    Event *cur = b.head;
    while (cur && cur->_seq <= ev->_seq) {
        prev = cur;
        cur = cur->_next;
    }
    ev->_next = cur;
    if (prev)
        prev->_next = ev;
    else
        b.head = ev;
    if (!cur)
        b.tail = ev;
    _occupied[bi >> 6] |= std::uint64_t(1) << (bi & 63);
    ++_wheelCount;
}

// --- indexed spill heap ----------------------------------------------------
//
// A plain binary min-heap over (tick, seq), except every resident event
// records its slot (_spillIdx), so removal from the middle -- the
// deschedule path -- is a swap with the last slot plus one sift,
// O(log n), instead of the old linear erase + full re-heapify.

void
EventQueue::spillSiftUp(std::size_t i)
{
    Event *ev = _spill[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!spillBefore(ev, _spill[parent]))
            break;
        _spill[i] = _spill[parent];
        _spill[i]->_spillIdx = std::uint32_t(i);
        i = parent;
    }
    _spill[i] = ev;
    ev->_spillIdx = std::uint32_t(i);
}

void
EventQueue::spillSiftDown(std::size_t i)
{
    Event *ev = _spill[i];
    const std::size_t n = _spill.size();
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && spillBefore(_spill[child + 1], _spill[child]))
            ++child;
        if (!spillBefore(_spill[child], ev))
            break;
        _spill[i] = _spill[child];
        _spill[i]->_spillIdx = std::uint32_t(i);
        i = child;
    }
    _spill[i] = ev;
    ev->_spillIdx = std::uint32_t(i);
}

void
EventQueue::spillPush(Event *ev)
{
    ev->_flags |= Event::kInSpill;
    _spill.push_back(ev);
    spillSiftUp(_spill.size() - 1);
}

Event *
EventQueue::spillPopMin()
{
    Event *min = _spill.front();
    Event *last = _spill.back();
    _spill.pop_back();
    if (!_spill.empty()) {
        _spill[0] = last;
        spillSiftDown(0);
    }
    min->_flags &= std::uint16_t(~Event::kInSpill);
    return min;
}

void
EventQueue::spillRemove(Event *ev)
{
    const std::size_t i = ev->_spillIdx;
    panic_if(i >= _spill.size() || _spill[i] != ev,
             "descheduling an event missing from the spill heap");
    Event *last = _spill.back();
    _spill.pop_back();
    if (i < _spill.size()) {
        _spill[i] = last;
        // The replacement may need to move either way relative to its
        // new parent/children.
        spillSiftDown(i);
        spillSiftUp(last->_spillIdx);
    }
    ev->_flags &= std::uint16_t(~Event::kInSpill);
}

void
EventQueue::enqueue(Event &ev, Tick when, bool sorted)
{
    panic_if(when < _now, "scheduling into the past: when=%llu now=%llu",
             (unsigned long long)when, (unsigned long long)_now);
    panic_if(ev.scheduled(), "scheduling an already-scheduled event");
    ev._when = when;
    ev._queue = this;
    ev._next = nullptr;
    ev._flags |= Event::kScheduled;
    ++_pending;
    if (when - _now < _wheelBuckets) {
        ++_wheelInserts;
        if (sorted)
            wheelInsertSorted(&ev);
        else
            wheelInsert(&ev);
    } else {
        ++_spillInserts;
        spillPush(&ev);
    }
}

void
EventQueue::schedule(Event &ev, Tick when)
{
    ev._seq = _seq++;
    enqueue(ev, when, /*sorted=*/false);
}

void
EventQueue::scheduleAt(Event &ev, Tick when, std::uint64_t seq)
{
    ev._seq = seq;
    enqueue(ev, when, /*sorted=*/true);
}

void
EventQueue::deschedule(Event &ev)
{
    if (!ev.scheduled() || ev._queue != this)
        return;
    if (ev._flags & Event::kInSpill) {
        spillRemove(&ev);
    } else {
        const std::uint32_t bi = std::uint32_t(ev._when) & _wheelMask;
        Bucket &b = _wheel[bi];
        Event *prev = nullptr;
        Event *cur = b.head;
        while (cur && cur != &ev) {
            prev = cur;
            cur = cur->_next;
        }
        panic_if(!cur, "descheduling an event missing from its bucket");
        if (prev)
            prev->_next = ev._next;
        else
            b.head = ev._next;
        if (b.tail == &ev)
            b.tail = prev;
        if (!b.head)
            _occupied[bi >> 6] &= ~(std::uint64_t(1) << (bi & 63));
        --_wheelCount;
    }
    ev._next = nullptr;
    ev._flags &= std::uint16_t(~Event::kScheduled);
    ev._queue = nullptr;
    --_pending;
}

FuncEvent *
EventQueue::acquirePooled()
{
    if (_freeList) {
        auto *fe = static_cast<FuncEvent *>(_freeList);
        _freeList = fe->_next;
        fe->_next = nullptr;
        --_poolFreeCount;
        return fe;
    }
    _funcPool.push_back(std::make_unique<FuncEvent>());
    FuncEvent *fe = _funcPool.back().get();
    fe->_flags |= Event::kPooled;
    return fe;
}

void
EventQueue::releasePooled(FuncEvent *ev)
{
    ev->_next = _freeList;
    _freeList = ev;
    ++_poolFreeCount;
}

void
EventQueue::post(Tick when, Callback cb)
{
    FuncEvent *fe = acquirePooled();
    fe->_fn = std::move(cb);
    schedule(*fe, when);
}

Tick
EventQueue::nextWheelTick() const
{
    const std::uint32_t s = std::uint32_t(_now) & _wheelMask;
    const std::uint32_t sw = s >> 6;
    const std::uint32_t sb = s & 63;

    // Bits at or after the cursor in the cursor's word.
    std::uint64_t word = _occupied[sw] & (~std::uint64_t(0) << sb);
    if (word) {
        const std::uint32_t bit =
            sw * 64 + std::uint32_t(__builtin_ctzll(word));
        return _now + ((bit - s) & _wheelMask);
    }
    // Remaining words, wrapping; the cursor word's low bits come last.
    for (std::uint32_t i = 1; i <= _bitmapWords; ++i) {
        const std::uint32_t wi = (sw + i) & (_bitmapWords - 1);
        word = _occupied[wi];
        if (i == _bitmapWords)
            word &= (std::uint64_t(1) << sb) - 1;
        if (word) {
            const std::uint32_t bit =
                wi * 64 + std::uint32_t(__builtin_ctzll(word));
            return _now + ((bit - s) & _wheelMask);
        }
    }
    panic("nextWheelTick: occupancy bitmap empty but wheelCount=%llu",
          (unsigned long long)_wheelCount);
}

Tick
EventQueue::nextEventTick() const
{
    // The wheel window invariant makes every wheel event earlier than
    // every spill event, so the wheel wins whenever it is non-empty.
    if (_wheelCount != 0)
        return nextWheelTick();
    return _spill.front()->_when;
}

void
EventQueue::migrate()
{
    const Tick horizon = _now + _wheelBuckets;
    while (!_spill.empty() && _spill.front()->_when < horizon) {
        Event *ev = spillPopMin();
        // Sorted: a bucket may hold scheduleAt() events whose stamped
        // seqs straddle the migrating event's.
        wheelInsertSorted(ev);
    }
}

void
EventQueue::executeNext(Tick t)
{
    if (t != _now) {
        _now = t;
        migrate();
    }
    if (_tickLog && t != _tickLast) {
        _tickLog->push_back(t);
        _tickLast = t;
    }
    const std::uint32_t bi = std::uint32_t(t) & _wheelMask;
    Bucket &b = _wheel[bi];
    Event *ev = b.head;
    b.head = ev->_next;
    if (!b.head) {
        b.tail = nullptr;
        _occupied[bi >> 6] &= ~(std::uint64_t(1) << (bi & 63));
    }
    --_wheelCount;
    --_pending;
    ev->_next = nullptr;
    ev->_queue = nullptr;
    ev->_flags &= std::uint16_t(~Event::kScheduled);
    ++_executed;
    if (ev->_flags & Event::kPooled) {
        // Release the node before running the callback so the callback
        // may immediately reuse it via post().
        auto *fe = static_cast<FuncEvent *>(ev);
        Callback fn = std::move(fe->_fn);
        fe->_fn = nullptr;
        releasePooled(fe);
        fn();
    } else {
        ev->process();
    }
}

bool
EventQueue::step()
{
    if (_pending == 0)
        return false;
    executeNext(nextEventTick());
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (_pending != 0) {
        const Tick t = nextEventTick();
        if (t > limit)
            break;
        executeNext(t);
        ++n;
    }
    if (_now < limit && limit != kTickNever) {
        // Jumping now() slides the wheel window: spill events that the
        // jump brought inside the horizon must migrate before any new
        // schedule() can land in the exposed region, or the window
        // invariant (wheel events always earliest) breaks.
        _now = limit;
        migrate();
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(const std::function<bool()> &pred, Tick limit)
{
    std::uint64_t n = 0;
    while (!pred() && _pending != 0) {
        const Tick t = nextEventTick();
        if (t > limit)
            break;
        executeNext(t);
        ++n;
    }
    return n;
}

} // namespace atomsim
