#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace atomsim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    panic_if(when < _now, "scheduling into the past: when=%llu now=%llu",
             (unsigned long long)when, (unsigned long long)_now);
    _heap.push(Entry{when, _seq++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (_heap.empty())
        return false;
    // priority_queue::top() returns const&; move out via const_cast is
    // safe here because we pop immediately after.
    Entry e = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    _now = e.when;
    ++_executed;
    e.cb();
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!_heap.empty() && _heap.top().when <= limit) {
        step();
        ++n;
    }
    if (_now < limit && limit != kTickNever)
        _now = limit;
    return n;
}

std::uint64_t
EventQueue::runUntil(const std::function<bool()> &pred, Tick limit)
{
    std::uint64_t n = 0;
    while (!pred() && !_heap.empty() && _heap.top().when <= limit) {
        step();
        ++n;
    }
    return n;
}

} // namespace atomsim
