/**
 * @file
 * Deterministic fault-injection hashing.
 *
 * Every injected fault (torn-write word boundaries, media read
 * errors, recovery-crash tear points) derives from a stateless hash
 * of *shard-invariant* keys: the configured fault seed plus values
 * the byte-identity goldens already pin (addresses, per-controller
 * acceptance sequence numbers, per-channel read indices). Nothing
 * here consults wall-clock time, thread identity or iteration order,
 * so the same seed produces the same fault pattern across reruns,
 * shard counts and placements -- a failing fault-injection cell is
 * replayable by ID exactly like a clean-power-failure cell.
 */

#ifndef ATOMSIM_SIM_FAULT_HH
#define ATOMSIM_SIM_FAULT_HH

#include <cstdint>

namespace atomsim
{

/**
 * Mix up to four 64-bit keys into one well-distributed word
 * (splitmix64 finalizer over a multiply-accumulated combination).
 */
inline std::uint64_t
faultMix(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0,
         std::uint64_t d = 0)
{
    std::uint64_t z = a;
    z = (z ^ b) * 0x9e3779b97f4a7c15ull;
    z = (z ^ c) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ d) * 0x94d049bb133111ebull;
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z;
}

/**
 * Seeded torn-write boundary for one 64-byte line write: the number
 * of leading 8-byte words (0..8 inclusive) that reach the device
 * before power is lost. NVM guarantees only 8-byte atomicity, so a
 * write interrupted by power failure commits a word-aligned prefix:
 * 0 leaves the old line intact, 8 is a complete (lucky) write, and
 * anything between is a genuine tear.
 */
inline std::uint32_t
tornWordCount(std::uint64_t seed, std::uint64_t stream, std::uint64_t addr,
              std::uint64_t op)
{
    return std::uint32_t(faultMix(seed, stream, addr, op) % 9);
}

} // namespace atomsim

#endif // ATOMSIM_SIM_FAULT_HH
