/**
 * @file
 * Design layer: AUS slot pool and per-design atomic-region hooks.
 *
 * The five evaluated designs (Section V) share the same substrate and
 * differ only in the hooks installed here:
 *
 *  - BASE      undo log, ack-on-persist (logging in the critical path)
 *  - ATOM      undo log with posted log writes
 *  - ATOM-OPT  posted + source logging
 *  - NON-ATOMIC no logging (upper bound); still flushes at commit
 *  - REDO      hardware-assisted redo logging (Doshi et al.)
 */

#ifndef ATOMSIM_DESIGNS_DESIGN_HH
#define ATOMSIM_DESIGNS_DESIGN_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

class L1Cache;
class LogM;
class RedoEngine;

/**
 * Log-placement policy of the hybrid memory system, as it applies to
 * the configured design: where ATOM's log region lands relative to the
 * DRAM tier. "direct" = log pages bypass the DRAM cache (straight to
 * NVM); "dram-cached" = the log region sits behind the cache (log
 * *writes* still persist write-through -- only log reads, i.e. the
 * REDO backend's replay traffic, gain DRAM locality); "flat-nvm" =
 * no DRAM tier at all. bench/hybrid_sweep.cc labels its design points
 * with this.
 */
const char *logPlacementName(const SystemConfig &cfg);

/**
 * Pool of AUS slots shared by the cores.
 *
 * The paper supports one atomic update per core (32 AUS); when fewer
 * slots than cores are configured, Atomic_Begin stalls until a slot
 * frees -- a structural overflow, which cannot deadlock because the
 * waiting update holds no resources (Section IV-E).
 */
class AusPool
{
  public:
    AusPool(EventQueue &eq, std::uint32_t slots, std::uint32_t cores,
            StatSet &stats);

    /** Acquire a slot for @p core; @p granted runs with the slot id. */
    void acquire(CoreId core, std::function<void(std::uint32_t)> granted);

    /** Release @p core's slot (after truncation completes). */
    void release(CoreId core);

    /** Slot of @p core, or -1 when it has no active atomic update. */
    int slotOf(CoreId core) const;

    std::uint64_t
    structuralStallCycles() const
    {
        return _statStallCycles.value();
    }

    /** Per-core tenant acquire counters ("tenantN.aus_acquires");
     * empty (the default) disables per-tenant accounting. */
    void
    setTenantCounters(std::vector<Counter *> per_core)
    {
        _tenantAcquires = std::move(per_core);
    }

  private:
    EventQueue &_eq;
    std::vector<int> _slotOf;        //!< per core; -1 = none
    std::vector<bool> _slotBusy;
    std::deque<std::pair<Tick, std::pair<CoreId,
        std::function<void(std::uint32_t)>>>> _waiters;

    Counter &_statStallCycles;
    Counter &_statAcquires;
    std::vector<Counter *> _tenantAcquires;  //!< per core; may be empty
};

/**
 * DesignHooks implementation shared by all designs; behavior branches
 * on the configured DesignKind.
 */
class DesignContext : public DesignHooks
{
  public:
    DesignContext(EventQueue &eq, const SystemConfig &cfg,
                  std::vector<std::unique_ptr<LogM>> &logms,
                  std::vector<L1Cache *> l1s, AusPool &pool,
                  RedoEngine *redo, StatSet &stats);

    void atomicBegin(CoreId core, std::function<void()> done) override;
    void atomicEnd(CoreId core, const std::vector<Addr> &modified_lines,
                   std::function<void()> done) override;

    /**
     * Sharded runs: AUS acquisition and log-manager arm/truncate are
     * zero-latency cross-domain register operations, so they cannot
     * run mid-window -- they are queued as control ops and executed by
     * the barrier leader in canonical (tick, core) order. @p domains
     * is the full domain list; @p layout maps cores/MCs to domains.
     */
    void setSharded(std::vector<SimDomain *> domains,
                    const ShardLayout &layout);

    /**
     * True while any core's commit-time truncate is waiting on MC
     * completions (sharded mode). The completions arrive as control
     * submissions from MC-domain events, so while one is in flight the
     * sharded engine must bound the control plane by the MC domains'
     * own progress, not just the cores'.
     */
    bool
    truncInFlight() const
    {
        for (std::uint32_t p : _truncPending)
            if (p != 0)
                return true;
        return false;
    }

    /** Per-core tenant commit counters ("tenantN.commits"); empty (the
     * default) disables per-tenant accounting. */
    void
    setTenantCounters(std::vector<Counter *> per_core)
    {
        _tenantCommits = std::move(per_core);
    }

    /** Eventual durability: commits acked from the volatile staging
     * window whose truncation is still in flight. A crash now rolls
     * exactly these commits back -- the policy's recovery-point loss. */
    std::uint32_t stagedCommits() const { return _stagedCommits; }

    /** High-water mark of staging-window occupancy (bench gate: must
     * stay <= SystemConfig::ssdStagingWindow). */
    std::uint32_t stagedPeak() const { return _stagedPeak; }

  private:
    /** Count a commit for @p core (global + per-tenant). */
    void
    countCommit(CoreId core)
    {
        _statCommits.inc();
        if (!_tenantCommits.empty())
            _tenantCommits[core]->inc();
    }

    /** Leader-executed: acquire an AUS + arm every LogM. */
    void shardedBegin(CoreId core, std::function<void()> done);

    /** Leader-executed: truncate @p core's AUS at every controller;
     * per-MC completions hop back through the control plane. */
    void shardedTruncate(CoreId core, std::function<void()> done);
    /** In-flight state of one commit's flush loop (shared by the
     * outstanding flush acks; freed when the last one completes). */
    struct FlushState
    {
        std::vector<Addr> lines;
        std::size_t next = 0;
        std::size_t pending = 0;
        std::function<void()> done;
    };

    /** Flush @p lines durably with a bounded issue window. */
    void flushLines(CoreId core, std::vector<Addr> lines,
                    std::function<void()> done);

    /** Issue flushes up to the window (the L1 MSHR count). */
    void pumpFlushes(CoreId core, const std::shared_ptr<FlushState> &st);

    /** Truncate @p core's AUS at every controller, then release it. */
    void truncateAll(CoreId core, std::function<void()> done);

    /** The queue of the domain executing on this thread (sharded), or
     * the machine queue (sequential): where an inline hook running in
     * a core's context must post its continuation. */
    EventQueue &hereQueue();

    /** The queue @p core's continuations belong to (leader context:
     * the core's domain queue when sharded). */
    EventQueue &coreQueue(CoreId core);

    EventQueue &_eq;
    const SystemConfig &_cfg;
    std::vector<std::unique_ptr<LogM>> &_logms;
    std::vector<L1Cache *> _l1s;
    AusPool &_pool;
    RedoEngine *_redo;

    // --- sharded-mode state (leader-only) ----------------------------
    std::vector<SimDomain *> _domains;       //!< empty when sequential
    ShardLayout _layout;
    std::vector<std::uint32_t> _truncPending; //!< per core, MCs left
    std::vector<std::function<void()>> _truncDone;  //!< per core

    std::vector<Counter *> _tenantCommits;   //!< per core; may be empty

    // --- eventual durability (sequential kernel only; the staging
    // window is cross-domain state, so config validation rejects the
    // policy under sharding) ------------------------------------------
    std::uint32_t _stagedCommits = 0;
    std::uint32_t _stagedPeak = 0;
    /** Per core: an early-acked commit's truncation still runs, so the
     * AUS slot is not yet released and a new begin must park. */
    std::vector<bool> _commitInFlight;
    std::vector<std::function<void()>> _pendingBegin;  //!< per core

    Counter &_statFlushes;
    Counter &_statCommits;
    Counter &_statStagedAcks;
};

} // namespace atomsim

#endif // ATOMSIM_DESIGNS_DESIGN_HH
