#include "designs/redo_engine.hh"

#include <array>
#include <cstring>

#include "sim/logging.hh"

namespace atomsim
{

namespace redo_format
{

std::uint64_t
packEntry(Addr line_addr, CoreId core)
{
    return lineAlign(line_addr) | (core & 0x3f);
}

std::uint64_t
packCommit(CoreId core, std::uint64_t txn_seq, std::uint32_t mc_mask)
{
    return (std::uint64_t(1) << 63) |
           (std::uint64_t(mc_mask & 0xff) << 54) |
           ((txn_seq & ((std::uint64_t(1) << 46) - 1)) << 8) |
           (core & 0x3f);
}

bool
isCommit(std::uint64_t word)
{
    return (word >> 63) & 1;
}

Addr
slotAddr(std::uint64_t word)
{
    return word & ~Addr(0x3f) & ~(std::uint64_t(1) << 63);
}

CoreId
slotCore(std::uint64_t word)
{
    return CoreId(word & 0x3f);
}

std::uint64_t
commitSeq(std::uint64_t word)
{
    return (word >> 8) & ((std::uint64_t(1) << 46) - 1);
}

std::uint32_t
commitMcMask(std::uint64_t word)
{
    return std::uint32_t((word >> 54) & 0xff);
}

} // namespace redo_format

RedoEngine::RedoEngine(EventQueue &eq, const SystemConfig &cfg,
                       const AddressMap &amap,
                       std::vector<std::unique_ptr<MemoryController>> &mcs,
                       StatSet &stats)
    : _eq(eq),
      _cfg(cfg),
      _amap(amap),
      _mcs(mcs),
      _cores(cfg.numCores),
      _mcState(cfg.numMemCtrls),
      _victims(cfg.l2Tiles),
      _statEntries(stats.counter("redo", "log_entries")),
      _statCombined(stats.counter("redo", "combined_stores")),
      _statCommits(stats.counter("redo", "commits")),
      _statApplied(stats.counter("redo", "applied"))
{
    // The redo log reuses the OS-reserved log region of each MC; the
    // cursor starts at the MC's first bucket page.
    (void)amap;
    _drainEvents.reserve(cfg.numCores);
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        _drainEvents.push_back(std::make_unique<TickEvent>(
            [this, c] { drainWcb(c); }, "redo.drainWcb"));
    }
}

bool
RedoEngine::inAtomic(CoreId core) const
{
    return _cores[core].active;
}

void
RedoEngine::onFirstWrite(CoreId, Addr, const Line &, CacheCallback)
{
    panic("RedoEngine::onFirstWrite: undo hook on the redo design");
}

void
RedoEngine::beginTxn(CoreId core)
{
    CoreState &cs = _cores[core];
    panic_if(cs.active, "core %u begins a nested redo txn", core);
    cs.active = true;
    ++cs.txnSeq;
}

void
RedoEngine::onStore(CoreId core, Addr addr, const Line &pre,
                    std::uint32_t off, const std::uint8_t *bytes,
                    std::uint32_t size, CacheCallback done)
{
    CoreState &cs = _cores[core];
    panic_if(!cs.active, "redo store outside a txn");
    const Addr line = lineAlign(addr);

    // Write combining: a store to a line already buffered merges its
    // bytes into that entry's image and renews the entry.
    for (auto &e : cs.wcb) {
        if (e.line == line) {
            _statCombined.inc();
            std::memcpy(e.data.data() + off, bytes, size);
            e.readyAt = _eq.now() + 2;  // drain after this store too
            _eq.postIn(1, std::move(done));
            return;
        }
    }

    if (cs.wcb.size() >= _cfg.redoCombineEntries) {
        // Buffer full: the store stalls until the drain frees a slot.
        // This is REDO's bandwidth back-pressure path. The payload is
        // copied: @p bytes only lives for the duration of this call.
        // The captured pre-image stays fresh across the stall -- any
        // same-line store issued meanwhile parks behind this one (the
        // buffer is still full) and merges once this entry exists.
        std::array<std::uint8_t, kLineBytes> payload{};
        std::memcpy(payload.data(), bytes, size);
        cs.fullWaiters.push_back(
            [this, core, addr, pre, off, payload, size,
             done = std::move(done)]() mutable {
                onStore(core, addr, pre, off, payload.data(), size,
                        std::move(done));
            });
        return;
    }

    WcbEntry entry{line, pre, _eq.now() + 2};
    std::memcpy(entry.data.data() + off, bytes, size);
    cs.wcb.push_back(std::move(entry));
    _eq.postIn(1, std::move(done));
    if (!cs.draining) {
        cs.draining = true;
        // Drain pacing matches the old snapshot-at-drain timing: the
        // first entry issues only after its store applied.
        _eq.scheduleIn(*_drainEvents[core], 2);
    }
}

void
RedoEngine::drainWcb(CoreId core)
{
    CoreState &cs = _cores[core];
    if (cs.wcb.empty()) {
        cs.draining = false;
        if (cs.entriesInFlight == 0 && cs.commitWaiter) {
            auto w = std::move(cs.commitWaiter);
            cs.commitWaiter = nullptr;
            w();
        }
        return;
    }

    if (cs.wcb.front().readyAt > _eq.now()) {
        // The triggering store has not applied yet: drain later.
        _eq.schedule(*_drainEvents[core], cs.wcb.front().readyAt);
        return;
    }

    WcbEntry entry = std::move(cs.wcb.front());
    cs.wcb.pop_front();
    // The entry's image was assembled store by store at logging time
    // (pre-image + merged bytes), so it is the line's newest value no
    // matter where the cache copy currently is; the data travels with
    // the log write while the hierarchy keeps its dirty copy (which
    // must never spill to NVM -- victim cache).
    _statEntries.inc();

    if (!cs.fullWaiters.empty()) {
        auto w = std::move(cs.fullWaiters.front());
        cs.fullWaiters.pop_front();
        w();
    }

    const McId mc = _amap.memCtrl(entry.line);
    if (cs.touchedMc.empty())
        cs.touchedMc.assign(_cfg.numMemCtrls, false);
    cs.touchedMc[mc] = true;
    ++cs.entriesInFlight;
    appendToFrame(mc, core, redo_format::packEntry(entry.line, core),
                  entry.data, false, [this, core] {
        CoreState &s = _cores[core];
        --s.entriesInFlight;
        if (!s.draining && s.entriesInFlight == 0 && s.commitWaiter) {
            auto w = std::move(s.commitWaiter);
            s.commitWaiter = nullptr;
            w();
        }
    });
    // Pace: one entry per drain step; next step after the combine
    // buffer's issue latency.
    _eq.scheduleIn(*_drainEvents[core], 1);
}

void
RedoEngine::appendToFrame(McId mc, CoreId core, Addr slot_word,
                          const Line &data, bool is_commit,
                          std::function<void()> durable)
{
    McState &ms = _mcState[mc];

    // Start a frame if none is open. The cursor hops bucket (page) to
    // bucket so it only ever touches this MC's interleaved log pages.
    // The log is circular: frames whose entries the backend has
    // applied are dead, so the cursor wraps (recovery-from-crash tests
    // size their runs to finish before the first wrap; see DESIGN.md).
    if (ms.frameMeta == 0) {
        const std::uint32_t frames_per_bucket =
            kPageBytes / (8 * kLineBytes);
        if (ms.frameInBucket >= frames_per_bucket) {
            ms.frameInBucket = 0;
            if (++ms.bucket >= _amap.bucketsPerMc()) {
                ms.bucket = 0;
                ++ms.wraps;
            }
        }
        ms.frameMeta = _amap.bucketBase(mc, ms.bucket) +
                       Addr(ms.frameInBucket) * 8 * kLineBytes;
        ++ms.frameInBucket;
        ms.frameFill = 0;
        ms.framePendingData = 0;
        ms.metaLine.fill(0);
        std::uint32_t magic = redo_format::kMetaMagic;
        std::memcpy(ms.metaLine.data(), &magic, sizeof(magic));
    }

    const std::uint32_t slot = ms.frameFill++;
    std::memcpy(ms.metaLine.data() + 8 + slot * 8, &slot_word, 8);
    std::uint8_t count = std::uint8_t(ms.frameFill);
    ms.metaLine[4] = count;

    if (!is_commit) {
        // Entry data line write (charged on the log channel).
        const Addr data_addr =
            ms.frameMeta + Addr(slot + 1) * kLineBytes;
        ++ms.framePendingData;
        const Addr frame = ms.frameMeta;
        // Stage the in-place apply on the core: the backend may only
        // touch in-place data after the commit record persists.
        _cores[core].stagedApplies.emplace_back(
            mc, WcbEntry{redo_format::slotAddr(slot_word), data},
            data_addr);
        _mcs[mc]->writeLine(data_addr, data, WriteKind::RedoLog,
                            [this, mc, frame,
                             durable = std::move(durable)]() mutable {
            McState &s = _mcState[mc];
            if (s.frameMeta == frame)
                --s.framePendingData;
            durable();
        });
        if (ms.frameFill >= redo_format::kSlotsPerFrame)
            sealFrame(mc, std::function<void()>{});
        return;
    }

    // Commit slot: seal the frame now; durable when the meta persists.
    sealFrame(mc, std::move(durable));
}

void
RedoEngine::sealFrame(McId mc, std::function<void()> durable)
{
    McState &ms = _mcState[mc];
    panic_if(ms.frameMeta == 0, "sealing a non-existent frame");
    const Addr meta_addr = ms.frameMeta;
    const Line meta = ms.metaLine;
    ms.frameMeta = 0;

    // Meta persists after its data lines: the controller's FIFO write
    // queue per channel preserves issue order for our purposes (the
    // data writes were issued first on the same channel).
    _mcs[mc]->writeLine(meta_addr, meta, WriteKind::RedoLog,
                        [durable = std::move(durable)]() mutable {
                            if (durable)
                                durable();
                        });
}

void
RedoEngine::commitTxn(CoreId core, std::function<void()> done)
{
    CoreState &cs = _cores[core];
    panic_if(!cs.active, "commit without a txn");

    auto write_commit = [this, core, done = std::move(done)]() mutable {
        CoreState &s = _cores[core];
        s.active = false;
        _statCommits.inc();
        // A commit slot goes to every controller this update logged
        // at, so each per-controller stream is self-contained for
        // recovery; the update is durable when all slots persist.
        std::vector<McId> targets;
        std::uint32_t mc_mask = 0;
        for (McId m = 0; m < _cfg.numMemCtrls; ++m) {
            if (!s.touchedMc.empty() && s.touchedMc[m]) {
                targets.push_back(m);
                mc_mask |= 1u << m;
            }
        }
        if (targets.empty()) {
            targets.push_back(McId(core % _cfg.numMemCtrls));
            mc_mask = 1u << targets.front();
        }
        s.touchedMc.clear();

        auto pending = std::make_shared<std::size_t>(targets.size());
        auto finish = std::make_shared<std::function<void()>>(
            [this, core, done = std::move(done)]() mutable {
                // Commit record durable: release the update's staged
                // in-place applies to the backend controllers.
                CoreState &s2 = _cores[core];
                for (auto &[m, entry, log_addr] : s2.stagedApplies) {
                    _mcState[m].applyQueue.push_back(entry);
                    _mcState[m].applyLogAddr.push_back(log_addr);
                }
                s2.stagedApplies.clear();
                for (McId m = 0; m < _cfg.numMemCtrls; ++m)
                    backendPump(m);
                done();
            });
        for (McId m : targets) {
            appendToFrame(m, core,
                          redo_format::packCommit(core, s.txnSeq,
                                                  mc_mask),
                          Line{}, true, [pending, finish] {
                              if (--*pending == 0)
                                  (*finish)();
                          });
        }
    };

    // Wait for the combine buffer to drain and all entry writes to be
    // issued before the commit record.
    if (!cs.draining && cs.wcb.empty() && cs.entriesInFlight == 0) {
        write_commit();
    } else {
        panic_if(cs.commitWaiter != nullptr,
                 "overlapping commits on core %u", core);
        cs.commitWaiter = std::move(write_commit);
    }
}

void
RedoEngine::backendPump(McId mc)
{
    McState &ms = _mcState[mc];
    if (ms.backendBusy || ms.applyQueue.empty())
        return;
    ms.backendBusy = true;

    WcbEntry entry = std::move(ms.applyQueue.front());
    ms.applyQueue.pop_front();
    const Addr log_addr = ms.applyLogAddr.front();
    ms.applyLogAddr.pop_front();

    // The backend reads the log entry from NVM, then updates data in
    // place -- the read+write bandwidth cost Section VI-D measures.
    _mcs[mc]->readLine(log_addr, ReadKind::LogRead,
                       [this, mc, entry](const Line &) {
        _mcs[mc]->writeLine(entry.line, entry.data, WriteKind::RedoApply,
                            [this, mc] {
                                _statApplied.inc();
                                McState &s = _mcState[mc];
                                s.backendBusy = false;
                                backendPump(mc);
                            });
    });
}

std::size_t
RedoEngine::backlog() const
{
    std::size_t n = 0;
    for (const auto &ms : _mcState)
        n += ms.applyQueue.size();
    return n;
}

void
RedoEngine::powerFail()
{
    for (auto &ev : _drainEvents)
        _eq.deschedule(*ev);
    for (auto &cs : _cores) {
        cs.active = false;
        cs.wcb.clear();
        cs.draining = false;
        cs.fullWaiters.clear();
        cs.commitWaiter = nullptr;
        cs.entriesInFlight = 0;
        cs.stagedApplies.clear();
    }
    for (auto &ms : _mcState) {
        ms.frameMeta = 0;
        ms.applyQueue.clear();
        ms.applyLogAddr.clear();
        ms.backendBusy = false;
    }
    for (VictimCache &shard : _victims)
        shard.clear();
}

std::size_t
RedoEngine::victimLines() const
{
    std::size_t lines = 0;
    for (const VictimCache &shard : _victims)
        lines += shard.size();
    return lines;
}

} // namespace atomsim
