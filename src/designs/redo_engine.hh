/**
 * @file
 * REDO: the redo-log comparator design (Doshi et al., HPCA 2016), as
 * evaluated in Section VI-D of the ATOM paper.
 *
 * Differences from ATOM, mirroring the paper's setup:
 *  - every store in an atomic region produces a log entry (vs ATOM's
 *    one entry per first-written line), via a per-core write-combining
 *    buffer;
 *  - the log holds *new* values; commit persists a commit record, after
 *    which a backend controller reads the log entries back from NVM
 *    and applies them in place, consuming read + write bandwidth;
 *  - dirty L2 evictions park in an infinite victim cache so stale
 *    in-place NVM data is never overwritten before the log applies
 *    (and reads never observe stale NVM data);
 *  - log writes are hardware-issued on stores (the paper's fairness
 *    modification) and write-combined.
 *
 * NVM log layout per controller: a stream of 8-line frames -- one meta
 * line describing up to 7 entries, then the 7 data lines. The meta
 * line persists only after its data lines (so recovery can trust any
 * frame whose meta parses). Commit records are meta lines with a
 * commit slot for (core, txnSeq).
 */

#ifndef ATOMSIM_DESIGNS_REDO_ENGINE_HH
#define ATOMSIM_DESIGNS_REDO_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "cache/l1_cache.hh"
#include "cache/l2_cache.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{

/** Redo-log front end (StoreLogger) + backend apply controller. */
class RedoEngine : public StoreLogger
{
  public:
    RedoEngine(EventQueue &eq, const SystemConfig &cfg,
               const AddressMap &amap,
               std::vector<std::unique_ptr<MemoryController>> &mcs,
               StatSet &stats);

    // --- StoreLogger ---------------------------------------------------

    Mode mode() const override { return Mode::Redo; }
    bool inAtomic(CoreId core) const override;
    void onFirstWrite(CoreId, Addr, const Line &,
                      CacheCallback) override;
    void onStore(CoreId core, Addr addr, const Line &pre,
                 std::uint32_t off, const std::uint8_t *bytes,
                 std::uint32_t size, CacheCallback done) override;

    // --- Transaction lifecycle ------------------------------------------

    void beginTxn(CoreId core);

    /**
     * Commit: drain the core's combine buffer, persist the commit
     * record, then @p done. Queues the update's in-place applies on
     * the backend.
     */
    void commitTxn(CoreId core, std::function<void()> done);

    /**
     * The infinite victim cache, sharded per home tile: every access
     * to a line -- the eviction that parks it and the miss that finds
     * it -- happens at the line's home L2 slice, so each tile's shard
     * is only ever touched from that tile's simulation domain.
     */
    VictimCache &victimCache(std::uint32_t tile) { return _victims[tile]; }

    /** Parked victim lines across every tile shard (tests). */
    std::size_t victimLines() const;

    /** Entries still waiting for in-place application (tests). */
    std::size_t backlog() const;

    /** Power failure: volatile front-end/backend state is lost. */
    void powerFail();

  private:
    /** One pending redo entry (newest value of a line). The data is
     * owned by the buffer from onStore time -- the line's pre-store
     * image with every combined store's bytes merged in -- so the
     * drain never re-reads the cache hierarchy (which races the
     * line's in-transit copies; see StoreLogger::onStore). */
    struct WcbEntry
    {
        Addr line;
        Line data;
        /** Earliest tick the entry may drain: the triggering store
         * must have applied to the cache first (drain pacing keeps
         * the engine's log-issue timing store-accurate). */
        Tick readyAt = 0;
    };

    /** Per-core front end state. */
    struct CoreState
    {
        bool active = false;
        std::uint64_t txnSeq = 0;
        std::deque<WcbEntry> wcb;
        bool draining = false;
        /** Stores stalled on a full combine buffer; the retry
         * captures the store's pre-image and payload by value (plus
         * the completion), hence the width. */
        std::deque<InplaceCallback<240>> fullWaiters;
        std::function<void()> commitWaiter;
        std::uint32_t entriesInFlight = 0;
        /** Controllers this update logged at (commit slots go to each
         * so per-controller recovery streams are self-contained). */
        std::vector<bool> touchedMc;
        /** In-place applies staged until the commit record persists:
         * uncommitted data must never reach NVM in place. */
        std::vector<std::tuple<McId, WcbEntry, Addr>> stagedApplies;
    };

    /** Per-controller log stream + backend state. */
    struct McState
    {
        /** Stream cursor: bucket (page) + frame within the bucket.
         * Buckets are the MC-interleaved log pages, so the cursor
         * must hop bucket-to-bucket, never into a neighbour MC's
         * pages. */
        std::uint32_t bucket = 0;
        std::uint32_t frameInBucket = 0;
        /** Frame under construction. */
        Addr frameMeta = 0;
        std::uint32_t frameFill = 0;
        std::uint32_t framePendingData = 0;
        Line metaLine{};
        /** In-place applies queued for the backend. */
        std::deque<WcbEntry> applyQueue;
        /** Log-area address each queued entry was written at. */
        std::deque<Addr> applyLogAddr;
        bool backendBusy = false;
        /** Times the circular log cursor wrapped. */
        std::uint64_t wraps = 0;
    };

    void drainWcb(CoreId core);

    /** Append one entry/commit slot to the MC's current frame. */
    void appendToFrame(McId mc, CoreId core, Addr slot_word,
                       const Line &data, bool is_commit,
                       std::function<void()> durable);

    /** Seal + persist the current frame's meta line. */
    void sealFrame(McId mc, std::function<void()> durable);

    void backendPump(McId mc);

    EventQueue &_eq;
    const SystemConfig &_cfg;
    const AddressMap &_amap;
    std::vector<std::unique_ptr<MemoryController>> &_mcs;

    std::vector<CoreState> _cores;
    std::vector<McState> _mcState;
    /** One recurring combine-buffer drain event per core (at most one
     * drain step pending per core; see CoreState::draining). */
    std::vector<std::unique_ptr<TickEvent>> _drainEvents;
    std::vector<VictimCache> _victims;  //!< one shard per home tile

    Counter &_statEntries;
    Counter &_statCombined;
    Counter &_statCommits;
    Counter &_statApplied;
};

/** Packed meta-line slot helpers (shared with recovery). */
namespace redo_format
{

constexpr std::uint32_t kMetaMagic = 0x0D0E0001u;
/** 7 slots fit a 64-byte meta line (8-byte header + 7 x 8-byte
 * slots); a frame is then 8 lines = 512 B, like an ATOM record. */
constexpr std::uint32_t kSlotsPerFrame = 7;

/** Slot word: line address | core (low 6 bits); commit flag bit 63.
 * Commit slots additionally carry the transaction's sequence number
 * and the mask of controllers it logged at, so recovery can detect a
 * commit that persisted at only a subset of controllers (such a
 * transaction is NOT committed and must not be applied anywhere). */
std::uint64_t packEntry(Addr line_addr, CoreId core);
std::uint64_t packCommit(CoreId core, std::uint64_t txn_seq,
                         std::uint32_t mc_mask);
bool isCommit(std::uint64_t word);
Addr slotAddr(std::uint64_t word);
CoreId slotCore(std::uint64_t word);
std::uint64_t commitSeq(std::uint64_t word);
std::uint32_t commitMcMask(std::uint64_t word);

} // namespace redo_format

} // namespace atomsim

#endif // ATOMSIM_DESIGNS_REDO_ENGINE_HH
