#include "designs/design.hh"

#include "atom/logm.hh"
#include "cache/l1_cache.hh"
#include "designs/redo_engine.hh"
#include "sim/logging.hh"

namespace atomsim
{

const char *
logPlacementName(const SystemConfig &cfg)
{
    switch (cfg.hybridMode) {
      case HybridMode::NvmOnly:
        return "flat-nvm";
      case HybridMode::MemoryMode:
        return "dram-cached";
      case HybridMode::AppDirect:
        return cfg.appDirectRegion == AppDirectRegion::LogRegion
                   ? "direct"
                   : "dram-cached";
    }
    return "?";
}

AusPool::AusPool(EventQueue &eq, std::uint32_t slots, std::uint32_t cores,
                 StatSet &stats)
    : _eq(eq),
      _slotOf(cores, -1),
      _slotBusy(slots, false),
      _statStallCycles(stats.counter("aus", "structural_stall_cycles")),
      _statAcquires(stats.counter("aus", "acquires"))
{
}

void
AusPool::acquire(CoreId core, std::function<void(std::uint32_t)> granted)
{
    panic_if(_slotOf[core] >= 0, "core %u already holds an AUS", core);
    for (std::uint32_t s = 0; s < _slotBusy.size(); ++s) {
        if (!_slotBusy[s]) {
            _slotBusy[s] = true;
            _slotOf[core] = int(s);
            _statAcquires.inc();
            if (!_tenantAcquires.empty())
                _tenantAcquires[core]->inc();
            granted(s);
            return;
        }
    }
    // Structural overflow: wait for a slot (Section IV-E).
    _waiters.emplace_back(_eq.now(),
                          std::make_pair(core, std::move(granted)));
}

void
AusPool::release(CoreId core)
{
    const int slot = _slotOf[core];
    panic_if(slot < 0, "core %u releases no AUS", core);
    _slotOf[core] = -1;

    if (!_waiters.empty()) {
        auto [since, waiter] = std::move(_waiters.front());
        _waiters.pop_front();
        _statStallCycles.inc(_eq.now() - since);
        auto [wcore, granted] = std::move(waiter);
        _slotOf[wcore] = slot;
        _statAcquires.inc();
        if (!_tenantAcquires.empty())
            _tenantAcquires[wcore]->inc();
        granted(std::uint32_t(slot));
        return;
    }
    _slotBusy[std::size_t(slot)] = false;
}

int
AusPool::slotOf(CoreId core) const
{
    return _slotOf[core];
}

DesignContext::DesignContext(EventQueue &eq, const SystemConfig &cfg,
                             std::vector<std::unique_ptr<LogM>> &logms,
                             std::vector<L1Cache *> l1s, AusPool &pool,
                             RedoEngine *redo, StatSet &stats)
    : _eq(eq),
      _cfg(cfg),
      _logms(logms),
      _l1s(std::move(l1s)),
      _pool(pool),
      _redo(redo),
      _commitInFlight(cfg.numCores, false),
      _pendingBegin(cfg.numCores),
      _statFlushes(stats.counter("design", "commit_flushes")),
      _statCommits(stats.counter("design", "commits")),
      _statStagedAcks(stats.counter("design", "staged_acks"))
{
}

void
DesignContext::setSharded(std::vector<SimDomain *> domains,
                          const ShardLayout &layout)
{
    _domains = std::move(domains);
    _layout = layout;
    _truncPending.assign(_cfg.numCores, 0);
    _truncDone.resize(_cfg.numCores);
}

EventQueue &
DesignContext::hereQueue()
{
    SimDomain *d = SimDomain::current();
    return d ? d->queue() : _eq;
}

EventQueue &
DesignContext::coreQueue(CoreId core)
{
    return _domains.empty()
               ? _eq
               : _domains[_layout.coreDomain(core)]->queue();
}

void
DesignContext::shardedBegin(CoreId core, std::function<void()> done)
{
    _pool.acquire(core, [this, core, done = std::move(done)](
                            std::uint32_t slot) mutable {
        // Leader context: every LogM's domain is parked at the
        // barrier, so arming the AUS registers directly is safe. The
        // continuation resumes the core, so it posts into the core's
        // own domain queue.
        for (auto &logm : _logms)
            logm->beginUpdate(slot);
        coreQueue(core).postIn(1, std::move(done));
    });
}

void
DesignContext::shardedTruncate(CoreId core, std::function<void()> done)
{
    const int slot = _pool.slotOf(core);
    panic_if(slot < 0, "truncate without an AUS (core %u)", core);
    _truncPending[core] = std::uint32_t(_logms.size());
    _truncDone[core] = std::move(done);

    for (std::uint32_t m = 0; m < _logms.size(); ++m) {
        // Execute each LogM's truncate in its own domain scope: the
        // completion (inline when quiesced, or later on the MC's
        // worker) hops back to the control plane under the canonical
        // key (tick, core, mc).
        SimDomain::Scope scope(_domains[_layout.mcDomain(m)]);
        _logms[m]->truncate(std::uint32_t(slot), [this, core, m] {
            SimDomain::current()->submitControl(
                core, m, InplaceCallback<64>([this, core] {
                    if (--_truncPending[core] != 0)
                        return;
                    _pool.release(core);
                    countCommit(core);
                    coreQueue(core).postIn(
                        1, std::move(_truncDone[core]));
                }));
        });
    }
}

void
DesignContext::atomicBegin(CoreId core, std::function<void()> done)
{
    switch (_cfg.design) {
      case DesignKind::NonAtomic:
        hereQueue().postIn(1, std::move(done));
        return;

      case DesignKind::Redo:
        _redo->beginTxn(core);
        _eq.postIn(1, std::move(done));
        return;

      case DesignKind::Base:
      case DesignKind::Atom:
      case DesignKind::AtomOpt:
        if (!_domains.empty()) {
            SimDomain::current()->submitControl(
                core, ctrlsub::kBegin,
                InplaceCallback<64>(
                    [this, core, done = std::move(done)]() mutable {
                        shardedBegin(core, std::move(done));
                    }));
            return;
        }
        if (_commitInFlight[core]) {
            // Eventual durability: this core's previous commit was
            // acked from the staging window and its truncation is
            // still running, so the AUS slot is not yet released.
            // Park the begin; it resumes when the truncation lands.
            panic_if(_pendingBegin[core] != nullptr,
                     "core %u double-parked an atomicBegin", core);
            _pendingBegin[core] = std::move(done);
            return;
        }
        _pool.acquire(core, [this, done = std::move(done)](
                                std::uint32_t slot) mutable {
            // Arm the AUS at every controller: entries of one update
            // may land behind any of them (data placement decides).
            for (auto &logm : _logms)
                logm->beginUpdate(slot);
            _eq.postIn(1, std::move(done));
        });
        return;
    }
    panic("unknown design");
}

void
DesignContext::flushLines(CoreId core, std::vector<Addr> lines,
                          std::function<void()> done)
{
    if (lines.empty()) {
        done();
        return;
    }
    // Flush with a bounded issue window (the L1 MSHR count), like a
    // clwb loop with limited outstanding misses. The state is kept
    // alive by the outstanding flush acks alone (no self-referential
    // closure), so it is freed when the last ack lands.
    auto st = std::make_shared<FlushState>();
    st->lines = std::move(lines);
    st->done = std::move(done);
    pumpFlushes(core, st);
}

void
DesignContext::pumpFlushes(CoreId core,
                           const std::shared_ptr<FlushState> &st)
{
    while (st->next < st->lines.size() && st->pending < _cfg.mshrs) {
        const Addr line = st->lines[st->next++];
        ++st->pending;
        _statFlushes.inc();
        _l1s[core]->flush(line, [this, core, st] {
            --st->pending;
            if (st->next < st->lines.size()) {
                pumpFlushes(core, st);
            } else if (st->pending == 0) {
                st->done();
            }
        });
    }
}

void
DesignContext::truncateAll(CoreId core, std::function<void()> done)
{
    const int slot = _pool.slotOf(core);
    panic_if(slot < 0, "truncate without an AUS (core %u)", core);

    auto pending = std::make_shared<std::size_t>(_logms.size());
    auto finish = std::make_shared<std::function<void()>>(
        [this, core, done = std::move(done)]() mutable {
            _pool.release(core);
            countCommit(core);
            done();
        });
    for (auto &logm : _logms) {
        logm->truncate(std::uint32_t(slot), [pending, finish] {
            if (--*pending == 0)
                (*finish)();
        });
    }
}

void
DesignContext::atomicEnd(CoreId core,
                         const std::vector<Addr> &modified_lines,
                         std::function<void()> done)
{
    switch (_cfg.design) {
      case DesignKind::NonAtomic:
        // Upper bound: still writes all modified data back to NVM on
        // completion of the update (Section V), just without logging.
        flushLines(core, modified_lines, std::move(done));
        return;

      case DesignKind::Redo:
        // No data flushes: the commit record makes the update durable;
        // the backend applies the log in place in the background.
        _redo->commitTxn(core, std::move(done));
        return;

      case DesignKind::Base:
      case DesignKind::Atom:
      case DesignKind::AtomOpt:
        flushLines(core, modified_lines,
                   [this, core, done = std::move(done)]() mutable {
                       if (!_domains.empty()) {
                           // Flushes completed on the cache-complex
                           // domain; hand the cross-domain truncate to
                           // the barrier leader.
                           SimDomain::current()->submitControl(
                               core, ctrlsub::kTruncate,
                               InplaceCallback<64>([this, core,
                                                    done = std::move(
                                                        done)]() mutable {
                                   shardedTruncate(core, std::move(done));
                               }));
                           return;
                       }
                       if (_cfg.durabilityPolicy ==
                               DurabilityPolicy::Eventual &&
                           _stagedCommits < _cfg.ssdStagingWindow) {
                           // Eventual durability: ack from the
                           // volatile staging window. Truncation (and
                           // with it genuine durability and the AUS
                           // release) continues in the background; a
                           // crash before it lands rolls this commit
                           // back, so the recovery-point loss is
                           // bounded by the window size. A full window
                           // falls through to the synchronous path.
                           ++_stagedCommits;
                           if (_stagedCommits > _stagedPeak)
                               _stagedPeak = _stagedCommits;
                           _statStagedAcks.inc();
                           _commitInFlight[core] = true;
                           _eq.postIn(1, std::move(done));
                           truncateAll(core, [this, core] {
                               --_stagedCommits;
                               _commitInFlight[core] = false;
                               if (_pendingBegin[core]) {
                                   auto parked =
                                       std::move(_pendingBegin[core]);
                                   _pendingBegin[core] = nullptr;
                                   atomicBegin(core, std::move(parked));
                               }
                           });
                           return;
                       }
                       truncateAll(core, std::move(done));
                   });
        return;
    }
    panic("unknown design");
}

} // namespace atomsim
