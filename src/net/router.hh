/**
 * @file
 * Mesh node coordinates and link bookkeeping for the on-chip network.
 */

#ifndef ATOMSIM_NET_ROUTER_HH
#define ATOMSIM_NET_ROUTER_HH

#include <cstdint>

#include "sim/types.hh"

namespace atomsim
{

/** Integer coordinates of a node in the 2D mesh. */
struct MeshCoord
{
    std::uint32_t row;
    std::uint32_t col;

    bool
    operator==(const MeshCoord &other) const
    {
        return row == other.row && col == other.col;
    }
};

/** Manhattan distance between two mesh nodes (XY route length). */
std::uint32_t meshHops(const MeshCoord &a, const MeshCoord &b);

/**
 * A unidirectional mesh link with a busy-until reservation.
 *
 * Cut-through approximation: the head flit reserves the link until it
 * passes; body flits extend occupancy at the destination only. This
 * captures queuing under load without per-flit events.
 */
class MeshLink
{
  public:
    /** Reserve the link starting no earlier than @p earliest.
     * @return tick at which the head flit has traversed. */
    Tick reserve(Tick earliest, Cycles hop_latency,
                 std::uint32_t flits);

    Tick freeAt() const { return _busyUntil; }
    std::uint64_t flitsCarried() const { return _flits; }

  private:
    Tick _busyUntil = 0;
    std::uint64_t _flits = 0;
};

} // namespace atomsim

#endif // ATOMSIM_NET_ROUTER_HH
