/**
 * @file
 * Mesh node coordinates and link bookkeeping for the on-chip network.
 */

#ifndef ATOMSIM_NET_ROUTER_HH
#define ATOMSIM_NET_ROUTER_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace atomsim
{

class Mesh;
struct Packet;

/** Integer coordinates of a node in the 2D mesh. */
struct MeshCoord
{
    std::uint32_t row;
    std::uint32_t col;

    bool
    operator==(const MeshCoord &other) const
    {
        return row == other.row && col == other.col;
    }
};

/** Manhattan distance between two mesh nodes (XY route length). */
std::uint32_t meshHops(const MeshCoord &a, const MeshCoord &b);

/**
 * A unidirectional mesh link's intrusive packet delivery queue.
 *
 * A packet whose route *ends* on this link (or, for the per-node
 * ejection "link", a same-node message) is chained into the link's
 * queue, ordered by (arrival, seq). One member drain event per link
 * walks the queue at link rate, delivering each packet in its stamped
 * FIFO slot -- no per-message event allocation, and the queue depth is
 * directly observable. With a bounded depth configured, overflowing
 * packets park in a stall list and are re-admitted as the queue drains
 * (see Mesh).
 *
 * The busy-until *reservation* that models serialization on the link
 * lives in a compact per-link array inside the Mesh: the routing loop
 * touches one Tick per hop, not one of these queue objects, keeping
 * the send path cache-tight.
 */
class MeshLink
{
  public:
    /** Packets currently queued for delivery on this link. */
    std::uint32_t queueDepth() const { return _qCount; }

    /** Packets parked by bounded-depth backpressure. */
    std::uint32_t stalledDepth() const { return _ovCount; }

  private:
    friend class Mesh;

    /** Member drain event; delegates to Mesh::drainLink. */
    struct DrainEvent final : public Event
    {
        void process() override;  // defined in mesh.cc

        Mesh *mesh = nullptr;
        MeshLink *link = nullptr;
    };

    Packet *_qHead = nullptr;   //!< delivery FIFO, (arrival, seq) order
    Packet *_qTail = nullptr;
    std::uint32_t _qCount = 0;
    Packet *_ovHead = nullptr;  //!< backpressure stall list (FIFO)
    Packet *_ovTail = nullptr;
    std::uint32_t _ovCount = 0;
    DrainEvent _drain;
};

} // namespace atomsim

#endif // ATOMSIM_NET_ROUTER_HH
