#include "net/mesh.hh"

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

/** True when @p a must deliver before @p b. */
inline bool
deliversBefore(const Packet *a, const Packet *b)
{
    if (a->arrival != b->arrival)
        return a->arrival < b->arrival;
    return a->seq < b->seq;
}

} // namespace

void
MeshLink::DrainEvent::process()
{
    mesh->drainLink(*link);
}

Mesh::Mesh(EventQueue &eq, const SystemConfig &cfg, StatSet &stats)
    : _eq(eq),
      _rows(cfg.meshRows),
      _cols(cfg.meshCols()),
      _hopLatency(cfg.hopLatency),
      _maxQueueDepth(cfg.linkQueueDepth),
      _messages(stats.counter("mesh", "messages")),
      _flitHops(stats.counter("mesh", "flit_hops")),
      _linkStalls(stats.counter("mesh", "link_stalls")),
      _linkStallCycles(stats.counter("mesh", "link_stall_cycles"))
{
    // 4 directed links per node: 0=E, 1=W, 2=S, 3=N. Plus one ejection
    // queue per node for same-node traffic (no link traversal).
    const std::size_t n = numNodes();
    _links = std::make_unique<MeshLink[]>(n * 4);
    _eject = std::make_unique<MeshLink[]>(n);
    _linkBusy.assign(n * 4, 0);
    for (std::size_t i = 0; i < n * 4; ++i) {
        _links[i]._drain.mesh = this;
        _links[i]._drain.link = &_links[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        _eject[i]._drain.mesh = this;
        _eject[i]._drain.link = &_eject[i];
    }
}

Mesh::~Mesh() = default;

MeshCoord
Mesh::coordOf(std::uint32_t node) const
{
    return MeshCoord{node / _cols, node % _cols};
}

std::uint32_t
Mesh::nodeOf(MeshCoord c) const
{
    return c.row * _cols + c.col;
}

std::uint32_t
Mesh::mcNode(McId mc) const
{
    // Memory controllers sit on the four die corners (Section V).
    switch (mc % 4) {
      case 0:
        return nodeOf({0, 0});
      case 1:
        return nodeOf({0, _cols - 1});
      case 2:
        return nodeOf({_rows - 1, 0});
      default:
        return nodeOf({_rows - 1, _cols - 1});
    }
}

std::size_t
Mesh::linkIndex(std::uint32_t from, std::uint32_t to) const
{
    const MeshCoord a = coordOf(from);
    const MeshCoord b = coordOf(to);
    std::uint32_t dir;
    if (b.row == a.row)
        dir = (b.col == a.col + 1) ? 0 : 1;
    else
        dir = (b.row == a.row + 1) ? 2 : 3;
    return std::size_t(from) * 4 + dir;
}

std::uint32_t
Mesh::hops(std::uint32_t src, std::uint32_t dst) const
{
    return meshHops(coordOf(src), coordOf(dst));
}

Packet &
Mesh::make(MsgType type)
{
    Packet *p = _pool.acquire();
    p->reset();
    p->type = type;
    return *p;
}

void
Mesh::send(std::uint32_t src, std::uint32_t dst, MsgType type,
           MeshCallback cb)
{
    Packet &p = make(type);
    p.cb = std::move(cb);
    send(src, dst, p);
}

void
Mesh::send(std::uint32_t src, std::uint32_t dst, Packet &pkt)
{
    panic_if(src >= numNodes() || dst >= numNodes(),
             "bad mesh node (%u -> %u)", src, dst);

    const std::uint32_t flits = msgFlits(pkt.type);
    _messages.inc();

    // XY routing: move along the row (X) first, then the column (Y).
    // The loop tracks coordinates incrementally and reserves through
    // the compact busy array: one Tick touched per hop.
    MeshCoord cur = coordOf(src);
    const MeshCoord target = coordOf(dst);
    Tick head = _eq.now() + _hopLatency;  // source router traversal

    std::uint32_t hop_count = 0;
    std::size_t last = SIZE_MAX;
    while (!(cur == target)) {
        std::uint32_t dir;  // 0=E, 1=W, 2=S, 3=N
        if (cur.col != target.col) {
            dir = (target.col > cur.col) ? 0 : 1;
        } else {
            dir = (target.row > cur.row) ? 2 : 3;
        }
        last = std::size_t(nodeOf(cur)) * 4 + dir;
        // Cut-through reservation: the head flit waits for the link,
        // then the body's flits occupy it behind the head.
        Tick &busy = _linkBusy[last];
        const Tick start = head > busy ? head : busy;
        head = start + _hopLatency;
        busy = head + flits - 1;
        switch (dir) {
          case 0: ++cur.col; break;
          case 1: --cur.col; break;
          case 2: ++cur.row; break;
          default: --cur.row; break;
        }
        ++hop_count;
    }

    pkt.src = src;
    pkt.dst = dst;
    pkt.arrival = head + flits - 1;
    pkt.seq = _eq.allocSeq();
    _flitHops.inc(std::uint64_t(flits) * (hop_count + 1));

    enqueue(last != SIZE_MAX ? _links[last] : _eject[dst], &pkt);
}

void
Mesh::enqueue(MeshLink &lq, Packet *pkt)
{
    if (_maxQueueDepth != 0 && lq._qCount >= _maxQueueDepth) {
        // Backpressure: the delivery queue is full; park the packet.
        // It re-enters (with a delayed arrival) as the queue drains.
        _linkStalls.inc();
        pkt->next = nullptr;
        if (lq._ovTail)
            lq._ovTail->next = pkt;
        else
            lq._ovHead = pkt;
        lq._ovTail = pkt;
        ++lq._ovCount;
        return;
    }
    admit(lq, pkt);
}

void
Mesh::admit(MeshLink &lq, Packet *pkt)
{
    // Insert in (arrival, seq) order. Link queues are monotone (the
    // reservation makes successive arrivals strictly increase), so this
    // is an O(1) tail append; ejection queues can interleave (a 1-flit
    // message overtakes a same-tick 5-flit one) and walk from the head.
    if (!lq._qTail || !deliversBefore(pkt, lq._qTail)) {
        pkt->next = nullptr;
        if (lq._qTail)
            lq._qTail->next = pkt;
        else
            lq._qHead = pkt;
        lq._qTail = pkt;
    } else {
        Packet *prev = nullptr;
        Packet *cur = lq._qHead;
        while (cur && !deliversBefore(pkt, cur)) {
            prev = cur;
            cur = cur->next;
        }
        pkt->next = cur;
        if (prev)
            prev->next = pkt;
        else
            lq._qHead = pkt;
        if (!cur)
            lq._qTail = pkt;
    }
    ++lq._qCount;

    if (lq._qHead == pkt) {
        // New earliest delivery: re-arm the drain event in the packet's
        // stamped FIFO slot.
        _eq.deschedule(lq._drain);
        _eq.scheduleAt(lq._drain, pkt->arrival, pkt->seq);
    }
}

void
Mesh::drainLink(MeshLink &lq)
{
    Packet *pkt = lq._qHead;
    panic_if(!pkt, "link drain with an empty delivery queue");
    panic_if(pkt->arrival != _eq.now(), "link drain off schedule");

    lq._qHead = pkt->next;
    if (!lq._qHead)
        lq._qTail = nullptr;
    --lq._qCount;
    pkt->next = nullptr;

    // Re-arm for the next queued packet in its own stamped slot.
    if (lq._qHead)
        _eq.scheduleAt(lq._drain, lq._qHead->arrival, lq._qHead->seq);

    // Bounded mode: a slot freed; re-admit stalled packets behind the
    // tail, charging the added delay.
    while (_maxQueueDepth != 0 && lq._ovHead &&
           lq._qCount < _maxQueueDepth) {
        Packet *s = lq._ovHead;
        lq._ovHead = s->next;
        if (!lq._ovHead)
            lq._ovTail = nullptr;
        --lq._ovCount;
        s->next = nullptr;

        Tick earliest = _eq.now() + _hopLatency;  // re-traverses output
        if (lq._qTail && lq._qTail->arrival + 1 > earliest)
            earliest = lq._qTail->arrival + 1;    // stay in FIFO order
        if (s->arrival < earliest) {
            _linkStallCycles.inc(earliest - s->arrival);
            s->arrival = earliest;
        }
        s->seq = _eq.allocSeq();
        admit(lq, s);
    }

    if (_tracer)
        _tracer->onDeliver(_eq.now(), pkt->dst, pkt->type);

    // Typed completion: receiver + opcode. cb-only packets run their
    // inline continuation instead.
    if (pkt->receiver) {
        pkt->receiver->meshDeliver(*pkt);
    } else if (pkt->cb) {
        MeshCallback cb = std::move(pkt->cb);
        cb();
    }
    pkt->reset();
    _pool.release(pkt);
}

} // namespace atomsim
