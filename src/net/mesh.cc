#include "net/mesh.hh"

#include "sim/logging.hh"

namespace atomsim
{

Mesh::Mesh(EventQueue &eq, const SystemConfig &cfg, StatSet &stats)
    : _eq(eq),
      _rows(cfg.meshRows),
      _cols(cfg.meshCols()),
      _hopLatency(cfg.hopLatency),
      _messages(stats.counter("mesh", "messages")),
      _flitHops(stats.counter("mesh", "flit_hops"))
{
    // 4 directed links per node: 0=E, 1=W, 2=S, 3=N.
    _links.resize(std::size_t(numNodes()) * 4);
}

MeshCoord
Mesh::coordOf(std::uint32_t node) const
{
    return MeshCoord{node / _cols, node % _cols};
}

std::uint32_t
Mesh::nodeOf(MeshCoord c) const
{
    return c.row * _cols + c.col;
}

std::uint32_t
Mesh::mcNode(McId mc) const
{
    // Memory controllers sit on the four die corners (Section V).
    switch (mc % 4) {
      case 0:
        return nodeOf({0, 0});
      case 1:
        return nodeOf({0, _cols - 1});
      case 2:
        return nodeOf({_rows - 1, 0});
      default:
        return nodeOf({_rows - 1, _cols - 1});
    }
}

std::size_t
Mesh::linkIndex(std::uint32_t from, std::uint32_t to) const
{
    const MeshCoord a = coordOf(from);
    const MeshCoord b = coordOf(to);
    std::uint32_t dir;
    if (b.row == a.row)
        dir = (b.col == a.col + 1) ? 0 : 1;
    else
        dir = (b.row == a.row + 1) ? 2 : 3;
    return std::size_t(from) * 4 + dir;
}

std::uint32_t
Mesh::hops(std::uint32_t src, std::uint32_t dst) const
{
    return meshHops(coordOf(src), coordOf(dst));
}

void
Mesh::send(std::uint32_t src, std::uint32_t dst, MsgType type,
           std::function<void()> deliver)
{
    panic_if(src >= numNodes() || dst >= numNodes(),
             "bad mesh node (%u -> %u)", src, dst);

    const std::uint32_t flits = msgFlits(type);
    _messages.inc();

    // XY routing: move along the row (X) first, then the column (Y).
    MeshCoord cur = coordOf(src);
    const MeshCoord target = coordOf(dst);
    Tick head = _eq.now() + _hopLatency;  // source router traversal

    std::uint32_t hop_count = 0;
    while (!(cur == target)) {
        MeshCoord next = cur;
        if (cur.col != target.col)
            next.col += (target.col > cur.col) ? 1 : -1;
        else
            next.row += (target.row > cur.row) ? 1 : -1;
        const std::size_t li = linkIndex(nodeOf(cur), nodeOf(next));
        head = _links[li].reserve(head, _hopLatency, flits);
        cur = next;
        ++hop_count;
    }

    // Tail flit arrives after the body streams in behind the head.
    const Tick arrival = head + flits - 1;
    _flitHops.inc(std::uint64_t(flits) * (hop_count + 1));
    _eq.post(arrival, std::move(deliver));
}

} // namespace atomsim
