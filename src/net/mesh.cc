#include "net/mesh.hh"

#include <algorithm>
#include <thread>

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

/** True when @p a must deliver before @p b. */
inline bool
deliversBefore(const Packet *a, const Packet *b)
{
    if (a->arrival != b->arrival)
        return a->arrival < b->arrival;
    return a->seq < b->seq;
}

/** Deferred sends keep accumulating until this many are queued: a
 * parallel dispatch costs one barrier release/arrive round trip plus
 * the segmentation pass, which only pays off once the slices carry
 * real routing work. */
constexpr std::size_t kParallelRouteMin = 8;

} // namespace

void
MeshLink::DrainEvent::process()
{
    mesh->drainLink(*link);
}

Mesh::Mesh(EventQueue &eq, const SystemConfig &cfg, StatSet &stats)
    : _eq(eq),
      _rows(cfg.meshRows),
      _cols(cfg.meshCols()),
      _hopLatency(cfg.hopLatency),
      _maxQueueDepth(cfg.linkQueueDepth),
      _messages(stats.counter("mesh", "messages")),
      _flitHops(stats.counter("mesh", "flit_hops")),
      _linkStalls(stats.counter("mesh", "link_stalls")),
      _linkStallCycles(stats.counter("mesh", "link_stall_cycles"))
{
    // 4 directed links per node: 0=E, 1=W, 2=S, 3=N. Plus one ejection
    // queue per node for same-node traffic (no link traversal).
    const std::size_t n = numNodes();
    _links = std::make_unique<MeshLink[]>(n * 4);
    _eject = std::make_unique<MeshLink[]>(n);
    _linkBusy.assign(n * 4, 0);
    _ejectBusy.assign(n, 0);
    for (std::size_t i = 0; i < n * 4; ++i) {
        _links[i]._drain.mesh = this;
        _links[i]._drain.link = &_links[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        _eject[i]._drain.mesh = this;
        _eject[i]._drain.link = &_eject[i];
    }
}

Mesh::~Mesh() = default;

MeshCoord
Mesh::coordOf(std::uint32_t node) const
{
    return MeshCoord{node / _cols, node % _cols};
}

std::uint32_t
Mesh::nodeOf(MeshCoord c) const
{
    return c.row * _cols + c.col;
}

std::uint32_t
Mesh::mcNode(McId mc) const
{
    // Memory controllers sit on the four die corners (Section V).
    switch (mc % 4) {
      case 0:
        return nodeOf({0, 0});
      case 1:
        return nodeOf({0, _cols - 1});
      case 2:
        return nodeOf({_rows - 1, 0});
      default:
        return nodeOf({_rows - 1, _cols - 1});
    }
}

std::size_t
Mesh::linkIndex(std::uint32_t from, std::uint32_t to) const
{
    const MeshCoord a = coordOf(from);
    const MeshCoord b = coordOf(to);
    std::uint32_t dir;
    if (b.row == a.row)
        dir = (b.col == a.col + 1) ? 0 : 1;
    else
        dir = (b.row == a.row + 1) ? 2 : 3;
    return std::size_t(from) * 4 + dir;
}

std::uint32_t
Mesh::hops(std::uint32_t src, std::uint32_t dst) const
{
    return meshHops(coordOf(src), coordOf(dst));
}

Packet &
Mesh::make(MsgType type)
{
    Packet *p;
    if (!_net.empty()) {
        SimDomain *d = SimDomain::current();
        panic_if(!d, "mesh make() outside a domain scope (sharded)");
        p = _net[d->id()].pool.acquire();
        p->pool = std::uint16_t(d->id());
    } else {
        p = _pool.acquire();
    }
    p->reset();
    p->type = type;
    return *p;
}

std::size_t
Mesh::packetPoolAllocated() const
{
    std::size_t n = _pool.allocated();
    for (const auto &net : _net)
        n += net.pool.allocated();
    return n;
}

std::size_t
Mesh::packetPoolFree() const
{
    std::size_t n = _pool.idle();
    for (const auto &net : _net)
        n += net.pool.idle();
    return n;
}

void
Mesh::send(std::uint32_t src, std::uint32_t dst, MsgType type,
           MeshCallback cb)
{
    Packet &p = make(type);
    p.cb = std::move(cb);
    send(src, dst, p);
}

Tick
Mesh::routeReserve(std::uint32_t src, std::uint32_t dst,
                   std::uint32_t flits, Tick head,
                   std::uint32_t &hop_count, std::size_t &last_link)
{
    // XY routing: move along the row (X) first, then the column (Y).
    // The loop tracks coordinates incrementally and reserves through
    // the compact busy array: one Tick touched per hop.
    MeshCoord cur = coordOf(src);
    const MeshCoord target = coordOf(dst);

    hop_count = 0;
    last_link = SIZE_MAX;
    if (cur == target) {
        // Same-node message: serialize on the node's ejection port
        // exactly like a link, so point-to-point FIFO holds between
        // messages of different sizes (the split-phase coherence
        // protocol relies on a PutM never being overtaken by a later
        // 1-flit request on the same src->dst pair).
        Tick &busy = _ejectBusy[dst];
        const Tick start = head > busy ? head : busy;
        busy = start + flits;
        return start + flits - 1;
    }
    while (!(cur == target)) {
        std::uint32_t dir;  // 0=E, 1=W, 2=S, 3=N
        if (cur.col != target.col) {
            dir = (target.col > cur.col) ? 0 : 1;
        } else {
            dir = (target.row > cur.row) ? 2 : 3;
        }
        last_link = std::size_t(nodeOf(cur)) * 4 + dir;
        // Cut-through reservation: the head flit waits for the link,
        // then the body's flits occupy it behind the head.
        Tick &busy = _linkBusy[last_link];
        const Tick start = head > busy ? head : busy;
        head = start + _hopLatency;
        busy = head + flits - 1;
        switch (dir) {
          case 0: ++cur.col; break;
          case 1: --cur.col; break;
          case 2: ++cur.row; break;
          default: --cur.row; break;
        }
        ++hop_count;
    }
    return head + flits - 1;
}

void
Mesh::send(std::uint32_t src, std::uint32_t dst, Packet &pkt)
{
    panic_if(src >= numNodes() || dst >= numNodes(),
             "bad mesh node (%u -> %u)", src, dst);

    pkt.src = src;
    pkt.dst = dst;

    if (!_net.empty()) {
        // Sharded: defer routing to the barrier (link reservations are
        // shared across domains); just record the send in canonical
        // per-domain FIFO order.
        shardRecord(pkt);
        return;
    }

    const std::uint32_t flits = msgFlits(pkt.type);
    _messages.inc();

    std::uint32_t hop_count;
    std::size_t last;
    pkt.arrival = routeReserve(src, dst, flits, _eq.now() + _hopLatency,
                               hop_count, last);
    pkt.seq = _eq.allocSeq();
    _flitHops.inc(std::uint64_t(flits) * (hop_count + 1));

    enqueue(last != SIZE_MAX ? _links[last] : _eject[dst], &pkt);
}

void
Mesh::shardRecord(Packet &pkt)
{
    SimDomain *d = SimDomain::current();
    panic_if(!d, "mesh send() outside a domain scope (sharded)");
    _net[d->id()].outbox.push(NetDomain::Send{
        &pkt, d->queue().now(), d->id(), d->nextSendIdx()});
}

std::uint32_t
Mesh::regionOf(std::uint32_t node) const
{
    const std::uint32_t r = node / _cols;
    const std::uint32_t c = node % _cols;
    // Quadrants by the row/column midlines; a degenerate axis (a
    // single row or column) collapses its bit so every node still gets
    // a region and 1xN meshes split into halves, not quarters.
    std::uint32_t region = 0;
    if (_rows >= 2 && r >= _rows / 2)
        region |= 2;
    if (_cols >= 2 && c >= _cols / 2)
        region |= 1;
    return region;
}

void
Mesh::shardAttach(std::vector<SimDomain *> domains,
                  const ShardLayout &layout,
                  std::function<std::uint32_t(const Packet &)> shard_of)
{
    panic_if(!_net.empty(), "mesh already sharded");
    _domains = std::move(domains);
    _layout = layout;
    _shardOf = std::move(shard_of);
    _net = std::vector<NetDomain>(_domains.size());

    // Domain -> mesh node, mirrored from the component placement. The
    // layout's own nodeOfDomain() must agree (test_lookahead pins
    // this); computing from the mesh's node functions keeps the map
    // authoritative. Lookahead entries are derived from node
    // coordinates on demand (domainLookahead()) -- the all-pairs
    // matrix this used to build was O(domains^2) time and memory,
    // which stops being affordable past a few hundred tiles.
    const std::size_t doms = _domains.size();
    _domNode.resize(doms);
    for (std::size_t d = 0; d < doms; ++d) {
        if (d < layout.numCores)
            _domNode[d] = coreNode(CoreId(d));
        else if (d < layout.numCores + layout.numTiles)
            _domNode[d] = tileNode(std::uint32_t(d) - layout.numCores);
        else
            _domNode[d] = mcNode(
                McId(std::uint32_t(d) - layout.numCores - layout.numTiles));
    }
    _mcDomBase = std::uint32_t(layout.numCores + layout.numTiles);
    _numCoreDoms = layout.numCores;

    // Proxy sends: a FlushReq/MemWrite carries its ack callback to the
    // controller, and the callback -- executing in the *MC's* domain --
    // emits the FlushAck stamped with the home tile's node as source
    // (cache/l2_cache.cc sendFlushAck). So an MC domain can launch a
    // core-bound packet from any tile node, and its lookahead toward
    // core domains must lower-bound those too: keep the per-node
    // minimum over all tile sources. Tile- and MC-bound traffic from
    // MCs always departs from the MC's own node.
    _minTileLa.assign(numNodes(), kTickNever);
    for (std::uint32_t t = 0; t < layout.numTiles; ++t) {
        const std::uint32_t tn = tileNode(t);
        for (std::uint32_t n = 0; n < numNodes(); ++n)
            _minTileLa[n] = std::min(_minTileLa[n], minLatency(tn, n));
    }

    _regionOfNode.resize(numNodes());
    for (std::uint32_t n = 0; n < numNodes(); ++n)
        _regionOfNode[n] = std::uint8_t(regionOf(n));
}

void
Mesh::shardSetAssist(AssistDispatch dispatch, std::uint32_t threads)
{
    _assist = std::move(dispatch);
    _assistThreads = threads != 0 ? threads : 1;
}

void
Mesh::shardSetRouteProbe(RouteProbe probe)
{
    _probe = std::move(probe);
}

void
Mesh::shardCollect()
{
    // Compact the routed prefix, then canonically merge every domain's
    // new sends behind the still-pending ones. The key is
    // shard-count-invariant: each domain always owns its queue and
    // FIFO counter no matter how many workers drive it.
    const auto before = [](const PendingSend &a, const PendingSend &b) {
        if (a.tick != b.tick)
            return a.tick < b.tick;
        if (a.domain != b.domain)
            return a.domain < b.domain;
        return a.idx < b.idx;
    };

    if (_pendingHead != 0) {
        _pending.erase(_pending.begin(),
                       _pending.begin() + std::ptrdiff_t(_pendingHead));
        _pendingHead = 0;
    }
    _newSends.clear();
    for (auto &net : _net) {
        for (auto &s : net.outbox.items()) {
            const std::uint32_t dom = _shardOf(*s.pkt);
            _newSends.push_back(
                PendingSend{s.pkt, s.tick, s.domain, s.idx, dom});
            ++_routeStats.sends;
            if (_layout.workerOfDomain(s.domain) ==
                _layout.workerOfDomain(dom))
                ++_routeStats.sameWorkerSends;
        }
        net.outbox.clear();
    }
    if (!_newSends.empty()) {
        std::sort(_newSends.begin(), _newSends.end(), before);
        if (_pending.empty()) {
            _pending.swap(_newSends);
        } else {
            // Manual two-run merge: std::inplace_merge allocates a
            // temporary buffer per call, which would break the
            // allocation-free steady state the scaling bench pins.
            _mergeScratch.clear();
            _mergeScratch.reserve(_pending.size() + _newSends.size());
            std::merge(_pending.begin(), _pending.end(), _newSends.begin(),
                       _newSends.end(), std::back_inserter(_mergeScratch),
                       before);
            _pending.swap(_mergeScratch);
        }
    }

    // Route freed packets back to their origin pools.
    for (auto &net : _net) {
        for (Packet *p : net.freeBin.items())
            _net[p->pool].pool.release(p);
        net.freeBin.clear();
    }

    // Collect executed-delivery trace records into the holdback
    // buffer; they emit globally (tick, seq)-ordered once the frontier
    // passes them (shardEmitTrace).
    for (auto &net : _net) {
        for (auto &t : net.trace.items())
            _holdback.push_back(t);
        net.trace.clear();
    }
}

void
Mesh::routeOne(const PendingSend &s, const std::vector<Tick> &ends,
               std::uint64_t &messages, std::uint64_t &flit_hops)
{
    Packet *pkt = s.pkt;
    const std::uint32_t flits = msgFlits(pkt->type);
    ++messages;

    std::uint32_t hop_count;
    std::size_t last;
    pkt->arrival = routeReserve(pkt->src, pkt->dst, flits,
                                s.tick + _hopLatency, hop_count, last);
    flit_hops += std::uint64_t(flits) * (hop_count + 1);

    const std::uint32_t dom = s.dstDom;
    // The advertised lookahead is exactly what the scheduler granted
    // windows against, so every routed packet must respect it -- this
    // is the invariant that makes the wide windows sound.
    panic_if(pkt->arrival < s.tick + domainLookahead(s.domain, dom),
             "mesh lookahead violated: %s %u -> %u (domain %u -> %u) "
             "send at %llu delivers at %llu, below the advertised "
             "minimum %llu",
             msgName(pkt->type), pkt->src, pkt->dst, s.domain, dom,
             (unsigned long long)s.tick,
             (unsigned long long)pkt->arrival,
             (unsigned long long)domainLookahead(s.domain, dom));
    panic_if(_domNode[dom] != pkt->dst,
             "packet for domain %u delivered to node %u, but the domain "
             "lives on node %u (region ownership would break)",
             dom, pkt->dst, _domNode[dom]);
    panic_if(pkt->arrival < ends[dom],
             "causality violated: %s send %u -> %u (domain %u -> %u) at "
             "%llu delivers at %llu, inside domain %u's already-granted "
             "window (end %llu)",
             msgName(pkt->type), pkt->src, pkt->dst, s.domain, dom,
             (unsigned long long)s.tick,
             (unsigned long long)pkt->arrival, dom,
             (unsigned long long)ends[dom]);
    if (_probe)
        _probe(s.domain, dom, s.tick, pkt->arrival);

    _domains[dom]->queue().post(
        pkt->arrival, [this, pkt, dom] { shardDeliver(*pkt, dom); });
}

void
Mesh::segmentTask(RouteTask &t) const
{
    // Split the XY path into runs of links owned by one quadrant each
    // (a link belongs to its source node's quadrant). XY paths cross
    // the column midline at most once (on the X leg) and the row
    // midline at most once (on the Y leg), so at most three runs
    // exist; the delivery stage rides behind them in the destination's
    // quadrant.
    const Packet *pkt = t.s.pkt;
    t.flits = msgFlits(pkt->type);
    t.head = 0;
    t.nlinkSegs = 0;
    t.stage.store(0, std::memory_order_relaxed);
    MeshCoord cur = coordOf(pkt->src);
    const MeshCoord target = coordOf(pkt->dst);
    while (!(cur == target)) {
        const std::uint32_t node = nodeOf(cur);
        const std::uint8_t r = _regionOfNode[node];
        if (t.nlinkSegs == 0 || t.segRegion[t.nlinkSegs - 1] != r) {
            panic_if(t.nlinkSegs >= 3,
                     "XY path %u -> %u re-enters a mesh quadrant",
                     pkt->src, pkt->dst);
            t.segStart[t.nlinkSegs] = node;
            t.segHops[t.nlinkSegs] = 0;
            t.segRegion[t.nlinkSegs] = r;
            ++t.nlinkSegs;
        }
        ++t.segHops[t.nlinkSegs - 1];
        if (cur.col != target.col) {
            if (target.col > cur.col)
                ++cur.col;
            else
                --cur.col;
        } else if (target.row > cur.row) {
            ++cur.row;
        } else {
            --cur.row;
        }
    }
    t.segRegion[t.nlinkSegs] = _regionOfNode[pkt->dst];
}

void
Mesh::runStage(RouteTask &t, std::uint32_t stage, RouteSlice &sl)
{
    Packet *pkt = t.s.pkt;
    if (stage < t.nlinkSegs) {
        // Link stage: reserve this quadrant's run of the XY path,
        // advancing the head-flit tick exactly as routeReserve would,
        // then publish the head for the next quadrant's stage.
        Tick head = stage == 0 ? t.s.tick + _hopLatency : t.head;
        MeshCoord cur = coordOf(t.segStart[stage]);
        const MeshCoord target = coordOf(pkt->dst);
        for (std::uint32_t h = 0; h < t.segHops[stage]; ++h) {
            std::uint32_t dir;  // 0=E, 1=W, 2=S, 3=N
            if (cur.col != target.col)
                dir = (target.col > cur.col) ? 0 : 1;
            else
                dir = (target.row > cur.row) ? 2 : 3;
            Tick &busy = _linkBusy[std::size_t(nodeOf(cur)) * 4 + dir];
            const Tick start = head > busy ? head : busy;
            head = start + _hopLatency;
            busy = head + t.flits - 1;
            switch (dir) {
              case 0: ++cur.col; break;
              case 1: --cur.col; break;
              case 2: ++cur.row; break;
              default: --cur.row; break;
            }
        }
        sl.flitHops += std::uint64_t(t.flits) * t.segHops[stage];
        t.head = head;
        t.stage.store(stage + 1, std::memory_order_release);
        return;
    }

    // Delivery stage (destination quadrant): same-node sends serialize
    // on the ejection port; routed sends arrive with the tail flit.
    if (t.nlinkSegs == 0) {
        Tick &busy = _ejectBusy[pkt->dst];
        const Tick head = t.s.tick + _hopLatency;
        const Tick start = head > busy ? head : busy;
        busy = start + t.flits;
        pkt->arrival = start + t.flits - 1;
    } else {
        pkt->arrival = t.head + t.flits - 1;
    }
    sl.flitHops += t.flits;
    ++sl.messages;

    const std::uint32_t dom = t.s.dstDom;
    const std::vector<Tick> &ends = *_sliceEnds;
    panic_if(pkt->arrival < t.s.tick + domainLookahead(t.s.domain, dom),
             "mesh lookahead violated: %s %u -> %u (domain %u -> %u) "
             "send at %llu delivers at %llu, below the advertised "
             "minimum %llu",
             msgName(pkt->type), pkt->src, pkt->dst, t.s.domain, dom,
             (unsigned long long)t.s.tick,
             (unsigned long long)pkt->arrival,
             (unsigned long long)domainLookahead(t.s.domain, dom));
    panic_if(_domNode[dom] != pkt->dst,
             "packet for domain %u delivered to node %u, but the domain "
             "lives on node %u (region ownership would break)",
             dom, pkt->dst, _domNode[dom]);
    panic_if(pkt->arrival < ends[dom],
             "causality violated: %s send %u -> %u (domain %u -> %u) at "
             "%llu delivers at %llu, inside domain %u's already-granted "
             "window (end %llu)",
             msgName(pkt->type), pkt->src, pkt->dst, t.s.domain, dom,
             (unsigned long long)t.s.tick,
             (unsigned long long)pkt->arrival, dom,
             (unsigned long long)ends[dom]);
    if (_probe)
        _probe(t.s.domain, dom, t.s.tick, pkt->arrival);

    _domains[dom]->queue().post(
        pkt->arrival, [this, pkt, dom] { shardDeliver(*pkt, dom); });
}

void
Mesh::dispatchDeferred(bool force, const std::vector<Tick> &ends,
                       std::uint64_t &messages, std::uint64_t &flit_hops)
{
    const std::size_t n = _deferredAll.size();
    if (n == 0)
        return;

    // Slice count is capped by the threads that pull slices: the
    // cross-slice head handoff is only deadlock-free when every slice
    // has a dedicated thread (the lexicographic (send, stage) order is
    // a topological order of the handoff edges, and each thread drains
    // its sequence in exactly that order).
    const std::uint32_t groups =
        _assistThreads < 4 ? _assistThreads : 4;
    if (!_assist || groups < 2 || n < kParallelRouteMin) {
        if (force) {
            for (const PendingSend &s : _deferredAll)
                routeOne(s, ends, messages, flit_hops);
            _routeStats.routedSerial += n;
            _deferredAll.clear();
            _deferredBound = kTickNever;
        }
        return;
    }

    if (_tasksCap < n) {
        std::size_t cap = _tasksCap != 0 ? _tasksCap : 64;
        while (cap < n)
            cap *= 2;
        _tasks = std::make_unique<RouteTask[]>(cap);
        _tasksCap = cap;
    }
    for (auto &sl : _slices) {
        sl.entries.clear();
        sl.messages = 0;
        sl.flitHops = 0;
    }
    for (std::uint32_t r = 0; r < 4; ++r)
        _sliceOfRegion[r] = std::uint8_t(r % groups);
    for (std::size_t i = 0; i < n; ++i) {
        RouteTask &t = _tasks[i];
        t.s = _deferredAll[i];
        segmentTask(t);
        for (std::uint32_t k = 0; k <= t.nlinkSegs; ++k) {
            _slices[_sliceOfRegion[t.segRegion[k]]].entries.push_back(
                SliceEntry{std::uint32_t(i), k});
        }
    }
    std::uint32_t nonempty = 0;
    for (std::uint32_t g = 0; g < groups; ++g) {
        if (!_slices[g].entries.empty()) {
            if (g != nonempty)
                std::swap(_slices[g], _slices[nonempty]);
            ++nonempty;
        }
    }
    if (nonempty < 2) {
        // Everything funneled into one region group: a dispatch would
        // buy no parallelism, only a round trip. Keep deferring unless
        // the scheduler needs the queue empty.
        if (force) {
            for (const PendingSend &s : _deferredAll)
                routeOne(s, ends, messages, flit_hops);
            _routeStats.routedSerial += n;
            _deferredAll.clear();
            _deferredBound = kTickNever;
        }
        return;
    }

    _numSlices = nonempty;
    _sliceEnds = &ends;
    _assist(_numSlices);
    _sliceEnds = nullptr;
    for (std::uint32_t g = 0; g < nonempty; ++g) {
        messages += _slices[g].messages;
        flit_hops += _slices[g].flitHops;
    }
    _routeStats.routedParallel += n;
    _numSlices = 0;
    _deferredAll.clear();
    _deferredBound = kTickNever;
}

void
Mesh::routeRange(std::size_t begin, std::size_t end,
                 const std::vector<Tick> &ends)
{
    // Sequence numbers are canonical and order-sensitive: assign them
    // serially, at each send's position in the canonical route order,
    // whether the send routes now or defers.
    for (std::size_t i = begin; i < end; ++i)
        _pending[i].pkt->seq = _canonSeq++;

    std::uint64_t messages = 0;
    std::uint64_t flit_hops = 0;
    if (_assist) {
        // Accumulate across barriers: any single barrier's batch is a
        // couple of sends, far too little to parallelize, but nothing
        // forces them to route before their arrivals matter -- the
        // deferred queue keeps bounding every destination's inbound
        // window (shardInboundBounds), so grants can never pass a
        // deferred delivery. Canonical order is preserved across
        // batches because every future batch's ticks are at least the
        // route bound that admitted this one.
        for (std::size_t i = begin; i < end; ++i) {
            const PendingSend &s = _pending[i];
            _deferredAll.push_back(s);
            const Tick at = s.tick + domainLookahead(s.domain, s.dstDom);
            if (at < _deferredBound)
                _deferredBound = at;
        }
        dispatchDeferred(/*force=*/false, ends, messages, flit_hops);
    } else {
        for (std::size_t i = begin; i < end; ++i) {
            routeOne(_pending[i], ends, messages, flit_hops);
            ++_routeStats.routedSerial;
        }
    }
    _messages.inc(messages);
    _flitHops.inc(flit_hops);
}

void
Mesh::shardFlushDeferredUpTo(Tick bound, const std::vector<Tick> &ends)
{
    const std::size_t n = _deferredAll.size();
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const PendingSend &s = _deferredAll[i];
        if (s.tick + domainLookahead(s.domain, s.dstDom) <= bound)
            k = i + 1;
    }
    if (k == 0)
        return;
    std::uint64_t messages = 0;
    std::uint64_t flit_hops = 0;
    for (std::size_t i = 0; i < k; ++i)
        routeOne(_deferredAll[i], ends, messages, flit_hops);
    _routeStats.routedSerial += k;
    _deferredAll.erase(_deferredAll.begin(),
                       _deferredAll.begin() + std::ptrdiff_t(k));
    _deferredBound = kTickNever;
    for (const PendingSend &s : _deferredAll) {
        const Tick at = s.tick + domainLookahead(s.domain, s.dstDom);
        if (at < _deferredBound)
            _deferredBound = at;
    }
    _messages.inc(messages);
    _flitHops.inc(flit_hops);
}

void
Mesh::shardFlushDeferred(const std::vector<Tick> &ends)
{
    std::uint64_t messages = 0;
    std::uint64_t flit_hops = 0;
    dispatchDeferred(/*force=*/true, ends, messages, flit_hops);
    _messages.inc(messages);
    _flitHops.inc(flit_hops);
}

void
Mesh::shardRunSlice(std::uint32_t slice)
{
    RouteSlice &sl = _slices[slice];
    for (const SliceEntry &e : sl.entries) {
        RouteTask &t = _tasks[e.task];
        if (e.stage != 0) {
            // Wait for the upstream quadrant to publish the head-flit
            // tick. Finite by construction: the upstream stage sits
            // earlier in the (send, stage) topological order, so the
            // thread draining its slice always reaches it.
            std::uint32_t spins = 0;
            while (t.stage.load(std::memory_order_acquire) != e.stage) {
                if (++spins >= 256) {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
        }
        runStage(t, e.stage, sl);
    }
}

void
Mesh::shardRouteUpTo(Tick bound, const std::vector<Tick> &ends)
{
    std::size_t e = _pendingHead;
    while (e < _pending.size() && _pending[e].tick < bound)
        ++e;
    if (e != _pendingHead) {
        routeRange(_pendingHead, e, ends);
        _pendingHead = e;
    }
}

void
Mesh::shardRouteNew(const std::vector<Tick> &ends)
{
    // Control-plane sends route immediately after the ops that emitted
    // them -- the sequential schedule's flush position -- and always
    // serially: they are rare and all carry the same barrier tick.
    _newSends.clear();
    for (auto &net : _net) {
        for (auto &s : net.outbox.items()) {
            const std::uint32_t dom = _shardOf(*s.pkt);
            _newSends.push_back(
                PendingSend{s.pkt, s.tick, s.domain, s.idx, dom});
            ++_routeStats.sends;
            if (_layout.workerOfDomain(s.domain) ==
                _layout.workerOfDomain(dom))
                ++_routeStats.sameWorkerSends;
        }
        net.outbox.clear();
    }
    if (_newSends.empty())
        return;
    std::sort(_newSends.begin(), _newSends.end(),
              [](const PendingSend &a, const PendingSend &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.domain != b.domain)
                      return a.domain < b.domain;
                  return a.idx < b.idx;
              });
    std::uint64_t messages = 0;
    std::uint64_t flit_hops = 0;
    // Control sends share link, ejection, and delivery-queue state
    // with the deferred data sends, all of which precede them
    // canonically (deferred ticks never exceed the barrier tick), so
    // the accumulation queue must route first.
    dispatchDeferred(/*force=*/true, ends, messages, flit_hops);
    for (auto &s : _newSends) {
        s.pkt->seq = _canonSeq++;
        routeOne(s, ends, messages, flit_hops);
    }
    _routeStats.routedSerial += _newSends.size();
    _messages.inc(messages);
    _flitHops.inc(flit_hops);
    _newSends.clear();
}

void
Mesh::shardEmitTrace(Tick bound)
{
    if (_holdback.empty())
        return;
    std::sort(_holdback.begin(), _holdback.end(),
              [](const NetDomain::TraceRec &a, const NetDomain::TraceRec &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  return a.seq < b.seq;
              });
    std::size_t e = 0;
    while (e < _holdback.size() && _holdback[e].tick < bound)
        ++e;
    if (e == 0)
        return;
    if (_tracer) {
        for (std::size_t i = 0; i < e; ++i)
            _tracer->onDeliver(_holdback[i].tick, _holdback[i].node,
                               _holdback[i].type);
    }
    _holdback.erase(_holdback.begin(), _holdback.begin() + std::ptrdiff_t(e));
}

void
Mesh::shardEmitTraceAll()
{
    shardEmitTrace(kTickNever);
    if (!_holdback.empty()) {
        // kTickNever records can't exist (no event executes at the
        // sentinel), so everything must have drained.
        _holdback.clear();
    }
}

void
Mesh::shardInboundBounds(std::vector<Tick> &min_inbound,
                         Tick &earliest) const
{
    std::fill(min_inbound.begin(), min_inbound.end(), kTickNever);
    earliest = kTickNever;
    auto fold = [&](const PendingSend &s) {
        const Tick at = s.tick + domainLookahead(s.domain, s.dstDom);
        if (at < min_inbound[s.dstDom])
            min_inbound[s.dstDom] = at;
        if (at < earliest)
            earliest = at;
    };
    for (std::size_t i = _pendingHead; i < _pending.size(); ++i)
        fold(_pending[i]);
    // Deferred sends left the pending list but are not yet routed or
    // posted, so they must keep bounding their destinations' windows
    // exactly like unrouted pending sends (this is what makes
    // cross-barrier deferral sound).
    for (const PendingSend &s : _deferredAll)
        fold(s);
}

void
Mesh::shardDeliver(Packet &pkt, std::uint32_t domain)
{
    NetDomain &net = _net[domain];
    if (_tracer) {
        net.trace.push(NetDomain::TraceRec{pkt.arrival, pkt.seq, pkt.dst,
                                           pkt.type});
    }
    if (pkt.receiver) {
        pkt.receiver->meshDeliver(pkt);
    } else if (pkt.cb) {
        MeshCallback cb = std::move(pkt.cb);
        cb();
    }
    pkt.reset();
    net.freeBin.push(&pkt);
}

void
Mesh::enqueue(MeshLink &lq, Packet *pkt)
{
    if (_maxQueueDepth != 0 && lq._qCount >= _maxQueueDepth) {
        // Backpressure: the delivery queue is full; park the packet.
        // It re-enters (with a delayed arrival) as the queue drains.
        _linkStalls.inc();
        pkt->next = nullptr;
        if (lq._ovTail)
            lq._ovTail->next = pkt;
        else
            lq._ovHead = pkt;
        lq._ovTail = pkt;
        ++lq._ovCount;
        return;
    }
    admit(lq, pkt);
}

void
Mesh::admit(MeshLink &lq, Packet *pkt)
{
    // Insert in (arrival, seq) order. Both link and ejection queues
    // are monotone (links through the per-link reservation, ejection
    // through the per-node port reservation), so this is an O(1) tail
    // append in practice; the ordered walk stays as a safety net for
    // re-admitted stalled packets.
    if (!lq._qTail || !deliversBefore(pkt, lq._qTail)) {
        pkt->next = nullptr;
        if (lq._qTail)
            lq._qTail->next = pkt;
        else
            lq._qHead = pkt;
        lq._qTail = pkt;
    } else {
        Packet *prev = nullptr;
        Packet *cur = lq._qHead;
        while (cur && !deliversBefore(pkt, cur)) {
            prev = cur;
            cur = cur->next;
        }
        pkt->next = cur;
        if (prev)
            prev->next = pkt;
        else
            lq._qHead = pkt;
        if (!cur)
            lq._qTail = pkt;
    }
    ++lq._qCount;

    if (lq._qHead == pkt) {
        // New earliest delivery: re-arm the drain event in the packet's
        // stamped FIFO slot.
        _eq.deschedule(lq._drain);
        _eq.scheduleAt(lq._drain, pkt->arrival, pkt->seq);
    }
}

void
Mesh::drainLink(MeshLink &lq)
{
    Packet *pkt = lq._qHead;
    panic_if(!pkt, "link drain with an empty delivery queue");
    panic_if(pkt->arrival != _eq.now(), "link drain off schedule");

    lq._qHead = pkt->next;
    if (!lq._qHead)
        lq._qTail = nullptr;
    --lq._qCount;
    pkt->next = nullptr;

    // Re-arm for the next queued packet in its own stamped slot.
    if (lq._qHead)
        _eq.scheduleAt(lq._drain, lq._qHead->arrival, lq._qHead->seq);

    // Bounded mode: a slot freed; re-admit stalled packets behind the
    // tail, charging the added delay.
    while (_maxQueueDepth != 0 && lq._ovHead &&
           lq._qCount < _maxQueueDepth) {
        Packet *s = lq._ovHead;
        lq._ovHead = s->next;
        if (!lq._ovHead)
            lq._ovTail = nullptr;
        --lq._ovCount;
        s->next = nullptr;

        Tick earliest = _eq.now() + _hopLatency;  // re-traverses output
        if (lq._qTail && lq._qTail->arrival + 1 > earliest)
            earliest = lq._qTail->arrival + 1;    // stay in FIFO order
        if (s->arrival < earliest) {
            _linkStallCycles.inc(earliest - s->arrival);
            s->arrival = earliest;
        }
        s->seq = _eq.allocSeq();
        admit(lq, s);
    }

    if (_tracer)
        _tracer->onDeliver(_eq.now(), pkt->dst, pkt->type);

    // Typed completion: receiver + opcode. cb-only packets run their
    // inline continuation instead.
    if (pkt->receiver) {
        pkt->receiver->meshDeliver(*pkt);
    } else if (pkt->cb) {
        MeshCallback cb = std::move(pkt->cb);
        cb();
    }
    pkt->reset();
    _pool.release(pkt);
}

} // namespace atomsim
