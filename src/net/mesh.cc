#include "net/mesh.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

/** True when @p a must deliver before @p b. */
inline bool
deliversBefore(const Packet *a, const Packet *b)
{
    if (a->arrival != b->arrival)
        return a->arrival < b->arrival;
    return a->seq < b->seq;
}

} // namespace

void
MeshLink::DrainEvent::process()
{
    mesh->drainLink(*link);
}

Mesh::Mesh(EventQueue &eq, const SystemConfig &cfg, StatSet &stats)
    : _eq(eq),
      _rows(cfg.meshRows),
      _cols(cfg.meshCols()),
      _hopLatency(cfg.hopLatency),
      _maxQueueDepth(cfg.linkQueueDepth),
      _messages(stats.counter("mesh", "messages")),
      _flitHops(stats.counter("mesh", "flit_hops")),
      _linkStalls(stats.counter("mesh", "link_stalls")),
      _linkStallCycles(stats.counter("mesh", "link_stall_cycles"))
{
    // 4 directed links per node: 0=E, 1=W, 2=S, 3=N. Plus one ejection
    // queue per node for same-node traffic (no link traversal).
    const std::size_t n = numNodes();
    _links = std::make_unique<MeshLink[]>(n * 4);
    _eject = std::make_unique<MeshLink[]>(n);
    _linkBusy.assign(n * 4, 0);
    _ejectBusy.assign(n, 0);
    for (std::size_t i = 0; i < n * 4; ++i) {
        _links[i]._drain.mesh = this;
        _links[i]._drain.link = &_links[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        _eject[i]._drain.mesh = this;
        _eject[i]._drain.link = &_eject[i];
    }
}

Mesh::~Mesh() = default;

MeshCoord
Mesh::coordOf(std::uint32_t node) const
{
    return MeshCoord{node / _cols, node % _cols};
}

std::uint32_t
Mesh::nodeOf(MeshCoord c) const
{
    return c.row * _cols + c.col;
}

std::uint32_t
Mesh::mcNode(McId mc) const
{
    // Memory controllers sit on the four die corners (Section V).
    switch (mc % 4) {
      case 0:
        return nodeOf({0, 0});
      case 1:
        return nodeOf({0, _cols - 1});
      case 2:
        return nodeOf({_rows - 1, 0});
      default:
        return nodeOf({_rows - 1, _cols - 1});
    }
}

std::size_t
Mesh::linkIndex(std::uint32_t from, std::uint32_t to) const
{
    const MeshCoord a = coordOf(from);
    const MeshCoord b = coordOf(to);
    std::uint32_t dir;
    if (b.row == a.row)
        dir = (b.col == a.col + 1) ? 0 : 1;
    else
        dir = (b.row == a.row + 1) ? 2 : 3;
    return std::size_t(from) * 4 + dir;
}

std::uint32_t
Mesh::hops(std::uint32_t src, std::uint32_t dst) const
{
    return meshHops(coordOf(src), coordOf(dst));
}

Packet &
Mesh::make(MsgType type)
{
    Packet *p;
    if (!_net.empty()) {
        SimDomain *d = SimDomain::current();
        panic_if(!d, "mesh make() outside a domain scope (sharded)");
        p = _net[d->id()].pool.acquire();
        p->pool = std::uint16_t(d->id());
    } else {
        p = _pool.acquire();
    }
    p->reset();
    p->type = type;
    return *p;
}

std::size_t
Mesh::packetPoolAllocated() const
{
    std::size_t n = _pool.allocated();
    for (const auto &net : _net)
        n += net.pool.allocated();
    return n;
}

std::size_t
Mesh::packetPoolFree() const
{
    std::size_t n = _pool.idle();
    for (const auto &net : _net)
        n += net.pool.idle();
    return n;
}

void
Mesh::send(std::uint32_t src, std::uint32_t dst, MsgType type,
           MeshCallback cb)
{
    Packet &p = make(type);
    p.cb = std::move(cb);
    send(src, dst, p);
}

Tick
Mesh::routeReserve(std::uint32_t src, std::uint32_t dst,
                   std::uint32_t flits, Tick head,
                   std::uint32_t &hop_count, std::size_t &last_link)
{
    // XY routing: move along the row (X) first, then the column (Y).
    // The loop tracks coordinates incrementally and reserves through
    // the compact busy array: one Tick touched per hop.
    MeshCoord cur = coordOf(src);
    const MeshCoord target = coordOf(dst);

    hop_count = 0;
    last_link = SIZE_MAX;
    if (cur == target) {
        // Same-node message: serialize on the node's ejection port
        // exactly like a link, so point-to-point FIFO holds between
        // messages of different sizes (the split-phase coherence
        // protocol relies on a PutM never being overtaken by a later
        // 1-flit request on the same src->dst pair).
        Tick &busy = _ejectBusy[dst];
        const Tick start = head > busy ? head : busy;
        busy = start + flits;
        return start + flits - 1;
    }
    while (!(cur == target)) {
        std::uint32_t dir;  // 0=E, 1=W, 2=S, 3=N
        if (cur.col != target.col) {
            dir = (target.col > cur.col) ? 0 : 1;
        } else {
            dir = (target.row > cur.row) ? 2 : 3;
        }
        last_link = std::size_t(nodeOf(cur)) * 4 + dir;
        // Cut-through reservation: the head flit waits for the link,
        // then the body's flits occupy it behind the head.
        Tick &busy = _linkBusy[last_link];
        const Tick start = head > busy ? head : busy;
        head = start + _hopLatency;
        busy = head + flits - 1;
        switch (dir) {
          case 0: ++cur.col; break;
          case 1: --cur.col; break;
          case 2: ++cur.row; break;
          default: --cur.row; break;
        }
        ++hop_count;
    }
    return head + flits - 1;
}

void
Mesh::send(std::uint32_t src, std::uint32_t dst, Packet &pkt)
{
    panic_if(src >= numNodes() || dst >= numNodes(),
             "bad mesh node (%u -> %u)", src, dst);

    pkt.src = src;
    pkt.dst = dst;

    if (!_net.empty()) {
        // Sharded: defer routing to the barrier (link reservations are
        // shared across domains); just record the send in canonical
        // per-domain FIFO order.
        shardRecord(pkt);
        return;
    }

    const std::uint32_t flits = msgFlits(pkt.type);
    _messages.inc();

    std::uint32_t hop_count;
    std::size_t last;
    pkt.arrival = routeReserve(src, dst, flits, _eq.now() + _hopLatency,
                               hop_count, last);
    pkt.seq = _eq.allocSeq();
    _flitHops.inc(std::uint64_t(flits) * (hop_count + 1));

    enqueue(last != SIZE_MAX ? _links[last] : _eject[dst], &pkt);
}

void
Mesh::shardRecord(Packet &pkt)
{
    SimDomain *d = SimDomain::current();
    panic_if(!d, "mesh send() outside a domain scope (sharded)");
    _net[d->id()].outbox.push(NetDomain::Send{
        &pkt, d->queue().now(), d->id(), d->nextSendIdx()});
}

void
Mesh::shardAttach(std::vector<SimDomain *> domains,
                  std::function<std::uint32_t(const Packet &)> shard_of)
{
    panic_if(!_net.empty(), "mesh already sharded");
    _domains = std::move(domains);
    _shardOf = std::move(shard_of);
    _net = std::vector<NetDomain>(_domains.size());
}

void
Mesh::shardFlush()
{
    // 1. Canonical merge of every domain's sends. The key is
    //    shard-count-invariant: each domain always owns its queue and
    //    FIFO counter no matter how many workers drive it.
    _merge.clear();
    for (auto &net : _net) {
        for (auto &s : net.outbox.items())
            _merge.push_back(s);
        net.outbox.clear();
    }
    std::sort(_merge.begin(), _merge.end(),
              [](const NetDomain::Send &a, const NetDomain::Send &b) {
                  if (a.tick != b.tick)
                      return a.tick < b.tick;
                  if (a.domain != b.domain)
                      return a.domain < b.domain;
                  return a.idx < b.idx;
              });

    for (auto &s : _merge) {
        Packet *pkt = s.pkt;
        const std::uint32_t flits = msgFlits(pkt->type);
        _messages.inc();

        std::uint32_t hop_count;
        std::size_t last;
        pkt->arrival = routeReserve(pkt->src, pkt->dst, flits,
                                    s.tick + _hopLatency, hop_count, last);
        pkt->seq = _canonSeq++;
        _flitHops.inc(std::uint64_t(flits) * (hop_count + 1));

        const std::uint32_t dom = _shardOf(*pkt);
        _domains[dom]->queue().post(
            pkt->arrival,
            [this, pkt, dom] { shardDeliver(*pkt, dom); });
    }

    // 2. Route freed packets back to their origin pools.
    for (auto &net : _net) {
        for (Packet *p : net.freeBin.items())
            _net[p->pool].pool.release(p);
        net.freeBin.clear();
    }

    // 3. Merge the per-domain trace buffers into the tracer, ordered
    //    by (tick, canonical delivery sequence).
    if (_tracer) {
        _traceMerge.clear();
        for (auto &net : _net) {
            for (auto &t : net.trace.items())
                _traceMerge.push_back(t);
            net.trace.clear();
        }
        std::sort(_traceMerge.begin(), _traceMerge.end(),
                  [](const NetDomain::TraceRec &a,
                     const NetDomain::TraceRec &b) {
                      if (a.tick != b.tick)
                          return a.tick < b.tick;
                      return a.seq < b.seq;
                  });
        for (const auto &t : _traceMerge)
            _tracer->onDeliver(t.tick, t.node, t.type);
    }
}

void
Mesh::shardDeliver(Packet &pkt, std::uint32_t domain)
{
    NetDomain &net = _net[domain];
    if (_tracer) {
        net.trace.push(NetDomain::TraceRec{pkt.arrival, pkt.seq, pkt.dst,
                                           pkt.type});
    }
    if (pkt.receiver) {
        pkt.receiver->meshDeliver(pkt);
    } else if (pkt.cb) {
        MeshCallback cb = std::move(pkt.cb);
        cb();
    }
    pkt.reset();
    net.freeBin.push(&pkt);
}

void
Mesh::enqueue(MeshLink &lq, Packet *pkt)
{
    if (_maxQueueDepth != 0 && lq._qCount >= _maxQueueDepth) {
        // Backpressure: the delivery queue is full; park the packet.
        // It re-enters (with a delayed arrival) as the queue drains.
        _linkStalls.inc();
        pkt->next = nullptr;
        if (lq._ovTail)
            lq._ovTail->next = pkt;
        else
            lq._ovHead = pkt;
        lq._ovTail = pkt;
        ++lq._ovCount;
        return;
    }
    admit(lq, pkt);
}

void
Mesh::admit(MeshLink &lq, Packet *pkt)
{
    // Insert in (arrival, seq) order. Both link and ejection queues
    // are monotone (links through the per-link reservation, ejection
    // through the per-node port reservation), so this is an O(1) tail
    // append in practice; the ordered walk stays as a safety net for
    // re-admitted stalled packets.
    if (!lq._qTail || !deliversBefore(pkt, lq._qTail)) {
        pkt->next = nullptr;
        if (lq._qTail)
            lq._qTail->next = pkt;
        else
            lq._qHead = pkt;
        lq._qTail = pkt;
    } else {
        Packet *prev = nullptr;
        Packet *cur = lq._qHead;
        while (cur && !deliversBefore(pkt, cur)) {
            prev = cur;
            cur = cur->next;
        }
        pkt->next = cur;
        if (prev)
            prev->next = pkt;
        else
            lq._qHead = pkt;
        if (!cur)
            lq._qTail = pkt;
    }
    ++lq._qCount;

    if (lq._qHead == pkt) {
        // New earliest delivery: re-arm the drain event in the packet's
        // stamped FIFO slot.
        _eq.deschedule(lq._drain);
        _eq.scheduleAt(lq._drain, pkt->arrival, pkt->seq);
    }
}

void
Mesh::drainLink(MeshLink &lq)
{
    Packet *pkt = lq._qHead;
    panic_if(!pkt, "link drain with an empty delivery queue");
    panic_if(pkt->arrival != _eq.now(), "link drain off schedule");

    lq._qHead = pkt->next;
    if (!lq._qHead)
        lq._qTail = nullptr;
    --lq._qCount;
    pkt->next = nullptr;

    // Re-arm for the next queued packet in its own stamped slot.
    if (lq._qHead)
        _eq.scheduleAt(lq._drain, lq._qHead->arrival, lq._qHead->seq);

    // Bounded mode: a slot freed; re-admit stalled packets behind the
    // tail, charging the added delay.
    while (_maxQueueDepth != 0 && lq._ovHead &&
           lq._qCount < _maxQueueDepth) {
        Packet *s = lq._ovHead;
        lq._ovHead = s->next;
        if (!lq._ovHead)
            lq._ovTail = nullptr;
        --lq._ovCount;
        s->next = nullptr;

        Tick earliest = _eq.now() + _hopLatency;  // re-traverses output
        if (lq._qTail && lq._qTail->arrival + 1 > earliest)
            earliest = lq._qTail->arrival + 1;    // stay in FIFO order
        if (s->arrival < earliest) {
            _linkStallCycles.inc(earliest - s->arrival);
            s->arrival = earliest;
        }
        s->seq = _eq.allocSeq();
        admit(lq, s);
    }

    if (_tracer)
        _tracer->onDeliver(_eq.now(), pkt->dst, pkt->type);

    // Typed completion: receiver + opcode. cb-only packets run their
    // inline continuation instead.
    if (pkt->receiver) {
        pkt->receiver->meshDeliver(*pkt);
    } else if (pkt->cb) {
        MeshCallback cb = std::move(pkt->cb);
        cb();
    }
    pkt->reset();
    _pool.release(pkt);
}

} // namespace atomsim
