/**
 * @file
 * Garnet-lite 2D mesh on-chip network.
 *
 * Node layout reproduces the paper's system: one node per core/L2-tile
 * (4 rows as in Table I), with the four memory controllers attached to
 * the corner nodes. Messages route XY (column first along the row, then
 * down the column); per-link reservations model serialization and
 * contention; message delivery is a scheduled callback.
 */

#ifndef ATOMSIM_NET_MESH_HH
#define ATOMSIM_NET_MESH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/packet.hh"
#include "net/router.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/**
 * The on-chip interconnect.
 *
 * Node ids 0..numTiles-1 are core/L2 tiles (row-major). Memory
 * controllers are reached through their attachment corner node; use
 * mcNode() to get the node id for an MC.
 */
class Mesh
{
  public:
    Mesh(EventQueue &eq, const SystemConfig &cfg, StatSet &stats);

    /** Number of mesh nodes (tiles). */
    std::uint32_t numNodes() const { return _rows * _cols; }

    /** Node id for a core (cores are co-located with L2 tiles). */
    std::uint32_t coreNode(CoreId core) const { return core % numNodes(); }

    /** Node id for an L2 tile. */
    std::uint32_t tileNode(std::uint32_t tile) const {
        return tile % numNodes();
    }

    /** Corner node a memory controller attaches to. */
    std::uint32_t mcNode(McId mc) const;

    /**
     * Send a message of type @p type from @p src to @p dst node;
     * @p deliver runs when the tail flit arrives.
     *
     * Same-node messages still pay one hop (router traversal).
     */
    void send(std::uint32_t src, std::uint32_t dst, MsgType type,
              std::function<void()> deliver);

    /** Total flit-hops carried (utilization stat). */
    std::uint64_t flitHops() const { return _flitHops.value(); }

    /** Hop count of the XY route between two nodes. */
    std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const;

  private:
    MeshCoord coordOf(std::uint32_t node) const;
    std::uint32_t nodeOf(MeshCoord c) const;

    /** Link index for the hop from @p from toward @p to (adjacent). */
    std::size_t linkIndex(std::uint32_t from, std::uint32_t to) const;

    EventQueue &_eq;
    std::uint32_t _rows;
    std::uint32_t _cols;
    Cycles _hopLatency;
    std::vector<MeshLink> _links;  //!< 4 directed links per node
    Counter &_messages;
    Counter &_flitHops;
};

} // namespace atomsim

#endif // ATOMSIM_NET_MESH_HH
