/**
 * @file
 * Garnet-lite 2D mesh on-chip network.
 *
 * Node layout reproduces the paper's system: one node per core/L2-tile
 * (4 rows as in Table I), with the four memory controllers attached to
 * the corner nodes. Messages route XY (column first along the row, then
 * down the column); per-link reservations model serialization and
 * contention.
 *
 * Delivery is allocation-free: packets are pool-owned intrusive nodes
 * (mem/packet.hh) chained into a per-link delivery queue -- the queue
 * of the *last* link a route traverses, or the destination node's
 * ejection queue for same-node messages (which serializes on a
 * per-node port reservation, so same-pair messages deliver in send
 * order regardless of size -- a protocol invariant the split-phase
 * coherence paths rely on). Each queue owns one member
 * drain event that walks its packets at link rate. Every packet is
 * stamped with an EventQueue FIFO slot at send time and the drain event
 * is scheduled into exactly that slot (EventQueue::scheduleAt), so
 * deliveries execute in the same global order a per-message scheduled
 * closure would have -- refactoring the NoC never perturbs simulated
 * timing (the golden-trace test pins this down).
 *
 * Backpressure: with cfg.linkQueueDepth > 0, a link whose delivery
 * queue is full parks new packets in a stall list and re-admits them as
 * the queue drains, delaying their arrival; the mesh.link_stalls /
 * mesh.link_stall_cycles stats make link-level backpressure observable.
 */

#ifndef ATOMSIM_NET_MESH_HH
#define ATOMSIM_NET_MESH_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include <functional>

#include "mem/packet.hh"
#include "net/router.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/**
 * The on-chip interconnect.
 *
 * Node ids 0..numTiles-1 are core/L2 tiles (row-major). Memory
 * controllers are reached through their attachment corner node; use
 * mcNode() to get the node id for an MC.
 */
class Mesh
{
  public:
    /** Observer of packet deliveries (golden-trace capture). */
    class Tracer
    {
      public:
        virtual void onDeliver(Tick tick, std::uint32_t node,
                               MsgType type) = 0;

      protected:
        ~Tracer() = default;
    };

    Mesh(EventQueue &eq, const SystemConfig &cfg, StatSet &stats);
    ~Mesh();

    Mesh(const Mesh &) = delete;
    Mesh &operator=(const Mesh &) = delete;

    /** Number of mesh nodes (tiles). */
    std::uint32_t numNodes() const { return _rows * _cols; }

    /** Node id for a core (cores are co-located with L2 tiles). */
    std::uint32_t coreNode(CoreId core) const { return core % numNodes(); }

    /** Node id for an L2 tile. */
    std::uint32_t tileNode(std::uint32_t tile) const {
        return tile % numNodes();
    }

    /** Corner node a memory controller attaches to. */
    std::uint32_t mcNode(McId mc) const;

    // --- sending ------------------------------------------------------

    /**
     * Draw a packet from the pool with @p type set, the completion and
     * scalar payload fields scrubbed, and the 64-byte data line left
     * as recycled garbage -- data-bearing senders must assign
     * pkt.data. Fill in receiver/payload, then hand it to send(). The
     * mesh owns the packet again once delivered.
     */
    Packet &make(MsgType type);

    /**
     * Send @p pkt (obtained from make()) from @p src to @p dst node.
     * The receiver's meshDeliver() -- or the packet's cb when no
     * receiver is set -- runs when the tail flit arrives.
     *
     * Same-node messages still pay one hop (router traversal).
     */
    void send(std::uint32_t src, std::uint32_t dst, Packet &pkt);

    /**
     * Convenience: send a message whose only action is an inline
     * callback (control messages, acks carrying a continuation).
     */
    void send(std::uint32_t src, std::uint32_t dst, MsgType type,
              MeshCallback cb);

    // --- introspection ------------------------------------------------

    /** Total flit-hops carried (utilization stat). */
    std::uint64_t flitHops() const { return _flitHops.value(); }

    /** Hop count of the XY route between two nodes. */
    std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const;

    /** Packets parked by bounded-depth backpressure so far. */
    std::uint64_t linkStalls() const { return _linkStalls.value(); }

    /** Directed link for the hop @p from -> @p to (must be adjacent). */
    const MeshLink &linkBetween(std::uint32_t from,
                                std::uint32_t to) const
    {
        return _links[linkIndex(from, to)];
    }

    /** A node's ejection queue (same-node deliveries). */
    const MeshLink &ejectionOf(std::uint32_t node) const
    {
        return _eject[node];
    }

    /** Packet nodes ever allocated (pool high-water mark). */
    std::size_t packetPoolAllocated() const;

    /** Packet nodes currently idle on the free list. */
    std::size_t packetPoolFree() const;

    /** Install (or clear) the delivery tracer. */
    void setTracer(Tracer *tracer) { _tracer = tracer; }

    // --- sharded mode -------------------------------------------------

    /** Cumulative sharded merge statistics (leader-owned; plain
     * counters so they never enter the golden-pinned StatSet dumps --
     * they depend on worker count and placement). */
    struct ShardRouteStats
    {
        std::uint64_t sends = 0;           //!< mesh sends collected
        std::uint64_t sameWorkerSends = 0; //!< src/dst on one worker
        std::uint64_t routedParallel = 0;  //!< routed in region slices
        std::uint64_t routedSerial = 0;    //!< routed by the leader
    };

    /**
     * Runs @p nslices route slices across the barrier workers and
     * blocks until all complete (each slice executes shardRunSlice()
     * exactly once). Installed by the sharded runner; when absent,
     * everything routes serially. Every participating thread (leader
     * included) must pull slices until exhausted: segmented routes
     * hand the head-flit tick across slices, so an untaken slice
     * would stall its downstream waiters.
     */
    using AssistDispatch = std::function<void(std::uint32_t nslices)>;

    /** Test hook observing every routed packet (src domain, dst
     * domain, send tick, arrival tick). Runs inside route slices, so
     * only install it on single-worker runs. */
    using RouteProbe = std::function<void(std::uint32_t, std::uint32_t,
                                          Tick, Tick)>;

    /**
     * Switch the mesh into sharded (deferred-send) mode. Each domain
     * gets its own packet pool and mailboxes; sends record into the
     * *executing* domain's outbox (SimDomain::current()) instead of
     * touching link state, and the leader processes them at window
     * barriers through shardCollect() / shardRouteUpTo(). Also builds
     * the domain->node map backing domainLookahead() and the quadrant
     * partition used for region-parallel routing.
     *
     * @param domains  all simulation domains, indexed by domain id
     * @param layout   the run's domain/worker layout (placement stats,
     *                 domain -> mesh node mapping)
     * @param shard_of maps a routed packet to the domain that must
     *                 execute its delivery (the receiver's domain)
     */
    void shardAttach(std::vector<SimDomain *> domains,
                     const ShardLayout &layout,
                     std::function<std::uint32_t(const Packet &)> shard_of);

    /** Install (or clear, with nullptr) the worker assist hook.
     * @p threads is the number of threads that pull slices during a
     * dispatch (leader + parked workers): slice counts never exceed
     * it, which is what makes the cross-slice head handoff
     * deadlock-free (every slice gets a dedicated thread). */
    void shardSetAssist(AssistDispatch dispatch,
                        std::uint32_t threads = 1);

    /** Install (or clear) the route probe (single-worker runs only). */
    void shardSetRouteProbe(RouteProbe probe);

    /**
     * Leader barrier phase 1: drain every domain's outbox into the
     * canonical pending-send list (sorted by (send tick, domain,
     * per-domain FIFO index) -- all shard-count-invariant), route
     * freed packets back to their origin pools, and move the
     * per-domain trace buffers into the (tick, seq)-ordered holdback
     * buffer for shardEmitTrace().
     */
    void shardCollect();

    /**
     * Leader barrier phase 2: take every pending send with tick <
     * @p bound into the canonical route order. With the assist hook
     * installed the sends accumulate in the deferred queue (routed
     * later, in parallel per mesh quadrant, by dispatchDeferred);
     * otherwise each is routed and reserved against the shared link
     * state immediately, and its delivery posted into the receiving
     * domain's queue at the stamped arrival. @p ends (per-domain
     * granted window ends) backs the hard causality check: no
     * delivery may land inside a window a domain has already been
     * granted.
     *
     * The caller must keep @p bound at or below both the barrier's
     * known frontier (min granted end) and the earliest tick a
     * control-plane send could still materialize at: link reservations
     * are order-sensitive, and the sequential schedule routes a
     * control send before any data send of a strictly later tick.
     */
    void shardRouteUpTo(Tick bound, const std::vector<Tick> &ends);

    /**
     * Route control-plane sends: collect whatever the just-executed
     * control ops put in the outboxes and route all of it serially in
     * canonical order (the sequential schedule's "flush after control
     * ops" position).
     */
    void shardRouteNew(const std::vector<Tick> &ends);

    /**
     * Route every quadrant-deferred send (parallel when the queues
     * carry enough work, serially otherwise). The scheduler calls this
     * at control-plane barriers -- where the uniform ctrl-domain grant
     * needs every sub-barrier-tick delivery posted -- and whenever the
     * known frontier stagnates, so a deferred packet can never stall
     * its destination's inbound bound indefinitely.
     */
    void shardFlushDeferred(const std::vector<Tick> &ends);

    /**
     * Route (serially) the canonical prefix of the deferred queue
     * holding every send whose arrival bound has fallen to or behind
     * @p bound -- on a stalled frontier those are exactly the sends
     * pinning some domain's window. The tail keeps accumulating
     * toward a parallel dispatch.
     */
    void shardFlushDeferredUpTo(Tick bound, const std::vector<Tick> &ends);

    /** True while the accumulation queue still holds deferred sends. */
    bool shardHasDeferred() const { return !_deferredAll.empty(); }

    /** Earliest possible arrival over the deferred sends (kTickNever
     * when none are queued): the scheduler flushes on frontier
     * stagnation only when this bound is what pins the frontier. */
    Tick shardDeferredBound() const { return _deferredBound; }

    /** Emit held-back trace records with tick < @p bound, globally
     * ordered by (tick, canonical delivery seq). */
    void shardEmitTrace(Tick bound);

    /** Emit every held-back trace record (run end). */
    void shardEmitTraceAll();

    /**
     * Earliest-possible-inbound bound per domain from the *unrouted*
     * pending sends: min over pending of send tick + lookahead.
     * @p min_inbound (size = domain count) is filled with kTickNever
     * where no pending send targets the domain; @p earliest gets the
     * global minimum (kTickNever when no sends are pending).
     */
    void shardInboundBounds(std::vector<Tick> &min_inbound,
                            Tick &earliest) const;

    /** Minimum send-to-delivery latency between two mesh nodes:
     * hopLatency x (1 + XY hop count). */
    Tick
    minLatency(std::uint32_t src, std::uint32_t dst) const
    {
        return Tick(_hopLatency) * (1 + hops(src, dst));
    }

    /**
     * Lookahead entry: minimum send-to-delivery latency from domain
     * @p s to domain @p d (minLatency of their mesh nodes). Computed
     * from node coordinates on demand -- the all-pairs matrix this
     * replaces was O(domains^2) memory (34 MB at 1024 tiles). MC
     * source rows toward core domains additionally lower-bound over
     * every tile node (proxy sends, see shardAttach()).
     */
    Tick
    domainLookahead(std::uint32_t s, std::uint32_t d) const
    {
        Tick la = minLatency(_domNode[s], _domNode[d]);
        if (s >= _mcDomBase && d < _numCoreDoms)
            la = std::min(la, _minTileLa[_domNode[d]]);
        return la;
    }

    /** Mesh node hosting domain @p d (sharded mode). */
    std::uint32_t domainNode(std::uint32_t d) const { return _domNode[d]; }

    /** Mesh geometry (for the scheduler's distance-transform pass). */
    std::uint32_t meshRows() const { return _rows; }
    std::uint32_t meshCols() const { return _cols; }

    /** One hop's latency as a Tick. */
    Tick hopTick() const { return Tick(_hopLatency); }

    /** Minimum latency from any tile node to @p node (the MC proxy
     * floor; kTickNever before shardAttach()). */
    Tick minTileLatency(std::uint32_t node) const
    {
        return _minTileLa[node];
    }

    /** Execute route slice @p slice of the current dispatch (worker
     * side of the assist protocol). */
    void shardRunSlice(std::uint32_t slice);

    const ShardRouteStats &shardRouteStats() const { return _routeStats; }

  private:
    friend struct MeshLink::DrainEvent;

    /** Per-domain mesh state for sharded runs (single-writer; consumed
     * by the leader at barriers). */
    struct NetDomain
    {
        struct Send
        {
            Packet *pkt;
            Tick tick;           //!< send tick (canonical key, major)
            std::uint32_t domain;
            std::uint32_t idx;   //!< per-domain FIFO index
        };
        struct TraceRec
        {
            Tick tick;
            std::uint64_t seq;   //!< canonical delivery sequence
            std::uint32_t node;
            MsgType type;
        };

        FreeListPool<Packet> pool;
        DomainMailbox<Send> outbox;
        DomainMailbox<Packet *> freeBin;
        DomainMailbox<TraceRec> trace;
    };

    /** A collected, not-yet-routed send (canonical order). */
    struct PendingSend
    {
        Packet *pkt;
        Tick tick;            //!< send tick (canonical key, major)
        std::uint32_t domain; //!< sending domain
        std::uint32_t idx;    //!< per-domain FIFO index
        std::uint32_t dstDom; //!< receiving domain (from _shardOf)
    };

    /**
     * One deferred send, segmented for region-parallel routing. The
     * XY path splits into runs of links owned by one quadrant each (a
     * link belongs to the quadrant of its source node; XY paths visit
     * at most three quadrants, monotonically), plus a final delivery
     * stage owned by the destination's quadrant (ejection-port
     * reservation, arrival checks, posting). Stages execute in order:
     * each link stage hands the head-flit tick to the next through
     * head/stage, release/acquire-paired so a waiting slice sees the
     * published value.
     */
    struct RouteTask
    {
        PendingSend s;
        Tick head = 0;              //!< handoff: head tick after stage
        std::uint32_t flits = 0;
        std::uint8_t nlinkSegs = 0; //!< 0 for same-node sends
        std::uint8_t segRegion[4];  //!< per stage (last = delivery)
        std::uint32_t segStart[3];  //!< first link-source node of seg
        std::uint16_t segHops[3];   //!< links reserved by the segment
        std::atomic<std::uint32_t> stage{0};
    };

    /** Stage reference inside one region slice's canonical sequence. */
    struct SliceEntry
    {
        std::uint32_t task;
        std::uint32_t stage;
    };

    /** One region group's share of a parallel route dispatch. */
    struct RouteSlice
    {
        std::vector<SliceEntry> entries; //!< (task, stage) ascending
        std::uint64_t messages = 0;      //!< slice-local counter shares
        std::uint64_t flitHops = 0;
    };

    /** Record a send into the executing domain's outbox (sharded). */
    void shardRecord(Packet &pkt);

    /** Execute one delivery on the receiving domain's thread. */
    void shardDeliver(Packet &pkt, std::uint32_t domain);

    /** Route one pending send and post its delivery; @p messages /
     * @p flit_hops accumulate the stat shares (slice- or leader-local,
     * summed into the counters serially). */
    void routeOne(const PendingSend &s, const std::vector<Tick> &ends,
                  std::uint64_t &messages, std::uint64_t &flit_hops);

    /** Route _pending[begin, end) canonically: defer everything into
     * the accumulation queue when the assist hook is installed, route
     * serially otherwise. */
    void routeRange(std::size_t begin, std::size_t end,
                    const std::vector<Tick> &ends);

    /** Mesh quadrant of @p node (degenerate axes collapse). */
    std::uint32_t regionOf(std::uint32_t node) const;

    /** Split @p t's XY path into per-quadrant link segments plus the
     * delivery stage (see RouteTask). */
    void segmentTask(RouteTask &t) const;

    /** Execute one stage of a segmented route: reserve the segment's
     * links (link stage) or reserve the ejection port, compute the
     * arrival, run the soundness checks, and post the delivery
     * (delivery stage). Accumulates into @p sl's counter shares. */
    void runStage(RouteTask &t, std::uint32_t stage, RouteSlice &sl);

    /** Dispatch the accumulated deferred sends to the assist workers
     * when they carry enough work spread over at least two region
     * groups. Otherwise route them serially on the leader when
     * @p force is set (the scheduler needs the queue empty), or leave
     * them deferring. @p messages / @p flit_hops take the leader-side
     * stat shares. */
    void dispatchDeferred(bool force, const std::vector<Tick> &ends,
                          std::uint64_t &messages,
                          std::uint64_t &flit_hops);

    /**
     * XY route + cut-through reservation from @p src to @p dst:
     * advances the per-link busy state and returns the tail-flit
     * arrival tick for a head flit leaving the source router at
     * @p head. @p last_link receives the final link index (SIZE_MAX
     * for same-node traffic), @p hop_count the hops taken.
     */
    Tick routeReserve(std::uint32_t src, std::uint32_t dst,
                      std::uint32_t flits, Tick head,
                      std::uint32_t &hop_count, std::size_t &last_link);

    MeshCoord coordOf(std::uint32_t node) const;
    std::uint32_t nodeOf(MeshCoord c) const;

    /** Link index for the hop from @p from toward @p to (adjacent). */
    std::size_t linkIndex(std::uint32_t from, std::uint32_t to) const;

    /** Queue @p pkt on @p lq, honoring the bounded depth. */
    void enqueue(MeshLink &lq, Packet *pkt);

    /** Insert into the delivery queue ((arrival, seq) order) and arm
     * the drain event when @p pkt becomes the head. */
    void admit(MeshLink &lq, Packet *pkt);

    /** Drain event body: deliver the head packet, re-arm, re-admit
     * stalled packets. */
    void drainLink(MeshLink &lq);

    EventQueue &_eq;
    std::uint32_t _rows;
    std::uint32_t _cols;
    Cycles _hopLatency;
    std::uint32_t _maxQueueDepth;  //!< 0 = unbounded
    std::unique_ptr<MeshLink[]> _links;  //!< 4 directed links per node
    std::unique_ptr<MeshLink[]> _eject;  //!< per-node ejection queues
    /**
     * Per-link busy-until reservation (cut-through approximation: the
     * head flit reserves the link until it passes; body flits extend
     * occupancy at the destination only). Kept as a compact parallel
     * array -- one Tick per link -- so the per-hop routing loop stays
     * cache-tight instead of striding over the queue objects.
     */
    std::vector<Tick> _linkBusy;
    /** Per-node ejection-port reservation: same-node messages
     * serialize here so point-to-point FIFO holds regardless of
     * message size (see routeReserve). */
    std::vector<Tick> _ejectBusy;

    FreeListPool<Packet> _pool;

    // --- sharded-mode state (empty in sequential runs) ---------------
    std::vector<SimDomain *> _domains;
    std::vector<NetDomain> _net;
    std::function<std::uint32_t(const Packet &)> _shardOf;
    ShardLayout _layout;
    std::uint64_t _canonSeq = 0;             //!< leader-owned
    std::vector<std::uint32_t> _domNode;     //!< domain -> mesh node
    std::vector<Tick> _minTileLa;            //!< node -> min tile latency
    std::uint32_t _mcDomBase = 0;            //!< first MC domain id
    std::uint32_t _numCoreDoms = 0;          //!< core domain count
    std::vector<std::uint8_t> _regionOfNode; //!< node -> quadrant
    std::vector<PendingSend> _pending;       //!< canonical, sorted
    std::size_t _pendingHead = 0;            //!< routed prefix
    std::vector<PendingSend> _newSends;      //!< leader scratch
    std::vector<PendingSend> _mergeScratch;  //!< leader scratch
    std::vector<NetDomain::TraceRec> _holdback; //!< unemitted traces
    AssistDispatch _assist;
    std::uint32_t _assistThreads = 1;
    RouteProbe _probe;
    /** Sends deferred out of the serial merge, in canonical route
     * order (batches arrive tick-sorted and cross-batch ticks never
     * precede the already-deferred ones). They accumulate across
     * barriers until a dispatch pays off or the scheduler forces a
     * flush (shardFlushDeferred). */
    std::vector<PendingSend> _deferredAll;
    Tick _deferredBound = kTickNever; //!< min send tick + lookahead
    /** Segmented-task buffer for the current dispatch (reused; stage
     * atomics make the tasks non-movable, hence the raw array). */
    std::unique_ptr<RouteTask[]> _tasks;
    std::size_t _tasksCap = 0;
    RouteSlice _slices[4];
    std::uint32_t _numSlices = 0;
    std::uint8_t _sliceOfRegion[4] = {0, 0, 0, 0};
    const std::vector<Tick> *_sliceEnds = nullptr;
    ShardRouteStats _routeStats;

    Counter &_messages;
    Counter &_flitHops;
    Counter &_linkStalls;
    Counter &_linkStallCycles;
    Tracer *_tracer = nullptr;
};

} // namespace atomsim

#endif // ATOMSIM_NET_MESH_HH
