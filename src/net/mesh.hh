/**
 * @file
 * Garnet-lite 2D mesh on-chip network.
 *
 * Node layout reproduces the paper's system: one node per core/L2-tile
 * (4 rows as in Table I), with the four memory controllers attached to
 * the corner nodes. Messages route XY (column first along the row, then
 * down the column); per-link reservations model serialization and
 * contention.
 *
 * Delivery is allocation-free: packets are pool-owned intrusive nodes
 * (mem/packet.hh) chained into a per-link delivery queue -- the queue
 * of the *last* link a route traverses, or the destination node's
 * ejection queue for same-node messages (which serializes on a
 * per-node port reservation, so same-pair messages deliver in send
 * order regardless of size -- a protocol invariant the split-phase
 * coherence paths rely on). Each queue owns one member
 * drain event that walks its packets at link rate. Every packet is
 * stamped with an EventQueue FIFO slot at send time and the drain event
 * is scheduled into exactly that slot (EventQueue::scheduleAt), so
 * deliveries execute in the same global order a per-message scheduled
 * closure would have -- refactoring the NoC never perturbs simulated
 * timing (the golden-trace test pins this down).
 *
 * Backpressure: with cfg.linkQueueDepth > 0, a link whose delivery
 * queue is full parks new packets in a stall list and re-admits them as
 * the queue drains, delaying their arrival; the mesh.link_stalls /
 * mesh.link_stall_cycles stats make link-level backpressure observable.
 */

#ifndef ATOMSIM_NET_MESH_HH
#define ATOMSIM_NET_MESH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include <functional>

#include "mem/packet.hh"
#include "net/router.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/**
 * The on-chip interconnect.
 *
 * Node ids 0..numTiles-1 are core/L2 tiles (row-major). Memory
 * controllers are reached through their attachment corner node; use
 * mcNode() to get the node id for an MC.
 */
class Mesh
{
  public:
    /** Observer of packet deliveries (golden-trace capture). */
    class Tracer
    {
      public:
        virtual void onDeliver(Tick tick, std::uint32_t node,
                               MsgType type) = 0;

      protected:
        ~Tracer() = default;
    };

    Mesh(EventQueue &eq, const SystemConfig &cfg, StatSet &stats);
    ~Mesh();

    Mesh(const Mesh &) = delete;
    Mesh &operator=(const Mesh &) = delete;

    /** Number of mesh nodes (tiles). */
    std::uint32_t numNodes() const { return _rows * _cols; }

    /** Node id for a core (cores are co-located with L2 tiles). */
    std::uint32_t coreNode(CoreId core) const { return core % numNodes(); }

    /** Node id for an L2 tile. */
    std::uint32_t tileNode(std::uint32_t tile) const {
        return tile % numNodes();
    }

    /** Corner node a memory controller attaches to. */
    std::uint32_t mcNode(McId mc) const;

    // --- sending ------------------------------------------------------

    /**
     * Draw a packet from the pool with @p type set, the completion and
     * scalar payload fields scrubbed, and the 64-byte data line left
     * as recycled garbage -- data-bearing senders must assign
     * pkt.data. Fill in receiver/payload, then hand it to send(). The
     * mesh owns the packet again once delivered.
     */
    Packet &make(MsgType type);

    /**
     * Send @p pkt (obtained from make()) from @p src to @p dst node.
     * The receiver's meshDeliver() -- or the packet's cb when no
     * receiver is set -- runs when the tail flit arrives.
     *
     * Same-node messages still pay one hop (router traversal).
     */
    void send(std::uint32_t src, std::uint32_t dst, Packet &pkt);

    /**
     * Convenience: send a message whose only action is an inline
     * callback (control messages, acks carrying a continuation).
     */
    void send(std::uint32_t src, std::uint32_t dst, MsgType type,
              MeshCallback cb);

    // --- introspection ------------------------------------------------

    /** Total flit-hops carried (utilization stat). */
    std::uint64_t flitHops() const { return _flitHops.value(); }

    /** Hop count of the XY route between two nodes. */
    std::uint32_t hops(std::uint32_t src, std::uint32_t dst) const;

    /** Packets parked by bounded-depth backpressure so far. */
    std::uint64_t linkStalls() const { return _linkStalls.value(); }

    /** Directed link for the hop @p from -> @p to (must be adjacent). */
    const MeshLink &linkBetween(std::uint32_t from,
                                std::uint32_t to) const
    {
        return _links[linkIndex(from, to)];
    }

    /** A node's ejection queue (same-node deliveries). */
    const MeshLink &ejectionOf(std::uint32_t node) const
    {
        return _eject[node];
    }

    /** Packet nodes ever allocated (pool high-water mark). */
    std::size_t packetPoolAllocated() const;

    /** Packet nodes currently idle on the free list. */
    std::size_t packetPoolFree() const;

    /** Install (or clear) the delivery tracer. */
    void setTracer(Tracer *tracer) { _tracer = tracer; }

    // --- sharded mode -------------------------------------------------

    /**
     * Switch the mesh into sharded (deferred-send) mode. Each domain
     * gets its own packet pool and mailboxes; sends record into the
     * *executing* domain's outbox (SimDomain::current()) instead of
     * touching link state, and the leader processes them at window
     * barriers through shardFlush().
     *
     * @param domains  all simulation domains, indexed by domain id
     * @param shard_of maps a routed packet to the domain that must
     *                 execute its delivery (the receiver's domain)
     */
    void shardAttach(std::vector<SimDomain *> domains,
                     std::function<std::uint32_t(const Packet &)> shard_of);

    /**
     * Leader barrier phase: canonically merge every domain's send
     * mailbox (sorted by (send tick, domain, per-domain FIFO index) --
     * all shard-count-invariant), route and reserve each packet
     * against the shared link state in that order, and post its
     * delivery into the receiving domain's queue at the arrival tick.
     * Also routes freed packets back to their origin pools and drains
     * the per-domain trace buffers into the tracer in (tick, canonical
     * sequence) order.
     */
    void shardFlush();

  private:
    friend struct MeshLink::DrainEvent;

    /** Per-domain mesh state for sharded runs (single-writer; consumed
     * by the leader at barriers). */
    struct NetDomain
    {
        struct Send
        {
            Packet *pkt;
            Tick tick;           //!< send tick (canonical key, major)
            std::uint32_t domain;
            std::uint32_t idx;   //!< per-domain FIFO index
        };
        struct TraceRec
        {
            Tick tick;
            std::uint64_t seq;   //!< canonical delivery sequence
            std::uint32_t node;
            MsgType type;
        };

        FreeListPool<Packet> pool;
        DomainMailbox<Send> outbox;
        DomainMailbox<Packet *> freeBin;
        DomainMailbox<TraceRec> trace;
    };

    /** Record a send into the executing domain's outbox (sharded). */
    void shardRecord(Packet &pkt);

    /** Execute one delivery on the receiving domain's thread. */
    void shardDeliver(Packet &pkt, std::uint32_t domain);

    /**
     * XY route + cut-through reservation from @p src to @p dst:
     * advances the per-link busy state and returns the tail-flit
     * arrival tick for a head flit leaving the source router at
     * @p head. @p last_link receives the final link index (SIZE_MAX
     * for same-node traffic), @p hop_count the hops taken.
     */
    Tick routeReserve(std::uint32_t src, std::uint32_t dst,
                      std::uint32_t flits, Tick head,
                      std::uint32_t &hop_count, std::size_t &last_link);

    MeshCoord coordOf(std::uint32_t node) const;
    std::uint32_t nodeOf(MeshCoord c) const;

    /** Link index for the hop from @p from toward @p to (adjacent). */
    std::size_t linkIndex(std::uint32_t from, std::uint32_t to) const;

    /** Queue @p pkt on @p lq, honoring the bounded depth. */
    void enqueue(MeshLink &lq, Packet *pkt);

    /** Insert into the delivery queue ((arrival, seq) order) and arm
     * the drain event when @p pkt becomes the head. */
    void admit(MeshLink &lq, Packet *pkt);

    /** Drain event body: deliver the head packet, re-arm, re-admit
     * stalled packets. */
    void drainLink(MeshLink &lq);

    EventQueue &_eq;
    std::uint32_t _rows;
    std::uint32_t _cols;
    Cycles _hopLatency;
    std::uint32_t _maxQueueDepth;  //!< 0 = unbounded
    std::unique_ptr<MeshLink[]> _links;  //!< 4 directed links per node
    std::unique_ptr<MeshLink[]> _eject;  //!< per-node ejection queues
    /**
     * Per-link busy-until reservation (cut-through approximation: the
     * head flit reserves the link until it passes; body flits extend
     * occupancy at the destination only). Kept as a compact parallel
     * array -- one Tick per link -- so the per-hop routing loop stays
     * cache-tight instead of striding over the queue objects.
     */
    std::vector<Tick> _linkBusy;
    /** Per-node ejection-port reservation: same-node messages
     * serialize here so point-to-point FIFO holds regardless of
     * message size (see routeReserve). */
    std::vector<Tick> _ejectBusy;

    FreeListPool<Packet> _pool;

    // --- sharded-mode state (empty in sequential runs) ---------------
    std::vector<SimDomain *> _domains;
    std::vector<NetDomain> _net;
    std::function<std::uint32_t(const Packet &)> _shardOf;
    std::uint64_t _canonSeq = 0;             //!< leader-owned
    std::vector<NetDomain::Send> _merge;     //!< leader scratch
    std::vector<NetDomain::TraceRec> _traceMerge;

    Counter &_messages;
    Counter &_flitHops;
    Counter &_linkStalls;
    Counter &_linkStallCycles;
    Tracer *_tracer = nullptr;
};

} // namespace atomsim

#endif // ATOMSIM_NET_MESH_HH
