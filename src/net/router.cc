#include "net/router.hh"

#include <algorithm>
#include <cstdlib>

namespace atomsim
{

std::uint32_t
meshHops(const MeshCoord &a, const MeshCoord &b)
{
    const auto dr = (a.row > b.row) ? a.row - b.row : b.row - a.row;
    const auto dc = (a.col > b.col) ? a.col - b.col : b.col - a.col;
    return dr + dc;
}

Tick
MeshLink::reserve(Tick earliest, Cycles hop_latency, std::uint32_t flits)
{
    const Tick start = std::max(earliest, _busyUntil);
    const Tick head_out = start + hop_latency;
    // The link stays occupied while the packet's flits stream through.
    _busyUntil = head_out + flits - 1;
    _flits += flits;
    return head_out;
}

} // namespace atomsim
