#include "net/router.hh"

namespace atomsim
{

std::uint32_t
meshHops(const MeshCoord &a, const MeshCoord &b)
{
    const auto dr = (a.row > b.row) ? a.row - b.row : b.row - a.row;
    const auto dc = (a.col > b.col) ? a.col - b.col : b.col - a.col;
    return dr + dc;
}

} // namespace atomsim
