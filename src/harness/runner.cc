#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "sim/shard.hh"

namespace atomsim
{

namespace
{

/** Saturating tick addition: kTickNever stays kTickNever. */
inline Tick
satAdd(Tick a, Tick x)
{
    return a == kTickNever ? kTickNever : a + x;
}

} // namespace

/**
 * The sharded scheduler (leader-side state, persistent across
 * advanceTo() calls).
 *
 * Every window barrier the leader:
 *
 *  1. collects the domains' mesh sends and control submissions;
 *  2. routes pending sends up to a bound no control-plane send can
 *     still undercut (link reservations are order-sensitive);
 *  3. replays the sequential windowed tiling from the executed-tick
 *     logs (FlatTiling) to find the canonical barrier tick of any
 *     held control ops, and executes them there -- with every
 *     control-plane queue paused at the same tick -- once the known
 *     frontier covers the barrier;
 *  4. runs a lookahead fixpoint over per-domain earliest-output /
 *     earliest-inbound bounds (CMB null progress: quiescent domains
 *     advertise their next-event tick) and grants each domain an
 *     individual window end.
 *
 * Soundness invariants are enforced with hard panics (in the mesh:
 * lookahead, region ownership, causality; here: fixpoint convergence
 * and the uniform control-barrier grant), so a scheduler bug aborts
 * the run instead of silently diverging from the goldens.
 */
struct ShardEngine
{
    explicit ShardEngine(System &system);

    System &sys;
    Mesh &mesh;
    std::vector<SimDomain *> domains;
    std::vector<std::vector<SimDomain *>> owned; //!< per worker
    std::uint32_t numCores = 0;
    std::uint32_t numTiles = 0;

    Tick window = 1;          //!< sequential tiling width W
    FlatTiling tiling;
    std::vector<Tick> ends;   //!< granted window end per domain

    /** Per-domain executed-tick logs (EventQueue::setTickLog) with
     * consumed-prefix cursors; merged in global tick order into the
     * tiling. */
    std::vector<std::vector<Tick>> tickBuf;
    std::vector<std::size_t> tickCur;

    std::vector<SimDomain::ControlOp> held;      //!< canonical order
    std::vector<SimDomain::ControlOp> execBatch; //!< one drain round
    /** Nonzero while waiting for the frontier to reach a control
     * barrier: every control-plane domain is granted exactly this. */
    Tick uniformB = 0;
    /** Control lower bound of the previous barrier's fixpoint: no
     * control op can execute at a tick below it. */
    Tick lastCtrlLB = 0;
    /** Known frontier of the previous barrier: if it stalls, a
     * quadrant-deferred send is pinning its destination's inbound
     * bound and must be flushed to restore progress. */
    Tick lastFknown = kTickNever;

    // Reused fixpoint / merge scratch (steady state allocates nothing).
    std::vector<Tick> nextTickV, minInbound, eo, ei;
    std::vector<std::uint32_t> domNode;  //!< domain -> mesh node
    std::vector<Tick> nodeBest;          //!< chamfer grid (numNodes)
    std::vector<std::pair<Tick, std::uint32_t>> heap;

    ShardRunStats stats; //!< scheduler half (mesh half lives in Mesh)

    /** Control-plane domain: core tile or memory controller (both can
     * submit/receive control ops; L2 slices never do). */
    bool
    isCtrlDomain(std::uint32_t d) const
    {
        return d < numCores || d >= numCores + numTiles;
    }

    void beginCall(Tick limit);
    bool leaderBarrier(Runner &runner, Tick limit);
    void gatherHeld();
    void consumeUpTo(Tick t);
    void executeBatch(Tick barrier_tick);
    void computeGrants(Tick limit, Tick pending_earliest);
    void lookaheadFixpoint(Tick ctrl_eff);
};

ShardEngine::ShardEngine(System &system)
    : sys(system), mesh(system.mesh())
{
    const ShardLayout &layout = sys.shardLayout();
    numCores = layout.numCores;
    numTiles = layout.numTiles;
    const std::uint32_t ndomains = sys.numDomains();
    owned.resize(layout.workers);
    for (std::uint32_t d = 0; d < ndomains; ++d) {
        domains.push_back(&sys.domain(d));
        owned[layout.workerOfDomain(d)].push_back(domains.back());
    }
    ends.assign(ndomains, 0);
    nextTickV.assign(ndomains, kTickNever);
    minInbound.assign(ndomains, kTickNever);
    eo.assign(ndomains, 0);
    ei.assign(ndomains, 0);
    domNode.resize(ndomains);
    for (std::uint32_t d = 0; d < ndomains; ++d)
        domNode[d] = mesh.domainNode(d);
    nodeBest.assign(mesh.numNodes(), kTickNever);
    tickCur.assign(ndomains, 0);
    tickBuf.resize(ndomains);
    // The outer vector never resizes again, so the per-domain inner
    // vectors the queues log into stay put.
    for (std::uint32_t d = 0; d < ndomains; ++d)
        domains[d]->queue().setTickLog(&tickBuf[d]);

    const SystemConfig &cfg = sys.config();
    window = cfg.windowTicks ? cfg.windowTicks : cfg.hopLatency;
    tiling.configure(window, kTickNever);
}

void
ShardEngine::beginCall(Tick limit)
{
    // The sequential loop re-anchors its first window at the earliest
    // pending tick of the new call, so ticks executed by previous
    // calls can never anchor a window again: drop them and re-anchor.
    for (std::size_t d = 0; d < tickBuf.size(); ++d) {
        tickBuf[d].clear();
        tickCur[d] = 0;
        domains[d]->queue().setTickLog(&tickBuf[d]);
    }
    tiling.setLimit(limit);
    tiling.reset();
}

void
ShardEngine::gatherHeld()
{
    bool any = false;
    for (SimDomain *dom : domains) {
        auto &out = dom->controlOut();
        if (out.empty())
            continue;
        for (auto &op : out.items())
            held.push_back(std::move(op));
        out.clear();
        any = true;
    }
    if (any)
        std::sort(held.begin(), held.end(), controlOpBefore);
}

void
ShardEngine::consumeUpTo(Tick t)
{
    // Merge the per-domain executed-tick logs (each nondecreasing) in
    // global order into the tiling, up to and including tick t.
    heap.clear();
    const std::size_t ndomains = domains.size();
    for (std::uint32_t d = 0; d < ndomains; ++d) {
        if (tickCur[d] < tickBuf[d].size() && tickBuf[d][tickCur[d]] <= t)
            heap.emplace_back(tickBuf[d][tickCur[d]], d);
    }
    std::make_heap(heap.begin(), heap.end(), std::greater<>());
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<>());
        const Tick tk = heap.back().first;
        const std::uint32_t d = heap.back().second;
        heap.pop_back();
        tiling.consume(tk);
        std::size_t &cur = tickCur[d];
        ++cur;
        if (cur < tickBuf[d].size() && tickBuf[d][cur] <= t) {
            heap.emplace_back(tickBuf[d][cur], d);
            std::push_heap(heap.begin(), heap.end(), std::greater<>());
        }
    }
    for (std::uint32_t d = 0; d < ndomains; ++d) {
        auto &buf = tickBuf[d];
        if (tickCur[d] > 4096 && tickCur[d] * 2 > buf.size()) {
            buf.erase(buf.begin(), buf.begin() + std::ptrdiff_t(tickCur[d]));
            tickCur[d] = 0;
        }
    }
}

void
ShardEngine::executeBatch(Tick barrier_tick)
{
    // Every control-plane queue must sit at the canonical barrier tick
    // so zero-latency cross-domain ops observe the same now() the
    // sequential run had. Their grants were pinned to exactly
    // barrier_tick while the barrier was pending.
    for (std::uint32_t d = 0; d < domains.size(); ++d) {
        if (!isCtrlDomain(d))
            continue;
        panic_if(domains[d]->queue().now() != barrier_tick - 1,
                 "control domain %u at tick %llu, barrier at %llu",
                 d, (unsigned long long)domains[d]->queue().now(),
                 (unsigned long long)barrier_tick);
    }
    // Drain rounds, exactly like the sequential barrier: execute every
    // op below the barrier, re-gather ops submitted by that execution
    // (e.g. a quiesced truncate completing inline), repeat until none
    // remain. Ops at or past the barrier stay held for a later window.
    for (;;) {
        std::size_t n = 0;
        while (n < held.size() && held[n].tick < barrier_tick)
            ++n;
        if (n == 0)
            return;
        execBatch.clear();
        for (std::size_t i = 0; i < n; ++i)
            execBatch.push_back(std::move(held[i]));
        held.erase(held.begin(), held.begin() + std::ptrdiff_t(n));
        for (auto &op : execBatch)
            op.fn();
        gatherHeld();
    }
}

void
ShardEngine::lookaheadFixpoint(Tick ctrl_eff)
{
    // Greatest fixpoint of
    //   EO(d) = min(nextTick(d), EI(d))
    //   EI(d) = min(minInbound(d),
    //               min over s of min(EO(s), ctrlEvt(s)) + la(s, d))
    // iterated downward from the nextTick upper bound. EO is the
    // earliest tick domain d could execute any event; the ctrlEvt term
    // adds events a *future control barrier* could still inject:
    // ctrl_eff into a core's queue (continuations post at +1), and
    // ctrl_eff - 1 into an MC's (truncates schedule at the barrier
    // tick itself). Every lookahead edge is >= hopLatency x 2, so the
    // min-plus iteration converges within |domains| rounds.
    //
    // Each round evaluates the min-plus product without materializing
    // the lookahead matrix: la(s, d) is hop x (1 + manhattan distance
    // of the hosting nodes) plus the MC proxy floor toward cores, so
    // grouping sources by mesh node and running a two-pass chamfer
    // distance transform over the grid yields
    // min_s(out(s) + la(s, d)) for every d in O(domains + nodes) --
    // exact for the L1 metric with a uniform hop cost, where the
    // O(domains^2) inner product it replaces was intractable at 1024
    // tiles.
    const std::size_t ndomains = domains.size();
    const Tick ctrl_mc = ctrl_eff == kTickNever
                             ? kTickNever
                             : (ctrl_eff > 0 ? ctrl_eff - 1 : 0);
    const Tick hop = mesh.hopTick();
    const std::uint32_t rows = mesh.meshRows();
    const std::uint32_t cols = mesh.meshCols();
    for (std::size_t d = 0; d < ndomains; ++d)
        eo[d] = nextTickV[d];
    for (std::size_t round = 0;; ++round) {
        panic_if(round > ndomains + 2,
                 "lookahead fixpoint failed to converge");
        // nodeBest[n] = min over sources s hosted on node n of
        // min(EO(s), ctrlEvt(s)); mc_best the same over MC sources
        // only (their proxy sends depart from any tile node).
        std::fill(nodeBest.begin(), nodeBest.end(), kTickNever);
        Tick mc_best = kTickNever;
        for (std::size_t s = 0; s < ndomains; ++s) {
            Tick out = eo[s];
            const Tick ce = s < numCores
                                ? ctrl_eff
                                : (s >= numCores + numTiles ? ctrl_mc
                                                            : kTickNever);
            if (ce < out)
                out = ce;
            const std::uint32_t n = domNode[s];
            if (out < nodeBest[n])
                nodeBest[n] = out;
            if (s >= numCores + numTiles && out < mc_best)
                mc_best = out;
        }
        // In-place chamfer: after both passes
        // nodeBest[n] = min_m(sources at m + hop x manhattan(m, n)).
        for (std::uint32_t r = 0; r < rows; ++r) {
            for (std::uint32_t c = 0; c < cols; ++c) {
                const std::size_t i = std::size_t(r) * cols + c;
                Tick v = nodeBest[i];
                if (r > 0)
                    v = std::min(v, satAdd(nodeBest[i - cols], hop));
                if (c > 0)
                    v = std::min(v, satAdd(nodeBest[i - 1], hop));
                nodeBest[i] = v;
            }
        }
        for (std::uint32_t r = rows; r-- > 0;) {
            for (std::uint32_t c = cols; c-- > 0;) {
                const std::size_t i = std::size_t(r) * cols + c;
                Tick v = nodeBest[i];
                if (r + 1 < rows)
                    v = std::min(v, satAdd(nodeBest[i + cols], hop));
                if (c + 1 < cols)
                    v = std::min(v, satAdd(nodeBest[i + 1], hop));
                nodeBest[i] = v;
            }
        }
        for (std::size_t d = 0; d < ndomains; ++d) {
            const std::uint32_t nd = domNode[d];
            Tick v = std::min(minInbound[d], satAdd(nodeBest[nd], hop));
            if (d < numCores)
                v = std::min(v, satAdd(mc_best,
                                       mesh.minTileLatency(nd)));
            ei[d] = v;
        }
        bool changed = false;
        for (std::size_t d = 0; d < ndomains; ++d) {
            const Tick v = std::min(nextTickV[d], ei[d]);
            if (v != eo[d]) {
                eo[d] = v;
                changed = true;
            }
        }
        if (!changed)
            return;
    }
}

void
ShardEngine::computeGrants(Tick limit, Tick pending_earliest)
{
    const std::size_t ndomains = domains.size();
    Tick fknown = kTickNever;
    for (std::size_t d = 0; d < ndomains; ++d)
        fknown = std::min(fknown, ends[d]);
    const Tick held_min = held.empty() ? kTickNever : held.front().tick;

    // Effective control bound: no control op can execute at a tick
    // below ctrl_eff - 1. Found by upward iteration from a sound base
    // (submissions so far all landed below the known frontier; a held
    // op pins the bound at its own tick): each pass runs the lookahead
    // fixpoint at the current bound, then re-derives the bound from
    // the cores' instruction-stream promises (Core::ctrlLowerBound)
    // and -- while a truncate is in flight -- the MC domains' own
    // event horizons. Every iterate is sound, so capping the loop is
    // safe (merely conservative).
    Tick ctrl_eff = std::min(fknown < 1 ? Tick(1) : fknown,
                             satAdd(held_min, 1));
    const bool trunc = sys.designContext().truncInFlight();
    for (std::uint32_t iter = 0;; ++iter) {
        lookaheadFixpoint(ctrl_eff);
        Tick lb = kTickNever;
        for (std::uint32_t c = 0; c < numCores; ++c)
            lb = std::min(lb, std::max(sys.core(c).ctrlLowerBound(),
                                       eo[c]));
        if (trunc) {
            for (std::size_t d = numCores + numTiles; d < ndomains; ++d)
                lb = std::min(lb, eo[d]);
        }
        const Tick next_eff = std::min(satAdd(lb, 1),
                                       satAdd(held_min, 1));
        if (next_eff == ctrl_eff || iter >= 64)
            break;
        panic_if(next_eff < ctrl_eff, "control bound regressed");
        ctrl_eff = next_eff;
    }
    lastCtrlLB = ctrl_eff == kTickNever ? kTickNever : ctrl_eff - 1;

    // Keep grants finite even for domains nothing can ever reach
    // again (EI = never): cap at the last known activity plus one
    // window, so run-tail now() stays near the final event and the
    // measured cycle counts stay meaningful.
    Tick max_finite = fknown == kTickNever ? 0 : fknown;
    for (std::size_t d = 0; d < ndomains; ++d) {
        if (nextTickV[d] != kTickNever)
            max_finite = std::max(max_finite, nextTickV[d]);
    }
    if (held_min != kTickNever)
        max_finite = std::max(max_finite, held_min);
    if (pending_earliest != kTickNever)
        max_finite = std::max(max_finite, pending_earliest);
    Tick cap = max_finite + window;
    if (limit != kTickNever)
        cap = std::min(cap, limit + 1);

    for (std::uint32_t d = 0; d < ndomains; ++d) {
        Tick g;
        if (uniformB != 0 && isCtrlDomain(d)) {
            // A control barrier is pending at uniformB: every control
            // domain must stop exactly there -- no earlier (the
            // barrier needs them at uniformB - 1) and no later (no
            // event past the barrier may run before its ops).
            panic_if(ei[d] < uniformB,
                     "uniform control window %llu overruns domain %u "
                     "(EI %llu)",
                     (unsigned long long)uniformB, d,
                     (unsigned long long)ei[d]);
            g = uniformB;
        } else {
            g = ei[d];
            if (isCtrlDomain(d))
                g = std::min(g, ctrl_eff);
        }
        g = std::min(g, cap);
        if (g > ends[d]) {
            ++stats.grants;
            stats.grantedTicks += g - ends[d];
            stats.maxWindowTicks = std::max(stats.maxWindowTicks,
                                            g - ends[d]);
            ends[d] = g;
        }
    }
    uniformB = 0;
}

bool
ShardEngine::leaderBarrier(Runner &runner, Tick limit)
{
    ++stats.barriers;
    mesh.shardCollect();
    gatherHeld();

    Tick fknown = kTickNever;
    for (std::size_t d = 0; d < domains.size(); ++d)
        fknown = std::min(fknown, ends[d]);
    Tick tau0 = held.empty() ? kTickNever : held.front().tick;

    // Route pending sends -- but only below the earliest tick a
    // control-plane send could still materialize at: the sequential
    // schedule routes a control send before any data send of a
    // strictly later tick, and link reservations are order-sensitive.
    Tick route_bound = std::min(fknown, satAdd(lastCtrlLB, 1));
    route_bound = std::min(route_bound, satAdd(tau0, 1));
    mesh.shardRouteUpTo(route_bound, ends);
    mesh.shardEmitTrace(fknown);

    if (tau0 != kTickNever && fknown >= satAdd(tau0, 1)) {
        // The earliest held op's tick is final (every domain has run
        // past it): replay the tiling to its canonical barrier.
        consumeUpTo(tau0);
        const Tick barrier_tick = tiling.end();
        if (fknown >= barrier_tick) {
            mesh.shardRouteUpTo(barrier_tick, ends);
            executeBatch(barrier_tick);
            mesh.shardRouteNew(ends);
            uniformB = 0;
        } else {
            uniformB = barrier_tick;
        }
    } else if (fknown > 0) {
        consumeUpTo(std::min(fknown - 1, tau0));
    }

    // Forced flush points for the deferred routing queue. While a
    // control barrier is pending, every control domain is granted
    // exactly uniformB, so any deferred send bounding a control domain
    // below B must route first (computeGrants asserts EI >= B). A
    // frontier stalled at or past the earliest deferred arrival bound
    // means deferral itself is pinning some domain's window -- flush
    // to restore progress (a stall with the bound still ahead of the
    // frontier has some other cause, and the queue may keep
    // accumulating through it). And when the run is complete, drain
    // the queue so the trailing deliveries still execute (the
    // non-deferring schedule executed them before completion).
    const bool had_deferred = mesh.shardHasDeferred();
    if (had_deferred && (uniformB != 0 || runner.allDone())) {
        mesh.shardFlushDeferred(ends);
    } else if (had_deferred && fknown == lastFknown &&
               mesh.shardDeferredBound() <= fknown) {
        // Partial: route just the frontier-pinning prefix; the tail
        // keeps accumulating toward a parallel dispatch.
        mesh.shardFlushDeferredUpTo(fknown, ends);
    }
    lastFknown = fknown;

    // Stop check (identical decision to the sequential loop: nothing
    // left, or nothing left at or below the limit).
    for (std::size_t d = 0; d < domains.size(); ++d)
        nextTickV[d] = domains[d]->queue().nextTick();
    Tick pending_earliest = kTickNever;
    mesh.shardInboundBounds(minInbound, pending_earliest);
    Tick next = pending_earliest;
    for (std::size_t d = 0; d < domains.size(); ++d)
        next = std::min(next, nextTickV[d]);
    tau0 = held.empty() ? kTickNever : held.front().tick;
    next = std::min(next, tau0);
    if ((runner.allDone() && !had_deferred) || next == kTickNever ||
        next > limit) {
        panic_if(!held.empty(),
                 "stopping with %zu control ops still held",
                 held.size());
        mesh.shardEmitTraceAll();
        return true;
    }
    computeGrants(limit, pending_earliest);
    return false;
}

Runner::Runner(const SystemConfig &cfg, Workload &workload,
               std::uint32_t txns_per_core, Addr data_bytes)
    : _system(std::make_unique<System>(cfg, data_bytes)),
      _workload(workload),
      _txnsPerCore(txns_per_core),
      _issued(cfg.numCores, 0)
{
    _heap = std::make_unique<PersistentHeap>(
        kPageBytes,  // keep page 0 unmapped (null detection)
        _system->addressMap().logBase(), cfg.numCores);
    for (CoreId c = 0; c < cfg.numCores; ++c)
        _rngs.emplace_back(cfg.seed * 7919 + c);
    _latency.resize(std::size_t(cfg.tenantSlots()) * kTxnClasses);
}

// Out of line: ~ShardEngine needs the complete type.
Runner::~Runner() = default;

void
Runner::setUp()
{
    DirectAccessor direct(_system->archMem());
    _workload.init(direct, *_heap, _system->numCores());
    _system->makeDurableSnapshot();
    for (CoreId c = 0; c < _system->numCores(); ++c) {
        _system->core(c).setSource(this);
        _system->core(c).setTxnObserver(
            [this](CoreId, const Transaction &txn, Tick start, Tick end) {
                const std::uint32_t tenant = std::min<std::uint32_t>(
                    txn.tenant, _system->config().tenantSlots() - 1);
                const std::uint32_t cls = std::min<std::uint32_t>(
                    txn.txnClass, kTxnClasses - 1);
                _latency[tenant * kTxnClasses + cls].record(end - start);
            });
        _system->core(c).start();
    }
}

const LatencyHistogram &
Runner::latency(std::uint32_t tenant, std::uint32_t cls) const
{
    return _latency[std::size_t(tenant) * kTxnClasses +
                    std::min(cls, kTxnClasses - 1)];
}

std::optional<Transaction>
Runner::next(CoreId core)
{
    if (_issued[core] >= _txnsPerCore)
        return std::nullopt;
    ++_issued[core];

    Transaction txn;
    txn.id = _nextTxnId++;
    RecordingAccessor rec(_system->archMem(), txn);
    _workload.runTransaction(core, rec, _rngs[core]);
    panic_if(rec.inAtomic(), "workload left the atomic region open");
    return txn;
}

void
Runner::fetchNext(CoreId core, FetchDone done)
{
    if (!_system->sharded()) {
        done(next(core));
        return;
    }
    // Per-tile domains: transaction generation mutates shared
    // functional state, so it is a control op -- leader-executed at
    // the barrier in canonical (tick, core) order, with the result
    // posted back into the requesting core's domain queue.
    SimDomain *d = SimDomain::current();
    panic_if(!d, "sharded transaction fetch outside a domain scope");
    d->submitControl(
        core, ctrlsub::kFetchTxn,
        InplaceCallback<64>([this, core,
                             done = std::move(done)]() mutable {
            EventQueue &q = _system
                                ->domain(_system->shardLayout()
                                             .coreDomain(core))
                                .queue();
            q.postIn(1, [txn = next(core),
                         done = std::move(done)]() mutable {
                done(std::move(txn));
            });
        }));
}

bool
Runner::allDone() const
{
    const System &sys = *_system;
    for (CoreId c = 0; c < sys.numCores(); ++c) {
        if (!sys.core(c).done())
            return false;
    }
    return true;
}

std::uint64_t
Runner::committed() const
{
    const System &sys = *_system;
    std::uint64_t total = 0;
    for (CoreId c = 0; c < sys.numCores(); ++c)
        total += sys.core(c).committed();
    return total;
}

RunResult
Runner::collect(Tick start_tick, Tick end_tick) const
{
    const StatSet &stats = std::as_const(*_system).stats();
    RunResult r;
    r.txns = committed();
    r.cycles = end_tick - start_tick;
    const double secs =
        double(r.cycles) / _system->config().clockHz;
    r.txnPerSec = secs > 0 ? double(r.txns) / secs : 0.0;
    r.sqFullCycles = stats.sum("core", "sq_full_cycles");
    r.logWrites = stats.sum("logi", "log_writes");
    r.logEntries = stats.sum("logm", "entries") +
                   stats.sum("redo", "log_entries");
    r.sourceLogged = stats.sum("logm", "source_logged");
    r.memLogWrites = stats.sum("mc", "log_writes");
    r.memDataWrites = stats.sum("mc", "data_writes");
    r.memDemandReads = stats.sum("mc", "demand_reads");
    r.memLogReads = stats.sum("mc", "log_reads");
    r.dramHits = stats.sum("mc", "dram_hits");
    r.dramMisses = stats.sum("mc", "dram_misses");
    r.dramRowHits = stats.sum("mc", "row_hits");
    r.dramWbEvictions = stats.sum("mc", "wb_evictions");
    return r;
}

RunResult
Runner::run(Tick limit)
{
    const Tick start = _system->eventQueue().now();
    advanceTo(limit);
    fatal_if(!allDone(), "simulation hit the tick limit before "
                         "completing (deadlock or limit too small)");
    return collect(start, _system->eventQueue().now());
}

void
Runner::advanceTo(Tick limit)
{
    if (_system->sharded()) {
        runSharded(limit);
        return;
    }
    _system->eventQueue().runUntil([this] { return allDone(); }, limit);
}

void
Runner::runSharded(Tick limit)
{
    System &sys = *_system;
    const std::uint32_t workers = sys.shardLayout().workers;

    if (!_engine)
        _engine = std::make_unique<ShardEngine>(sys);
    ShardEngine &engine = *_engine;
    engine.beginCall(limit);

    Mesh &mesh = sys.mesh();

    // Published by the leader under the barrier's release; read by
    // workers after their matching acquire.
    enum class Mode : std::uint32_t { Run, Assist, Stop };
    struct Shared
    {
        Mode mode = Mode::Run;
        std::uint32_t sliceCount = 0;
        std::atomic<std::uint32_t> sliceIdx{0};
    } shared;

    WindowBarrier barrier(workers - 1);

    auto run_window = [&engine](std::vector<SimDomain *> &doms) {
        // Run each owned domain up to its individually granted window
        // end, with the domain published as the thread's execution
        // scope (the mesh and the control plane attribute sends/ops
        // to it).
        for (SimDomain *d : doms) {
            const Tick end = engine.ends[d->id()];
            if (end == 0)
                continue;
            SimDomain::Scope scope(d);
            d->queue().run(end - 1);
        }
    };
    auto run_slices = [&shared, &mesh] {
        std::uint32_t i;
        while ((i = shared.sliceIdx.fetch_add(
                    1, std::memory_order_relaxed)) < shared.sliceCount)
            mesh.shardRunSlice(i);
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (std::uint32_t w = 1; w < workers; ++w) {
        threads.emplace_back([&shared, &barrier, &engine, &run_window,
                              &run_slices, w] {
            for (;;) {
                barrier.workerArrive();
                switch (shared.mode) {
                  case Mode::Stop:
                    return;
                  case Mode::Assist:
                    run_slices();
                    break;
                  case Mode::Run:
                    run_window(engine.owned[w]);
                    break;
                }
            }
        });
    }

    // Region-parallel routing: once the mesh has accumulated enough
    // deferred sends, it hands per-quadrant route slices to the parked
    // workers through this hook and blocks until they finish. Every
    // thread pulls slices until exhausted -- segmented seam-crossers
    // hand their head-flit tick from slice to slice, so each slice
    // needs a thread behind it.
    mesh.shardSetAssist(
        [&shared, &barrier, &run_slices](std::uint32_t nslices) {
            shared.sliceCount = nslices;
            shared.sliceIdx.store(0, std::memory_order_relaxed);
            shared.mode = Mode::Assist;
            barrier.leaderRelease();
            run_slices();
            barrier.leaderWait();
        },
        workers);

    for (;;) {
        barrier.leaderWait();  // every domain parked: exclusive access
        if (engine.leaderBarrier(*this, limit)) {
            shared.mode = Mode::Stop;
            barrier.leaderRelease();
            break;
        }
        shared.mode = Mode::Run;
        barrier.leaderRelease();
        run_window(engine.owned[0]);
    }
    for (auto &t : threads)
        t.join();
    mesh.shardSetAssist(nullptr);
}

ShardRunStats
Runner::shardStats() const
{
    ShardRunStats s;
    if (_engine)
        s = _engine->stats;
    if (_system->sharded()) {
        const Mesh::ShardRouteStats &rs =
            _system->mesh().shardRouteStats();
        s.sends = rs.sends;
        s.sameWorkerSends = rs.sameWorkerSends;
        s.routedParallel = rs.routedParallel;
        s.routedSerial = rs.routedSerial;
    }
    return s;
}

Tick
Runner::runUntilCrash(double fraction, std::uint64_t crash_seed)
{
    fatal_if(_system->sharded(),
             "crash injection requires the sequential kernel "
             "(numShards = 0)");
    EventQueue &eq = _system->eventQueue();
    const std::uint64_t target = std::uint64_t(
        fraction * double(_txnsPerCore) * _system->numCores());

    eq.runUntil([this, target] { return committed() >= target; });

    // Jitter the exact crash point so sweeps hit different machine
    // states (mid-log-write, mid-flush, mid-truncate, ...).
    Random rng(crash_seed);
    const Cycles extra = rng.below(2000);
    const Tick deadline = eq.now() + extra;
    eq.run(deadline);

    _system->powerFail();
    return eq.now();
}

Tick
Runner::crashAt(Tick tick)
{
    fatal_if(_system->sharded(),
             "crash injection requires the sequential kernel "
             "(numShards = 0)");
    EventQueue &eq = _system->eventQueue();
    eq.run(tick);
    _system->powerFail();
    return eq.now();
}

Tick
Runner::runUntilDestageCrash(std::uint64_t crash_seed)
{
    fatal_if(_system->sharded(),
             "crash injection requires the sequential kernel "
             "(numShards = 0)");
    fatal_if(!_system->destage(0),
             "runUntilDestageCrash needs the flash tier (ssdTier)");
    EventQueue &eq = _system->eventQueue();

    eq.runUntil([this] {
        if (allDone())
            return true;
        const std::uint32_t mcs = _system->config().numMemCtrls;
        for (McId m = 0; m < mcs; ++m) {
            if (_system->destage(m)->destagesInFlight() > 0)
                return true;
        }
        return false;
    });

    // Jitter so sweeps land the crash in different destage phases
    // (snapshot programming, map write, promotion, clear).
    Random rng(crash_seed);
    const Tick deadline = eq.now() + rng.below(500);
    eq.run(deadline);

    _system->powerFail();
    return eq.now();
}

RecoveryReport
Runner::crashDuringRecovery(double fraction)
{
    fatal_if(fraction < 0.0 || fraction > 1.0,
             "recovery-crash fraction must be in [0, 1]");
    System &sys = *_system;
    const SystemConfig &cfg = sys.config();
    const bool redo = cfg.design == DesignKind::Redo;
    RecoveryManager undo_mgr(cfg, sys.addressMap());
    RedoRecovery redo_mgr(cfg, sys.addressMap());

    // Reference pass on a clone: counts the total record applications
    // a single uninterrupted recovery performs (so the fraction is of
    // real work, not a guess), without touching the durable image.
    DataImage probe = sys.nvmImage().clone();
    RecoveryOptions ref_opts;
    if (sys.ssd(0)) {
        // Flash tier: the reference pass must rehydrate too (from the
        // real, read-only flash images) or it undercounts the work of
        // a pass over destaged log buckets.
        ref_opts.flashImage = [&sys](McId m) -> const DataImage * {
            SsdDevice *ssd = sys.ssd(m);
            return ssd ? &ssd->flash() : nullptr;
        };
    }
    const RecoveryReport full = redo ? redo_mgr.recover(probe, ref_opts)
                                     : undo_mgr.recover(probe, ref_opts);

    // Interrupted pass on the real image: recovery itself crashes
    // after fraction * N applications, and -- when the fault model
    // says so -- the second failure tears recovery's own in-flight
    // writes at a seeded word boundary.
    RecoveryOptions opts;
    opts.maxApplications =
        std::uint32_t(double(full.recordsApplied) * fraction);
    opts.tornWrites = cfg.tornWrites;
    opts.faultSeed = cfg.faultSeed;
    if (redo)
        sys.recoverRedo(opts);
    else
        sys.recover(opts);

    // Restart: a fresh full pass. The log and ADR regions were only
    // read by the interrupted pass, so this pass sees the identical
    // valid-record set and rewrites every affected data line in full
    // -- newest-first undo is idempotent under double failure.
    return redo ? sys.recoverRedo() : sys.recover();
}

} // namespace atomsim
