#include "harness/runner.hh"

#include <utility>

#include "sim/logging.hh"

namespace atomsim
{

Runner::Runner(const SystemConfig &cfg, Workload &workload,
               std::uint32_t txns_per_core, Addr data_bytes)
    : _system(std::make_unique<System>(cfg, data_bytes)),
      _workload(workload),
      _txnsPerCore(txns_per_core),
      _issued(cfg.numCores, 0)
{
    _heap = std::make_unique<PersistentHeap>(
        kPageBytes,  // keep page 0 unmapped (null detection)
        _system->addressMap().logBase(), cfg.numCores);
    for (CoreId c = 0; c < cfg.numCores; ++c)
        _rngs.emplace_back(cfg.seed * 7919 + c);
}

void
Runner::setUp()
{
    DirectAccessor direct(_system->archMem());
    _workload.init(direct, *_heap, _system->numCores());
    _system->makeDurableSnapshot();
    for (CoreId c = 0; c < _system->numCores(); ++c) {
        _system->core(c).setSource(this);
        _system->core(c).start();
    }
}

std::optional<Transaction>
Runner::next(CoreId core)
{
    if (_issued[core] >= _txnsPerCore)
        return std::nullopt;
    ++_issued[core];

    Transaction txn;
    txn.id = _nextTxnId++;
    RecordingAccessor rec(_system->archMem(), txn);
    _workload.runTransaction(core, rec, _rngs[core]);
    panic_if(rec.inAtomic(), "workload left the atomic region open");
    return txn;
}

bool
Runner::allDone() const
{
    const System &sys = *_system;
    for (CoreId c = 0; c < sys.numCores(); ++c) {
        if (!sys.core(c).done())
            return false;
    }
    return true;
}

std::uint64_t
Runner::committed() const
{
    const System &sys = *_system;
    std::uint64_t total = 0;
    for (CoreId c = 0; c < sys.numCores(); ++c)
        total += sys.core(c).committed();
    return total;
}

RunResult
Runner::collect(Tick start_tick, Tick end_tick) const
{
    const StatSet &stats = std::as_const(*_system).stats();
    RunResult r;
    r.txns = committed();
    r.cycles = end_tick - start_tick;
    const double secs =
        double(r.cycles) / _system->config().clockHz;
    r.txnPerSec = secs > 0 ? double(r.txns) / secs : 0.0;
    r.sqFullCycles = stats.sum("core", "sq_full_cycles");
    r.logWrites = stats.sum("logi", "log_writes");
    r.logEntries = stats.sum("logm", "entries") +
                   stats.sum("redo", "log_entries");
    r.sourceLogged = stats.sum("logm", "source_logged");
    r.memLogWrites = stats.sum("mc", "log_writes");
    r.memDataWrites = stats.sum("mc", "data_writes");
    r.memDemandReads = stats.sum("mc", "demand_reads");
    r.memLogReads = stats.sum("mc", "log_reads");
    return r;
}

RunResult
Runner::run(Tick limit)
{
    EventQueue &eq = _system->eventQueue();
    const Tick start = eq.now();
    eq.runUntil([this] { return allDone(); }, limit);
    fatal_if(!allDone(), "simulation hit the tick limit before "
                         "completing (deadlock or limit too small)");
    return collect(start, eq.now());
}

Tick
Runner::runUntilCrash(double fraction, std::uint64_t crash_seed)
{
    EventQueue &eq = _system->eventQueue();
    const std::uint64_t target = std::uint64_t(
        fraction * double(_txnsPerCore) * _system->numCores());

    eq.runUntil([this, target] { return committed() >= target; });

    // Jitter the exact crash point so sweeps hit different machine
    // states (mid-log-write, mid-flush, mid-truncate, ...).
    Random rng(crash_seed);
    const Cycles extra = rng.below(2000);
    const Tick deadline = eq.now() + extra;
    eq.run(deadline);

    _system->powerFail();
    return eq.now();
}

} // namespace atomsim
