#include "harness/runner.hh"

#include <algorithm>
#include <thread>
#include <utility>

#include "sim/logging.hh"
#include "sim/shard.hh"

namespace atomsim
{

Runner::Runner(const SystemConfig &cfg, Workload &workload,
               std::uint32_t txns_per_core, Addr data_bytes)
    : _system(std::make_unique<System>(cfg, data_bytes)),
      _workload(workload),
      _txnsPerCore(txns_per_core),
      _issued(cfg.numCores, 0)
{
    _heap = std::make_unique<PersistentHeap>(
        kPageBytes,  // keep page 0 unmapped (null detection)
        _system->addressMap().logBase(), cfg.numCores);
    for (CoreId c = 0; c < cfg.numCores; ++c)
        _rngs.emplace_back(cfg.seed * 7919 + c);
}

void
Runner::setUp()
{
    DirectAccessor direct(_system->archMem());
    _workload.init(direct, *_heap, _system->numCores());
    _system->makeDurableSnapshot();
    for (CoreId c = 0; c < _system->numCores(); ++c) {
        _system->core(c).setSource(this);
        _system->core(c).start();
    }
}

std::optional<Transaction>
Runner::next(CoreId core)
{
    if (_issued[core] >= _txnsPerCore)
        return std::nullopt;
    ++_issued[core];

    Transaction txn;
    txn.id = _nextTxnId++;
    RecordingAccessor rec(_system->archMem(), txn);
    _workload.runTransaction(core, rec, _rngs[core]);
    panic_if(rec.inAtomic(), "workload left the atomic region open");
    return txn;
}

void
Runner::fetchNext(CoreId core, FetchDone done)
{
    if (!_system->sharded()) {
        done(next(core));
        return;
    }
    // Per-tile domains: transaction generation mutates shared
    // functional state, so it is a control op -- leader-executed at
    // the barrier in canonical (tick, core) order, with the result
    // posted back into the requesting core's domain queue.
    SimDomain *d = SimDomain::current();
    panic_if(!d, "sharded transaction fetch outside a domain scope");
    d->submitControl(
        core, ctrlsub::kFetchTxn,
        InplaceCallback<64>([this, core,
                             done = std::move(done)]() mutable {
            EventQueue &q = _system
                                ->domain(_system->shardLayout()
                                             .coreDomain(core))
                                .queue();
            q.postIn(1, [txn = next(core),
                         done = std::move(done)]() mutable {
                done(std::move(txn));
            });
        }));
}

bool
Runner::allDone() const
{
    const System &sys = *_system;
    for (CoreId c = 0; c < sys.numCores(); ++c) {
        if (!sys.core(c).done())
            return false;
    }
    return true;
}

std::uint64_t
Runner::committed() const
{
    const System &sys = *_system;
    std::uint64_t total = 0;
    for (CoreId c = 0; c < sys.numCores(); ++c)
        total += sys.core(c).committed();
    return total;
}

RunResult
Runner::collect(Tick start_tick, Tick end_tick) const
{
    const StatSet &stats = std::as_const(*_system).stats();
    RunResult r;
    r.txns = committed();
    r.cycles = end_tick - start_tick;
    const double secs =
        double(r.cycles) / _system->config().clockHz;
    r.txnPerSec = secs > 0 ? double(r.txns) / secs : 0.0;
    r.sqFullCycles = stats.sum("core", "sq_full_cycles");
    r.logWrites = stats.sum("logi", "log_writes");
    r.logEntries = stats.sum("logm", "entries") +
                   stats.sum("redo", "log_entries");
    r.sourceLogged = stats.sum("logm", "source_logged");
    r.memLogWrites = stats.sum("mc", "log_writes");
    r.memDataWrites = stats.sum("mc", "data_writes");
    r.memDemandReads = stats.sum("mc", "demand_reads");
    r.memLogReads = stats.sum("mc", "log_reads");
    r.dramHits = stats.sum("mc", "dram_hits");
    r.dramMisses = stats.sum("mc", "dram_misses");
    r.dramRowHits = stats.sum("mc", "row_hits");
    r.dramWbEvictions = stats.sum("mc", "wb_evictions");
    return r;
}

RunResult
Runner::run(Tick limit)
{
    const Tick start = _system->eventQueue().now();
    advanceTo(limit);
    fatal_if(!allDone(), "simulation hit the tick limit before "
                         "completing (deadlock or limit too small)");
    return collect(start, _system->eventQueue().now());
}

void
Runner::advanceTo(Tick limit)
{
    if (_system->sharded()) {
        runSharded(limit);
        return;
    }
    _system->eventQueue().runUntil([this] { return allDone(); }, limit);
}

void
Runner::runSharded(Tick limit)
{
    System &sys = *_system;
    const ShardLayout &layout = sys.shardLayout();
    const std::uint32_t workers = layout.workers;
    const SystemConfig &cfg = sys.config();
    const Tick window = cfg.windowTicks ? cfg.windowTicks
                                        : cfg.hopLatency;

    // Domains each worker drives, in domain-id order (worker 0, the
    // leader, always owns the cache complex).
    std::vector<std::vector<SimDomain *>> owned(workers);
    std::vector<SimDomain *> domains;
    for (std::uint32_t d = 0; d < sys.numDomains(); ++d) {
        owned[layout.workerOfDomain(d)].push_back(&sys.domain(d));
        domains.push_back(&sys.domain(d));
    }

    // Published by the leader under the barrier's release; read by
    // workers after their matching acquire.
    struct Shared
    {
        Tick windowEnd = 0;
        bool stop = false;
    } shared;

    WindowBarrier barrier(workers - 1);

    auto run_window = [](std::vector<SimDomain *> &doms, Tick w_end) {
        // Run each owned domain's window with the domain published as
        // the thread's execution scope (the mesh and the control plane
        // attribute sends/ops to it).
        for (SimDomain *d : doms) {
            SimDomain::Scope scope(d);
            d->queue().run(w_end - 1);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (std::uint32_t w = 1; w < workers; ++w) {
        threads.emplace_back([&shared, &barrier, &owned, &run_window,
                              w] {
            for (;;) {
                barrier.workerArrive();
                if (shared.stop)
                    return;
                run_window(owned[w], shared.windowEnd);
            }
        });
    }

    Mesh &mesh = sys.mesh();
    std::vector<SimDomain::ControlOp> ctrl_scratch;
    for (;;) {
        barrier.leaderWait();  // every domain parked: exclusive access

        // Merge + route last window's sends, run the control plane,
        // then flush again: control ops (truncate completions, AUS
        // grants) may themselves emit mesh traffic whose deliveries
        // must be queued before the next window is chosen.
        mesh.shardFlush();
        drainControlOps(domains, ctrl_scratch);
        mesh.shardFlush();

        Tick next = kTickNever;
        for (SimDomain *d : domains)
            next = std::min(next, d->queue().nextTick());

        if (allDone() || next == kTickNever || next > limit) {
            shared.stop = true;
            barrier.leaderRelease();
            break;
        }
        // Shrinking a window is always conservative; clamp to the
        // caller's limit so no event past it executes (matching the
        // sequential kernel's strict limit semantics).
        const Tick cap = limit == kTickNever ? kTickNever : limit + 1;
        shared.windowEnd = std::min(next + window, cap);
        barrier.leaderRelease();
        run_window(owned[0], shared.windowEnd);
    }
    for (auto &t : threads)
        t.join();
}

Tick
Runner::runUntilCrash(double fraction, std::uint64_t crash_seed)
{
    fatal_if(_system->sharded(),
             "crash injection requires the sequential kernel "
             "(numShards = 0)");
    EventQueue &eq = _system->eventQueue();
    const std::uint64_t target = std::uint64_t(
        fraction * double(_txnsPerCore) * _system->numCores());

    eq.runUntil([this, target] { return committed() >= target; });

    // Jitter the exact crash point so sweeps hit different machine
    // states (mid-log-write, mid-flush, mid-truncate, ...).
    Random rng(crash_seed);
    const Cycles extra = rng.below(2000);
    const Tick deadline = eq.now() + extra;
    eq.run(deadline);

    _system->powerFail();
    return eq.now();
}

} // namespace atomsim
