/**
 * @file
 * Crash-campaign cells: one (workload x design x crash-point x
 * config-shape x seed) coordinate of the crash-fuzzing sweep
 * (bench/crash_campaign.cc), serializable to a compact ID so a cell
 * can cross a process boundary (the campaign fan-out runs every cell
 * in a child process) and be replayed from a bug report verbatim.
 *
 * The shrinker reduces a failing cell to a minimal reproducer: bisect
 * the crash tick, then greedily shrink cores / L2 size / run length
 * while the failure still reproduces. It is parameterized over the
 * failure predicate, so tests can drive it against a synthetic
 * failure with a known minimal cell (tests/test_crash_cell.cc) and
 * the campaign can point it at real child-process runs.
 */

#ifndef ATOMSIM_HARNESS_CRASH_CELL_HH
#define ATOMSIM_HARNESS_CRASH_CELL_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "atom/recovery.hh"
#include "sim/config.hh"
#include "sim/types.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/** One coordinate of the crash-fuzzing sweep. */
struct CrashCell
{
    /** Workload name: hash, queue, btree, rbtree, sdg, sps or tpcc.
     * TPC-C sizes its database from initialItems (see makeWorkload);
     * entryBytes is ignored there. */
    std::string workload = "hash";
    DesignKind design = DesignKind::Atom;
    /** Fraction of the work completed before the (jittered) crash.
     * Ignored when crashTick pins an exact crash point. */
    double fraction = 0.5;
    /** Exact crash tick (0 = crash by fraction + seed jitter). The
     * shrinker pins this so tick bisection has a stable axis. */
    Tick crashTick = 0;
    std::uint32_t cores = 4;
    std::uint32_t l2TileKb = 8;    //!< L2 slice capacity in KB
    std::uint32_t l2Assoc = 2;
    /** Memory organization behind the controllers: 0 = flat NVM,
     * 1 = memoryMode (volatile DRAM tier, deliberately small: 1 MB
     * per MC), 2 = appDirect with the log region direct-to-NVM,
     * 3 = appDirect with the data region direct-to-NVM. */
    std::uint32_t hybrid = 0;
    std::uint32_t entryBytes = 512;
    std::uint32_t initialItems = 32;
    std::uint32_t txnsPerCore = 10;
    std::uint64_t seed = 62;
    // Memory-system shape axes (campaign default 4 each; the ID omits
    // the token at the default, so historical IDs stay canonical).
    /** Atomicity Units per memory controller
     * (SystemConfig::ausPerMc); sizes the AUS undo-slot pool the
     * crash cuts through. */
    std::uint32_t ausPerMc = 4;
    /** Memory controllers (power of two; address interleaving). */
    std::uint32_t numMemCtrls = 4;
    // Fault-model axes (0 = fault disabled; the ID omits the token).
    /** 1 = in-flight device writes tear at a seeded word boundary at
     * power failure (SystemConfig::tornWrites). */
    std::uint32_t tornWords = 0;
    /** Per-read media error numerator out of 65536
     * (SystemConfig::mediaErrorPer64k). */
    std::uint32_t mediaRate = 0;
    /** Crash recovery itself after this percent of its record
     * applications, then restart it (Runner::crashDuringRecovery). */
    std::uint32_t recoverPct = 0;
    // Flash-tier axes (0 = tier off; the ID omits the token).
    /** Durability policy with the SSD tier enabled: 0 = tier off,
     * 1 = strict, 2 = balanced, 3 = eventual
     * (SystemConfig::durabilityPolicy). */
    std::uint32_t durability = 0;
    /** 1 = land the power failure while a destage is in flight
     * (Runner::runUntilDestageCrash); requires durability != 0 and an
     * undo design (the destage triggers are LogM truncation hooks). */
    std::uint32_t destageCrash = 0;

    /** Compact, order-stable ID, e.g.
     * "hash:atom:f50:c4:l8x2:e512:i32:t10:h0:s62" (+":a<aus>" /
     * ":n<mcs>" when the memory-system shape leaves the default 4,
     * +":w1" / ":m<rate>" / ":r<pct>" for each enabled fault axis,
     * +":d<policy>" / ":x1" for the flash-tier axes, +":k<tick>" when
     * the crash tick is pinned; default-valued tail tokens are omitted
     * so pre-existing IDs stay canonical). parse(id()) round-trips. */
    std::string id() const;

    /** Parse an ID back into a cell (nullopt on malformed input). */
    static std::optional<CrashCell> parse(const std::string &id);

    /** Machine configuration this cell runs (validated). */
    SystemConfig config() const;

    /** Workload-size parameters this cell runs. */
    MicroParams params() const;

    /** Instantiate the cell's workload (nullptr for a bad name). */
    std::unique_ptr<Workload> makeWorkload() const;
};

/** Verdict of one cell run. */
struct CellOutcome
{
    /** Consistent after crash + recovery (fault empty). */
    bool consistent = false;
    /** Tick the power failure was injected at. */
    Tick crashTick = 0;
    RecoveryReport report;
    /** Media read retries during the run (sum of mcN.media_retries):
     * evidence the m axis actually injected errors. */
    std::uint64_t mediaRetries = 0;
    /** Hard media read failures during the run (bounded retry
     * exhausted); each was surfaced as a MediaFaultRecord, never as
     * silent corruption, so an injected-error cell stays consistent. */
    std::uint32_t hardMediaFaults = 0;
    /** Structured checkConsistency diagnostic ("" when consistent). */
    std::string fault;
};

/**
 * Run one cell end to end: build the system, run to the crash point,
 * cut power, recover from the durable image alone (crashing and
 * restarting recovery itself when cell.recoverPct > 0), and check the
 * workload's structural invariants on that image. NON-ATOMIC cells
 * are liveness probes: the design provides no atomicity, so neither
 * the consistency checker nor the ADR critical state is expected --
 * the cell only proves the crash/recover/fault machinery doesn't
 * wedge or crash the simulator.
 */
CellOutcome runCrashCell(const CrashCell &cell);

/** Failure predicate: true when @p cell still reproduces the bug. */
using CellPredicate = std::function<bool(const CrashCell &)>;

/**
 * Shrink @p failing (which @p fails must accept) to a minimal
 * reproducer: pin + bisect the crash tick, then greedily halve cores,
 * L2 capacity, transactions, initial items and entry bytes while the
 * failure reproduces, re-bisecting the tick after each pass until a
 * fixed point. Every candidate the shrinker accepts satisfies
 * @p fails, so the result is always a true reproducer.
 *
 * @param failing   the failing cell (crashTick may be 0)
 * @param failTick  observed crash tick of the failing run (bisection
 *                  upper bound; used when failing.crashTick == 0)
 * @param fails     the failure predicate (child-process run, or a
 *                  synthetic predicate in tests)
 * @param log       optional: appended with one line per shrink step
 */
CrashCell shrinkCell(const CrashCell &failing, Tick failTick,
                     const CellPredicate &fails,
                     std::string *log = nullptr);

/**
 * Render a minimal cell as a ready-to-paste gtest regression body for
 * tests/test_recovery.cc (see the "campaign regressions" section
 * there for landed examples).
 */
std::string regressionBody(const CrashCell &cell,
                           const std::string &fault);

} // namespace atomsim

#endif // ATOMSIM_HARNESS_CRASH_CELL_HH
