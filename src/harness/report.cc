#include "harness/report.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "sim/stats.hh"

namespace atomsim
{

ReportTable::ReportTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

std::string
ReportTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
ReportTable::str() const
{
    std::vector<std::size_t> widths(_headers.size(), 0);
    for (std::size_t i = 0; i < _headers.size(); ++i)
        widths[i] = _headers[i].size();
    for (const auto &row : _rows) {
        for (std::size_t i = 0; i < row.size() && i < widths.size();
             ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            out << cell;
            for (std::size_t p = cell.size(); p < widths[i] + 2; ++p)
                out << ' ';
        }
        out << '\n';
    };
    emit(_headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto &row : _rows)
        emit(row);
    return out.str();
}

void
ReportTable::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

// --- JsonWriter ------------------------------------------------------

void
JsonWriter::separate()
{
    if (_afterKey) {
        _afterKey = false;
        return;
    }
    if (!_hasElem.empty()) {
        if (_hasElem.back())
            _out += ',';
        _hasElem.back() = true;
    }
}

void
JsonWriter::escape(const std::string &s)
{
    _out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            _out += "\\\"";
            break;
          case '\\':
            _out += "\\\\";
            break;
          case '\n':
            _out += "\\n";
            break;
          case '\t':
            _out += "\\t";
            break;
          case '\r':
            _out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                _out += buf;
            } else {
                _out += c;
            }
        }
    }
    _out += '"';
}

void
JsonWriter::beginObject()
{
    separate();
    _out += '{';
    _hasElem.push_back(false);
}

void
JsonWriter::endObject()
{
    _hasElem.pop_back();
    _out += '}';
}

void
JsonWriter::beginArray()
{
    separate();
    _out += '[';
    _hasElem.push_back(false);
}

void
JsonWriter::endArray()
{
    _hasElem.pop_back();
    _out += ']';
}

void
JsonWriter::key(const std::string &k)
{
    separate();
    escape(k);
    _out += ':';
    _afterKey = true;
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    escape(v);
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    _out += buf;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", (long long)v);
    _out += buf;
}

void
JsonWriter::value(double v)
{
    separate();
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    _out += buf;
}

void
JsonWriter::value(bool v)
{
    separate();
    _out += v ? "true" : "false";
}

void
JsonWriter::statsObject(const std::string &k, const StatSet &stats)
{
    key(k);
    beginObject();
    for (const auto &entry : stats.dump())
        kv(entry.first, entry.second);
    endObject();
}

bool
JsonWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fputs(_out.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
}

std::uint64_t
LatencyHistogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &b : _buckets)
        total += b.load(std::memory_order_relaxed);
    return total;
}

Tick
LatencyHistogram::percentile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    // Rank of the sample at quantile q (nearest-rank definition).
    const auto rank = std::uint64_t(q * double(total - 1));
    std::uint64_t seen = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
        seen += _buckets[b].load(std::memory_order_relaxed);
        if (seen > rank)
            return bucketFloor(b);
    }
    return bucketFloor(kBuckets - 1);
}

void
writeLatencyObject(JsonWriter &w, const std::string &k,
                   const LatencyHistogram &h)
{
    w.key(k);
    w.beginObject();
    w.kv("count", h.count());
    w.kv("p50", h.percentile(0.50));
    w.kv("p95", h.percentile(0.95));
    w.kv("p99", h.percentile(0.99));
    w.endObject();
}

std::string
statsJsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats-json") != 0)
            continue;
        if (i + 1 >= argc) {
            std::fprintf(stderr,
                         "--stats-json requires a path argument; no "
                         "JSON will be written\n");
            return "";
        }
        return argv[i + 1];
    }
    return "";
}

} // namespace atomsim
