#include "harness/report.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace atomsim
{

ReportTable::ReportTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

std::string
ReportTable::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
ReportTable::str() const
{
    std::vector<std::size_t> widths(_headers.size(), 0);
    for (std::size_t i = 0; i < _headers.size(); ++i)
        widths[i] = _headers[i].size();
    for (const auto &row : _rows) {
        for (std::size_t i = 0; i < row.size() && i < widths.size();
             ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            out << cell;
            for (std::size_t p = cell.size(); p < widths[i] + 2; ++p)
                out << ' ';
        }
        out << '\n';
    };
    emit(_headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto &row : _rows)
        emit(row);
    return out.str();
}

void
ReportTable::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fflush(stdout);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / double(values.size()));
}

} // namespace atomsim
