/**
 * @file
 * Full-system assembly: builds the machine of Table I plus the
 * configured design, and owns every component.
 */

#ifndef ATOMSIM_HARNESS_SYSTEM_HH
#define ATOMSIM_HARNESS_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "atom/logi.hh"
#include "atom/logm.hh"
#include "atom/recovery.hh"
#include "cache/l1_cache.hh"
#include "cache/l2_cache.hh"
#include "cpu/core.hh"
#include "designs/design.hh"
#include "designs/redo_engine.hh"
#include "mem/address_map.hh"
#include "mem/mc_port.hh"
#include "mem/memory_controller.hh"
#include "mem/phys_mem.hh"
#include "mem/ssd_device.hh"
#include "net/mesh.hh"
#include "os/log_space.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"

namespace atomsim
{

/** The simulated machine. */
class System
{
  public:
    /**
     * @param cfg        machine + design configuration
     * @param data_bytes size of the data region (heap space); the log
     *                   and ADR regions are laid out after it
     */
    System(const SystemConfig &cfg, Addr data_bytes);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Domain 0's queue: the whole machine when sequential, core 0's
     * tile when sharded -- the clock transaction timing is measured
     * against. */
    EventQueue &eventQueue() { return _domains[0]->queue(); }

    // --- sharding -----------------------------------------------------

    /** True when built with cfg.numShards > 0. */
    bool sharded() const { return _layout.sharded(); }
    const ShardLayout &shardLayout() const { return _layout; }
    std::uint32_t numDomains() const
    {
        return std::uint32_t(_domains.size());
    }
    SimDomain &domain(std::uint32_t d) { return *_domains[d]; }

    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }
    const SystemConfig &config() const { return _cfg; }
    const AddressMap &addressMap() const { return _amap; }

    DataImage &archMem() { return _arch; }
    DataImage &nvmImage() { return _nvm; }

    Core &core(CoreId id) { return *_cores[id]; }
    const Core &core(CoreId id) const { return *_cores[id]; }
    L1Cache &l1(CoreId id) { return *_l1s[id]; }
    L2Tile &l2Tile(std::uint32_t t) { return *_tiles[t]; }
    MemoryController &memCtrl(McId m) { return *_mcs[m]; }
    LogM *logm(McId m) { return m < _logms.size() ? _logms[m].get()
                                                  : nullptr; }

    /** Flash tier components (nullptr with cfg.ssdTier off). */
    SsdDevice *ssd(McId m)
    {
        return m < _ssds.size() ? _ssds[m].get() : nullptr;
    }
    DestageEngine *destage(McId m)
    {
        return m < _destages.size() ? _destages[m].get() : nullptr;
    }
    Mesh &mesh() { return *_mesh; }
    AusPool *ausPool() { return _ausPool.get(); }
    RedoEngine *redoEngine() { return _redo.get(); }
    DesignContext &designContext() { return *_design; }
    LogSpace &logSpace() { return *_logSpace; }

    std::uint32_t numCores() const { return _cfg.numCores; }

    /** Seed the durable image from the architectural one (after
     * functional initialization: initial state is durable). */
    void makeDurableSnapshot() { _nvm = _arch.clone(); }

    /**
     * Power failure: every volatile structure (caches, SQ contents,
     * MC queues, directory, MSHRs) is lost; the ATOM critical
     * registers are ADR-flushed into the NVM image (Section IV-D).
     */
    void powerFail();

    /** Run the undo recovery routine against the NVM image. */
    RecoveryReport recover(const RecoveryOptions &opts = RecoveryOptions{});

    /** Run the redo recovery routine (REDO design). */
    RecoveryReport
    recoverRedo(const RecoveryOptions &opts = RecoveryOptions{});

    /** Structured reports of hard media read failures, across MCs. */
    std::vector<MediaFaultRecord> mediaFaults() const;

  private:
    SystemConfig _cfg;
    ShardLayout _layout;
    /** One SimDomain (event queue + shard mailboxes) per simulation
     * domain; a single entry when sequential. Domain 0 is the cache
     * complex, domain 1+m is memory controller m. */
    std::vector<std::unique_ptr<SimDomain>> _domains;
    StatSet _stats;
    AddressMap _amap;
    DataImage _arch;
    DataImage _nvm;

    std::unique_ptr<Mesh> _mesh;
    std::vector<std::unique_ptr<MemoryController>> _mcs;
    std::vector<std::unique_ptr<SsdDevice>> _ssds;
    std::vector<std::unique_ptr<DestageEngine>> _destages;
    std::vector<std::unique_ptr<McPort>> _mcPorts;
    std::unique_ptr<LogSpace> _logSpace;
    std::vector<std::unique_ptr<L2Tile>> _tiles;
    std::vector<std::unique_ptr<L1Cache>> _l1s;
    std::vector<std::unique_ptr<Core>> _cores;
    /** Set iff cfg.serializeAtomicRegions (sequential kernel only). */
    std::unique_ptr<RegionSerializer> _regionSer;

    std::unique_ptr<AusPool> _ausPool;
    std::vector<std::unique_ptr<LogM>> _logms;
    std::unique_ptr<LogI> _logi;
    std::unique_ptr<RedoEngine> _redo;
    std::unique_ptr<DesignContext> _design;

    /** Sharded: typed mesh receiver -> owning simulation domain. */
    std::unordered_map<const MeshSink *, std::uint32_t> _sinkDomain;
};

} // namespace atomsim

#endif // ATOMSIM_HARNESS_SYSTEM_HH
