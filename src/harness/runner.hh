/**
 * @file
 * Experiment runner: bridges workloads to cores, runs the simulation,
 * measures throughput, and injects crashes for recovery experiments.
 */

#ifndef ATOMSIM_HARNESS_RUNNER_HH
#define ATOMSIM_HARNESS_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/system.hh"
#include "sim/random.hh"
#include "workloads/heap.hh"
#include "workloads/workload.hh"

namespace atomsim
{

struct ShardEngine;

/**
 * Scheduler-side statistics of a sharded run (leader-owned plain
 * counters; deliberately outside the StatSet so the golden-pinned stat
 * dumps stay identical across worker counts and placements).
 */
struct ShardRunStats
{
    std::uint64_t barriers = 0;     //!< window barriers executed
    std::uint64_t grants = 0;       //!< per-domain window grants
    std::uint64_t grantedTicks = 0; //!< total granted window ticks
    Tick maxWindowTicks = 0;        //!< widest single grant
    std::uint64_t sends = 0;            //!< mesh sends collected
    std::uint64_t sameWorkerSends = 0;  //!< src/dst on one worker
    std::uint64_t routedParallel = 0;   //!< packets routed in slices
    std::uint64_t routedSerial = 0;     //!< packets routed by leader

    /** Mean granted window width in ticks (flat lookahead = 2). */
    double
    meanWindowTicks() const
    {
        return grants ? double(grantedTicks) / double(grants) : 0.0;
    }

    /** Fraction of routed packets merged serially by the leader. */
    double
    serialMergeFraction() const
    {
        const std::uint64_t routed = routedParallel + routedSerial;
        return routed ? double(routedSerial) / double(routed) : 1.0;
    }

    /** Fraction of sends whose src and dst share a worker. */
    double
    sameWorkerFraction() const
    {
        return sends ? double(sameWorkerSends) / double(sends) : 0.0;
    }
};

/** Result of one measured simulation. */
struct RunResult
{
    std::uint64_t txns = 0;
    Tick cycles = 0;
    double txnPerSec = 0.0;       //!< at the configured clock
    std::uint64_t sqFullCycles = 0;
    std::uint64_t logWrites = 0;      //!< LogI-initiated log requests
    std::uint64_t logEntries = 0;     //!< LogM entries (incl. source)
    std::uint64_t sourceLogged = 0;
    std::uint64_t memLogWrites = 0;   //!< NVM writes for log traffic
    std::uint64_t memDataWrites = 0;
    std::uint64_t memDemandReads = 0;
    std::uint64_t memLogReads = 0;
    // Hybrid memory (zero when hybridMode == NvmOnly):
    std::uint64_t dramHits = 0;        //!< DRAM-cache read hits
    std::uint64_t dramMisses = 0;      //!< DRAM-cache read misses
    std::uint64_t dramRowHits = 0;     //!< DRAM row-buffer hits
    std::uint64_t dramWbEvictions = 0; //!< dirty victims pushed to NVM
};

/**
 * Owns a System + Workload pair and drives transactions into the
 * cores at dispatch time (timing-directed trace generation).
 */
class Runner : public TransactionSource
{
  public:
    /**
     * @param cfg           machine + design configuration
     * @param workload      the workload (owned by the caller)
     * @param txns_per_core transactions each core executes
     * @param data_bytes    heap region size
     */
    Runner(const SystemConfig &cfg, Workload &workload,
           std::uint32_t txns_per_core,
           Addr data_bytes = Addr(512) * 1024 * 1024);
    ~Runner();

    /** Functional initialization + durable snapshot. */
    void setUp();

    /** Run to completion and gather the result. */
    RunResult run(Tick limit = kTickNever);

    /**
     * Advance the simulation until all cores are done or simulated
     * time reaches @p limit, whichever comes first (no failure on an
     * unfinished run -- the slicing primitive for benches). Sharded
     * runs spawn their worker threads per call.
     */
    void advanceTo(Tick limit);

    /**
     * Run until roughly @p fraction of the work is done, then cut
     * power mid-flight. Returns the tick of the crash.
     */
    Tick runUntilCrash(double fraction, std::uint64_t crash_seed = 1);

    /**
     * Run until simulated time reaches @p tick exactly, then cut
     * power. Replays a runUntilCrash run whose crash landed at
     * @p tick event-for-event (the crash-campaign shrinker's pinned
     * bisection axis). Returns the tick of the crash.
     */
    Tick crashAt(Tick tick);

    /**
     * Flash-tier crash experiment: run until a destage is in flight
     * at some controller (a page is between its NVM snapshot and its
     * durable forwarding-map entry), jitter forward a few hundred
     * cycles, then cut power. Exercises every phase of the destage
     * state machine against recovery's rehydration pass. Falls back
     * to a run-to-completion crash (at the final tick) if no destage
     * ever starts. Returns the tick of the crash.
     */
    Tick runUntilDestageCrash(std::uint64_t crash_seed = 1);

    /**
     * Double-failure experiment (call after a crash, instead of
     * system().recover()): run recovery, interrupt it after
     * @p fraction of the record applications a complete pass would
     * perform -- tearing the in-flight record's writes when
     * cfg.tornWrites -- then restart recovery from scratch. Returns
     * the restarted (complete) pass's report. Dispatches to redo
     * recovery for the REDO design.
     */
    RecoveryReport crashDuringRecovery(double fraction);

    System &system() { return *_system; }
    Workload &workload() { return _workload; }
    PersistentHeap &heap() { return *_heap; }

    /** TransactionSource: next transaction for @p core. */
    std::optional<Transaction> next(CoreId core) override;

    /**
     * TransactionSource: asynchronous fetch. Sequential runs dispatch
     * inline; sharded runs queue the fetch as a barrier control op --
     * workload transaction generation runs functional code against
     * shared state (the architectural image, the heap), so it executes
     * leader-side in canonical (tick, core) order and the result is
     * posted back into the core's domain queue.
     */
    void fetchNext(CoreId core, FetchDone done) override;

    /** Total transactions committed so far (across cores). */
    std::uint64_t committed() const;

    /** Collect the result counters from the stat set. */
    RunResult collect(Tick start_tick, Tick end_tick) const;

    /** Scheduler statistics of the sharded engine (zeros when the run
     * is sequential or hasn't started). */
    ShardRunStats shardStats() const;

    /** Latency-histogram keys: transaction classes tracked per tenant
     * (workloads tag more classes than this get clamped to the last). */
    static constexpr std::uint32_t kTxnClasses = 3;

    /**
     * Dispatch-to-completion latency histogram of (tenant, class).
     * Tenants index [0, cfg.tenantSlots()); classes follow the
     * workload's tagTxn() labels (untagged transactions land in
     * (tenant 0, class 0)). Histograms live outside the StatSet, so
     * recording never perturbs the golden-pinned stat dumps.
     */
    const LatencyHistogram &latency(std::uint32_t tenant,
                                    std::uint32_t cls) const;

  private:
    friend struct ShardEngine;

    bool allDone() const;

    /** Conservative-window parallel run loop (cfg.numShards > 0). */
    void runSharded(Tick limit);

    std::unique_ptr<ShardEngine> _engine;
    std::unique_ptr<System> _system;
    Workload &_workload;
    std::uint32_t _txnsPerCore;
    std::unique_ptr<PersistentHeap> _heap;
    std::vector<std::uint32_t> _issued;
    std::vector<Random> _rngs;
    std::uint64_t _nextTxnId = 1;
    /** (tenant, class) latency histograms; tenant-major. */
    std::vector<LatencyHistogram> _latency;
};

} // namespace atomsim

#endif // ATOMSIM_HARNESS_RUNNER_HH
