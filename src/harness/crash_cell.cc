#include "harness/crash_cell.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "harness/runner.hh"
#include "sim/logging.hh"
#include "workloads/btree_workload.hh"
#include "workloads/hash_workload.hh"
#include "workloads/queue_workload.hh"
#include "workloads/rbtree_workload.hh"
#include "workloads/sdg_workload.hh"
#include "workloads/sps_workload.hh"
#include "workloads/tpcc/tpcc_workload.hh"

namespace atomsim
{

namespace
{

/** Lowercase, separator-free design tokens for cell IDs (designName's
 * paper spellings contain '-', which the ID grammar uses). */
const char *
designToken(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Base:      return "base";
      case DesignKind::Atom:      return "atom";
      case DesignKind::AtomOpt:   return "atomopt";
      case DesignKind::NonAtomic: return "nonatomic";
      case DesignKind::Redo:      return "redo";
    }
    return "?";
}

std::optional<DesignKind>
designFromToken(const std::string &token)
{
    for (DesignKind k : {DesignKind::Base, DesignKind::Atom,
                         DesignKind::AtomOpt, DesignKind::NonAtomic,
                         DesignKind::Redo}) {
        if (token == designToken(k))
            return k;
    }
    return std::nullopt;
}

/** Strict unsigned parse of @p s after its one-letter prefix. */
bool
parseField(const std::string &s, char prefix, std::uint64_t &out)
{
    if (s.size() < 2 || s[0] != prefix)
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str() + 1, &end, 10);
    return end && *end == '\0';
}

} // namespace

std::string
CrashCell::id() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s:%s:f%d:c%u:l%ux%u:e%u:i%u:t%u:h%u:s%llu",
                  workload.c_str(), designToken(design),
                  int(fraction * 100.0 + 0.5), cores, l2TileKb, l2Assoc,
                  entryBytes, initialItems, txnsPerCore, hybrid,
                  (unsigned long long)seed);
    std::string s = buf;
    // Tail tokens append only when off-default, in canonical
    // a < n < w < m < r < d < x < k order, so every pre-existing ID
    // stays its own canonical form.
    if (ausPerMc != 4)
        s += ":a" + std::to_string(ausPerMc);
    if (numMemCtrls != 4)
        s += ":n" + std::to_string(numMemCtrls);
    if (tornWords != 0)
        s += ":w" + std::to_string(tornWords);
    if (mediaRate != 0)
        s += ":m" + std::to_string(mediaRate);
    if (recoverPct != 0)
        s += ":r" + std::to_string(recoverPct);
    if (durability != 0)
        s += ":d" + std::to_string(durability);
    if (destageCrash != 0)
        s += ":x" + std::to_string(destageCrash);
    if (crashTick != 0) {
        std::snprintf(buf, sizeof(buf), ":k%llu",
                      (unsigned long long)crashTick);
        s += buf;
    }
    return s;
}

std::optional<CrashCell>
CrashCell::parse(const std::string &id)
{
    std::vector<std::string> tok;
    std::size_t start = 0;
    while (start <= id.size()) {
        const std::size_t colon = id.find(':', start);
        if (colon == std::string::npos) {
            tok.push_back(id.substr(start));
            break;
        }
        tok.push_back(id.substr(start, colon - start));
        start = colon + 1;
    }
    if (tok.size() < 10 || tok.size() > 18)
        return std::nullopt;

    CrashCell cell;
    cell.workload = tok[0];
    if (!cell.makeWorkload())
        return std::nullopt;
    const auto design = designFromToken(tok[1]);
    if (!design)
        return std::nullopt;
    cell.design = *design;

    std::uint64_t pct = 0, cores = 0, entry = 0, items = 0, txns = 0,
                  hyb = 0, seed = 0;
    if (!parseField(tok[2], 'f', pct) || pct > 100 ||
        !parseField(tok[3], 'c', cores) || cores == 0 ||
        !parseField(tok[5], 'e', entry) || entry == 0 || entry % 8 ||
        !parseField(tok[6], 'i', items) ||
        !parseField(tok[7], 't', txns) || txns == 0 ||
        !parseField(tok[8], 'h', hyb) || hyb > 3 ||
        !parseField(tok[9], 's', seed)) {
        return std::nullopt;
    }
    // l<KB>x<assoc>
    const std::size_t x = tok[4].find('x');
    if (tok[4].size() < 4 || tok[4][0] != 'l' || x == std::string::npos)
        return std::nullopt;
    std::uint64_t l2kb = 0, assoc = 0;
    if (!parseField(tok[4].substr(0, x), 'l', l2kb) || l2kb == 0 ||
        !parseField("x" + tok[4].substr(x + 1), 'x', assoc) || !assoc) {
        return std::nullopt;
    }

    // Optional tail tokens in canonical a < n < w < m < r < d < x < k
    // order,
    // each at most once. A value that never round-trips (id() omits
    // the token at zero for the fault axes and at the default 4 for
    // the shape axes) is malformed, like k0 or a4.
    std::size_t next = 10;
    std::uint64_t aus = 4, mcs = 4;
    if (next < tok.size() && parseField(tok[next], 'a', aus)) {
        if (aus == 0 || aus == 4)
            return std::nullopt;
        ++next;
    } else {
        aus = 4;
    }
    if (next < tok.size() && parseField(tok[next], 'n', mcs)) {
        if (mcs == 0 || mcs == 4 || (mcs & (mcs - 1)) != 0)
            return std::nullopt;
        ++next;
    } else {
        mcs = 4;
    }
    std::uint64_t torn = 0, media = 0, rpct = 0;
    if (next < tok.size() && parseField(tok[next], 'w', torn)) {
        if (torn != 1)
            return std::nullopt;
        ++next;
    }
    if (next < tok.size() && parseField(tok[next], 'm', media)) {
        if (media == 0 || media > 65536)
            return std::nullopt;
        ++next;
    }
    if (next < tok.size() && parseField(tok[next], 'r', rpct)) {
        if (rpct == 0 || rpct > 100)
            return std::nullopt;
        ++next;
    }
    std::uint64_t dur = 0, dcrash = 0;
    if (next < tok.size() && parseField(tok[next], 'd', dur)) {
        if (dur == 0 || dur > 3)
            return std::nullopt;
        ++next;
    }
    if (next < tok.size() && parseField(tok[next], 'x', dcrash)) {
        // Crashing mid-destage needs the tier on, and the destage
        // triggers are LogM truncation hooks -- undo designs only.
        if (dcrash != 1 || dur == 0)
            return std::nullopt;
        if (cell.design != DesignKind::Base &&
            cell.design != DesignKind::Atom &&
            cell.design != DesignKind::AtomOpt) {
            return std::nullopt;
        }
        ++next;
    }
    if (next < tok.size()) {
        std::uint64_t tick = 0;
        if (!parseField(tok[next], 'k', tick) || tick == 0)
            return std::nullopt;
        cell.crashTick = tick;
        ++next;
    }
    if (next != tok.size())
        return std::nullopt;

    // The REDO comparator's frame stream has no torn-write detector
    // (its meta line is magic + count + raw slot words); torn-write
    // cells are only meaningful for the checksummed undo designs.
    if (torn != 0 && cell.design == DesignKind::Redo)
        return std::nullopt;

    cell.fraction = double(pct) / 100.0;
    cell.cores = std::uint32_t(cores);
    cell.l2TileKb = std::uint32_t(l2kb);
    cell.l2Assoc = std::uint32_t(assoc);
    cell.entryBytes = std::uint32_t(entry);
    cell.initialItems = std::uint32_t(items);
    cell.txnsPerCore = std::uint32_t(txns);
    cell.hybrid = std::uint32_t(hyb);
    cell.seed = seed;
    cell.ausPerMc = std::uint32_t(aus);
    cell.numMemCtrls = std::uint32_t(mcs);
    cell.tornWords = std::uint32_t(torn);
    cell.mediaRate = std::uint32_t(media);
    cell.recoverPct = std::uint32_t(rpct);
    cell.durability = std::uint32_t(dur);
    cell.destageCrash = std::uint32_t(dcrash);
    return cell;
}

SystemConfig
CrashCell::config() const
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.l2Tiles = cores;
    cfg.meshRows = cores >= 4 ? 2 : 1;
    cfg.ausPerMc = ausPerMc;
    cfg.numMemCtrls = numMemCtrls;
    cfg.design = design;
    cfg.l2TileBytes = l2TileKb * 1024;
    cfg.l2Assoc = l2Assoc;
    // The machine seed stays at its default: the cell seed drives the
    // workload, the crash jitter AND the fault-injection hashes, so a
    // cell ID replays a bug report on a stock machine verbatim.
    if (hybrid != 0) {
        // Keep the volatile tier small: with the default 16 MB per MC
        // the whole working set lives in DRAM, every dangerous
        // writeback is absorbed, and the NVM crash path under test is
        // never exercised.
        cfg.hybridMode =
            hybrid == 1 ? HybridMode::MemoryMode : HybridMode::AppDirect;
        cfg.appDirectRegion = hybrid == 3 ? AppDirectRegion::DataRegion
                                          : AppDirectRegion::LogRegion;
        cfg.dramCacheMBPerMc = 1;
    }
    // TPC-C's atomic regions mutate SHARED structures (B+-trees,
    // district rows); crash consistency then requires the lock-based
    // isolation ATOM assumes from software, emulated by serializing
    // regions. The per-core micro workloads never share written lines.
    cfg.serializeAtomicRegions = workload == "tpcc";
    cfg.tornWrites = tornWords != 0;
    cfg.mediaErrorPer64k = mediaRate;
    cfg.faultSeed = seed;
    if (durability != 0) {
        // Flash tier: aggressive destaging (watermark 0) and short
        // flash latencies so the small campaign runs actually push
        // pages through the whole pipeline before their crash point.
        cfg.ssdTier = true;
        cfg.durabilityPolicy = durability == 1 ? DurabilityPolicy::Strict
                               : durability == 2
                                   ? DurabilityPolicy::Balanced
                                   : DurabilityPolicy::Eventual;
        cfg.ssdColdPageWatermark = 0;
        cfg.ssdFlashPagesPerMc = 256;
        cfg.ssdMaxDestageBacklog = 4;
        cfg.ssdReadLatency = 2000;
        cfg.ssdProgramLatency = 5000;
    }
    // Crash cells always run the sequential kernel (numShards stays 0:
    // crash injection requires it, and REDO only supports sequential
    // runs anyway), so every design in the grid is valid here.
    cfg.validate();
    return cfg;
}

MicroParams
CrashCell::params() const
{
    MicroParams p;
    p.entryBytes = entryBytes;
    p.initialItems = initialItems;
    p.txnsPerCore = txnsPerCore;
    p.seed = seed;
    return p;
}

std::unique_ptr<Workload>
CrashCell::makeWorkload() const
{
    const MicroParams p = params();
    if (workload == "hash")
        return std::make_unique<HashWorkload>(p);
    if (workload == "queue")
        return std::make_unique<QueueWorkload>(p);
    if (workload == "btree")
        return std::make_unique<BTreeWorkload>(p);
    if (workload == "rbtree")
        return std::make_unique<RbTreeWorkload>(p);
    if (workload == "sdg")
        return std::make_unique<SdgWorkload>(p);
    if (workload == "sps")
        return std::make_unique<SpsWorkload>(p);
    if (workload == "tpcc") {
        // The shrinker drives initialItems, so the whole database
        // scales (monotonically) from that one axis; entryBytes has
        // no meaning for the fixed TPC-C row layouts.
        tpcc::ScaleParams scale;
        scale.customersPerDistrict = std::max(4u, initialItems / 4);
        scale.items = std::max(32u, initialItems * 4);
        return std::make_unique<TpccWorkload>(scale);
    }
    return nullptr;
}

CellOutcome
runCrashCell(const CrashCell &cell)
{
    CellOutcome out;
    auto workload = cell.makeWorkload();
    if (!workload) {
        out.fault = "unknown workload: " + cell.workload;
        return out;
    }
    const SystemConfig cfg = cell.config();
    Runner runner(cfg, *workload, cell.txnsPerCore,
                  Addr(64) * 1024 * 1024);
    runner.setUp();
    // A pinned tick always replays exactly (the shrinker's bisection
    // axis, also for destage-crash cells); otherwise the x axis hunts
    // for an in-flight destage and the default jitters by fraction.
    out.crashTick = cell.crashTick != 0 ? runner.crashAt(cell.crashTick)
                    : cell.destageCrash != 0
                        ? runner.runUntilDestageCrash(cell.seed)
                        : runner.runUntilCrash(cell.fraction, cell.seed);
    if (cell.recoverPct > 0) {
        // Double-failure cell: recovery itself crashes part-way (its
        // in-flight writes torn when the w axis is also set), then
        // restarts from scratch.
        out.report =
            runner.crashDuringRecovery(double(cell.recoverPct) / 100.0);
    } else {
        out.report = cfg.design == DesignKind::Redo
                         ? runner.system().recoverRedo()
                         : runner.system().recover();
    }
    out.mediaRetries = runner.system().stats().sum("mc", "media_retries");
    out.hardMediaFaults =
        std::uint32_t(runner.system().mediaFaults().size());
    if (cfg.design == DesignKind::NonAtomic) {
        // Liveness probe: NON-ATOMIC guarantees nothing across a
        // crash, so there is no consistency to check and no ADR
        // critical state to find. Reaching this point at all is the
        // verdict.
        out.consistent = true;
        return out;
    }
    DirectAccessor durable(runner.system().nvmImage());
    out.fault = workload->checkConsistency(durable, cfg.numCores);
    if (out.fault.empty() && !out.report.criticalStateFound)
        out.fault = "recovery: ADR critical state missing";
    out.consistent = out.fault.empty();
    return out;
}

CrashCell
shrinkCell(const CrashCell &failing, Tick failTick,
           const CellPredicate &fails, std::string *log)
{
    auto note = [log](const std::string &line) {
        if (log) {
            *log += line;
            *log += '\n';
        }
    };

    CrashCell best = failing;

    // Pin the crash tick so the bisection axis is stable. Replaying
    // the observed tick is byte-identical to the fractional run by
    // determinism; if the caller's failTick does not reproduce (stale
    // report, wrong cell), fall back to the fractional crash.
    if (best.crashTick == 0 && failTick != 0) {
        CrashCell pinned = best;
        pinned.crashTick = failTick;
        if (fails(pinned)) {
            best = pinned;
            note("pin: crash tick " + std::to_string(failTick));
        } else {
            note("pin: tick " + std::to_string(failTick) +
                 " did not reproduce; keeping fractional crash");
        }
    }

    // Bisect to the earliest failing crash tick. Crashing at tick 0
    // recovers the setUp snapshot, which is consistent by
    // construction, so the invariant lo=passing / hi=failing holds.
    const auto bisectTick = [&] {
        if (best.crashTick == 0)
            return;
        Tick lo = 0;
        Tick hi = best.crashTick;
        while (hi - lo > 1) {
            const Tick mid = lo + (hi - lo) / 2;
            CrashCell cand = best;
            cand.crashTick = mid;
            if (fails(cand))
                hi = mid;
            else
                lo = mid;
        }
        if (hi != best.crashTick) {
            note("bisect: crash tick " +
                 std::to_string(best.crashTick) + " -> " +
                 std::to_string(hi));
            best.crashTick = hi;
        }
    };
    bisectTick();

    // Greedy shrink over every shrinkable axis, to a fixed point:
    // halve while the failure reproduces, then refine by single steps
    // (halving 12 visits 6, 3, 1 and would miss a true minimum of 2).
    // Any accepted shrink moves the timeline, so re-bisect the tick
    // after each productive round.
    const auto tryShrink = [&](CrashCell cand, const char *what) {
        if (!fails(cand))
            return false;
        best = cand;
        note(std::string("shrink ") + what + ": " + best.id());
        return true;
    };
    const auto shrinkAxis = [&](std::uint32_t CrashCell::*axis,
                                std::uint32_t floor, std::uint32_t step,
                                const char *what) {
        bool changed = false;
        while (best.*axis / 2 >= floor) {
            CrashCell cand = best;
            cand.*axis = best.*axis / 2;
            if (!tryShrink(cand, what))
                break;
            changed = true;
        }
        while (best.*axis >= floor + step) {
            CrashCell cand = best;
            cand.*axis = best.*axis - step;
            if (!tryShrink(cand, what))
                break;
            changed = true;
        }
        return changed;
    };
    // A fault axis shrinks to "off" when the failure reproduces
    // without it (the bug is then not the fault model's doing).
    const auto tryZeroAxis = [&](std::uint32_t CrashCell::*axis,
                                 const char *what) {
        if (best.*axis == 0)
            return false;
        CrashCell cand = best;
        cand.*axis = 0;
        return tryShrink(cand, what);
    };
    // A memory-shape axis shrinks back to the campaign default of 4
    // when the failure reproduces there (the ID then drops the token).
    const auto tryDefaultAxis = [&](std::uint32_t CrashCell::*axis,
                                    const char *what) {
        if (best.*axis == 4)
            return false;
        CrashCell cand = best;
        cand.*axis = 4;
        return tryShrink(cand, what);
    };
    for (int round = 0; round < 8; ++round) {
        bool changed = false;
        changed |= shrinkAxis(&CrashCell::cores, 1, 1, "cores");
        changed |= shrinkAxis(&CrashCell::l2TileKb, 1, 1, "l2kb");
        changed |= shrinkAxis(&CrashCell::txnsPerCore, 1, 1, "txns");
        changed |= shrinkAxis(&CrashCell::initialItems, 1, 1, "items");
        // entryBytes must stay a multiple of 8 (and a word of payload).
        changed |= shrinkAxis(&CrashCell::entryBytes, 64, 8, "entry");
        changed |= tryDefaultAxis(&CrashCell::ausPerMc, "aus-default");
        changed |= tryDefaultAxis(&CrashCell::numMemCtrls,
                                  "mcs-default");
        // Fault axes: first try dropping each fault entirely, then
        // (for the rate-like axes) halve toward the weakest setting
        // that still reproduces.
        changed |= tryZeroAxis(&CrashCell::tornWords, "torn-off");
        changed |= tryZeroAxis(&CrashCell::mediaRate, "media-off");
        changed |= tryZeroAxis(&CrashCell::recoverPct, "rcrash-off");
        // Flash-tier axes: the destage-crash hunt must drop before the
        // tier itself can (an x token without d is malformed).
        changed |= tryZeroAxis(&CrashCell::destageCrash,
                               "destage-crash-off");
        if (best.destageCrash == 0)
            changed |= tryZeroAxis(&CrashCell::durability,
                                   "durability-off");
        changed |= shrinkAxis(&CrashCell::mediaRate, 1, 1, "media");
        changed |= shrinkAxis(&CrashCell::recoverPct, 1, 1, "rcrash");
        if (!changed)
            break;
        bisectTick();
    }
    return best;
}

std::string
regressionBody(const CrashCell &cell, const std::string &fault)
{
    std::string name = cell.workload;
    name += '_';
    name += designToken(cell.design);
    name += "_s" + std::to_string(cell.seed);
    if (cell.ausPerMc != 4)
        name += "_a" + std::to_string(cell.ausPerMc);
    if (cell.numMemCtrls != 4)
        name += "_n" + std::to_string(cell.numMemCtrls);
    if (cell.tornWords != 0)
        name += "_w" + std::to_string(cell.tornWords);
    if (cell.mediaRate != 0)
        name += "_m" + std::to_string(cell.mediaRate);
    if (cell.recoverPct != 0)
        name += "_r" + std::to_string(cell.recoverPct);
    if (cell.durability != 0)
        name += "_d" + std::to_string(cell.durability);
    if (cell.destageCrash != 0)
        name += "_x" + std::to_string(cell.destageCrash);

    std::string out;
    out += "// Shrunk by bench/crash_campaign.cc from a failing sweep "
           "cell. Fault was:\n";
    out += "//   " + fault + "\n";
    out += "TEST(CampaignRegressionTest, " + name + ")\n";
    out += "{\n";
    out += "    const auto cell = CrashCell::parse(\"" + cell.id() +
           "\");\n";
    out += "    ASSERT_TRUE(cell.has_value());\n";
    out += "    const CellOutcome out = runCrashCell(*cell);\n";
    out += "    EXPECT_TRUE(out.report.criticalStateFound);\n";
    out += "    EXPECT_EQ(out.fault, \"\");\n";
    out += "}\n";
    return out;
}

} // namespace atomsim
