#include "harness/system.hh"

#include "sim/logging.hh"

namespace atomsim
{

System::System(const SystemConfig &cfg, Addr data_bytes)
    : _cfg(cfg), _amap(cfg, data_bytes)
{
    _cfg.validate();

    _mesh = std::make_unique<Mesh>(_eq, _cfg, _stats);

    for (McId m = 0; m < _cfg.numMemCtrls; ++m) {
        _mcs.push_back(std::make_unique<MemoryController>(
            m, _eq, _cfg, _nvm, _stats));
        _mcPorts.push_back(
            std::make_unique<McPort>(m, *_mesh, *_mcs.back()));
    }
    _logSpace = std::make_unique<LogSpace>(_eq, _cfg, _stats);

    for (std::uint32_t t = 0; t < _cfg.l2Tiles; ++t) {
        _tiles.push_back(std::make_unique<L2Tile>(
            t, _eq, _cfg, *_mesh, _amap, _stats));
    }
    for (CoreId c = 0; c < _cfg.numCores; ++c) {
        _l1s.push_back(std::make_unique<L1Cache>(
            c, _eq, _cfg, *_mesh, _amap, _tiles, _stats));
    }

    std::vector<L1Cache *> l1_ptrs;
    for (auto &l1 : _l1s)
        l1_ptrs.push_back(l1.get());
    std::vector<MeshSink *> mc_sinks;
    for (auto &port : _mcPorts)
        mc_sinks.push_back(port.get());
    std::vector<MeshSink *> tile_sinks;
    for (auto &tile : _tiles)
        tile_sinks.push_back(tile.get());
    for (auto &tile : _tiles) {
        tile->setL1s(l1_ptrs);
        tile->setMcPorts(mc_sinks);
    }
    for (auto &port : _mcPorts)
        port->setTileSinks(tile_sinks);

    // --- Design-specific wiring ----------------------------------------
    const bool undo_design = _cfg.design == DesignKind::Base ||
                             _cfg.design == DesignKind::Atom ||
                             _cfg.design == DesignKind::AtomOpt;

    if (undo_design) {
        _ausPool = std::make_unique<AusPool>(
            _eq, _cfg.ausPerMc, _cfg.numCores, _stats);
        auto resolve = [this](CoreId core) {
            return _ausPool->slotOf(core);
        };
        for (McId m = 0; m < _cfg.numMemCtrls; ++m) {
            _logms.push_back(std::make_unique<LogM>(
                m, _eq, _cfg, _amap, *_mcs[m], *_logSpace, _stats,
                resolve));
        }
        const bool posted = _cfg.design != DesignKind::Base;
        _logi = std::make_unique<LogI>(_eq, _cfg, *_mesh, _amap, _logms,
                                       posted, resolve, _stats);
        for (auto &l1 : _l1s)
            l1->setStoreLogger(_logi.get());

        if (_cfg.design == DesignKind::AtomOpt) {
            for (McId m = 0; m < _cfg.numMemCtrls; ++m) {
                _logms[m]->setSourceLogging(true);
                _mcPorts[m]->setSourceLogger(_logms[m].get());
            }
        }
    } else if (_cfg.design == DesignKind::Redo) {
        _ausPool = std::make_unique<AusPool>(
            _eq, _cfg.numCores, _cfg.numCores, _stats);
        _redo = std::make_unique<RedoEngine>(_eq, _cfg, _amap, _mcs,
                                             _stats);
        _redo->setSnapshot([this](CoreId core, Addr line) -> Line {
            // Coherent snapshot: L1 -> home L2 -> victim cache -> NVM.
            if (const CacheLineState *fr = _l1s[core]->array().find(line))
                return fr->data;
            const std::uint32_t home = _amap.homeTile(line);
            if (const CacheLineState *fr = _tiles[home]->array().find(
                    line)) {
                return fr->data;
            }
            if (const Line *v = _redo->victimCache().find(line))
                return *v;
            return _nvm.readLine(line);
        });
        for (auto &l1 : _l1s)
            l1->setStoreLogger(_redo.get());
        for (auto &tile : _tiles)
            tile->setVictimCache(&_redo->victimCache());
    } else {
        // NON-ATOMIC: no logger, no AUS.
        _ausPool = std::make_unique<AusPool>(
            _eq, _cfg.numCores, _cfg.numCores, _stats);
    }

    _design = std::make_unique<DesignContext>(
        _eq, _cfg, _logms, l1_ptrs, *_ausPool, _redo.get(), _stats);

    for (CoreId c = 0; c < _cfg.numCores; ++c) {
        _cores.push_back(
            std::make_unique<Core>(c, _eq, _cfg, *_l1s[c], _stats));
        _cores.back()->setHooks(_design.get());
    }
}

System::~System()
{
    // The controllers hold a raw pointer to the (soon gone) LogM gate.
    for (auto &mc : _mcs)
        mc->setWriteGate(nullptr);
}

void
System::powerFail()
{
    // ADR: the critical LogM registers reach NVM even as power drops.
    for (auto &logm : _logms)
        logm->flushCriticalState(_nvm);

    for (auto &mc : _mcs)
        mc->powerFail();
    for (auto &tile : _tiles)
        tile->powerFail();
    for (auto &l1 : _l1s)
        l1->powerFail();
    if (_redo)
        _redo->powerFail();
}

RecoveryReport
System::recover()
{
    RecoveryManager mgr(_cfg, _amap);
    return mgr.recover(_nvm);
}

RecoveryReport
System::recoverRedo()
{
    RedoRecovery mgr(_cfg, _amap);
    return mgr.recover(_nvm);
}

} // namespace atomsim
