#include "harness/system.hh"

#include "sim/logging.hh"

namespace atomsim
{

System::System(const SystemConfig &cfg, Addr data_bytes)
    : _cfg(cfg), _amap(cfg, data_bytes)
{
    _cfg.validate();

    // Simulation domains. Sequential runs use one queue for the whole
    // machine; sharded runs give every domain -- one per core+L1 tile,
    // one per L2 slice, one per MC -- its own queue *even when domains
    // share a worker*, so per-domain event order is identical for
    // every shard count (see sim/shard.hh).
    _layout = ShardLayout::make(_cfg.numShards, _cfg.numCores,
                                _cfg.l2Tiles, _cfg.numMemCtrls,
                                _cfg.shardPlacement, _cfg.meshRows,
                                _cfg.meshCols());
    const std::uint32_t ndomains = _layout.sharded() ? _layout.domains()
                                                     : 1;
    for (std::uint32_t d = 0; d < ndomains; ++d)
        _domains.push_back(
            std::make_unique<SimDomain>(d, _cfg.wheelBuckets));

    EventQueue &eq0 = _domains[0]->queue();
    auto core_queue = [this, &eq0](CoreId c) -> EventQueue & {
        return _layout.sharded()
                   ? _domains[_layout.coreDomain(c)]->queue()
                   : eq0;
    };
    auto tile_queue = [this, &eq0](std::uint32_t t) -> EventQueue & {
        return _layout.sharded()
                   ? _domains[_layout.tileDomain(t)]->queue()
                   : eq0;
    };
    auto mc_queue = [this, &eq0](McId m) -> EventQueue & {
        return _layout.sharded() ? _domains[_layout.mcDomain(m)]->queue()
                                 : eq0;
    };

    _mesh = std::make_unique<Mesh>(eq0, _cfg, _stats);

    for (McId m = 0; m < _cfg.numMemCtrls; ++m) {
        _mcs.push_back(std::make_unique<MemoryController>(
            m, mc_queue(m), _cfg, _nvm, _stats));
        // Hybrid memory: the app-direct window (empty outside
        // AppDirect mode) bypasses the controller's DRAM cache.
        _mcs.back()->setUncacheableWindow(_amap.appDirectBase(),
                                          _amap.appDirectEnd());
        _mcPorts.push_back(
            std::make_unique<McPort>(m, *_mesh, *_mcs.back()));
    }
    if (_cfg.ssdTier) {
        // Flash tier: one SSD + destage engine per controller, polled
        // from the owning MC's simulation domain -- all flash-tier
        // state is touched only from that domain, so sharded
        // byte-identity holds without any new cross-domain protocol.
        for (McId m = 0; m < _cfg.numMemCtrls; ++m) {
            _ssds.push_back(std::make_unique<SsdDevice>(
                m, mc_queue(m), _cfg, _stats));
            _destages.push_back(std::make_unique<DestageEngine>(
                m, mc_queue(m), _cfg, _amap, *_mcs[m], *_ssds[m], _nvm,
                _stats));
            _mcs[m]->setDestageEngine(_destages.back().get());
        }
    }
    {
        std::vector<EventQueue *> os_queues;
        for (McId m = 0; m < _cfg.numMemCtrls; ++m)
            os_queues.push_back(&mc_queue(m));
        _logSpace = std::make_unique<LogSpace>(std::move(os_queues),
                                               _cfg, _stats);
    }

    for (std::uint32_t t = 0; t < _cfg.l2Tiles; ++t) {
        _tiles.push_back(std::make_unique<L2Tile>(
            t, tile_queue(t), _cfg, *_mesh, _amap, _stats));
    }
    for (CoreId c = 0; c < _cfg.numCores; ++c) {
        _l1s.push_back(std::make_unique<L1Cache>(
            c, core_queue(c), _cfg, *_mesh, _amap, _tiles, _stats));
    }

    std::vector<L1Cache *> l1_ptrs;
    for (auto &l1 : _l1s)
        l1_ptrs.push_back(l1.get());
    std::vector<MeshSink *> mc_sinks;
    for (auto &port : _mcPorts)
        mc_sinks.push_back(port.get());
    std::vector<MeshSink *> tile_sinks;
    for (auto &tile : _tiles)
        tile_sinks.push_back(tile.get());
    for (auto &tile : _tiles) {
        tile->setL1s(l1_ptrs);
        tile->setMcPorts(mc_sinks);
    }
    for (auto &port : _mcPorts)
        port->setTileSinks(tile_sinks);

    // --- Design-specific wiring ----------------------------------------
    const bool undo_design = _cfg.design == DesignKind::Base ||
                             _cfg.design == DesignKind::Atom ||
                             _cfg.design == DesignKind::AtomOpt;

    if (undo_design) {
        _ausPool = std::make_unique<AusPool>(
            eq0, _cfg.ausPerMc, _cfg.numCores, _stats);
        auto resolve = [this](CoreId core) {
            return _ausPool->slotOf(core);
        };
        for (McId m = 0; m < _cfg.numMemCtrls; ++m) {
            _logms.push_back(std::make_unique<LogM>(
                m, mc_queue(m), _cfg, _amap, *_mcs[m], *_logSpace,
                _stats, resolve));
        }
        const bool posted = _cfg.design != DesignKind::Base;
        _logi = std::make_unique<LogI>(eq0, _cfg, *_mesh, _amap, _logms,
                                       posted, resolve, _stats);
        for (auto &l1 : _l1s)
            l1->setStoreLogger(_logi.get());

        if (_cfg.design == DesignKind::AtomOpt) {
            for (McId m = 0; m < _cfg.numMemCtrls; ++m) {
                _logms[m]->setSourceLogging(true);
                _mcPorts[m]->setSourceLogger(_logms[m].get());
            }
        }
    } else if (_cfg.design == DesignKind::Redo) {
        _ausPool = std::make_unique<AusPool>(
            eq0, _cfg.numCores, _cfg.numCores, _stats);
        _redo = std::make_unique<RedoEngine>(eq0, _cfg, _amap, _mcs,
                                             _stats);
        for (auto &l1 : _l1s)
            l1->setStoreLogger(_redo.get());
        for (auto &tile : _tiles)
            tile->setVictimCache(&_redo->victimCache(tile->tileId()));
    } else {
        // NON-ATOMIC: no logger, no AUS.
        _ausPool = std::make_unique<AusPool>(
            eq0, _cfg.numCores, _cfg.numCores, _stats);
    }

    _design = std::make_unique<DesignContext>(
        eq0, _cfg, _logms, l1_ptrs, *_ausPool, _redo.get(), _stats);

    if (_cfg.numTenants > 0) {
        // Multi-tenant accounting: per-core pointers into shared
        // per-tenant counters (cores of one tenant share a Counter;
        // atomic inc keeps them shard-safe).
        auto per_core = [this](const char *stat) {
            std::vector<Counter *> v(_cfg.numCores);
            for (CoreId c = 0; c < _cfg.numCores; ++c)
                v[c] = &_stats.counter(
                    "tenant" + std::to_string(_cfg.tenantOf(c)), stat);
            return v;
        };
        _design->setTenantCounters(per_core("commits"));
        _ausPool->setTenantCounters(per_core("aus_acquires"));
        if (_logi)
            _logi->setTenantCounters(per_core("log_writes"));
    }

    if (_cfg.serializeAtomicRegions)
        _regionSer = std::make_unique<RegionSerializer>();
    for (CoreId c = 0; c < _cfg.numCores; ++c) {
        _cores.push_back(std::make_unique<Core>(
            c, core_queue(c), _cfg, *_l1s[c], _stats));
        _cores.back()->setHooks(_design.get());
        _cores.back()->setRegionSerializer(_regionSer.get());
    }

    if (_layout.sharded()) {
        std::vector<SimDomain *> domains;
        for (auto &d : _domains)
            domains.push_back(d.get());

        // Deliveries execute on the receiver's domain. Typed sinks
        // resolve through a prebuilt pointer->domain map; the LogI
        // front end is special (its LogWrite handler runs at the
        // line's MC), and the only routable cb-only packet is the
        // LogAck riding a store continuation back to its core.
        _sinkDomain.clear();
        for (McId m = 0; m < _mcPorts.size(); ++m)
            _sinkDomain[_mcPorts[m].get()] = _layout.mcDomain(m);
        for (std::uint32_t t = 0; t < _tiles.size(); ++t)
            _sinkDomain[_tiles[t].get()] = _layout.tileDomain(t);
        for (CoreId c = 0; c < _l1s.size(); ++c)
            _sinkDomain[_l1s[c].get()] = _layout.coreDomain(c);

        _mesh->shardAttach(domains, _layout, [this](const Packet &p) {
            if (p.receiver) {
                if (_logi && p.receiver == _logi.get())
                    return _layout.mcDomain(_amap.memCtrl(p.addr));
                auto it = _sinkDomain.find(p.receiver);
                panic_if(it == _sinkDomain.end(),
                         "mesh packet %s with an unmapped receiver",
                         msgName(p.type));
                return it->second;
            }
            panic_if(p.type != MsgType::LogAck,
                     "cb-only mesh packet %s has no domain mapping",
                     msgName(p.type));
            return _layout.coreDomain(p.core);
        });
        _design->setSharded(std::move(domains), _layout);
    }
}

System::~System()
{
    // The controllers hold raw pointers to the (soon gone) LogM gate
    // and destage engine.
    for (auto &mc : _mcs) {
        mc->setWriteGate(nullptr);
        mc->setDestageEngine(nullptr);
    }
}

void
System::powerFail()
{
    // ADR: the critical LogM registers reach NVM even as power drops.
    for (auto &logm : _logms)
        logm->flushCriticalState(_nvm);

    for (auto &mc : _mcs)
        mc->powerFail();
    // Destage engines before devices: the engines drop their volatile
    // tracking (durable truth is the NVM forwarding map + flash
    // image), then the devices reclaim in-flight commands.
    for (auto &eng : _destages)
        eng->powerFail();
    for (auto &ssd : _ssds)
        ssd->powerFail();
    for (auto &tile : _tiles)
        tile->powerFail();
    for (auto &l1 : _l1s)
        l1->powerFail();
    if (_redo)
        _redo->powerFail();
}

RecoveryReport
System::recover(const RecoveryOptions &opts)
{
    RecoveryOptions o = opts;
    if (!o.flashImage && !_ssds.empty()) {
        o.flashImage = [this](McId m) -> const DataImage * {
            return m < _ssds.size() ? &_ssds[m]->flash() : nullptr;
        };
    }
    RecoveryManager mgr(_cfg, _amap);
    return mgr.recover(_nvm, o, &_stats);
}

RecoveryReport
System::recoverRedo(const RecoveryOptions &opts)
{
    RecoveryOptions o = opts;
    if (!o.flashImage && !_ssds.empty()) {
        o.flashImage = [this](McId m) -> const DataImage * {
            return m < _ssds.size() ? &_ssds[m]->flash() : nullptr;
        };
    }
    RedoRecovery mgr(_cfg, _amap);
    return mgr.recover(_nvm, o);
}

std::vector<MediaFaultRecord>
System::mediaFaults() const
{
    std::vector<MediaFaultRecord> all;
    for (const auto &mc : _mcs) {
        const auto &faults = mc->mediaFaults();
        all.insert(all.end(), faults.begin(), faults.end());
    }
    return all;
}

} // namespace atomsim
