/**
 * @file
 * Paper-style table/figure printing for the bench harnesses, plus the
 * machine-readable JSON export behind the benches' `--stats-json`
 * flag (bench/hybrid_sweep.cc, bench/parallel_scaling.cc).
 */

#ifndef ATOMSIM_HARNESS_REPORT_HH
#define ATOMSIM_HARNESS_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace atomsim
{

class StatSet;

/** A simple fixed-width text table writer. */
class ReportTable
{
  public:
    explicit ReportTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

    /** Format a double with @p decimals digits. */
    static std::string num(double v, int decimals = 2);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Geometric mean of a series (paper figures report gmean bars). */
double geomean(const std::vector<double> &values);

/**
 * Minimal streaming JSON emitter for the `--stats-json` exports: the
 * benches build one document per run (metadata + rows + raw stat
 * dumps) instead of forcing downstream tooling to scrape stdout
 * tables. Comma placement and nesting are managed internally; strings
 * are escaped; numbers print round-trippably.
 *
 * Usage:
 *     JsonWriter j;
 *     j.beginObject();
 *     j.kv("bench", "hybrid_sweep");
 *     j.key("rows"); j.beginArray();
 *       j.beginObject(); j.kv("mode", "memoryMode"); j.endObject();
 *     j.endArray();
 *     j.endObject();
 *     j.writeFile(path);
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key (must be inside an object). */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(double v);
    void value(bool v);
    void value(int v) { value(std::int64_t(v)); }
    void value(unsigned v) { value(std::uint64_t(v)); }

    /** key + value in one call. */
    template <typename T>
    void
    kv(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Emit every counter of @p stats as one flat "name: value"
     * object under @p k (sorted by name, so diffs are stable). */
    void statsObject(const std::string &k, const StatSet &stats);

    /** The document so far. */
    const std::string &str() const { return _out; }

    /** Write the document to @p path (returns false on I/O error). */
    bool writeFile(const std::string &path) const;

  private:
    void separate();
    void escape(const std::string &s);

    std::string _out;
    /** Nesting stack: true = some element already emitted at this
     * level (a separating comma is due). */
    std::vector<bool> _hasElem;
    bool _afterKey = false;
};

/**
 * Scan argv for `--stats-json <path>`; returns the path or "" when
 * absent. Shared by the always-built benches.
 */
std::string statsJsonPathFromArgs(int argc, char **argv);

} // namespace atomsim

#endif // ATOMSIM_HARNESS_REPORT_HH
