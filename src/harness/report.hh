/**
 * @file
 * Paper-style table/figure printing for the bench harnesses, plus the
 * machine-readable JSON export behind the benches' `--stats-json`
 * flag (bench/hybrid_sweep.cc, bench/parallel_scaling.cc).
 */

#ifndef ATOMSIM_HARNESS_REPORT_HH
#define ATOMSIM_HARNESS_REPORT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace atomsim
{

class StatSet;

/**
 * Log-bucketed latency histogram with percentile extraction.
 *
 * Buckets are exact below 16 ticks and log2-spaced with 8 sub-buckets
 * per octave above (<= 12.5% relative error on a reported percentile).
 * record() is a single relaxed atomic increment -- counts are
 * commutative, so concurrent recording from sharded workers yields the
 * same totals as a sequential run. Deliberately NOT a StatSet counter:
 * the golden-pinned stat dumps stay byte-identical whether or not a
 * harness records latencies.
 */
class LatencyHistogram
{
  public:
    static constexpr std::uint32_t kLogSub = 3;
    static constexpr std::uint32_t kSub = 1u << kLogSub;
    static constexpr std::uint32_t kBuckets = (64 - kLogSub + 1) * kSub;

    LatencyHistogram() : _buckets(kBuckets) {}

    void
    record(Tick latency)
    {
        _buckets[bucketOf(latency)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Total samples recorded. */
    std::uint64_t count() const;

    /**
     * Latency at quantile @p q in [0, 1] (0.5 = p50), as the floor of
     * the bucket holding that sample; 0 when empty.
     */
    Tick percentile(double q) const;

    /** Bucket of @p latency (exact small values, then log2 + sub). */
    static std::uint32_t
    bucketOf(Tick latency)
    {
        if (latency < 2 * kSub)
            return std::uint32_t(latency);
        const int msb = 63 - __builtin_clzll(latency);
        const std::uint32_t sub =
            std::uint32_t(latency >> (msb - int(kLogSub))) & (kSub - 1);
        return std::uint32_t(msb - int(kLogSub) + 1) * kSub + sub;
    }

    /** Smallest latency mapping to bucket @p b. */
    static Tick
    bucketFloor(std::uint32_t b)
    {
        if (b < 2 * kSub)
            return b;
        return Tick(kSub + b % kSub) << (b / kSub - 1);
    }

  private:
    std::vector<std::atomic<std::uint64_t>> _buckets;
};

/** A simple fixed-width text table writer. */
class ReportTable
{
  public:
    explicit ReportTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

    /** Format a double with @p decimals digits. */
    static std::string num(double v, int decimals = 2);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Geometric mean of a series (paper figures report gmean bars). */
double geomean(const std::vector<double> &values);

/**
 * Minimal streaming JSON emitter for the `--stats-json` exports: the
 * benches build one document per run (metadata + rows + raw stat
 * dumps) instead of forcing downstream tooling to scrape stdout
 * tables. Comma placement and nesting are managed internally; strings
 * are escaped; numbers print round-trippably.
 *
 * Usage:
 *     JsonWriter j;
 *     j.beginObject();
 *     j.kv("bench", "hybrid_sweep");
 *     j.key("rows"); j.beginArray();
 *       j.beginObject(); j.kv("mode", "memoryMode"); j.endObject();
 *     j.endArray();
 *     j.endObject();
 *     j.writeFile(path);
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key (must be inside an object). */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(double v);
    void value(bool v);
    void value(int v) { value(std::int64_t(v)); }
    void value(unsigned v) { value(std::uint64_t(v)); }

    /** key + value in one call. */
    template <typename T>
    void
    kv(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Emit every counter of @p stats as one flat "name: value"
     * object under @p k (sorted by name, so diffs are stable). */
    void statsObject(const std::string &k, const StatSet &stats);

    /** The document so far. */
    const std::string &str() const { return _out; }

    /** Write the document to @p path (returns false on I/O error). */
    bool writeFile(const std::string &path) const;

  private:
    void separate();
    void escape(const std::string &s);

    std::string _out;
    /** Nesting stack: true = some element already emitted at this
     * level (a separating comma is due). */
    std::vector<bool> _hasElem;
    bool _afterKey = false;
};

/**
 * Emit @p h as a percentile object under key @p k:
 * {"count": N, "p50": ..., "p95": ..., "p99": ...} (latencies in
 * core cycles). The serving-sweep `--stats-json` schema.
 */
void writeLatencyObject(JsonWriter &w, const std::string &k,
                        const LatencyHistogram &h);

/**
 * Scan argv for `--stats-json <path>`; returns the path or "" when
 * absent. Shared by the always-built benches.
 */
std::string statsJsonPathFromArgs(int argc, char **argv);

} // namespace atomsim

#endif // ATOMSIM_HARNESS_REPORT_HH
