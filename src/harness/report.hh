/**
 * @file
 * Paper-style table/figure printing for the bench harnesses.
 */

#ifndef ATOMSIM_HARNESS_REPORT_HH
#define ATOMSIM_HARNESS_REPORT_HH

#include <string>
#include <vector>

namespace atomsim
{

/** A simple fixed-width text table writer. */
class ReportTable
{
  public:
    explicit ReportTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

    /** Format a double with @p decimals digits. */
    static std::string num(double v, int decimals = 2);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** Geometric mean of a series (paper figures report gmean bars). */
double geomean(const std::vector<double> &values);

} // namespace atomsim

#endif // ATOMSIM_HARNESS_REPORT_HH
