/**
 * @file
 * On-NVM layout of ATOM log records (Section IV-C, Figure 4(c)).
 *
 * A log record is 512 bytes: one 64-byte header line followed by up to
 * seven 64-byte data lines holding the pre-transaction values of logged
 * cache lines. The header carries the logged line addresses, the entry
 * count, the owning AUS and a per-AUS monotonic sequence number.
 *
 * The sequence number both orders records for newest-first undo and
 * disambiguates bucket reuse: a record is valid for recovery only when
 * its sequence falls inside the AUS's [txnStartSeq, nextSeq) window,
 * so stale headers from earlier (truncated) updates are ignored without
 * any log-area scrubbing at truncation time.
 */

#ifndef ATOMSIM_ATOM_LOG_RECORD_HH
#define ATOMSIM_ATOM_LOG_RECORD_HH

#include <cstdint>
#include <optional>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace atomsim
{

/**
 * Deserialized log record header.
 *
 * On-NVM line layout (64 bytes):
 *
 *   [0]      magic (0xA7)
 *   [1]      ausId
 *   [2]      count
 *   [3]      reserved (0)
 *   [4..7]   seq
 *   [8..15]  checksum: FNV-1a over the line with this field zeroed
 *   [16..57] 7 x 48-bit line numbers (addr >> 6; entries are
 *            line-aligned, and 48+6 = 54 address bits is far beyond
 *            any simulated memory)
 *   [58..63] zero
 *
 * The checksum is the torn-write detector: under the fault model a
 * header write interrupted by power failure commits a word-aligned
 * prefix, leaving stale bytes in its tail. The magic + count checks
 * alone would accept such a header (word 0 carries them both) and
 * recovery would replay garbage addresses; the checksum in word 1
 * covers the whole line, so any tear short of full commitment fails
 * validation and the recovery scan skips the record.
 */
struct ParsedHeader;

struct LogRecordHeader
{
    static constexpr std::uint8_t kMagic = 0xA7;
    static constexpr std::uint32_t kMaxEntries = 7;

    std::uint8_t ausId = 0;
    std::uint8_t count = 0;
    std::uint32_t seq = 0;
    /** Line-aligned addresses of the logged cache lines. */
    Addr addrs[kMaxEntries] = {};

    /** Serialize into one 64-byte header line (checksum filled in). */
    Line toLine() const;

    /** Parse and validate a candidate header line. */
    static ParsedHeader parse(const Line &line);

    /**
     * Parse a header line. std::nullopt when the magic byte, entry
     * count or checksum is invalid (not a fully persisted header).
     */
    static std::optional<LogRecordHeader> fromLine(const Line &line);
};

/** Result of parsing a candidate header line. */
struct ParsedHeader
{
    std::optional<LogRecordHeader> hdr;
    /** The magic byte matched but the line failed validation
     * (checksum mismatch or impossible field): the signature of a
     * header torn mid-write, as opposed to a line that was never a
     * header at all. */
    bool torn = false;
};

} // namespace atomsim

#endif // ATOMSIM_ATOM_LOG_RECORD_HH
