/**
 * @file
 * On-NVM layout of ATOM log records (Section IV-C, Figure 4(c)).
 *
 * A log record is 512 bytes: one 64-byte header line followed by up to
 * seven 64-byte data lines holding the pre-transaction values of logged
 * cache lines. The header carries the logged line addresses, the entry
 * count, the owning AUS and a per-AUS monotonic sequence number.
 *
 * The sequence number both orders records for newest-first undo and
 * disambiguates bucket reuse: a record is valid for recovery only when
 * its sequence falls inside the AUS's [txnStartSeq, nextSeq) window,
 * so stale headers from earlier (truncated) updates are ignored without
 * any log-area scrubbing at truncation time.
 */

#ifndef ATOMSIM_ATOM_LOG_RECORD_HH
#define ATOMSIM_ATOM_LOG_RECORD_HH

#include <cstdint>
#include <optional>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Deserialized log record header. */
struct LogRecordHeader
{
    static constexpr std::uint8_t kMagic = 0xA7;
    static constexpr std::uint32_t kMaxEntries = 7;

    std::uint8_t ausId = 0;
    std::uint8_t count = 0;
    std::uint32_t seq = 0;
    /** Line-aligned addresses of the logged cache lines. */
    Addr addrs[kMaxEntries] = {};

    /** Serialize into one 64-byte header line. */
    Line toLine() const;

    /**
     * Parse a header line. std::nullopt when the magic byte or entry
     * count is invalid (not a persisted header).
     */
    static std::optional<LogRecordHeader> fromLine(const Line &line);
};

} // namespace atomsim

#endif // ATOMSIM_ATOM_LOG_RECORD_HH
