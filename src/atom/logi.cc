#include "atom/logi.hh"

#include "sim/logging.hh"

namespace atomsim
{

LogI::LogI(EventQueue &eq, const SystemConfig &cfg, Mesh &mesh,
           const AddressMap &amap,
           std::vector<std::unique_ptr<LogM>> &logms, bool posted,
           std::function<int(CoreId)> resolve_aus, StatSet &stats)
    : _eq(eq),
      _cfg(cfg),
      _mesh(mesh),
      _amap(amap),
      _logms(logms),
      _posted(posted),
      _resolveAus(std::move(resolve_aus)),
      _statLogWrites(stats.counter("logi", "log_writes"))
{
}

void
LogI::onFirstWrite(CoreId core, Addr addr, const Line &old_value,
                   CacheCallback done)
{
    const int aus = _resolveAus(core);
    panic_if(aus < 0, "onFirstWrite outside an atomic update (core %u)",
             core);
    _statLogWrites.inc();
    if (!_tenantLogWrites.empty())
        _tenantLogWrites[core]->inc();

    // Ship the log entry to the controller that owns the data line:
    // log/data co-location makes the posted-log optimization legal
    // (Section III-C, "Sources of reordering").
    const McId mc = _amap.memCtrl(addr);
    Packet &p = _mesh.make(MsgType::LogWrite);
    p.receiver = this;
    p.core = core;
    p.addr = addr;
    p.arg = std::uint32_t(aus);
    p.data = old_value;
    p.cb = std::move(done);  // resumed by the LogAck
    _mesh.send(_mesh.coreNode(core), _mesh.mcNode(mc), p);
}

void
LogI::meshDeliver(Packet &pkt)
{
    panic_if(pkt.type != MsgType::LogWrite,
             "LogI: unexpected mesh message %s", msgName(pkt.type));
    const McId mc = _amap.memCtrl(pkt.addr);
    const CoreId core = pkt.core;
    const std::uint32_t mc_node = _mesh.mcNode(mc);
    _logms[mc]->postLogEntry(
        pkt.arg, pkt.addr, pkt.data, _posted,
        [this, core, mc_node, done = std::move(pkt.cb)]() mutable {
            // The ack rides the store path's continuation back to the
            // core; stamping the core lets the sharded mesh deliver it
            // in the core's own domain.
            Packet &p = _mesh.make(MsgType::LogAck);
            p.core = core;
            p.cb = std::move(done);
            _mesh.send(mc_node, _mesh.coreNode(core), p);
        });
}

void
LogI::onStore(CoreId, Addr, const Line &, std::uint32_t,
              const std::uint8_t *, std::uint32_t, CacheCallback)
{
    panic("LogI::onStore: redo logging is handled by RedoEngine");
}

} // namespace atomsim
