#include "atom/logi.hh"

#include "sim/logging.hh"

namespace atomsim
{

LogI::LogI(EventQueue &eq, const SystemConfig &cfg, Mesh &mesh,
           const AddressMap &amap,
           std::vector<std::unique_ptr<LogM>> &logms, bool posted,
           std::function<int(CoreId)> resolve_aus, StatSet &stats)
    : _eq(eq),
      _cfg(cfg),
      _mesh(mesh),
      _amap(amap),
      _logms(logms),
      _posted(posted),
      _resolveAus(std::move(resolve_aus)),
      _statLogWrites(stats.counter("logi", "log_writes"))
{
}

void
LogI::onFirstWrite(CoreId core, Addr addr, const Line &old_value,
                   std::function<void()> done)
{
    const int aus = _resolveAus(core);
    panic_if(aus < 0, "onFirstWrite outside an atomic update (core %u)",
             core);
    _statLogWrites.inc();

    // Ship the log entry to the controller that owns the data line:
    // log/data co-location makes the posted-log optimization legal
    // (Section III-C, "Sources of reordering").
    const McId mc = _amap.memCtrl(addr);
    const std::uint32_t core_node = _mesh.coreNode(core);
    const std::uint32_t mc_node = _mesh.mcNode(mc);
    LogM *logm = _logms[mc].get();

    _mesh.send(core_node, mc_node, MsgType::LogWrite,
               [this, logm, aus, addr, old_value, core_node, mc_node,
                done = std::move(done)]() mutable {
        logm->postLogEntry(std::uint32_t(aus), addr, old_value, _posted,
                           [this, core_node, mc_node,
                            done = std::move(done)]() mutable {
            _mesh.send(mc_node, core_node, MsgType::LogAck,
                       std::move(done));
        });
    });
}

void
LogI::onStore(CoreId, Addr, std::function<void()>)
{
    panic("LogI::onStore: redo logging is handled by RedoEngine");
}

} // namespace atomsim
