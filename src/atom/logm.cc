#include "atom/logm.hh"

#include <algorithm>
#include <cstring>

#include "mem/ssd_device.hh"
#include "sim/logging.hh"

namespace atomsim
{

LogM::LogM(McId mc, EventQueue &eq, const SystemConfig &cfg,
           const AddressMap &amap, MemoryController &ctrl, LogSpace &os,
           StatSet &stats, std::function<int(CoreId)> resolve_aus)
    : _mc(mc),
      _eq(eq),
      _cfg(cfg),
      _amap(amap),
      _ctrl(ctrl),
      _os(os),
      _resolveAus(std::move(resolve_aus)),
      _buckets(cfg.ausPerMc, cfg.bucketsPerMc, cfg.osInitialBucketsPerMc),
      _aus(cfg.ausPerMc),
      _statEntries(
          stats.counter("logm" + std::to_string(mc), "entries")),
      _statRecords(
          stats.counter("logm" + std::to_string(mc), "records")),
      _statSourceLogged(
          stats.counter("logm" + std::to_string(mc), "source_logged")),
      _statOverflows(
          stats.counter("logm" + std::to_string(mc), "log_overflows")),
      _statForcedSeals(
          stats.counter("logm" + std::to_string(mc), "forced_seals")),
      _statDupEntries(
          stats.counter("logm" + std::to_string(mc), "dup_entries")),
      _statTruncations(
          stats.counter("logm" + std::to_string(mc), "truncations"))
{
    _ctrl.setWriteGate(this);
}

void
LogM::beginUpdate(std::uint32_t aus)
{
    AusState &st = _aus[aus];
    panic_if(st.active, "AUS %u already active at mc%u", aus, _mc);
    st.active = true;
    st.currentBucket = kNoBucket;
    st.currentRecord = 0;
    st.txnStartSeq = st.nextSeq;
    st.loggedLines.clear();
}

void
LogM::lock(Addr line_addr)
{
    ++_locks[lineAlign(line_addr)].count;
}

void
LogM::unlock(Addr line_addr)
{
    auto it = _locks.find(lineAlign(line_addr));
    panic_if(it == _locks.end() || it->second.count == 0,
             "unlock of a line that is not locked");
    if (--it->second.count == 0) {
        auto waiters = std::move(it->second.waiters);
        _locks.erase(it);
        for (auto &w : waiters)
            w();
    }
}

bool
LogM::lineLocked(Addr line_addr) const
{
    auto it = _locks.find(lineAlign(line_addr));
    return it != _locks.end() && it->second.count > 0;
}

bool
LogM::tryAcquire(Addr line_addr, UnlockCallback on_unlock)
{
    const Addr line = lineAlign(line_addr);
    auto it = _locks.find(line);
    if (it == _locks.end() || it->second.count == 0)
        return true;

    // The data write matched a pending record header: expedite the
    // header persist by sealing any open record holding this line.
    it->second.waiters.push_back(std::move(on_unlock));
    for (std::uint32_t a = 0; a < _aus.size(); ++a) {
        OpenRecord *open = _aus[a].open.get();
        if (open && !open->sealed) {
            for (Addr e : open->entries) {
                if (e == line) {
                    _statForcedSeals.inc();
                    sealOpen(a);
                    break;
                }
            }
        }
    }
    return false;
}

void
LogM::withOpenRecord(std::uint32_t aus, ReadyCallback ready)
{
    AusState &st = _aus[aus];
    panic_if(!st.active, "log entry for inactive AUS %u", aus);

    if (st.open && !st.open->sealed &&
        st.open->entries.size() <
            std::min<std::size_t>(_cfg.recordEntries,
                                  LogRecordHeader::kMaxEntries)) {
        ready();
        return;
    }
    if (st.open && !st.open->sealed)
        sealOpen(aus);

    // Need a fresh record; possibly a fresh bucket.
    if (st.currentBucket == kNoBucket ||
        st.currentRecord >= _amap.recordsPerBucket()) {
        auto bucket = _buckets.allocate(aus);
        if (!bucket) {
            // Log overflow: interrupt the OS for more mapped pages,
            // then retry (Section IV-E). The requesting update makes
            // forward progress with the new resources, so overflow
            // cannot deadlock.
            _statOverflows.inc();
            // Cold path: the OS interface takes a copyable
            // std::function, so the move-only continuation rides a
            // shared_ptr for this one hop.
            auto parked =
                std::make_shared<ReadyCallback>(std::move(ready));
            _os.requestMoreBuckets(
                _mc, [this, aus, parked](std::uint32_t extra) {
                    _buckets.extendMapped(extra);
                    withOpenRecord(aus, std::move(*parked));
                });
            return;
        }
        const std::uint32_t prev = st.currentBucket;
        st.currentBucket = *bucket;
        st.currentRecord = 0;
        if (prev != kNoBucket) {
            // The bucket just left behind is full: no record will be
            // appended to it until truncation frees it. That makes it
            // a cold log segment -- the destage engine's preferred
            // candidate for migration to flash.
            if (DestageEngine *eng = _ctrl.destageEngine())
                eng->onLogSegmentCold(_amap.bucketBase(_mc, prev));
        }
    }

    auto rec = std::make_unique<OpenRecord>();
    rec->base = _amap.recordBase(_mc, st.currentBucket, st.currentRecord);
    rec->seq = st.nextSeq++;
    ++st.currentRecord;
    st.open = std::move(rec);
    _statRecords.inc();
    ready();
}

void
LogM::postLogEntry(std::uint32_t aus, Addr line_addr,
                   const Line &old_value, bool posted,
                   LogAckCallback ack)
{
    const Addr line = lineAlign(line_addr);

    // Duplicate-undo suppression: the line is already covered by this
    // update's log (the address matches an AUS header register or an
    // already-persisted record). Recovery applies records newest-first,
    // so only the first pre-image per line decides the restored value;
    // a second entry would be dead weight -- and worse, each re-log of
    // a store thrashing against recalls seals a fresh record, which
    // can exhaust the log region and livelock the overflow interrupt
    // (buckets are only reclaimed at commit). Ack against the existing
    // entry instead of appending a new one.
    {
        AusState &st = _aus[aus];
        panic_if(!st.active, "log entry for inactive AUS %u", aus);
        if (st.loggedLines.count(line)) {
            _statDupEntries.inc();
            if (!ack)
                return;
            if (!posted) {
                // BASE: the ack still means "this entry is durable".
                // If the covering record's header has not persisted
                // yet, ride its persist; otherwise the entry is
                // already durable and only the address match costs.
                OpenRecord *cover = nullptr;
                if (st.open) {
                    for (Addr e : st.open->entries)
                        if (e == line)
                            cover = st.open.get();
                }
                if (!cover) {
                    for (auto &sealing : st.sealing) {
                        for (Addr e : sealing->entries)
                            if (e == line)
                                cover = sealing.get();
                        if (cover)
                            break;
                    }
                }
                if (cover) {
                    cover->persistAcks.push_back(std::move(ack));
                    return;
                }
            }
            _eq.postIn(_cfg.mcAddrMatchLatency, std::move(ack));
            return;
        }
        st.loggedLines.insert(line);
    }

    withOpenRecord(aus, [this, aus, line, old_value, posted,
                         ack = std::move(ack)]() mutable {
        AusState &st = _aus[aus];
        OpenRecord *rec = st.open.get();
        _statEntries.inc();

        const std::uint32_t slot =
            std::uint32_t(rec->entries.size());
        rec->entries.push_back(line);
        const Addr entry_addr = rec->base + Addr(slot + 1) * kLineBytes;

        // The line is "locked" (its address now sits in the record
        // header register) until the header persists.
        lock(line);

        ++rec->pendingData;
        ++st.outstandingWrites;
        const Addr rec_base = rec->base;
        _ctrl.writeLine(entry_addr, old_value, WriteKind::LogData,
                        [this, aus, rec_base] {
            AusState &s = _aus[aus];
            OpenRecord *r = nullptr;
            if (s.open && s.open->base == rec_base) {
                r = s.open.get();
            } else {
                for (auto &sealing : s.sealing) {
                    if (sealing->base == rec_base) {
                        r = sealing.get();
                        break;
                    }
                }
            }
            if (r) {
                panic_if(r->pendingData == 0, "pendingData underflow");
                --r->pendingData;
                maybeIssueHeader(aus, r);
            }
            if (--s.outstandingWrites == 0) {
                auto waiters = std::move(s.quiesceWaiters);
                s.quiesceWaiters.clear();
                for (auto &w : waiters)
                    w();
            }
        });

        if (posted) {
            // Posted-log optimization: ack after the lock is taken
            // (address-match latency); persistence is off the critical
            // path (Section III-C).
            if (ack) {
                _eq.postIn(_cfg.mcAddrMatchLatency, std::move(ack));
            }
        } else if (ack) {
            // BASE: the ack waits until the entry is durable, i.e.
            // the covering record header has persisted.
            rec->persistAcks.push_back(std::move(ack));
        }

        // LEC off (or BASE): one entry per record -> seal immediately,
        // costing 2 NVM writes per entry (Section IV-C's motivation).
        const bool lec = _cfg.enableLec && posted;
        if (!lec || rec->entries.size() >=
                        std::min<std::size_t>(
                            _cfg.recordEntries,
                            LogRecordHeader::kMaxEntries)) {
            sealOpen(aus);
        }
    });
}

void
LogM::sealOpen(std::uint32_t aus)
{
    AusState &st = _aus[aus];
    OpenRecord *rec = st.open.get();
    if (!rec || rec->sealed)
        return;
    rec->sealed = true;
    st.sealing.push_back(std::move(st.open));
    maybeIssueHeader(aus, st.sealing.back().get());
}

void
LogM::maybeIssueHeader(std::uint32_t aus, OpenRecord *rec)
{
    // Header may only persist after every entry data line of the
    // record is durable (a header must never describe garbage data).
    if (!rec->sealed || rec->headerIssued || rec->pendingData > 0)
        return;
    rec->headerIssued = true;

    LogRecordHeader hdr;
    hdr.ausId = std::uint8_t(aus);
    hdr.count = std::uint8_t(rec->entries.size());
    hdr.seq = rec->seq;
    for (std::size_t i = 0; i < rec->entries.size(); ++i)
        hdr.addrs[i] = rec->entries[i];

    AusState &st = _aus[aus];
    ++st.outstandingWrites;
    const Addr base = rec->base;
    _ctrl.writeLine(base, hdr.toLine(), WriteKind::LogHeader,
                    [this, aus, base] {
        onHeaderDurable(aus, base);
        AusState &s = _aus[aus];
        if (--s.outstandingWrites == 0) {
            auto waiters = std::move(s.quiesceWaiters);
            s.quiesceWaiters.clear();
            for (auto &w : waiters)
                w();
        }
    });
}

void
LogM::onHeaderDurable(std::uint32_t aus, Addr record_base)
{
    AusState &st = _aus[aus];
    for (auto it = st.sealing.begin(); it != st.sealing.end(); ++it) {
        if ((*it)->base != record_base)
            continue;
        std::unique_ptr<OpenRecord> rec = std::move(*it);
        st.sealing.erase(it);
        // Unlock every line in the record: in-place writes may now
        // reach NVM (Invariant 2 satisfied for these lines).
        for (Addr line : rec->entries)
            unlock(line);
        for (auto &ack : rec->persistAcks)
            ack();
        return;
    }
    panic("header durable for unknown record at %llx",
          (unsigned long long)record_base);
}

bool
LogM::sourceLogFill(CoreId core, Addr addr, const Line &old_value)
{
    if (!_sourceLogging)
        return false;
    const int aus = _resolveAus(core);
    if (aus < 0)
        return false;
    _statSourceLogged.inc();
    postLogEntry(std::uint32_t(aus), addr, old_value, true,
                 LogAckCallback{});
    return true;
}

void
LogM::truncate(std::uint32_t aus, std::function<void()> done)
{
    AusState &st = _aus[aus];
    panic_if(!st.active, "truncate of inactive AUS %u", aus);

    auto finish = [this, aus, done = std::move(done)]() mutable {
        AusState &s = _aus[aus];
        // Any still-open record's entries exist only in the header
        // register; clearing the register discards them. Their locks
        // must lift or future data writes would block forever.
        if (s.open) {
            for (Addr line : s.open->entries)
                unlock(line);
            s.open.reset();
        }
        panic_if(!s.sealing.empty(),
                 "truncate with unpersisted sealed records");

        // Flash tier: snapshot this update's freed log buckets and
        // touched data pages *before* the bucket registers clear. The
        // freed buckets must abandon any in-flight destage (their
        // records are dead; recovery's sequence window already rejects
        // them) and the data pages feed the cold-page LRU.
        DestageEngine *eng = _ctrl.destageEngine();
        std::vector<Addr> data_pages;
        std::vector<Addr> log_pages;
        if (eng) {
            data_pages.reserve(s.loggedLines.size());
            for (Addr line : s.loggedLines)
                data_pages.push_back(line & ~Addr(kPageBytes - 1));
            std::sort(data_pages.begin(), data_pages.end());
            data_pages.erase(
                std::unique(data_pages.begin(), data_pages.end()),
                data_pages.end());
            _buckets.vectorOf(aus).forEachSet([&](std::uint32_t b) {
                log_pages.push_back(_amap.bucketBase(_mc, b));
            });
        }

        _buckets.truncate(aus);
        _statTruncations.inc();
        s.loggedLines.clear();
        s.active = false;
        s.currentBucket = kNoBucket;
        s.currentRecord = 0;
        s.txnStartSeq = s.nextSeq;
        if (eng) {
            // Under the balanced policy truncation completion -- and
            // with it the commit ack -- waits until the un-destaged
            // backlog is back under its bound.
            eng->onTruncate(std::move(data_pages),
                            std::move(log_pages), std::move(done));
        } else {
            done();
        }
    };

    if (st.outstandingWrites == 0) {
        finish();
        return;
    }
    st.quiesceWaiters.push_back(std::move(finish));
}

std::uint32_t
LogM::criticalStateBytes() const
{
    // Per AUS: bucket vector (bucketsPerMc bits) + currentBucket (4) +
    // currentRecord (4) + txnStartSeq (4) + nextSeq (4) + active (1,
    // padded to 4). Plus a 16-byte region header.
    const std::uint32_t vec_bytes = (_cfg.bucketsPerMc + 7) / 8;
    return 16 + _cfg.ausPerMc * (vec_bytes + 20);
}

void
LogM::flushCriticalState(DataImage &nvm) const
{
    // ADR guarantee: these registers reach NVM even on power failure
    // (Section IV-D); the write is modeled as instantaneous.
    Addr cursor = _amap.adrBase(_mc);
    panic_if(criticalStateBytes() > kPageBytes,
             "critical state exceeds the ADR page");

    const std::uint32_t magic = 0xADA70001u;
    nvm.store32(cursor, magic);
    nvm.store32(cursor + 4, _cfg.ausPerMc);
    nvm.store32(cursor + 8, _cfg.bucketsPerMc);
    nvm.store32(cursor + 12, 0);
    cursor += 16;

    const std::uint32_t vec_bytes = (_cfg.bucketsPerMc + 7) / 8;
    for (std::uint32_t a = 0; a < _cfg.ausPerMc; ++a) {
        const AusState &st = _aus[a];
        std::vector<std::uint8_t> vec(vec_bytes, 0);
        _buckets.vectorOf(a).forEachSet([&](std::uint32_t b) {
            vec[b / 8] |= std::uint8_t(1) << (b % 8);
        });
        nvm.write(cursor, vec.size(), vec.data());
        cursor += vec_bytes;
        nvm.store32(cursor, st.currentBucket);
        nvm.store32(cursor + 4, st.currentRecord);
        nvm.store32(cursor + 8, st.txnStartSeq);
        nvm.store32(cursor + 12, st.nextSeq);
        nvm.store32(cursor + 16, st.active ? 1 : 0);
        cursor += 20;
    }
}

} // namespace atomsim
