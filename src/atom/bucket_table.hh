/**
 * @file
 * Bucket bit vectors (Section IV-C, "Log Bucket Organization").
 *
 * Each atomic update owns a bucket bit vector marking the log buckets
 * allocated to it; the free-list bit vector is the NOR of all bucket
 * vectors. Allocation and truncation are register operations -- no
 * memory traffic, and truncation of an entire update is a single-cycle
 * clear of its vector.
 */

#ifndef ATOMSIM_ATOM_BUCKET_TABLE_HH
#define ATOMSIM_ATOM_BUCKET_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace atomsim
{

/** A dynamically-sized bit vector over log buckets. */
class BucketBitVector
{
  public:
    explicit BucketBitVector(std::uint32_t buckets = 0);

    void resize(std::uint32_t buckets);

    bool test(std::uint32_t bucket) const;
    void set(std::uint32_t bucket);
    void clearBit(std::uint32_t bucket);
    /** Clear every bit (truncation: single-cycle register clear). */
    void clearAll();

    /** Number of set bits. */
    std::uint32_t popcount() const;

    /** Lowest set bit, if any. */
    std::optional<std::uint32_t> firstSet() const;

    std::uint32_t size() const { return _buckets; }

    /** Iterate indices of set bits in ascending order. */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::uint32_t w = 0; w < _words.size(); ++w) {
            std::uint64_t bits = _words[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(w * 64 + std::uint32_t(b));
                bits &= bits - 1;
            }
        }
    }

  private:
    std::uint32_t _buckets = 0;
    std::vector<std::uint64_t> _words;
};

/**
 * The per-controller bucket table: one bit vector per AUS plus the
 * derived free list.
 */
class BucketTable
{
  public:
    /**
     * @param aus_count        concurrent atomic updates supported
     * @param total_buckets    hardware-addressable bucket capacity
     * @param initially_mapped buckets the OS mapped up front; the rest
     *                         require a log-overflow grant to use
     */
    BucketTable(std::uint32_t aus_count, std::uint32_t total_buckets,
                std::uint32_t initially_mapped);

    /**
     * Allocate a free, OS-mapped bucket for @p aus.
     * @return bucket index, or std::nullopt on log overflow (all
     *         mapped buckets busy).
     */
    std::optional<std::uint32_t> allocate(std::uint32_t aus);

    /** OS grants more mapped buckets after an overflow interrupt. */
    void extendMapped(std::uint32_t extra);

    /** Truncate: clear the AUS's vector, returning buckets freed. */
    std::uint32_t truncate(std::uint32_t aus);

    /** Free-list bit: true if no AUS owns the bucket (NOR). */
    bool isFree(std::uint32_t bucket) const;

    const BucketBitVector &vectorOf(std::uint32_t aus) const;

    std::uint32_t mappedBuckets() const { return _mapped; }
    std::uint32_t totalBuckets() const { return _total; }

  private:
    std::uint32_t _total;
    std::uint32_t _mapped;
    std::vector<BucketBitVector> _vectors;
    std::uint32_t _scanHint = 0;  //!< rotate allocations (wear/fairness)
};

} // namespace atomsim

#endif // ATOMSIM_ATOM_BUCKET_TABLE_HH
