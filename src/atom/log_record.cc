#include "atom/log_record.hh"

#include <cstring>

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

constexpr std::size_t kChecksumOff = 8;
constexpr std::size_t kAddrsOff = 16;
constexpr std::size_t kAddrBytes = 6;  // 48-bit line numbers

/** FNV-1a over the line with the checksum field treated as zero. */
std::uint64_t
headerChecksum(const Line &line)
{
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const std::uint8_t byte =
            (i >= kChecksumOff && i < kChecksumOff + 8) ? 0 : line[i];
        h ^= byte;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

Line
LogRecordHeader::toLine() const
{
    Line line{};
    line[0] = kMagic;
    line[1] = ausId;
    line[2] = count;
    line[3] = 0;
    std::memcpy(line.data() + 4, &seq, sizeof(seq));
    for (std::uint32_t i = 0; i < kMaxEntries; ++i) {
        fatal_if(addrs[i] >> (8 * kAddrBytes + 6) != 0,
                 "log entry address 0x%llx exceeds the header's 54-bit "
                 "address space",
                 (unsigned long long)addrs[i]);
        const std::uint64_t line_num = addrs[i] >> 6;
        std::memcpy(line.data() + kAddrsOff + i * kAddrBytes, &line_num,
                    kAddrBytes);
    }
    const std::uint64_t sum = headerChecksum(line);
    std::memcpy(line.data() + kChecksumOff, &sum, sizeof(sum));
    return line;
}

ParsedHeader
LogRecordHeader::parse(const Line &line)
{
    ParsedHeader out;
    if (line[0] != kMagic)
        return out;  // never a header; not torn
    std::uint64_t stored = 0;
    std::memcpy(&stored, line.data() + kChecksumOff, sizeof(stored));
    if (stored != headerChecksum(line)) {
        out.torn = true;
        return out;
    }
    LogRecordHeader hdr;
    hdr.ausId = line[1];
    hdr.count = line[2];
    if (hdr.count == 0 || hdr.count > kMaxEntries)
        return out;  // checksum-valid but impossible: reject quietly
    std::memcpy(&hdr.seq, line.data() + 4, sizeof(hdr.seq));
    for (std::uint32_t i = 0; i < kMaxEntries; ++i) {
        std::uint64_t line_num = 0;
        std::memcpy(&line_num, line.data() + kAddrsOff + i * kAddrBytes,
                    kAddrBytes);
        hdr.addrs[i] = line_num << 6;
    }
    out.hdr = hdr;
    return out;
}

std::optional<LogRecordHeader>
LogRecordHeader::fromLine(const Line &line)
{
    return parse(line).hdr;
}

} // namespace atomsim
