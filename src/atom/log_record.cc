#include "atom/log_record.hh"

#include <cstring>

namespace atomsim
{

Line
LogRecordHeader::toLine() const
{
    Line line{};
    line[0] = kMagic;
    line[1] = ausId;
    line[2] = count;
    line[3] = 0;
    std::memcpy(line.data() + 4, &seq, sizeof(seq));
    for (std::uint32_t i = 0; i < kMaxEntries; ++i) {
        std::memcpy(line.data() + 8 + i * sizeof(Addr), &addrs[i],
                    sizeof(Addr));
    }
    return line;
}

std::optional<LogRecordHeader>
LogRecordHeader::fromLine(const Line &line)
{
    if (line[0] != kMagic)
        return std::nullopt;
    LogRecordHeader hdr;
    hdr.ausId = line[1];
    hdr.count = line[2];
    if (hdr.count == 0 || hdr.count > kMaxEntries)
        return std::nullopt;
    std::memcpy(&hdr.seq, line.data() + 4, sizeof(hdr.seq));
    for (std::uint32_t i = 0; i < kMaxEntries; ++i) {
        std::memcpy(&hdr.addrs[i], line.data() + 8 + i * sizeof(Addr),
                    sizeof(Addr));
    }
    return hdr;
}

} // namespace atomsim
