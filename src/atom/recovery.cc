#include "atom/recovery.hh"

#include <algorithm>
#include <map>
#include <cstring>
#include <string>
#include <vector>

#include "atom/log_record.hh"
#include "designs/redo_engine.hh"
#include "mem/ssd_device.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace atomsim
{

RecoveryManager::RecoveryManager(const SystemConfig &cfg,
                                 const AddressMap &amap)
    : _cfg(cfg), _amap(amap)
{
}

RecoveryReport
RecoveryManager::recover(DataImage &nvm, const RecoveryOptions &opts,
                         StatSet *stats) const
{
    RecoveryReport total;
    std::uint32_t budget = opts.maxApplications;

    // Flash tier: rehydrate destaged pages first. The record scans
    // below must read through a whole image -- a destaged log bucket
    // holds records of an incomplete update, and a destaged data page
    // may be the very page an undo entry restores.
    if (opts.flashImage) {
        for (McId mc = 0; mc < _cfg.numMemCtrls; ++mc) {
            if (const DataImage *flash = opts.flashImage(mc))
                total.pagesRehydrated +=
                    fwdmap::rehydrate(nvm, _amap, mc, *flash);
        }
    }

    for (McId mc = 0; mc < _cfg.numMemCtrls; ++mc) {
        const RecoveryReport r = recoverMc(nvm, mc, opts, budget, stats);
        total.incompleteUpdates += r.incompleteUpdates;
        total.recordsApplied += r.recordsApplied;
        total.linesRestored += r.linesRestored;
        total.tornRecords += r.tornRecords;
        total.interrupted = total.interrupted || r.interrupted;
        total.criticalStateFound =
            total.criticalStateFound && r.criticalStateFound;
        if (total.interrupted)
            break;  // the second crash: nothing after it runs
    }
    return total;
}

RecoveryReport
RecoveryManager::recoverMc(DataImage &nvm, McId mc,
                           const RecoveryOptions &opts,
                           std::uint32_t &budget, StatSet *stats) const
{
    RecoveryReport report;
    Addr cursor = _amap.adrBase(mc);

    if (nvm.load32(cursor) != 0xADA70001u) {
        // No critical state flushed: either the system never powered
        // this design's log manager, or nothing was ever logged.
        report.criticalStateFound = false;
        return report;
    }
    const std::uint32_t aus_count = nvm.load32(cursor + 4);
    const std::uint32_t buckets = nvm.load32(cursor + 8);
    fatal_if(aus_count != _cfg.ausPerMc || buckets != _cfg.bucketsPerMc,
             "critical state disagrees with the configuration");
    cursor += 16;

    const std::uint32_t vec_bytes = (buckets + 7) / 8;

    struct ValidRecord
    {
        std::uint32_t seq;
        LogRecordHeader hdr;
        Addr base;
    };

    for (std::uint32_t a = 0; a < aus_count; ++a) {
        std::vector<std::uint8_t> vec(vec_bytes);
        nvm.read(cursor, vec.size(), vec.data());
        cursor += vec_bytes;
        const std::uint32_t current_bucket = nvm.load32(cursor);
        const std::uint32_t current_record = nvm.load32(cursor + 4);
        const std::uint32_t txn_start_seq = nvm.load32(cursor + 8);
        const std::uint32_t next_seq = nvm.load32(cursor + 12);
        const bool active = nvm.load32(cursor + 16) != 0;
        cursor += 20;
        (void)current_bucket;
        (void)current_record;

        if (!active || txn_start_seq == next_seq)
            continue;  // no incomplete update in this AUS

        ++report.incompleteUpdates;

        // Collect this update's valid records from its buckets. A
        // record is valid iff its persisted header parses, names this
        // AUS, and its sequence falls in the update's window; stale
        // headers from truncated updates fail the window test, and
        // headers torn mid-write fail the checksum (counted, so the
        // skipped log tail is observable).
        std::vector<ValidRecord> records;
        for (std::uint32_t b = 0; b < buckets; ++b) {
            if (!((vec[b / 8] >> (b % 8)) & 1))
                continue;
            for (std::uint32_t r = 0; r < _amap.recordsPerBucket();
                 ++r) {
                const Addr base = _amap.recordBase(mc, b, r);
                const auto parsed =
                    LogRecordHeader::parse(nvm.readLine(base));
                if (parsed.torn) {
                    ++report.tornRecords;
                    if (stats != nullptr) {
                        stats->counter("logm" + std::to_string(mc),
                                       "torn_records").inc();
                    }
                    continue;
                }
                if (!parsed.hdr || parsed.hdr->ausId != a)
                    continue;
                if (parsed.hdr->seq < txn_start_seq ||
                    parsed.hdr->seq >= next_seq)
                    continue;
                records.push_back(
                    ValidRecord{parsed.hdr->seq, *parsed.hdr, base});
            }
        }

        // Newest-first undo: descending sequence; entries within a
        // record in reverse append order (Section III-B's re-logging
        // argument relies on exactly this order).
        std::sort(records.begin(), records.end(),
                  [](const ValidRecord &x, const ValidRecord &y) {
                      return x.seq > y.seq;
                  });
        for (const auto &rec : records) {
            if (budget == 0) {
                // The crash-during-recovery budget expired: this
                // record is the one recovery was applying when the
                // second power failure hit. Under tornWrites its
                // restoring writes commit only a seeded word prefix,
                // modelling the device catching them in flight.
                report.interrupted = true;
                if (opts.tornWrites) {
                    for (int e = int(rec.hdr.count) - 1; e >= 0; --e) {
                        const Addr line_addr = rec.hdr.addrs[e];
                        const Addr data_addr =
                            rec.base + Addr(e + 1) * kLineBytes;
                        const std::uint32_t words = tornWordCount(
                            opts.faultSeed, mc, line_addr,
                            (std::uint64_t(rec.seq) << 8) |
                                std::uint64_t(e));
                        nvm.writeLineWords(line_addr,
                                           nvm.readLine(data_addr),
                                           words);
                    }
                }
                return report;
            }
            --budget;
            ++report.recordsApplied;
            for (int e = int(rec.hdr.count) - 1; e >= 0; --e) {
                const Addr line_addr = rec.hdr.addrs[e];
                const Addr data_addr =
                    rec.base + Addr(e + 1) * kLineBytes;
                nvm.writeLine(line_addr, nvm.readLine(data_addr));
                ++report.linesRestored;
            }
        }
    }
    return report;
}

RedoRecovery::RedoRecovery(const SystemConfig &cfg, const AddressMap &amap)
    : _cfg(cfg), _amap(amap)
{
}

RecoveryReport
RedoRecovery::recover(DataImage &nvm, const RecoveryOptions &opts) const
{
    RecoveryReport report;
    report.criticalStateFound = true;
    std::uint32_t budget = opts.maxApplications;

    // Flash tier: rehydrate destaged pages before scanning the redo
    // frames (same contract as undo recovery -- the scan must see a
    // whole image).
    if (opts.flashImage) {
        for (McId mc = 0; mc < _cfg.numMemCtrls; ++mc) {
            if (const DataImage *flash = opts.flashImage(mc))
                report.pagesRehydrated +=
                    fwdmap::rehydrate(nvm, _amap, mc, *flash);
        }
    }

    struct PendingEntry
    {
        Addr line;
        Addr dataAddr;
    };

    // Walk one controller's durable frame stream, hopping bucket to
    // bucket exactly like the engine's cursor (log pages interleave
    // across controllers; contiguous scanning would cross into a
    // neighbour's stream).
    const std::uint32_t frames_per_bucket = kPageBytes / (8 * kLineBytes);
    auto for_each_slot = [&](McId mc, auto &&fn) {
        for (std::uint32_t b = 0; b < _amap.bucketsPerMc(); ++b) {
            for (std::uint32_t f = 0; f < frames_per_bucket; ++f) {
                const Addr frame = _amap.bucketBase(mc, b) +
                                   Addr(f) * 8 * kLineBytes;
                const Line meta = nvm.readLine(frame);
                std::uint32_t magic;
                std::memcpy(&magic, meta.data(), sizeof(magic));
                if (magic != redo_format::kMetaMagic)
                    return;  // end of durable stream
                const std::uint8_t count = meta[4];
                if (count == 0 || count > redo_format::kSlotsPerFrame)
                    return;
                for (std::uint32_t s = 0; s < count; ++s) {
                    std::uint64_t word;
                    std::memcpy(&word, meta.data() + 8 + s * 8, 8);
                    fn(word, frame + Addr(s + 1) * kLineBytes);
                }
            }
        }
    };

    // Pass 1: a transaction (core, seq) is committed only if its
    // commit slot persisted at EVERY controller it logged at -- a
    // marker durable at a strict subset means the crash interrupted
    // the commit and the update must be discarded everywhere.
    std::map<std::pair<CoreId, std::uint64_t>, std::uint32_t> seen;
    std::map<std::pair<CoreId, std::uint64_t>, std::uint32_t> want;
    for (McId mc = 0; mc < _cfg.numMemCtrls; ++mc) {
        for_each_slot(mc, [&](std::uint64_t word, Addr) {
            if (!redo_format::isCommit(word))
                return;
            const auto key = std::make_pair(
                redo_format::slotCore(word),
                redo_format::commitSeq(word));
            seen[key] |= 1u << mc;
            want[key] = redo_format::commitMcMask(word);
        });
    }
    for (McId mc = 0; mc < _cfg.numMemCtrls; ++mc) {
        // Pass 2: per core, entries accumulate until that core's next
        // commit slot; globally-committed markers make them
        // applicable, anything else is discarded.
        std::vector<std::vector<PendingEntry>> pending(_cfg.numCores);
        std::vector<PendingEntry> applicable;

        for_each_slot(mc, [&](std::uint64_t word, Addr data_addr) {
            const CoreId core = redo_format::slotCore(word);
            if (!redo_format::isCommit(word)) {
                pending[core].push_back(
                    PendingEntry{redo_format::slotAddr(word),
                                 data_addr});
                return;
            }
            const auto key = std::make_pair(
                core, redo_format::commitSeq(word));
            const bool committed = seen[key] == want[key];
            if (committed) {
                for (auto &e : pending[core])
                    applicable.push_back(e);
            }
            pending[core].clear();
        });

        for (std::size_t i = 0; i < applicable.size(); ++i) {
            const auto &e = applicable[i];
            if (budget == 0) {
                // Second crash mid-replay: under tornWrites the
                // interrupting entry's write commits a word prefix.
                report.interrupted = true;
                if (opts.tornWrites) {
                    const std::uint32_t words = tornWordCount(
                        opts.faultSeed, mc, e.line,
                        std::uint64_t(i));
                    nvm.writeLineWords(e.line, nvm.readLine(e.dataAddr),
                                       words);
                }
                return report;
            }
            --budget;
            nvm.writeLine(e.line, nvm.readLine(e.dataAddr));
            ++report.linesRestored;
            ++report.recordsApplied;
        }
    }
    return report;
}

} // namespace atomsim
