/**
 * @file
 * Atomic Update Structures (AUS) -- Section IV-C, Figure 4(b).
 *
 * Per memory controller, each in-flight atomic update owns: its bucket
 * bit vector (in BucketTable), a current-bucket register, a
 * current-record register, the record-header register for the record
 * being filled, and the sequence window [txnStartSeq, nextSeq) used by
 * recovery to identify this update's records.
 */

#ifndef ATOMSIM_ATOM_AUS_HH
#define ATOMSIM_ATOM_AUS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include <unordered_set>

#include "atom/log_record.hh"
#include "sim/callback.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Sentinel for "no bucket allocated". */
constexpr std::uint32_t kNoBucket = ~std::uint32_t(0);

/**
 * A log-entry acknowledgement (LogM::postLogEntry). Fixed capacity:
 * large enough for the LogI relay (node ids + the store path's own
 * 72-byte packet rider), with no heap fallback.
 */
using LogAckCallback = InplaceCallback<96>;

/**
 * The record currently being assembled (the record-header register),
 * or one that is sealed but whose header has not yet persisted.
 */
struct OpenRecord
{
    Addr base = 0;             //!< NVM address of the record
    std::uint32_t seq = 0;     //!< per-AUS monotonic sequence
    std::vector<Addr> entries; //!< logged line addresses (<= 7)
    std::uint32_t pendingData = 0; //!< entry data writes not yet durable
    bool sealed = false;       //!< no more entries may be added
    bool headerIssued = false; //!< header write handed to the channel
    /** BASE-mode acks to fire when the header persists (Figure 3(a)). */
    std::vector<LogAckCallback> persistAcks;
};

/** Per-(controller, AUS) registers. */
struct AusState
{
    bool active = false;
    std::uint32_t currentBucket = kNoBucket;
    /** Next record slot to use inside currentBucket. */
    std::uint32_t currentRecord = 0;
    /** First sequence number of the running update. */
    std::uint32_t txnStartSeq = 0;
    /** Next sequence number to assign (monotonic across updates). */
    std::uint32_t nextSeq = 0;

    /** Record being filled (the record-header register). */
    std::unique_ptr<OpenRecord> open;
    /** Sealed records whose headers have not yet persisted. */
    std::vector<std::unique_ptr<OpenRecord>> sealing;
    /**
     * Lines already logged by the running update. An undo log needs
     * exactly one pre-image per line per update (recovery applies
     * records newest-first, so the oldest entry decides the restored
     * value); a re-log -- an L1 retrying a store after losing the line
     * between log-ack and store-apply -- is matched here and acked
     * without burning a record. Without this, a store thrashing
     * against recalls in a small L2 seals a one-entry record per
     * retry until the log region is exhausted, and since buckets are
     * only reclaimed at commit, the overflow interrupt can never be
     * satisfied: the machine livelocks.
     */
    std::unordered_set<Addr> loggedLines;
    /** Outstanding log (data or header) writes for this AUS. */
    std::uint32_t outstandingWrites = 0;
    /** Callbacks waiting for outstandingWrites to hit zero. */
    std::vector<std::function<void()>> quiesceWaiters;
};

} // namespace atomsim

#endif // ATOMSIM_ATOM_AUS_HH
