#include "atom/bucket_table.hh"

#include "sim/logging.hh"

namespace atomsim
{

BucketBitVector::BucketBitVector(std::uint32_t buckets)
{
    resize(buckets);
}

void
BucketBitVector::resize(std::uint32_t buckets)
{
    _buckets = buckets;
    _words.assign((buckets + 63) / 64, 0);
}

bool
BucketBitVector::test(std::uint32_t bucket) const
{
    panic_if(bucket >= _buckets, "bucket %u out of range", bucket);
    return (_words[bucket / 64] >> (bucket % 64)) & 1;
}

void
BucketBitVector::set(std::uint32_t bucket)
{
    panic_if(bucket >= _buckets, "bucket %u out of range", bucket);
    _words[bucket / 64] |= std::uint64_t(1) << (bucket % 64);
}

void
BucketBitVector::clearBit(std::uint32_t bucket)
{
    panic_if(bucket >= _buckets, "bucket %u out of range", bucket);
    _words[bucket / 64] &= ~(std::uint64_t(1) << (bucket % 64));
}

void
BucketBitVector::clearAll()
{
    for (auto &w : _words)
        w = 0;
}

std::uint32_t
BucketBitVector::popcount() const
{
    std::uint32_t n = 0;
    for (auto w : _words)
        n += std::uint32_t(__builtin_popcountll(w));
    return n;
}

std::optional<std::uint32_t>
BucketBitVector::firstSet() const
{
    for (std::uint32_t w = 0; w < _words.size(); ++w) {
        if (_words[w])
            return w * 64 + std::uint32_t(__builtin_ctzll(_words[w]));
    }
    return std::nullopt;
}

BucketTable::BucketTable(std::uint32_t aus_count,
                         std::uint32_t total_buckets,
                         std::uint32_t initially_mapped)
    : _total(total_buckets),
      _mapped(initially_mapped == 0 ? total_buckets : initially_mapped)
{
    panic_if(_mapped > _total, "mapped buckets exceed capacity");
    _vectors.reserve(aus_count);
    for (std::uint32_t i = 0; i < aus_count; ++i)
        _vectors.emplace_back(total_buckets);
}

bool
BucketTable::isFree(std::uint32_t bucket) const
{
    for (const auto &v : _vectors) {
        if (v.test(bucket))
            return false;
    }
    return true;
}

std::optional<std::uint32_t>
BucketTable::allocate(std::uint32_t aus)
{
    panic_if(aus >= _vectors.size(), "bad AUS index %u", aus);
    for (std::uint32_t i = 0; i < _mapped; ++i) {
        const std::uint32_t bucket = (_scanHint + i) % _mapped;
        if (isFree(bucket)) {
            _vectors[aus].set(bucket);
            _scanHint = bucket + 1;
            return bucket;
        }
    }
    return std::nullopt;  // log overflow: caller interrupts the OS
}

void
BucketTable::extendMapped(std::uint32_t extra)
{
    _mapped = std::min(_total, _mapped + extra);
}

std::uint32_t
BucketTable::truncate(std::uint32_t aus)
{
    panic_if(aus >= _vectors.size(), "bad AUS index %u", aus);
    const std::uint32_t freed = _vectors[aus].popcount();
    _vectors[aus].clearAll();
    return freed;
}

const BucketBitVector &
BucketTable::vectorOf(std::uint32_t aus) const
{
    panic_if(aus >= _vectors.size(), "bad AUS index %u", aus);
    return _vectors[aus];
}

} // namespace atomsim
