/**
 * @file
 * LogM: the memory-controller half of the ATOM log manager
 * (Sections III-B..III-D and IV-C of the paper).
 *
 * LogM owns log allocation (buckets, records), writes log entries to
 * the NVM log area, and enforces the log -> data ordering invariant by
 * acting as the controller's WriteGate: a data write whose address sits
 * in a not-yet-persisted record header is blocked, the header persist
 * is expedited, and the write proceeds once it completes ("locking" /
 * "unlocking" in the paper's terms).
 *
 * Three operating modes of postLogEntry cover the designs:
 *  - BASE: the ack fires when the entry is durable (header persisted);
 *    records hold a single entry (2 NVM writes per entry).
 *  - ATOM (posted): the ack fires immediately after the lock is taken;
 *    persistence happens in the background.
 *  - ATOM-OPT adds sourceLogFill for read-exclusive fills.
 */

#ifndef ATOMSIM_ATOM_LOGM_HH
#define ATOMSIM_ATOM_LOGM_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "atom/aus.hh"
#include "atom/bucket_table.hh"
#include "cache/l2_cache.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "os/log_space.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{

/** The per-memory-controller ATOM log manager. */
class LogM : public WriteGate, public SourceLogger
{
  public:
    /**
     * @param resolve_aus maps a core to its AUS slot (or -1 when the
     *                    core has no active atomic update)
     */
    LogM(McId mc, EventQueue &eq, const SystemConfig &cfg,
         const AddressMap &amap, MemoryController &ctrl, LogSpace &os,
         StatSet &stats, std::function<int(CoreId)> resolve_aus);

    // --- Atomic update lifecycle --------------------------------------

    /** Arm AUS @p aus for a new atomic update. */
    void beginUpdate(std::uint32_t aus);

    /**
     * Truncate AUS @p aus (Atomic_End): waits for this update's
     * outstanding log writes to quiesce, then clears the bucket bit
     * vector (single-cycle register operation) and frees the buckets.
     */
    void truncate(std::uint32_t aus, std::function<void()> done);

    // --- Logging --------------------------------------------------------

    /**
     * Append an undo entry (old value of @p line_addr) to @p aus's
     * current record.
     *
     * @param posted ATOM posted-log mode: @p ack fires after the lock
     *               is taken; BASE mode: @p ack fires when the entry is
     *               durable.
     */
    void postLogEntry(std::uint32_t aus, Addr line_addr,
                      const Line &old_value, bool posted,
                      LogAckCallback ack);

    /** SourceLogger: log a read-exclusive fill (Section III-D). */
    bool sourceLogFill(CoreId core, Addr addr,
                       const Line &old_value) override;

    /** Enable sourceLogFill (ATOM-OPT only). */
    void setSourceLogging(bool on) { _sourceLogging = on; }

    // --- WriteGate (log -> data ordering, Section III-C) ---------------

    bool tryAcquire(Addr line_addr, UnlockCallback on_unlock) override;

    // --- Power failure ----------------------------------------------------

    /**
     * ADR flush: serialize the critical registers (bucket bit vectors,
     * current bucket/record, sequence windows) into the controller's
     * ADR page of @p nvm. Called at power failure; zero-latency by the
     * ADR guarantee (Section IV-D).
     */
    void flushCriticalState(DataImage &nvm) const;

    /** Size in bytes of the serialized critical state. */
    std::uint32_t criticalStateBytes() const;

    // --- Introspection ---------------------------------------------------

    bool lineLocked(Addr line_addr) const;
    const BucketTable &buckets() const { return _buckets; }
    const AusState &aus(std::uint32_t idx) const { return _aus[idx]; }

  private:
    /** Continuation of a log entry waiting for an open record: holds
     * the entry's data line and its ack inline (no heap). */
    using ReadyCallback = InplaceCallback<208>;

    /** Ensure @p aus has an open, unsealed record; may allocate a
     * bucket (possibly waiting on an OS overflow grant). */
    void withOpenRecord(std::uint32_t aus, ReadyCallback ready);

    /** Seal the open record: no more entries; header persists once all
     * entry data is durable. */
    void sealOpen(std::uint32_t aus);

    /** Issue the header write if the record is sealed + data-durable. */
    void maybeIssueHeader(std::uint32_t aus, OpenRecord *rec);

    void onHeaderDurable(std::uint32_t aus, Addr record_base);

    void lock(Addr line_addr);
    void unlock(Addr line_addr);

    McId _mc;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    const AddressMap &_amap;
    MemoryController &_ctrl;
    LogSpace &_os;
    std::function<int(CoreId)> _resolveAus;
    bool _sourceLogging = false;

    BucketTable _buckets;
    std::vector<AusState> _aus;

    /** Lock table: line -> (count, waiters). Implements the record-
     * header address match of Section IV-C. */
    struct LockState
    {
        std::uint32_t count = 0;
        std::vector<UnlockCallback> waiters;
    };
    std::unordered_map<Addr, LockState> _locks;

    Counter &_statEntries;
    Counter &_statRecords;
    Counter &_statSourceLogged;
    Counter &_statOverflows;
    Counter &_statForcedSeals;
    Counter &_statDupEntries;
    Counter &_statTruncations;
};

} // namespace atomsim

#endif // ATOMSIM_ATOM_LOGM_HH
