// aus.hh is header-only state; this translation unit exists to anchor
// the header for build-time checking.
#include "atom/aus.hh"
