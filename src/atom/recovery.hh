/**
 * @file
 * Post-power-failure recovery (Section IV-D).
 *
 * The recovery routine is provided "as a system call": it reads the
 * ADR-flushed critical registers of every memory controller from NVM,
 * reconstructs the log-space state at the instant of the crash, and
 * undoes every incomplete atomic update by applying its records
 * newest-first. Only durable state is consulted -- the routine works
 * on a DataImage, never on the (gone) volatile structures.
 *
 * RedoRecovery implements the equivalent for the REDO comparator
 * design: reapply the entries of committed updates from the redo log.
 */

#ifndef ATOMSIM_ATOM_RECOVERY_HH
#define ATOMSIM_ATOM_RECOVERY_HH

#include <cstdint>

#include "mem/address_map.hh"
#include "mem/phys_mem.hh"
#include "sim/config.hh"

namespace atomsim
{

/** What a recovery pass did (reported by the routine). */
struct RecoveryReport
{
    std::uint32_t incompleteUpdates = 0;  //!< AUS rolled back
    std::uint32_t recordsApplied = 0;
    std::uint32_t linesRestored = 0;
    bool criticalStateFound = true;
};

/** Undo recovery for the ATOM / BASE designs. */
class RecoveryManager
{
  public:
    RecoveryManager(const SystemConfig &cfg, const AddressMap &amap);

    /**
     * Roll back every incomplete atomic update found in @p nvm.
     * Records apply newest-first (descending sequence; entries within
     * a record in reverse), so a line logged more than once ends at
     * its pre-update value.
     */
    RecoveryReport recover(DataImage &nvm) const;

  private:
    RecoveryReport recoverMc(DataImage &nvm, McId mc) const;

    const SystemConfig &_cfg;
    const AddressMap &_amap;
};

/** Redo recovery for the REDO design. */
class RedoRecovery
{
  public:
    RedoRecovery(const SystemConfig &cfg, const AddressMap &amap);

    /**
     * Reapply, in log order, every entry belonging to a committed
     * update; entries of uncommitted updates are discarded.
     */
    RecoveryReport recover(DataImage &nvm) const;

  private:
    const SystemConfig &_cfg;
    const AddressMap &_amap;
};

} // namespace atomsim

#endif // ATOMSIM_ATOM_RECOVERY_HH
