/**
 * @file
 * Post-power-failure recovery (Section IV-D).
 *
 * The recovery routine is provided "as a system call": it reads the
 * ADR-flushed critical registers of every memory controller from NVM,
 * reconstructs the log-space state at the instant of the crash, and
 * undoes every incomplete atomic update by applying its records
 * newest-first. Only durable state is consulted -- the routine works
 * on a DataImage, never on the (gone) volatile structures.
 *
 * RedoRecovery implements the equivalent for the REDO comparator
 * design: reapply the entries of committed updates from the redo log.
 */

#ifndef ATOMSIM_ATOM_RECOVERY_HH
#define ATOMSIM_ATOM_RECOVERY_HH

#include <cstdint>
#include <functional>

#include "mem/address_map.hh"
#include "mem/phys_mem.hh"
#include "sim/config.hh"

namespace atomsim
{

class StatSet;

/** What a recovery pass did (reported by the routine). */
struct RecoveryReport
{
    std::uint32_t incompleteUpdates = 0;  //!< AUS rolled back
    std::uint32_t recordsApplied = 0;
    std::uint32_t linesRestored = 0;
    /** Torn record headers the scan recognized and skipped (magic
     * matched, checksum failed: a header write interrupted by the
     * power failure). Also counted into logmN.torn_records when a
     * StatSet is supplied. */
    std::uint32_t tornRecords = 0;
    /** The pass stopped at RecoveryOptions::maxApplications (a
     * crash-during-recovery experiment, not a completed recovery). */
    bool interrupted = false;
    bool criticalStateFound = true;
    /** Flash tier: pages copied back from flash by the forwarding-map
     * rehydration pass that runs before any log scan. */
    std::uint32_t pagesRehydrated = 0;
};

/**
 * Knobs of the resumable pass structure: recovery applies records in
 * a deterministic enumeration order and can be stopped after any
 * number of record applications -- and re-run. Both routines only
 * ever *read* the log/ADR regions and *write* data lines named by
 * valid records, so a second pass sees the identical valid-record
 * set and rewrites every affected line in full: recovery is
 * idempotent under double failure, even when the interrupting crash
 * tears recovery's own in-flight writes (tornWrites).
 */
struct RecoveryOptions
{
    /** Stop after this many record applications (0xffffffff = run
     * to completion). */
    std::uint32_t maxApplications = 0xffffffffu;
    /** When the budget interrupts the pass, apply the interrupting
     * record with each image write torn at a seeded word boundary:
     * the second power failure catches recovery's writes in flight. */
    bool tornWrites = false;
    std::uint64_t faultSeed = 1;
    /**
     * Flash tier: maps a controller to its (surviving, non-volatile)
     * flash image, or nullptr. When set, recovery first *rehydrates*:
     * every valid NVM-resident forwarding-map entry copies its flash
     * page back into NVM and clears the entry (mem/ssd_device.hh's
     * fwdmap::rehydrate), so the subsequent log scans -- which may
     * need destaged log buckets or roll back destaged data pages --
     * read through a whole image. Rehydration is idempotent: a crash
     * mid-recovery re-runs it over the already-cleared entries.
     */
    std::function<const DataImage *(McId)> flashImage;
};

/** Undo recovery for the ATOM / BASE designs. */
class RecoveryManager
{
  public:
    RecoveryManager(const SystemConfig &cfg, const AddressMap &amap);

    /**
     * Roll back every incomplete atomic update found in @p nvm.
     * Records apply newest-first (descending sequence; entries within
     * a record in reverse), so a line logged more than once ends at
     * its pre-update value.
     *
     * @param stats when given, torn headers bump logmN.torn_records.
     */
    RecoveryReport recover(DataImage &nvm,
                           const RecoveryOptions &opts = RecoveryOptions{},
                           StatSet *stats = nullptr) const;

  private:
    RecoveryReport recoverMc(DataImage &nvm, McId mc,
                             const RecoveryOptions &opts,
                             std::uint32_t &budget, StatSet *stats) const;

    const SystemConfig &_cfg;
    const AddressMap &_amap;
};

/** Redo recovery for the REDO design. */
class RedoRecovery
{
  public:
    RedoRecovery(const SystemConfig &cfg, const AddressMap &amap);

    /**
     * Reapply, in log order, every entry belonging to a committed
     * update; entries of uncommitted updates are discarded. The
     * budget counts applied entries (REDO's unit of application).
     */
    RecoveryReport
    recover(DataImage &nvm,
            const RecoveryOptions &opts = RecoveryOptions{}) const;

  private:
    const SystemConfig &_cfg;
    const AddressMap &_amap;
};

} // namespace atomsim

#endif // ATOMSIM_ATOM_RECOVERY_HH
