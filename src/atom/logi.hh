/**
 * @file
 * LogI: the cache-controller half of the ATOM log manager
 * (Section IV-B).
 *
 * LogI implements the L1 store-path hook for the undo-logging designs:
 * on the first write to a line inside an atomic update it ships a
 * LogWrite message (old value + address) to the memory controller that
 * owns the line -- guaranteeing log/data co-location -- and completes
 * the store when the ack arrives. In BASE mode the ack means "entry
 * durable"; in posted mode (ATOM / ATOM-OPT) it means "line locked".
 */

#ifndef ATOMSIM_ATOM_LOGI_HH
#define ATOMSIM_ATOM_LOGI_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "atom/logm.hh"
#include "cache/l1_cache.hh"
#include "mem/address_map.hh"
#include "net/mesh.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace atomsim
{

/**
 * Cache-side log write initiator for the undo designs.
 *
 * LogWrite messages are typed packets (LogI is their MeshSink): the
 * old value travels in the packet's data line and the store path's
 * completion rides the packet's inline callback, so a log round trip
 * allocates nothing.
 */
class LogI : public StoreLogger, public MeshSink
{
  public:
    /**
     * @param posted false for BASE (ack on persist), true for
     *               ATOM / ATOM-OPT (posted log writes)
     * @param resolve_aus maps a core to its AUS slot or -1
     */
    LogI(EventQueue &eq, const SystemConfig &cfg, Mesh &mesh,
         const AddressMap &amap,
         std::vector<std::unique_ptr<LogM>> &logms, bool posted,
         std::function<int(CoreId)> resolve_aus, StatSet &stats);

    Mode mode() const override { return Mode::Undo; }

    bool
    inAtomic(CoreId core) const override
    {
        return _resolveAus(core) >= 0;
    }

    void onFirstWrite(CoreId core, Addr addr, const Line &old_value,
                      CacheCallback done) override;

    void onStore(CoreId, Addr, const Line &, std::uint32_t,
                 const std::uint8_t *, std::uint32_t,
                 CacheCallback) override;

    void meshDeliver(Packet &pkt) override;

    /** Per-core tenant log-write counters ("tenantN.log_writes");
     * empty (the default) disables per-tenant accounting. */
    void
    setTenantCounters(std::vector<Counter *> per_core)
    {
        _tenantLogWrites = std::move(per_core);
    }

  private:
    EventQueue &_eq;
    const SystemConfig &_cfg;
    Mesh &_mesh;
    const AddressMap &_amap;
    std::vector<std::unique_ptr<LogM>> &_logms;
    bool _posted;
    std::function<int(CoreId)> _resolveAus;

    Counter &_statLogWrites;
    std::vector<Counter *> _tenantLogWrites;  //!< per core; may be empty
};

} // namespace atomsim

#endif // ATOMSIM_ATOM_LOGI_HH
