/**
 * @file
 * Memory micro-ops and transactions.
 *
 * Workloads execute functionally at dispatch time and emit a stream of
 * MemOps per transaction; the core consumes the stream through the
 * timing model. Loads/stores never span a cache line (the trace
 * recorder splits them).
 */

#ifndef ATOMSIM_CPU_MEM_OP_HH
#define ATOMSIM_CPU_MEM_OP_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace atomsim
{

/** Kind of a memory micro-op. */
enum class OpKind : std::uint8_t
{
    Load,         //!< blocking load of [addr, addr+size)
    Store,        //!< store of payload at addr
    Compute,      //!< non-memory work of `cycles` cycles
    AtomicBegin,  //!< Atomic_Begin instruction (Section III-A)
    AtomicEnd,    //!< Atomic_End instruction
};

const char *opName(OpKind kind);

/** One micro-op in a transaction's trace. */
struct MemOp
{
    OpKind kind;
    Addr addr = 0;
    std::uint32_t size = 0;
    Cycles cycles = 0;                  //!< Compute only
    std::vector<std::uint8_t> payload;  //!< Store only

    static MemOp
    load(Addr a, std::uint32_t sz)
    {
        MemOp op;
        op.kind = OpKind::Load;
        op.addr = a;
        op.size = sz;
        return op;
    }

    static MemOp
    store(Addr a, const void *bytes, std::uint32_t sz)
    {
        MemOp op;
        op.kind = OpKind::Store;
        op.addr = a;
        op.size = sz;
        const auto *p = static_cast<const std::uint8_t *>(bytes);
        op.payload.assign(p, p + sz);
        return op;
    }

    static MemOp
    compute(Cycles c)
    {
        MemOp op;
        op.kind = OpKind::Compute;
        op.cycles = c;
        return op;
    }

    static MemOp
    marker(OpKind kind)
    {
        MemOp op;
        op.kind = kind;
        return op;
    }
};

/** A transaction: the op trace plus the lines it modified. */
struct Transaction
{
    std::uint64_t id = 0;
    /** Owning tenant (0 in single-tenant configs). */
    std::uint16_t tenant = 0;
    /** Workload-defined transaction class (e.g. the KV workload's
     * read/update/insert); latency histograms key on it. */
    std::uint16_t txnClass = 0;
    std::vector<MemOp> ops;
    /** Unique line addresses modified inside the atomic region, in
     * first-write order; the commit protocol flushes these. */
    std::vector<Addr> modifiedLines;
};

} // namespace atomsim

#endif // ATOMSIM_CPU_MEM_OP_HH
