/**
 * @file
 * The store queue (SQ).
 *
 * Stores issue into the SQ and retire, in order, from its head into the
 * L1 -- possibly waiting on the active design's logging protocol. When
 * retirement is slow the SQ fills and back-pressures the pipeline; the
 * cycles a store spends waiting for a free SQ entry are the paper's
 * "SQ full cycles" metric (Figure 6).
 */

#ifndef ATOMSIM_CPU_STORE_QUEUE_HH
#define ATOMSIM_CPU_STORE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

class L1Cache;

/** One core's store queue. */
class StoreQueue
{
  public:
    using Callback = std::function<void()>;

    StoreQueue(CoreId core, EventQueue &eq, std::uint32_t entries,
               std::uint32_t drain_width, L1Cache &l1, StatSet &stats);

    /**
     * Issue a store. @p accepted runs as soon as the store owns an SQ
     * entry (immediately when not full); the producing core stalls
     * until then. Retirement proceeds asynchronously.
     */
    void push(Addr addr, std::vector<std::uint8_t> payload,
              Callback accepted);

    /** True when no stores are buffered or in flight. */
    bool empty() const { return _queue.empty(); }

    /** Run @p cb once the queue fully drains (immediately if empty). */
    void whenEmpty(Callback cb);

    /** True if a pending store targets the line of @p addr
     * (store-to-load forwarding). */
    bool holdsLine(Addr addr) const;

    std::size_t occupancy() const { return _queue.size(); }

    /** Cycles stores spent waiting for a free entry (Figure 6). */
    std::uint64_t fullCycles() const { return _statFullCycles.value(); }

  private:
    struct Entry
    {
        Addr addr;
        std::vector<std::uint8_t> payload;
        bool issued = false;
        bool done = false;
    };

    void pump();
    void retireCompleted();

    CoreId _core;
    EventQueue &_eq;
    std::uint32_t _entries;
    std::uint32_t _drainWidth;
    L1Cache &_l1;

    std::deque<std::shared_ptr<Entry>> _queue;
    std::uint32_t _issued = 0;
    std::deque<std::pair<Tick, Callback>> _waiters;  //!< full-queue stalls
    std::vector<Callback> _drainWaiters;

    Counter &_statFullCycles;
    Counter &_statRetired;
};

} // namespace atomsim

#endif // ATOMSIM_CPU_STORE_QUEUE_HH
