#include "cpu/store_queue.hh"

#include "cache/l1_cache.hh"
#include "sim/logging.hh"

namespace atomsim
{

StoreQueue::StoreQueue(CoreId core, EventQueue &eq, std::uint32_t entries,
                       std::uint32_t drain_width, L1Cache &l1,
                       StatSet &stats)
    : _core(core),
      _eq(eq),
      _entries(entries),
      _drainWidth(std::max<std::uint32_t>(1, drain_width)),
      _l1(l1),
      _statFullCycles(
          stats.counter("core" + std::to_string(core), "sq_full_cycles")),
      _statRetired(
          stats.counter("core" + std::to_string(core), "stores_retired"))
{
}

void
StoreQueue::push(Addr addr, std::vector<std::uint8_t> payload,
                 Callback accepted)
{
    if (occupancy() >= _entries) {
        // SQ full: the pipeline stalls until retirement frees an entry.
        _waiters.emplace_back(
            _eq.now(),
            [this, addr, payload = std::move(payload),
             accepted = std::move(accepted)]() mutable {
                push(addr, std::move(payload), std::move(accepted));
            });
        return;
    }
    auto entry = std::make_shared<Entry>();
    entry->addr = addr;
    entry->payload = std::move(payload);
    _queue.push_back(entry);
    accepted();
    pump();
}

void
StoreQueue::pump()
{
    // Issue stores (in order) up to the drain width; entries dequeue
    // strictly in order as the oldest ones complete. A store may not
    // issue while an older in-flight store targets the same line:
    // completions are out of order, and same-line stores must apply
    // in program order.
    for (std::size_t i = 0; i < _queue.size(); ++i) {
        auto &entry = _queue[i];
        if (_issued >= _drainWidth)
            break;
        if (entry->issued)
            continue;
        bool conflict = false;
        for (std::size_t j = 0; j < i && !conflict; ++j) {
            conflict = _queue[j]->issued && !_queue[j]->done &&
                       lineAlign(_queue[j]->addr) ==
                           lineAlign(entry->addr);
        }
        if (conflict)
            continue;
        entry->issued = true;
        ++_issued;
        _l1.store(entry->addr, entry->payload.data(),
                  std::uint32_t(entry->payload.size()),
                  [this, entry] {
                      entry->done = true;
                      --_issued;
                      retireCompleted();
                  });
    }
}

void
StoreQueue::retireCompleted()
{
    while (!_queue.empty() && _queue.front()->done) {
        _queue.pop_front();
        _statRetired.inc();
        if (!_waiters.empty()) {
            auto [since, retry] = std::move(_waiters.front());
            _waiters.pop_front();
            _statFullCycles.inc(_eq.now() - since);
            retry();
        }
    }
    pump();
    if (empty()) {
        auto drained = std::move(_drainWaiters);
        _drainWaiters.clear();
        for (auto &cb : drained)
            cb();
    }
}

void
StoreQueue::whenEmpty(Callback cb)
{
    if (empty()) {
        cb();
        return;
    }
    _drainWaiters.push_back(std::move(cb));
}

bool
StoreQueue::holdsLine(Addr addr) const
{
    const Addr line = lineAlign(addr);
    for (const auto &e : _queue) {
        if (lineAlign(e->addr) == line)
            return true;
    }
    return false;
}

} // namespace atomsim
