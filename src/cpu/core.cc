#include "cpu/core.hh"

#include "cache/l1_cache.hh"
#include "sim/logging.hh"

namespace atomsim
{

Core::Core(CoreId id, EventQueue &eq, const SystemConfig &cfg, L1Cache &l1,
           StatSet &stats)
    : _id(id),
      _eq(eq),
      _cfg(cfg),
      _l1(l1),
      _sq(id, eq, cfg.sqEntries, cfg.sqDrainWidth, l1, stats),
      _nextTxnEvent([this] { nextTransaction(); }, "core.nextTxn"),
      _opDoneEvent([this] { opDone(_opDoneIdx); }, "core.opDone"),
      _execOpEvent([this] { execOp(_execIdx); }, "core.execOp"),
      _statCommitted(
          stats.counter("core" + std::to_string(id), "txn_committed")),
      _statOps(stats.counter("core" + std::to_string(id), "ops")),
      _statLoadStallCycles(stats.counter("core" + std::to_string(id),
                                         "load_stall_cycles"))
{
}

void
Core::start()
{
    panic_if(!_source, "core %u has no transaction source", _id);
    panic_if(!_hooks, "core %u has no design hooks", _id);
    _eq.scheduleIn(_nextTxnEvent, 0);
}

void
Core::nextTransaction()
{
    // The ticket must cover the fetch: the transaction's store payloads
    // are computed functionally inside fetchNext, so fetch order is the
    // order shared-structure updates compose in (see RegionSerializer).
    if (_regionSer) {
        _regionSer->acquire([this] { fetchTransaction(); });
        return;
    }
    fetchTransaction();
}

void
Core::fetchTransaction()
{
    _source->fetchNext(_id, [this](std::optional<Transaction> txn) {
        _txn = std::move(txn);
        if (!_txn) {
            if (_regionSer)
                _regionSer->release();
            _ctrlLB = kTickNever;
            // Drain outstanding stores, then go idle.
            _sq.whenEmpty([this] { _done = true; });
            return;
        }
        _txnStart = _eq.now();
        execOp(0);
    });
}

void
Core::updateCtrlBound(std::size_t idx)
{
    const auto &ops = _txn->ops;
    if (idx == 0 || idx > _ctrlNextIdx) {
        std::size_t j = idx;
        while (j < ops.size() && ops[j].kind != OpKind::AtomicBegin &&
               ops[j].kind != OpKind::AtomicEnd)
            ++j;
        _ctrlNextIdx = j;
    }
    // Every later op issues at least computeGap after the previous
    // one's completion, and the boundary submission happens no earlier
    // than the boundary op's own issue (the end-of-stream fetch at
    // idx == ops.size() counts as a boundary too).
    _ctrlLB = _eq.now() + Cycles(_ctrlNextIdx - idx) * _cfg.computeGap;
}

void
Core::execOp(std::size_t idx)
{
    if (idx >= _txn->ops.size()) {
        if (_observer)
            _observer(_id, *_txn, _txnStart, _eq.now());
        _ctrlLB = _eq.now();
        if (_regionSer)
            _regionSer->release();
        nextTransaction();
        return;
    }
    updateCtrlBound(idx);
    _statOps.inc();
    const MemOp &op = _txn->ops[idx];

    switch (op.kind) {
      case OpKind::Compute:
        _opDoneIdx = idx;
        _eq.scheduleIn(_opDoneEvent, op.cycles);
        return;

      case OpKind::Load: {
        // Store-to-load forwarding: a queued store to the same line
        // supplies the data without an L1 access.
        if (_sq.holdsLine(op.addr)) {
            _opDoneIdx = idx;
            _eq.scheduleIn(_opDoneEvent, 1);
            return;
        }
        const Tick issued = _eq.now();
        _l1.load(op.addr, [this, idx, issued] {
            _statLoadStallCycles.inc(_eq.now() - issued);
            opDone(idx);
        });
        return;
      }

      case OpKind::Store: {
        std::vector<std::uint8_t> payload = _txn->ops[idx].payload;
        _sq.push(op.addr, std::move(payload),
                 [this, idx] { opDone(idx); });
        return;
      }

      case OpKind::AtomicBegin:
        _hooks->atomicBegin(_id, [this, idx] { opDone(idx); });
        return;

      case OpKind::AtomicEnd:
        // All of the region's stores must retire before the commit
        // protocol runs (the flushes must see the final values).
        _sq.whenEmpty([this, idx] {
            _hooks->atomicEnd(_id, _txn->modifiedLines, [this, idx] {
                _statCommitted.inc();
                opDone(idx);
            });
        });
        return;
    }
    panic("unhandled op kind");
}

void
Core::opDone(std::size_t idx)
{
    // Inter-op compute gap stands in for non-memory instructions.
    _execIdx = idx + 1;
    _eq.scheduleIn(_execOpEvent, _cfg.computeGap);
}

} // namespace atomsim
