#include "cpu/mem_op.hh"

namespace atomsim
{

const char *
opName(OpKind kind)
{
    switch (kind) {
      case OpKind::Load: return "Load";
      case OpKind::Store: return "Store";
      case OpKind::Compute: return "Compute";
      case OpKind::AtomicBegin: return "AtomicBegin";
      case OpKind::AtomicEnd: return "AtomicEnd";
    }
    return "?";
}

} // namespace atomsim
