/**
 * @file
 * Core model: an in-order issue window over a memory-op stream with a
 * 32-entry store queue.
 *
 * The core pulls transactions from a TransactionSource (timing-directed
 * dispatch) and executes their ops: loads block; stores issue into the
 * StoreQueue and retire asynchronously; Atomic_Begin / Atomic_End call
 * into the active design's hooks (AUS acquisition, commit protocol).
 * See DESIGN.md for how this substitutes for the paper's OoO core.
 */

#ifndef ATOMSIM_CPU_CORE_HH
#define ATOMSIM_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <optional>

#include "cpu/mem_op.hh"
#include "cpu/store_queue.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{

class L1Cache;

/** Supplies transactions to a core at dispatch time. */
class TransactionSource
{
  public:
    /** Continuation receiving the fetched transaction (or nullopt). */
    using FetchDone = std::function<void(std::optional<Transaction>)>;

    virtual ~TransactionSource() = default;

    /** Next transaction for @p core; std::nullopt when done. */
    virtual std::optional<Transaction> next(CoreId core) = 0;

    /**
     * Asynchronous fetch: @p done receives the next transaction.
     * Default: inline. Sharded runners override this to route the
     * (functional, shared-state) workload dispatch through the
     * barrier control plane so per-tile domains never race on it.
     */
    virtual void
    fetchNext(CoreId core, FetchDone done)
    {
        done(next(core));
    }
};

/**
 * Design-specific actions at atomic-region boundaries. Implemented by
 * designs::DesignContext.
 */
class DesignHooks
{
  public:
    virtual ~DesignHooks() = default;

    /**
     * Atomic_Begin: acquire an AUS (stalling on structural overflow)
     * and arm logging for @p core.
     */
    virtual void atomicBegin(CoreId core, std::function<void()> done) = 0;

    /**
     * Atomic_End commit protocol: for undo designs, durably flush
     * @p modified_lines then truncate the log; for REDO, drain the
     * combine buffer and persist the commit record. @p done marks the
     * transaction durable.
     */
    virtual void atomicEnd(CoreId core,
                           const std::vector<Addr> &modified_lines,
                           std::function<void()> done) = 0;
};

/** One simulated core. */
class Core
{
  public:
    Core(CoreId id, EventQueue &eq, const SystemConfig &cfg, L1Cache &l1,
         StatSet &stats);

    void setSource(TransactionSource *src) { _source = src; }
    void setHooks(DesignHooks *hooks) { _hooks = hooks; }

    /** Begin pulling and executing transactions. */
    void start();

    /** True once the source is exhausted and all work retired. */
    bool done() const { return _done; }

    CoreId id() const { return _id; }
    StoreQueue &storeQueue() { return _sq; }

    std::uint64_t committed() const { return _statCommitted.value(); }

    /**
     * Lower bound on the tick of this core's next control-plane
     * submission (Atomic_Begin/End hook call or transaction fetch).
     *
     * The in-order core inserts a computeGap between consecutive ops,
     * so from the currently executing op the next transaction-boundary
     * op is at least (ops until boundary) x computeGap away. The bound
     * is updated at op issue and goes kTickNever once the source is
     * exhausted. It may be stale-low while the core idles inside a
     * window (the sharded engine maxes it with live queue bounds); it
     * is never higher than the true next submission tick.
     */
    Tick ctrlLowerBound() const { return _ctrlLB; }

  private:
    void nextTransaction();
    void execOp(std::size_t idx);
    void opDone(std::size_t idx);
    void updateCtrlBound(std::size_t idx);

    CoreId _id;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    L1Cache &_l1;
    StoreQueue _sq;

    TransactionSource *_source = nullptr;
    DesignHooks *_hooks = nullptr;

    std::optional<Transaction> _txn;
    bool _done = false;

    Tick _ctrlLB = 0;             //!< see ctrlLowerBound()
    std::size_t _ctrlNextIdx = 0; //!< cached next boundary-op index

    // Recurring kernel events (one of each pending at most; the core
    // is in-order, so op completion and the inter-op gap alternate).
    TickEvent _nextTxnEvent;  //!< pull the next transaction
    TickEvent _opDoneEvent;   //!< completion of the op at _opDoneIdx
    TickEvent _execOpEvent;   //!< start of the op at _execIdx
    std::size_t _opDoneIdx = 0;
    std::size_t _execIdx = 0;

    Counter &_statCommitted;
    Counter &_statOps;
    Counter &_statLoadStallCycles;
};

} // namespace atomsim

#endif // ATOMSIM_CPU_CORE_HH
