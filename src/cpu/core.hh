/**
 * @file
 * Core model: an in-order issue window over a memory-op stream with a
 * 32-entry store queue.
 *
 * The core pulls transactions from a TransactionSource (timing-directed
 * dispatch) and executes their ops: loads block; stores issue into the
 * StoreQueue and retire asynchronously; Atomic_Begin / Atomic_End call
 * into the active design's hooks (AUS acquisition, commit protocol).
 * See DESIGN.md for how this substitutes for the paper's OoO core.
 */

#ifndef ATOMSIM_CPU_CORE_HH
#define ATOMSIM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "cpu/mem_op.hh"
#include "cpu/store_queue.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{

class L1Cache;

/** Supplies transactions to a core at dispatch time. */
class TransactionSource
{
  public:
    /** Continuation receiving the fetched transaction (or nullopt). */
    using FetchDone = std::function<void(std::optional<Transaction>)>;

    virtual ~TransactionSource() = default;

    /** Next transaction for @p core; std::nullopt when done. */
    virtual std::optional<Transaction> next(CoreId core) = 0;

    /**
     * Asynchronous fetch: @p done receives the next transaction.
     * Default: inline. Sharded runners override this to route the
     * (functional, shared-state) workload dispatch through the
     * barrier control plane so per-tile domains never race on it.
     */
    virtual void
    fetchNext(CoreId core, FetchDone done)
    {
        done(next(core));
    }
};

/**
 * Design-specific actions at atomic-region boundaries. Implemented by
 * designs::DesignContext.
 */
class DesignHooks
{
  public:
    virtual ~DesignHooks() = default;

    /**
     * Atomic_Begin: acquire an AUS (stalling on structural overflow)
     * and arm logging for @p core.
     */
    virtual void atomicBegin(CoreId core, std::function<void()> done) = 0;

    /**
     * Atomic_End commit protocol: for undo designs, durably flush
     * @p modified_lines then truncate the log; for REDO, drain the
     * combine buffer and persist the commit record. @p done marks the
     * transaction durable.
     */
    virtual void atomicEnd(CoreId core,
                           const std::vector<Addr> &modified_lines,
                           std::function<void()> done) = 0;
};

/**
 * Global transaction ticket: at most one core holds it, waiters are
 * granted strictly in arrival order. This is the timing-level stand-in
 * for the lock-based isolation ATOM requires from software: workloads
 * whose atomic regions mutate SHARED structures (TPC-C's B+-trees and
 * district rows) are only crash-consistent when concurrent regions
 * never overlap on a line -- rolling back one core's incomplete region
 * would otherwise restore pre-images over another core's committed
 * writes.
 *
 * The ticket spans the WHOLE transaction (fetch through completion),
 * not just the Atomic_Begin..Atomic_End window. A transaction's store
 * payloads are computed functionally at fetch, so fetch order is the
 * order shared-structure mutations compose in; serializing only the
 * region would let a core whose pre-region loads finish early commit
 * ahead of a functionally-earlier peer, and rolling that peer back
 * after a crash leaves durable writes that structurally assume the
 * rolled-back update. Opt-in via
 * SystemConfig::serializeAtomicRegions (sequential kernel only); the
 * per-core micro workloads never need it, so default timing -- and
 * every pinned golden -- is unchanged.
 */
class RegionSerializer
{
  public:
    /** Call @p granted once the ticket is exclusively held. Runs
     * inline when the ticket is free. */
    void
    acquire(std::function<void()> granted)
    {
        if (!_held) {
            _held = true;
            granted();
            return;
        }
        _waiters.push_back(std::move(granted));
    }

    /** Hand the ticket to the oldest waiter (inline), or free it. */
    void
    release()
    {
        if (_waiters.empty()) {
            _held = false;
            return;
        }
        auto granted = std::move(_waiters.front());
        _waiters.pop_front();
        granted();
    }

  private:
    bool _held = false;
    std::deque<std::function<void()>> _waiters;
};

/** One simulated core. */
class Core
{
  public:
    Core(CoreId id, EventQueue &eq, const SystemConfig &cfg, L1Cache &l1,
         StatSet &stats);

    /**
     * Completion hook for latency measurement: fires once per
     * transaction when its last op retires, with the dispatch tick
     * (transaction received from the source) and the completion tick.
     * Runs on the core's own domain queue, so what it observes is
     * shard-invariant. Purely observational -- installing one never
     * changes simulated behavior.
     */
    using TxnObserver = std::function<void(
        CoreId, const Transaction &, Tick start, Tick end)>;

    void setSource(TransactionSource *src) { _source = src; }
    void setHooks(DesignHooks *hooks) { _hooks = hooks; }
    void setTxnObserver(TxnObserver obs) { _observer = std::move(obs); }
    /** Gate each whole transaction (fetch through completion) on the
     * shared ticket (see RegionSerializer; nullptr = default ungated
     * timing). */
    void setRegionSerializer(RegionSerializer *s) { _regionSer = s; }

    /** Begin pulling and executing transactions. */
    void start();

    /** True once the source is exhausted and all work retired. */
    bool done() const { return _done; }

    CoreId id() const { return _id; }
    StoreQueue &storeQueue() { return _sq; }

    std::uint64_t committed() const { return _statCommitted.value(); }

    /**
     * Lower bound on the tick of this core's next control-plane
     * submission (Atomic_Begin/End hook call or transaction fetch).
     *
     * The in-order core inserts a computeGap between consecutive ops,
     * so from the currently executing op the next transaction-boundary
     * op is at least (ops until boundary) x computeGap away. The bound
     * is updated at op issue and goes kTickNever once the source is
     * exhausted. It may be stale-low while the core idles inside a
     * window (the sharded engine maxes it with live queue bounds); it
     * is never higher than the true next submission tick.
     */
    Tick ctrlLowerBound() const { return _ctrlLB; }

  private:
    void nextTransaction();
    void fetchTransaction();
    void execOp(std::size_t idx);
    void opDone(std::size_t idx);
    void updateCtrlBound(std::size_t idx);

    CoreId _id;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    L1Cache &_l1;
    StoreQueue _sq;

    TransactionSource *_source = nullptr;
    DesignHooks *_hooks = nullptr;
    RegionSerializer *_regionSer = nullptr;

    std::optional<Transaction> _txn;
    bool _done = false;
    TxnObserver _observer;
    Tick _txnStart = 0;  //!< dispatch tick of the running transaction

    Tick _ctrlLB = 0;             //!< see ctrlLowerBound()
    std::size_t _ctrlNextIdx = 0; //!< cached next boundary-op index

    // Recurring kernel events (one of each pending at most; the core
    // is in-order, so op completion and the inter-op gap alternate).
    TickEvent _nextTxnEvent;  //!< pull the next transaction
    TickEvent _opDoneEvent;   //!< completion of the op at _opDoneIdx
    TickEvent _execOpEvent;   //!< start of the op at _execIdx
    std::size_t _opDoneIdx = 0;
    std::size_t _execIdx = 0;

    Counter &_statCommitted;
    Counter &_statOps;
    Counter &_statLoadStallCycles;
};

} // namespace atomsim

#endif // ATOMSIM_CPU_CORE_HH
