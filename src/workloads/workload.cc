#include "workloads/workload.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace atomsim
{

std::string
faultf(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return buf;
}

RecordingAccessor::RecordingAccessor(DataImage &image, Transaction &txn)
    : _image(image), _txn(txn)
{
}

void
RecordingAccessor::emitLoad(Addr addr, std::uint32_t size)
{
    // Split into word-sized, line-contained chunks.
    while (size > 0) {
        const std::uint32_t to_line =
            std::uint32_t(lineAlign(addr) + kLineBytes - addr);
        const std::uint32_t chunk =
            std::min<std::uint32_t>({8, size, to_line});
        _txn.ops.push_back(MemOp::load(addr, chunk));
        addr += chunk;
        size -= chunk;
    }
}

void
RecordingAccessor::emitStore(Addr addr, const void *bytes,
                             std::uint32_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(bytes);
    while (size > 0) {
        const std::uint32_t to_line =
            std::uint32_t(lineAlign(addr) + kLineBytes - addr);
        const std::uint32_t chunk =
            std::min<std::uint32_t>({8, size, to_line});
        _txn.ops.push_back(MemOp::store(addr, p, chunk));
        if (_inAtomic) {
            const Addr line = lineAlign(addr);
            if (std::find(_modified.begin(), _modified.end(), line) ==
                _modified.end()) {
                _modified.push_back(line);
            }
        }
        p += chunk;
        addr += chunk;
        size -= chunk;
    }
}

std::uint64_t
RecordingAccessor::load64(Addr addr)
{
    emitLoad(addr, 8);
    return _image.load64(addr);
}

void
RecordingAccessor::store64(Addr addr, std::uint64_t value)
{
    emitStore(addr, &value, 8);
    _image.store64(addr, value);
}

std::uint32_t
RecordingAccessor::load32(Addr addr)
{
    emitLoad(addr, 4);
    return _image.load32(addr);
}

void
RecordingAccessor::store32(Addr addr, std::uint32_t value)
{
    emitStore(addr, &value, 4);
    _image.store32(addr, value);
}

void
RecordingAccessor::loadBytes(Addr addr, std::size_t size, void *out)
{
    emitLoad(addr, std::uint32_t(size));
    _image.read(addr, size, out);
}

void
RecordingAccessor::storeBytes(Addr addr, std::size_t size, const void *in)
{
    emitStore(addr, in, std::uint32_t(size));
    _image.write(addr, size, in);
}

void
RecordingAccessor::atomicBegin()
{
    panic_if(_inAtomic, "nested atomicBegin (regions are flattened "
                        "before reaching the trace)");
    _inAtomic = true;
    _txn.ops.push_back(MemOp::marker(OpKind::AtomicBegin));
}

void
RecordingAccessor::atomicEnd()
{
    panic_if(!_inAtomic, "atomicEnd without atomicBegin");
    _inAtomic = false;
    _txn.modifiedLines = _modified;
    _txn.ops.push_back(MemOp::marker(OpKind::AtomicEnd));
}

void
RecordingAccessor::compute(Cycles cycles)
{
    if (cycles > 0)
        _txn.ops.push_back(MemOp::compute(cycles));
}

} // namespace atomsim
