/**
 * @file
 * RBTree micro-benchmark: atomic insert/delete of nodes in per-core
 * persistent red-black trees (Table II).
 *
 * The tree is a standard red-black tree with parent pointers and a
 * per-core nil sentinel, implemented entirely over the Accessor
 * interface so every pointer/color update is a recorded persistent
 * store. Rebalancing makes this the workload with the most scattered
 * writes per transaction -- the case ATOM helps most (Section VI-A).
 */

#ifndef ATOMSIM_WORKLOADS_RBTREE_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_RBTREE_WORKLOAD_HH

#include <string>
#include <vector>

#include "workloads/heap.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/** Per-core red-black tree of {key, payload[entryBytes]} nodes. */
class RbTreeWorkload : public Workload
{
  public:
    explicit RbTreeWorkload(const MicroParams &params);

    std::string name() const override { return "rbtree"; }
    void init(DirectAccessor &mem, PersistentHeap &heap,
              std::uint32_t num_cores) override;
    void runTransaction(CoreId core, Accessor &mem, Random &rng) override;
    std::string checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores) override;

  private:
    struct PerCore
    {
        Addr anchor = 0;  //!< root pointer slot
        Addr nil = 0;     //!< sentinel node (black)
        std::uint64_t nextKey = 0;
        std::vector<std::uint64_t> liveKeys;  //!< for delete targeting
    };

    // Node field helpers (offsets within a node).
    Addr nodeBytes() const;

    Addr root(Accessor &mem, PerCore &pc);
    void setRoot(Accessor &mem, PerCore &pc, Addr n);

    void leftRotate(Accessor &mem, PerCore &pc, Addr x);
    void rightRotate(Accessor &mem, PerCore &pc, Addr x);
    void insertFixup(Accessor &mem, PerCore &pc, Addr z);
    void transplant(Accessor &mem, PerCore &pc, Addr u, Addr v);
    void deleteFixup(Accessor &mem, PerCore &pc, Addr x);
    Addr minimum(Accessor &mem, PerCore &pc, Addr n);

    void insert(CoreId core, Accessor &mem, std::uint64_t key);
    bool remove(CoreId core, Accessor &mem, std::uint64_t key);
    Addr find(Accessor &mem, PerCore &pc, std::uint64_t key);

    std::string checkSubtree(DirectAccessor &mem, const PerCore &pc,
                             Addr n, std::uint64_t lo, std::uint64_t hi,
                             int &black_height) const;

    MicroParams _params;
    PersistentHeap *_heap = nullptr;
    std::vector<PerCore> _state;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_RBTREE_WORKLOAD_HH
