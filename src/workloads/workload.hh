/**
 * @file
 * Workload layer: functional execution + trace recording.
 *
 * Persistent data structures are written against the Accessor
 * interface. During initialization they run through a DirectAccessor
 * (pure functional memory). During simulation each transaction runs
 * through a RecordingAccessor, which applies the operation to the
 * architectural image *and* emits the memory micro-op trace the timing
 * model replays (see DESIGN.md, "Execution model").
 */

#ifndef ATOMSIM_WORKLOADS_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/mem_op.hh"
#include "mem/phys_mem.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace atomsim
{

class PersistentHeap;

/**
 * printf-style formatter for checkConsistency diagnostics. Keeps the
 * string-returning contract (empty = consistent) while letting
 * workloads report *what* tore -- core, address, expected vs found
 * bytes -- so crash-campaign logs and shrunk reproducers carry the
 * fault, not just its existence.
 */
std::string faultf(const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

/** Memory access interface data structures are written against. */
class Accessor
{
  public:
    virtual ~Accessor() = default;

    virtual std::uint64_t load64(Addr addr) = 0;
    virtual void store64(Addr addr, std::uint64_t value) = 0;
    virtual std::uint32_t load32(Addr addr) = 0;
    virtual void store32(Addr addr, std::uint32_t value) = 0;
    virtual void loadBytes(Addr addr, std::size_t size, void *out) = 0;
    virtual void storeBytes(Addr addr, std::size_t size,
                            const void *in) = 0;

    /** Mark the start/end of the atomic durable region. */
    virtual void atomicBegin() = 0;
    virtual void atomicEnd() = 0;

    /** Non-memory work (hashing, comparisons) of @p cycles cycles. */
    virtual void compute(Cycles cycles) = 0;

    /**
     * Label the running transaction with its tenant and workload
     * transaction class (latency-histogram keys). A no-op outside
     * recorded simulation (DirectAccessor), so workloads may call it
     * unconditionally.
     */
    virtual void tagTxn(std::uint16_t /*tenant*/, std::uint16_t /*cls*/) {}
};

/** Functional-only accessor (initialization, validation walks). */
class DirectAccessor : public Accessor
{
  public:
    explicit DirectAccessor(DataImage &image) : _image(image) {}

    std::uint64_t load64(Addr a) override { return _image.load64(a); }
    void store64(Addr a, std::uint64_t v) override { _image.store64(a, v); }
    std::uint32_t load32(Addr a) override { return _image.load32(a); }
    void store32(Addr a, std::uint32_t v) override { _image.store32(a, v); }

    void
    loadBytes(Addr a, std::size_t n, void *out) override
    {
        _image.read(a, n, out);
    }

    void
    storeBytes(Addr a, std::size_t n, const void *in) override
    {
        _image.write(a, n, in);
    }

    void atomicBegin() override {}
    void atomicEnd() override {}
    void compute(Cycles) override {}

  private:
    DataImage &_image;
};

/**
 * Applies accesses to the architectural image and records the micro-op
 * trace. Loads and stores are split into <= 8-byte, line-contained
 * chunks (SQ/word granularity); stores inside the atomic region also
 * collect the modified-line set the commit protocol flushes.
 */
class RecordingAccessor : public Accessor
{
  public:
    RecordingAccessor(DataImage &image, Transaction &txn);

    std::uint64_t load64(Addr addr) override;
    void store64(Addr addr, std::uint64_t value) override;
    std::uint32_t load32(Addr addr) override;
    void store32(Addr addr, std::uint32_t value) override;
    void loadBytes(Addr addr, std::size_t size, void *out) override;
    void storeBytes(Addr addr, std::size_t size, const void *in) override;

    void atomicBegin() override;
    void atomicEnd() override;
    void compute(Cycles cycles) override;

    void
    tagTxn(std::uint16_t tenant, std::uint16_t cls) override
    {
        _txn.tenant = tenant;
        _txn.txnClass = cls;
    }

    bool inAtomic() const { return _inAtomic; }

  private:
    void emitLoad(Addr addr, std::uint32_t size);
    void emitStore(Addr addr, const void *bytes, std::uint32_t size);

    DataImage &_image;
    Transaction &_txn;
    bool _inAtomic = false;
    std::vector<Addr> _modified;  //!< line addresses, first-write order
};

/** Dataset-size/mix parameters for the micro-benchmarks (Section V). */
struct MicroParams
{
    /** Payload bytes per table entry / tree node / queue element:
     * 512 (small) or 4096 (large) per the paper. */
    std::uint32_t entryBytes = 512;
    /** Elements preloaded per core before measurement. */
    std::uint32_t initialItems = 64;
    /** Transactions each core executes. */
    std::uint32_t txnsPerCore = 40;
    std::uint64_t seed = 42;

    static MicroParams
    small()
    {
        return MicroParams{};
    }

    static MicroParams
    large()
    {
        MicroParams p;
        p.entryBytes = 4096;
        p.initialItems = 16;
        p.txnsPerCore = 16;
        return p;
    }
};

/** A multi-core workload: per-core structures + transaction stream. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /** Build initial persistent state (runs functionally). */
    virtual void init(DirectAccessor &mem, PersistentHeap &heap,
                      std::uint32_t num_cores) = 0;

    /**
     * Execute one transaction for @p core against @p mem (functional +
     * recorded). Must bracket the durable mutation with
     * atomicBegin()/atomicEnd().
     */
    virtual void runTransaction(CoreId core, Accessor &mem,
                                Random &rng) = 0;

    /**
     * Structure-consistency check used by the crash/recovery property
     * tests: walk the structure in @p mem and verify its invariants.
     * @return empty string when consistent; a diagnostic otherwise.
     */
    virtual std::string checkConsistency(DirectAccessor &mem,
                                         std::uint32_t num_cores) = 0;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_WORKLOAD_HH
