/**
 * @file
 * SDG micro-benchmark: atomic insert/delete of edges in a scalable
 * graph (adjacency lists), per Table II of the paper.
 */

#ifndef ATOMSIM_WORKLOADS_SDG_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_SDG_WORKLOAD_HH

#include <vector>

#include "workloads/heap.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/**
 * Per core: a vertex table; each vertex anchors a linked adjacency
 * list of edge nodes {to, next, weight, payload}. A transaction adds
 * or removes a random edge atomically, updating the per-vertex degree
 * and the global edge count.
 */
class SdgWorkload : public Workload
{
  public:
    explicit SdgWorkload(const MicroParams &params);

    std::string name() const override { return "sdg"; }
    void init(DirectAccessor &mem, PersistentHeap &heap,
              std::uint32_t num_cores) override;
    void runTransaction(CoreId core, Accessor &mem, Random &rng) override;
    std::string checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores) override;

    static constexpr std::uint32_t kVertices = 32;

  private:
    struct PerCore
    {
        /** Vertex table: per vertex {edgeHead @0, degree @8}. */
        Addr vertices = 0;
        /** Global counters: edgeCount @0, degreeSum @8. */
        Addr counters = 0;
    };

    Addr edgeBytes() const;
    void insertEdge(CoreId core, Accessor &mem, std::uint32_t from,
                    std::uint32_t to);
    bool removeEdge(CoreId core, Accessor &mem, std::uint32_t from,
                    std::uint32_t to);

    MicroParams _params;
    PersistentHeap *_heap = nullptr;
    std::vector<PerCore> _state;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_SDG_WORKLOAD_HH
