/**
 * @file
 * BTree micro-benchmark: atomic insert/delete of nodes in per-core
 * persistent B+-trees (Table II). Values point at payload blocks of
 * entryBytes written inside the atomic region.
 */

#ifndef ATOMSIM_WORKLOADS_BTREE_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_BTREE_WORKLOAD_HH

#include <memory>
#include <vector>

#include "workloads/heap.hh"
#include "workloads/tpcc/bplus_tree.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/** Per-core B+-tree with external payload blocks. */
class BTreeWorkload : public Workload
{
  public:
    explicit BTreeWorkload(const MicroParams &params);

    std::string name() const override { return "btree"; }
    void init(DirectAccessor &mem, PersistentHeap &heap,
              std::uint32_t num_cores) override;
    void runTransaction(CoreId core, Accessor &mem, Random &rng) override;
    std::string checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores) override;

  private:
    struct PerCore
    {
        std::unique_ptr<BPlusTree> tree;
        std::uint64_t nextKey = 0;
        std::vector<std::uint64_t> liveKeys;
    };

    void insert(CoreId core, Accessor &mem, std::uint64_t key);

    MicroParams _params;
    PersistentHeap *_heap = nullptr;
    std::vector<PerCore> _state;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_BTREE_WORKLOAD_HH
