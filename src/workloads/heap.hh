/**
 * @file
 * Persistent-region allocator for the workloads.
 *
 * A bump allocator with per-core arenas over the simulated physical
 * address space. Per-core arenas keep each thread's structures
 * disjoint (as in the NVHeaps-style micro-benchmarks) while page
 * interleaving spreads them across memory controllers. Freed blocks
 * go to per-size free lists for reuse; allocator *metadata* is
 * simulation-side (the paper's workloads use a persistent allocator,
 * but allocator persistence is orthogonal to the logging study --
 * noted in DESIGN.md).
 */

#ifndef ATOMSIM_WORKLOADS_HEAP_HH
#define ATOMSIM_WORKLOADS_HEAP_HH

#include <cstdint>
#include <map>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Bump allocator with per-core arenas and size-class free lists. */
class PersistentHeap
{
  public:
    /**
     * @param base  first usable byte
     * @param limit one past the last usable byte (the log region
     *              starts here; allocation past it is fatal)
     * @param cores number of per-core arenas
     */
    PersistentHeap(Addr base, Addr limit, std::uint32_t cores);

    /**
     * Allocate @p bytes for @p core, aligned to @p align (power of 2,
     * >= 8). Objects of a cache line or more are line-aligned so
     * entry payloads occupy whole lines.
     */
    Addr alloc(std::uint32_t core, std::size_t bytes,
               std::size_t align = 8);

    /** Return a block to @p core's free list for its size class. */
    void free(std::uint32_t core, Addr addr, std::size_t bytes);

    /** Total bytes handed out (before reuse). */
    Addr bytesUsed() const { return _bytesUsed; }

    /** One past the highest address ever allocated. */
    Addr highWater() const { return _highWater; }

  private:
    struct Arena
    {
        Addr cursor = 0;
        Addr end = 0;
        std::map<std::size_t, std::vector<Addr>> freeLists;
    };

    /** Grow @p core's arena by one chunk (at least @p min_bytes). */
    void refill(std::uint32_t core, std::size_t min_bytes);

    Addr _next;
    Addr _limit;
    Addr _bytesUsed = 0;
    Addr _highWater = 0;
    std::vector<Arena> _arenas;

    static constexpr Addr kArenaChunk = 64 * kPageBytes;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_HEAP_HH
