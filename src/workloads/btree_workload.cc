#include "workloads/btree_workload.hh"

#include <algorithm>

namespace atomsim
{

namespace
{

std::uint64_t
payloadWord(std::uint64_t key, std::size_t i)
{
    return key * 0x2545f4914f6cdd1dULL + i;
}

} // namespace

BTreeWorkload::BTreeWorkload(const MicroParams &params) : _params(params)
{
}

void
BTreeWorkload::init(DirectAccessor &mem, PersistentHeap &heap,
                    std::uint32_t num_cores)
{
    _heap = &heap;
    _state.clear();
    _state.resize(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        PerCore &pc = _state[c];
        const Addr anchor = BPlusTree::create(mem, heap, c);
        pc.tree = std::make_unique<BPlusTree>(anchor, heap, c);
        pc.nextKey = (std::uint64_t(c) << 32) + 1;
        for (std::uint32_t i = 0; i < _params.initialItems; ++i)
            insert(c, mem, pc.nextKey++);
    }
}

void
BTreeWorkload::insert(CoreId core, Accessor &mem, std::uint64_t key)
{
    PerCore &pc = _state[core];
    const Addr payload = _heap->alloc(core, _params.entryBytes,
                                      kLineBytes);
    std::vector<std::uint64_t> words(_params.entryBytes / 8);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] = payloadWord(key, i);

    mem.atomicBegin();
    mem.storeBytes(payload, _params.entryBytes, words.data());
    pc.tree->insert(mem, key, payload);
    mem.atomicEnd();
    pc.liveKeys.push_back(key);
}

void
BTreeWorkload::runTransaction(CoreId core, Accessor &mem, Random &rng)
{
    PerCore &pc = _state[core];
    if (!pc.liveKeys.empty()) {
        pc.tree->search(
            mem, pc.liveKeys[std::size_t(rng.below(pc.liveKeys.size()))]);
    }
    if (pc.liveKeys.empty() || rng.chance(0.5)) {
        insert(core, mem, pc.nextKey++);
    } else {
        const std::size_t at = std::size_t(rng.below(pc.liveKeys.size()));
        const std::uint64_t key = pc.liveKeys[at];
        mem.atomicBegin();
        pc.tree->remove(mem, key);
        mem.atomicEnd();
        pc.liveKeys[at] = pc.liveKeys.back();
        pc.liveKeys.pop_back();
    }
}

std::string
BTreeWorkload::checkConsistency(DirectAccessor &mem,
                                std::uint32_t num_cores)
{
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        PerCore &pc = _state[c];
        if (!pc.tree)
            continue;
        const std::string err = pc.tree->checkStructure(mem);
        if (!err.empty())
            return err;
        // Payload integrity for every reachable key.
        for (std::uint64_t key = (std::uint64_t(c) << 32) + 1;
             key < pc.nextKey; ++key) {
            const auto val = pc.tree->search(mem, key);
            if (!val)
                continue;
            std::vector<std::uint64_t> words(_params.entryBytes / 8);
            mem.loadBytes(*val, _params.entryBytes, words.data());
            for (std::size_t i = 0; i < words.size(); ++i) {
                if (words[i] != payloadWord(key, i)) {
                    return faultf(
                        "torn btree payload: core=%u key=0x%llx "
                        "word=%zu addr=0x%llx expected=0x%llx "
                        "found=0x%llx",
                        c, (unsigned long long)key, i,
                        (unsigned long long)(*val + i * 8),
                        (unsigned long long)payloadWord(key, i),
                        (unsigned long long)words[i]);
                }
            }
        }
    }
    return "";
}

} // namespace atomsim
