#include "workloads/queue_workload.hh"

#include <vector>

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

constexpr Addr kNextOff = 0;
constexpr Addr kSeqOff = 8;
constexpr Addr kPayloadOff = kLineBytes;

constexpr Addr kHeadOff = 0;
constexpr Addr kTailOff = 8;
constexpr Addr kCountOff = 16;

} // namespace

QueueWorkload::QueueWorkload(const MicroParams &params) : _params(params)
{
}

Addr
QueueWorkload::nodeBytes() const
{
    return kPayloadOff + _params.entryBytes;
}

void
QueueWorkload::init(DirectAccessor &mem, PersistentHeap &heap,
                    std::uint32_t num_cores)
{
    _heap = &heap;
    _state.assign(num_cores, PerCore{});
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        PerCore &pc = _state[c];
        pc.anchor = heap.alloc(c, 24, kLineBytes);
        mem.store64(pc.anchor + kHeadOff, 0);
        mem.store64(pc.anchor + kTailOff, 0);
        mem.store64(pc.anchor + kCountOff, 0);
        pc.nextSeq = std::uint64_t(c) << 32;
        for (std::uint32_t i = 0; i < _params.initialItems; ++i)
            enqueue(c, mem);
    }
}

void
QueueWorkload::enqueue(CoreId core, Accessor &mem)
{
    PerCore &pc = _state[core];
    const std::uint64_t seq = pc.nextSeq++;
    const Addr node = _heap->alloc(core, nodeBytes());
    const Addr tail = mem.load64(pc.anchor + kTailOff);
    const std::uint64_t count = mem.load64(pc.anchor + kCountOff);

    std::vector<std::uint64_t> payload(_params.entryBytes / 8);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = seq * 0xc2b2ae3d27d4eb4fULL + i;

    mem.atomicBegin();
    mem.store64(node + kNextOff, 0);
    mem.store64(node + kSeqOff, seq);
    mem.storeBytes(node + kPayloadOff, _params.entryBytes,
                   payload.data());
    if (tail == 0) {
        mem.store64(pc.anchor + kHeadOff, node);
    } else {
        mem.store64(tail + kNextOff, node);
    }
    mem.store64(pc.anchor + kTailOff, node);
    mem.store64(pc.anchor + kCountOff, count + 1);
    mem.atomicEnd();
}

void
QueueWorkload::dequeue(CoreId core, Accessor &mem)
{
    PerCore &pc = _state[core];
    const Addr head = mem.load64(pc.anchor + kHeadOff);
    if (head == 0)
        return;
    const Addr next = mem.load64(head + kNextOff);
    const std::uint64_t count = mem.load64(pc.anchor + kCountOff);

    mem.atomicBegin();
    mem.store64(pc.anchor + kHeadOff, next);
    if (next == 0)
        mem.store64(pc.anchor + kTailOff, 0);
    mem.store64(pc.anchor + kCountOff, count - 1);
    mem.store64(head + kSeqOff, ~std::uint64_t(0));  // poison
    mem.atomicEnd();
    _heap->free(core, head, nodeBytes());
}

void
QueueWorkload::runTransaction(CoreId core, Accessor &mem, Random &rng)
{
    // Peek (search analogue), then a balanced enqueue/dequeue mix.
    PerCore &pc = _state[core];
    const Addr head = mem.load64(pc.anchor + kHeadOff);
    if (head != 0)
        mem.load64(head + kSeqOff);

    if (rng.chance(0.5))
        enqueue(core, mem);
    else
        dequeue(core, mem);
}

std::string
QueueWorkload::checkConsistency(DirectAccessor &mem,
                                std::uint32_t num_cores)
{
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        const PerCore &pc = _state[c];
        if (pc.anchor == 0)
            continue;
        const Addr head = mem.load64(pc.anchor + kHeadOff);
        const Addr tail = mem.load64(pc.anchor + kTailOff);
        const std::uint64_t count = mem.load64(pc.anchor + kCountOff);

        std::uint64_t seen = 0;
        Addr node = head;
        Addr last = 0;
        std::uint64_t prev_seq = 0;
        while (node != 0) {
            const std::uint64_t seq = mem.load64(node + kSeqOff);
            if (seq == ~std::uint64_t(0)) {
                return faultf("queue reaches a dequeued (poisoned) node:"
                              " core=%u node=0x%llx position=%llu",
                              c, (unsigned long long)node,
                              (unsigned long long)seen);
            }
            if (seen > 0 && seq <= prev_seq) {
                return faultf(
                    "queue sequence numbers not increasing: core=%u "
                    "node=0x%llx seq=0x%llx prev_seq=0x%llx",
                    c, (unsigned long long)node, (unsigned long long)seq,
                    (unsigned long long)prev_seq);
            }
            std::vector<std::uint64_t> payload(_params.entryBytes / 8);
            mem.loadBytes(node + kPayloadOff, _params.entryBytes,
                          payload.data());
            for (std::size_t i = 0; i < payload.size(); ++i) {
                if (payload[i] != seq * 0xc2b2ae3d27d4eb4fULL + i) {
                    return faultf(
                        "torn queue payload: core=%u node=0x%llx "
                        "seq=0x%llx word=%zu addr=0x%llx expected=0x%llx "
                        "found=0x%llx",
                        c, (unsigned long long)node,
                        (unsigned long long)seq, i,
                        (unsigned long long)(node + kPayloadOff + i * 8),
                        (unsigned long long)(
                            seq * 0xc2b2ae3d27d4eb4fULL + i),
                        (unsigned long long)payload[i]);
                }
            }
            prev_seq = seq;
            last = node;
            node = mem.load64(node + kNextOff);
            if (++seen > (std::uint64_t(1) << 24))
                return faultf("cycle in the queue: core=%u", c);
        }
        if (seen != count) {
            return faultf("queue count disagrees with the chain length:"
                          " core=%u count=%llu chain=%llu",
                          c, (unsigned long long)count,
                          (unsigned long long)seen);
        }
        if (last != tail) {
            return faultf("tail pointer does not reach the last node:"
                          " core=%u tail=0x%llx last=0x%llx",
                          c, (unsigned long long)tail,
                          (unsigned long long)last);
        }
        if ((head == 0) != (tail == 0)) {
            return faultf("head/tail emptiness mismatch: core=%u "
                          "head=0x%llx tail=0x%llx",
                          c, (unsigned long long)head,
                          (unsigned long long)tail);
        }
    }
    return "";
}

} // namespace atomsim
