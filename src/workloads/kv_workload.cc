#include "workloads/kv_workload.hh"

#include <cmath>
#include <vector>

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

/** Slot field offsets: keyTag @0, version @8, value @64. */
constexpr Addr kKeyTagOff = 0;
constexpr Addr kVersionOff = 8;
constexpr Addr kValueOff = kLineBytes;

/** First word of the value pattern of (tenant, key, version). */
std::uint64_t
valueSeed(std::uint32_t tenant, std::uint64_t key, std::uint64_t version)
{
    std::uint64_t x = (std::uint64_t(tenant) << 48) ^
                      key * 0x9e3779b97f4a7c15ULL ^
                      version * 0xc2b2ae3d27d4eb4fULL;
    x ^= x >> 29;
    return x;
}

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        sum += 1.0 / std::pow(double(i + 1), theta);
    return sum;
}

} // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : _n(n), _theta(theta)
{
    panic_if(n == 0, "zipfian over an empty key space");
    if (_theta <= 0) {
        _theta = 0;
        return;  // uniform; next() special-cases this
    }
    _zetan = zeta(n, _theta);
    _alpha = 1.0 / (1.0 - _theta);
    const double zeta2 = zeta(2, _theta);
    _eta = (1.0 - std::pow(2.0 / double(n), 1.0 - _theta)) /
           (1.0 - zeta2 / _zetan);
}

std::uint64_t
ZipfianGenerator::next(Random &rng) const
{
    if (_theta == 0)
        return rng.below(_n);
    const double u = rng.unit();
    const double uz = u * _zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, _theta))
        return 1;
    auto rank = std::uint64_t(double(_n) *
                              std::pow(_eta * u - _eta + 1.0, _alpha));
    return rank >= _n ? _n - 1 : rank;
}

const char *
KvWorkload::className(std::uint16_t cls)
{
    switch (cls) {
      case kClassRead:
        return "read";
      case kClassUpdate:
        return "update";
      case kClassInsert:
        return "insert";
    }
    return "?";
}

KvWorkload::KvWorkload(const KvParams &params) : _params(params)
{
    panic_if(_params.valueBytes == 0 || _params.valueBytes % 8 != 0,
             "kv valueBytes must be a nonzero multiple of 8");
    panic_if(_params.keysPerTenant == 0, "kv keysPerTenant must be > 0");
    panic_if(_params.readFraction + _params.updateFraction > 1.0 + 1e-9,
             "kv read + update fractions exceed 1");
}

std::uint32_t
KvWorkload::tenantCount() const
{
    return _params.numTenants ? _params.numTenants : 1;
}

std::uint32_t
KvWorkload::tenantOfCore(CoreId core) const
{
    // Must mirror SystemConfig::tenantOf: contiguous balanced blocks.
    return std::uint32_t(std::uint64_t(core) * tenantCount() / _numCores);
}

std::uint32_t
KvWorkload::slotBytes() const
{
    const std::uint32_t value_lines =
        (_params.valueBytes + kLineBytes - 1) / kLineBytes;
    return std::uint32_t(kValueOff) + value_lines * kLineBytes;
}

Addr
KvWorkload::slotAddr(const Tenant &t, std::uint64_t key) const
{
    return t.table + key * slotBytes();
}

void
KvWorkload::writeValue(Accessor &mem, Addr value_addr,
                       std::uint32_t tenant, std::uint64_t key,
                       std::uint64_t version)
{
    std::vector<std::uint64_t> words(_params.valueBytes / 8);
    const std::uint64_t seed = valueSeed(tenant, key, version);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] = seed + i;
    mem.storeBytes(value_addr, _params.valueBytes, words.data());
}

void
KvWorkload::init(DirectAccessor &mem, PersistentHeap &heap,
                 std::uint32_t num_cores)
{
    const std::uint32_t nt = tenantCount();
    panic_if(num_cores < nt, "kv workload: fewer cores (%u) than "
             "tenants (%u)", num_cores, nt);
    _numCores = num_cores;
    _state.assign(num_cores, PerCore{});
    _tenants.assign(nt, Tenant{});
    _zipf.clear();
    _zipf.emplace_back(_params.keysPerTenant, _params.theta);

    for (std::uint32_t t = 0; t < nt; ++t) {
        Tenant &ten = _tenants[t];
        // Invert tenantOf: tenant t owns cores [ceil(t*N/T),
        // ceil((t+1)*N/T)).
        ten.firstCore = std::uint32_t(
            (std::uint64_t(t) * num_cores + nt - 1) / nt);
        const std::uint32_t next_first = std::uint32_t(
            (std::uint64_t(t + 1) * num_cores + nt - 1) / nt);
        ten.numCores = next_first - ten.firstCore;
        ten.slots = _params.keysPerTenant +
                    ten.numCores * _params.insertsPerCore;

        // The whole tenant's table comes from its first core's arena:
        // tenant address ranges are disjoint by construction.
        ten.table = heap.alloc(ten.firstCore,
                               std::size_t(ten.slots) * slotBytes(),
                               kLineBytes);
        for (std::uint32_t k = 0; k < _params.keysPerTenant; ++k) {
            const Addr slot = slotAddr(ten, k);
            mem.store64(slot + kKeyTagOff, k + 1);
            mem.store64(slot + kVersionOff, 1);
            writeValue(mem, slot + kValueOff, t, k, 1);
        }
        // Insert-capacity slots start empty (keyTag = 0).
        for (std::uint32_t k = _params.keysPerTenant; k < ten.slots; ++k)
            mem.store64(slotAddr(ten, k) + kKeyTagOff, 0);
    }
}

void
KvWorkload::doRead(const Tenant &t, Accessor &mem, std::uint64_t key)
{
    const Addr slot = slotAddr(t, key);
    mem.compute(10);  // request parse + hash
    mem.load64(slot + kKeyTagOff);
    mem.load64(slot + kVersionOff);
    std::vector<std::uint64_t> words(_params.valueBytes / 8);
    mem.loadBytes(slot + kValueOff, _params.valueBytes, words.data());
    mem.compute(10);  // response serialization
}

void
KvWorkload::doUpdate(const Tenant &t, std::uint32_t tenant, Accessor &mem,
                     std::uint64_t key)
{
    const Addr slot = slotAddr(t, key);
    mem.compute(10);
    const std::uint64_t version = mem.load64(slot + kVersionOff);
    // Version bump + value rewrite form one atomic durable region, so
    // a torn update leaves a (version, value) mismatch for
    // checkConsistency to catch.
    mem.atomicBegin();
    mem.store64(slot + kVersionOff, version + 1);
    writeValue(mem, slot + kValueOff, tenant, key, version + 1);
    mem.atomicEnd();
}

void
KvWorkload::doInsert(const Tenant &t, std::uint32_t tenant, CoreId core,
                     Accessor &mem)
{
    PerCore &pc = _state[core];
    // Cores of one tenant stride the insert-capacity region so their
    // key ids never collide.
    const std::uint64_t key =
        _params.keysPerTenant + (core - t.firstCore) +
        std::uint64_t(pc.inserted) * t.numCores;
    ++pc.inserted;
    const Addr slot = slotAddr(t, key);
    mem.compute(10);
    mem.atomicBegin();
    mem.store64(slot + kKeyTagOff, key + 1);
    mem.store64(slot + kVersionOff, 1);
    writeValue(mem, slot + kValueOff, tenant, key, 1);
    mem.atomicEnd();
}

void
KvWorkload::runTransaction(CoreId core, Accessor &mem, Random &rng)
{
    const std::uint32_t tenant = tenantOfCore(core);
    const Tenant &t = _tenants[tenant];
    const double op = rng.unit();

    if (op < _params.readFraction) {
        mem.tagTxn(std::uint16_t(tenant), kClassRead);
        doRead(t, mem, _zipf[0].next(rng));
        return;
    }
    if (op < _params.readFraction + _params.updateFraction ||
        _state[core].inserted >= _params.insertsPerCore) {
        // Update draw, or an insert draw from a core whose capacity is
        // exhausted (falls back so per-core work stays comparable).
        mem.tagTxn(std::uint16_t(tenant), kClassUpdate);
        doUpdate(t, tenant, mem, _zipf[0].next(rng));
        return;
    }
    mem.tagTxn(std::uint16_t(tenant), kClassInsert);
    doInsert(t, tenant, core, mem);
}

std::string
KvWorkload::checkConsistency(DirectAccessor &mem, std::uint32_t num_cores)
{
    (void)num_cores;
    for (std::uint32_t tn = 0; tn < _tenants.size(); ++tn) {
        const Tenant &t = _tenants[tn];
        if (t.table == 0)
            continue;
        for (std::uint32_t s = 0; s < t.slots; ++s) {
            const Addr slot = slotAddr(t, s);
            const std::uint64_t tag = mem.load64(slot + kKeyTagOff);
            if (tag == 0) {
                if (s < _params.keysPerTenant) {
                    return faultf("preloaded key vanished: tenant=%u "
                                  "key=%u slot=0x%llx",
                                  tn, s, (unsigned long long)slot);
                }
                continue;  // unused insert capacity
            }
            if (tag != s + 1) {
                return faultf("slot holds the wrong key (torn insert?): "
                              "tenant=%u slot_index=%u keyTag=0x%llx",
                              tn, s, (unsigned long long)tag);
            }
            const std::uint64_t version = mem.load64(slot + kVersionOff);
            if (version == 0) {
                return faultf("zero version: tenant=%u key=%u", tn, s);
            }
            std::vector<std::uint64_t> words(_params.valueBytes / 8);
            mem.loadBytes(slot + kValueOff, _params.valueBytes,
                          words.data());
            const std::uint64_t seed = valueSeed(tn, s, version);
            for (std::size_t i = 0; i < words.size(); ++i) {
                if (words[i] != seed + i) {
                    return faultf(
                        "torn value (version/value mismatch): tenant=%u "
                        "key=%u version=%llu word=%zu addr=0x%llx "
                        "expected=0x%llx found=0x%llx",
                        tn, s, (unsigned long long)version, i,
                        (unsigned long long)(slot + kValueOff + i * 8),
                        (unsigned long long)(seed + i),
                        (unsigned long long)words[i]);
                }
            }
        }
    }
    return "";
}

} // namespace atomsim
