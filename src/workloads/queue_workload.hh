/**
 * @file
 * Queue micro-benchmark: atomic enqueue/dequeue on per-core linked
 * FIFO queues, in the spirit of the copy-while-locked queue the paper
 * references (Table II).
 */

#ifndef ATOMSIM_WORKLOADS_QUEUE_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_QUEUE_WORKLOAD_HH

#include <vector>

#include "workloads/heap.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/**
 * Per core: a {head, tail, count} anchor plus singly-linked nodes
 * {next, seq, payload[entryBytes]}. A transaction enqueues or dequeues
 * atomically; enqueue copies the full payload (the write-heavy part).
 */
class QueueWorkload : public Workload
{
  public:
    explicit QueueWorkload(const MicroParams &params);

    std::string name() const override { return "queue"; }
    void init(DirectAccessor &mem, PersistentHeap &heap,
              std::uint32_t num_cores) override;
    void runTransaction(CoreId core, Accessor &mem, Random &rng) override;
    std::string checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores) override;

  private:
    struct PerCore
    {
        Addr anchor = 0;  //!< head @0, tail @8, count @16
        std::uint64_t nextSeq = 0;
    };

    Addr nodeBytes() const;
    void enqueue(CoreId core, Accessor &mem);
    void dequeue(CoreId core, Accessor &mem);

    MicroParams _params;
    PersistentHeap *_heap = nullptr;
    std::vector<PerCore> _state;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_QUEUE_WORKLOAD_HH
