#include "workloads/rbtree_workload.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

// Node layout: key @0, color @8 (0=black, 1=red), left @16, right @24,
// parent @32, payload @64 (line-aligned).
constexpr Addr kKeyOff = 0;
constexpr Addr kColorOff = 8;
constexpr Addr kLeftOff = 16;
constexpr Addr kRightOff = 24;
constexpr Addr kParentOff = 32;
constexpr Addr kPayloadOff = kLineBytes;

constexpr std::uint64_t kBlack = 0;
constexpr std::uint64_t kRed = 1;

std::uint64_t
payloadWord(std::uint64_t key, std::size_t i)
{
    return key * 0xa24baed4963ee407ULL + i;
}

} // namespace

RbTreeWorkload::RbTreeWorkload(const MicroParams &params)
    : _params(params)
{
}

Addr
RbTreeWorkload::nodeBytes() const
{
    return kPayloadOff + _params.entryBytes;
}

Addr
RbTreeWorkload::root(Accessor &mem, PerCore &pc)
{
    return mem.load64(pc.anchor);
}

void
RbTreeWorkload::setRoot(Accessor &mem, PerCore &pc, Addr n)
{
    mem.store64(pc.anchor, n);
}

void
RbTreeWorkload::init(DirectAccessor &mem, PersistentHeap &heap,
                     std::uint32_t num_cores)
{
    _heap = &heap;
    _state.assign(num_cores, PerCore{});
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        PerCore &pc = _state[c];
        pc.anchor = heap.alloc(c, 8, kLineBytes);
        pc.nil = heap.alloc(c, nodeBytes());
        mem.store64(pc.nil + kColorOff, kBlack);
        mem.store64(pc.nil + kLeftOff, pc.nil);
        mem.store64(pc.nil + kRightOff, pc.nil);
        mem.store64(pc.nil + kParentOff, pc.nil);
        setRoot(mem, pc, pc.nil);
        pc.nextKey = std::uint64_t(c) << 32;
        for (std::uint32_t i = 0; i < _params.initialItems; ++i)
            insert(c, mem, pc.nextKey++);
    }
}

void
RbTreeWorkload::leftRotate(Accessor &mem, PerCore &pc, Addr x)
{
    const Addr y = mem.load64(x + kRightOff);
    const Addr y_left = mem.load64(y + kLeftOff);
    mem.store64(x + kRightOff, y_left);
    if (y_left != pc.nil)
        mem.store64(y_left + kParentOff, x);
    const Addr xp = mem.load64(x + kParentOff);
    mem.store64(y + kParentOff, xp);
    if (xp == pc.nil)
        setRoot(mem, pc, y);
    else if (x == mem.load64(xp + kLeftOff))
        mem.store64(xp + kLeftOff, y);
    else
        mem.store64(xp + kRightOff, y);
    mem.store64(y + kLeftOff, x);
    mem.store64(x + kParentOff, y);
}

void
RbTreeWorkload::rightRotate(Accessor &mem, PerCore &pc, Addr x)
{
    const Addr y = mem.load64(x + kLeftOff);
    const Addr y_right = mem.load64(y + kRightOff);
    mem.store64(x + kLeftOff, y_right);
    if (y_right != pc.nil)
        mem.store64(y_right + kParentOff, x);
    const Addr xp = mem.load64(x + kParentOff);
    mem.store64(y + kParentOff, xp);
    if (xp == pc.nil)
        setRoot(mem, pc, y);
    else if (x == mem.load64(xp + kRightOff))
        mem.store64(xp + kRightOff, y);
    else
        mem.store64(xp + kLeftOff, y);
    mem.store64(y + kRightOff, x);
    mem.store64(x + kParentOff, y);
}

void
RbTreeWorkload::insertFixup(Accessor &mem, PerCore &pc, Addr z)
{
    while (mem.load64(mem.load64(z + kParentOff) + kColorOff) == kRed) {
        Addr zp = mem.load64(z + kParentOff);
        Addr zpp = mem.load64(zp + kParentOff);
        if (zp == mem.load64(zpp + kLeftOff)) {
            const Addr uncle = mem.load64(zpp + kRightOff);
            if (mem.load64(uncle + kColorOff) == kRed) {
                mem.store64(zp + kColorOff, kBlack);
                mem.store64(uncle + kColorOff, kBlack);
                mem.store64(zpp + kColorOff, kRed);
                z = zpp;
            } else {
                if (z == mem.load64(zp + kRightOff)) {
                    z = zp;
                    leftRotate(mem, pc, z);
                    zp = mem.load64(z + kParentOff);
                    zpp = mem.load64(zp + kParentOff);
                }
                mem.store64(zp + kColorOff, kBlack);
                mem.store64(zpp + kColorOff, kRed);
                rightRotate(mem, pc, zpp);
            }
        } else {
            const Addr uncle = mem.load64(zpp + kLeftOff);
            if (mem.load64(uncle + kColorOff) == kRed) {
                mem.store64(zp + kColorOff, kBlack);
                mem.store64(uncle + kColorOff, kBlack);
                mem.store64(zpp + kColorOff, kRed);
                z = zpp;
            } else {
                if (z == mem.load64(zp + kLeftOff)) {
                    z = zp;
                    rightRotate(mem, pc, z);
                    zp = mem.load64(z + kParentOff);
                    zpp = mem.load64(zp + kParentOff);
                }
                mem.store64(zp + kColorOff, kBlack);
                mem.store64(zpp + kColorOff, kRed);
                leftRotate(mem, pc, zpp);
            }
        }
    }
    mem.store64(root(mem, pc) + kColorOff, kBlack);
}

void
RbTreeWorkload::insert(CoreId core, Accessor &mem, std::uint64_t key)
{
    PerCore &pc = _state[core];

    const Addr z = _heap->alloc(core, nodeBytes());
    std::vector<std::uint64_t> payload(_params.entryBytes / 8);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = payloadWord(key, i);

    // Walk down to the insertion point (reads happen outside the
    // atomic region; the mutation is the durable part).
    Addr y = pc.nil;
    Addr x = root(mem, pc);
    while (x != pc.nil) {
        y = x;
        mem.compute(2);
        x = (key < mem.load64(x + kKeyOff))
                ? mem.load64(x + kLeftOff)
                : mem.load64(x + kRightOff);
    }

    mem.atomicBegin();
    mem.store64(z + kKeyOff, key);
    mem.storeBytes(z + kPayloadOff, _params.entryBytes, payload.data());
    mem.store64(z + kParentOff, y);
    if (y == pc.nil)
        setRoot(mem, pc, z);
    else if (key < mem.load64(y + kKeyOff))
        mem.store64(y + kLeftOff, z);
    else
        mem.store64(y + kRightOff, z);
    mem.store64(z + kLeftOff, pc.nil);
    mem.store64(z + kRightOff, pc.nil);
    mem.store64(z + kColorOff, kRed);
    insertFixup(mem, pc, z);
    mem.atomicEnd();

    pc.liveKeys.push_back(key);
}

Addr
RbTreeWorkload::minimum(Accessor &mem, PerCore &pc, Addr n)
{
    while (mem.load64(n + kLeftOff) != pc.nil)
        n = mem.load64(n + kLeftOff);
    return n;
}

void
RbTreeWorkload::transplant(Accessor &mem, PerCore &pc, Addr u, Addr v)
{
    const Addr up = mem.load64(u + kParentOff);
    if (up == pc.nil)
        setRoot(mem, pc, v);
    else if (u == mem.load64(up + kLeftOff))
        mem.store64(up + kLeftOff, v);
    else
        mem.store64(up + kRightOff, v);
    mem.store64(v + kParentOff, up);
}

void
RbTreeWorkload::deleteFixup(Accessor &mem, PerCore &pc, Addr x)
{
    while (x != root(mem, pc) &&
           mem.load64(x + kColorOff) == kBlack) {
        const Addr xp = mem.load64(x + kParentOff);
        if (x == mem.load64(xp + kLeftOff)) {
            Addr w = mem.load64(xp + kRightOff);
            if (mem.load64(w + kColorOff) == kRed) {
                mem.store64(w + kColorOff, kBlack);
                mem.store64(xp + kColorOff, kRed);
                leftRotate(mem, pc, xp);
                w = mem.load64(mem.load64(x + kParentOff) + kRightOff);
            }
            const Addr wl = mem.load64(w + kLeftOff);
            const Addr wr = mem.load64(w + kRightOff);
            if (mem.load64(wl + kColorOff) == kBlack &&
                mem.load64(wr + kColorOff) == kBlack) {
                mem.store64(w + kColorOff, kRed);
                x = mem.load64(x + kParentOff);
            } else {
                if (mem.load64(wr + kColorOff) == kBlack) {
                    mem.store64(wl + kColorOff, kBlack);
                    mem.store64(w + kColorOff, kRed);
                    rightRotate(mem, pc, w);
                    w = mem.load64(mem.load64(x + kParentOff) +
                                   kRightOff);
                }
                const Addr xp2 = mem.load64(x + kParentOff);
                mem.store64(w + kColorOff,
                            mem.load64(xp2 + kColorOff));
                mem.store64(xp2 + kColorOff, kBlack);
                mem.store64(mem.load64(w + kRightOff) + kColorOff,
                            kBlack);
                leftRotate(mem, pc, xp2);
                x = root(mem, pc);
            }
        } else {
            Addr w = mem.load64(xp + kLeftOff);
            if (mem.load64(w + kColorOff) == kRed) {
                mem.store64(w + kColorOff, kBlack);
                mem.store64(xp + kColorOff, kRed);
                rightRotate(mem, pc, xp);
                w = mem.load64(mem.load64(x + kParentOff) + kLeftOff);
            }
            const Addr wl = mem.load64(w + kLeftOff);
            const Addr wr = mem.load64(w + kRightOff);
            if (mem.load64(wr + kColorOff) == kBlack &&
                mem.load64(wl + kColorOff) == kBlack) {
                mem.store64(w + kColorOff, kRed);
                x = mem.load64(x + kParentOff);
            } else {
                if (mem.load64(wl + kColorOff) == kBlack) {
                    mem.store64(wr + kColorOff, kBlack);
                    mem.store64(w + kColorOff, kRed);
                    leftRotate(mem, pc, w);
                    w = mem.load64(mem.load64(x + kParentOff) +
                                   kLeftOff);
                }
                const Addr xp2 = mem.load64(x + kParentOff);
                mem.store64(w + kColorOff,
                            mem.load64(xp2 + kColorOff));
                mem.store64(xp2 + kColorOff, kBlack);
                mem.store64(mem.load64(w + kLeftOff) + kColorOff,
                            kBlack);
                rightRotate(mem, pc, xp2);
                x = root(mem, pc);
            }
        }
    }
    mem.store64(x + kColorOff, kBlack);
}

Addr
RbTreeWorkload::find(Accessor &mem, PerCore &pc, std::uint64_t key)
{
    Addr n = root(mem, pc);
    while (n != pc.nil) {
        const std::uint64_t k = mem.load64(n + kKeyOff);
        mem.compute(2);
        if (k == key)
            return n;
        n = (key < k) ? mem.load64(n + kLeftOff)
                      : mem.load64(n + kRightOff);
    }
    return 0;
}

bool
RbTreeWorkload::remove(CoreId core, Accessor &mem, std::uint64_t key)
{
    PerCore &pc = _state[core];
    const Addr z = find(mem, pc, key);
    if (z == 0)
        return false;

    mem.atomicBegin();
    Addr y = z;
    std::uint64_t y_color = mem.load64(y + kColorOff);
    Addr x;
    if (mem.load64(z + kLeftOff) == pc.nil) {
        x = mem.load64(z + kRightOff);
        transplant(mem, pc, z, x);
    } else if (mem.load64(z + kRightOff) == pc.nil) {
        x = mem.load64(z + kLeftOff);
        transplant(mem, pc, z, x);
    } else {
        y = minimum(mem, pc, mem.load64(z + kRightOff));
        y_color = mem.load64(y + kColorOff);
        x = mem.load64(y + kRightOff);
        if (mem.load64(y + kParentOff) == z) {
            mem.store64(x + kParentOff, y);
        } else {
            transplant(mem, pc, y, x);
            const Addr zr = mem.load64(z + kRightOff);
            mem.store64(y + kRightOff, zr);
            mem.store64(zr + kParentOff, y);
        }
        transplant(mem, pc, z, y);
        const Addr zl = mem.load64(z + kLeftOff);
        mem.store64(y + kLeftOff, zl);
        mem.store64(zl + kParentOff, y);
        mem.store64(y + kColorOff, mem.load64(z + kColorOff));
    }
    if (y_color == kBlack)
        deleteFixup(mem, pc, x);
    mem.store64(z + kKeyOff, ~std::uint64_t(0));  // poison
    mem.atomicEnd();

    _heap->free(core, z, nodeBytes());
    auto it = std::find(pc.liveKeys.begin(), pc.liveKeys.end(), key);
    if (it != pc.liveKeys.end()) {
        *it = pc.liveKeys.back();
        pc.liveKeys.pop_back();
    }
    return true;
}

void
RbTreeWorkload::runTransaction(CoreId core, Accessor &mem, Random &rng)
{
    PerCore &pc = _state[core];
    // Search first (non-durable), then an atomic insert or delete.
    if (!pc.liveKeys.empty()) {
        find(mem, pc,
             pc.liveKeys[std::size_t(rng.below(pc.liveKeys.size()))]);
    }
    const bool do_insert = pc.liveKeys.empty() || rng.chance(0.5);
    if (do_insert) {
        insert(core, mem, pc.nextKey++);
    } else {
        const std::uint64_t victim =
            pc.liveKeys[std::size_t(rng.below(pc.liveKeys.size()))];
        remove(core, mem, victim);
    }
}

std::string
RbTreeWorkload::checkSubtree(DirectAccessor &mem, const PerCore &pc,
                             Addr n, std::uint64_t lo, std::uint64_t hi,
                             int &black_height) const
{
    if (n == pc.nil) {
        black_height = 1;
        return "";
    }
    const std::uint64_t key = mem.load64(n + kKeyOff);
    if (key == ~std::uint64_t(0)) {
        return faultf("tree reaches a deleted (poisoned) node:"
                      " node=0x%llx", (unsigned long long)n);
    }
    if (key < lo || key >= hi) {
        return faultf("BST ordering violated: node=0x%llx key=0x%llx "
                      "window=[0x%llx,0x%llx)",
                      (unsigned long long)n, (unsigned long long)key,
                      (unsigned long long)lo, (unsigned long long)hi);
    }
    const std::uint64_t color = mem.load64(n + kColorOff);
    if (color != kRed && color != kBlack) {
        return faultf("invalid node color: node=0x%llx key=0x%llx "
                      "color=0x%llx", (unsigned long long)n,
                      (unsigned long long)key,
                      (unsigned long long)color);
    }
    const Addr l = mem.load64(n + kLeftOff);
    const Addr r = mem.load64(n + kRightOff);
    if (color == kRed) {
        if (mem.load64(l + kColorOff) == kRed ||
            mem.load64(r + kColorOff) == kRed) {
            return faultf("red node with a red child: node=0x%llx "
                          "key=0x%llx", (unsigned long long)n,
                          (unsigned long long)key);
        }
    }
    // Parent pointers must agree with the downward links.
    if (l != pc.nil && mem.load64(l + kParentOff) != n) {
        return faultf("left child's parent pointer is wrong: node=0x%llx"
                      " child=0x%llx parent=0x%llx",
                      (unsigned long long)n, (unsigned long long)l,
                      (unsigned long long)mem.load64(l + kParentOff));
    }
    if (r != pc.nil && mem.load64(r + kParentOff) != n) {
        return faultf("right child's parent pointer is wrong:"
                      " node=0x%llx child=0x%llx parent=0x%llx",
                      (unsigned long long)n, (unsigned long long)r,
                      (unsigned long long)mem.load64(r + kParentOff));
    }

    // Payload integrity.
    std::vector<std::uint64_t> words(_params.entryBytes / 8);
    mem.loadBytes(n + kPayloadOff, _params.entryBytes, words.data());
    for (std::size_t i = 0; i < words.size(); ++i) {
        if (words[i] != payloadWord(key, i)) {
            return faultf("torn node payload: node=0x%llx key=0x%llx "
                          "word=%zu addr=0x%llx expected=0x%llx "
                          "found=0x%llx",
                          (unsigned long long)n, (unsigned long long)key,
                          i, (unsigned long long)(n + kPayloadOff + i * 8),
                          (unsigned long long)payloadWord(key, i),
                          (unsigned long long)words[i]);
        }
    }

    int lbh = 0;
    int rbh = 0;
    std::string err = checkSubtree(mem, pc, l, lo, key, lbh);
    if (!err.empty())
        return err;
    err = checkSubtree(mem, pc, r, key + 1, hi, rbh);
    if (!err.empty())
        return err;
    if (lbh != rbh) {
        return faultf("black heights differ between siblings:"
                      " node=0x%llx key=0x%llx left=%d right=%d",
                      (unsigned long long)n, (unsigned long long)key,
                      lbh, rbh);
    }
    black_height = lbh + (color == kBlack ? 1 : 0);
    return "";
}

std::string
RbTreeWorkload::checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores)
{
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        const PerCore &pc = _state[c];
        if (pc.anchor == 0)
            continue;
        const Addr rt = mem.load64(pc.anchor);
        if (rt == pc.nil)
            continue;
        if (mem.load64(rt + kColorOff) != kBlack) {
            return faultf("root is not black: core=%u root=0x%llx "
                          "color=0x%llx", c, (unsigned long long)rt,
                          (unsigned long long)
                              mem.load64(rt + kColorOff));
        }
        int bh = 0;
        const std::string err =
            checkSubtree(mem, pc, rt, 0, ~std::uint64_t(0), bh);
        if (!err.empty())
            return err;
    }
    return "";
}

} // namespace atomsim
