#include "workloads/sdg_workload.hh"

#include <vector>

namespace atomsim
{

namespace
{

constexpr Addr kToOff = 0;
constexpr Addr kNextOff = 8;
constexpr Addr kWeightOff = 16;
constexpr Addr kPayloadOff = kLineBytes;

constexpr Addr kVertexStride = 16;  // {edgeHead, degree}

std::uint64_t
edgeWeight(std::uint32_t from, std::uint32_t to)
{
    return (std::uint64_t(from) << 32) ^ to ^ 0x5bd1e995u;
}

} // namespace

SdgWorkload::SdgWorkload(const MicroParams &params) : _params(params) {}

Addr
SdgWorkload::edgeBytes() const
{
    return kPayloadOff + _params.entryBytes;
}

void
SdgWorkload::init(DirectAccessor &mem, PersistentHeap &heap,
                  std::uint32_t num_cores)
{
    _heap = &heap;
    _state.assign(num_cores, PerCore{});
    Random rng(_params.seed ^ 0x5d9u);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        PerCore &pc = _state[c];
        pc.vertices = heap.alloc(c, kVertices * kVertexStride,
                                 kLineBytes);
        pc.counters = heap.alloc(c, 16, kLineBytes);
        for (std::uint32_t v = 0; v < kVertices; ++v) {
            mem.store64(pc.vertices + v * kVertexStride, 0);
            mem.store64(pc.vertices + v * kVertexStride + 8, 0);
        }
        mem.store64(pc.counters, 0);
        mem.store64(pc.counters + 8, 0);
        for (std::uint32_t i = 0; i < _params.initialItems; ++i) {
            insertEdge(c, mem, std::uint32_t(rng.below(kVertices)),
                       std::uint32_t(rng.below(kVertices)));
        }
    }
}

void
SdgWorkload::insertEdge(CoreId core, Accessor &mem, std::uint32_t from,
                        std::uint32_t to)
{
    PerCore &pc = _state[core];
    const Addr vslot = pc.vertices + from * kVertexStride;
    const Addr head = mem.load64(vslot);
    const std::uint64_t degree = mem.load64(vslot + 8);
    const std::uint64_t edges = mem.load64(pc.counters);
    const std::uint64_t dsum = mem.load64(pc.counters + 8);

    const Addr edge = _heap->alloc(core, edgeBytes());
    std::vector<std::uint64_t> payload(_params.entryBytes / 8);
    const std::uint64_t w = edgeWeight(from, to);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = w + i;

    mem.atomicBegin();
    mem.store64(edge + kToOff, to);
    mem.store64(edge + kNextOff, head);
    mem.store64(edge + kWeightOff, w);
    mem.storeBytes(edge + kPayloadOff, _params.entryBytes,
                   payload.data());
    mem.store64(vslot, edge);
    mem.store64(vslot + 8, degree + 1);
    mem.store64(pc.counters, edges + 1);
    mem.store64(pc.counters + 8, dsum + 1);
    mem.atomicEnd();
}

bool
SdgWorkload::removeEdge(CoreId core, Accessor &mem, std::uint32_t from,
                        std::uint32_t to)
{
    PerCore &pc = _state[core];
    const Addr vslot = pc.vertices + from * kVertexStride;

    Addr prev_slot = vslot;
    Addr edge = mem.load64(vslot);
    while (edge != 0) {
        if (mem.load64(edge + kToOff) == to) {
            const Addr next = mem.load64(edge + kNextOff);
            const std::uint64_t degree = mem.load64(vslot + 8);
            const std::uint64_t edges = mem.load64(pc.counters);
            const std::uint64_t dsum = mem.load64(pc.counters + 8);
            mem.atomicBegin();
            mem.store64(prev_slot, next);
            mem.store64(vslot + 8, degree - 1);
            mem.store64(pc.counters, edges - 1);
            mem.store64(pc.counters + 8, dsum - 1);
            mem.store64(edge + kWeightOff, ~std::uint64_t(0));
            mem.atomicEnd();
            _heap->free(core, edge, edgeBytes());
            return true;
        }
        prev_slot = edge + kNextOff;
        edge = mem.load64(edge + kNextOff);
    }
    return false;
}

void
SdgWorkload::runTransaction(CoreId core, Accessor &mem, Random &rng)
{
    const auto from = std::uint32_t(rng.below(kVertices));
    const auto to = std::uint32_t(rng.below(kVertices));

    // Search: walk the adjacency list of a random vertex.
    PerCore &pc = _state[core];
    Addr e = mem.load64(pc.vertices +
                        rng.below(kVertices) * kVertexStride);
    std::uint32_t walked = 0;
    while (e != 0 && walked++ < 8)
        e = mem.load64(e + kNextOff);

    if (rng.chance(0.5)) {
        insertEdge(core, mem, from, to);
    } else if (!removeEdge(core, mem, from, to)) {
        insertEdge(core, mem, from, to);
    }
}

std::string
SdgWorkload::checkConsistency(DirectAccessor &mem,
                              std::uint32_t num_cores)
{
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        const PerCore &pc = _state[c];
        if (pc.vertices == 0)
            continue;
        std::uint64_t edge_total = 0;
        for (std::uint32_t v = 0; v < kVertices; ++v) {
            const Addr vslot = pc.vertices + v * kVertexStride;
            std::uint64_t chain = 0;
            Addr edge = mem.load64(vslot);
            while (edge != 0) {
                const std::uint64_t to = mem.load64(edge + kToOff);
                const std::uint64_t w = mem.load64(edge + kWeightOff);
                if (w == ~std::uint64_t(0)) {
                    return faultf("adjacency list reaches a removed "
                                  "edge: core=%u vertex=%u edge=0x%llx",
                                  c, v, (unsigned long long)edge);
                }
                if (w != edgeWeight(v, std::uint32_t(to))) {
                    return faultf(
                        "edge weight mismatch (torn insert): core=%u "
                        "vertex=%u edge=0x%llx to=%llu expected=0x%llx "
                        "found=0x%llx",
                        c, v, (unsigned long long)edge,
                        (unsigned long long)to,
                        (unsigned long long)
                            edgeWeight(v, std::uint32_t(to)),
                        (unsigned long long)w);
                }
                ++chain;
                edge = mem.load64(edge + kNextOff);
                if (chain > (std::uint64_t(1) << 24)) {
                    return faultf("cycle in an adjacency list: core=%u "
                                  "vertex=%u", c, v);
                }
            }
            if (chain != mem.load64(vslot + 8)) {
                return faultf(
                    "vertex degree disagrees with its list: core=%u "
                    "vertex=%u degree=%llu chain=%llu",
                    c, v, (unsigned long long)mem.load64(vslot + 8),
                    (unsigned long long)chain);
            }
            edge_total += chain;
        }
        if (edge_total != mem.load64(pc.counters)) {
            return faultf(
                "global edge count disagrees with the lists: core=%u "
                "count=%llu lists=%llu",
                c, (unsigned long long)mem.load64(pc.counters),
                (unsigned long long)edge_total);
        }
        if (mem.load64(pc.counters) != mem.load64(pc.counters + 8)) {
            return faultf(
                "edge count / degree sum mismatch: core=%u count=%llu "
                "degree_sum=%llu",
                c, (unsigned long long)mem.load64(pc.counters),
                (unsigned long long)mem.load64(pc.counters + 8));
        }
    }
    return "";
}

} // namespace atomsim
