/**
 * @file
 * SPS micro-benchmark: random atomic swaps between entries of a
 * persistent array (Table II).
 */

#ifndef ATOMSIM_WORKLOADS_SPS_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_SPS_WORKLOAD_HH

#include <vector>

#include "workloads/heap.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/**
 * Per core: an array of N entries of entryBytes each. A transaction
 * reads two random entries and swaps them atomically. A permutation
 * tag in each entry lets the consistency check verify the array is
 * always a permutation of the initial entries with intact payloads.
 */
class SpsWorkload : public Workload
{
  public:
    explicit SpsWorkload(const MicroParams &params);

    std::string name() const override { return "sps"; }
    void init(DirectAccessor &mem, PersistentHeap &heap,
              std::uint32_t num_cores) override;
    void runTransaction(CoreId core, Accessor &mem, Random &rng) override;
    std::string checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores) override;

  private:
    struct PerCore
    {
        Addr array = 0;
        std::uint32_t entries = 0;
    };

    MicroParams _params;
    std::vector<PerCore> _state;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_SPS_WORKLOAD_HH
