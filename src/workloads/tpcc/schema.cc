#include "workloads/tpcc/schema.hh"

#include <vector>

namespace atomsim
{
namespace tpcc
{

std::uint64_t
districtKey(std::uint32_t w, std::uint32_t d)
{
    return (std::uint64_t(w) << 8) | d;
}

std::uint64_t
customerKey(std::uint32_t w, std::uint32_t d, std::uint32_t c)
{
    return (std::uint64_t(w) << 24) | (std::uint64_t(d) << 16) | c;
}

std::uint64_t
stockKey(std::uint32_t w, std::uint32_t i)
{
    return (std::uint64_t(w) << 20) | i;
}

std::uint64_t
orderKey(std::uint32_t w, std::uint32_t d, std::uint32_t o)
{
    return (std::uint64_t(w) << 40) | (std::uint64_t(d) << 32) | o;
}

std::uint64_t
orderLineKey(std::uint32_t w, std::uint32_t d, std::uint32_t o,
             std::uint32_t line)
{
    return (std::uint64_t(w) << 44) | (std::uint64_t(d) << 36) |
           (std::uint64_t(o) << 4) | line;
}

Database::Database(const ScaleParams &scale, PersistentHeap &heap)
    : _scale(scale), _heap(heap)
{
}

void
Database::populate(Accessor &mem, std::uint32_t num_cores)
{
    // Spread the trees and rows over several arenas so the tables sit
    // behind different memory controllers.
    auto arena = [num_cores](std::uint32_t i) {
        return i % std::max<std::uint32_t>(1, num_cores);
    };

    _warehouse = std::make_unique<BPlusTree>(
        BPlusTree::create(mem, _heap, arena(0)), _heap, arena(0));
    _district = std::make_unique<BPlusTree>(
        BPlusTree::create(mem, _heap, arena(1)), _heap, arena(1));
    _customer = std::make_unique<BPlusTree>(
        BPlusTree::create(mem, _heap, arena(2)), _heap, arena(2));
    _item = std::make_unique<BPlusTree>(
        BPlusTree::create(mem, _heap, arena(3)), _heap, arena(3));
    _stock = std::make_unique<BPlusTree>(
        BPlusTree::create(mem, _heap, arena(4)), _heap, arena(4));
    _orders = std::make_unique<BPlusTree>(
        BPlusTree::create(mem, _heap, arena(5)), _heap, arena(5));
    _newOrders = std::make_unique<BPlusTree>(
        BPlusTree::create(mem, _heap, arena(6)), _heap, arena(6));
    _orderLines = std::make_unique<BPlusTree>(
        BPlusTree::create(mem, _heap, arena(7)), _heap, arena(7));

    auto fill_row = [&](Addr row, std::uint32_t bytes,
                        std::uint64_t tag) {
        std::vector<std::uint64_t> words(bytes / 8);
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] = tag + i;
        mem.storeBytes(row, bytes, words.data());
    };

    for (std::uint32_t w = 1; w <= _scale.warehouses; ++w) {
        const Addr wrow = _heap.alloc(arena(w), kWarehouseRow,
                                      kLineBytes);
        fill_row(wrow, kWarehouseRow, w * 131);
        mem.store64(wrow + kWTaxOff, 7);   // 0.07% scaled tax
        mem.store64(wrow + kWYtdOff, 0);
        _warehouse->insert(mem, w, wrow);

        for (std::uint32_t d = 1; d <= _scale.districtsPerWh; ++d) {
            const Addr drow = _heap.alloc(arena(w + d), kDistrictRow,
                                          kLineBytes);
            fill_row(drow, kDistrictRow, w * 131 + d);
            mem.store64(drow + kDTaxOff, 5);
            mem.store64(drow + kDNextOidOff, 1);
            _district->insert(mem, districtKey(w, d), drow);

            for (std::uint32_t c = 1; c <= _scale.customersPerDistrict;
                 ++c) {
                const Addr crow = _heap.alloc(arena(c), kCustomerRow,
                                              kLineBytes);
                fill_row(crow, kCustomerRow, c * 17);
                mem.store64(crow + kCDiscountOff, c % 50);
                mem.store64(crow + kCBalanceOff, 0);
                _customer->insert(mem, customerKey(w, d, c), crow);
            }
        }

        for (std::uint32_t i = 1; i <= _scale.items; ++i) {
            const Addr srow = _heap.alloc(arena(i), kStockRow,
                                          kLineBytes);
            fill_row(srow, kStockRow, i * 29);
            mem.store64(srow + kSQuantityOff, 50 + i % 50);
            mem.store64(srow + kSYtdOff, 0);
            mem.store64(srow + kSOrderCntOff, 0);
            mem.store64(srow + kSRemoteCntOff, 0);
            _stock->insert(mem, stockKey(w, i), srow);
        }
    }

    for (std::uint32_t i = 1; i <= _scale.items; ++i) {
        const Addr irow = _heap.alloc(arena(i), kItemRow, kLineBytes);
        fill_row(irow, kItemRow, i * 37);
        mem.store64(irow + kIPriceOff, 100 + i % 900);
        _item->insert(mem, i, irow);
    }
}

std::string
Database::checkStructure(Accessor &mem)
{
    struct Named
    {
        const char *name;
        BPlusTree *tree;
    };
    const Named tables[] = {
        {"warehouse", _warehouse.get()}, {"district", _district.get()},
        {"customer", _customer.get()},   {"item", _item.get()},
        {"stock", _stock.get()},         {"orders", _orders.get()},
        {"new_order", _newOrders.get()},
        {"order_line", _orderLines.get()},
    };
    for (const auto &t : tables) {
        if (!t.tree)
            continue;
        const std::string err = t.tree->checkStructure(mem);
        if (!err.empty())
            return std::string(t.name) + ": " + err;
    }
    return "";
}

} // namespace tpcc
} // namespace atomsim
