#include "workloads/tpcc/tpcc_workload.hh"

#include <vector>

namespace atomsim
{

using namespace tpcc;

TpccWorkload::TpccWorkload(const ScaleParams &scale) : _scale(scale) {}

void
TpccWorkload::init(DirectAccessor &mem, PersistentHeap &heap,
                   std::uint32_t num_cores)
{
    _heap = &heap;
    _db = std::make_unique<Database>(_scale, heap);
    _db->populate(mem, num_cores);
}

void
TpccWorkload::runTransaction(CoreId core, Accessor &mem, Random &rng)
{
    Database &db = *_db;
    const std::uint32_t w =
        1 + std::uint32_t(rng.below(_scale.warehouses));
    const std::uint32_t d =
        1 + std::uint32_t(rng.below(_scale.districtsPerWh));
    const std::uint32_t c =
        1 + std::uint32_t(rng.below(_scale.customersPerDistrict));
    const std::uint32_t n_items = 5 + std::uint32_t(rng.below(11));

    // --- Reads outside the durable region -----------------------------
    const Addr wrow = *db.warehouse().search(mem, w);
    mem.load64(wrow + kWTaxOff);

    const Addr drow = *db.district().search(mem, districtKey(w, d));
    mem.load64(drow + kDTaxOff);

    const Addr crow = *db.customer().search(mem, customerKey(w, d, c));
    mem.load64(crow + kCDiscountOff);

    struct PickedItem
    {
        std::uint32_t id;
        std::uint32_t qty;
        Addr irow;
        Addr srow;
    };
    std::vector<PickedItem> picked;
    picked.reserve(n_items);
    for (std::uint32_t l = 0; l < n_items; ++l) {
        const std::uint32_t item =
            1 + std::uint32_t(rng.below(_scale.items));
        const Addr irow = *db.item().search(mem, item);
        mem.load64(irow + kIPriceOff);
        const Addr srow = *db.stock().search(mem, stockKey(w, item));
        picked.push_back(PickedItem{item,
                                    1 + std::uint32_t(rng.below(10)),
                                    irow, srow});
    }

    // --- The atomic new-order mutation --------------------------------
    mem.atomicBegin();

    const std::uint64_t o_id = mem.load64(drow + kDNextOidOff);
    mem.store64(drow + kDNextOidOff, o_id + 1);

    const Addr orow = _heap->alloc(core, kOrderRow, kLineBytes);
    mem.store64(orow + 0, customerKey(w, d, c));
    mem.store64(orow + 8, n_items);
    mem.store64(orow + 16, 0);  // o_carrier_id (null)
    db.orders().insert(mem, orderKey(w, d, std::uint32_t(o_id)), orow);

    const Addr norow = _heap->alloc(core, kNewOrderRow, kLineBytes);
    mem.store64(norow + 0, o_id);
    db.newOrders().insert(mem, orderKey(w, d, std::uint32_t(o_id)),
                          norow);

    for (std::uint32_t l = 0; l < n_items; ++l) {
        const PickedItem &pi = picked[l];

        // Stock update.
        const std::uint64_t qty = mem.load64(pi.srow + kSQuantityOff);
        const std::uint64_t new_qty =
            (qty >= pi.qty + 10) ? qty - pi.qty : qty + 91 - pi.qty;
        mem.store64(pi.srow + kSQuantityOff, new_qty);
        mem.store64(pi.srow + kSYtdOff,
                    mem.load64(pi.srow + kSYtdOff) + pi.qty);
        mem.store64(pi.srow + kSOrderCntOff,
                    mem.load64(pi.srow + kSOrderCntOff) + 1);

        // Order line insert.
        const Addr olrow = _heap->alloc(core, kOrderLineRow,
                                        kLineBytes);
        const std::uint64_t price = mem.load64(pi.irow + kIPriceOff);
        mem.store64(olrow + 0, pi.id);
        mem.store64(olrow + 8, pi.qty);
        mem.store64(olrow + 16, price * pi.qty);
        mem.store64(olrow + 24, w);
        db.orderLines().insert(
            mem,
            orderLineKey(w, d, std::uint32_t(o_id), l), olrow);
        ++_orderLinesPlaced;
    }

    mem.atomicEnd();
    ++_ordersPlaced;
}

std::string
TpccWorkload::checkConsistency(DirectAccessor &mem, std::uint32_t)
{
    if (!_db)
        return "";
    const std::string err = _db->checkStructure(mem);
    if (!err.empty())
        return err;

    // Order-count invariant: every district's d_next_o_id - 1 orders
    // must exist in the orders table.
    std::uint64_t orders_expected = 0;
    for (std::uint32_t w = 1; w <= _scale.warehouses; ++w) {
        for (std::uint32_t d = 1; d <= _scale.districtsPerWh; ++d) {
            const auto drow = _db->district().search(
                mem, districtKey(w, d));
            if (!drow)
                return faultf("district row missing: warehouse=%u "
                              "district=%u", w, d);
            orders_expected += mem.load64(*drow + kDNextOidOff) - 1;
        }
    }
    if (_db->orders().count(mem) != orders_expected) {
        return faultf(
            "orders table disagrees with district sequence counters: "
            "orders=%llu expected=%llu",
            (unsigned long long)_db->orders().count(mem),
            (unsigned long long)orders_expected);
    }
    if (_db->newOrders().count(mem) != orders_expected) {
        return faultf(
            "new_order table disagrees with district counters: "
            "new_orders=%llu expected=%llu",
            (unsigned long long)_db->newOrders().count(mem),
            (unsigned long long)orders_expected);
    }
    return "";
}

} // namespace atomsim
