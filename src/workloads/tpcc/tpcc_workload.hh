/**
 * @file
 * TPC-C new-order workload (Section V / VI-F of the paper).
 *
 * 32 terminals (one per core) issue new-order transactions -- the most
 * write-intensive TPC-C transaction -- against the shared B+-tree
 * schema, with wait/think times removed as in the paper. The entire
 * transaction body (district sequence bump, order/new-order inserts,
 * per-item stock updates and order-line inserts) is one atomic durable
 * region, matching the paper's "critical sections as atomic regions"
 * annotation; transactions serialize functionally at dispatch, which
 * stands in for the lock-based isolation ATOM requires from software.
 */

#ifndef ATOMSIM_WORKLOADS_TPCC_TPCC_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_TPCC_TPCC_WORKLOAD_HH

#include <memory>

#include "workloads/tpcc/schema.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/** TPC-C new-order transaction stream over the shared database. */
class TpccWorkload : public Workload
{
  public:
    explicit TpccWorkload(const tpcc::ScaleParams &scale = {});

    std::string name() const override { return "tpcc"; }
    void init(DirectAccessor &mem, PersistentHeap &heap,
              std::uint32_t num_cores) override;
    void runTransaction(CoreId core, Accessor &mem, Random &rng) override;
    std::string checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores) override;

    tpcc::Database &database() { return *_db; }

  private:
    tpcc::ScaleParams _scale;
    std::unique_ptr<tpcc::Database> _db;
    PersistentHeap *_heap = nullptr;
    std::uint64_t _ordersPlaced = 0;
    std::uint64_t _orderLinesPlaced = 0;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_TPCC_TPCC_WORKLOAD_HH
