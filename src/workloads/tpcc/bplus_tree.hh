/**
 * @file
 * Persistent B+-tree over the Accessor interface.
 *
 * Used both by the btree micro-benchmark and as the storage engine for
 * the TPC-C tables (the paper implements the TPC-C schema on B+-trees,
 * Section V). Nodes are 512 bytes (8 cache lines); leaves are chained
 * for ordered scans. Insert splits bottom-up along the descent path;
 * delete removes from the leaf and tolerates underflow (no rebalancing
 * merge -- searches and scans remain correct; noted in DESIGN.md).
 */

#ifndef ATOMSIM_WORKLOADS_TPCC_BPLUS_TREE_HH
#define ATOMSIM_WORKLOADS_TPCC_BPLUS_TREE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "workloads/heap.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/** A persistent B+-tree rooted at an anchor slot. */
class BPlusTree
{
  public:
    static constexpr std::uint32_t kNodeBytes = 512;
    static constexpr std::uint32_t kLeafKeys = 28;
    static constexpr std::uint32_t kIntKeys = 27;

    /**
     * @param anchor persistent slot holding the root pointer
     * @param heap   allocator for nodes
     * @param core   arena the nodes allocate from
     */
    BPlusTree(Addr anchor, PersistentHeap &heap, std::uint32_t core);

    /** Allocate an anchor + empty root leaf. Returns the anchor. */
    static Addr create(Accessor &mem, PersistentHeap &heap,
                       std::uint32_t core);

    /** Insert (or overwrite) key -> value. */
    void insert(Accessor &mem, std::uint64_t key, std::uint64_t value);

    /** Point lookup. */
    std::optional<std::uint64_t> search(Accessor &mem,
                                        std::uint64_t key);

    /** Remove a key. @return true if it was present. */
    bool remove(Accessor &mem, std::uint64_t key);

    /** Number of keys (leaf-chain walk; test/check helper). */
    std::uint64_t count(Accessor &mem);

    /**
     * Verify structural invariants: sorted keys, in-range children,
     * correctly chained and sorted leaves. Empty string when OK.
     */
    std::string checkStructure(Accessor &mem);

    Addr anchor() const { return _anchor; }

  private:
    Addr rootOf(Accessor &mem) { return mem.load64(_anchor); }

    static bool isLeaf(Accessor &mem, Addr node);
    static std::uint32_t countOf(Accessor &mem, Addr node);
    static void setCount(Accessor &mem, Addr node, std::uint32_t n);

    static Addr leafKeySlot(Addr node, std::uint32_t i);
    static Addr leafValSlot(Addr node, std::uint32_t i);
    static Addr leafNextSlot(Addr node);
    static Addr intKeySlot(Addr node, std::uint32_t i);
    static Addr intChildSlot(Addr node, std::uint32_t i);

    Addr allocNode(Accessor &mem, bool leaf);

    /** Descend to the leaf for @p key, recording the path. */
    Addr descend(Accessor &mem, std::uint64_t key,
                 std::vector<std::pair<Addr, std::uint32_t>> *path);

    /** Insert @p key/@p right into the parent after a child split. */
    void insertIntoParent(
        Accessor &mem,
        std::vector<std::pair<Addr, std::uint32_t>> &path,
        std::uint64_t sep_key, Addr right);

    std::string checkSubtree(Accessor &mem, Addr node, std::uint64_t lo,
                             std::uint64_t hi, std::uint32_t depth,
                             std::uint32_t &leaf_depth);

    Addr _anchor;
    PersistentHeap &_heap;
    std::uint32_t _core;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_TPCC_BPLUS_TREE_HH
